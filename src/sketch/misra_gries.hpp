// Misra-Gries heavy-hitter summary (paper Section 3.5).
//
// Each host thread runs one summary with K counters over the node ids it
// sees in its section of the edge stream (each edge contributes both
// endpoints).  The guarantee used by the paper: any node whose frequency in
// a thread's section of n updates exceeds n/K is present in that thread's
// table at the end of the stream.  Per-thread summaries are merged
// (Agarwal et al. mergeable-summaries construction, which preserves the
// error bound) and the global top-t nodes become the remap set sent to the
// PIM cores.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace pimtc::sketch {

class MisraGries {
 public:
  /// `capacity` is the parameter K: the maximum number of tracked entries.
  explicit MisraGries(std::size_t capacity);

  /// Processes one occurrence of `node`.
  void update(NodeId node);

  /// Processes both endpoints of an edge (degree counting).
  void update_edge(Edge e) {
    update(e.u);
    update(e.v);
  }

  /// Processes one deletion of `node` (fully-dynamic streams): a tracked
  /// counter is decremented (and dropped at zero); an untracked node is a
  /// no-op.  The summary stays a conservative under-estimate of the net
  /// frequency — the MG error bound n/K is stated for insert-only streams,
  /// so dynamic-mode consumers treat estimates as degree *hints* (remap
  /// ordering), never as exact counts.
  void remove(NodeId node);

  /// Processes both endpoints of a deleted edge.
  void remove_edge(Edge e) {
    remove(e.u);
    remove(e.v);
  }

  /// Merges another summary into this one, keeping the K largest combined
  /// counters and subtracting the (K+1)-th (the standard mergeable-summary
  /// rule; the result is again a valid MG summary for the combined stream).
  void merge(const MisraGries& other);

  /// Estimated frequency (0 when untracked).  Underestimates by at most
  /// n/K where n is the number of updates absorbed.
  [[nodiscard]] std::uint64_t estimate(NodeId node) const;

  /// The top `t` tracked nodes by estimated frequency, highest first.
  /// Deterministic: ties break toward the smaller node id.
  [[nodiscard]] std::vector<NodeId> top(std::size_t t) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return counters_.size(); }
  [[nodiscard]] std::uint64_t updates() const noexcept { return updates_; }
  /// Deletions absorbed via remove()/remove_edge().
  [[nodiscard]] std::uint64_t removals() const noexcept { return removals_; }

  /// All tracked (node, estimate) pairs, unsorted.
  [[nodiscard]] const std::unordered_map<NodeId, std::uint64_t>& entries()
      const noexcept {
    return counters_;
  }

 private:
  void decrement_all();

  std::size_t capacity_;
  std::uint64_t updates_ = 0;
  std::uint64_t removals_ = 0;
  std::unordered_map<NodeId, std::uint64_t> counters_;
};

}  // namespace pimtc::sketch
