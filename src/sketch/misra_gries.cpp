#include "sketch/misra_gries.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimtc::sketch {

MisraGries::MisraGries(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("MisraGries: capacity must be >= 1");
  }
  counters_.reserve(capacity * 2);
}

void MisraGries::update(NodeId node) {
  ++updates_;
  if (auto it = counters_.find(node); it != counters_.end()) {
    ++it->second;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(node, 1);
    return;
  }
  decrement_all();
}

void MisraGries::remove(NodeId node) {
  ++removals_;
  if (auto it = counters_.find(node); it != counters_.end()) {
    if (--it->second == 0) counters_.erase(it);
  }
}

void MisraGries::decrement_all() {
  // Decrement every counter and drop zeros.  Amortized O(1) per update:
  // each decrement pass removes K units of "credit" paid in by insertions.
  for (auto it = counters_.begin(); it != counters_.end();) {
    if (--it->second == 0) {
      it = counters_.erase(it);
    } else {
      ++it;
    }
  }
}

void MisraGries::merge(const MisraGries& other) {
  updates_ += other.updates_;
  for (const auto& [node, count] : other.counters_) {
    counters_[node] += count;
  }
  if (counters_.size() <= capacity_) return;

  // Find the (capacity+1)-th largest counter and subtract it everywhere,
  // dropping non-positive entries; at most `capacity` survive.
  std::vector<std::uint64_t> values;
  values.reserve(counters_.size());
  for (const auto& [node, count] : counters_) values.push_back(count);
  std::nth_element(values.begin(), values.begin() + capacity_, values.end(),
                   std::greater<>());
  const std::uint64_t pivot = values[capacity_];

  for (auto it = counters_.begin(); it != counters_.end();) {
    if (it->second <= pivot) {
      it = counters_.erase(it);
    } else {
      it->second -= pivot;
      ++it;
    }
  }
}

std::uint64_t MisraGries::estimate(NodeId node) const {
  const auto it = counters_.find(node);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<NodeId> MisraGries::top(std::size_t t) const {
  std::vector<std::pair<NodeId, std::uint64_t>> items(counters_.begin(),
                                                      counters_.end());
  std::sort(items.begin(), items.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  if (items.size() > t) items.resize(t);
  std::vector<NodeId> result;
  result.reserve(items.size());
  for (const auto& [node, count] : items) result.push_back(node);
  return result;
}

}  // namespace pimtc::sketch
