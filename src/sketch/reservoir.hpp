// Reservoir sampling (paper Section 3.3, after TRIÈST).
//
// Each PIM core keeps at most M edges in its DRAM bank.  For the t-th edge
// offered (t > M) a biased coin with heads probability M/t decides whether a
// uniformly random resident edge is replaced.  The decision logic is
// factored out of the storage (`ReservoirPolicy`) because in the simulator
// the storage is the DPU's MRAM, not a host vector; `ReservoirSampler<T>`
// composes the two for host-side use and tests.
//
// Fully-dynamic streams extend the policy with random pairing (Gemulla et
// al., after TRIÈST-FD): a deletion that hits the sample evicts the resident
// item and leaves a "vacancy" (del_in); one that misses it is only counted
// (del_out).  While uncompensated deletions exist, the next insertions pair
// off against them — entering the sample with probability
// del_in / (del_in + del_out) — instead of running the plain reservoir coin.
// The resulting sample is a uniform subset of the *current* population, and
// the estimator's correction uses effective_seen() = net size + pending
// deletions in place of the insert-only t.  Streams without deletions take
// exactly the legacy code path (same RNG draws, same decisions), so
// insert-only estimates are bit-identical to the pre-deletion behavior.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/prng.hpp"

namespace pimtc::sketch {

/// Decision outcomes for one offered item.
struct ReservoirDecision {
  enum class Action : std::uint8_t {
    kAppend,   // t <= M: store at the next free slot
    kReplace,  // heads: overwrite slot `slot`
    kDiscard,  // tails: drop the offered item
  };
  Action action = Action::kDiscard;
  std::uint64_t slot = 0;
};

class ReservoirPolicy {
 public:
  ReservoirPolicy(std::uint64_t capacity, std::uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  /// Registers the next offered insertion and returns what to do with it.
  /// Appends always target the next free slot, so the stored prefix stays
  /// compact (deletions swap-fill from the top; see SampleMirror).
  ReservoirDecision offer() {
    ++seen_;
    ++size_;
    const std::uint64_t pending = del_in_ + del_out_;
    if (pending == 0) {
      if (stored_ < capacity_) {
        ++stored_;
        return {ReservoirDecision::Action::kAppend, stored_ - 1};
      }
      // Heads with probability M/t over the current population: keep the
      // newcomer in a random slot.  With no deletions size_ == seen_, so
      // this is the legacy draw bit for bit.
      if (rng_.next_below(size_) < capacity_) {
        return {ReservoirDecision::Action::kReplace,
                rng_.next_below(capacity_)};
      }
      return {ReservoirDecision::Action::kDiscard, 0};
    }
    // Random pairing: this insertion compensates one uncompensated deletion,
    // chosen uniformly among them; a del_in vacancy re-fills the sample.
    if (rng_.next_below(pending) < del_in_) {
      --del_in_;
      ++stored_;
      return {ReservoirDecision::Action::kAppend, stored_ - 1};
    }
    --del_out_;
    return {ReservoirDecision::Action::kDiscard, 0};
  }

  /// Registers a deletion that evicted a resident sample item.  The caller
  /// (who owns the storage) must also shrink the stored prefix by one
  /// (swap-fill from the top; see SampleMirror).
  void remove_resident() {
    --size_;  // a resident item is live, so size_ > 0 here
    ++deletions_;
    ++del_in_;
    ++evictions_;
    --stored_;
  }

  /// Registers a deletion that matched no resident item.  While the sample
  /// covers the whole live population (stored == net size — i.e. the
  /// reservoir never overflowed for the current stream) a miss is provably
  /// a deletion of a never-inserted edge: it is dropped as a counted no-op
  /// instead of poisoning the pairing counters (which would silently
  /// discard the next live insertion; size_ would even wrap at zero).
  /// Once the sample is a strict subset a miss is genuinely ambiguous and
  /// becomes an out-of-sample deletion (del_out), which is why the caller
  /// contract says deletions should target existing edges.  Returns true
  /// when the deletion was accepted as real.
  bool remove_missing() {
    if (stored_ == size_) {
      ++phantom_deletions_;
      return false;
    }
    --size_;
    ++deletions_;
    ++del_out_;
    return true;
  }

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }

  /// Total insertions offered so far (load accounting; equals the
  /// correction-factor t only for insert-only streams).
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }

  /// The `t` of the correction factor under random pairing: current net
  /// population plus uncompensated deletions.  Equal to seen() on
  /// insert-only streams; the sample is a uniform min(M, t)-subset of the
  /// conceptual t-population restricted to live items.
  [[nodiscard]] std::uint64_t effective_seen() const noexcept {
    return size_ + del_in_ + del_out_;
  }

  /// Net population size (insertions minus deletions).
  [[nodiscard]] std::uint64_t net_size() const noexcept { return size_; }

  [[nodiscard]] std::uint64_t stored() const noexcept { return stored_; }

  /// Total deletions registered / deletions that evicted a resident item.
  [[nodiscard]] std::uint64_t deletions() const noexcept { return deletions_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

  /// Deletions provably targeting never-inserted items, dropped as no-ops
  /// (only detectable while the sample covers the live population).
  [[nodiscard]] std::uint64_t phantom_deletions() const noexcept {
    return phantom_deletions_;
  }

  /// Uncompensated deletions outstanding (random-pairing debt).
  [[nodiscard]] std::uint64_t pending_deletions() const noexcept {
    return del_in_ + del_out_;
  }

 private:
  std::uint64_t capacity_;
  std::uint64_t seen_ = 0;
  std::uint64_t size_ = 0;    ///< net population (inserts - deletes)
  std::uint64_t stored_ = 0;  ///< resident sample size
  std::uint64_t del_in_ = 0;   ///< uncompensated deletions that evicted
  std::uint64_t del_out_ = 0;  ///< uncompensated deletions that missed
  std::uint64_t deletions_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t phantom_deletions_ = 0;
  Xoshiro256ss rng_;
};

/// Batched reservoir ingestion: the host computes the decisions for a whole
/// batch up front and materializes them into a compact staging image that a
/// single bulk transfer can flush to the device.  Appends coalesce into one
/// contiguous run starting at `base_slot()`; replacements fold to their
/// final value (last offer to a slot wins, including a replacement landing
/// on an item appended earlier in the same batch, which is rewritten in the
/// staging image instead of becoming a second device write).
///
/// The object is intended to live as long as its reservoir and be reused
/// across batches — begin() clears content but keeps every allocation
/// (vectors, hash buckets, run scratch), so steady-state staging performs
/// no heap traffic.
template <typename T>
class ReservoirStaging {
 public:
  /// Starts a new batch.  `base_slot` is the next free append slot, i.e.
  /// the owning policy's stored() before the first offer of this batch.
  void begin(std::uint64_t base_slot) {
    base_slot_ = base_slot;
    appends_.clear();
    replaces_.clear();
    replace_index_.clear();
  }

  /// Offers `item` to `policy` and stages the resulting decision.
  void stage(ReservoirPolicy& policy, const T& item) {
    stage_decision(policy.offer(), item);
  }

  /// Stages a decision computed elsewhere (callers that also feed a
  /// SampleMirror need the decision themselves).
  void stage_decision(const ReservoirDecision& d, const T& item) {
    switch (d.action) {
      case ReservoirDecision::Action::kAppend:
        appends_.push_back(item);
        break;
      case ReservoirDecision::Action::kReplace:
        if (d.slot >= base_slot_ &&
            d.slot - base_slot_ < appends_.size()) {
          appends_[static_cast<std::size_t>(d.slot - base_slot_)] = item;
        } else {
          const auto [it, inserted] =
              replace_index_.try_emplace(d.slot, replaces_.size());
          if (inserted) {
            replaces_.emplace_back(d.slot, item);
          } else {
            replaces_[it->second].second = item;
          }
        }
        break;
      case ReservoirDecision::Action::kDiscard:
        break;
    }
  }

  [[nodiscard]] std::uint64_t base_slot() const noexcept { return base_slot_; }
  [[nodiscard]] const std::vector<T>& appends() const noexcept {
    return appends_;
  }
  [[nodiscard]] std::uint64_t replace_count() const noexcept {
    return replaces_.size();
  }
  /// Items materialized in the image (appends + folded replacements).
  [[nodiscard]] std::uint64_t staged_items() const noexcept {
    return appends_.size() + replaces_.size();
  }
  [[nodiscard]] bool empty() const noexcept {
    return appends_.empty() && replaces_.empty();
  }

  /// Invokes fn(first_slot, items_ptr, count) once per maximal run of
  /// consecutive replaced slots (final values).  Sorts the staged
  /// replacements; call once per batch, after staging is complete.
  template <typename Fn>
  void for_each_replace_run(Fn&& fn) {
    std::sort(replaces_.begin(), replaces_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t i = 0;
    while (i < replaces_.size()) {
      run_scratch_.clear();
      const std::uint64_t first = replaces_[i].first;
      std::uint64_t expected = first;
      while (i < replaces_.size() && replaces_[i].first == expected) {
        run_scratch_.push_back(replaces_[i].second);
        ++expected;
        ++i;
      }
      fn(first, run_scratch_.data(), run_scratch_.size());
    }
  }

 private:
  std::uint64_t base_slot_ = 0;
  std::vector<T> appends_;
  std::vector<std::pair<std::uint64_t, T>> replaces_;
  std::unordered_map<std::uint64_t, std::size_t> replace_index_;
  std::vector<T> run_scratch_;
};

/// Host-side mirror of one device-resident sample: slot -> item and
/// item -> slot.  The host computes every reservoir decision (the staging
/// images), so it can maintain an exact copy of the bank's sample content
/// without any device reads — which is what lets a deletion be resolved
/// (was it sampled? at which slot?) and staged as ordinary slot writes.
/// Eviction swap-fills the freed slot with the top item, keeping the
/// resident prefix [0, size()) compact so appends stay contiguous.
template <typename T>
class SampleMirror {
 public:
  /// Applies one staged insertion decision.
  void apply(const ReservoirDecision& d, const T& item) {
    switch (d.action) {
      case ReservoirDecision::Action::kAppend:
        index_[item] = slots_.size();
        slots_.push_back(item);
        break;
      case ReservoirDecision::Action::kReplace:
        index_.erase(slots_[static_cast<std::size_t>(d.slot)]);
        slots_[static_cast<std::size_t>(d.slot)] = item;
        index_[item] = d.slot;
        break;
      case ReservoirDecision::Action::kDiscard:
        break;
    }
  }

  /// Resolves a deletion against the resident sample.  Returns the evicted
  /// slot (the caller stages a device write of the swapped-in item unless
  /// the top slot itself was evicted), or no value when `item` is not
  /// resident.
  std::optional<std::uint64_t> evict(const T& item) {
    const auto it = index_.find(item);
    if (it == index_.end()) return std::nullopt;
    const std::uint64_t slot = it->second;
    index_.erase(it);
    const std::uint64_t last = slots_.size() - 1;
    if (slot != last) {
      slots_[static_cast<std::size_t>(slot)] =
          slots_[static_cast<std::size_t>(last)];
      index_[slots_[static_cast<std::size_t>(slot)]] = slot;
    }
    slots_.pop_back();
    return slot;
  }

  /// Rebuilds the mirror from the storage's resident content (slot order).
  /// Used to materialize mirrors lazily: insert-only sessions skip mirror
  /// maintenance entirely, and the first deletion reconstructs the
  /// occupancy map from one bulk read of the resident samples.
  void assign(std::vector<T> items) {
    slots_ = std::move(items);
    index_.clear();
    index_.reserve(slots_.size());
    for (std::uint64_t s = 0; s < slots_.size(); ++s) index_[slots_[s]] = s;
  }

  [[nodiscard]] bool contains(const T& item) const {
    return index_.contains(item);
  }
  [[nodiscard]] std::uint64_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] const T& at(std::uint64_t slot) const {
    return slots_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] const std::vector<T>& items() const noexcept { return slots_; }

 private:
  std::vector<T> slots_;
  std::unordered_map<T, std::uint64_t> index_;
};

/// Host-side reservoir over arbitrary items.  Fully dynamic: remove()
/// handles deletions via random pairing.  The item type must be hashable
/// (deletions resolve sample membership through a SampleMirror).
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(std::uint64_t capacity, std::uint64_t seed)
      : policy_(capacity, seed) {}

  void offer(const T& item) { mirror_.apply(policy_.offer(), item); }

  /// Deletes an item from the sampled stream.  While nothing has been
  /// discarded the mirror covers the population and a never-inserted
  /// delete is a detected no-op; once the reservoir has overflowed the
  /// caller must guarantee the item was inserted before (a phantom delete
  /// is then indistinguishable from a discarded item and biases the
  /// pairing counters).
  void remove(const T& item) {
    if (mirror_.evict(item).has_value()) {
      policy_.remove_resident();
    } else {
      (void)policy_.remove_missing();
    }
  }

  [[nodiscard]] const std::vector<T>& items() const noexcept {
    return mirror_.items();
  }
  [[nodiscard]] std::uint64_t seen() const noexcept { return policy_.seen(); }
  [[nodiscard]] std::uint64_t effective_seen() const noexcept {
    return policy_.effective_seen();
  }
  [[nodiscard]] std::uint64_t net_size() const noexcept {
    return policy_.net_size();
  }
  [[nodiscard]] std::uint64_t capacity() const noexcept {
    return policy_.capacity();
  }

 private:
  ReservoirPolicy policy_;
  SampleMirror<T> mirror_;
};

}  // namespace pimtc::sketch
