// Reservoir sampling (paper Section 3.3, after TRIÈST).
//
// Each PIM core keeps at most M edges in its DRAM bank.  For the t-th edge
// offered (t > M) a biased coin with heads probability M/t decides whether a
// uniformly random resident edge is replaced.  The decision logic is
// factored out of the storage (`ReservoirPolicy`) because in the simulator
// the storage is the DPU's MRAM, not a host vector; `ReservoirSampler<T>`
// composes the two for host-side use and tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/prng.hpp"

namespace pimtc::sketch {

/// Decision outcomes for one offered item.
struct ReservoirDecision {
  enum class Action : std::uint8_t {
    kAppend,   // t <= M: store at the next free slot
    kReplace,  // heads: overwrite slot `slot`
    kDiscard,  // tails: drop the offered item
  };
  Action action = Action::kDiscard;
  std::uint64_t slot = 0;
};

class ReservoirPolicy {
 public:
  ReservoirPolicy(std::uint64_t capacity, std::uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  /// Registers the next offered item and returns what to do with it.
  ReservoirDecision offer() {
    ++seen_;
    if (seen_ <= capacity_) {
      return {ReservoirDecision::Action::kAppend, seen_ - 1};
    }
    // Heads with probability M/t: keep the newcomer in a random slot.
    if (rng_.next_below(seen_) < capacity_) {
      return {ReservoirDecision::Action::kReplace, rng_.next_below(capacity_)};
    }
    return {ReservoirDecision::Action::kDiscard, 0};
  }

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }

  /// Total items offered so far — the `t` in the correction factor.
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }

  [[nodiscard]] std::uint64_t stored() const noexcept {
    return seen_ < capacity_ ? seen_ : capacity_;
  }

 private:
  std::uint64_t capacity_;
  std::uint64_t seen_ = 0;
  Xoshiro256ss rng_;
};

/// Host-side reservoir over arbitrary items.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(std::uint64_t capacity, std::uint64_t seed)
      : policy_(capacity, seed) {
    items_.reserve(static_cast<std::size_t>(capacity));
  }

  void offer(const T& item) {
    const ReservoirDecision d = policy_.offer();
    switch (d.action) {
      case ReservoirDecision::Action::kAppend:
        items_.push_back(item);
        break;
      case ReservoirDecision::Action::kReplace:
        items_[static_cast<std::size_t>(d.slot)] = item;
        break;
      case ReservoirDecision::Action::kDiscard:
        break;
    }
  }

  [[nodiscard]] const std::vector<T>& items() const noexcept { return items_; }
  [[nodiscard]] std::uint64_t seen() const noexcept { return policy_.seen(); }
  [[nodiscard]] std::uint64_t capacity() const noexcept {
    return policy_.capacity();
  }

 private:
  ReservoirPolicy policy_;
  std::vector<T> items_;
};

}  // namespace pimtc::sketch
