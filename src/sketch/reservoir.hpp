// Reservoir sampling (paper Section 3.3, after TRIÈST).
//
// Each PIM core keeps at most M edges in its DRAM bank.  For the t-th edge
// offered (t > M) a biased coin with heads probability M/t decides whether a
// uniformly random resident edge is replaced.  The decision logic is
// factored out of the storage (`ReservoirPolicy`) because in the simulator
// the storage is the DPU's MRAM, not a host vector; `ReservoirSampler<T>`
// composes the two for host-side use and tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/prng.hpp"

namespace pimtc::sketch {

/// Decision outcomes for one offered item.
struct ReservoirDecision {
  enum class Action : std::uint8_t {
    kAppend,   // t <= M: store at the next free slot
    kReplace,  // heads: overwrite slot `slot`
    kDiscard,  // tails: drop the offered item
  };
  Action action = Action::kDiscard;
  std::uint64_t slot = 0;
};

class ReservoirPolicy {
 public:
  ReservoirPolicy(std::uint64_t capacity, std::uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  /// Registers the next offered item and returns what to do with it.
  ReservoirDecision offer() {
    ++seen_;
    if (seen_ <= capacity_) {
      return {ReservoirDecision::Action::kAppend, seen_ - 1};
    }
    // Heads with probability M/t: keep the newcomer in a random slot.
    if (rng_.next_below(seen_) < capacity_) {
      return {ReservoirDecision::Action::kReplace, rng_.next_below(capacity_)};
    }
    return {ReservoirDecision::Action::kDiscard, 0};
  }

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }

  /// Total items offered so far — the `t` in the correction factor.
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }

  [[nodiscard]] std::uint64_t stored() const noexcept {
    return seen_ < capacity_ ? seen_ : capacity_;
  }

 private:
  std::uint64_t capacity_;
  std::uint64_t seen_ = 0;
  Xoshiro256ss rng_;
};

/// Batched reservoir ingestion: the host computes the decisions for a whole
/// batch up front and materializes them into a compact staging image that a
/// single bulk transfer can flush to the device.  Appends coalesce into one
/// contiguous run starting at `base_slot()`; replacements fold to their
/// final value (last offer to a slot wins, including a replacement landing
/// on an item appended earlier in the same batch, which is rewritten in the
/// staging image instead of becoming a second device write).
///
/// The object is intended to live as long as its reservoir and be reused
/// across batches — begin() clears content but keeps every allocation
/// (vectors, hash buckets, run scratch), so steady-state staging performs
/// no heap traffic.
template <typename T>
class ReservoirStaging {
 public:
  /// Starts a new batch.  `base_slot` is the next free append slot, i.e.
  /// the owning policy's stored() before the first offer of this batch.
  void begin(std::uint64_t base_slot) {
    base_slot_ = base_slot;
    appends_.clear();
    replaces_.clear();
    replace_index_.clear();
  }

  /// Offers `item` to `policy` and stages the resulting decision.
  void stage(ReservoirPolicy& policy, const T& item) {
    const ReservoirDecision d = policy.offer();
    switch (d.action) {
      case ReservoirDecision::Action::kAppend:
        appends_.push_back(item);
        break;
      case ReservoirDecision::Action::kReplace:
        if (d.slot >= base_slot_ &&
            d.slot - base_slot_ < appends_.size()) {
          appends_[static_cast<std::size_t>(d.slot - base_slot_)] = item;
        } else {
          const auto [it, inserted] =
              replace_index_.try_emplace(d.slot, replaces_.size());
          if (inserted) {
            replaces_.emplace_back(d.slot, item);
          } else {
            replaces_[it->second].second = item;
          }
        }
        break;
      case ReservoirDecision::Action::kDiscard:
        break;
    }
  }

  [[nodiscard]] std::uint64_t base_slot() const noexcept { return base_slot_; }
  [[nodiscard]] const std::vector<T>& appends() const noexcept {
    return appends_;
  }
  [[nodiscard]] std::uint64_t replace_count() const noexcept {
    return replaces_.size();
  }
  /// Items materialized in the image (appends + folded replacements).
  [[nodiscard]] std::uint64_t staged_items() const noexcept {
    return appends_.size() + replaces_.size();
  }
  [[nodiscard]] bool empty() const noexcept {
    return appends_.empty() && replaces_.empty();
  }

  /// Invokes fn(first_slot, items_ptr, count) once per maximal run of
  /// consecutive replaced slots (final values).  Sorts the staged
  /// replacements; call once per batch, after staging is complete.
  template <typename Fn>
  void for_each_replace_run(Fn&& fn) {
    std::sort(replaces_.begin(), replaces_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t i = 0;
    while (i < replaces_.size()) {
      run_scratch_.clear();
      const std::uint64_t first = replaces_[i].first;
      std::uint64_t expected = first;
      while (i < replaces_.size() && replaces_[i].first == expected) {
        run_scratch_.push_back(replaces_[i].second);
        ++expected;
        ++i;
      }
      fn(first, run_scratch_.data(), run_scratch_.size());
    }
  }

 private:
  std::uint64_t base_slot_ = 0;
  std::vector<T> appends_;
  std::vector<std::pair<std::uint64_t, T>> replaces_;
  std::unordered_map<std::uint64_t, std::size_t> replace_index_;
  std::vector<T> run_scratch_;
};

/// Host-side reservoir over arbitrary items.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(std::uint64_t capacity, std::uint64_t seed)
      : policy_(capacity, seed) {
    items_.reserve(static_cast<std::size_t>(capacity));
  }

  void offer(const T& item) {
    const ReservoirDecision d = policy_.offer();
    switch (d.action) {
      case ReservoirDecision::Action::kAppend:
        items_.push_back(item);
        break;
      case ReservoirDecision::Action::kReplace:
        items_[static_cast<std::size_t>(d.slot)] = item;
        break;
      case ReservoirDecision::Action::kDiscard:
        break;
    }
  }

  [[nodiscard]] const std::vector<T>& items() const noexcept { return items_; }
  [[nodiscard]] std::uint64_t seen() const noexcept { return policy_.seen(); }
  [[nodiscard]] std::uint64_t capacity() const noexcept {
    return policy_.capacity();
  }

 private:
  ReservoirPolicy policy_;
  std::vector<T> items_;
};

}  // namespace pimtc::sketch
