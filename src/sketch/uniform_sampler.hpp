// Uniform edge sampling at the host (paper Section 3.2, after DOULION).
//
// While reading the input stream the host discards each edge with
// probability 1-p before it ever reaches batch building, shrinking both the
// host work and the CPU->PIM transfer volume.  The final count is corrected
// by 1/p^3 (a triangle survives iff all three of its edges do).
#pragma once

#include "common/math_util.hpp"
#include "common/prng.hpp"
#include "common/types.hpp"

namespace pimtc::sketch {

class UniformSampler {
 public:
  /// keep_probability == 1 short-circuits to "keep everything" (exact mode).
  UniformSampler(double keep_probability, std::uint64_t seed)
      : p_(keep_probability), rng_(seed) {}

  [[nodiscard]] bool keep(const Edge& /*edge*/) {
    if (p_ >= 1.0) {
      ++kept_;
      ++seen_;
      return true;
    }
    ++seen_;
    if (rng_.next_bernoulli(p_)) {
      ++kept_;
      return true;
    }
    return false;
  }

  [[nodiscard]] double keep_probability() const noexcept { return p_; }

  /// Multiplier that converts a count over the sampled graph into an
  /// unbiased estimate for the full graph.
  [[nodiscard]] double correction() const noexcept {
    return uniform_sampling_correction(p_);
  }

  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t kept() const noexcept { return kept_; }

 private:
  double p_;
  Xoshiro256ss rng_;
  std::uint64_t seen_ = 0;
  std::uint64_t kept_ = 0;
};

}  // namespace pimtc::sketch
