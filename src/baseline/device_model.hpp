// Analytic platform models for the cross-platform comparison figures.
//
// The paper benchmarks three machines: a dual Xeon Silver 4215 running the
// CSR-converting CPU code, an A100 running cuGraph, and the 2560-DPU UPMEM
// system.  Only the last is simulated in full; the CPU and GPU comparators
// are *modeled* by mapping the platform-independent work profile of the
// baseline algorithm (conversion record-ops, intersection merge steps) to
// seconds through per-platform throughput constants.
//
// The constants are calibrated to public figures: a 32-thread Xeon pair
// sustains on the order of 1e9 merge-steps/s/thread peak but ~2.5e9
// steps/s aggregate on irregular graph traversal; cuGraph on an A100 runs
// TC 20-40x faster than a 2-socket CPU on COO-ingested graphs.  Absolute
// values are not the point (DESIGN.md) — the *ratios* and the conversion
// asymmetry that drive Figures 6 and 7 are.
#pragma once

#include "baseline/cpu_tc.hpp"

namespace pimtc::baseline {

struct PlatformModel {
  /// Conversion record-ops per second (COO -> CSR build, memory bound).
  double conversion_ops_per_s = 0.0;
  /// Adjacency-merge steps per second during counting.
  double steps_per_s = 0.0;
  /// Fixed per-run overhead (kernel launches, dispatch).
  double fixed_overhead_s = 0.0;
  /// Ingest bandwidth for new COO batches (dynamic updates), bytes/s.
  double ingest_bytes_per_s = 0.0;
  /// True when the platform must rebuild its internal structure from the
  /// full accumulated graph on every dynamic recount (the CPU/CSR path).
  bool rebuilds_on_update = true;

  /// Modeled time of one static count run.
  [[nodiscard]] double static_seconds(const TcWorkProfile& p) const noexcept {
    return fixed_overhead_s +
           static_cast<double>(p.conversion_ops) / conversion_ops_per_s +
           static_cast<double>(p.intersection_steps) / steps_per_s;
  }

  /// Modeled time of one dynamic recount where `batch_bytes` new bytes
  /// arrived and `p` profiles the *current full graph*.
  [[nodiscard]] double dynamic_seconds(const TcWorkProfile& p,
                                       std::uint64_t batch_bytes)
      const noexcept {
    double seconds =
        fixed_overhead_s +
        static_cast<double>(batch_bytes) / ingest_bytes_per_s +
        static_cast<double>(p.intersection_steps) / steps_per_s;
    if (rebuilds_on_update) {
      seconds +=
          static_cast<double>(p.conversion_ops) / conversion_ops_per_s;
    }
    return seconds;
  }
};

/// Dual Xeon Silver 4215 (16C/32T) running the CSR-internal baseline [51].
[[nodiscard]] PlatformModel xeon_4215_model() noexcept;

/// NVIDIA A100 80GB running a cuGraph-style COO counter [166].
[[nodiscard]] PlatformModel a100_model() noexcept;

}  // namespace pimtc::baseline
