#include "baseline/device_model.hpp"

namespace pimtc::baseline {

PlatformModel xeon_4215_model() noexcept {
  PlatformModel m;
  // 16 cores / 32 threads at ~2.5 GHz, rates for *paper-scale* graphs
  // (tens to hundreds of millions of edges).  The CSR build scatters into
  // offset/target arrays far larger than the 2 x 11 MB LLC — random-DRAM
  // bound at a few hundred M records/s across the socket pair.  The merge
  // intersections, in contrast, walk two *sequential* adjacency streams:
  // bandwidth-friendly, a few G steps/s aggregate.
  m.conversion_ops_per_s = 4.0e8;
  m.steps_per_s = 2.2e9;
  m.fixed_overhead_s = 1.0e-3;
  m.ingest_bytes_per_s = 8.0e9;  // memcpy-speed COO append
  m.rebuilds_on_update = true;   // CSR must be rebuilt every recount
  return m;
}

PlatformModel a100_model() noexcept {
  PlatformModel m;
  // ~2 TB/s HBM and enough threads to hide DRAM latency; cuGraph TC lands
  // 20-40x over the dual-socket CPU on these workloads.
  m.conversion_ops_per_s = 1.2e10;
  m.steps_per_s = 2.5e10;
  m.fixed_overhead_s = 0.4e-3;   // kernel launches + host orchestration
  m.ingest_bytes_per_s = 20e9;   // PCIe-4 x16 ~ staged COO append
  m.rebuilds_on_update = false;  // updates its internal COO directly
  return m;
}

}  // namespace pimtc::baseline
