#include "baseline/cpu_tc.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/timer.hpp"

namespace pimtc::baseline {

CpuTriangleCounter::CpuTriangleCounter(ThreadPool* pool)
    : pool_(pool ? pool : &ThreadPool::global()) {}

CpuTcResult CpuTriangleCounter::count(const graph::EdgeList& coo) const {
  CpuTcResult result;
  result.profile.edges = coo.num_edges();
  result.profile.nodes = coo.num_nodes();

  // ---- stage 1: COO -> degree-ordered oriented CSR -------------------------
  WallTimer convert_timer;
  const NodeId n = coo.num_nodes();

  // Degree pass over the raw COO.
  std::vector<std::uint32_t> degree(n, 0);
  for (const Edge& e : coo) {
    if (e.is_loop()) continue;
    ++degree[e.u];
    ++degree[e.v];
  }

  // Orientation: from the endpoint with (degree, id) lexicographically
  // smaller toward the larger — the classic total order that makes the
  // forward algorithm run in O(m^{3/2}) on any graph.
  const auto precedes = [&degree](NodeId a, NodeId b) {
    return degree[a] != degree[b] ? degree[a] < degree[b] : a < b;
  };

  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : coo) {
    if (e.is_loop()) continue;
    ++offsets[(precedes(e.u, e.v) ? e.u : e.v) + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> targets(offsets.back());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : coo) {
    if (e.is_loop()) continue;
    const NodeId src = precedes(e.u, e.v) ? e.u : e.v;
    const NodeId dst = src == e.u ? e.v : e.u;
    targets[cursor[src]++] = dst;
  }

  // Sort adjacency lists (parallel over vertices).
  pool_->parallel_for(n, [&](std::size_t u) {
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[u]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]),
              [&precedes](NodeId a, NodeId b) { return precedes(a, b); });
  });
  result.measured_convert_s = convert_timer.elapsed_s();

  // Conversion work: degree pass + count pass + scatter pass (3 touches per
  // edge) plus the comparison volume of the adjacency sorts.
  std::uint64_t sort_ops = 0;
  for (NodeId u = 0; u < n; ++u) {
    const auto d = static_cast<std::uint64_t>(offsets[u + 1] - offsets[u]);
    if (d > 1) {
      sort_ops += d * (64 - static_cast<std::uint64_t>(
                                std::countl_zero(d - 1)));
    }
  }
  result.profile.conversion_ops = 3 * result.profile.edges + sort_ops;

  // ---- stage 2: forward counting -------------------------------------------
  WallTimer count_timer;
  const std::size_t num_workers = pool_->size();
  std::vector<TriangleCount> partial(num_workers, 0);
  std::vector<std::uint64_t> steps(num_workers, 0);

  pool_->parallel_chunks(n, [&](std::size_t w, std::size_t lo, std::size_t hi) {
    TriangleCount local = 0;
    std::uint64_t local_steps = 0;
    for (std::size_t u = lo; u < hi; ++u) {
      const std::size_t ub = offsets[u];
      const std::size_t ue = offsets[u + 1];
      for (std::size_t i = ub; i < ue; ++i) {
        const NodeId v = targets[i];
        // Merge N+(u) and N+(v) under the orientation order.
        std::size_t a = ub;
        std::size_t b = offsets[v];
        const std::size_t ae = ue;
        const std::size_t be = offsets[v + 1];
        while (a < ae && b < be) {
          ++local_steps;
          const NodeId x = targets[a];
          const NodeId y = targets[b];
          if (x == y) {
            ++local;
            ++a;
            ++b;
          } else if (precedes(x, y)) {
            ++a;
          } else {
            ++b;
          }
        }
      }
    }
    partial[w] += local;
    steps[w] += local_steps;
  });

  for (std::size_t w = 0; w < num_workers; ++w) {
    result.triangles += partial[w];
    result.profile.intersection_steps += steps[w];
  }
  result.measured_count_s = count_timer.elapsed_s();
  result.profile.triangles = result.triangles;
  return result;
}

}  // namespace pimtc::baseline
