// CPU triangle-counting baseline — stand-in for the paper's comparator
// [51]/[165] (Tom et al. HPEC'17 / Bader's triangle-counting code): accepts
// COO, converts internally to CSR, counts with the degree-ordered forward
// algorithm (merge intersections over orientation toward higher degree).
//
// Besides the count, it returns a *work profile* (conversion record writes,
// intersection merge steps) and locally measured wall-clock for the two
// stages.  The profile feeds the analytic platform models in
// device_model.hpp, which is how Figures 6 and 7 compare platforms that do
// not exist in this environment (see DESIGN.md).
#pragma once

#include <cstdint>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "common/work_profile.hpp"
#include "graph/coo.hpp"

namespace pimtc::baseline {

/// Platform-independent operation counts of one COO -> count run.  The type
/// is shared with the unified engine report (engine::WorkProfile aliases it
/// too) so that a CountReport's work profile feeds the platform models
/// directly.
using TcWorkProfile = pimtc::WorkProfile;

struct CpuTcResult {
  TriangleCount triangles = 0;
  TcWorkProfile profile;
  double measured_convert_s = 0.0;  ///< local wall-clock, COO -> CSR
  double measured_count_s = 0.0;    ///< local wall-clock, counting
};

class CpuTriangleCounter {
 public:
  /// `pool` defaults to the process-global pool.
  explicit CpuTriangleCounter(ThreadPool* pool = nullptr);

  /// Full run: internal CSR conversion + count (the conversion is charged on
  /// every call — exactly the property the dynamic experiment exposes).
  [[nodiscard]] CpuTcResult count(const graph::EdgeList& coo) const;

 private:
  ThreadPool* pool_;
};

}  // namespace pimtc::baseline
