// Dynamic-graph driver for the CPU baseline (Figure 7).
//
// COO makes dynamic updates trivial — append the batch — but a CSR-internal
// counter must rebuild its entire structure from the accumulated COO before
// every recount.  This class charges exactly that: every recount() pays the
// full conversion of everything received so far, then counts.
#pragma once

#include <span>

#include "baseline/cpu_tc.hpp"
#include "graph/coo.hpp"

namespace pimtc::baseline {

class DynamicCpuCounter {
 public:
  explicit DynamicCpuCounter(ThreadPool* pool = nullptr) : counter_(pool) {}

  void add_edges(std::span<const Edge> batch) { accumulated_.append(batch); }

  /// Rebuild-from-scratch recount over everything added so far.
  [[nodiscard]] CpuTcResult recount() const { return counter_.count(accumulated_); }

  [[nodiscard]] const graph::EdgeList& graph() const noexcept {
    return accumulated_;
  }

 private:
  CpuTriangleCounter counter_;
  graph::EdgeList accumulated_;
};

}  // namespace pimtc::baseline
