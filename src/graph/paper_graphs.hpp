// Structure-matched stand-ins for the seven evaluation graphs of Table 1.
//
// The paper's datasets (42 M - 268 M edges) do not fit this environment, so
// each is replaced by a seeded synthetic graph that preserves the statistics
// the experiments actually depend on — degree skew (max vs average degree),
// clustering / triangle density, and the *relative ordering by maximum
// degree* that drives Figure 3 and the Misra-Gries study (Figure 5):
//
//   V1r  <  LiveJournal  ~  Human-Jung  <  Orkut  <  Kron23  <  Kron24  <  WikipediaEdit
//
// `scale` multiplies the default edge budget (1.0 ~ a quarter-million edges
// per graph, sized so the full benchmark suite runs on a 2-core host that is
// also simulating thousands of DPU kernels functionally).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "graph/coo.hpp"

namespace pimtc::graph {

enum class PaperGraph {
  kKronecker23,
  kKronecker24,
  kV1r,
  kLiveJournal,
  kOrkut,
  kHumanJung,
  kWikipediaEdit,
};

inline constexpr std::array<PaperGraph, 7> kAllPaperGraphs = {
    PaperGraph::kKronecker23, PaperGraph::kKronecker24,
    PaperGraph::kV1r,         PaperGraph::kLiveJournal,
    PaperGraph::kOrkut,       PaperGraph::kHumanJung,
    PaperGraph::kWikipediaEdit,
};

/// Published statistics (Tables 1 and 2) for side-by-side reporting.
struct PaperGraphInfo {
  std::string_view name;
  EdgeCount paper_edges;
  EdgeCount paper_nodes;
  TriangleCount paper_triangles;
  EdgeCount paper_max_degree;
  double paper_avg_degree;
  double paper_clustering;
};

[[nodiscard]] const PaperGraphInfo& paper_graph_info(PaperGraph g) noexcept;

/// Builds the stand-in.  Deterministic per (graph, scale, seed); already
/// simple (preprocessed except for the shuffle, which callers apply per the
/// methodology).
[[nodiscard]] EdgeList make_paper_graph(PaperGraph g, double scale,
                                        std::uint64_t seed);

}  // namespace pimtc::graph
