#include "graph/preprocess.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"

namespace pimtc::graph {

PreprocessStats remove_loops_and_duplicates(EdgeList& list) {
  PreprocessStats stats;
  stats.input_edges = list.num_edges();

  std::unordered_set<Edge> seen;
  seen.reserve(list.num_edges() * 2);

  std::vector<Edge>& edges = list.mutable_edges();
  std::size_t write = 0;
  for (const Edge& e : edges) {
    if (e.is_loop()) {
      ++stats.removed_self_loops;
      continue;
    }
    if (!seen.insert(e.canonical()).second) {
      ++stats.removed_duplicates;
      continue;
    }
    edges[write++] = e;
  }
  edges.resize(write);
  list.rescan_num_nodes();
  stats.output_edges = write;
  return stats;
}

void shuffle_edges(EdgeList& list, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Edge>& edges = list.mutable_edges();
  for (std::size_t i = edges.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(edges[i - 1], edges[j]);
  }
}

PreprocessStats preprocess(EdgeList& list, std::uint64_t seed) {
  PreprocessStats stats = remove_loops_and_duplicates(list);
  shuffle_edges(list, seed);
  return stats;
}

}  // namespace pimtc::graph
