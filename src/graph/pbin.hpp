// `.pbin` — the compact binary edge format of the out-of-core data path.
//
// Text and MatrixMarket parsing dominate end-to-end time once graphs stop
// fitting in page cache (the GraphChallenge survey's ingest observation);
// `.pbin` stores the same COO stream as fixed-width little-endian records
// behind a 40-byte header, so ingest becomes a sequential byte copy and the
// chunked reader (stream_reader.hpp) can mmap it and hand out zero-copy
// chunk views.  Layout, all fields little-endian:
//
//   offset  size  field
//        0     8  magic "PIMTCPB1"
//        8     4  version (currently 1)
//       12     4  flags (bit 0: checksum present)
//       16     8  num_nodes — one past the largest referenced node id
//       24     8  num_edges
//       32     8  XXH64 of the edge payload (seed 0), 0 when the flag is off
//       40  m*8  edge records: u then v, 4 bytes each
//
// The checksum is optional (--no-checksum on `pimtc convert`) because
// scratch conversions of huge files may not want the extra read pass; when
// present, both read_bin and the streaming reader verify it.  Writers that
// do not know the edge count up front stream through PbinWriter, which
// back-patches the header on finish().
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <span>

#include "common/hash.hpp"
#include "graph/coo.hpp"

namespace pimtc::graph {

inline constexpr std::array<char, 8> kPbinMagic = {'P', 'I', 'M', 'T',
                                                   'C', 'P', 'B', '1'};
inline constexpr std::uint32_t kPbinVersion = 1;
inline constexpr std::uint32_t kPbinFlagChecksum = 1u << 0;
inline constexpr std::size_t kPbinHeaderBytes = 40;

/// Decoded `.pbin` header.
struct PbinInfo {
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t num_nodes = 0;
  EdgeCount num_edges = 0;
  std::uint64_t checksum = 0;

  [[nodiscard]] bool has_checksum() const noexcept {
    return (flags & kPbinFlagChecksum) != 0;
  }
};

/// Reads and validates the header only (magic, version, payload size vs the
/// file size).  Cheap: one 40-byte read plus a stat.
[[nodiscard]] PbinInfo read_bin_header(const std::filesystem::path& path);

/// Streaming `.pbin` writer: append edge chunks in arrival order, then
/// finish() seeks back and writes the real header (edge count, node bound,
/// payload checksum).  This is what `pimtc convert` uses so a text source
/// of unknown length converts in O(chunk) memory.  The destructor calls
/// finish() best-effort; call it explicitly to see write errors.
class PbinWriter {
 public:
  explicit PbinWriter(const std::filesystem::path& path,
                      bool with_checksum = true);
  ~PbinWriter();

  PbinWriter(const PbinWriter&) = delete;
  PbinWriter& operator=(const PbinWriter&) = delete;

  void append(std::span<const Edge> chunk);
  void finish();

  [[nodiscard]] EdgeCount edges_written() const noexcept { return edges_; }
  /// One past the largest node id appended so far.
  [[nodiscard]] std::uint64_t node_bound() const noexcept { return nodes_; }

 private:
  std::filesystem::path path_;
  std::FILE* file_ = nullptr;
  Xxh64 hash_;
  bool with_checksum_;
  bool finished_ = false;
  EdgeCount edges_ = 0;
  std::uint64_t nodes_ = 0;
};

/// One-shot writer: the whole list through a PbinWriter.
void write_bin(const EdgeList& list, const std::filesystem::path& path,
               bool with_checksum = true);

/// One-shot reader: the whole payload into memory, checksum verified when
/// present (and `verify_checksum`).  The streaming path for graphs beyond
/// RAM is ChunkedEdgeReader / engine::ingest_file.
[[nodiscard]] EdgeList read_bin(const std::filesystem::path& path,
                                bool verify_checksum = true);

}  // namespace pimtc::graph
