#include "graph/stats.hpp"

#include <algorithm>

#include "graph/csr.hpp"

namespace pimtc::graph {

std::vector<EdgeCount> degrees(const EdgeList& list) {
  const Csr sym = Csr::from_coo_symmetric(list);
  std::vector<EdgeCount> deg(sym.num_nodes(), 0);
  for (NodeId u = 0; u < sym.num_nodes(); ++u) deg[u] = sym.degree(u);
  return deg;
}

DegreeStats degree_stats(const EdgeList& list) {
  DegreeStats stats;
  const auto deg = degrees(list);
  if (deg.empty()) return stats;

  EdgeCount total = 0;
  NodeId touched = 0;
  for (NodeId u = 0; u < deg.size(); ++u) {
    const EdgeCount d = deg[u];
    total += d;
    if (d > 0) ++touched;
    if (d > stats.max_degree) {
      stats.max_degree = d;
      stats.argmax_node = u;
    }
    stats.num_wedges += d * (d - 1) / 2;
  }
  // Average over nodes that appear in the edge list, matching how the paper
  // reports |V| for COO datasets.
  stats.avg_degree =
      touched == 0 ? 0.0
                   : static_cast<double>(total) / static_cast<double>(touched);
  return stats;
}

double global_clustering(const EdgeList& list, TriangleCount triangles) {
  const DegreeStats stats = degree_stats(list);
  if (stats.num_wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangles) /
         static_cast<double>(stats.num_wedges);
}

}  // namespace pimtc::graph
