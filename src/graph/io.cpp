#include "graph/io.hpp"

#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pimtc::graph {
namespace {

constexpr std::array<char, 8> kMagic = {'P', 'I', 'M', 'T', 'C', 'C', 'O', '1'};

[[noreturn]] void fail(const std::filesystem::path& path, const char* what) {
  throw std::runtime_error("pimtc::graph IO error on '" + path.string() +
                           "': " + what);
}

/// First non-blank character of `line`, or nullptr for a whitespace-only
/// line.  Downloaded SNAP/KONECT files routinely end with a blank-ish line
/// or indent their '#' comments; both must parse as skippable, not as
/// malformed data.
const char* skip_blank(const std::string& line) {
  const char* p = line.c_str();
  while (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\f' || *p == '\v') {
    ++p;
  }
  return *p == '\0' ? nullptr : p;
}

/// Parses "u v" starting at `p`; fails on overflow-sized ids.
Edge parse_edge_pair(const char* p, const std::filesystem::path& path) {
  char* end = nullptr;
  const std::uint64_t u = std::strtoull(p, &end, 10);
  if (end == p) fail(path, "malformed line (expected two integers)");
  p = end;
  const std::uint64_t v = std::strtoull(p, &end, 10);
  if (end == p) fail(path, "malformed line (expected two integers)");
  if (u > 0xffffffffull || v > 0xffffffffull) fail(path, "node id > 2^32-1");
  return Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)};
}

}  // namespace

EdgeList read_coo_text(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  EdgeList list;
  std::string line;
  while (std::getline(in, line)) {
    const char* p = skip_blank(line);
    if (p == nullptr || *p == '#' || *p == '%') continue;
    list.push_back(parse_edge_pair(p, path));
  }
  return list;
}

std::vector<EdgeUpdate> read_update_stream(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  std::vector<EdgeUpdate> updates;
  std::string line;
  while (std::getline(in, line)) {
    const char* p = skip_blank(line);
    if (p == nullptr || *p == '#' || *p == '%') continue;
    bool is_insert = true;
    if (*p == '+' || *p == '-') {
      is_insert = *p == '+';
      ++p;
    }
    const Edge e = parse_edge_pair(p, path);
    updates.push_back(is_insert ? insert_of(e) : delete_of(e));
  }
  return updates;
}

void write_coo_text(const EdgeList& list, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out << "# pimtc COO edge list; " << list.num_edges() << " edges, "
      << list.num_nodes() << " nodes\n";
  for (const Edge& e : list) out << e.u << ' ' << e.v << '\n';
  if (!out) fail(path, "write failed");
}

EdgeList read_coo_binary(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) fail(path, "bad magic (not a pimtc COO file)");
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) fail(path, "truncated header");
  std::vector<Edge> edges(count);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(count * sizeof(Edge)));
  if (!in) fail(path, "truncated edge payload");
  return EdgeList(std::move(edges));
}

void write_coo_binary(const EdgeList& list, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t count = list.num_edges();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(list.edges().data()),
            static_cast<std::streamsize>(count * sizeof(Edge)));
  if (!out) fail(path, "write failed");
}

EdgeList read_coo_mtx(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  std::string line;

  // Banner: "%%MatrixMarket <object> <format> [field] [symmetry]".  Only
  // sparse matrices make sense as edge lists; a dense "array" file has no
  // index columns to read.
  if (!std::getline(in, line)) fail(path, "empty file");
  {
    std::istringstream banner(line);
    std::string tag;
    std::string object;
    std::string format;
    banner >> tag >> object >> format;
    if (tag != "%%MatrixMarket") fail(path, "missing %%MatrixMarket banner");
    if (object != "matrix" || format != "coordinate") {
      fail(path, "only 'matrix coordinate' MatrixMarket files are supported");
    }
  }

  // Comments, then the "rows cols nnz" size line.
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;
  for (;;) {
    if (!std::getline(in, line)) fail(path, "missing size line");
    if (line.empty() || line[0] == '%') continue;
    std::istringstream sizes(line);
    if (!(sizes >> rows >> cols >> nnz)) {
      fail(path, "malformed size line (expected 'rows cols nnz')");
    }
    if (rows > 0xffffffffull || cols > 0xffffffffull) {
      fail(path, "matrix dimension > 2^32-1");
    }
    break;
  }

  EdgeList list;
  list.reserve(nnz);
  std::uint64_t seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    const char* p = line.c_str();
    char* end = nullptr;
    const std::uint64_t i = std::strtoull(p, &end, 10);
    if (end == p) fail(path, "malformed entry (expected two integers)");
    p = end;
    const std::uint64_t j = std::strtoull(p, &end, 10);
    if (end == p) fail(path, "malformed entry (expected two integers)");
    // Trailing value column(s) of real/integer/complex fields are ignored.
    if (i == 0 || j == 0) fail(path, "MatrixMarket indices are 1-based");
    if (i > rows || j > cols) {
      fail(path, "entry index exceeds the declared matrix dimensions");
    }
    list.push_back(Edge{static_cast<NodeId>(i - 1),
                        static_cast<NodeId>(j - 1)});
    ++seen;
  }
  if (seen < nnz) fail(path, "fewer entries than the size line promised");
  return list;
}

EdgeList read_coo(const std::filesystem::path& path) {
  if (path.extension() == ".bin") return read_coo_binary(path);
  if (path.extension() == ".mtx") return read_coo_mtx(path);
  return read_coo_text(path);
}

}  // namespace pimtc::graph
