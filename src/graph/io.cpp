#include "graph/io.hpp"

#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pimtc::graph {
namespace {

constexpr std::array<char, 8> kMagic = {'P', 'I', 'M', 'T', 'C', 'C', 'O', '1'};

[[noreturn]] void fail(const std::filesystem::path& path, const char* what) {
  throw std::runtime_error("pimtc::graph IO error on '" + path.string() +
                           "': " + what);
}

}  // namespace

EdgeList read_coo_text(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  EdgeList list;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    const char* p = line.c_str();
    char* end = nullptr;
    u = std::strtoull(p, &end, 10);
    if (end == p) fail(path, "malformed line (expected two integers)");
    p = end;
    v = std::strtoull(p, &end, 10);
    if (end == p) fail(path, "malformed line (expected two integers)");
    if (u > 0xffffffffull || v > 0xffffffffull) fail(path, "node id > 2^32-1");
    list.push_back(Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  return list;
}

void write_coo_text(const EdgeList& list, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out << "# pimtc COO edge list; " << list.num_edges() << " edges, "
      << list.num_nodes() << " nodes\n";
  for (const Edge& e : list) out << e.u << ' ' << e.v << '\n';
  if (!out) fail(path, "write failed");
}

EdgeList read_coo_binary(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) fail(path, "bad magic (not a pimtc COO file)");
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) fail(path, "truncated header");
  std::vector<Edge> edges(count);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(count * sizeof(Edge)));
  if (!in) fail(path, "truncated edge payload");
  return EdgeList(std::move(edges));
}

void write_coo_binary(const EdgeList& list, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t count = list.num_edges();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(list.edges().data()),
            static_cast<std::streamsize>(count * sizeof(Edge)));
  if (!out) fail(path, "write failed");
}

EdgeList read_coo_mtx(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  std::string line;

  // Banner: "%%MatrixMarket <object> <format> [field] [symmetry]".  Only
  // sparse matrices make sense as edge lists; a dense "array" file has no
  // index columns to read.
  if (!std::getline(in, line)) fail(path, "empty file");
  {
    std::istringstream banner(line);
    std::string tag;
    std::string object;
    std::string format;
    banner >> tag >> object >> format;
    if (tag != "%%MatrixMarket") fail(path, "missing %%MatrixMarket banner");
    if (object != "matrix" || format != "coordinate") {
      fail(path, "only 'matrix coordinate' MatrixMarket files are supported");
    }
  }

  // Comments, then the "rows cols nnz" size line.
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;
  for (;;) {
    if (!std::getline(in, line)) fail(path, "missing size line");
    if (line.empty() || line[0] == '%') continue;
    std::istringstream sizes(line);
    if (!(sizes >> rows >> cols >> nnz)) {
      fail(path, "malformed size line (expected 'rows cols nnz')");
    }
    if (rows > 0xffffffffull || cols > 0xffffffffull) {
      fail(path, "matrix dimension > 2^32-1");
    }
    break;
  }

  EdgeList list;
  list.reserve(nnz);
  std::uint64_t seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    const char* p = line.c_str();
    char* end = nullptr;
    const std::uint64_t i = std::strtoull(p, &end, 10);
    if (end == p) fail(path, "malformed entry (expected two integers)");
    p = end;
    const std::uint64_t j = std::strtoull(p, &end, 10);
    if (end == p) fail(path, "malformed entry (expected two integers)");
    // Trailing value column(s) of real/integer/complex fields are ignored.
    if (i == 0 || j == 0) fail(path, "MatrixMarket indices are 1-based");
    if (i > rows || j > cols) {
      fail(path, "entry index exceeds the declared matrix dimensions");
    }
    list.push_back(Edge{static_cast<NodeId>(i - 1),
                        static_cast<NodeId>(j - 1)});
    ++seen;
  }
  if (seen < nnz) fail(path, "fewer entries than the size line promised");
  return list;
}

EdgeList read_coo(const std::filesystem::path& path) {
  if (path.extension() == ".bin") return read_coo_binary(path);
  if (path.extension() == ".mtx") return read_coo_mtx(path);
  return read_coo_text(path);
}

}  // namespace pimtc::graph
