#include "graph/io.hpp"

#include <array>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "graph/io_error.hpp"
#include "graph/pbin.hpp"
#include "graph/stream_reader.hpp"

namespace pimtc::graph {
namespace {

constexpr std::array<char, 8> kLegacyMagic = {'P', 'I', 'M', 'T',
                                              'C', 'C', 'O', '1'};

/// Width of the count fields in padded (back-patched) text/mtx headers:
/// wide enough for any uint64, and the patch rewrites exactly these bytes.
constexpr int kPadWidth = 20;

[[noreturn]] void fail(const std::filesystem::path& path,
                       const std::string& what) {
  throw IoError(path, what);
}

[[noreturn]] void fail_line(const std::filesystem::path& path,
                            std::uint64_t line, const std::string& what) {
  fail(path, "line " + std::to_string(line) + ": " + what);
}

/// First non-blank character of `line`, or nullptr for a whitespace-only
/// line.
const char* skip_blank(const std::string& line) {
  const char* p = line.c_str();
  while (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\f' || *p == '\v') {
    ++p;
  }
  return *p == '\0' ? nullptr : p;
}

/// Parses "u v" starting at `p`; fails (with the line number) on malformed
/// input or overflow-sized ids.
Edge parse_edge_pair(const char* p, const std::filesystem::path& path,
                     std::uint64_t line) {
  char* end = nullptr;
  const std::uint64_t u = std::strtoull(p, &end, 10);
  if (end == p) fail_line(path, line, "malformed line (expected two integers)");
  p = end;
  const std::uint64_t v = std::strtoull(p, &end, 10);
  if (end == p) fail_line(path, line, "malformed line (expected two integers)");
  if (u > 0xffffffffull || v > 0xffffffffull) {
    fail_line(path, line, "node id > 2^32-1");
  }
  return Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)};
}

/// Drains a chunked reader into an in-memory list (the one-shot readers).
EdgeList read_all(const std::filesystem::path& path, FileFormat format) {
  ChunkedEdgeReader reader(path, format);
  EdgeList list;
  if (const auto declared = reader.declared_edges()) list.reserve(*declared);
  for (std::span<const Edge> chunk = reader.next(); !chunk.empty();
       chunk = reader.next()) {
    list.append(chunk);
  }
  return list;
}

// ---------------------------------------------------------------------------
// Streaming writer sinks.  Each buffers formatted output in one reused block
// and back-patches its header on finish() when the counts were not declared
// up front.

class FileSink {
 public:
  FileSink(const std::filesystem::path& path) : path_(path) {
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) fail(path_, "cannot open for writing");
  }

  ~FileSink() {
    if (file_ != nullptr) std::fclose(file_);
  }

  void write(const void* data, std::size_t bytes) {
    if (std::fwrite(data, 1, bytes, file_) != bytes) {
      fail(path_, "write failed");
    }
  }

  void patch_at(long offset, const void* data, std::size_t bytes) {
    if (std::fseek(file_, offset, SEEK_SET) != 0) fail(path_, "write failed");
    write(data, bytes);
  }

  [[nodiscard]] long tell() {
    const long pos = std::ftell(file_);
    if (pos < 0) fail(path_, "write failed");
    return pos;
  }

  void close() {
    std::FILE* f = file_;
    file_ = nullptr;
    if (f != nullptr && std::fclose(f) != 0) fail(path_, "write failed");
  }

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  std::filesystem::path path_;
  std::FILE* file_ = nullptr;
};

/// Appends the decimal digits of `v` to `out`.
void append_u64(std::vector<char>& out, std::uint64_t v) {
  char tmp[20];
  const auto res = std::to_chars(tmp, tmp + sizeof tmp, v);
  out.insert(out.end(), tmp, res.ptr);
}

constexpr std::size_t kSinkFlushBytes = std::size_t{1} << 20;

/// Text sink: the write_coo_text format.  With declared counts the header
/// is emitted in final (compact) form immediately — the byte-stable
/// round-trip path; otherwise it is padded and patched on finish().
class TextSink final : public EdgeWriter {
 public:
  TextSink(const std::filesystem::path& path, const WriterOptions& options)
      : sink_(path), patch_(!(options.declared_edges && options.declared_nodes)) {
    char header[96];
    int len;
    if (!patch_) {
      len = std::snprintf(header, sizeof header,
                          "# pimtc COO edge list; %llu edges, %llu nodes\n",
                          static_cast<unsigned long long>(*options.declared_edges),
                          static_cast<unsigned long long>(*options.declared_nodes));
    } else {
      len = std::snprintf(header, sizeof header,
                          "# pimtc COO edge list; %*llu edges, %*llu nodes\n",
                          kPadWidth, 0ull, kPadWidth, 0ull);
    }
    sink_.write(header, static_cast<std::size_t>(len));
    buf_.reserve(kSinkFlushBytes + 64);
  }

  ~TextSink() override {
    try {
      finish();
    } catch (...) {  // destructor path: errors surface via explicit finish()
    }
  }

  void append(std::span<const Edge> chunk) override {
    for (const Edge& e : chunk) {
      append_u64(buf_, e.u);
      buf_.push_back(' ');
      append_u64(buf_, e.v);
      buf_.push_back('\n');
      if (buf_.size() >= kSinkFlushBytes) flush();
    }
    account(chunk);
  }

  void finish() override {
    if (finished_) return;
    finished_ = true;
    flush();
    if (patch_) {
      char header[96];
      const int len = std::snprintf(
          header, sizeof header,
          "# pimtc COO edge list; %*llu edges, %*llu nodes\n", kPadWidth,
          static_cast<unsigned long long>(edges_), kPadWidth,
          static_cast<unsigned long long>(nodes_));
      sink_.patch_at(0, header, static_cast<std::size_t>(len));
    }
    sink_.close();
  }

 private:
  void flush() {
    if (!buf_.empty()) sink_.write(buf_.data(), buf_.size());
    buf_.clear();
  }

  FileSink sink_;
  std::vector<char> buf_;
  bool patch_;
  bool finished_ = false;
};

/// MatrixMarket sink: "pattern general" banner, square dimensions equal to
/// the node bound, 1-based entries.
class MtxSink final : public EdgeWriter {
 public:
  MtxSink(const std::filesystem::path& path, const WriterOptions& options)
      : sink_(path), patch_(!(options.declared_edges && options.declared_nodes)) {
    const char* banner = "%%MatrixMarket matrix coordinate pattern general\n";
    sink_.write(banner, std::strlen(banner));
    size_line_offset_ = sink_.tell();
    char line[96];
    int len;
    if (!patch_) {
      len = std::snprintf(
          line, sizeof line, "%llu %llu %llu\n",
          static_cast<unsigned long long>(*options.declared_nodes),
          static_cast<unsigned long long>(*options.declared_nodes),
          static_cast<unsigned long long>(*options.declared_edges));
    } else {
      len = std::snprintf(line, sizeof line, "%*llu %*llu %*llu\n", kPadWidth,
                          0ull, kPadWidth, 0ull, kPadWidth, 0ull);
    }
    sink_.write(line, static_cast<std::size_t>(len));
    buf_.reserve(kSinkFlushBytes + 64);
  }

  ~MtxSink() override {
    try {
      finish();
    } catch (...) {
    }
  }

  void append(std::span<const Edge> chunk) override {
    for (const Edge& e : chunk) {
      append_u64(buf_, std::uint64_t{e.u} + 1);
      buf_.push_back(' ');
      append_u64(buf_, std::uint64_t{e.v} + 1);
      buf_.push_back('\n');
      if (buf_.size() >= kSinkFlushBytes) flush();
    }
    account(chunk);
  }

  void finish() override {
    if (finished_) return;
    finished_ = true;
    flush();
    if (patch_) {
      char line[96];
      const int len = std::snprintf(line, sizeof line, "%*llu %*llu %*llu\n",
                                    kPadWidth,
                                    static_cast<unsigned long long>(nodes_),
                                    kPadWidth,
                                    static_cast<unsigned long long>(nodes_),
                                    kPadWidth,
                                    static_cast<unsigned long long>(edges_));
      sink_.patch_at(size_line_offset_, line, static_cast<std::size_t>(len));
    }
    sink_.close();
  }

 private:
  void flush() {
    if (!buf_.empty()) sink_.write(buf_.data(), buf_.size());
    buf_.clear();
  }

  FileSink sink_;
  std::vector<char> buf_;
  long size_line_offset_ = 0;
  bool patch_;
  bool finished_ = false;
};

/// Legacy ".bin" sink: magic + u64 count (patched on finish) + raw records.
class LegacyBinSink final : public EdgeWriter {
 public:
  explicit LegacyBinSink(const std::filesystem::path& path) : sink_(path) {
    sink_.write(kLegacyMagic.data(), kLegacyMagic.size());
    const std::uint64_t zero = 0;
    sink_.write(&zero, sizeof zero);
  }

  ~LegacyBinSink() override {
    try {
      finish();
    } catch (...) {
    }
  }

  void append(std::span<const Edge> chunk) override {
    if (!chunk.empty()) sink_.write(chunk.data(), chunk.size_bytes());
    account(chunk);
  }

  void finish() override {
    if (finished_) return;
    finished_ = true;
    const std::uint64_t count = edges_;
    sink_.patch_at(8, &count, sizeof count);
    sink_.close();
  }

 private:
  FileSink sink_;
  bool finished_ = false;
};

/// `.pbin` sink: a thin EdgeWriter adapter over PbinWriter.
class PbinSink final : public EdgeWriter {
 public:
  PbinSink(const std::filesystem::path& path, const WriterOptions& options)
      : writer_(path, options.with_checksum) {}

  void append(std::span<const Edge> chunk) override {
    writer_.append(chunk);
    account(chunk);
  }

  void finish() override { writer_.finish(); }

 private:
  PbinWriter writer_;
};

}  // namespace

EdgeList read_coo_text(const std::filesystem::path& path) {
  return read_all(path, FileFormat::kText);
}

EdgeList read_coo_binary(const std::filesystem::path& path) {
  return read_all(path, FileFormat::kBinLegacy);
}

EdgeList read_coo_mtx(const std::filesystem::path& path) {
  return read_all(path, FileFormat::kMtx);
}

EdgeList read_coo(const std::filesystem::path& path) {
  const FileFormat format = file_format_of(path);
  // `.pbin` goes through the one-shot reader for the header node-bound
  // cross-check; everything else drains the chunked reader.
  if (format == FileFormat::kPbin) return read_bin(path);
  return read_all(path, format);
}

std::vector<EdgeUpdate> read_update_stream(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  std::vector<EdgeUpdate> updates;
  std::string line;  // one growable buffer reused for every line
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const char* p = skip_blank(line);
    if (p == nullptr || *p == '#' || *p == '%') continue;
    bool is_insert = true;
    if (*p == '+' || *p == '-') {
      is_insert = *p == '+';
      ++p;
    }
    const Edge e = parse_edge_pair(p, path, line_no);
    updates.push_back(is_insert ? insert_of(e) : delete_of(e));
  }
  return updates;
}

void write_coo_text(const EdgeList& list, const std::filesystem::path& path) {
  WriterOptions options;
  options.declared_edges = list.num_edges();
  options.declared_nodes = list.num_nodes();
  TextSink sink(path, options);
  sink.append(list.edges());
  sink.finish();
}

void write_coo_mtx(const EdgeList& list, const std::filesystem::path& path) {
  WriterOptions options;
  options.declared_edges = list.num_edges();
  options.declared_nodes = list.num_nodes();
  MtxSink sink(path, options);
  sink.append(list.edges());
  sink.finish();
}

void write_coo_binary(const EdgeList& list, const std::filesystem::path& path) {
  LegacyBinSink sink(path);
  sink.append(list.edges());
  sink.finish();
}

std::unique_ptr<EdgeWriter> make_edge_writer(const std::filesystem::path& path,
                                             WriterOptions options) {
  switch (file_format_of(path)) {
    case FileFormat::kPbin:
      return std::make_unique<PbinSink>(path, options);
    case FileFormat::kBinLegacy:
      return std::make_unique<LegacyBinSink>(path);
    case FileFormat::kMtx:
      return std::make_unique<MtxSink>(path, options);
    case FileFormat::kText:
      return std::make_unique<TextSink>(path, options);
  }
  throw std::runtime_error("unreachable");
}

}  // namespace pimtc::graph
