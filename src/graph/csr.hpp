// Compressed Sparse Row adjacency — the format the CPU baseline converts to.
//
// The paper's CPU comparator accepts COO but internally converts to CSR
// before counting (Section 4.6); the conversion cost is exactly what the
// dynamic-graph experiment (Figure 7) charges it for.  This CSR stores each
// undirected edge once in "forward" orientation (u < v), neighbors sorted
// ascending, which is the layout the forward/edge-iterator algorithms need.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/coo.hpp"

namespace pimtc::graph {

class Csr {
 public:
  Csr() = default;

  /// Builds the forward CSR (only u -> v with u < v, sorted, deduplicated;
  /// self loops dropped).  This is the full conversion the CPU baseline pays
  /// for on every dynamic update.
  static Csr from_coo(const EdgeList& coo);

  /// Builds a CSR with both directions of every edge (used by statistics,
  /// e.g. true degrees).
  static Csr from_coo_symmetric(const EdgeList& coo);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }

  [[nodiscard]] EdgeCount num_arcs() const noexcept { return targets_.size(); }

  /// Sorted neighbor span of node u.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return {targets_.data() + offsets_[u],
            targets_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return offsets_[u + 1] - offsets_[u];
  }

  [[nodiscard]] std::span<const std::size_t> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const NodeId> targets() const noexcept {
    return targets_;
  }

 private:
  static Csr build(const EdgeList& coo, bool symmetric);

  std::vector<std::size_t> offsets_;  // size num_nodes + 1
  std::vector<NodeId> targets_;
};

}  // namespace pimtc::graph
