#include "graph/reference_tc.hpp"

#include <algorithm>

namespace pimtc::graph {

TriangleCount reference_triangle_count(const Csr& csr) {
  TriangleCount total = 0;
  const NodeId n = csr.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    const auto nu = csr.neighbors(u);
    for (const NodeId v : nu) {
      const auto nv = csr.neighbors(v);
      // Sorted-merge intersection of N+(u) and N+(v).
      auto it_u = nu.begin();
      auto it_v = nv.begin();
      while (it_u != nu.end() && it_v != nv.end()) {
        if (*it_u < *it_v) {
          ++it_u;
        } else if (*it_u > *it_v) {
          ++it_v;
        } else {
          ++total;
          ++it_u;
          ++it_v;
        }
      }
    }
  }
  return total;
}

TriangleCount reference_triangle_count(const EdgeList& coo) {
  return reference_triangle_count(Csr::from_coo(coo));
}

}  // namespace pimtc::graph
