#include "graph/coo.hpp"

#include <algorithm>

namespace pimtc::graph {

void EdgeList::assign(std::vector<Edge> edges) {
  edges_ = std::move(edges);
  rescan_num_nodes();
}

void EdgeList::append(std::span<const Edge> batch) {
  edges_.reserve(edges_.size() + batch.size());
  for (const Edge& e : batch) push_back(e);
}

void EdgeList::rescan_num_nodes() {
  NodeId bound = 0;
  for (const Edge& e : edges_) {
    bound = std::max({bound, static_cast<NodeId>(e.u + 1),
                      static_cast<NodeId>(e.v + 1)});
  }
  num_nodes_ = bound;
}

}  // namespace pimtc::graph
