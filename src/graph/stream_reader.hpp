// ChunkedEdgeReader — the streaming half of the out-of-core ingest path.
//
// Reads any supported edge-file format (text COO, MatrixMarket, legacy
// ".bin", ".pbin") and yields fixed-size edge chunks without ever
// materializing the graph: peak reader memory is O(chunk_edges), not O(m).
// Binary formats are mmap-ed when the platform allows it (POSIX, with a
// silent buffered-read fallback), in which case next() returns zero-copy
// views straight into the mapping; text formats parse block-at-a-time from
// the mapping or from a reused read buffer — no per-line allocation.
//
// Chunk-view lifetime: the span returned by next() stays valid until the
// *second* following next() call.  Internally the non-mapped paths
// alternate between two chunk buffers, which is exactly the depth the
// double-buffered ingest pipeline (engine::ingest_file) needs: the consumer
// processes chunk k while a producer task parses chunk k+1.
//
// Errors name the file and, for line-oriented formats, the 1-based line:
//   "pimtc::graph IO error on 'web.txt': line 17482: malformed line ..."
// `.pbin` payload checksums are verified incrementally; a mismatch throws
// when the final chunk is consumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "graph/coo.hpp"

namespace pimtc::graph {

/// The supported on-disk edge formats, dispatched by extension.
enum class FileFormat {
  kText,       ///< "u v" per line (.txt/.text/.el/.edges/.coo/.graph)
  kMtx,        ///< MatrixMarket coordinate (.mtx)
  kBinLegacy,  ///< "PIMTCCO1" + u64 count + raw edges (.bin)
  kPbin,       ///< versioned header + checksum (.pbin, see pbin.hpp)
};

[[nodiscard]] const char* to_string(FileFormat format) noexcept;

/// Extension dispatch shared by read_coo, the chunked reader and the CLI
/// converter.  Throws std::runtime_error naming the supported formats for
/// an unknown (or missing) extension — a typo'd path fails loudly instead
/// of being parsed as text.
[[nodiscard]] FileFormat file_format_of(const std::filesystem::path& path);

struct ReaderOptions {
  /// Edges per chunk (also the reader's working-set bound: two chunk
  /// buffers on the non-mmap paths).  Must be >= 1.
  std::size_t chunk_edges = std::size_t{1} << 20;

  /// mmap the file (POSIX).  Falls back to buffered reads when mapping is
  /// unavailable or fails; mapped() reports what actually happened.
  bool use_mmap = true;

  /// Verify the `.pbin` payload checksum while streaming (ignored for
  /// formats without one).
  bool verify_checksum = true;
};

class ChunkedEdgeReader {
 public:
  /// Opens `path`, dispatching the format by extension (file_format_of).
  explicit ChunkedEdgeReader(const std::filesystem::path& path,
                             ReaderOptions options = {});

  /// Opens `path` as an explicit format (the read_coo_text/... entry
  /// points, where the caller has already decided).
  ChunkedEdgeReader(const std::filesystem::path& path, FileFormat format,
                    ReaderOptions options = {});

  ~ChunkedEdgeReader();

  ChunkedEdgeReader(const ChunkedEdgeReader&) = delete;
  ChunkedEdgeReader& operator=(const ChunkedEdgeReader&) = delete;

  /// The next chunk of at most chunk_edges edges, empty exactly at end of
  /// stream.  The view stays valid until the second following next() call
  /// (see the lifetime note above).
  [[nodiscard]] std::span<const Edge> next();

  [[nodiscard]] FileFormat format() const noexcept { return format_; }

  /// True when the file is being served from an mmap (zero-copy chunks for
  /// the binary formats).
  [[nodiscard]] bool mapped() const noexcept { return map_ != nullptr; }

  /// Edges handed out so far.
  [[nodiscard]] EdgeCount edges_read() const noexcept { return edges_read_; }

  /// Edge count declared by the header, when the format has one (.pbin,
  /// .bin, .mtx nnz).  Lets callers reserve() exactly.
  [[nodiscard]] std::optional<EdgeCount> declared_edges() const noexcept {
    return declared_edges_;
  }

  /// Node bound declared by the header (.pbin num_nodes, .mtx max(rows,
  /// cols)).
  [[nodiscard]] std::optional<std::uint64_t> declared_nodes() const noexcept {
    return declared_nodes_;
  }

 private:
  void open_input();
  void parse_binary_header();
  void parse_mtx_header();
  [[nodiscard]] std::span<const Edge> next_binary();
  [[nodiscard]] std::span<const Edge> next_lines();

  /// Buffered text path: tops up the window, carrying a partial trailing
  /// line.  Returns false when the file is exhausted and the window empty.
  bool refill_window();

  /// Parses one full line [p, end) from the window (blank/comment lines
  /// count toward line_ but emit nothing).
  void consume_line(const char* p, const char* end, std::vector<Edge>& out);

  /// Reads one header line (mtx banner/size) through the window machinery.
  [[nodiscard]] std::string take_header_line();

  [[noreturn]] void fail(const std::string& what) const;
  [[noreturn]] void fail_line(const std::string& what) const;

  std::filesystem::path path_;
  FileFormat format_;
  ReaderOptions options_;

  // Input: exactly one of map_ (with its fd) or file_ is active.
  int fd_ = -1;
  const unsigned char* map_ = nullptr;
  std::size_t file_bytes_ = 0;

  std::FILE* file_ = nullptr;

  // Binary cursor (over the mapping or the file).
  std::size_t payload_offset_ = 0;  ///< next unread byte
  std::size_t payload_end_ = 0;
  Xxh64 hash_;
  bool has_checksum_ = false;
  std::uint64_t checksum_expect_ = 0;
  bool checksum_checked_ = false;

  // Text window: the mapping itself, or buf_ refilled with carry.
  std::vector<char> buf_;
  const char* win_ = nullptr;
  const char* win_end_ = nullptr;
  bool input_exhausted_ = false;
  std::uint64_t line_ = 0;  ///< 1-based, the line being parsed
  std::uint64_t mtx_rows_ = 0;
  std::uint64_t mtx_cols_ = 0;
  EdgeCount mtx_remaining_ = 0;

  // Alternating output buffers (non-zero-copy paths).
  std::vector<Edge> out_[2];
  int out_index_ = 0;

  std::optional<EdgeCount> declared_edges_;
  std::optional<std::uint64_t> declared_nodes_;
  EdgeCount edges_read_ = 0;
  bool done_ = false;
};

}  // namespace pimtc::graph
