// Synthetic graph generators.
//
// The paper evaluates on seven public graphs (Table 1) that are too large for
// this environment and partly not redistributable, so `paper_graphs.hpp`
// builds structure-matched stand-ins from the primitives in this header.
// The primitives are also the workload generators for tests and ablations.
//
// All generators return *simple* graphs (no self loops, no duplicate
// undirected edges) with a deterministic edge set per seed.  Edge order is
// generator-defined; callers that need the paper's methodology apply
// graph::preprocess (which shuffles) afterwards.
#pragma once

#include <cstdint>

#include "graph/coo.hpp"

namespace pimtc::graph::gen {

/// Kronecker / R-MAT initiator probabilities.  Graph500 uses
/// (0.57, 0.19, 0.19, 0.05).
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
};

/// R-MAT graph over 2^scale nodes with ~target_edges distinct edges
/// (duplicates are re-drawn, so the output size is exact unless the space is
/// exhausted).  This is the stand-in family for the Graph500 Kronecker
/// datasets and, with milder parameters, for social networks.
[[nodiscard]] EdgeList rmat(std::uint32_t scale, EdgeCount target_edges,
                            const RmatParams& params, std::uint64_t seed);

/// Erdos-Renyi G(n, m): exactly m distinct edges chosen uniformly.
[[nodiscard]] EdgeList erdos_renyi(NodeId n, EdgeCount m, std::uint64_t seed);

/// Barabasi-Albert preferential attachment: each new node attaches to
/// `m_per_node` distinct existing nodes with probability proportional to
/// degree.  Yields a power-law tail (hub-heavy).
[[nodiscard]] EdgeList barabasi_albert(NodeId n, std::uint32_t m_per_node,
                                       std::uint64_t seed);

/// Watts-Strogatz small world: ring of n nodes, k nearest neighbours
/// (k even), each edge rewired with probability beta.  Low beta keeps the
/// lattice's high clustering coefficient.
[[nodiscard]] EdgeList watts_strogatz(NodeId n, std::uint32_t k, double beta,
                                      std::uint64_t seed);

/// Planted-partition community graph: blocks of `block_size` nodes, each
/// internal pair connected with probability p_in, plus `inter_edges` random
/// cross-block edges.  High global clustering, bounded max degree — the
/// Human-Jung (brain connectome) stand-in base.
[[nodiscard]] EdgeList community(NodeId n, NodeId block_size, double p_in,
                                 EdgeCount inter_edges, std::uint64_t seed);

/// Road-network-like graph: ER with average degree `avg_degree` (very sparse)
/// plus `planted_triangles` vertex-disjoint triangles on dedicated nodes.
/// Matches V1r's signature: degree ~2, max degree <= ~10, a handful of
/// triangles in hundreds of thousands of edges.
[[nodiscard]] EdgeList road_like(NodeId n, double avg_degree,
                                 std::uint32_t planted_triangles,
                                 std::uint64_t seed);

/// Adds `num_hubs` hub nodes, each connected to `hub_degree` distinct random
/// existing nodes.  Used to reproduce WikipediaEdit's 3M-degree outlier and
/// Human-Jung's rich-club nodes.  Hubs get fresh ids above the current node
/// bound so planted structure stays intact.
void add_hubs(EdgeList& list, std::uint32_t num_hubs, NodeId hub_degree,
              std::uint64_t seed);

/// Applies a uniform random permutation to all node ids.  Generators place
/// hubs at structurally determined positions (R-MAT: low ids; add_hubs: top
/// ids); real datasets do not, and the edge-iterator's cost profile depends
/// on where hubs sort — permuting makes stand-ins realistic.
void permute_ids(EdgeList& list, std::uint64_t seed);

/// Triadic-closure post-pass: for every node, closes each wedge (pair of its
/// neighbours) with probability q, up to `max_new_per_node` new edges per
/// node.  Raises the clustering coefficient of skewed generators toward
/// social-network levels without reshaping the degree tail much.
void close_triads(EdgeList& list, double q, std::uint32_t max_new_per_node,
                  std::uint64_t seed);

// ---- Deterministic small graphs (unit-test fixtures) ----------------------

/// Complete graph K_n: exactly binom(n,3) triangles.
[[nodiscard]] EdgeList complete(NodeId n);

/// Cycle C_n: 0 triangles for n > 3, 1 for n == 3.
[[nodiscard]] EdgeList cycle(NodeId n);

/// Path P_n: 0 triangles.
[[nodiscard]] EdgeList path(NodeId n);

/// Star S_n (one center, n-1 leaves): 0 triangles.
[[nodiscard]] EdgeList star(NodeId n);

/// Wheel W_n (cycle of n-1 + center): n-1 triangles for n >= 4.
[[nodiscard]] EdgeList wheel(NodeId n);

}  // namespace pimtc::graph::gen
