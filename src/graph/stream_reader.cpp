#include "graph/stream_reader.hpp"

#include <array>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "graph/io_error.hpp"
#include "graph/pbin.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PIMTC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PIMTC_HAVE_MMAP 0
#endif

namespace pimtc::graph {
namespace {

constexpr std::size_t kReadBlock = std::size_t{1} << 20;  // buffered IO block

constexpr std::array<char, 8> kLegacyMagic = {'P', 'I', 'M', 'T',
                                              'C', 'C', 'O', '1'};

[[nodiscard]] bool is_blank(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v';
}

/// Strict base-10 u64 parse over a non-NUL-terminated range: skips leading
/// blanks, then consumes digits only (no sign, no hex).  Saturates instead
/// of wrapping on overflow so the caller's range check still fires.
[[nodiscard]] bool parse_u64(const char*& p, const char* end,
                             std::uint64_t& out) noexcept {
  while (p != end && is_blank(*p)) ++p;
  if (p == end || *p < '0' || *p > '9') return false;
  std::uint64_t v = 0;
  bool overflow = false;
  while (p != end && *p >= '0' && *p <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      overflow = true;
    } else {
      v = v * 10 + digit;
    }
    ++p;
  }
  out = overflow ? std::numeric_limits<std::uint64_t>::max() : v;
  return true;
}

}  // namespace

const char* to_string(FileFormat format) noexcept {
  switch (format) {
    case FileFormat::kText: return "text";
    case FileFormat::kMtx: return "mtx";
    case FileFormat::kBinLegacy: return "bin";
    case FileFormat::kPbin: return "pbin";
  }
  return "?";
}

FileFormat file_format_of(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  if (ext == ".pbin") return FileFormat::kPbin;
  if (ext == ".bin") return FileFormat::kBinLegacy;
  if (ext == ".mtx") return FileFormat::kMtx;
  if (ext == ".txt" || ext == ".text" || ext == ".el" || ext == ".edges" ||
      ext == ".coo" || ext == ".graph" || ext == ".tsv") {
    return FileFormat::kText;
  }
  throw std::runtime_error(
      "pimtc::graph IO error on '" + path.string() +
      "': unsupported graph file extension '" + ext +
      "' (supported: .txt/.text/.el/.edges/.coo/.graph/.tsv text COO, "
      ".mtx MatrixMarket, .bin legacy binary, .pbin pimtc binary)");
}

ChunkedEdgeReader::ChunkedEdgeReader(const std::filesystem::path& path,
                                     ReaderOptions options)
    : ChunkedEdgeReader(path, file_format_of(path), options) {}

ChunkedEdgeReader::ChunkedEdgeReader(const std::filesystem::path& path,
                                     FileFormat format, ReaderOptions options)
    : path_(path), format_(format), options_(options) {
  if (options_.chunk_edges == 0) {
    throw std::invalid_argument("ChunkedEdgeReader: chunk_edges must be >= 1");
  }
  open_input();
  switch (format_) {
    case FileFormat::kPbin:
    case FileFormat::kBinLegacy:
      parse_binary_header();
      break;
    case FileFormat::kMtx:
      parse_mtx_header();
      break;
    case FileFormat::kText:
      break;
  }
}

ChunkedEdgeReader::~ChunkedEdgeReader() {
#if PIMTC_HAVE_MMAP
  if (map_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(map_), file_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
#endif
  if (file_ != nullptr) std::fclose(file_);
}

void ChunkedEdgeReader::fail(const std::string& what) const {
  throw IoError(path_, what);
}

void ChunkedEdgeReader::fail_line(const std::string& what) const {
  fail("line " + std::to_string(line_) + ": " + what);
}

void ChunkedEdgeReader::open_input() {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path_, ec);
  if (ec) fail("cannot open for reading");
  file_bytes_ = static_cast<std::size_t>(size);

#if PIMTC_HAVE_MMAP
  if (options_.use_mmap && file_bytes_ > 0) {
    fd_ = ::open(path_.c_str(), O_RDONLY);
    if (fd_ >= 0) {
      void* m =
          ::mmap(nullptr, file_bytes_, PROT_READ, MAP_PRIVATE, fd_, 0);
      if (m != MAP_FAILED) {
        map_ = static_cast<const unsigned char*>(m);
        // Sequential streaming access: let the kernel read ahead freely.
        ::madvise(m, file_bytes_, MADV_SEQUENTIAL);
        win_ = reinterpret_cast<const char*>(map_);
        win_end_ = win_ + file_bytes_;
        input_exhausted_ = true;  // the whole file is the window
        return;
      }
      ::close(fd_);
      fd_ = -1;
    }
    // Fall through to the buffered path: mapping is an optimization, not a
    // requirement.
  }
#endif
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) fail("cannot open for reading");
  win_ = win_end_ = nullptr;
}

void ChunkedEdgeReader::parse_binary_header() {
  const bool pbin = format_ == FileFormat::kPbin;
  const std::size_t header_bytes = pbin ? kPbinHeaderBytes : 16;
  if (pbin) {
    // read_bin_header validates magic, version and payload size.
    const PbinInfo info = read_bin_header(path_);
    declared_edges_ = info.num_edges;
    declared_nodes_ = info.num_nodes;
    has_checksum_ = options_.verify_checksum && info.has_checksum();
    checksum_expect_ = info.checksum;
  } else {
    unsigned char raw[16];
    if (file_bytes_ < sizeof raw) fail("truncated header");
    if (map_ != nullptr) {
      std::memcpy(raw, map_, sizeof raw);
    } else {
      if (std::fread(raw, 1, sizeof raw, file_) != sizeof raw) {
        fail("truncated header");
      }
    }
    if (std::memcmp(raw, kLegacyMagic.data(), kLegacyMagic.size()) != 0) {
      fail("bad magic (not a pimtc COO file)");
    }
    std::uint64_t count = 0;
    std::memcpy(&count, raw + 8, sizeof count);
    declared_edges_ = count;
    // file_bytes_ >= sizeof raw was checked above; divide rather than
    // multiply so a hostile count near 2^64 cannot wrap past the check.
    if ((file_bytes_ - sizeof raw) / sizeof(Edge) < count) {
      fail("truncated edge payload");
    }
  }
  if (map_ == nullptr && pbin) {
    // The pbin header was read through read_bin_header; advance the stream.
    if (std::fseek(file_, static_cast<long>(header_bytes), SEEK_SET) != 0) {
      fail("truncated header");
    }
  }
  payload_offset_ = header_bytes;
  payload_end_ = header_bytes + *declared_edges_ * sizeof(Edge);
}

std::string ChunkedEdgeReader::take_header_line() {
  for (;;) {
    if (win_ != win_end_) {
      const char* nl = static_cast<const char*>(
          std::memchr(win_, '\n', static_cast<std::size_t>(win_end_ - win_)));
      if (nl != nullptr) {
        ++line_;
        std::string out(win_, nl);
        win_ = nl + 1;
        return out;
      }
      if (input_exhausted_) {  // final line without a newline
        ++line_;
        std::string out(win_, win_end_);
        win_ = win_end_;
        return out;
      }
    } else if (input_exhausted_) {
      fail("unexpected end of file in the MatrixMarket header");
    }
    if (!refill_window() && win_ == win_end_) {
      fail("unexpected end of file in the MatrixMarket header");
    }
  }
}

void ChunkedEdgeReader::parse_mtx_header() {
  if (file_bytes_ == 0) fail("empty file");
  // Banner: "%%MatrixMarket <object> <format> [field] [symmetry]".  Only
  // sparse matrices make sense as edge lists.
  {
    std::istringstream banner(take_header_line());
    std::string tag;
    std::string object;
    std::string fmt;
    banner >> tag >> object >> fmt;
    if (tag != "%%MatrixMarket") {
      fail_line("missing %%MatrixMarket banner");
    }
    if (object != "matrix" || fmt != "coordinate") {
      fail_line("only 'matrix coordinate' MatrixMarket files are supported");
    }
  }
  // Comments, then the "rows cols nnz" size line.
  for (;;) {
    const std::string raw = take_header_line();
    if (raw.empty() || raw[0] == '%') continue;
    const char* p = raw.data();
    const char* end = raw.data() + raw.size();
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::uint64_t nnz = 0;
    if (!parse_u64(p, end, rows) || !parse_u64(p, end, cols) ||
        !parse_u64(p, end, nnz)) {
      fail_line("malformed size line (expected 'rows cols nnz')");
    }
    // Indices are 1-based, so a dimension of 2^32 still fits NodeId after
    // the -1 shift.
    if (rows > (1ull << 32) || cols > (1ull << 32)) {
      fail_line("matrix dimension > 2^32");
    }
    // Plausibility bound on nnz before anyone trusts it for a reserve():
    // every entry needs at least "1 1" plus a separating newline, so a file
    // of B bytes cannot hold more than B/4 + 1 entries.  A hostile size
    // line (nnz ~ 2^60) would otherwise turn the one-shot reader's
    // reserve(nnz) into a giant allocation.
    if (nnz > file_bytes_ / 4 + 1) {
      fail_line("size line declares more entries than the file could hold");
    }
    mtx_rows_ = rows;
    mtx_cols_ = cols;
    mtx_remaining_ = nnz;
    declared_edges_ = nnz;
    declared_nodes_ = rows > cols ? rows : cols;
    return;
  }
}

bool ChunkedEdgeReader::refill_window() {
  if (map_ != nullptr || file_ == nullptr || input_exhausted_) return false;
  const std::size_t rem = static_cast<std::size_t>(win_end_ - win_);
  if (rem > 0 && win_ != buf_.data()) {
    std::memmove(buf_.data(), win_, rem);
  }
  // One growable block buffer reused for the whole file; grows only when a
  // single line exceeds it.
  if (buf_.size() < rem + kReadBlock) buf_.resize(rem + kReadBlock);
  const std::size_t want = buf_.size() - rem;
  const std::size_t got = std::fread(buf_.data() + rem, 1, want, file_);
  if (got < want) {
    if (std::ferror(file_) != 0) fail("read failed");
    input_exhausted_ = true;
  }
  win_ = buf_.data();
  win_end_ = buf_.data() + rem + got;
  return got > 0;
}

void ChunkedEdgeReader::consume_line(const char* p, const char* end,
                                     std::vector<Edge>& out) {
  ++line_;
  while (p != end && is_blank(*p)) ++p;
  if (p == end || *p == '#' || *p == '%') return;  // blank or comment
  std::uint64_t u = 0;
  std::uint64_t v = 0;
  if (!parse_u64(p, end, u) || !parse_u64(p, end, v)) {
    fail_line(format_ == FileFormat::kMtx
                  ? "malformed entry (expected two integers)"
                  : "malformed line (expected two integers)");
  }
  if (format_ == FileFormat::kMtx) {
    // Trailing value column(s) of real/integer/complex fields are ignored.
    if (u == 0 || v == 0) fail_line("MatrixMarket indices are 1-based");
    if (u > mtx_rows_ || v > mtx_cols_) {
      fail_line("entry index exceeds the declared matrix dimensions");
    }
    out.push_back(Edge{static_cast<NodeId>(u - 1),
                       static_cast<NodeId>(v - 1)});
    --mtx_remaining_;
    return;
  }
  if (u > 0xffffffffull || v > 0xffffffffull) fail_line("node id > 2^32-1");
  out.push_back(Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
}

std::span<const Edge> ChunkedEdgeReader::next_lines() {
  std::vector<Edge>& out = out_[out_index_];
  out_index_ ^= 1;
  out.clear();
  if (out.capacity() < options_.chunk_edges) out.reserve(options_.chunk_edges);

  while (out.size() < options_.chunk_edges) {
    if (format_ == FileFormat::kMtx && mtx_remaining_ == 0) {
      // The size line's promise is fulfilled; trailing content is ignored
      // (same contract as the one-shot reader).
      done_ = true;
      break;
    }
    if (win_ == win_end_) {
      if (refill_window()) continue;
      if (format_ == FileFormat::kMtx && mtx_remaining_ > 0) {
        fail("fewer entries than the size line promised");
      }
      done_ = true;
      break;
    }
    const char* nl = static_cast<const char*>(
        std::memchr(win_, '\n', static_cast<std::size_t>(win_end_ - win_)));
    if (nl == nullptr && !input_exhausted_) {
      if (refill_window()) continue;
    }
    const char* line_end = nl != nullptr ? nl : win_end_;
    consume_line(win_, line_end, out);
    win_ = nl != nullptr ? nl + 1 : win_end_;
  }
  edges_read_ += out.size();
  return out;
}

std::span<const Edge> ChunkedEdgeReader::next_binary() {
  const std::size_t remaining =
      (payload_end_ - payload_offset_) / sizeof(Edge);
  const std::size_t n =
      remaining < options_.chunk_edges ? remaining : options_.chunk_edges;
  if (n == 0) {
    done_ = true;
    if (has_checksum_ && !checksum_checked_) {
      // Zero-edge payload: the checksum still covers the empty string.
      checksum_checked_ = true;
      if (hash_.digest() != checksum_expect_) {
        fail("payload checksum mismatch (file corrupt?)");
      }
    }
    return {};
  }

  std::span<const Edge> result;
  if (map_ != nullptr) {
    // Zero-copy view into the mapping.  The records are plain 2x32-bit
    // little-endian pairs at an 8-aligned offset, matching Edge's layout
    // exactly (static_asserted in types.hpp / pbin.cpp).
    result = {reinterpret_cast<const Edge*>(map_ + payload_offset_), n};
  } else {
    std::vector<Edge>& out = out_[out_index_];
    out_index_ ^= 1;
    out.resize(n);
    if (std::fread(out.data(), sizeof(Edge), n, file_) != n) {
      fail("truncated edge payload");
    }
    result = out;
  }
  payload_offset_ += n * sizeof(Edge);
  edges_read_ += n;

  if (has_checksum_) {
    hash_.update(result.data(), result.size_bytes());
    if (payload_offset_ == payload_end_) {
      checksum_checked_ = true;
      if (hash_.digest() != checksum_expect_) {
        fail("payload checksum mismatch (file corrupt?)");
      }
    }
  }
  return result;
}

std::span<const Edge> ChunkedEdgeReader::next() {
  if (done_) return {};
  switch (format_) {
    case FileFormat::kPbin:
    case FileFormat::kBinLegacy:
      return next_binary();
    case FileFormat::kMtx:
    case FileFormat::kText:
      return next_lines();
  }
  return {};
}

}  // namespace pimtc::graph
