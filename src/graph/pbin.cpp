#include "graph/pbin.hpp"

#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include "graph/io_error.hpp"

namespace pimtc::graph {

// The format is defined little-endian and the records are written by
// memcpy; a big-endian port would need byte-swapping shims here.
static_assert(std::endian::native == std::endian::little,
              ".pbin IO assumes a little-endian host");

namespace {

[[noreturn]] void fail(const std::filesystem::path& path,
                       const std::string& what) {
  throw IoError(path, what);
}

/// Serializes `info` into the fixed 40-byte on-disk header.
void encode_header(const PbinInfo& info, unsigned char out[kPbinHeaderBytes]) {
  std::memcpy(out, kPbinMagic.data(), kPbinMagic.size());
  std::memcpy(out + 8, &info.version, 4);
  std::memcpy(out + 12, &info.flags, 4);
  std::memcpy(out + 16, &info.num_nodes, 8);
  std::memcpy(out + 24, &info.num_edges, 8);
  std::memcpy(out + 32, &info.checksum, 8);
}

PbinInfo decode_header(const unsigned char in[kPbinHeaderBytes],
                       const std::filesystem::path& path) {
  if (std::memcmp(in, kPbinMagic.data(), kPbinMagic.size()) != 0) {
    fail(path, "bad magic (not a .pbin edge file)");
  }
  PbinInfo info;
  std::memcpy(&info.version, in + 8, 4);
  std::memcpy(&info.flags, in + 12, 4);
  std::memcpy(&info.num_nodes, in + 16, 8);
  std::memcpy(&info.num_edges, in + 24, 8);
  std::memcpy(&info.checksum, in + 32, 8);
  if (info.version != kPbinVersion) {
    fail(path, "unsupported .pbin version " + std::to_string(info.version) +
                   " (this build reads version " +
                   std::to_string(kPbinVersion) + ")");
  }
  if ((info.flags & ~kPbinFlagChecksum) != 0) {
    // A version-1 file must not carry flag bits this build cannot honor:
    // silently ignoring them risks misreading the payload.
    char hex[16];
    std::snprintf(hex, sizeof hex, "%x", info.flags & ~kPbinFlagChecksum);
    fail(path, "unknown .pbin flag bits 0x" + std::string(hex) +
                   " (this build understands only the checksum flag)");
  }
  return info;
}

}  // namespace

PbinInfo read_bin_header(const std::filesystem::path& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail(path, "cannot open for reading");
  unsigned char raw[kPbinHeaderBytes];
  const std::size_t got = std::fread(raw, 1, sizeof raw, f);
  std::fclose(f);
  if (got != sizeof raw) fail(path, "truncated header");
  const PbinInfo info = decode_header(raw, path);
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  // Divide instead of multiplying: `num_edges * sizeof(Edge)` wraps for a
  // hostile header (num_edges ~ 2^61), which would pass the size check and
  // send a multi-exabyte allocation to read_bin.
  if (!ec && (size < kPbinHeaderBytes ||
              (size - kPbinHeaderBytes) / sizeof(Edge) < info.num_edges)) {
    fail(path, "truncated edge payload (header declares " +
                   std::to_string(info.num_edges) + " edges)");
  }
  return info;
}

PbinWriter::PbinWriter(const std::filesystem::path& path, bool with_checksum)
    : path_(path), with_checksum_(with_checksum) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) fail(path_, "cannot open for writing");
  // Placeholder header; finish() rewrites it with the real counts.
  unsigned char raw[kPbinHeaderBytes] = {};
  PbinInfo info;
  info.version = kPbinVersion;
  info.flags = with_checksum_ ? kPbinFlagChecksum : 0;
  encode_header(info, raw);
  if (std::fwrite(raw, 1, sizeof raw, file_) != sizeof raw) {
    std::fclose(file_);
    file_ = nullptr;
    fail(path_, "write failed");
  }
}

PbinWriter::~PbinWriter() {
  if (finished_) return;
  try {
    finish();
  } catch (...) {
    // Destructor path: the file is left behind but never silently valid —
    // a half-patched header fails the magic/size checks on read.
  }
}

void PbinWriter::append(std::span<const Edge> chunk) {
  if (finished_) fail(path_, "append after finish");
  if (chunk.empty()) return;
  const std::size_t bytes = chunk.size_bytes();
  if (std::fwrite(chunk.data(), 1, bytes, file_) != bytes) {
    fail(path_, "write failed");
  }
  if (with_checksum_) hash_.update(chunk.data(), bytes);
  edges_ += chunk.size();
  for (const Edge& e : chunk) {
    const std::uint64_t bound = std::uint64_t{e.u > e.v ? e.u : e.v} + 1;
    if (bound > nodes_) nodes_ = bound;
  }
}

void PbinWriter::finish() {
  if (finished_) return;
  finished_ = true;
  PbinInfo info;
  info.version = kPbinVersion;
  info.flags = with_checksum_ ? kPbinFlagChecksum : 0;
  info.num_nodes = nodes_;
  info.num_edges = edges_;
  info.checksum = with_checksum_ ? hash_.digest() : 0;
  unsigned char raw[kPbinHeaderBytes];
  encode_header(info, raw);
  std::FILE* f = file_;
  file_ = nullptr;
  const bool ok = std::fseek(f, 0, SEEK_SET) == 0 &&
                  std::fwrite(raw, 1, sizeof raw, f) == sizeof raw;
  if (std::fclose(f) != 0 || !ok) fail(path_, "write failed");
}

void write_bin(const EdgeList& list, const std::filesystem::path& path,
               bool with_checksum) {
  PbinWriter writer(path, with_checksum);
  writer.append(list.edges());
  writer.finish();
}

EdgeList read_bin(const std::filesystem::path& path, bool verify_checksum) {
  const PbinInfo info = read_bin_header(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail(path, "cannot open for reading");
  std::vector<Edge> edges(info.num_edges);
  bool ok = std::fseek(f, kPbinHeaderBytes, SEEK_SET) == 0;
  ok = ok && (edges.empty() ||
              std::fread(edges.data(), sizeof(Edge), edges.size(), f) ==
                  edges.size());
  std::fclose(f);
  if (!ok) fail(path, "truncated edge payload");
  if (verify_checksum && info.has_checksum()) {
    const std::uint64_t got =
        xxhash64(edges.data(), edges.size() * sizeof(Edge));
    if (got != info.checksum) {
      fail(path, "payload checksum mismatch (file corrupt?)");
    }
  }
  EdgeList list(std::move(edges));
  if (list.num_nodes() > info.num_nodes) {
    fail(path, "header node bound smaller than the payload's largest id");
  }
  return list;
}

}  // namespace pimtc::graph
