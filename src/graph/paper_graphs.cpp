#include "graph/paper_graphs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/prng.hpp"
#include "graph/generators.hpp"

namespace pimtc::graph {
namespace {

constexpr PaperGraphInfo kInfos[] = {
    {"Kronecker 23", 129'335'985, 4'609'311, 4'675'811'428, 257'484, 56.12,
     0.0209},
    {"Kronecker 24", 260'383'358, 8'870'393, 10'285'674'980, 407'017, 58.71,
     0.0173},
    {"V1r", 232'705'452, 214'005'017, 49, 8, 2.17, 4.784e-7},
    {"LiveJournal", 42'851'237, 4'847'571, 285'730'264, 20'333, 17.68, 0.1179},
    {"Orkut", 117'185'083, 3'072'441, 627'584'181, 33'313, 76.28, 0.0413},
    {"Human-Jung", 267'844'669, 784'262, 41'727'013'307, 21'743, 683.05,
     0.2944},
    {"WikipediaEdit", 255'688'945, 42'541'517, 881'439'081, 3'026'864, 12.02,
     7.827e-5},
};

/// Picks the R-MAT scale (node-count bits) whose node count best matches
/// edges/avg_degree at the requested edge budget.
std::uint32_t rmat_scale_for(EdgeCount edges, double avg_degree) {
  const double target_nodes = 2.0 * static_cast<double>(edges) / avg_degree;
  std::uint32_t scale = 1;
  while ((1ull << (scale + 1)) <= static_cast<EdgeCount>(target_nodes) &&
         scale < 26) {
    ++scale;
  }
  return scale + 1;
}

}  // namespace

const PaperGraphInfo& paper_graph_info(PaperGraph g) noexcept {
  return kInfos[static_cast<std::size_t>(g)];
}

EdgeList make_paper_graph(PaperGraph g, double scale, std::uint64_t seed) {
  if (scale <= 0.0) throw std::invalid_argument("make_paper_graph: scale > 0");
  const auto scaled = [scale](double base) {
    return static_cast<EdgeCount>(std::max(1.0, base * scale));
  };

  switch (g) {
    case PaperGraph::kKronecker23: {
      // Graph500 initiator; heavy skew gives the ~quarter-million max degree
      // signature (scaled: max degree in the thousands).
      const EdgeCount edges = scaled(260e3);
      return gen::rmat(rmat_scale_for(edges, 16.0), edges,
                       gen::RmatParams{0.57, 0.19, 0.19, 0.05},
                       derive_seed(seed, 1));
    }
    case PaperGraph::kKronecker24: {
      // One scale step up, ~2x the edges, like Kron24 vs Kron23.
      const EdgeCount edges = scaled(520e3);
      return gen::rmat(rmat_scale_for(edges, 16.0), edges,
                       gen::RmatParams{0.57, 0.19, 0.19, 0.05},
                       derive_seed(seed, 2));
    }
    case PaperGraph::kV1r: {
      // Road network: avg degree 2.17, max degree 8, 49 triangles total.
      // ER at avg degree 2.17 contributes ~2 triangles; plant the rest.
      const auto nodes = static_cast<NodeId>(scaled(220e3));
      // ~49 planted triangles at scale 1.0, as in the published graph.
      const auto planted = static_cast<std::uint32_t>(
          std::max(4.0, 48.0 * scale));
      return gen::road_like(nodes, 2.17, planted, derive_seed(seed, 3));
    }
    case PaperGraph::kLiveJournal: {
      // Social graph: moderate skew, clustering ~0.12.  Milder R-MAT plus a
      // triadic-closure pass for the clustering signature.
      const EdgeCount edges = scaled(180e3);
      EdgeList list = gen::rmat(rmat_scale_for(edges, 17.7), edges,
                                gen::RmatParams{0.45, 0.22, 0.22, 0.11},
                                derive_seed(seed, 4));
      gen::close_triads(list, 0.5, 4, derive_seed(seed, 40));
      return list;
    }
    case PaperGraph::kOrkut: {
      // Denser social graph (avg degree 76) with a larger max degree than
      // LiveJournal.  Note the published max/avg ratio (437x) cannot exist
      // at reduced |E| — max degree is bounded by the node count — so the
      // Orkut stand-in under-represents the hub pain the PIM kernel feels
      // at paper scale; see EXPERIMENTS.md (Figure 6 discussion).
      const EdgeCount edges = scaled(300e3);
      EdgeList list = gen::rmat(rmat_scale_for(edges, 76.0), edges,
                                gen::RmatParams{0.50, 0.21, 0.21, 0.08},
                                derive_seed(seed, 5));
      gen::close_triads(list, 0.4, 3, derive_seed(seed, 50));
      return list;
    }
    case PaperGraph::kHumanJung: {
      // Brain connectome: *extreme density* is the defining signature —
      // average degree 683 vs Orkut's 76 — with high clustering (0.29) and
      // a max degree only ~32x the average.  At reduced |E| the absolute
      // average degree cannot reach 683 (it is bounded by the node count),
      // so we preserve the density *ratio*: ~2.5-3x denser than the Orkut
      // stand-in.  Dense communities of 256 nodes with p_in solved from the
      // edge budget, plus a small rich-club of moderate hubs.
      const EdgeCount edges = scaled(280e3);
      const auto nodes = static_cast<NodeId>(
          std::max<EdgeCount>(512, edges / 100));  // avg degree ~200
      const NodeId block = 256;
      const double blocks = static_cast<double>(nodes) / block;
      const double pairs_per_block =
          static_cast<double>(block) * (block - 1) / 2.0;
      const double p_in = std::min(
          0.95, 0.92 * static_cast<double>(edges) / (blocks * pairs_per_block));
      EdgeList list = gen::community(nodes, block, p_in,
                                     /*inter_edges=*/edges / 25,
                                     derive_seed(seed, 6));
      gen::add_hubs(list, 4, static_cast<NodeId>(nodes / 3),
                    derive_seed(seed, 60));
      return list;
    }
    case PaperGraph::kWikipediaEdit: {
      // Hyperlink/edit graph: avg degree 12, one outlier hub at ~7% of |V|,
      // near-zero clustering.  BA base (power-law tail) plus explicit
      // super-hubs that dominate every other graph's max degree.
      const EdgeCount edges = scaled(250e3);
      const auto nodes = static_cast<NodeId>(static_cast<double>(edges) / 5.0);
      EdgeList list =
          gen::barabasi_albert(nodes, 4, derive_seed(seed, 7));
      gen::add_hubs(list, 2, static_cast<NodeId>(nodes / 2),
                    derive_seed(seed, 70));
      gen::add_hubs(list, 3, static_cast<NodeId>(nodes / 8),
                    derive_seed(seed, 71));
      // Hubs must sit at arbitrary ids (BA puts its hubs first, add_hubs
      // last) — the Misra-Gries experiment depends on that realism.
      gen::permute_ids(list, derive_seed(seed, 72));
      return list;
    }
  }
  throw std::invalid_argument("make_paper_graph: unknown graph");
}

}  // namespace pimtc::graph
