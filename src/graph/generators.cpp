#include "graph/generators.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"

namespace pimtc::graph::gen {
namespace {

/// Tracks distinct undirected edges during generation.
class EdgeSet {
 public:
  explicit EdgeSet(std::size_t expected) { set_.reserve(expected * 2); }

  /// Inserts the canonical form; returns false for loops and duplicates.
  bool insert(NodeId u, NodeId v) {
    if (u == v) return false;
    return set_.insert(Edge{u, v}.canonical()).second;
  }

  [[nodiscard]] bool contains(NodeId u, NodeId v) const {
    return set_.contains(Edge{u, v}.canonical());
  }

  [[nodiscard]] std::size_t size() const { return set_.size(); }

 private:
  std::unordered_set<Edge> set_;
};

}  // namespace

EdgeList rmat(std::uint32_t scale, EdgeCount target_edges,
              const RmatParams& params, std::uint64_t seed) {
  if (scale == 0 || scale > 31) {
    throw std::invalid_argument("rmat: scale must be in [1, 31]");
  }
  const NodeId n = NodeId{1} << scale;
  const EdgeCount max_edges =
      static_cast<EdgeCount>(n) * (n - 1) / 2;
  if (target_edges > max_edges / 2) {
    throw std::invalid_argument("rmat: target_edges too dense for scale");
  }

  const double ab = params.a + params.b;
  const double abc = ab + params.c;

  Xoshiro256ss rng(seed);
  EdgeSet seen(target_edges);
  std::vector<Edge> edges;
  edges.reserve(target_edges);

  // Re-draw duplicates until target_edges distinct edges were produced.  The
  // expected number of redraws is modest at the densities we use (<= 2x).
  while (edges.size() < target_edges) {
    NodeId u = 0;
    NodeId v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      const std::uint32_t ubit = (r >= ab) ? 1u : 0u;
      const std::uint32_t vbit = (r >= params.a && r < ab) || (r >= abc) ? 1u : 0u;
      u = (u << 1) | ubit;
      v = (v << 1) | vbit;
    }
    if (seen.insert(u, v)) edges.push_back(Edge{u, v});
  }
  return EdgeList(std::move(edges));
}

EdgeList erdos_renyi(NodeId n, EdgeCount m, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("erdos_renyi: need n >= 2");
  const EdgeCount max_edges = static_cast<EdgeCount>(n) * (n - 1) / 2;
  if (m > max_edges) {
    throw std::invalid_argument("erdos_renyi: m exceeds binom(n,2)");
  }
  Xoshiro256ss rng(seed);
  EdgeSet seen(m);
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const NodeId u = static_cast<NodeId>(rng.next_below(n));
    const NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (seen.insert(u, v)) edges.push_back(Edge{u, v});
  }
  return EdgeList(std::move(edges));
}

EdgeList barabasi_albert(NodeId n, std::uint32_t m_per_node,
                         std::uint64_t seed) {
  if (m_per_node == 0) throw std::invalid_argument("ba: m_per_node >= 1");
  if (n <= m_per_node) throw std::invalid_argument("ba: need n > m_per_node");

  Xoshiro256ss rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * m_per_node);
  // Batagelj-Brandes: sampling a uniform element of `endpoints` is sampling
  // proportional to degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(edges.capacity() * 2);

  // Seed clique over the first m_per_node + 1 nodes.
  for (NodeId u = 0; u <= m_per_node; ++u) {
    for (NodeId v = u + 1; v <= m_per_node; ++v) {
      edges.push_back(Edge{u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<NodeId> picks;
  for (NodeId u = m_per_node + 1; u < n; ++u) {
    picks.clear();
    // Draw m distinct targets by rejection; the endpoint list is large so
    // collisions are rare.
    while (picks.size() < m_per_node) {
      const NodeId cand = endpoints[rng.next_below(endpoints.size())];
      if (std::find(picks.begin(), picks.end(), cand) == picks.end()) {
        picks.push_back(cand);
      }
    }
    for (const NodeId v : picks) {
      edges.push_back(Edge{u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return EdgeList(std::move(edges));
}

EdgeList watts_strogatz(NodeId n, std::uint32_t k, double beta,
                        std::uint64_t seed) {
  if (k % 2 != 0 || k == 0) throw std::invalid_argument("ws: k must be even");
  if (n <= k) throw std::invalid_argument("ws: need n > k");

  Xoshiro256ss rng(seed);
  EdgeSet seen(static_cast<std::size_t>(n) * k / 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * k / 2);

  for (NodeId u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (rng.next_bernoulli(beta)) {
        // Rewire the far endpoint uniformly; retry on loop/duplicate.
        for (int attempts = 0; attempts < 32; ++attempts) {
          const NodeId cand = static_cast<NodeId>(rng.next_below(n));
          if (cand != u && !seen.contains(u, cand)) {
            v = cand;
            break;
          }
        }
      }
      if (seen.insert(u, v)) edges.push_back(Edge{u, v});
    }
  }
  return EdgeList(std::move(edges));
}

EdgeList community(NodeId n, NodeId block_size, double p_in,
                   EdgeCount inter_edges, std::uint64_t seed) {
  if (block_size < 2 || block_size > n) {
    throw std::invalid_argument("community: bad block_size");
  }
  Xoshiro256ss rng(seed);
  std::vector<Edge> edges;
  EdgeSet seen(static_cast<std::size_t>(n) * block_size / 4);

  // Dense intra-block pairs.
  for (NodeId base = 0; base < n; base += block_size) {
    const NodeId end = std::min<NodeId>(base + block_size, n);
    for (NodeId u = base; u < end; ++u) {
      for (NodeId v = u + 1; v < end; ++v) {
        if (rng.next_bernoulli(p_in) && seen.insert(u, v)) {
          edges.push_back(Edge{u, v});
        }
      }
    }
  }

  // Sparse inter-block edges.
  EdgeCount placed = 0;
  while (placed < inter_edges) {
    const NodeId u = static_cast<NodeId>(rng.next_below(n));
    const NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u / block_size == v / block_size) continue;
    if (seen.insert(u, v)) {
      edges.push_back(Edge{u, v});
      ++placed;
    }
  }
  return EdgeList(std::move(edges));
}

EdgeList road_like(NodeId n, double avg_degree, std::uint32_t planted_triangles,
                   std::uint64_t seed) {
  if (avg_degree <= 0.0) throw std::invalid_argument("road_like: avg_degree > 0");
  // Reserve 3 dedicated nodes per planted triangle at the top of the id
  // space so the ER part cannot merge them into larger cliques.
  const NodeId planted_nodes = planted_triangles * 3;
  if (planted_nodes >= n) {
    throw std::invalid_argument("road_like: too many planted triangles");
  }
  const NodeId er_nodes = n - planted_nodes;
  const auto er_edges =
      static_cast<EdgeCount>(avg_degree * static_cast<double>(er_nodes) / 2.0);

  EdgeList list = erdos_renyi(er_nodes, er_edges, seed);
  for (std::uint32_t t = 0; t < planted_triangles; ++t) {
    const NodeId a = er_nodes + 3 * t;
    list.push_back(Edge{a, static_cast<NodeId>(a + 1)});
    list.push_back(Edge{static_cast<NodeId>(a + 1), static_cast<NodeId>(a + 2)});
    list.push_back(Edge{a, static_cast<NodeId>(a + 2)});
  }
  return list;
}

void add_hubs(EdgeList& list, std::uint32_t num_hubs, NodeId hub_degree,
              std::uint64_t seed) {
  const NodeId base = list.num_nodes();
  if (hub_degree > base) {
    throw std::invalid_argument("add_hubs: hub_degree exceeds node count");
  }
  Xoshiro256ss rng(seed);
  for (std::uint32_t h = 0; h < num_hubs; ++h) {
    const NodeId hub = base + h;
    std::unordered_set<NodeId> targets;
    targets.reserve(hub_degree * 2);
    while (targets.size() < hub_degree) {
      targets.insert(static_cast<NodeId>(rng.next_below(base)));
    }
    for (const NodeId v : targets) list.push_back(Edge{hub, v});
  }
}

void permute_ids(EdgeList& list, std::uint64_t seed) {
  const NodeId n = list.num_nodes();
  std::vector<NodeId> perm(n);
  for (NodeId u = 0; u < n; ++u) perm[u] = u;
  Xoshiro256ss rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  for (Edge& e : list.mutable_edges()) {
    e.u = perm[e.u];
    e.v = perm[e.v];
  }
}

void close_triads(EdgeList& list, double q, std::uint32_t max_new_per_node,
                  std::uint64_t seed) {
  if (q <= 0.0 || max_new_per_node == 0) return;
  Xoshiro256ss rng(seed);

  // Build symmetric adjacency once; new edges do not cascade (single pass).
  const NodeId n = list.num_nodes();
  std::vector<std::vector<NodeId>> adj(n);
  for (const Edge& e : list.edges()) {
    if (e.is_loop()) continue;
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }

  EdgeSet seen(list.num_edges());
  for (const Edge& e : list.edges()) seen.insert(e.u, e.v);

  for (NodeId u = 0; u < n; ++u) {
    const auto& nb = adj[u];
    if (nb.size() < 2) continue;
    std::uint32_t added = 0;
    // Sample wedges instead of enumerating all O(deg^2) pairs: a few tries
    // per node keeps the pass linear even at hub nodes.
    const std::size_t tries = std::min<std::size_t>(nb.size(), 16);
    for (std::size_t i = 0; i < tries && added < max_new_per_node; ++i) {
      if (!rng.next_bernoulli(q)) continue;
      const NodeId x = nb[rng.next_below(nb.size())];
      const NodeId y = nb[rng.next_below(nb.size())];
      if (x == y) continue;
      if (seen.insert(x, y)) {
        list.push_back(Edge{x, y});
        ++added;
      }
    }
  }
}

EdgeList complete(NodeId n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.push_back(Edge{u, v});
  }
  return EdgeList(std::move(edges));
}

EdgeList cycle(NodeId n) {
  std::vector<Edge> edges;
  if (n < 3) return EdgeList(std::move(edges));
  edges.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    edges.push_back(Edge{u, static_cast<NodeId>((u + 1) % n)});
  }
  return EdgeList(std::move(edges));
}

EdgeList path(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u + 1 < n; ++u) {
    edges.push_back(Edge{u, static_cast<NodeId>(u + 1)});
  }
  return EdgeList(std::move(edges));
}

EdgeList star(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back(Edge{0, v});
  return EdgeList(std::move(edges));
}

EdgeList wheel(NodeId n) {
  if (n < 4) return complete(n);
  std::vector<Edge> edges;
  const NodeId rim = n - 1;  // nodes 1..n-1 form the cycle, node 0 the hub
  for (NodeId i = 0; i < rim; ++i) {
    const NodeId u = 1 + i;
    const NodeId v = 1 + (i + 1) % rim;
    edges.push_back(Edge{u, v});
    edges.push_back(Edge{0, u});
  }
  return EdgeList(std::move(edges));
}

}  // namespace pimtc::graph::gen
