// Input preprocessing, mirroring the paper's methodology (Section 4.1):
// "The graphs were preprocessed by: removing duplicate edges and self-loops
//  ...; shuffling the resulting graph using the command line utility shuf."
//
// Duplicate detection treats (u,v) and (v,u) as the same undirected edge.
// The shuffle is a seeded Fisher-Yates so experiments are reproducible.
#pragma once

#include <cstdint>

#include "graph/coo.hpp"

namespace pimtc::graph {

struct PreprocessStats {
  std::size_t input_edges = 0;
  std::size_t removed_self_loops = 0;
  std::size_t removed_duplicates = 0;
  std::size_t output_edges = 0;
};

/// Removes self loops and duplicate undirected edges in place.  The surviving
/// copy of each edge keeps its original orientation (the PIM kernel
/// canonicalizes on insert; the COO stream stays "as read").
PreprocessStats remove_loops_and_duplicates(EdgeList& list);

/// Seeded uniform shuffle of the edge order (stand-in for `shuf`).
void shuffle_edges(EdgeList& list, std::uint64_t seed);

/// Full pipeline: dedup + de-loop + shuffle.
PreprocessStats preprocess(EdgeList& list, std::uint64_t seed);

}  // namespace pimtc::graph
