// Typed IO failure of the graph layer.
//
// Every file-shaped failure (missing file, truncated header, bad magic,
// checksum mismatch, malformed text line) throws IoError so callers can
// separate "the input file is bad" from programming errors.  what() keeps
// the legacy "pimtc::graph IO error on '<path>': <reason>" shape existing
// tests and logs match on; the CLI additionally uses the structured
// path()/reason() accessors to print one clean `error: <file>: <reason>`
// line and exit with the documented IO status (see README "Exit codes").
#pragma once

#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>

namespace pimtc::graph {

class IoError : public std::runtime_error {
 public:
  IoError(std::filesystem::path path, std::string reason)
      : std::runtime_error("pimtc::graph IO error on '" + path.string() +
                           "': " + reason),
        path_(std::move(path)),
        reason_(std::move(reason)) {}

  /// The offending file.
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// The failure description, without the path prefix.
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

 private:
  std::filesystem::path path_;
  std::string reason_;
};

}  // namespace pimtc::graph
