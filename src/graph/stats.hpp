// Graph statistics used by the evaluation (Table 2) and by the stand-in
// validation: max/average degree and the global clustering coefficient
//   GCC = 3 * (#triangles) / (#wedges),   wedges = sum_u deg(u)*(deg(u)-1)/2.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coo.hpp"

namespace pimtc::graph {

struct DegreeStats {
  EdgeCount max_degree = 0;
  double avg_degree = 0.0;
  EdgeCount num_wedges = 0;
  NodeId argmax_node = kInvalidNode;
};

/// Degrees in the undirected simple graph induced by `list` (duplicates
/// counted once, self loops ignored).
[[nodiscard]] std::vector<EdgeCount> degrees(const EdgeList& list);

[[nodiscard]] DegreeStats degree_stats(const EdgeList& list);

/// Global clustering coefficient given a triangle count (callers typically
/// pass the exact reference count).
[[nodiscard]] double global_clustering(const EdgeList& list,
                                       TriangleCount triangles);

}  // namespace pimtc::graph
