// COO file IO.
//
// Text format: one "u v" pair per line; lines starting with '#' or '%' are
// comments (SNAP / KONECT conventions).  Binary format: magic "PIMTCCO1",
// a uint64 edge count, then raw little-endian Edge records — the fast path
// for benchmark fixtures.
#pragma once

#include <filesystem>
#include <string>

#include "graph/coo.hpp"

namespace pimtc::graph {

[[nodiscard]] EdgeList read_coo_text(const std::filesystem::path& path);
void write_coo_text(const EdgeList& list, const std::filesystem::path& path);

[[nodiscard]] EdgeList read_coo_binary(const std::filesystem::path& path);
void write_coo_binary(const EdgeList& list, const std::filesystem::path& path);

/// Dispatches on extension: ".bin" -> binary, anything else -> text.
[[nodiscard]] EdgeList read_coo(const std::filesystem::path& path);

}  // namespace pimtc::graph
