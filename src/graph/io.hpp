// COO file IO.
//
// Text format: one "u v" pair per line; lines whose first non-blank
// character is '#' or '%' are comments (SNAP / KONECT conventions) and
// whitespace-only lines are skipped — downloaded datasets routinely carry
// a trailing blank line or indented comments.  Legacy binary format
// (".bin"): magic "PIMTCCO1", a uint64 edge count, then raw little-endian
// Edge records.  The current binary format is ".pbin" (graph/pbin.hpp):
// versioned header, node/edge counts and an XXH64 payload checksum.
// MatrixMarket (".mtx") coordinate files — the SuiteSparse collection's
// native format — load directly: the banner and '%' comments are handled,
// entries are 1-based and converted, and any value column
// (real/integer/pattern) is ignored.
//
// All readers here are one-shot conveniences over the chunked streaming
// reader (graph/stream_reader.hpp); errors name the file and, for the
// line-oriented formats, the 1-based line.  The EdgeWriter sinks are the
// streaming write side — `pimtc convert` pipes reader chunks into one, so
// any-format-to-any-format conversion runs in O(chunk) memory.
//
// Update-stream format (fully-dynamic counting, `pimtc count --stream=`):
// one update per line — "+u v" inserts, "-u v" deletes, a bare "u v" is an
// insert; the sign may be separated from u by whitespace.  Comments and
// blank lines follow the text-COO rules.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/coo.hpp"

namespace pimtc::graph {

[[nodiscard]] EdgeList read_coo_text(const std::filesystem::path& path);
void write_coo_text(const EdgeList& list, const std::filesystem::path& path);

[[nodiscard]] EdgeList read_coo_binary(const std::filesystem::path& path);
void write_coo_binary(const EdgeList& list, const std::filesystem::path& path);

/// MatrixMarket coordinate reader (SuiteSparse graphs).  Requires a
/// "matrix coordinate" banner (object "array" is rejected); accepts any
/// field (pattern/real/integer/complex) and symmetry tag — each stored
/// entry becomes one edge, values are discarded, indices shift to 0-based.
/// Self loops and duplicates are kept (graph::preprocess removes them).
[[nodiscard]] EdgeList read_coo_mtx(const std::filesystem::path& path);

/// MatrixMarket coordinate writer: "pattern general" banner, square
/// dimensions equal to the node bound, one 1-based entry per edge.
void write_coo_mtx(const EdgeList& list, const std::filesystem::path& path);

/// Dispatches on extension via file_format_of: ".pbin", ".bin", ".mtx",
/// or a text extension.  Unknown extensions throw, naming the supported
/// formats — they are not silently parsed as text.
[[nodiscard]] EdgeList read_coo(const std::filesystem::path& path);

/// Reads a ± update stream ("+u v" / "-u v" / bare "u v" per line) for the
/// fully-dynamic counting session.
[[nodiscard]] std::vector<EdgeUpdate> read_update_stream(
    const std::filesystem::path& path);

/// Options for make_edge_writer.
struct WriterOptions {
  /// `.pbin` only: checksum the payload (kPbinFlagChecksum).
  bool with_checksum = true;

  /// Exact counts, when the caller knows them up front (a `.pbin` or `.mtx`
  /// source header).  With counts the text/mtx headers are emitted in final
  /// form immediately — this is what makes text -> pbin -> text reproduce
  /// the original byte-for-byte.  Without them the header is written padded
  /// and patched by finish().
  std::optional<EdgeCount> declared_edges;
  std::optional<std::uint64_t> declared_nodes;
};

/// Streaming edge sink: append() chunks in arrival order, then finish().
/// Formats whose header carries counts (all except plain text with counts
/// known up front) back-patch the header on finish(), so a source of
/// unknown length converts in O(chunk) memory.  finish() is called
/// best-effort by the destructor; call it explicitly to see write errors.
class EdgeWriter {
 public:
  virtual ~EdgeWriter() = default;

  virtual void append(std::span<const Edge> chunk) = 0;
  virtual void finish() = 0;

  [[nodiscard]] EdgeCount edges_written() const noexcept { return edges_; }
  /// One past the largest node id appended so far.
  [[nodiscard]] std::uint64_t node_bound() const noexcept { return nodes_; }

 protected:
  /// Folds a chunk into the edge/node counters.
  void account(std::span<const Edge> chunk) noexcept {
    edges_ += chunk.size();
    for (const Edge& e : chunk) {
      const std::uint64_t bound = std::uint64_t{e.u > e.v ? e.u : e.v} + 1;
      if (bound > nodes_) nodes_ = bound;
    }
  }

  EdgeCount edges_ = 0;
  std::uint64_t nodes_ = 0;
};

/// Streaming writer for `path`, dispatched by extension (same table as
/// file_format_of; unknown extensions throw).
[[nodiscard]] std::unique_ptr<EdgeWriter> make_edge_writer(
    const std::filesystem::path& path, WriterOptions options = {});

}  // namespace pimtc::graph
