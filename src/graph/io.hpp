// COO file IO.
//
// Text format: one "u v" pair per line; lines whose first non-blank
// character is '#' or '%' are comments (SNAP / KONECT conventions) and
// whitespace-only lines are skipped — downloaded datasets routinely carry
// a trailing blank line or indented comments.  Binary format: magic
// "PIMTCCO1", a uint64 edge count, then raw little-endian Edge records —
// the fast path for benchmark fixtures.  MatrixMarket (".mtx") coordinate
// files — the SuiteSparse collection's native format — load directly: the
// banner and '%' comments are handled, entries are 1-based and converted,
// and any value column (real/integer/pattern) is ignored.
//
// Update-stream format (fully-dynamic counting, `pimtc count --stream=`):
// one update per line — "+u v" inserts, "-u v" deletes, a bare "u v" is an
// insert; the sign may be separated from u by whitespace.  Comments and
// blank lines follow the text-COO rules.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "graph/coo.hpp"

namespace pimtc::graph {

[[nodiscard]] EdgeList read_coo_text(const std::filesystem::path& path);
void write_coo_text(const EdgeList& list, const std::filesystem::path& path);

[[nodiscard]] EdgeList read_coo_binary(const std::filesystem::path& path);
void write_coo_binary(const EdgeList& list, const std::filesystem::path& path);

/// MatrixMarket coordinate reader (SuiteSparse graphs).  Requires a
/// "matrix coordinate" banner (object "array" is rejected); accepts any
/// field (pattern/real/integer/complex) and symmetry tag — each stored
/// entry becomes one edge, values are discarded, indices shift to 0-based.
/// Self loops and duplicates are kept (graph::preprocess removes them).
[[nodiscard]] EdgeList read_coo_mtx(const std::filesystem::path& path);

/// Dispatches on extension: ".bin" -> binary, ".mtx" -> MatrixMarket,
/// anything else -> text.
[[nodiscard]] EdgeList read_coo(const std::filesystem::path& path);

/// Reads a ± update stream ("+u v" / "-u v" / bare "u v" per line) for the
/// fully-dynamic counting session.
[[nodiscard]] std::vector<EdgeUpdate> read_update_stream(
    const std::filesystem::path& path);

}  // namespace pimtc::graph
