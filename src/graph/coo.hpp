// COO (coordinate list) edge list — the input format of the whole system.
//
// The paper's host reads graphs as COO tuples and the PIM cores store their
// samples as COO inside the DRAM bank; COO is also what makes the dynamic
// use-case work (appending a batch of edges is O(batch)).  This class is a
// thin, explicit wrapper over std::vector<Edge> that tracks the node-id
// upper bound.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace pimtc::graph {

class EdgeList {
 public:
  EdgeList() = default;

  explicit EdgeList(std::vector<Edge> edges) { assign(std::move(edges)); }

  /// Replaces the content and recomputes the node bound.
  void assign(std::vector<Edge> edges);

  /// Appends one edge, maintaining the node bound.
  void push_back(Edge e) {
    if (e.u >= num_nodes_) num_nodes_ = e.u + 1;
    if (e.v >= num_nodes_) num_nodes_ = e.v + 1;
    edges_.push_back(e);
  }

  /// Appends a batch (the dynamic-graph update path).
  void append(std::span<const Edge> batch);

  void reserve(std::size_t n) { edges_.reserve(n); }
  void clear() {
    edges_.clear();
    num_nodes_ = 0;
  }

  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// One past the largest node id referenced by any edge (0 for an empty
  /// list).  Isolated vertices are invisible to COO, matching the paper's
  /// datasets where |V| counts only referenced ids.
  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }

  [[nodiscard]] bool empty() const noexcept { return edges_.empty(); }

  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }
  [[nodiscard]] std::vector<Edge>& mutable_edges() noexcept { return edges_; }

  [[nodiscard]] const Edge& operator[](std::size_t i) const noexcept {
    return edges_[i];
  }

  [[nodiscard]] auto begin() const noexcept { return edges_.begin(); }
  [[nodiscard]] auto end() const noexcept { return edges_.end(); }

  /// Recomputes the node bound after callers mutated mutable_edges().
  void rescan_num_nodes();

 private:
  std::vector<Edge> edges_;
  NodeId num_nodes_ = 0;
};

}  // namespace pimtc::graph
