// Trusted exact triangle counter used as ground truth by every test and by
// the relative-error tables.  Forward/node-iterator algorithm on the
// u<v-oriented CSR: for each arc (u, v), |N+(u) ∩ N+(v)| triangles.
// O(sum_over_arcs min(deg+(u), deg+(v))) — fine at test scale, and an
// independent implementation from both the PIM kernel and the CPU baseline,
// so agreement between the three is meaningful.
#pragma once

#include "common/types.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace pimtc::graph {

/// Exact count on a prebuilt forward CSR.
[[nodiscard]] TriangleCount reference_triangle_count(const Csr& forward_csr);

/// Convenience overload: builds the CSR from COO first.
[[nodiscard]] TriangleCount reference_triangle_count(const EdgeList& coo);

}  // namespace pimtc::graph
