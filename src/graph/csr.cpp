#include "graph/csr.hpp"

#include <algorithm>

namespace pimtc::graph {

Csr Csr::from_coo(const EdgeList& coo) { return build(coo, /*symmetric=*/false); }

Csr Csr::from_coo_symmetric(const EdgeList& coo) {
  return build(coo, /*symmetric=*/true);
}

Csr Csr::build(const EdgeList& coo, bool symmetric) {
  const NodeId n = coo.num_nodes();
  std::vector<std::size_t> counts(static_cast<std::size_t>(n) + 1, 0);

  // Pass 1: count arcs per source.
  for (const Edge& e : coo) {
    if (e.is_loop()) continue;
    if (symmetric) {
      ++counts[e.u + 1];
      ++counts[e.v + 1];
    } else {
      ++counts[e.canonical().u + 1];
    }
  }
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];

  // Pass 2: scatter raw (possibly duplicated) targets.
  std::vector<NodeId> raw(counts.back());
  std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
  for (const Edge& e : coo) {
    if (e.is_loop()) continue;
    if (symmetric) {
      raw[cursor[e.u]++] = e.v;
      raw[cursor[e.v]++] = e.u;
    } else {
      const Edge c = e.canonical();
      raw[cursor[c.u]++] = c.v;
    }
  }

  // Pass 3: sort each row and copy unique targets into the final layout.
  Csr csr;
  csr.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  csr.targets_.reserve(raw.size());
  for (NodeId u = 0; u < n; ++u) {
    const auto row_begin = raw.begin() + static_cast<std::ptrdiff_t>(counts[u]);
    const auto row_end = raw.begin() + static_cast<std::ptrdiff_t>(counts[u + 1]);
    std::sort(row_begin, row_end);
    NodeId prev = kInvalidNode;
    for (auto it = row_begin; it != row_end; ++it) {
      if (*it != prev) {
        prev = *it;
        csr.targets_.push_back(prev);
      }
    }
    csr.offsets_[u + 1] = csr.targets_.size();
  }
  return csr;
}

}  // namespace pimtc::graph
