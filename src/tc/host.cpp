#include "tc/host.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/math_util.hpp"
#include "common/prng.hpp"
#include "common/timer.hpp"
#include "sketch/uniform_sampler.hpp"
#include "tc/kernel.hpp"
#include "tc/layout.hpp"

namespace pimtc::tc {
namespace {

/// Wire size of one staged replacement record (slot index + edge); appends
/// travel as bare edges since their slots are implied by the base slot.
constexpr std::uint64_t kStagedReplaceBytes =
    sizeof(std::uint64_t) + sizeof(Edge);

}  // namespace

PimTriangleCounter::PimTriangleCounter(const TcConfig& config,
                                       const pim::PimSystemConfig& pim_config)
    : config_(config),
      pim_config_(pim_config),
      pool_(std::make_unique<ThreadPool>(config.host_threads)),
      table_(config.num_colors),
      hash_(config.num_colors, derive_seed(config.seed, 0xc01u)),
      global_mg_(std::max<std::uint32_t>(1, config.mg_capacity)) {
  if (config_.num_colors == 0) {
    throw std::invalid_argument("TcConfig: num_colors must be >= 1");
  }
  if (config_.tasklets == 0 || config_.tasklets > pim_config_.max_tasklets) {
    throw std::invalid_argument("TcConfig: bad tasklet count");
  }
  if (config_.uniform_p <= 0.0 || config_.uniform_p > 1.0) {
    throw std::invalid_argument("TcConfig: uniform_p must be in (0, 1]");
  }
  const std::uint32_t dpus = table_.num_triplets();
  if (dpus > pim_config_.max_dpus) {
    throw std::invalid_argument(
        "TcConfig: " + std::to_string(config_.num_colors) + " colors need " +
        std::to_string(dpus) + " PIM cores but the system has " +
        std::to_string(pim_config_.max_dpus));
  }

  const std::uint64_t max_cap = MramLayout::max_capacity(pim_config_.mram_bytes);
  capacity_ = config_.sample_capacity_edges == 0
                  ? max_cap
                  : std::min(config_.sample_capacity_edges, max_cap);
  if (capacity_ == 0) {
    throw std::invalid_argument("TcConfig: MRAM too small for any sample");
  }

  system_ = std::make_unique<pim::PimSystem>(pim_config_, dpus, pool_.get());
  reservoirs_.reserve(dpus);
  for (std::uint32_t d = 0; d < dpus; ++d) {
    reservoirs_.emplace_back(capacity_, derive_seed(config_.seed, 0xd00 + d));
    // Initialize the control block so later read-modify-write cycles (which
    // preserve kernel-owned fields like sorted_size) start from zeros.
    DpuMeta meta;
    meta.sample_capacity = capacity_;
    system_->dpu(d).mram().write_t(MramLayout::kMetaOffset, meta);
  }

  // Persistent ingestion state: sized once, reused by every batch.
  partition_.resize(pool_->size());
  for (auto& per_dpu : partition_) per_dpu.resize(dpus);
  staging_.resize(dpus);
  cursors_.resize(dpus);
  flush_bytes_.resize(dpus);
  cycles_before_.resize(dpus);
  received_.resize(dpus);
}

TcResult PimTriangleCounter::count(const graph::EdgeList& graph) {
  add_edges(graph.edges());
  return recount();
}

void PimTriangleCounter::add_edges(std::span<const Edge> batch) {
  WallTimer host_timer;
  const std::size_t num_threads = pool_->size();
  const std::uint64_t batch_id = batch_counter_++;

  // Per-thread, per-DPU partition buffers — "each host CPU thread manages an
  // array of edges per PIM core" (Section 3.1).  The buffers are members:
  // clear() keeps their capacity, so steady-state batches allocate nothing.
  for (auto& per_dpu : partition_) {
    for (auto& v : per_dpu) v.clear();
  }
  std::vector<sketch::MisraGries> local_mg;
  std::vector<std::uint64_t> local_kept(num_threads, 0);
  local_mg.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    local_mg.emplace_back(std::max<std::uint32_t>(1, config_.mg_capacity));
  }

  const color::EdgePartitioner partitioner(hash_, table_);
  pool_->parallel_chunks(
      batch.size(), [&](std::size_t t, std::size_t lo, std::size_t hi) {
        sketch::UniformSampler sampler(
            config_.uniform_p,
            derive_seed(config_.seed, (batch_id << 8) ^ (0xa000 + t)));
        auto& batches = partition_[t];
        auto& mg = local_mg[t];
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge e = batch[i];
          if (e.is_loop()) continue;
          if (!sampler.keep(e)) continue;
          if (config_.misra_gries_enabled) mg.update_edge(e);
          for (const std::uint32_t d : partitioner.targets(e)) {
            batches[d].push_back(e);
          }
        }
        local_kept[t] = sampler.kept();
      });

  edges_streamed_ += batch.size();
  for (const std::uint64_t k : local_kept) edges_kept_ += k;
  if (config_.misra_gries_enabled) {
    for (const auto& mg : local_mg) global_mg_.merge(mg);
  }

  insert_into_samples(host_timer.elapsed_s());

  system_->charge_host(host_timer.elapsed_s(), &pim::PimPhaseTimes::host_s);
}

void PimTriangleCounter::drain_in_flight(double host_overlap_s) {
  if (in_flight_device_s_ <= 0.0) return;
  const double hidden =
      config_.pipelined_ingest
          ? std::min(in_flight_device_s_, std::max(0.0, host_overlap_s))
          : 0.0;
  if (hidden > 0.0) system_->note_overlap_saved(hidden);
  system_->charge_host(in_flight_device_s_ - hidden,
                       &pim::PimPhaseTimes::sample_creation_s);
  in_flight_device_s_ = 0.0;
}

void PimTriangleCounter::insert_into_samples(double host_window_s) {
  const std::uint32_t num_dpus = system_->num_dpus();
  const std::uint32_t recv_tasklets = config_.tasklets;
  const std::uint64_t sample_base = MramLayout::sample_offset();

  // How many staging rounds does the slowest DPU need?
  std::uint64_t max_per_dpu = 0;
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    std::uint64_t total = 0;
    for (const auto& per_dpu : partition_) total += per_dpu[d].size();
    max_per_dpu = std::max(max_per_dpu, total);
    cursors_[d] = {0, 0};
  }
  if (max_per_dpu == 0) {
    // Nothing survived sampling: no scatter, but the host work just done
    // still overlaps any in-flight receive of the previous batch.
    drain_in_flight(host_window_s);
    return;
  }
  const std::uint64_t round_cap = config_.staging_capacity_edges == 0
                                      ? max_per_dpu
                                      : config_.staging_capacity_edges;
  const std::uint64_t rounds = ceil_div(max_per_dpu, round_cap);

  std::fill(received_.begin(), received_.end(), 0);

  for (std::uint64_t round = 0; round < rounds; ++round) {
    WallTimer stage_timer;
    for (std::uint32_t d = 0; d < num_dpus; ++d) {
      cycles_before_[d] = system_->dpu(d).cycles();
    }

    pool_->parallel_for(num_dpus, [&](std::size_t d) {
      pim::Dpu& dpu = system_->dpu(d);
      sketch::ReservoirPolicy& reservoir = reservoirs_[d];
      sketch::ReservoirStaging<Edge>& staging = staging_[d];
      auto& [thread_idx, offset] = cursors_[d];

      // Stage up to round_cap reservoir decisions host-side.
      staging.begin(reservoir.stored());
      std::uint64_t budget = round_cap;
      while (budget > 0 && thread_idx < partition_.size()) {
        const auto& src = partition_[thread_idx][d];
        while (offset < src.size() && budget > 0) {
          staging.stage(reservoir, src[offset]);
          ++offset;
          --budget;
          ++received_[d];
        }
        if (offset == src.size()) {
          ++thread_idx;
          offset = 0;
        }
      }

      // Flush the image: one contiguous write for the append run, one per
      // maximal run of consecutive replaced slots — bulk traffic, not
      // per-edge stores.
      const std::uint64_t append_bytes =
          staging.appends().size() * sizeof(Edge);
      if (append_bytes > 0) {
        dpu.mram().write(sample_base + staging.base_slot() * sizeof(Edge),
                         staging.appends().data(),
                         static_cast<std::size_t>(append_bytes));
      }
      const std::uint64_t staged_bytes =
          append_bytes + staging.replace_count() * kStagedReplaceBytes;

      // DPU-side receive cost: stream the staged image in, copy each record
      // into place (tasklet-parallel; the decisions were made host-side),
      // contiguous appends as one bulk burst, replacement runs as scattered
      // DMA stores.
      dpu.charge_dma_bulk(staged_bytes, 2048);  // landing-zone read
      dpu.charge_parallel_instr(
          staging.staged_items() * config_.cost.edge_copy, recv_tasklets);
      dpu.charge_dma_bulk(append_bytes, 2048);
      staging.for_each_replace_run(
          [&](std::uint64_t first_slot, const Edge* items, std::size_t n) {
            const std::uint64_t bytes = n * sizeof(Edge);
            dpu.mram().write(sample_base + first_slot * sizeof(Edge), items,
                             static_cast<std::size_t>(bytes));
            dpu.serial_dma(bytes);
          });

      flush_bytes_[d] = staged_bytes;
    });

    // The host work of this staging round (plus, for the first round, the
    // partitioning that preceded it) is the window that hides the previous
    // flush's in-flight device time.
    const double window =
        (round == 0 ? host_window_s : 0.0) + stage_timer.elapsed_s();
    drain_in_flight(window);

    // Model this round's device time: one rank-parallel scatter of the
    // per-DPU staged images, then the DPU-side receive (slowest core gates).
    const double xfer_s = system_->charge_scatter(
        flush_bytes_, config_.pipelined_ingest
                          ? nullptr
                          : &pim::PimPhaseTimes::sample_creation_s);
    double max_delta = 0.0;
    for (std::uint32_t d = 0; d < num_dpus; ++d) {
      max_delta =
          std::max(max_delta, system_->dpu(d).cycles() - cycles_before_[d]);
    }
    const double receive_s = pim_config_.cycles_to_seconds(max_delta);
    if (config_.pipelined_ingest) {
      in_flight_device_s_ = xfer_s + receive_s;
    } else {
      system_->charge_host(receive_s, &pim::PimPhaseTimes::sample_creation_s);
    }
  }

  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    edges_replicated_ += received_[d];
  }
}

TcResult PimTriangleCounter::recount() {
  // Sync point: an in-flight batch receive must land before the kernel can
  // run, and the count depends on it — nothing left to hide it under, so
  // any remainder is charged in full.
  drain_in_flight(0.0);

  const std::uint32_t num_dpus = system_->num_dpus();

  // Can this recount take the incremental path?  Requires a prior full
  // count with persistence and strictly append-only samples since then.
  bool overflowed = false;
  for (const auto& r : reservoirs_) overflowed |= r.seen() > capacity_;
  const bool incremental = config_.incremental && sorted_valid_ && !overflowed;

  // High-degree remap table (Misra-Gries top-t), broadcast to every core.
  // Frozen once incremental state exists: the persistent sorted arcs were
  // built under the old mapping.
  if (config_.misra_gries_enabled && config_.mg_top > 0 && !sorted_valid_) {
    frozen_remap_ = global_mg_.top(
        std::min<std::size_t>(config_.mg_top, MramLayout::kMaxRemap));
  }
  const std::vector<NodeId>& remap = frozen_remap_;

  // Write control blocks (read-modify-write: the kernel owns sorted_size
  // and the sorted-valid flag).
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    pim::Dpu& dpu = system_->dpu(d);
    DpuMeta meta = dpu.mram().read_t<DpuMeta>(MramLayout::kMetaOffset);
    meta.sample_size = reservoirs_[d].stored();
    meta.edges_seen = reservoirs_[d].seen();
    meta.sample_capacity = capacity_;
    meta.num_remap = static_cast<std::uint32_t>(remap.size());
    if (config_.incremental && !overflowed) {
      meta.flags |= DpuMeta::kFlagPersistSorted;
    } else {
      meta.flags &= ~DpuMeta::kFlagPersistSorted;
      meta.flags &= ~DpuMeta::kFlagSortedValid;
      meta.sorted_size = 0;
    }
    dpu.mram().write_t(MramLayout::kMetaOffset, meta);
    if (!remap.empty()) {
      dpu.mram().write(MramLayout::kRemapOffset, remap.data(),
                       remap.size() * sizeof(NodeId));
    }
  }

  // Control-block + remap broadcast push (uniform spans: no padding).
  const std::vector<std::uint64_t> meta_bytes(
      num_dpus, sizeof(DpuMeta) + remap.size() * sizeof(NodeId));
  system_->charge_scatter(meta_bytes, &pim::PimPhaseTimes::count_s);

  // Launch the counting kernel on every core.
  KernelParams params;
  params.tasklets = config_.tasklets;
  params.buffer_edges = std::max<std::uint32_t>(8, config_.wram_buffer_edges);
  params.cost = config_.cost;
  if (incremental) {
    system_->launch(
        [&params](pim::Dpu& dpu) { run_incremental_kernel(dpu, params); },
        &pim::PimPhaseTimes::count_s);
  } else {
    system_->launch(
        [&params](pim::Dpu& dpu) { run_count_kernel(dpu, params); },
        &pim::PimPhaseTimes::count_s);
    sorted_valid_ = config_.incremental && !overflowed;
  }

  // Gather per-core results in one rank-parallel pull.
  std::vector<DpuMeta> metas(num_dpus);
  std::vector<pim::GatherSpan> gather_spans(num_dpus);
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    gather_spans[d] = {MramLayout::kMetaOffset, &metas[d], sizeof(DpuMeta)};
  }
  system_->gather(gather_spans, &pim::PimPhaseTimes::count_s);

  // ---- statistical corrections (DESIGN.md, "Correction math") -------------
  TcResult result;
  result.num_dpus = num_dpus;
  result.num_ranks = system_->num_ranks();
  result.edges_streamed = edges_streamed_;
  result.edges_kept = edges_kept_;
  result.edges_replicated = edges_replicated_;
  result.used_incremental = incremental;

  double total_scaled = 0.0;
  double mono_scaled = 0.0;
  std::uint64_t min_seen = ~0ull;
  std::uint64_t max_seen = 0;
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    const std::uint64_t seen = reservoirs_[d].seen();
    min_seen = std::min(min_seen, seen);
    max_seen = std::max(max_seen, seen);
    if (seen > capacity_) ++result.reservoir_overflows;

    result.raw_total += metas[d].triangle_count;
    const double q = reservoir_correction(capacity_, seen);
    const double scaled =
        q > 0.0 ? static_cast<double>(metas[d].triangle_count) / q : 0.0;
    total_scaled += scaled;
    if (table_.triplet(d).kind() == 1) mono_scaled += scaled;
  }
  result.min_dpu_edges = (num_dpus == 0 || min_seen == ~0ull) ? 0 : min_seen;
  result.max_dpu_edges = max_seen;

  const double colors = static_cast<double>(config_.num_colors);
  const double corrected = total_scaled - (colors - 1.0) * mono_scaled;
  result.estimate = corrected * uniform_sampling_correction(config_.uniform_p);
  result.exact = config_.uniform_p >= 1.0 && result.reservoir_overflows == 0;
  if (result.exact) {
    // Exact mode produces an integer by construction; kill float fuzz.
    result.estimate = static_cast<double>(result.rounded());
  }
  result.times = system_->times();
  result.transfers = system_->transfer_stats();
  return result;
}

std::vector<std::uint64_t> PimTriangleCounter::per_dpu_edges_seen() const {
  std::vector<std::uint64_t> seen;
  seen.reserve(reservoirs_.size());
  for (const auto& r : reservoirs_) seen.push_back(r.seen());
  return seen;
}

}  // namespace pimtc::tc
