#include "tc/host.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/math_util.hpp"
#include "common/prng.hpp"
#include "common/timer.hpp"
#include "sketch/uniform_sampler.hpp"
#include "tc/kernel.hpp"
#include "tc/layout.hpp"

namespace pimtc::tc {

PimTriangleCounter::PimTriangleCounter(const TcConfig& config,
                                       const pim::PimSystemConfig& pim_config)
    : config_(config),
      pim_config_(pim_config),
      pool_(std::make_unique<ThreadPool>(config.host_threads)),
      table_(config.num_colors),
      hash_(config.num_colors, derive_seed(config.seed, 0xc01u)),
      global_mg_(std::max<std::uint32_t>(1, config.mg_capacity)) {
  if (config_.num_colors == 0) {
    throw std::invalid_argument("TcConfig: num_colors must be >= 1");
  }
  if (config_.tasklets == 0 || config_.tasklets > pim_config_.max_tasklets) {
    throw std::invalid_argument("TcConfig: bad tasklet count");
  }
  if (config_.uniform_p <= 0.0 || config_.uniform_p > 1.0) {
    throw std::invalid_argument("TcConfig: uniform_p must be in (0, 1]");
  }
  const std::uint32_t dpus = table_.num_triplets();
  if (dpus > pim_config_.max_dpus) {
    throw std::invalid_argument(
        "TcConfig: " + std::to_string(config_.num_colors) + " colors need " +
        std::to_string(dpus) + " PIM cores but the system has " +
        std::to_string(pim_config_.max_dpus));
  }

  const std::uint64_t max_cap = MramLayout::max_capacity(pim_config_.mram_bytes);
  capacity_ = config_.sample_capacity_edges == 0
                  ? max_cap
                  : std::min(config_.sample_capacity_edges, max_cap);
  if (capacity_ == 0) {
    throw std::invalid_argument("TcConfig: MRAM too small for any sample");
  }

  system_ = std::make_unique<pim::PimSystem>(pim_config_, dpus, pool_.get());
  reservoirs_.reserve(dpus);
  for (std::uint32_t d = 0; d < dpus; ++d) {
    reservoirs_.emplace_back(capacity_, derive_seed(config_.seed, 0xd00 + d));
    // Initialize the control block so later read-modify-write cycles (which
    // preserve kernel-owned fields like sorted_size) start from zeros.
    DpuMeta meta;
    meta.sample_capacity = capacity_;
    system_->dpu(d).mram().write_t(MramLayout::kMetaOffset, meta);
  }
}

TcResult PimTriangleCounter::count(const graph::EdgeList& graph) {
  add_edges(graph.edges());
  return recount();
}

void PimTriangleCounter::add_edges(std::span<const Edge> batch) {
  WallTimer host_timer;
  const std::uint32_t num_dpus = system_->num_dpus();
  const std::size_t num_threads = pool_->size();
  const std::uint64_t batch_id = batch_counter_++;

  // Per-thread, per-DPU edge batches — "each host CPU thread manages an
  // array of edges per PIM core" (Section 3.1).
  std::vector<std::vector<std::vector<Edge>>> local(num_threads);
  for (auto& per_dpu : local) per_dpu.resize(num_dpus);
  std::vector<sketch::MisraGries> local_mg;
  std::vector<std::uint64_t> local_kept(num_threads, 0);
  local_mg.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    local_mg.emplace_back(std::max<std::uint32_t>(1, config_.mg_capacity));
  }

  const color::EdgePartitioner partitioner(hash_, table_);
  pool_->parallel_chunks(
      batch.size(), [&](std::size_t t, std::size_t lo, std::size_t hi) {
        sketch::UniformSampler sampler(
            config_.uniform_p,
            derive_seed(config_.seed, (batch_id << 8) ^ (0xa000 + t)));
        auto& batches = local[t];
        auto& mg = local_mg[t];
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge e = batch[i];
          if (e.is_loop()) continue;
          if (!sampler.keep(e)) continue;
          if (config_.misra_gries_enabled) mg.update_edge(e);
          for (const std::uint32_t d : partitioner.targets(e)) {
            batches[d].push_back(e);
          }
        }
        local_kept[t] = sampler.kept();
      });

  edges_streamed_ += batch.size();
  for (const std::uint64_t k : local_kept) edges_kept_ += k;
  if (config_.misra_gries_enabled) {
    for (const auto& mg : local_mg) global_mg_.merge(mg);
  }

  insert_into_samples(local);

  system_->charge_host(host_timer.elapsed_s(), &pim::PimPhaseTimes::host_s);
}

void PimTriangleCounter::insert_into_samples(
    const std::vector<std::vector<std::vector<Edge>>>& thread_batches) {
  const std::uint32_t num_dpus = system_->num_dpus();
  const std::uint32_t recv_tasklets = config_.tasklets;

  std::vector<double> cycles_before(num_dpus);
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    cycles_before[d] = system_->dpu(d).cycles();
  }

  std::vector<std::uint64_t> pushed_per_dpu(num_dpus, 0);

  pool_->parallel_for(num_dpus, [&](std::size_t d) {
    pim::Dpu& dpu = system_->dpu(d);
    sketch::ReservoirPolicy& reservoir = reservoirs_[d];
    const std::uint64_t sample_base = MramLayout::sample_offset();

    std::uint64_t received = 0;
    std::uint64_t appended_bytes = 0;
    std::uint64_t replaced = 0;

    for (const auto& per_dpu : thread_batches) {
      for (const Edge& e : per_dpu[d]) {
        ++received;
        const auto decision = reservoir.offer();
        switch (decision.action) {
          case sketch::ReservoirDecision::Action::kAppend:
            dpu.mram().write_t(sample_base + decision.slot * sizeof(Edge), e);
            appended_bytes += sizeof(Edge);
            break;
          case sketch::ReservoirDecision::Action::kReplace:
            dpu.mram().write_t(sample_base + decision.slot * sizeof(Edge), e);
            ++replaced;
            break;
          case sketch::ReservoirDecision::Action::kDiscard:
            break;
        }
      }
    }

    // Receive-path cost: stream the staged batch in, one reservoir decision
    // per edge (tasklet-parallel), contiguous appends as bulk DMA, random
    // replacements as 8-byte writes.
    dpu.charge_dma_bulk(received * sizeof(Edge), 2048);  // staging read
    dpu.charge_parallel_instr(received * config_.cost.reservoir_offer,
                              recv_tasklets);
    dpu.charge_dma_bulk(appended_bytes, 2048);
    for (std::uint64_t r = 0; r < replaced; ++r) dpu.serial_dma(sizeof(Edge));

    pushed_per_dpu[d] = received * sizeof(Edge);
  });

  std::uint64_t total_bytes = 0;
  std::uint64_t replicated = 0;
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    total_bytes += pushed_per_dpu[d];
    replicated += pushed_per_dpu[d] / sizeof(Edge);
  }
  edges_replicated_ += replicated;

  // Host -> MRAM transfer of the batches (rank-parallel push).
  if (total_bytes > 0) {
    system_->charge_push(total_bytes, num_dpus,
                         &pim::PimPhaseTimes::sample_creation_s);
  }

  // DPU-side receive time: the slowest core gates the phase.
  double max_delta = 0.0;
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    max_delta =
        std::max(max_delta, system_->dpu(d).cycles() - cycles_before[d]);
  }
  system_->charge_host(pim_config_.cycles_to_seconds(max_delta),
                       &pim::PimPhaseTimes::sample_creation_s);
}

TcResult PimTriangleCounter::recount() {
  const std::uint32_t num_dpus = system_->num_dpus();

  // Can this recount take the incremental path?  Requires a prior full
  // count with persistence and strictly append-only samples since then.
  bool overflowed = false;
  for (const auto& r : reservoirs_) overflowed |= r.seen() > capacity_;
  const bool incremental = config_.incremental && sorted_valid_ && !overflowed;

  // High-degree remap table (Misra-Gries top-t), broadcast to every core.
  // Frozen once incremental state exists: the persistent sorted arcs were
  // built under the old mapping.
  if (config_.misra_gries_enabled && config_.mg_top > 0 && !sorted_valid_) {
    frozen_remap_ = global_mg_.top(
        std::min<std::size_t>(config_.mg_top, MramLayout::kMaxRemap));
  }
  const std::vector<NodeId>& remap = frozen_remap_;

  // Write control blocks (read-modify-write: the kernel owns sorted_size
  // and the sorted-valid flag).
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    pim::Dpu& dpu = system_->dpu(d);
    DpuMeta meta = dpu.mram().read_t<DpuMeta>(MramLayout::kMetaOffset);
    meta.sample_size = reservoirs_[d].stored();
    meta.edges_seen = reservoirs_[d].seen();
    meta.sample_capacity = capacity_;
    meta.num_remap = static_cast<std::uint32_t>(remap.size());
    if (config_.incremental && !overflowed) {
      meta.flags |= DpuMeta::kFlagPersistSorted;
    } else {
      meta.flags &= ~DpuMeta::kFlagPersistSorted;
      meta.flags &= ~DpuMeta::kFlagSortedValid;
      meta.sorted_size = 0;
    }
    dpu.mram().write_t(MramLayout::kMetaOffset, meta);
    if (!remap.empty()) {
      dpu.mram().write(MramLayout::kRemapOffset, remap.data(),
                       remap.size() * sizeof(NodeId));
    }
  }
  system_->charge_push(
      num_dpus * (sizeof(DpuMeta) + remap.size() * sizeof(NodeId)), num_dpus,
      &pim::PimPhaseTimes::count_s);

  // Launch the counting kernel on every core.
  KernelParams params;
  params.tasklets = config_.tasklets;
  params.buffer_edges = std::max<std::uint32_t>(8, config_.wram_buffer_edges);
  params.cost = config_.cost;
  if (incremental) {
    system_->launch(
        [&params](pim::Dpu& dpu) { run_incremental_kernel(dpu, params); },
        &pim::PimPhaseTimes::count_s);
  } else {
    system_->launch(
        [&params](pim::Dpu& dpu) { run_count_kernel(dpu, params); },
        &pim::PimPhaseTimes::count_s);
    sorted_valid_ = config_.incremental && !overflowed;
  }

  // Gather per-core results.
  std::vector<DpuMeta> metas(num_dpus);
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    metas[d] = system_->dpu(d).mram().read_t<DpuMeta>(MramLayout::kMetaOffset);
  }
  system_->charge_pull(num_dpus * sizeof(DpuMeta), num_dpus,
                       &pim::PimPhaseTimes::count_s);

  // ---- statistical corrections (DESIGN.md, "Correction math") -------------
  TcResult result;
  result.num_dpus = num_dpus;
  result.edges_streamed = edges_streamed_;
  result.edges_kept = edges_kept_;
  result.edges_replicated = edges_replicated_;
  result.used_incremental = incremental;

  double total_scaled = 0.0;
  double mono_scaled = 0.0;
  std::uint64_t min_seen = ~0ull;
  std::uint64_t max_seen = 0;
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    const std::uint64_t seen = reservoirs_[d].seen();
    min_seen = std::min(min_seen, seen);
    max_seen = std::max(max_seen, seen);
    if (seen > capacity_) ++result.reservoir_overflows;

    result.raw_total += metas[d].triangle_count;
    const double q = reservoir_correction(capacity_, seen);
    const double scaled =
        q > 0.0 ? static_cast<double>(metas[d].triangle_count) / q : 0.0;
    total_scaled += scaled;
    if (table_.triplet(d).kind() == 1) mono_scaled += scaled;
  }
  result.min_dpu_edges = (num_dpus == 0 || min_seen == ~0ull) ? 0 : min_seen;
  result.max_dpu_edges = max_seen;

  const double colors = static_cast<double>(config_.num_colors);
  const double corrected = total_scaled - (colors - 1.0) * mono_scaled;
  result.estimate = corrected * uniform_sampling_correction(config_.uniform_p);
  result.exact = config_.uniform_p >= 1.0 && result.reservoir_overflows == 0;
  if (result.exact) {
    // Exact mode produces an integer by construction; kill float fuzz.
    result.estimate = static_cast<double>(result.rounded());
  }
  result.times = system_->times();
  return result;
}

std::vector<std::uint64_t> PimTriangleCounter::per_dpu_edges_seen() const {
  std::vector<std::uint64_t> seen;
  seen.reserve(reservoirs_.size());
  for (const auto& r : reservoirs_) seen.push_back(r.seen());
  return seen;
}

}  // namespace pimtc::tc
