#include "tc/host.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/math_util.hpp"
#include "common/prng.hpp"
#include "common/timer.hpp"
#include "sketch/uniform_sampler.hpp"
#include "tc/kernel.hpp"
#include "tc/layout.hpp"

namespace pimtc::tc {
namespace {

/// Wire size of one staged replacement record (slot index + edge); appends
/// travel as bare edges since their slots are implied by the base slot.
constexpr std::uint64_t kStagedReplaceBytes =
    sizeof(std::uint64_t) + sizeof(Edge);

/// Auto color selection: num_colors == 0 derives the largest C whose
/// binom(C+2, 3) triplets fit the machine.
std::uint32_t resolve_colors(const TcConfig& config,
                             const pim::PimSystemConfig& pim_config) {
  if (config.num_colors != 0) return config.num_colors;
  const std::uint32_t colors =
      color::PartitionPlan::auto_colors(pim_config.max_dpus);
  if (colors == 0) {
    throw std::invalid_argument(
        "TcConfig: auto color selection found no C fitting " +
        std::to_string(pim_config.max_dpus) + " PIM cores");
  }
  return colors;
}

}  // namespace

PimTriangleCounter::PimTriangleCounter(const TcConfig& config,
                                       const pim::PimSystemConfig& pim_config)
    : config_(config),
      pim_config_(pim_config),
      // host_threads == 0 shares the process-global pool instead of
      // spawning a private hardware-wide pool per counter: N concurrent
      // engine sessions (src/serve/) would otherwise oversubscribe the
      // machine N-fold.  A pinned thread count still gets a dedicated pool.
      pool_(config.host_threads == 0
                ? nullptr
                : std::make_unique<ThreadPool>(config.host_threads)),
      plan_(resolve_colors(config, pim_config), config.placement,
            pim_config.dpus_per_rank),
      hash_(plan_.num_colors(), derive_seed(config.seed, 0xc01u)),
      global_mg_(std::max<std::uint32_t>(1, config.mg_capacity)) {
  config_.num_colors = plan_.num_colors();
  if (config_.tasklets == 0 || config_.tasklets > pim_config_.max_tasklets) {
    throw std::invalid_argument("TcConfig: bad tasklet count");
  }
  if (config_.uniform_p <= 0.0 || config_.uniform_p > 1.0) {
    throw std::invalid_argument("TcConfig: uniform_p must be in (0, 1]");
  }
  if (config_.misra_gries_enabled && config_.mg_top > config_.mg_capacity) {
    throw std::invalid_argument(
        "TcConfig: mg_top (" + std::to_string(config_.mg_top) +
        ") exceeds mg_capacity (" + std::to_string(config_.mg_capacity) +
        "): cannot remap more nodes than Misra-Gries tracks");
  }
  if (config_.degree_ordered_remap && !config_.misra_gries_enabled) {
    throw std::invalid_argument(
        "TcConfig: degree_ordered_remap needs misra_gries_enabled (the "
        "ordering comes from the Misra-Gries degree estimates)");
  }
  if (config_.gallop_margin == 0) {
    throw std::invalid_argument("TcConfig: gallop_margin must be >= 1");
  }
  // Lower bound 4 = the kernels' minimum burst; upper bound = the budget
  // the kernels would otherwise clamp to.  Validated, never silently moved.
  const std::uint32_t max_buffer =
      max_wram_buffer_edges(pim_config_, config_.tasklets);
  if (config_.wram_buffer_edges < 4 ||
      config_.wram_buffer_edges > max_buffer) {
    throw std::invalid_argument(
        "TcConfig: wram_buffer_edges must be in [4, " +
        std::to_string(max_buffer) + "] for " +
        std::to_string(config_.tasklets) + " tasklets and " +
        std::to_string(pim_config_.wram_bytes) + " B of WRAM, got " +
        std::to_string(config_.wram_buffer_edges));
  }
  if (!(config_.rebalance_min_gain >= 1.0)) {  // also rejects NaN
    throw std::invalid_argument("TcConfig: rebalance_min_gain must be >= 1");
  }
  if (!config_.fault_spec.empty()) {
    const pim::FaultSpec fspec = pim::FaultSpec::parse(config_.fault_spec);
    std::uint32_t spares = 0;
    if (fspec.recovery == pim::FaultSpec::Recovery::kRematerialize &&
        (fspec.launch_permanent > 0.0 || fspec.rank_outage > 0.0)) {
      // Spare banks are migration targets for dead-bank re-materialization,
      // clamped to what the machine has beyond the triplet count.  Only
      // provisioned when some rate can actually kill a bank: idle spares
      // widen every per-rank padded transfer, which would break the
      // inert-plan timing-identity guarantee.
      const std::uint32_t triplets = plan_.num_triplets();
      const std::uint64_t headroom =
          pim_config_.max_dpus > triplets ? pim_config_.max_dpus - triplets
                                          : 0;
      spares = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(fspec.spare_banks, headroom));
    }
    plan_.add_spare_banks(spares);
    fault_plan_ = std::make_shared<const pim::FaultPlan>(fspec);
  }
  const std::uint32_t dpus = plan_.num_dpus();
  if (dpus > pim_config_.max_dpus) {
    throw std::invalid_argument(
        "TcConfig: " + std::to_string(config_.num_colors) + " colors need " +
        std::to_string(dpus) + " PIM cores but the system has " +
        std::to_string(pim_config_.max_dpus));
  }

  const std::uint64_t max_cap = MramLayout::max_capacity(pim_config_.mram_bytes);
  capacity_ = config_.sample_capacity_edges == 0
                  ? max_cap
                  : std::min(config_.sample_capacity_edges, max_cap);
  if (capacity_ == 0) {
    throw std::invalid_argument("TcConfig: MRAM too small for any sample");
  }

  system_ = std::make_unique<pim::PimSystem>(pim_config_, dpus, pool_.get());
  if (fault_plan_ != nullptr) {
    system_->install_fault_plan(fault_plan_);
    // Always-on mirrors make any bank restorable with zero device reads;
    // both ingest paths maintain them once valid, so the mirror is exact
    // at every point of the stream.
    if (fault_plan_->spec().recovery ==
        pim::FaultSpec::Recovery::kRematerialize) {
      mirrors_valid_ = true;
    }
  }
  const std::uint32_t triplets = plan_.num_triplets();
  reservoirs_.reserve(triplets);
  for (std::uint32_t t = 0; t < triplets; ++t) {
    // Seeded by triplet index, not bank index: the estimator's RNG stream
    // must not depend on where the plan places a triplet.
    reservoirs_.emplace_back(capacity_, derive_seed(config_.seed, 0xd00 + t));
  }
  for (std::uint32_t b = 0; b < dpus; ++b) {
    // Initialize every bank's control block (spares included) so later
    // read-modify-write cycles (which preserve kernel-owned fields like
    // sorted_size) start from zeros.
    DpuMeta meta;
    meta.sample_capacity = capacity_;
    system_->dpu(b).mram().write_t(MramLayout::kMetaOffset, meta);
  }

  // Persistent ingestion state: sized once, reused by every batch.
  // Estimator-side state is per triplet; transfer-side scratch is per bank.
  partition_.resize(pool().size());
  for (auto& per_triplet : partition_) per_triplet.resize(triplets);
  update_partition_.resize(pool().size());
  for (auto& per_triplet : update_partition_) per_triplet.resize(triplets);
  mirrors_.resize(triplets);
  touched_slots_.resize(triplets);
  triplet_dirty_.assign(triplets, 0);
  triplet_lost_.assign(triplets, 0);
  staging_.resize(triplets);
  cursors_.resize(triplets);
  batch_totals_.resize(triplets);
  flush_bytes_.resize(dpus);
  cycles_before_.resize(dpus);
  received_.resize(triplets);
}

TcResult PimTriangleCounter::count(const graph::EdgeList& graph) {
  add_edges(graph.edges());
  return recount();
}

void PimTriangleCounter::add_edges(std::span<const Edge> batch) {
  WallTimer host_timer;
  const std::size_t num_threads = pool().size();
  const std::uint64_t batch_id = batch_counter_++;

  // Per-thread, per-triplet partition buffers — "each host CPU thread
  // manages an array of edges per PIM core" (Section 3.1).  The buffers are
  // members: clear() keeps their capacity, so steady-state batches allocate
  // nothing.
  for (auto& per_triplet : partition_) {
    for (auto& v : per_triplet) v.clear();
  }
  std::vector<sketch::MisraGries> local_mg;
  std::vector<std::uint64_t> local_kept(num_threads, 0);
  local_mg.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    local_mg.emplace_back(std::max<std::uint32_t>(1, config_.mg_capacity));
  }

  const color::EdgePartitioner partitioner(hash_, plan_.table());
  pool().parallel_chunks(
      batch.size(), [&](std::size_t t, std::size_t lo, std::size_t hi) {
        sketch::UniformSampler sampler(
            config_.uniform_p,
            derive_seed(config_.seed, (batch_id << 8) ^ (0xa000 + t)));
        auto& batches = partition_[t];
        auto& mg = local_mg[t];
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge e = batch[i];
          if (e.is_loop()) continue;
          if (!sampler.keep(e)) continue;
          if (config_.misra_gries_enabled) mg.update_edge(e);
          for (const std::uint32_t d : partitioner.targets(e)) {
            batches[d].push_back(e);
          }
        }
        local_kept[t] = sampler.kept();
      });

  edges_streamed_ += batch.size();
  for (const std::uint64_t k : local_kept) edges_kept_ += k;
  if (config_.misra_gries_enabled) {
    for (const auto& mg : local_mg) global_mg_.merge(mg);
  }

  insert_into_samples(host_timer.elapsed_s());

  system_->charge_host(host_timer.elapsed_s(), &pim::PimPhaseTimes::host_s);
}

void PimTriangleCounter::drain_in_flight(double host_overlap_s) {
  if (in_flight_device_s_ <= 0.0) return;
  const double hidden =
      config_.pipelined_ingest
          ? std::min(in_flight_device_s_, std::max(0.0, host_overlap_s))
          : 0.0;
  if (hidden > 0.0) system_->note_overlap_saved(hidden);
  system_->charge_host(in_flight_device_s_ - hidden,
                       &pim::PimPhaseTimes::sample_creation_s);
  in_flight_device_s_ = 0.0;
}

void PimTriangleCounter::insert_into_samples(double host_window_s) {
  const std::uint32_t num_dpus = system_->num_dpus();
  const std::uint32_t num_triplets = plan_.num_triplets();
  const std::uint32_t recv_tasklets = config_.tasklets;
  const std::uint64_t sample_base = MramLayout::sample_offset();

  // How many staging rounds does the slowest triplet need?
  std::uint64_t max_per_triplet = 0;
  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    std::uint64_t total = 0;
    for (const auto& per_triplet : partition_) total += per_triplet[t].size();
    batch_totals_[t] = total;
    max_per_triplet = std::max(max_per_triplet, total);
    cursors_[t] = {0, 0};
  }
  if (max_per_triplet == 0) {
    // Nothing survived sampling: no scatter, but the host work just done
    // still overlaps any in-flight receive of the previous batch.
    drain_in_flight(host_window_s);
    return;
  }

  // greedy_balance defers its load-aware placement to the first batch with
  // data: nothing is resident yet, so re-planning from the observed
  // per-triplet loads is free (no migration traffic).
  if (plan_.policy() == color::PlacementPolicy::kGreedyBalance &&
      !placement_observed_) {
    placement_observed_ = true;
    apply_placement(plan_.balanced_placement(batch_totals_));
  }

  const std::uint64_t round_cap = config_.staging_capacity_edges == 0
                                      ? max_per_triplet
                                      : config_.staging_capacity_edges;
  const std::uint64_t rounds = ceil_div(max_per_triplet, round_cap);

  std::fill(received_.begin(), received_.end(), 0);

  for (std::uint64_t round = 0; round < rounds; ++round) {
    WallTimer stage_timer;
    for (std::uint32_t d = 0; d < num_dpus; ++d) {
      cycles_before_[d] = system_->dpu(d).cycles();
    }
    // Banks without an occupant (spares) stage nothing this round.
    std::fill(flush_bytes_.begin(), flush_bytes_.end(), 0);

    pool().parallel_for(num_triplets, [&](std::size_t t) {
      // The plan is an injection, so each triplet touches its own bank.
      pim::Dpu& dpu = system_->dpu(plan_.dpu_of(static_cast<std::uint32_t>(t)));
      sketch::ReservoirPolicy& reservoir = reservoirs_[t];
      sketch::SampleMirror<Edge>& mirror = mirrors_[t];
      sketch::ReservoirStaging<Edge>& staging = staging_[t];
      auto& [thread_idx, offset] = cursors_[t];

      // Stage up to round_cap reservoir decisions host-side.  Once a
      // deletion has materialized the mirrors, they track the decisions
      // too, so the host keeps knowing the banks' resident content;
      // insert-only sessions skip that bookkeeping entirely.
      staging.begin(reservoir.stored());
      std::uint64_t budget = round_cap;
      while (budget > 0 && thread_idx < partition_.size()) {
        const auto& src = partition_[thread_idx][t];
        while (offset < src.size() && budget > 0) {
          const sketch::ReservoirDecision d = reservoir.offer();
          staging.stage_decision(d, src[offset]);
          if (mirrors_valid_) mirror.apply(d, src[offset]);
          ++offset;
          --budget;
          ++received_[t];
        }
        if (offset == src.size()) {
          ++thread_idx;
          offset = 0;
        }
      }

      // Flush the image: one contiguous write for the append run, one per
      // maximal run of consecutive replaced slots — bulk traffic, not
      // per-edge stores.
      const std::uint64_t append_bytes =
          staging.appends().size() * sizeof(Edge);
      if (append_bytes > 0) {
        dpu.mram().write(sample_base + staging.base_slot() * sizeof(Edge),
                         staging.appends().data(),
                         static_cast<std::size_t>(append_bytes));
      }
      const std::uint64_t staged_bytes =
          append_bytes + staging.replace_count() * kStagedReplaceBytes;

      // DPU-side receive cost: stream the staged image in, copy each record
      // into place (tasklet-parallel; the decisions were made host-side),
      // contiguous appends as one bulk burst, replacement runs as scattered
      // DMA stores.
      dpu.charge_dma_bulk(staged_bytes, 2048);  // landing-zone read
      dpu.charge_parallel_instr(
          staging.staged_items() * config_.cost.edge_copy, recv_tasklets);
      dpu.charge_dma_bulk(append_bytes, 2048);
      staging.for_each_replace_run(
          [&](std::uint64_t first_slot, const Edge* items, std::size_t n) {
            const std::uint64_t bytes = n * sizeof(Edge);
            dpu.mram().write(sample_base + first_slot * sizeof(Edge), items,
                             static_cast<std::size_t>(bytes));
            dpu.serial_dma(bytes);
          });

      flush_bytes_[plan_.dpu_of(static_cast<std::uint32_t>(t))] = staged_bytes;
    });

    // The host work of this staging round (plus, for the first round, the
    // partitioning that preceded it) is the window that hides the previous
    // flush's in-flight device time.
    settle_flush_round((round == 0 ? host_window_s : 0.0) +
                       stage_timer.elapsed_s());
  }

  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    edges_replicated_ += received_[t];
  }
}

void PimTriangleCounter::settle_flush_round(double host_window_s) {
  drain_in_flight(host_window_s);

  // Model this round's device time: one rank-parallel scatter of the
  // per-DPU staged images, then the DPU-side receive (slowest core gates).
  const double xfer_s = system_->charge_scatter(
      flush_bytes_, config_.pipelined_ingest
                        ? nullptr
                        : &pim::PimPhaseTimes::sample_creation_s);
  double max_delta = 0.0;
  for (std::uint32_t d = 0; d < system_->num_dpus(); ++d) {
    max_delta =
        std::max(max_delta, system_->dpu(d).cycles() - cycles_before_[d]);
  }
  const double receive_s = pim_config_.cycles_to_seconds(max_delta);
  if (config_.pipelined_ingest) {
    in_flight_device_s_ = xfer_s + receive_s;
  } else {
    system_->charge_host(receive_s, &pim::PimPhaseTimes::sample_creation_s);
  }
}

void PimTriangleCounter::materialize_mirrors() {
  if (mirrors_valid_) return;
  // The previous batch's modeled receive must land before its sample can
  // be read back.
  drain_in_flight(0.0);

  const std::uint32_t num_triplets = plan_.num_triplets();
  std::vector<std::vector<Edge>> resident(num_triplets);
  std::vector<pim::GatherSpan> gathers(system_->num_dpus());
  bool any = false;
  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    const std::uint64_t n = reservoirs_[t].stored();
    if (n == 0) continue;
    any = true;
    resident[t].resize(static_cast<std::size_t>(n));
    gathers[plan_.dpu_of(t)] = {MramLayout::sample_offset(),
                                resident[t].data(), n * sizeof(Edge)};
  }
  if (any) {
    system_->gather(gathers, &pim::PimPhaseTimes::sample_creation_s);
  }
  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    mirrors_[t].assign(std::move(resident[t]));
  }
  mirrors_valid_ = true;
}

void PimTriangleCounter::remove_edges(std::span<const Edge> batch) {
  std::vector<EdgeUpdate> updates;
  updates.reserve(batch.size());
  for (const Edge e : batch) updates.push_back(delete_of(e));
  apply(updates);
}

void PimTriangleCounter::apply(std::span<const EdgeUpdate> batch) {
  bool any_delete = false;
  for (const EdgeUpdate& u : batch) {
    if (!u.is_insert) {
      any_delete = true;
      break;
    }
  }
  if (!any_delete) {
    // An all-insert batch is exactly the add_edges case; routing it there
    // keeps insert-only streams on the legacy code path verbatim (same RNG
    // draws, same staging images — bit-identical estimates and transfers).
    std::vector<Edge> edges;
    edges.reserve(batch.size());
    for (const EdgeUpdate& u : batch) edges.push_back(u.edge);
    add_edges(edges);
    return;
  }
  if (config_.uniform_p < 1.0) {
    throw std::invalid_argument(
        "PimTriangleCounter::apply: deletions cannot compose with uniform "
        "sampling (uniform_p < 1): the keep coin of the original insertion "
        "is not reconstructible, so a deletion cannot be routed "
        "consistently");
  }

  // First deletion ever: build the occupancy mirrors from the resident
  // bank contents (one modeled rank-parallel gather).
  materialize_mirrors();

  WallTimer host_timer;

  // Partition the ± stream per thread per triplet — the same shape as the
  // insert path, and the same deterministic routing: a deletion reaches
  // exactly the triplets its insertion reached (the color hash is
  // orientation- and sign-blind).
  for (auto& per_triplet : update_partition_) {
    for (auto& v : per_triplet) v.clear();
  }
  const color::EdgePartitioner partitioner(hash_, plan_.table());
  pool().parallel_chunks(
      batch.size(), [&](std::size_t t, std::size_t lo, std::size_t hi) {
        auto& batches = update_partition_[t];
        for (std::size_t i = lo; i < hi; ++i) {
          const EdgeUpdate& u = batch[i];
          if (u.edge.is_loop()) continue;
          for (const std::uint32_t d : partitioner.targets(u.edge)) {
            batches[d].push_back(u);
          }
        }
      });

  // Stream bookkeeping.  Deletions decrement the Misra-Gries degree
  // summaries in place; they cannot ride the mergeable per-thread
  // summaries (a thread-local table cannot decrement a counter tracked
  // only globally), so the mixed path updates the global table serially.
  edges_streamed_ += batch.size();
  for (const EdgeUpdate& u : batch) {
    if (u.edge.is_loop()) continue;
    if (u.is_insert) {
      ++edges_kept_;
    } else {
      ++edges_deleted_;
    }
    if (config_.misra_gries_enabled) {
      if (u.is_insert) {
        global_mg_.update_edge(u.edge);
      } else {
        global_mg_.remove_edge(u.edge);
      }
    }
  }
  apply_updates_to_samples(host_timer.elapsed_s());

  system_->charge_host(host_timer.elapsed_s(), &pim::PimPhaseTimes::host_s);
}

void PimTriangleCounter::apply_updates_to_samples(double host_window_s) {
  const std::uint32_t num_dpus = system_->num_dpus();
  const std::uint32_t num_triplets = plan_.num_triplets();
  const std::uint32_t recv_tasklets = config_.tasklets;
  const std::uint64_t sample_base = MramLayout::sample_offset();

  std::uint64_t max_per_triplet = 0;
  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    std::uint64_t total = 0;
    for (const auto& per_triplet : update_partition_) {
      total += per_triplet[t].size();
    }
    batch_totals_[t] = total;
    max_per_triplet = std::max(max_per_triplet, total);
  }
  if (max_per_triplet == 0) {
    drain_in_flight(host_window_s);
    return;
  }

  if (plan_.policy() == color::PlacementPolicy::kGreedyBalance &&
      !placement_observed_) {
    placement_observed_ = true;
    apply_placement(plan_.balanced_placement(batch_totals_));
  }

  WallTimer stage_timer;
  std::fill(received_.begin(), received_.end(), 0);

  // Phase 1 (host only): replay each triplet's update list in stream
  // order against its policy and mirror, collecting the touched slots.
  // The mirror's final content is the ground truth the flush reads, so
  // intermediate values never need materializing.
  pool().parallel_for(num_triplets, [&](std::size_t t) {
    sketch::ReservoirPolicy& reservoir = reservoirs_[t];
    sketch::SampleMirror<Edge>& mirror = mirrors_[t];
    std::vector<std::uint64_t>& touched = touched_slots_[t];
    touched.clear();

    bool lost_resident = false;
    for (const auto& per_triplet : update_partition_) {
      for (const EdgeUpdate& u : per_triplet[t]) {
        if (u.is_insert) {
          const sketch::ReservoirDecision d = reservoir.offer();
          mirror.apply(d, u.edge);
          if (d.action != sketch::ReservoirDecision::Action::kDiscard) {
            touched.push_back(d.slot);
          }
        } else {
          // Deletions match either orientation of the stored edge.
          auto slot = mirror.evict(u.edge);
          if (!slot) slot = mirror.evict(u.edge.reversed());
          if (slot) {
            reservoir.remove_resident();
            lost_resident = true;
            touched.push_back(*slot);
          } else {
            (void)reservoir.remove_missing();
          }
        }
        ++received_[t];
      }
    }
    if (lost_resident) triplet_dirty_[t] = 1;

    // Collapse to the set of live touched slots; dead slots (at or above
    // the final stored prefix) never reach the device.
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    const std::uint64_t stored = reservoir.stored();
    while (!touched.empty() && touched.back() >= stored) touched.pop_back();
  });

  // Phase 2: flush the touched slots (final values, runs of consecutive
  // slots — the staged-record shape of the insert path's replacement
  // runs), in rounds bounded by the same per-DPU staging capacity the
  // insert path honors.
  std::uint64_t max_touched = 0;
  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    max_touched = std::max<std::uint64_t>(max_touched,
                                          touched_slots_[t].size());
  }
  if (max_touched == 0) {
    drain_in_flight(host_window_s + stage_timer.elapsed_s());
    for (std::uint32_t t = 0; t < num_triplets; ++t) {
      edges_replicated_ += received_[t];
    }
    return;
  }
  const std::uint64_t round_cap = config_.staging_capacity_edges == 0
                                      ? max_touched
                                      : config_.staging_capacity_edges;
  const std::uint64_t rounds = ceil_div(max_touched, round_cap);

  for (std::uint64_t round = 0; round < rounds; ++round) {
    WallTimer round_timer;
    for (std::uint32_t d = 0; d < num_dpus; ++d) {
      cycles_before_[d] = system_->dpu(d).cycles();
    }
    // Banks without an occupant (spares) stage nothing this round.
    std::fill(flush_bytes_.begin(), flush_bytes_.end(), 0);

    pool().parallel_for(num_triplets, [&](std::size_t t) {
      pim::Dpu& dpu =
          system_->dpu(plan_.dpu_of(static_cast<std::uint32_t>(t)));
      const sketch::SampleMirror<Edge>& mirror = mirrors_[t];
      const std::vector<std::uint64_t>& touched = touched_slots_[t];
      const std::size_t lo =
          static_cast<std::size_t>(std::min<std::uint64_t>(
              round * round_cap, touched.size()));
      const std::size_t hi =
          static_cast<std::size_t>(std::min<std::uint64_t>(
              (round + 1) * round_cap, touched.size()));

      std::uint64_t staged_bytes = 0;
      std::vector<Edge> run;
      std::size_t i = lo;
      while (i < hi) {
        run.clear();
        const std::uint64_t first = touched[i];
        std::uint64_t expected = first;
        while (i < hi && touched[i] == expected) {
          run.push_back(mirror.at(expected));
          ++expected;
          ++i;
        }
        const std::uint64_t bytes = run.size() * sizeof(Edge);
        dpu.mram().write(sample_base + first * sizeof(Edge), run.data(),
                         static_cast<std::size_t>(bytes));
        dpu.serial_dma(bytes);
        staged_bytes += run.size() * kStagedReplaceBytes;
      }
      if (staged_bytes > 0) {
        dpu.charge_dma_bulk(staged_bytes, 2048);  // landing-zone read
        dpu.charge_parallel_instr(
            (staged_bytes / kStagedReplaceBytes) * config_.cost.edge_copy,
            recv_tasklets);
      }
      flush_bytes_[plan_.dpu_of(static_cast<std::uint32_t>(t))] =
          staged_bytes;
    });

    settle_flush_round(
        (round == 0 ? host_window_s + stage_timer.elapsed_s() : 0.0) +
        round_timer.elapsed_s());
  }

  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    edges_replicated_ += received_[t];
  }
}

bool PimTriangleCounter::rebalance() {
  // An explicit re-plan counts as an observation: greedy_balance must not
  // overwrite it at the next batch.
  placement_observed_ = true;
  const std::vector<std::uint64_t> loads = per_dpu_edges_seen();
  if (!apply_placement(plan_.balanced_placement(loads))) return false;
  ++rebalances_;
  return true;
}

bool PimTriangleCounter::migrate_to(
    std::span<const std::uint32_t> dpu_of_triplet) {
  placement_observed_ = true;
  if (!apply_placement(dpu_of_triplet)) return false;
  ++rebalances_;
  return true;
}

bool PimTriangleCounter::apply_placement(
    std::span<const std::uint32_t> dpu_of_triplet) {
  const std::uint32_t num_dpus = plan_.num_dpus();
  const std::uint32_t num_triplets = plan_.num_triplets();
  if (dpu_of_triplet.size() != num_triplets) {
    throw std::invalid_argument(
        "PimTriangleCounter: placement needs one DPU per triplet");
  }
  const std::vector<std::uint32_t> old = plan_.placement();
  if (std::equal(old.begin(), old.end(), dpu_of_triplet.begin())) {
    return false;  // no-op re-plan: no sync point, no migration
  }
  if (fault_plan_ != nullptr && system_->dead_dpu_count() > 0) {
    throw std::logic_error(
        "PimTriangleCounter: placement migration after bank failures is "
        "unsupported (recovery owns the placement)");
  }
  // A placement change is a sync point: the previous flush must have landed
  // before its sample can move banks.
  drain_in_flight(0.0);
  plan_.set_placement(dpu_of_triplet);

  // Migrate resident samples between banks: pull every moved triplet's
  // sample to the host in one rank-parallel gather, push them to their new
  // banks in one scatter.  Both are modeled (and charged to the ingest
  // phase) exactly like any other bulk transfer.
  std::vector<std::vector<Edge>> moved(num_triplets);
  std::vector<pim::GatherSpan> gathers(num_dpus);
  std::vector<pim::ScatterSpan> scatters(num_dpus);
  bool any_resident = false;
  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    if (old[t] == plan_.dpu_of(t)) continue;
    const std::uint64_t bytes = reservoirs_[t].stored() * sizeof(Edge);
    if (bytes == 0) continue;
    any_resident = true;
    moved[t].resize(static_cast<std::size_t>(reservoirs_[t].stored()));
    gathers[old[t]] = {MramLayout::sample_offset(), moved[t].data(), bytes};
    scatters[plan_.dpu_of(t)] = {MramLayout::sample_offset(), moved[t].data(),
                                 bytes};
  }
  if (any_resident) {
    system_->gather(gathers, &pim::PimPhaseTimes::sample_creation_s);
    system_->scatter(scatters, &pim::PimPhaseTimes::sample_creation_s);
  }

  // Every bank whose occupant changed gets a fresh control block: the
  // kernel-owned sorted state it holds belongs to the previous occupant.
  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    if (old[t] == plan_.dpu_of(t)) continue;
    DpuMeta meta;
    meta.sample_size = reservoirs_[t].stored();
    meta.edges_seen = reservoirs_[t].seen();
    meta.sample_capacity = capacity_;
    system_->dpu(plan_.dpu_of(t)).mram().write_t(MramLayout::kMetaOffset,
                                                 meta);
    // The persistent sorted arcs did not move with the sample.
    sorted_valid_ = false;
  }
  return true;
}

TcResult PimTriangleCounter::recount() {
  // Sync point: an in-flight batch receive must land before the kernel can
  // run, and the count depends on it — nothing left to hide it under, so
  // any remainder is charged in full.
  drain_in_flight(0.0);

  const std::uint32_t num_dpus = system_->num_dpus();
  const std::uint32_t num_triplets = plan_.num_triplets();

  // Deterministic MRAM bit-rot: one scrub epoch per recount.  With
  // checksums on, a flipped sample is detected and re-materialized from
  // the host mirror (or the triplet is lost when no mirror exists).
  if (fault_plan_ != nullptr) inject_and_scrub_bitflips();

  // Automatic rebalancing: re-plan from observed loads and migrate when the
  // projected rank-padded scatter wire shrinks by at least the configured
  // gain (hysteresis — near-ties never thrash the placement).  The bar is
  // deliberately on the *recurring* scatter shape, not the one-time
  // migration cost: that cost (and the full recount it forces in
  // incremental mode) is charged to the timeline where reports make the
  // trade visible, and once balanced, later recounts no-op so it is paid
  // at most once per load shift.  Raise rebalance_min_gain for streams
  // where migrations are not worth small padding wins.
  if (config_.rebalance_enabled &&
      !(fault_plan_ != nullptr && system_->dead_dpu_count() > 0)) {
    const std::vector<std::uint64_t> loads = per_dpu_edges_seen();
    std::vector<std::uint64_t> bytes(loads.size());
    for (std::size_t t = 0; t < loads.size(); ++t) {
      bytes[t] = loads[t] * sizeof(Edge);
    }
    const std::vector<std::uint32_t> proposed =
        plan_.balanced_placement(loads);
    const std::uint64_t current_wire =
        plan_.padded_wire_bytes(bytes, pim_config_.dma_alignment_bytes);
    const std::uint64_t proposed_wire = plan_.padded_wire_bytes(
        bytes, proposed, pim_config_.dma_alignment_bytes);
    if (static_cast<double>(current_wire) >
        static_cast<double>(proposed_wire) * config_.rebalance_min_gain) {
      if (apply_placement(proposed)) ++rebalances_;
    }
  }

  // Can this recount take the incremental path?  Requires a prior full
  // count with persistence and append-only samples since then.  The gate is
  // effective_seen (net size + pending deletions): it is non-decreasing and
  // exceeds the capacity exactly when a reservoir has ever replaced — on
  // insert-only streams it equals seen(), the legacy condition.  Triplets
  // whose sample lost an edge (triplet_dirty_) are handled per core below:
  // they alone fall back to a full pass while the rest stay incremental.
  bool overflowed = false;
  for (const auto& r : reservoirs_) {
    overflowed |= r.effective_seen() > capacity_;
  }
  const bool incremental = config_.incremental && sorted_valid_ && !overflowed;

  // High-degree remap table, broadcast to every core and frozen once
  // incremental state exists (the persistent sorted arcs were built under
  // the old mapping).  Heavy-hitter mode remaps the top-t hubs; degree-
  // ordered mode remaps every tracked node, ordered by estimated degree, so
  // region sizes anti-correlate with degree (degree orientation).  top()
  // returns highest-estimate first and remapped_id() descends with rank, so
  // the order of the table *is* the degree order.
  if (config_.misra_gries_enabled && !sorted_valid_) {
    const std::size_t want =
        config_.degree_ordered_remap
            ? std::min<std::size_t>(config_.mg_capacity, MramLayout::kMaxRemap)
            : std::min<std::size_t>(config_.mg_top, MramLayout::kMaxRemap);
    if (want > 0) frozen_remap_ = global_mg_.top(want);
  }
  const std::vector<NodeId>& remap = frozen_remap_;

  // Write control blocks (read-modify-write: the kernel owns sorted_size
  // and the sorted-valid flag).  The plan routes each triplet's block to
  // its bank.  A dirty triplet (its sample lost an edge since the last
  // count) gets its persistent sorted arcs invalidated here — only its
  // core pays the full rebuild, the rest keep their S*.
  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    if (triplet_lost_[t]) continue;  // nothing resident to count
    pim::Dpu& dpu = system_->dpu(plan_.dpu_of(t));
    DpuMeta meta = dpu.mram().read_t<DpuMeta>(MramLayout::kMetaOffset);
    meta.sample_size = reservoirs_[t].stored();
    meta.edges_seen = reservoirs_[t].seen();
    meta.sample_capacity = capacity_;
    meta.num_remap = static_cast<std::uint32_t>(remap.size());
    const bool valid_t = sorted_valid_ && !triplet_dirty_[t];
    if (config_.incremental && !overflowed && valid_t) {
      meta.flags |= DpuMeta::kFlagPersistSorted;
    } else if (config_.incremental && !overflowed) {
      meta.flags |= DpuMeta::kFlagPersistSorted;
      meta.flags &= ~DpuMeta::kFlagSortedValid;
      meta.sorted_size = 0;
    } else {
      meta.flags &= ~DpuMeta::kFlagPersistSorted;
      meta.flags &= ~DpuMeta::kFlagSortedValid;
      meta.sorted_size = 0;
    }
    dpu.mram().write_t(MramLayout::kMetaOffset, meta);
    if (!remap.empty()) {
      dpu.mram().write(MramLayout::kRemapOffset, remap.data(),
                       remap.size() * sizeof(NodeId));
    }
  }

  // Control-block + remap broadcast push (uniform spans on occupied,
  // surviving banks: no padding when the placement is bank-dense).
  std::vector<std::uint64_t> meta_bytes(num_dpus, 0);
  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    if (triplet_lost_[t]) continue;
    meta_bytes[plan_.dpu_of(t)] =
        sizeof(DpuMeta) + remap.size() * sizeof(NodeId);
  }
  system_->charge_scatter(meta_bytes, &pim::PimPhaseTimes::count_s);

  // Launch the counting kernel on every core.
  KernelParams params;
  params.tasklets = config_.tasklets;
  params.buffer_edges = config_.wram_buffer_edges;  // validated in range
  params.intersect = config_.intersect;
  params.gallop_margin = config_.gallop_margin;
  params.region_cache = config_.region_cache;
  params.cost = config_.cost;
  std::uint64_t instr_before = 0;
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    instr_before += system_->dpu(d).total_instructions();
  }
  // Per-core kernel selection: in incremental mode, only the cores whose
  // triplet went dirty (deletion evicted a resident edge) re-run the full
  // pipeline — rebuilding their persistent arcs — while every clean core
  // counts just its new edges.
  std::uint32_t dirty_full = 0;
  std::vector<std::uint8_t> full_pass(num_dpus, incremental ? 0 : 1);
  if (incremental) {
    for (std::uint32_t t = 0; t < num_triplets; ++t) {
      if (triplet_dirty_[t] && !triplet_lost_[t]) {
        full_pass[plan_.dpu_of(t)] = 1;
        ++dirty_full;
      }
    }
  }
  const auto kernel = [&params, &full_pass](pim::Dpu& dpu) {
    if (full_pass[dpu.id()]) {
      run_count_kernel(dpu, params);
    } else {
      run_incremental_kernel(dpu, params);
    }
  };
  if (fault_plan_ == nullptr) {
    system_->launch(kernel, &pim::PimPhaseTimes::count_s);
  } else {
    run_launch_with_recovery(kernel, full_pass);
  }
  // After this launch every persisted arc array is fresh again: clean cores
  // merged their batch, dirty and first-time cores rebuilt from scratch.
  sorted_valid_ = config_.incremental && !overflowed;
  std::fill(triplet_dirty_.begin(), triplet_dirty_.end(), 0);
  std::uint64_t instr_after = 0;
  for (std::uint32_t d = 0; d < num_dpus; ++d) {
    instr_after += system_->dpu(d).total_instructions();
  }

  // Gather per-core results in one rank-parallel pull (only banks that ran
  // a kernel: spares and lost triplets' banks have nothing to report).
  std::vector<DpuMeta> metas(num_dpus);
  std::vector<pim::GatherSpan> gather_spans(num_dpus);
  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    if (triplet_lost_[t]) continue;
    const std::uint32_t d = plan_.dpu_of(t);
    gather_spans[d] = {MramLayout::kMetaOffset, &metas[d], sizeof(DpuMeta)};
  }
  system_->gather(gather_spans, &pim::PimPhaseTimes::count_s);

  // ---- statistical corrections (DESIGN.md, "Correction math") -------------
  TcResult result;
  result.num_dpus = num_dpus;
  result.num_ranks = system_->num_ranks();
  result.edges_streamed = edges_streamed_;
  result.edges_kept = edges_kept_;
  result.edges_replicated = edges_replicated_;
  result.used_incremental = incremental;
  result.dirty_full_recounts = dirty_full;
  result.edges_deleted = edges_deleted_;
  result.num_colors = config_.num_colors;
  result.placement = color::to_string(plan_.policy());
  result.dpu_utilization = static_cast<double>(num_dpus) /
                           static_cast<double>(pim_config_.max_dpus);
  result.rebalances = rebalances_;
  result.kernel_instructions = instr_after - instr_before;
  result.intersect = to_string(config_.intersect);
  for (const DpuMeta& m : metas) {
    result.kernel.merge_picks += m.merge_picks;
    result.kernel.gallop_probes += m.gallop_probes;
    result.kernel.merge_isects += m.merge_isects;
    result.kernel.gallop_isects += m.gallop_isects;
    result.kernel.chunks_claimed += m.chunks_claimed;
    result.count_instructions += m.count_instructions;
  }

  double total_scaled = 0.0;
  double mono_scaled = 0.0;
  double total_weight = 0.0;      // Σ seen over all triplets
  double surviving_weight = 0.0;  // Σ seen over surviving triplets
  double max_density = 0.0;       // max scaled/seen over survivors
  std::uint32_t lost_triplets = 0;
  std::uint64_t min_seen = ~0ull;
  std::uint64_t max_seen = 0;
  std::vector<std::uint64_t> loads(num_triplets);
  for (std::uint32_t t = 0; t < num_triplets; ++t) {
    const std::uint64_t seen = reservoirs_[t].seen();
    loads[t] = seen;
    min_seen = std::min(min_seen, seen);
    max_seen = std::max(max_seen, seen);
    result.sample_evictions += reservoirs_[t].evictions();
    result.delete_misses += reservoirs_[t].phantom_deletions();

    // Random-pairing correction: the t of the estimator is the current net
    // population plus pending deletions (effective_seen), under which the
    // resident sample is a uniform min(M, t)-subset restricted to live
    // edges — on insert-only streams effective_seen == seen, the legacy
    // factor bit for bit.
    const std::uint64_t eff = reservoirs_[t].effective_seen();
    if (eff > capacity_) ++result.reservoir_overflows;

    const std::uint32_t kind = plan_.table().triplet(t).kind();
    result.kind_edges_seen[kind - 1] += seen;
    ++result.kind_dpus[kind - 1];

    // Coverage weights are *observed* per-triplet loads: the host knows
    // seen() even for a triplet whose bank is gone, so losing a hub-heavy
    // triplet shrinks coverage proportionally more than losing a light one.
    const double w = static_cast<double>(seen);
    total_weight += w;
    if (triplet_lost_[t]) {
      ++lost_triplets;
      continue;
    }
    surviving_weight += w;

    const std::uint64_t raw = metas[plan_.dpu_of(t)].triangle_count;
    result.raw_total += raw;
    const double q = reservoir_correction(capacity_, eff);
    const double scaled = q > 0.0 ? static_cast<double>(raw) / q : 0.0;
    total_scaled += scaled;
    if (kind == 1) mono_scaled += scaled;
    if (seen > 0) max_density = std::max(max_density, scaled / w);
  }
  result.min_dpu_edges =
      (num_triplets == 0 || min_seen == ~0ull) ? 0 : min_seen;
  result.max_dpu_edges = max_seen;
  result.load_imbalance = color::PartitionPlan::load_imbalance(loads);

  const double coverage =
      total_weight > 0.0 ? surviving_weight / total_weight : 1.0;
  const double colors = static_cast<double>(config_.num_colors);
  double corrected = total_scaled - (colors - 1.0) * mono_scaled;
  if (lost_triplets > 0) {
    // Degraded mode: extrapolate the surviving triplets' contribution by
    // their seen-edge coverage (DESIGN.md, "Fault model & recovery").
    corrected = coverage > 0.0 ? corrected / coverage : 0.0;
  }
  result.estimate = corrected * uniform_sampling_correction(config_.uniform_p);
  result.exact = config_.uniform_p >= 1.0 &&
                 result.reservoir_overflows == 0 && lost_triplets == 0;
  if (result.exact) {
    // Exact mode produces an integer by construction; kill float fuzz.
    result.estimate = static_cast<double>(result.rounded());
  }
  result.times = system_->times();
  result.transfers = system_->transfer_stats();

  if (fault_plan_ != nullptr) {
    pim::FaultStats f = fault_tally_;
    f.injected = true;
    f.degraded = lost_triplets > 0;
    f.coverage = coverage;
    f.dropped_triplets = lost_triplets;
    const pim::FaultCounters& c = system_->fault_counters();
    f.launch_transients = c.launch_transients;
    f.dead_dpus = c.dead_dpus;
    f.rank_outages = c.rank_outages;
    f.transfer_corruptions = c.transfer_corruptions;
    f.transfer_retries = c.transfer_retries;
    f.checksum_bytes = c.checksum_bytes + fault_tally_.checksum_bytes;
    f.detection_s = c.detection_s + fault_tally_.detection_s;
    if (f.degraded) {
      // Widened relative bound on the coverage extrapolation: the missing
      // mass is at most (1-c)/c of the surviving mass times how much denser
      // (triangles per seen edge) the worst surviving triplet is than the
      // mean; the leading 2 is slack for the lost triplets being denser
      // still.  Property-tested on fig-scale hub-heavy graphs.
      const double mean_density =
          surviving_weight > 0.0 ? total_scaled / surviving_weight : 0.0;
      const double dispersion =
          (mean_density > 0.0 && max_density > mean_density)
              ? max_density / mean_density
              : 1.0;
      f.error_bound =
          coverage > 0.0 ? 2.0 * ((1.0 - coverage) / coverage) * dispersion
                         : 1.0;
    }
    // Both ledgers are cumulative over the session: the system's counters
    // by construction, the host tally because it is only ever incremented.
    result.faults = f;
  }
  return result;
}

void PimTriangleCounter::run_launch_with_recovery(
    const std::function<void(pim::Dpu&)>& kernel,
    std::vector<std::uint8_t>& full_pass) {
  const pim::FaultSpec& spec = fault_plan_->spec();
  std::vector<std::uint32_t> pending;
  for (std::uint32_t t = 0; t < plan_.num_triplets(); ++t) {
    if (!triplet_lost_[t]) pending.push_back(plan_.dpu_of(t));
  }
  std::sort(pending.begin(), pending.end());
  std::uint32_t backoff_round = 0;
  while (!pending.empty()) {
    const pim::PimSystem::LaunchReport report =
        system_->launch_checked(pending, kernel, &pim::PimPhaseTimes::count_s);
    std::vector<std::uint32_t> next;

    // Permanently dead banks: migrate their triplet to a healthy spare and
    // re-materialize from the host mirror (full kernel pass rebuilds the
    // sorted arcs), or drop the triplet when no spare/mirror exists.
    for (const std::uint32_t bank : report.dead) {
      const std::uint32_t target =
          recover_unusable_bank(plan_.triplet_of(bank));
      if (target != color::PartitionPlan::kNoTriplet) {
        full_pass[target] = 1;
        next.push_back(target);
      }
    }

    // Transient launch failures fire before the kernel touches device
    // state, so a retry replays the identical input — capped exponential
    // backoff, charged to the modeled count phase.
    if (!report.transient.empty()) {
      if (spec.recovery != pim::FaultSpec::Recovery::kDegrade &&
          backoff_round < spec.max_retries) {
        ++backoff_round;
        const double backoff_s =
            spec.backoff_base_s * static_cast<double>(1u << (backoff_round - 1));
        system_->charge_host(backoff_s, &pim::PimPhaseTimes::count_s);
        fault_tally_.recovery_s += backoff_s;
        fault_tally_.launch_retries += report.transient.size();
        next.insert(next.end(), report.transient.begin(),
                    report.transient.end());
      } else {
        // Retry budget exhausted (or degrade-only policy): treat the bank
        // as unusable for this count.
        for (const std::uint32_t bank : report.transient) {
          const std::uint32_t target =
              recover_unusable_bank(plan_.triplet_of(bank));
          if (target != color::PartitionPlan::kNoTriplet) {
            full_pass[target] = 1;
            next.push_back(target);
          }
        }
      }
    }
    std::sort(next.begin(), next.end());
    pending = std::move(next);
  }
}

std::uint32_t PimTriangleCounter::recover_unusable_bank(std::uint32_t t) {
  if (fault_plan_->spec().recovery ==
          pim::FaultSpec::Recovery::kRematerialize &&
      mirrors_valid_) {
    const std::uint32_t banks = system_->num_dpus();
    for (std::uint32_t b = 0; b < banks; ++b) {
      if (plan_.triplet_of(b) != color::PartitionPlan::kNoTriplet) continue;
      if (system_->dpu_dead(b)) continue;
      std::vector<std::uint32_t> placement = plan_.placement();
      placement[t] = b;
      plan_.set_placement(placement);
      fault_tally_.recovery_s += materialize_bank(t, b);
      ++fault_tally_.rematerializations;
      ++fault_tally_.migrations;
      return b;
    }
  }
  triplet_lost_[t] = 1;
  return color::PartitionPlan::kNoTriplet;
}

double PimTriangleCounter::materialize_bank(std::uint32_t t,
                                            std::uint32_t bank) {
  double seconds = 0.0;
  const sketch::SampleMirror<Edge>& mirror = mirrors_[t];
  const std::uint64_t sample_bytes = mirror.size() * sizeof(Edge);
  if (sample_bytes > 0) {
    std::vector<pim::ScatterSpan> spans(system_->num_dpus());
    spans[bank] = {MramLayout::sample_offset(), mirror.items().data(),
                   sample_bytes};
    seconds += system_->scatter(spans, &pim::PimPhaseTimes::count_s);
  }
  // Fresh control block: the kernel-owned sorted state of whatever occupied
  // this bank before is meaningless for the restored sample.
  DpuMeta meta;
  meta.sample_size = reservoirs_[t].stored();
  meta.edges_seen = reservoirs_[t].seen();
  meta.sample_capacity = capacity_;
  meta.num_remap = static_cast<std::uint32_t>(frozen_remap_.size());
  if (config_.incremental && !any_reservoir_overflowed()) {
    meta.flags |= DpuMeta::kFlagPersistSorted;
  }
  pim::Dpu& dpu = system_->dpu(bank);
  dpu.mram().write_t(MramLayout::kMetaOffset, meta);
  if (!frozen_remap_.empty()) {
    dpu.mram().write(MramLayout::kRemapOffset, frozen_remap_.data(),
                     frozen_remap_.size() * sizeof(NodeId));
  }
  std::vector<std::uint64_t> meta_bytes(system_->num_dpus(), 0);
  meta_bytes[bank] = sizeof(DpuMeta) + frozen_remap_.size() * sizeof(NodeId);
  seconds += system_->charge_scatter(meta_bytes, &pim::PimPhaseTimes::count_s);
  return seconds;
}

void PimTriangleCounter::inject_and_scrub_bitflips() {
  // The epoch advances every recount, fired or not: the draw stream must
  // not depend on what earlier epochs happened to hit.
  const std::uint64_t epoch = fault_epoch_++;
  const pim::FaultSpec& spec = fault_plan_->spec();
  if (spec.mram_bitflip <= 0.0) return;
  for (std::uint32_t t = 0; t < plan_.num_triplets(); ++t) {
    if (triplet_lost_[t]) continue;
    const std::uint64_t stored = reservoirs_[t].stored();
    if (stored == 0) continue;
    const std::uint32_t bank = plan_.dpu_of(t);
    if (system_->dpu_dead(bank)) continue;
    if (!fault_plan_->mram_bitflip(epoch, t)) continue;

    const std::uint64_t bytes = stored * sizeof(Edge);
    const std::uint64_t bit = fault_plan_->corrupt_bit(epoch, t, bytes * 8);
    auto& mram = system_->dpu(bank).mram();
    const std::uint64_t addr = MramLayout::sample_offset() + bit / 8;
    std::uint8_t byte = 0;
    mram.read(addr, &byte, 1);
    byte = static_cast<std::uint8_t>(byte ^ (1u << (bit % 8)));
    mram.write(addr, &byte, 1);
    ++fault_tally_.mram_bitflips;
    if (!spec.checksums) continue;  // silent rot: the count reads garbage

    // Scrub detects the flip (modeled checksum sweep of the resident
    // sample), then restores from the host mirror when one exists.
    const double scrub_s =
        static_cast<double>(bytes) / (spec.checksum_gb_s * 1e9);
    system_->charge_host(scrub_s, &pim::PimPhaseTimes::count_s);
    fault_tally_.detection_s += scrub_s;
    fault_tally_.checksum_bytes += bytes;
    if (mirrors_valid_) {
      fault_tally_.recovery_s += materialize_bank(t, bank);
      ++fault_tally_.sample_restores;
      // The restored control block reset the kernel-owned sorted state;
      // force the full pipeline on this core.
      triplet_dirty_[t] = 1;
    } else {
      triplet_lost_[t] = 1;
    }
  }
}

void PimTriangleCounter::restore_bank(std::uint32_t triplet) {
  if (triplet >= plan_.num_triplets()) {
    throw std::invalid_argument(
        "PimTriangleCounter::restore_bank: no such triplet");
  }
  if (!mirrors_valid_) {
    throw std::logic_error(
        "PimTriangleCounter::restore_bank: host mirrors not materialized; "
        "call ensure_mirrors() first");
  }
  drain_in_flight(0.0);
  materialize_bank(triplet, plan_.dpu_of(triplet));
  triplet_dirty_[triplet] = 1;
}

bool PimTriangleCounter::any_reservoir_overflowed() const noexcept {
  for (const auto& r : reservoirs_) {
    if (r.effective_seen() > capacity_) return true;
  }
  return false;
}

std::vector<std::uint64_t> PimTriangleCounter::per_dpu_edges_seen() const {
  std::vector<std::uint64_t> seen;
  seen.reserve(reservoirs_.size());
  for (const auto& r : reservoirs_) seen.push_back(r.seen());
  return seen;
}

}  // namespace pimtc::tc
