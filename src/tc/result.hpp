// Result of one PIM triangle-counting run.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "pim/fault.hpp"
#include "pim/system.hpp"
#include "tc/intersect.hpp"

namespace pimtc::tc {

struct TcResult {
  /// Statistically corrected triangle estimate (Section "Correction math"
  /// in DESIGN.md).  In exact mode this is an integer equal to the true
  /// count.
  double estimate = 0.0;

  /// Sum of raw per-core counts before any correction.
  TriangleCount raw_total = 0;

  /// True when nothing was sampled away: uniform_p == 1 and no core's
  /// reservoir overflowed, so `estimate` is exact.
  bool exact = false;

  /// Cumulative simulated phase times of the owning system (Setup / Sample
  /// creation / Triangle count), as defined in paper Section 4.1.
  pim::PimPhaseTimes times;

  // ---- diagnostics --------------------------------------------------------
  std::uint32_t num_dpus = 0;
  std::uint32_t num_ranks = 0;  ///< UPMEM ranks the allocation spans
  /// Host<->MRAM transfer accounting (payload vs padded wire bytes,
  /// transfer counts, pipeline overlap) of the rank-aware runtime.
  pim::TransferStats transfers;
  std::uint64_t edges_streamed = 0;    ///< edges offered to the pipeline
  std::uint64_t edges_kept = 0;        ///< survived uniform sampling
  std::uint64_t edges_replicated = 0;  ///< total sent to PIM cores (~C x kept)
  std::uint64_t min_dpu_edges = 0;     ///< load balance: min t_d
  std::uint64_t max_dpu_edges = 0;     ///< load balance: max t_d
  std::uint64_t reservoir_overflows = 0;  ///< cores with effective t_d > M
  bool used_incremental = false;  ///< this recount took the incremental path

  // ---- fully-dynamic stream diagnostics ------------------------------------
  /// Delete updates applied to the session so far (stream space; loops
  /// excluded).
  std::uint64_t edges_deleted = 0;
  /// Resident sample entries evicted by deletions, summed over cores
  /// (replicated space, like edges_replicated — a deletion evicts on every
  /// core that sampled the edge).
  std::uint64_t sample_evictions = 0;
  /// Deletions provably targeting never-inserted edges, dropped as no-ops
  /// (replicated space; detectable only on cores whose sample still covers
  /// their whole live subgraph — always, in the exact regime).
  std::uint64_t delete_misses = 0;
  /// Cores whose triplet went dirty (sample lost an edge) and were forced
  /// to a full pass during this otherwise-incremental recount.
  std::uint32_t dirty_full_recounts = 0;

  // ---- partition / placement diagnostics ----------------------------------
  std::uint32_t num_colors = 0;  ///< resolved C (auto selection filled in)
  std::string placement;         ///< placement policy name
  double dpu_utilization = 0.0;  ///< cores used / machine max_dpus
  /// max(t_d) / mean(t_d): the count phase is gated by the max, so this is
  /// the headroom a perfectly uniform partition would recover.
  double load_imbalance = 0.0;
  /// Edges ever offered to cores of each triplet kind (1/2/3 distinct
  /// colors, expected loads N/3N/6N), and how many cores are of that kind.
  std::array<std::uint64_t, 3> kind_edges_seen{};
  std::array<std::uint32_t, 3> kind_dpus{};
  std::uint32_t rebalances = 0;  ///< sample migrations performed this session

  // ---- counting-kernel diagnostics (this recount) --------------------------
  /// Intersection tally of the launched kernels, summed over cores: merge
  /// vs gallop picks/probes and strided chunks claimed (tc/intersect.hpp).
  IntersectTally kernel;
  /// Pipeline instructions issued by the counting kernels of this recount,
  /// summed over cores (copy + sort + index + count).
  std::uint64_t kernel_instructions = 0;
  /// Instructions of the counting phase alone (region-cache build + lookups
  /// + intersections), summed over cores — the quantity the adaptive
  /// intersection engine optimizes and BENCH_kernel.json tracks.
  std::uint64_t count_instructions = 0;
  /// Resolved intersection policy name ("auto" | "merge" | "gallop").
  std::string intersect;

  // ---- fault injection / recovery ------------------------------------------
  /// Recovery ledger of the session (injected == false when fault injection
  /// is off).  When `faults.degraded` the estimate is reweighted by
  /// `faults.coverage` and `exact` is forced false; `faults.error_bound` is
  /// the widened relative bound on the coverage extrapolation.
  pim::FaultStats faults;

  [[nodiscard]] TriangleCount rounded() const noexcept {
    return estimate <= 0 ? 0 : static_cast<TriangleCount>(estimate + 0.5);
  }
};

}  // namespace pimtc::tc
