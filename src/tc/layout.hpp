// MRAM layout of one PIM core's triangle-counting state.
//
//   [ DpuMeta | remap table | sample S | sorted arcs S* | new-flags |
//     scratch A | scratch B | region index ]
//
// The sample region holds the reservoir in *original* node ids and arrival
// order.  A full kernel run copies it (applying the high-degree remap) into
// scratch A, sorts, builds the region index and counts; with persistence
// requested it additionally materializes S*.
//
// S* is the persistent *arc* array powering the incremental mode used for
// dynamic graphs (paper Section 4.6 / Figure 7): every edge appears in both
// orientations, so region(x) in S* is the full sorted adjacency of x and a
// common-neighbor query for a new edge (u,v) is one merge of region(u) and
// region(v).  A new batch is sorted and merged into S* in one streaming
// pass; only triangles involving new edges are then counted — each exactly
// once, attributed to its lexicographically largest new edge.  The per-arc
// new-flags array marks which S* entries arrived in the current batch.
//
// All offsets derive from the fixed reservoir capacity M (edges; 2M arcs),
// so they are stable across updates; the MRAM page model keeps untouched
// gaps free.
#pragma once

#include <cstdint>

#include "common/math_util.hpp"
#include "common/types.hpp"

namespace pimtc::tc {

/// Fixed header at MRAM offset 0; written by the host before a launch and
/// read back after (8-byte fields first keep everything aligned).
///
/// The `merge_*`/`gallop_*`/`chunks_claimed` fields are the intersection
/// diagnostics of the *last* kernel run (full or incremental): both kernels
/// overwrite them, so the host reads per-recount numbers, not session
/// accumulations.
struct DpuMeta {
  std::uint64_t sample_size = 0;      ///< edges resident in S
  std::uint64_t edges_seen = 0;       ///< t: edges ever offered to this core
  std::uint64_t sample_capacity = 0;  ///< M (drives the layout)
  std::uint64_t triangle_count = 0;   ///< cumulative raw count (output)
  std::uint64_t num_regions = 0;      ///< region-index size (output)
  std::uint64_t sorted_size = 0;      ///< edges incorporated into S*
  std::uint64_t merge_picks = 0;      ///< elements consumed by merge loops
  std::uint64_t gallop_probes = 0;    ///< MRAM bursts of block searches
  std::uint64_t merge_isects = 0;     ///< intersections resolved by merge
  std::uint64_t gallop_isects = 0;    ///< intersections resolved by gallop
  std::uint64_t chunks_claimed = 0;   ///< strided work chunks claimed
  /// Instructions issued by the counting phase alone (region-cache build +
  /// lookups + intersections), excluding copy/sort/index — the quantity the
  /// adaptive engine optimizes and BENCH_kernel.json tracks.
  std::uint64_t count_instructions = 0;
  std::uint32_t num_remap = 0;        ///< entries in the remap table
  std::uint32_t flags = 0;            ///< see kFlag* below

  static constexpr std::uint32_t kFlagPersistSorted = 1u << 0;
  static constexpr std::uint32_t kFlagSortedValid = 1u << 1;
};
static_assert(sizeof(DpuMeta) == 104);

/// An entry of the region index: all sorted records in [begin, next.begin)
/// share `node` as their first endpoint.
struct RegionEntry {
  NodeId node = 0;
  std::uint32_t begin = 0;

  friend constexpr auto operator<=>(const RegionEntry&,
                                    const RegionEntry&) = default;
};
static_assert(sizeof(RegionEntry) == 8);

struct MramLayout {
  static constexpr std::uint64_t kMetaOffset = 0;
  static constexpr std::uint64_t kRemapOffset = 128;
  static constexpr std::uint32_t kMaxRemap = 1024;  ///< 4 KB remap area

  /// Largest reservoir capacity M addressable by the region index:
  /// RegionEntry.begin is a 32-bit index into the 2M-entry arc arrays, so
  /// 2M - 1 must fit in uint32.  max_capacity() clamps to this and the
  /// kernels reject control blocks beyond it.
  static constexpr std::uint64_t kMaxCapacityEdges = 1ull << 31;

  /// First byte of the (raw, arrival-order) sample region: M edges.
  [[nodiscard]] static constexpr std::uint64_t sample_offset() noexcept {
    return kRemapOffset + kMaxRemap * sizeof(NodeId);
  }

  /// Persistent sorted arc array S*: 2M arcs.
  [[nodiscard]] static constexpr std::uint64_t sorted_offset(
      std::uint64_t capacity) noexcept {
    return sample_offset() + capacity * sizeof(Edge);
  }

  /// One "arrived in the current batch" flag byte per S* arc: 2M bytes.
  [[nodiscard]] static constexpr std::uint64_t flags_offset(
      std::uint64_t capacity) noexcept {
    return sorted_offset(capacity) + 2 * capacity * sizeof(Edge);
  }

  /// Scratch buffers sized for 2M arcs each (the arc pipelines need them;
  /// the canonical pipeline uses at most M).
  [[nodiscard]] static constexpr std::uint64_t work_a_offset(
      std::uint64_t capacity) noexcept {
    return round_up(flags_offset(capacity) + 2 * capacity, 8);
  }

  [[nodiscard]] static constexpr std::uint64_t work_b_offset(
      std::uint64_t capacity) noexcept {
    return work_a_offset(capacity) + 2 * capacity * sizeof(Edge);
  }

  /// Region index: up to 2M entries (one per distinct arc source).
  [[nodiscard]] static constexpr std::uint64_t region_offset(
      std::uint64_t capacity) noexcept {
    return work_b_offset(capacity) + 2 * capacity * sizeof(Edge);
  }

  /// End of the layout for capacity M.
  [[nodiscard]] static constexpr std::uint64_t total_bytes(
      std::uint64_t capacity) noexcept {
    return region_offset(capacity) + 2 * capacity * sizeof(RegionEntry);
  }

  /// Largest reservoir capacity M whose full working set fits an MRAM bank:
  /// 8 + 16 + 2 + 16 + 16 + 16 = 74 bytes per edge slot plus the header.
  [[nodiscard]] static constexpr std::uint64_t max_capacity(
      std::uint64_t mram_bytes) noexcept {
    const std::uint64_t fixed = sample_offset() + 64;
    if (mram_bytes <= fixed) return 0;
    const std::uint64_t cap = (mram_bytes - fixed) / 74;
    return cap < kMaxCapacityEdges ? cap : kMaxCapacityEdges;
  }
};

/// New ids assigned to remapped high-degree nodes: rank r (0 = most
/// frequent) becomes kInvalidNode - 1 - r, above every real node id, so hub
/// adjacency regions sort last and are never the merge's first stream.
[[nodiscard]] constexpr NodeId remapped_id(std::uint32_t rank) noexcept {
  return kInvalidNode - 1 - rank;
}

}  // namespace pimtc::tc
