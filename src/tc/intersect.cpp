#include "tc/intersect.hpp"

#include <stdexcept>
#include <string>

namespace pimtc::tc {
namespace {

using pim::Tasklet;

/// Binary search restricted to a cache-provided window: index of the first
/// region with node >= key.  Each probe is an 8-byte DMA read.
std::uint64_t lower_bound_region_window(Tasklet& t,
                                        const pim::KernelCostModel& cost,
                                        std::uint64_t reg, NodeId key,
                                        std::uint64_t lo, std::uint64_t hi) {
  std::uint64_t instr = 0;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const auto entry =
        t.mram_read_t<RegionEntry>(reg + mid * sizeof(RegionEntry));
    if (entry.node < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
    instr += cost.binary_search_step;
  }
  t.instr(instr);
  return lo;
}

}  // namespace

const char* to_string(IntersectPolicy policy) noexcept {
  switch (policy) {
    case IntersectPolicy::kMerge:
      return "merge";
    case IntersectPolicy::kGallop:
      return "gallop";
    case IntersectPolicy::kAuto:
      break;
  }
  return "auto";
}

IntersectPolicy intersect_policy_from_string(std::string_view name) {
  if (name == "auto") return IntersectPolicy::kAuto;
  if (name == "merge") return IntersectPolicy::kMerge;
  if (name == "gallop") return IntersectPolicy::kGallop;
  throw std::invalid_argument("unknown intersection policy '" +
                              std::string(name) +
                              "' (expected auto|merge|gallop)");
}

RegionCache::RegionCache(pim::Dpu& dpu, std::uint32_t tasklets,
                         std::uint32_t buffer_edges, std::uint64_t reg,
                         std::uint64_t num_regions, bool enabled)
    : num_regions_(num_regions) {
  if (num_regions == 0 || !enabled) return;
  stride_ = ceil_div(num_regions, kSlots);
  cache_.resize(ceil_div(num_regions, stride_));
  dpu.wram().reset();
  dpu.parallel(tasklets, [&](Tasklet& t) {
    // Each tasklet streams a contiguous block of the table through a WRAM
    // buffer and keeps the stride-aligned entries — sequential DMA, not
    // per-entry bursts.
    const Block blk = block_of(num_regions, t.id(), tasklets);
    if (blk.begin >= blk.end) return;
    auto buf = dpu.wram().alloc<RegionEntry>(buffer_edges * 2);
    StreamReader<RegionEntry> reader(t, buf, reg, blk.begin, blk.end);
    RegionEntry entry;
    std::uint64_t instr = 0;
    while (reader.next(entry)) {
      const std::uint64_t i = reader.last_index();
      if (i % stride_ == 0) cache_[i / stride_] = entry;
      instr += 2;
    }
    t.instr(instr);
  });
}

std::pair<std::uint64_t, std::uint64_t> RegionCache::window(
    NodeId key, std::uint64_t& instr) const {
  if (cache_.empty()) return {0, num_regions_};
  // upper_bound over the sampled nodes (WRAM-resident, cheap).
  std::size_t lo = 0;
  std::size_t hi = cache_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cache_[mid].node <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
    instr += 3;
  }
  const std::uint64_t begin = lo == 0 ? 0 : (lo - 1) * stride_;
  const std::uint64_t end =
      std::min<std::uint64_t>(num_regions_, lo * stride_ + 1);
  return {begin, end};
}

Region find_region(Tasklet& t, const pim::KernelCostModel& cost,
                   std::uint64_t reg, std::uint64_t num_regions, NodeId key,
                   std::uint64_t n, const RegionCache& cache) {
  std::uint64_t instr = 0;
  const auto [w_lo, w_hi] = cache.window(key, instr);
  t.instr(instr);

  // Narrow window (fine-grained cache): fetch the whole window plus the
  // successor entry in one burst and resolve in WRAM.
  if (w_hi - w_lo <= 6) {
    RegionEntry win[8] = {};
    const std::uint64_t fetch =
        std::min<std::uint64_t>(w_hi - w_lo + 1, num_regions - w_lo);
    t.mram_read(reg + w_lo * sizeof(RegionEntry), win,
                fetch * sizeof(RegionEntry));
    t.instr(cost.binary_search_step + fetch * 2);
    for (std::uint64_t i = 0; i < fetch; ++i) {
      if (win[i].node == key) {
        const std::uint64_t end =
            (i + 1 < fetch) ? win[i + 1].begin
            : (w_lo + i + 1 < num_regions)
                ? t.mram_read_t<RegionEntry>(reg + (w_lo + i + 1) *
                                                       sizeof(RegionEntry))
                      .begin
                : n;
        return {win[i].begin, end};
      }
    }
    return {~0ull, ~0ull};
  }

  const std::uint64_t r =
      lower_bound_region_window(t, cost, reg, key, w_lo, w_hi);
  if (r >= num_regions) return {~0ull, ~0ull};
  // Fetch entries r and r+1 in one 16-byte burst (region end = next begin).
  RegionEntry pair[2] = {};
  const std::size_t fetch = r + 1 < num_regions ? 2 : 1;
  t.mram_read(reg + r * sizeof(RegionEntry), pair,
              fetch * sizeof(RegionEntry));
  t.instr(cost.binary_search_step);
  if (pair[0].node != key) return {~0ull, ~0ull};
  return {pair[0].begin, fetch == 2 ? pair[1].begin : n};
}

bool choose_gallop(IntersectPolicy policy, std::uint32_t gallop_margin,
                   std::uint64_t small_size,
                   std::uint64_t large_size) noexcept {
  if (policy == IntersectPolicy::kMerge) return false;
  if (policy == IntersectPolicy::kGallop) return true;
  const std::uint64_t gallop_cost =
      small_size * (ceil_log2(large_size + 1) + 2);
  return gallop_cost * gallop_margin < small_size + large_size;
}

std::uint64_t gallop_lower_bound(Tasklet& t, const pim::KernelCostModel& cost,
                                 std::uint64_t sorted, const Region& r,
                                 NodeId w, IntersectTally& tally,
                                 std::uint64_t& instr) {
  std::uint64_t lo = r.begin;
  std::uint64_t hi = r.end;
  std::uint64_t probes = 0;
  Edge block[8];
  while (hi - lo > 8) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const std::uint64_t b = std::min(std::max(mid, lo + 4), hi - 4) - 4;
    t.mram_read(sorted + b * sizeof(Edge), block, sizeof(block));
    if (block[0].v >= w) {
      hi = b + 1;
    } else if (block[7].v < w) {
      lo = b + 8;
    } else {
      // Resolve within the block.
      lo = b;
      for (int i = 7; i >= 0; --i) {
        if (block[i].v < w) {
          lo = b + i + 1;
          break;
        }
      }
      hi = lo;
    }
    ++probes;
  }
  instr += probes * (cost.binary_search_step + 8);
  if (hi != lo) {
    // Final linear resolve over the <= 8 remaining entries.
    const std::uint64_t fetch = hi - lo;
    t.mram_read(sorted + lo * sizeof(Edge), block, fetch * sizeof(Edge));
    instr += cost.binary_search_step + fetch;
    ++probes;
    std::uint64_t i = 0;
    while (i < fetch && block[i].v < w) ++i;
    lo += i;
  }
  tally.gallop_probes += probes;
  return lo;
}

}  // namespace pimtc::tc
