// Shared adaptive-intersection machinery of the counting kernels (paper
// Section 3.4, plus the GraphChallenge-style adaptive merge/gallop split).
//
// Both the full (static) and the incremental kernel reduce to the same
// inner problem: given the sorted record array and its per-first-node
// region index, intersect two sorted regions by second endpoint.  This
// module owns everything that problem needs so the two kernels cannot
// diverge again:
//
//  * WRAM-buffered MRAM stream readers/writers (the DMA discipline every
//    phase shares),
//  * the sampled WRAM `RegionCache` + `find_region` lookup that keeps the
//    per-query MRAM probe chain at ~log2(stride) instead of log2(regions),
//  * the adaptive `intersect_regions` primitive: linear merge or block-
//    galloping binary search, selected per intersection by a cost model
//    (`IntersectPolicy::kAuto`) or forced by policy — the match set, and
//    therefore every count, is identical under any policy,
//  * strided chunk scheduling (`kIntersectChunkEdges`) so a hub's
//    contiguous run of expensive queries is spread round-robin over the
//    tasklets instead of landing on one,
//  * the `IntersectTally` diagnostics both kernels report through DpuMeta.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/math_util.hpp"
#include "pim/config.hpp"
#include "pim/dpu.hpp"
#include "tc/layout.hpp"

namespace pimtc::tc {

// ---------------------------------------------------------------------------
// WRAM-buffered MRAM streams
// ---------------------------------------------------------------------------

/// Buffered sequential MRAM reader for trivially copyable records: models a
/// tasklet streaming a region of the bank through a WRAM buffer.  DMA is
/// charged per refill.
template <typename T>
class StreamReader {
 public:
  StreamReader(pim::Tasklet& t, std::span<T> buf, std::uint64_t base,
               std::uint64_t begin_idx, std::uint64_t end_idx)
      : t_(&t),
        buf_(buf),
        base_(base),
        next_fetch_(begin_idx),
        buf_base_(begin_idx),
        end_(end_idx) {}

  bool next(T& out) {
    if (cursor_ >= filled_) {
      if (next_fetch_ >= end_) return false;
      refill();
    }
    out = buf_[cursor_++];
    return true;
  }

  /// Absolute index (within the MRAM array) of the record most recently
  /// returned by next().
  [[nodiscard]] std::uint64_t last_index() const noexcept {
    return buf_base_ + cursor_ - 1;
  }

 private:
  void refill() {
    const std::uint64_t count =
        std::min<std::uint64_t>(buf_.size(), end_ - next_fetch_);
    t_->mram_read(base_ + next_fetch_ * sizeof(T), buf_.data(),
                  count * sizeof(T));
    buf_base_ = next_fetch_;
    next_fetch_ += count;
    filled_ = static_cast<std::size_t>(count);
    cursor_ = 0;
  }

  pim::Tasklet* t_;
  std::span<T> buf_;
  std::uint64_t base_;
  std::uint64_t next_fetch_;
  std::uint64_t buf_base_;
  std::uint64_t end_;
  std::size_t cursor_ = 0;
  std::size_t filled_ = 0;
};

using EdgeReader = StreamReader<Edge>;

/// Buffered sequential MRAM writer.
template <typename T>
class StreamWriter {
 public:
  StreamWriter(pim::Tasklet& t, std::span<T> buf, std::uint64_t base,
               std::uint64_t begin_idx)
      : t_(&t), buf_(buf), base_(base), pos_(begin_idx) {}

  void put(const T& value) {
    buf_[cursor_++] = value;
    if (cursor_ == buf_.size()) flush();
  }

  void flush() {
    if (cursor_ == 0) return;
    t_->mram_write(base_ + pos_ * sizeof(T), buf_.data(), cursor_ * sizeof(T));
    pos_ += cursor_;
    cursor_ = 0;
  }

 private:
  pim::Tasklet* t_;
  std::span<T> buf_;
  std::uint64_t base_;
  std::uint64_t pos_;
  std::size_t cursor_ = 0;
};

// ---------------------------------------------------------------------------
// Work scheduling
// ---------------------------------------------------------------------------

/// Contiguous block [begin, end) of `n` items owned by worker `id` of `num`.
struct Block {
  std::uint64_t begin;
  std::uint64_t end;
};

[[nodiscard]] inline Block block_of(std::uint64_t n, std::uint32_t id,
                                    std::uint32_t num) noexcept {
  const std::uint64_t base = n / num;
  const std::uint64_t rem = n % num;
  const std::uint64_t begin = id * base + std::min<std::uint64_t>(id, rem);
  return {begin, begin + base + (id < rem ? 1 : 0)};
}

/// Strided chunk size (records) of the counting scans.  The scanned array
/// is sorted, so a hub's expensive queries are contiguous; round-robin
/// chunks of this size spread them over the tasklets where one contiguous
/// block per tasklet would hand a single tasklet every hub (real kernels
/// pull chunks from a shared work counter for the same reason).
inline constexpr std::uint64_t kIntersectChunkEdges = 16;

// ---------------------------------------------------------------------------
// Intersection policy + diagnostics
// ---------------------------------------------------------------------------

/// Strategy for intersecting two sorted adjacency regions.  The match set
/// is policy-independent; only the modeled work moves.
enum class IntersectPolicy : std::uint8_t {
  kAuto = 0,  ///< per-intersection cost model picks merge or gallop
  kMerge,     ///< always linear merge (the paper's Section 3.4 kernel)
  kGallop,    ///< always binary-search the small side into the large one
};

[[nodiscard]] const char* to_string(IntersectPolicy policy) noexcept;

/// Parses "auto" | "merge" | "gallop"; throws std::invalid_argument.
[[nodiscard]] IntersectPolicy intersect_policy_from_string(
    std::string_view name);

/// Per-kernel intersection diagnostics, accumulated per tasklet and summed
/// into DpuMeta at the end of a run.
struct IntersectTally {
  std::uint64_t merge_picks = 0;    ///< elements consumed by merge loops
  std::uint64_t gallop_probes = 0;  ///< MRAM bursts issued by block searches
  std::uint64_t merge_isects = 0;   ///< intersections resolved by merge
  std::uint64_t gallop_isects = 0;  ///< intersections resolved by gallop
  std::uint64_t chunks_claimed = 0; ///< strided scan chunks claimed

  IntersectTally& operator+=(const IntersectTally& o) noexcept {
    merge_picks += o.merge_picks;
    gallop_probes += o.gallop_probes;
    merge_isects += o.merge_isects;
    gallop_isects += o.gallop_isects;
    chunks_claimed += o.chunks_claimed;
    return *this;
  }
};

// ---------------------------------------------------------------------------
// Region lookup
// ---------------------------------------------------------------------------

/// A region [begin, end) of the sorted buffer (all records sharing one
/// first endpoint).
struct Region {
  std::uint64_t begin = ~0ull;
  std::uint64_t end = ~0ull;
  [[nodiscard]] bool found() const noexcept { return begin != ~0ull; }
  [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
};

/// Shared WRAM cache of every k-th region-table entry.  A lookup binary
/// searches the cache with WRAM-speed instructions, leaving only ~log2(k)
/// MRAM probes inside the narrowed window — the real kernels keep exactly
/// such a sampled index resident to avoid DMA-bound searches.
class RegionCache {
 public:
  static constexpr std::uint64_t kSlots = 2048;  // 16 KB of WRAM

  /// Streams the region table once (block-parallel boot work) and keeps
  /// every stride-th entry.  Owns its storage like the remap table: it
  /// models a statically allocated WRAM structure, budgeted in
  /// max_wram_buffer_edges().  With `enabled` false the cache stays empty
  /// and every lookup degrades to the full-table MRAM binary search — the
  /// pre-cache kernel behavior, kept as an ablation baseline.
  RegionCache(pim::Dpu& dpu, std::uint32_t tasklets,
              std::uint32_t buffer_edges, std::uint64_t reg,
              std::uint64_t num_regions, bool enabled = true);

  /// Region-index window [lo, hi) that must contain `key`, if present.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> window(
      NodeId key, std::uint64_t& instr) const;

 private:
  std::vector<RegionEntry> cache_;
  std::uint64_t stride_ = 1;
  std::uint64_t num_regions_ = 0;
};

/// Region bounds of `key` (end = next region's begin, or n), using the WRAM
/// region cache to keep MRAM probes at ~log2(stride).  Not-found regions
/// return found() == false.
[[nodiscard]] Region find_region(pim::Tasklet& t,
                                 const pim::KernelCostModel& cost,
                                 std::uint64_t reg, std::uint64_t num_regions,
                                 NodeId key, std::uint64_t n,
                                 const RegionCache& cache);

// ---------------------------------------------------------------------------
// Adaptive intersection
// ---------------------------------------------------------------------------

/// True when this intersection should gallop: forced by policy, or (auto)
/// when binary-searching each small-side element into the large side
/// undercuts the linear merge by at least `gallop_margin`x under the block
/// search's cost model.
[[nodiscard]] bool choose_gallop(IntersectPolicy policy,
                                 std::uint32_t gallop_margin,
                                 std::uint64_t small_size,
                                 std::uint64_t large_size) noexcept;

/// Position of the first record in [r.begin, r.end) with .v >= w.  Each
/// probe fetches an 8-edge block, resolving three levels per DMA burst
/// (the fixed setup cost dominates tiny reads); a final linear resolve
/// handles the <= 8 remaining entries.  Probes are counted into `tally`,
/// instructions into `instr`.
[[nodiscard]] std::uint64_t gallop_lower_bound(pim::Tasklet& t,
                                               const pim::KernelCostModel& cost,
                                               std::uint64_t sorted,
                                               const Region& r, NodeId w,
                                               IntersectTally& tally,
                                               std::uint64_t& instr);

/// Intersects regions `a` and `b` of the sorted array at `sorted` by second
/// endpoint, invoking `on_match(index_1, record_1, index_2, record_2)` for
/// every common .v (indices are absolute positions in the sorted array; the
/// two sides may arrive in either order).  Strategy per `policy`:
///
///  * merge — stream both regions through `buf_a`/`buf_b` and linearly
///    co-advance (cost.count_merge_step per pick),
///  * gallop — stream the smaller region through `buf_a` and binary-search
///    each of its elements into the larger one (hub-incident edges pair a
///    tiny region with a huge one, where a merge would walk the hub's full
///    adjacency: small * log(large) beats small + large).
///
/// The match set is identical under every policy, so counts built on top
/// are bit-identical; only the charged work differs.
template <typename OnMatch>
void intersect_regions(pim::Tasklet& t, const pim::KernelCostModel& cost,
                       IntersectPolicy policy, std::uint32_t gallop_margin,
                       std::uint64_t sorted, const Region& a, const Region& b,
                       std::span<Edge> buf_a, std::span<Edge> buf_b,
                       IntersectTally& tally, std::uint64_t& instr,
                       OnMatch&& on_match) {
  const Region& small = a.size() <= b.size() ? a : b;
  const Region& large = a.size() <= b.size() ? b : a;
  // An empty side means no work under either strategy; skip it before the
  // tally so the merge/gallop split counts only intersections that ran.
  if (small.size() == 0) return;

  if (choose_gallop(policy, gallop_margin, small.size(), large.size())) {
    ++tally.gallop_isects;
    EdgeReader stream_s(t, buf_a, sorted, small.begin, small.end);
    Edge es;
    while (stream_s.next(es)) {
      const NodeId w = es.v;
      const std::uint64_t lo =
          gallop_lower_bound(t, cost, sorted, large, w, tally, instr);
      instr += cost.loop_overhead;
      if (lo >= large.end) continue;
      const Edge m = t.mram_read_t<Edge>(sorted + lo * sizeof(Edge));
      ++tally.gallop_probes;
      instr += cost.binary_search_step;
      if (m.v != w) continue;
      on_match(stream_s.last_index(), es, lo, m);
    }
    return;
  }

  ++tally.merge_isects;
  EdgeReader stream_a(t, buf_a, sorted, a.begin, a.end);
  EdgeReader stream_b(t, buf_b, sorted, b.begin, b.end);
  Edge ea;
  Edge eb;
  bool has_a = stream_a.next(ea);
  bool has_b = stream_b.next(eb);
  while (has_a && has_b) {
    instr += cost.count_merge_step;
    ++tally.merge_picks;
    if (ea.v == eb.v) {
      on_match(stream_a.last_index(), ea, stream_b.last_index(), eb);
      has_a = stream_a.next(ea);
      has_b = stream_b.next(eb);
    } else if (ea.v < eb.v) {
      has_a = stream_a.next(ea);
    } else {
      has_b = stream_b.next(eb);
    }
  }
}

}  // namespace pimtc::tc
