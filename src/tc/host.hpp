// Host-side orchestration of the PIM triangle counter — the public entry
// point of the library.
//
// Pipeline per batch of COO edges (paper Sections 3.1-3.3):
//   1. host threads stream their chunk of the batch: uniform sampling
//      (discard with prob. 1-p), Misra-Gries degree summaries, and
//      per-PIM-core batch building via the coloring partitioner,
//   2. batches are transferred to the PIM cores (rank-parallel push),
//   3. each core inserts the received edges into its bounded MRAM sample via
//      reservoir sampling.
//
// `recount()` then runs the counting kernel on every core, gathers the
// per-core counts and applies the statistical corrections (reservoir factor,
// monochromatic-triangle overcount, uniform-sampling factor).
//
// The class is stateful to support the dynamic-graph use case (Figure 7):
// add_edges() may be called repeatedly, and recount() reuses the resident
// samples — only new edges are transferred.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "common/thread_pool.hpp"
#include "coloring/partitioner.hpp"
#include "coloring/triplets.hpp"
#include "graph/coo.hpp"
#include "pim/system.hpp"
#include "sketch/misra_gries.hpp"
#include "sketch/reservoir.hpp"
#include "tc/config.hpp"
#include "tc/result.hpp"

namespace pimtc::tc {

class PimTriangleCounter {
 public:
  explicit PimTriangleCounter(const TcConfig& config,
                              const pim::PimSystemConfig& pim_config = {});

  /// One-shot static counting: stream the whole graph, then count.
  TcResult count(const graph::EdgeList& graph);

  /// Streams one batch of edges into the PIM cores (dynamic updates).
  /// Self loops are dropped; edges are expected deduplicated (see
  /// graph::preprocess).
  void add_edges(std::span<const Edge> batch);

  /// Runs the counting kernel over the resident samples and returns the
  /// corrected estimate.  Idempotent: recounting without new edges returns
  /// the same result.
  TcResult recount();

  // ---- introspection -------------------------------------------------------
  [[nodiscard]] pim::PimSystem& system() noexcept { return *system_; }
  [[nodiscard]] const pim::PimSystem& system() const noexcept {
    return *system_;
  }
  [[nodiscard]] const color::TripletTable& triplets() const noexcept {
    return table_;
  }
  [[nodiscard]] const TcConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t sample_capacity() const noexcept {
    return capacity_;
  }
  [[nodiscard]] const sketch::MisraGries& heavy_hitters() const noexcept {
    return global_mg_;
  }
  /// Edges ever offered to each PIM core (the t_d of the estimator).
  [[nodiscard]] std::vector<std::uint64_t> per_dpu_edges_seen() const;

 private:
  void insert_into_samples(
      const std::vector<std::vector<std::vector<Edge>>>& thread_batches);

  TcConfig config_;
  pim::PimSystemConfig pim_config_;
  std::unique_ptr<ThreadPool> pool_;
  color::TripletTable table_;
  ColorHash hash_;
  std::unique_ptr<pim::PimSystem> system_;
  std::vector<sketch::ReservoirPolicy> reservoirs_;
  sketch::MisraGries global_mg_;
  std::uint64_t capacity_ = 0;

  std::uint64_t edges_streamed_ = 0;
  std::uint64_t edges_kept_ = 0;
  std::uint64_t edges_replicated_ = 0;
  std::uint64_t batch_counter_ = 0;

  /// Dynamic mode: true once every core holds a valid persistent sorted arc
  /// array (set by the first full count with persistence).
  bool sorted_valid_ = false;
  /// Remap table in effect; frozen at the first count in incremental mode.
  std::vector<NodeId> frozen_remap_;
};

}  // namespace pimtc::tc
