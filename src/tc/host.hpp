// Host-side orchestration of the PIM triangle counter — the public entry
// point of the library.
//
// Pipeline per batch of COO edges (paper Sections 3.1-3.3):
//   1. host threads stream their chunk of the batch: uniform sampling
//      (discard with prob. 1-p), Misra-Gries degree summaries, and
//      per-triplet partitioning into persistent per-thread buffers
//      (reused across batches — no per-batch allocation),
//   2. the host computes the reservoir decisions for every triplet and
//      materializes them into persistent per-triplet staging images
//      (sketch::ReservoirStaging): appends coalesce to one contiguous run,
//      replacements fold to their final value,
//   3. each image is flushed with ONE bulk rank-parallel scatter per batch
//      (or per staging-capacity round), padded per rank to the slowest DPU
//      as real dpu_push_xfer transfers are; the DPU-side receive applies
//      the image with bulk DMA instead of per-edge writes.
//
// Which physical DPU a triplet's image lands on is the PartitionPlan's
// decision (coloring/partition_plan.hpp): every estimator-visible quantity
// (reservoirs, seeds, corrections) is keyed by *triplet* index, so the
// estimate is bit-identical under any placement — placement only moves the
// modeled transfer padding and launch skew.  rebalance() re-plans from the
// observed per-triplet loads and migrates resident samples between banks
// with one modeled gather + scatter; with `rebalance_enabled` recount()
// does this automatically whenever the projected scatter wire bytes shrink
// by at least `rebalance_min_gain`.
//
// With pipelined ingestion enabled the modeled transfer + receive time of a
// flush is not charged immediately: it is held "in flight" and overlapped
// with the measured host time of the next partitioning/staging phase (the
// double-buffer shape of the paper's 32-thread host loop).  recount() is a
// sync point — the kernel depends on the resident sample, so any in-flight
// remainder is charged there in full.  This is timing-only: estimates are
// bit-identical with pipelining on or off.
//
// `recount()` then runs the counting kernel on every core, gathers the
// per-core counts and applies the statistical corrections (reservoir factor,
// monochromatic-triangle overcount, uniform-sampling factor).
//
// The class is stateful to support the dynamic-graph use case (Figure 7):
// add_edges() may be called repeatedly, and recount() reuses the resident
// samples — only new edges are transferred.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "common/thread_pool.hpp"
#include "coloring/partition_plan.hpp"
#include "coloring/partitioner.hpp"
#include "coloring/triplets.hpp"
#include "graph/coo.hpp"
#include "pim/system.hpp"
#include "sketch/misra_gries.hpp"
#include "sketch/reservoir.hpp"
#include "tc/config.hpp"
#include "tc/result.hpp"

namespace pimtc::tc {

class PimTriangleCounter {
 public:
  explicit PimTriangleCounter(const TcConfig& config,
                              const pim::PimSystemConfig& pim_config = {});

  /// One-shot static counting: stream the whole graph, then count.
  TcResult count(const graph::EdgeList& graph);

  /// Streams one batch of edges into the PIM cores (dynamic updates).
  /// Self loops are dropped; edges are expected deduplicated (see
  /// graph::preprocess).
  void add_edges(std::span<const Edge> batch);

  /// Streams one batch of a fully-dynamic (±) update stream.  Insertions
  /// behave exactly like add_edges (an all-insert batch takes that code
  /// path verbatim, so insert-only estimates are bit-identical); deletions
  /// run random pairing on each touched triplet's reservoir: a deletion
  /// that hits the resident sample evicts it (swap-filled from the top and
  /// staged as ordinary slot writes on the same rank-parallel scatter
  /// path), one that misses only adjusts the pairing counters, and either
  /// way later insertions compensate.  Deleting an edge that was never
  /// inserted is indistinguishable from one the reservoir discarded; the
  /// caller owns that contract (the exact cpu-incremental engine is the
  /// oracle for it).  Throws std::invalid_argument when the batch contains
  /// deletions and uniform_p < 1 — the keep coin of the original insertion
  /// is not reconstructible, so DOULION cannot compose with deletions.
  void apply(std::span<const EdgeUpdate> batch);

  /// Convenience wrapper: apply() with every update a deletion.
  void remove_edges(std::span<const Edge> batch);

  /// Runs the counting kernel over the resident samples and returns the
  /// corrected estimate.  Idempotent: recounting without new edges returns
  /// the same result.
  TcResult recount();

  /// Re-plans placement from the observed per-triplet loads (LPT: heaviest
  /// first, chunked into ranks) and migrates resident samples to their new
  /// banks via one modeled gather + scatter.  Returns false when the plan
  /// is already in that order.  Migration invalidates the persistent sorted
  /// arcs (the next recount is a full pass); the estimate is unchanged.
  bool rebalance();

  /// Installs an explicit triplet->DPU placement (validated bijection) and
  /// migrates resident samples accordingly.  rebalance() is this applied to
  /// the LPT plan; tests use it to assert placement invariance under
  /// arbitrary permutations.
  bool migrate_to(std::span<const std::uint32_t> dpu_of_triplet);

  // ---- fault recovery ------------------------------------------------------
  /// Materializes the host-side sample mirrors now (one modeled gather) —
  /// the precondition of restore_bank().  Sessions with deletions or a
  /// rematerialize fault policy already keep them current.
  void ensure_mirrors() { materialize_mirrors(); }

  /// Re-scatters triplet `triplet`'s host-known sample plus a fresh control
  /// block onto its current bank — the primitive dead-bank re-materialization
  /// and bit-flip scrubbing are built on.  The bank's kernel-owned sorted
  /// state is rebuilt on the next recount; the estimate is bit-identical to
  /// an uninterrupted run.  Requires mirrors (ensure_mirrors()).
  void restore_bank(std::uint32_t triplet);

  /// True when the triplet's contribution was lost to an unrecoverable
  /// fault (degraded estimates reweight around it).
  [[nodiscard]] bool triplet_lost(std::uint32_t triplet) const noexcept {
    return triplet_lost_[triplet] != 0;
  }

  /// Zeroes the accumulated phase times and transfer diagnostics.  An
  /// in-flight pipelined flush belongs to the pre-reset window, so it is
  /// settled first and cannot leak into the next measurement window.
  void reset_timers() {
    drain_in_flight(0.0);
    system_->reset_times();
  }

  // ---- introspection -------------------------------------------------------
  [[nodiscard]] pim::PimSystem& system() noexcept { return *system_; }
  [[nodiscard]] const pim::PimSystem& system() const noexcept {
    return *system_;
  }
  [[nodiscard]] const color::PartitionPlan& plan() const noexcept {
    return plan_;
  }
  [[nodiscard]] const color::TripletTable& triplets() const noexcept {
    return plan_.table();
  }
  /// The effective config: auto color selection (num_colors == 0) is
  /// resolved here.
  [[nodiscard]] const TcConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t sample_capacity() const noexcept {
    return capacity_;
  }
  [[nodiscard]] const sketch::MisraGries& heavy_hitters() const noexcept {
    return global_mg_;
  }
  /// Edges ever offered to each PIM core, indexed by *triplet* (the t_d of
  /// the estimator; map through plan().dpu_of() for the physical core).
  [[nodiscard]] std::vector<std::uint64_t> per_dpu_edges_seen() const;
  /// Host threads in the partitioning/staging pool.
  [[nodiscard]] std::uint32_t host_threads() const noexcept {
    return static_cast<std::uint32_t>(pool().size());
  }
  /// Sample migrations performed so far (rebalance / migrate_to).
  [[nodiscard]] std::uint32_t rebalances() const noexcept {
    return rebalances_;
  }

 private:
  /// Computes reservoir decisions for the partitioned batch, flushes the
  /// staging images via bulk scatter(s) and charges / pipelines the modeled
  /// device time.  `host_window_s` is measured host time preceding the
  /// first flush (the overlap window for any in-flight device work).
  void insert_into_samples(double host_window_s);

  /// The fully-dynamic analogue: replays each triplet's ± update list in
  /// stream order against its reservoir policy and sample mirror, then
  /// flushes the touched slots (final values, runs of consecutive slots)
  /// in rank-parallel scatters — staging_capacity_edges bounds the
  /// records per round exactly as it bounds the insert path's images.
  /// Marks triplets whose resident sample lost an edge as dirty: their
  /// persistent sorted arcs are stale.
  void apply_updates_to_samples(double host_window_s);

  /// Builds the per-triplet sample mirrors from the resident bank contents
  /// via one rank-parallel gather (charged to the ingest phase).  Insert-
  /// only sessions never pay for mirror maintenance; the first deletion
  /// materializes the occupancy map once, and both ingest paths keep it
  /// current afterwards.
  void materialize_mirrors();

  /// Settles one flush round's modeled device time: rank-parallel scatter
  /// of flush_bytes_ plus the DPU receive cycles accumulated since
  /// cycles_before_, pipelined (held in flight) or charged per config.
  /// `host_window_s` is the host work that overlaps the previous round's
  /// in-flight device time.
  void settle_flush_round(double host_window_s);

  /// Charges in-flight device time from the previous flush, hiding up to
  /// `host_overlap_s` of it under host work (pipelined ingest).
  void drain_in_flight(double host_overlap_s);

  /// set_placement + sample migration; returns false when nothing changed.
  bool apply_placement(std::span<const std::uint32_t> dpu_of_triplet);

  // ---- fault recovery internals -------------------------------------------
  /// recount()'s launch loop under an armed fault plan: launch the assigned
  /// live banks, retry transients with capped exponential backoff (modeled
  /// time charged to the count phase), and route dead banks through
  /// recover_unusable_bank() until every surviving bank has run.
  void run_launch_with_recovery(const std::function<void(pim::Dpu&)>& kernel,
                                std::vector<std::uint8_t>& full_pass);

  /// Recovery decision for triplet `t` whose bank is unusable: under the
  /// rematerialize policy (with mirrors) patch the placement onto the first
  /// healthy spare bank, restore the sample there and return the new bank;
  /// otherwise mark the triplet lost and return kNoTriplet.
  std::uint32_t recover_unusable_bank(std::uint32_t t);

  /// Pushes triplet `t`'s mirrored sample + a fresh control block (and the
  /// frozen remap table) onto `bank`; returns the modeled seconds charged.
  double materialize_bank(std::uint32_t t, std::uint32_t bank);

  /// Draws this recount's MRAM bit flips, applies them to the resident
  /// samples, and — when checksums are on — charges the scrub scan and
  /// restores flipped samples from the mirrors (or drops the triplet when
  /// no mirror exists).  Without checksums the corruption rides silently
  /// into the kernel.
  void inject_and_scrub_bitflips();

  [[nodiscard]] bool any_reservoir_overflowed() const noexcept;

  /// The partitioning/staging pool: dedicated when config.host_threads is
  /// pinned, the shared process-global pool otherwise — so N concurrent
  /// counters (the serving layer's sessions) do not stack N hardware-wide
  /// pools onto one machine.
  [[nodiscard]] ThreadPool& pool() const noexcept {
    return pool_ ? *pool_ : ThreadPool::global();
  }

  TcConfig config_;
  pim::PimSystemConfig pim_config_;
  std::unique_ptr<ThreadPool> pool_;
  color::PartitionPlan plan_;
  ColorHash hash_;
  std::unique_ptr<pim::PimSystem> system_;
  /// Reservoir state per *triplet*; the plan maps triplets to banks.
  std::vector<sketch::ReservoirPolicy> reservoirs_;
  /// Host-side mirror of each triplet's resident sample (slot <-> edge).
  /// Lazily materialized by the first deletion (materialize_mirrors);
  /// afterwards maintained from the host's own staged decisions, so
  /// deletions resolve membership and eviction slots with no device reads.
  std::vector<sketch::SampleMirror<Edge>> mirrors_;
  bool mirrors_valid_ = false;
  sketch::MisraGries global_mg_;
  std::uint64_t capacity_ = 0;

  // ---- persistent ingestion state (reused across batches) -----------------
  /// Per-thread, per-triplet partition buffers filled by the streaming phase.
  std::vector<std::vector<std::vector<Edge>>> partition_;
  /// Same shape for ± update batches (the fully-dynamic path).
  std::vector<std::vector<std::vector<EdgeUpdate>>> update_partition_;
  /// Per-triplet scratch: slots touched by the current update batch.
  std::vector<std::vector<std::uint64_t>> touched_slots_;
  /// Per-triplet "resident sample lost an edge since the last count" flag;
  /// a dirty triplet's persistent sorted arcs are invalid, so the next
  /// recount runs the full kernel on that core only (the others keep the
  /// incremental path).
  std::vector<std::uint8_t> triplet_dirty_;
  /// Per-triplet staging images (reservoir decisions materialized host-side).
  std::vector<sketch::ReservoirStaging<Edge>> staging_;
  /// Per-triplet drain cursor into partition_ ((thread, offset) per round).
  std::vector<std::pair<std::size_t, std::size_t>> cursors_;
  /// Per-triplet batch totals (greedy placement input; reused).
  std::vector<std::uint64_t> batch_totals_;
  /// Per-DPU staged payload bytes of the current round's scatter.
  std::vector<std::uint64_t> flush_bytes_;
  /// Per-DPU cycle snapshot / per-triplet offered-edge tally (reused).
  std::vector<double> cycles_before_;
  std::vector<std::uint64_t> received_;
  /// Modeled scatter+receive seconds of the last flush, not yet charged
  /// (pipelined ingest keeps it in flight until host work overlaps it).
  double in_flight_device_s_ = 0.0;

  std::uint64_t edges_streamed_ = 0;
  std::uint64_t edges_kept_ = 0;
  std::uint64_t edges_replicated_ = 0;
  std::uint64_t edges_deleted_ = 0;  ///< delete updates applied (stream space)
  std::uint64_t batch_counter_ = 0;
  std::uint32_t rebalances_ = 0;
  /// greedy_balance: placement is re-planned once, from the first non-empty
  /// batch's observed loads (free: nothing is resident yet), then frozen
  /// until an explicit/automatic rebalance.
  bool placement_observed_ = false;

  /// Dynamic mode: true once every core holds a valid persistent sorted arc
  /// array (set by the first full count with persistence).
  bool sorted_valid_ = false;
  /// Remap table in effect; frozen at the first count in incremental mode.
  std::vector<NodeId> frozen_remap_;

  // ---- fault injection state ----------------------------------------------
  /// Armed fault plan (shared with the PimSystem); null = injection off and
  /// every path above behaves byte-identically to a build without faults.
  std::shared_ptr<const pim::FaultPlan> fault_plan_;
  /// Per-triplet "contribution lost to an unrecoverable fault" flags.
  /// Persistent: a lost triplet stays lost for the rest of the session.
  std::vector<std::uint8_t> triplet_lost_;
  /// Recount index feeding the deterministic bit-flip draws.
  std::uint64_t fault_epoch_ = 0;
  /// Host-side recovery tallies accumulated across recounts (launch
  /// retries, rematerializations, scrubs); the PimSystem keeps the
  /// transfer/launch-level counters.
  pim::FaultStats fault_tally_;
};

}  // namespace pimtc::tc
