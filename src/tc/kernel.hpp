// The triangle-counting DPU kernels (paper Sections 3.4, 3.5 and the
// dynamic-graph mode of Section 4.6).
//
// Both kernels run functionally on one simulated DPU while charging the
// UPMEM cost model.  Inputs/outputs travel through the DpuMeta block
// (layout.hpp); the raw sample is never modified.
//
// Full kernel (static counting, also the first pass of dynamic mode):
//   1. remap+copy — copy the sample into scratch A, translating the
//      high-degree node ids (Misra-Gries remap, degree-ordered) to ids
//      above every real id,
//   2. sort       — WRAM chunk sort + MRAM ping-pong merge passes,
//   3. persist    — optionally copy the sorted data into S* (dynamic mode),
//   4. index      — build the per-first-node region index,
//   5. count      — edge iterator over strided chunks: for every edge
//      (u,v), look up both regions through the WRAM RegionCache and run the
//      adaptive intersection (tc/intersect.hpp) of the remainder of u's
//      region with v's — linear merge or block-galloping binary search per
//      the configured IntersectPolicy.
//
// Incremental kernel (dynamic updates; requires a valid S*):
//   1. remap+copy+sort the new batch (sample[sorted_size..sample_size)),
//   2. merge S* with the sorted batch in one streaming pass, marking batch
//      entries in the new-flags array,
//   3. rebuild the region index,
//   4. for every new edge e, merge the *full* regions of its endpoints and
//      count a matching triangle iff each of the other two edges is either
//      old or a new edge lexicographically smaller than e — every new
//      triangle is counted exactly once, at its largest new edge,
//   5. clear the flags; add the delta to the cumulative count.
#pragma once

#include "pim/config.hpp"
#include "pim/dpu.hpp"
#include "tc/intersect.hpp"
#include "tc/layout.hpp"

namespace pimtc::tc {

struct KernelParams {
  std::uint32_t tasklets = 16;
  std::uint32_t buffer_edges = 64;  ///< WRAM staging granularity per stream
  /// Intersection strategy of the counting phases; counts are bit-identical
  /// under every policy (tc/intersect.hpp).
  IntersectPolicy intersect = IntersectPolicy::kAuto;
  /// Auto-policy crossover margin: gallop when its modeled cost times this
  /// factor undercuts the linear merge.  Must be >= 1.
  std::uint32_t gallop_margin = 3;
  /// WRAM RegionCache for region lookups; false degrades every lookup to
  /// the full-table MRAM binary search (ablation baseline — the pre-cache
  /// kernel behavior).
  bool region_cache = true;
  pim::KernelCostModel cost{};
};

/// Largest `wram_buffer_edges` for which the worst-case simultaneous WRAM
/// allocation (five stream buffers per tasklet plus the static remap hash
/// table and sampled region cache) fits the scratchpad — the bound a real
/// kernel is sized against at build time.  Configs above it are rejected at
/// validation instead of silently clamped.
[[nodiscard]] std::uint32_t max_wram_buffer_edges(
    const pim::PimSystemConfig& config, std::uint32_t tasklets) noexcept;

/// Executes the full kernel.  Reads DpuMeta at offset 0 and writes back
/// `triangle_count` (total over the whole sample) plus `num_regions`; when
/// DpuMeta::kFlagPersistSorted is set, also persists S* and `sorted_size`.
void run_count_kernel(pim::Dpu& dpu, const KernelParams& params);

/// Executes the incremental kernel over the new edges
/// sample[sorted_size..sample_size).  Requires kFlagSortedValid (i.e. a
/// prior full run with persistence); adds the new-triangle delta to
/// `triangle_count` and advances `sorted_size`.
void run_incremental_kernel(pim::Dpu& dpu, const KernelParams& params);

}  // namespace pimtc::tc
