// The triangle-counting DPU kernels (paper Sections 3.4, 3.5 and the
// dynamic-graph mode of Section 4.6).
//
// Both kernels run functionally on one simulated DPU while charging the
// UPMEM cost model.  Inputs/outputs travel through the DpuMeta block
// (layout.hpp); the raw sample is never modified.
//
// Full kernel (static counting, also the first pass of dynamic mode):
//   1. remap+copy — copy the sample into scratch A, translating the top-t
//      high-degree node ids (Misra-Gries remap) to ids above every real id,
//   2. sort       — WRAM chunk sort + MRAM ping-pong merge passes,
//   3. persist    — optionally copy the sorted data into S* (dynamic mode),
//   4. index      — build the per-first-node region index,
//   5. count      — edge-iterator merge: for every edge (u,v), binary-search
//      the region of v and merge the remainder of u's region with v's.
//
// Incremental kernel (dynamic updates; requires a valid S*):
//   1. remap+copy+sort the new batch (sample[sorted_size..sample_size)),
//   2. merge S* with the sorted batch in one streaming pass, marking batch
//      entries in the new-flags array,
//   3. rebuild the region index,
//   4. for every new edge e, merge the *full* regions of its endpoints and
//      count a matching triangle iff each of the other two edges is either
//      old or a new edge lexicographically smaller than e — every new
//      triangle is counted exactly once, at its largest new edge,
//   5. clear the flags; add the delta to the cumulative count.
#pragma once

#include "pim/config.hpp"
#include "pim/dpu.hpp"
#include "tc/layout.hpp"

namespace pimtc::tc {

struct KernelParams {
  std::uint32_t tasklets = 16;
  std::uint32_t buffer_edges = 64;  ///< WRAM staging granularity per stream
  pim::KernelCostModel cost{};
};

/// Largest `wram_buffer_edges` for which the worst-case simultaneous WRAM
/// allocation (five stream buffers per tasklet plus the static remap hash
/// table and sampled region cache) fits the scratchpad — the bound a real
/// kernel is sized against at build time.  Configs above it are rejected at
/// validation instead of silently clamped.
[[nodiscard]] std::uint32_t max_wram_buffer_edges(
    const pim::PimSystemConfig& config, std::uint32_t tasklets) noexcept;

/// Executes the full kernel.  Reads DpuMeta at offset 0 and writes back
/// `triangle_count` (total over the whole sample) plus `num_regions`; when
/// DpuMeta::kFlagPersistSorted is set, also persists S* and `sorted_size`.
void run_count_kernel(pim::Dpu& dpu, const KernelParams& params);

/// Executes the incremental kernel over the new edges
/// sample[sorted_size..sample_size).  Requires kFlagSortedValid (i.e. a
/// prior full run with persistence); adds the new-triangle delta to
/// `triangle_count` and advances `sorted_size`.
void run_incremental_kernel(pim::Dpu& dpu, const KernelParams& params);

}  // namespace pimtc::tc
