#include "tc/kernel.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/math_util.hpp"

namespace pimtc::tc {
namespace {

using pim::Dpu;
using pim::Tasklet;

/// ceil(log2(n)) for n >= 1.
std::uint32_t ceil_log2(std::uint64_t n) {
  return n <= 1 ? 0 : static_cast<std::uint32_t>(64 - std::countl_zero(n - 1));
}

// ---------------------------------------------------------------------------
// WRAM-buffered MRAM streams
// ---------------------------------------------------------------------------

/// Buffered sequential MRAM reader for trivially copyable records: models a
/// tasklet streaming a region of the bank through a WRAM buffer.  DMA is
/// charged per refill.
template <typename T>
class StreamReader {
 public:
  StreamReader(Tasklet& t, std::span<T> buf, std::uint64_t base,
               std::uint64_t begin_idx, std::uint64_t end_idx)
      : t_(&t),
        buf_(buf),
        base_(base),
        next_fetch_(begin_idx),
        buf_base_(begin_idx),
        end_(end_idx) {}

  bool next(T& out) {
    if (cursor_ >= filled_) {
      if (next_fetch_ >= end_) return false;
      refill();
    }
    out = buf_[cursor_++];
    return true;
  }

  /// Absolute index (within the MRAM array) of the record most recently
  /// returned by next().
  [[nodiscard]] std::uint64_t last_index() const noexcept {
    return buf_base_ + cursor_ - 1;
  }

 private:
  void refill() {
    const std::uint64_t count =
        std::min<std::uint64_t>(buf_.size(), end_ - next_fetch_);
    t_->mram_read(base_ + next_fetch_ * sizeof(T), buf_.data(),
                  count * sizeof(T));
    buf_base_ = next_fetch_;
    next_fetch_ += count;
    filled_ = static_cast<std::size_t>(count);
    cursor_ = 0;
  }

  Tasklet* t_;
  std::span<T> buf_;
  std::uint64_t base_;
  std::uint64_t next_fetch_;
  std::uint64_t buf_base_;
  std::uint64_t end_;
  std::size_t cursor_ = 0;
  std::size_t filled_ = 0;
};

using EdgeReader = StreamReader<Edge>;

/// Buffered sequential MRAM writer.
template <typename T>
class StreamWriter {
 public:
  StreamWriter(Tasklet& t, std::span<T> buf, std::uint64_t base,
               std::uint64_t begin_idx)
      : t_(&t), buf_(buf), base_(base), pos_(begin_idx) {}

  void put(const T& value) {
    buf_[cursor_++] = value;
    if (cursor_ == buf_.size()) flush();
  }

  void flush() {
    if (cursor_ == 0) return;
    t_->mram_write(base_ + pos_ * sizeof(T), buf_.data(), cursor_ * sizeof(T));
    pos_ += cursor_;
    cursor_ = 0;
  }

 private:
  Tasklet* t_;
  std::span<T> buf_;
  std::uint64_t base_;
  std::uint64_t pos_;
  std::size_t cursor_ = 0;
};

/// Contiguous block [begin, end) of `n` items owned by worker `id` of `num`.
struct Block {
  std::uint64_t begin;
  std::uint64_t end;
};

Block block_of(std::uint64_t n, std::uint32_t id, std::uint32_t num) {
  const std::uint64_t base = n / num;
  const std::uint64_t rem = n % num;
  const std::uint64_t begin = id * base + std::min<std::uint64_t>(id, rem);
  return {begin, begin + base + (id < rem ? 1 : 0)};
}

// ---------------------------------------------------------------------------
// High-degree remap table (WRAM open-addressing hash, Section 3.5)
// ---------------------------------------------------------------------------

/// One slot of the WRAM-resident remap hash table; kInvalidNode = empty.
struct RemapEntry {
  NodeId from;
  NodeId to;
};

class RemapTable {
 public:
  /// Builds the table (tasklet-0 boot work).  The table models a
  /// *statically allocated* WRAM structure that lives for the whole kernel
  /// — unlike the per-phase stream buffers — so it owns its storage here;
  /// its WRAM footprint is budgeted in clamp_buffers().  `num_remap` may be
  /// 0, yielding a no-op table.
  RemapTable(Dpu& dpu, const KernelParams& p, std::uint32_t num_remap) {
    if (num_remap == 0) return;
    slots_ = 16;
    while (slots_ < 4ull * num_remap) slots_ *= 2;
    storage_.assign(slots_, RemapEntry{kInvalidNode, kInvalidNode});
    table_ = storage_;

    dpu.parallel(1, [&](Tasklet& t) {
      std::vector<NodeId> by_rank(num_remap);
      t.mram_read(MramLayout::kRemapOffset, by_rank.data(),
                  by_rank.size() * sizeof(NodeId));
      for (std::uint32_t r = 0; r < num_remap; ++r) {
        std::uint64_t slot = mix64(by_rank[r]) & (slots_ - 1);
        while (table_[slot].from != kInvalidNode) {
          slot = (slot + 1) & (slots_ - 1);
        }
        table_[slot] = RemapEntry{by_rank[r], remapped_id(r)};
      }
      t.instr((num_remap + slots_) * p.cost.remap_lookup);
    });
  }

  [[nodiscard]] bool empty() const noexcept { return slots_ == 0; }

  /// Maps `node`, accumulating probe count into `probes` (the caller
  /// charges remap_lookup instructions per probe).
  [[nodiscard]] NodeId lookup(NodeId node, std::uint64_t& probes) const {
    if (slots_ == 0) return node;
    std::uint64_t slot = mix64(node) & (slots_ - 1);
    for (;;) {
      ++probes;
      const RemapEntry e = table_[slot];
      if (e.from == node) return e.to;
      if (e.from == kInvalidNode) return node;
      slot = (slot + 1) & (slots_ - 1);
    }
  }

 private:
  std::vector<RemapEntry> storage_;
  std::span<RemapEntry> table_{};
  std::uint64_t slots_ = 0;
};

// ---------------------------------------------------------------------------
// Reusable phases
// ---------------------------------------------------------------------------

/// Copies edges [src_begin, src_end) of the raw sample into `dst` (0-based),
/// applying the remap.  Canonical mode emits one u<v record per edge; arc
/// mode emits both orientations (2 records per edge, for the S* pipeline).
void copy_remap(Dpu& dpu, const KernelParams& p, const RemapTable& remap,
                std::uint64_t src, std::uint64_t src_begin,
                std::uint64_t src_end, std::uint64_t dst, bool arcs) {
  const std::uint64_t n = src_end - src_begin;
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const Block blk = block_of(n, t.id(), p.tasklets);
    if (blk.begin >= blk.end) return;
    auto rbuf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto wbuf = dpu.wram().alloc<Edge>(p.buffer_edges);
    EdgeReader reader(t, rbuf, src, src_begin + blk.begin,
                      src_begin + blk.end);
    StreamWriter<Edge> writer(t, wbuf, dst,
                              arcs ? 2 * blk.begin : blk.begin);

    std::uint64_t instr = 0;
    std::uint64_t probes = 0;
    Edge e;
    while (reader.next(e)) {
      if (!remap.empty()) {
        e.u = remap.lookup(e.u, probes);
        e.v = remap.lookup(e.v, probes);
      }
      const Edge c = e.canonical();
      writer.put(c);
      if (arcs) writer.put(c.reversed());
      instr += p.cost.edge_copy + p.cost.loop_overhead;
    }
    writer.flush();
    t.instr(instr + probes * p.cost.remap_lookup);
  });
}

/// External merge sort of n edges at `off_a`, ping-pong with `off_b`.
/// Returns the offset holding the sorted result.  Resets WRAM.
///
/// Chunk size adapts downward for small inputs so every tasklet has work
/// (an idle pipeline issues one instruction per 11 cycles per tasklet), and
/// merge passes with fewer runs than tasklets are co-partitioned with
/// merge-path splitting so the last passes stay parallel.
std::uint64_t external_sort(Dpu& dpu, const KernelParams& p,
                            std::uint64_t off_a, std::uint64_t off_b,
                            std::uint64_t n) {
  if (n <= 1) return off_a;

  // Stage 1: sort WRAM-resident chunks in place.  Every tasklet holds a
  // chunk buffer simultaneously, so chunk size is bounded by WRAM/tasklets
  // (half the arena, leaving room for stack/locals like a real kernel).
  dpu.wram().reset();
  const std::uint64_t max_chunk = std::max<std::uint64_t>(
      16, dpu.wram().capacity() / (2ull * p.tasklets * sizeof(Edge)));
  const std::uint64_t chunk =
      std::max<std::uint64_t>(8, std::min(max_chunk,
                                          ceil_div(n, p.tasklets)));
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    auto buf = dpu.wram().alloc<Edge>(chunk);
    for (std::uint64_t begin = t.id() * chunk; begin < n;
         begin += static_cast<std::uint64_t>(p.tasklets) * chunk) {
      const std::uint64_t len = std::min(chunk, n - begin);
      t.mram_read(off_a + begin * sizeof(Edge), buf.data(), len * sizeof(Edge));
      std::sort(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(len));
      t.instr(len * (ceil_log2(len) + 1) * p.cost.sort_step);
      t.mram_write(off_a + begin * sizeof(Edge), buf.data(),
                   len * sizeof(Edge));
    }
  });

  // Stage 2: ping-pong merge passes until a single run remains.
  std::uint64_t src = off_a;
  std::uint64_t dst = off_b;
  for (std::uint64_t width = chunk; width < n; width *= 2) {
    dpu.wram().reset();
    const std::uint64_t pairs = ceil_div(n, width * 2);
    const std::uint32_t ways = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, p.tasklets / pairs));
    dpu.parallel(p.tasklets, [&](Tasklet& t) {
      const std::uint64_t pair = t.id() / ways;
      const std::uint32_t way = t.id() % ways;

      auto buf_l = dpu.wram().alloc<Edge>(p.buffer_edges);
      auto buf_r = dpu.wram().alloc<Edge>(p.buffer_edges);
      auto buf_o = dpu.wram().alloc<Edge>(p.buffer_edges);

      // lower_bound of `key` within src[b, e): first element >= key.
      const auto lb = [&](std::uint64_t b, std::uint64_t e_idx,
                          const Edge& key) {
        std::uint64_t probes = 0;
        while (b < e_idx) {
          const std::uint64_t mid = b + (e_idx - b) / 2;
          const Edge m = t.mram_read_t<Edge>(src + mid * sizeof(Edge));
          if (m < key) {
            b = mid + 1;
          } else {
            e_idx = mid;
          }
          ++probes;
        }
        t.instr(probes * p.cost.binary_search_step);
        return b;
      };

      const auto merge_range = [&](std::uint64_t l0, std::uint64_t l1,
                                   std::uint64_t r0, std::uint64_t r1,
                                   std::uint64_t out_pos) {
        EdgeReader left(t, buf_l, src, l0, l1);
        EdgeReader right(t, buf_r, src, r0, r1);
        StreamWriter<Edge> out(t, buf_o, dst, out_pos);
        Edge l;
        Edge r;
        bool has_l = left.next(l);
        bool has_r = right.next(r);
        std::uint64_t instr = 0;
        while (has_l || has_r) {
          if (has_l && (!has_r || l <= r)) {
            out.put(l);
            has_l = left.next(l);
          } else {
            out.put(r);
            has_r = right.next(r);
          }
          instr += p.cost.merge_pick;
        }
        out.flush();
        t.instr(instr);
      };

      if (ways == 1) {
        // More runs than tasklets: round-robin whole pairs.
        for (std::uint64_t pr = t.id(); pr < pairs; pr += p.tasklets) {
          const std::uint64_t lo = pr * width * 2;
          const std::uint64_t mid = std::min(lo + width, n);
          const std::uint64_t hi = std::min(lo + width * 2, n);
          merge_range(lo, mid, mid, hi, lo);
        }
        return;
      }

      // Few runs: `ways` tasklets co-partition one pair via merge-path
      // splits (distinct keys: edges are unique).
      if (pair >= pairs) return;
      const std::uint64_t lo = pair * width * 2;
      const std::uint64_t mid = std::min(lo + width, n);
      const std::uint64_t hi = std::min(lo + width * 2, n);
      const std::uint64_t nl = mid - lo;

      const auto left_split = [&](std::uint32_t w) {
        return lo + w * nl / ways;
      };
      // Right-run split consistent across ways: right elements smaller than
      // the left block's first key go to earlier ways.  Edges are unique,
      // so ties cannot occur.
      const auto right_split = [&](std::uint64_t lx) {
        if (lx <= lo) return mid;   // first boundary
        if (lx >= mid) return hi;   // left run exhausted: tail goes here
        return lb(mid, hi, t.mram_read_t<Edge>(src + lx * sizeof(Edge)));
      };
      const std::uint64_t l0 = left_split(way);
      const std::uint64_t l1 = left_split(way + 1);
      const std::uint64_t r0 = way == 0 ? mid : right_split(l0);
      const std::uint64_t r1 = way + 1 == ways ? hi : right_split(l1);
      merge_range(l0, l1, r0, r1, lo + (l0 - lo) + (r0 - mid));
    });
    std::swap(src, dst);
  }
  return src;
}

/// Parallel bulk copy of n edges from `src` to `dst`.
void copy_edges(Dpu& dpu, const KernelParams& p, std::uint64_t src,
                std::uint64_t dst, std::uint64_t n) {
  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const Block blk = block_of(n, t.id(), p.tasklets);
    if (blk.begin >= blk.end) return;
    auto buf = dpu.wram().alloc<Edge>(p.buffer_edges * 2);
    for (std::uint64_t pos = blk.begin; pos < blk.end; pos += buf.size()) {
      const std::uint64_t len =
          std::min<std::uint64_t>(buf.size(), blk.end - pos);
      t.mram_read(src + pos * sizeof(Edge), buf.data(), len * sizeof(Edge));
      t.mram_write(dst + pos * sizeof(Edge), buf.data(), len * sizeof(Edge));
      t.instr(p.cost.loop_overhead);
    }
  });
}

/// Builds the region index over `sorted` (n edges) at `reg`.  Two parallel
/// passes: count region starts per block, then write RegionEntry records at
/// exclusive-prefix offsets.  Returns the number of regions.
std::uint64_t build_regions(Dpu& dpu, const KernelParams& p,
                            std::uint64_t sorted, std::uint64_t n,
                            std::uint64_t reg) {
  if (n == 0) return 0;
  std::vector<std::uint64_t> counts(p.tasklets, 0);

  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const Block blk = block_of(n, t.id(), p.tasklets);
    if (blk.begin >= blk.end) return;
    auto buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    NodeId prev = kInvalidNode;
    if (blk.begin > 0) {
      prev = t.mram_read_t<Edge>(sorted + (blk.begin - 1) * sizeof(Edge)).u;
    }
    EdgeReader reader(t, buf, sorted, blk.begin, blk.end);
    Edge e;
    std::uint64_t local = 0;
    std::uint64_t instr = 0;
    while (reader.next(e)) {
      if (e.u != prev) {
        ++local;
        prev = e.u;
      }
      instr += p.cost.region_scan_step;
    }
    counts[t.id()] = local;
    t.instr(instr);
  });

  // Exclusive prefix over per-tasklet counts (tasklet 0 on real hardware).
  std::vector<std::uint64_t> prefix(p.tasklets + 1, 0);
  for (std::uint32_t i = 0; i < p.tasklets; ++i) {
    prefix[i + 1] = prefix[i] + counts[i];
  }
  dpu.serial_instr(p.tasklets * 2ull);

  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const Block blk = block_of(n, t.id(), p.tasklets);
    if (blk.begin >= blk.end) return;
    auto buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto obuf = dpu.wram().alloc<RegionEntry>(p.buffer_edges);
    NodeId prev = kInvalidNode;
    if (blk.begin > 0) {
      prev = t.mram_read_t<Edge>(sorted + (blk.begin - 1) * sizeof(Edge)).u;
    }
    EdgeReader reader(t, buf, sorted, blk.begin, blk.end);
    StreamWriter<RegionEntry> writer(t, obuf, reg, prefix[t.id()]);
    Edge e;
    std::uint64_t instr = 0;
    while (reader.next(e)) {
      if (e.u != prev) {
        writer.put(
            RegionEntry{e.u, static_cast<std::uint32_t>(reader.last_index())});
        prev = e.u;
      }
      instr += p.cost.region_scan_step;
    }
    writer.flush();
    t.instr(instr);
  });

  return prefix[p.tasklets];
}

/// Binary search over the MRAM region table: index of the first region with
/// node >= key.  Each probe is an 8-byte DMA read.
std::uint64_t lower_bound_region(Tasklet& t, const KernelParams& p,
                                 std::uint64_t reg, std::uint64_t num_regions,
                                 NodeId key) {
  std::uint64_t lo = 0;
  std::uint64_t hi = num_regions;
  std::uint64_t instr = 0;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const auto entry =
        t.mram_read_t<RegionEntry>(reg + mid * sizeof(RegionEntry));
    if (entry.node < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
    instr += p.cost.binary_search_step;
  }
  t.instr(instr);
  return lo;
}

/// Returns the start of `key`'s region in the sorted buffer, or ~0 if the
/// node has no region.
std::uint64_t find_region_begin(Tasklet& t, const KernelParams& p,
                                std::uint64_t reg, std::uint64_t num_regions,
                                NodeId key) {
  const std::uint64_t r = lower_bound_region(t, p, reg, num_regions, key);
  if (r >= num_regions) return ~0ull;
  const auto entry = t.mram_read_t<RegionEntry>(reg + r * sizeof(RegionEntry));
  t.instr(p.cost.binary_search_step);
  return entry.node == key ? entry.begin : ~0ull;
}

/// Shared WRAM cache of every k-th region-table entry.  A lookup binary
/// searches the cache with WRAM-speed instructions, leaving only ~log2(k)
/// MRAM probes inside the narrowed window — the real kernels keep exactly
/// such a sampled index resident to avoid DMA-bound searches.
class RegionCache {
 public:
  static constexpr std::uint64_t kSlots = 2048;  // 16 KB of WRAM

  /// Streams the region table once (tasklet-0 boot work) and keeps every
  /// stride-th entry.  Owns its storage like the remap table: it models a
  /// statically allocated WRAM structure, budgeted in clamp_buffers().
  RegionCache(Dpu& dpu, const KernelParams& p, std::uint64_t reg,
              std::uint64_t num_regions)
      : num_regions_(num_regions) {
    if (num_regions == 0) return;
    stride_ = ceil_div(num_regions, kSlots);
    cache_.resize(ceil_div(num_regions, stride_));
    dpu.wram().reset();
    dpu.parallel(p.tasklets, [&](Tasklet& t) {
      // Each tasklet streams a contiguous block of the table through a WRAM
      // buffer and keeps the stride-aligned entries — sequential DMA, not
      // per-entry bursts.
      const Block blk = block_of(num_regions, t.id(), p.tasklets);
      if (blk.begin >= blk.end) return;
      auto buf = dpu.wram().alloc<RegionEntry>(p.buffer_edges * 2);
      StreamReader<RegionEntry> reader(t, buf, reg, blk.begin, blk.end);
      RegionEntry entry;
      std::uint64_t instr = 0;
      while (reader.next(entry)) {
        const std::uint64_t i = reader.last_index();
        if (i % stride_ == 0) cache_[i / stride_] = entry;
        instr += 2;
      }
      t.instr(instr);
    });
  }

  /// Region-index window [lo, hi) that must contain `key`, if present.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> window(
      NodeId key, std::uint64_t& instr) const {
    if (cache_.empty()) return {0, num_regions_};
    // upper_bound over the sampled nodes (WRAM-resident, cheap).
    std::size_t lo = 0;
    std::size_t hi = cache_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cache_[mid].node <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
      instr += 3;
    }
    const std::uint64_t begin = lo == 0 ? 0 : (lo - 1) * stride_;
    const std::uint64_t end =
        std::min<std::uint64_t>(num_regions_, lo * stride_ + 1);
    return {begin, end};
  }

 private:
  std::vector<RegionEntry> cache_;
  std::uint64_t stride_ = 1;
  std::uint64_t num_regions_ = 0;
};

/// A region [begin, end) of the sorted buffer (all records sharing one
/// first endpoint).
struct Region {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  [[nodiscard]] bool found() const noexcept { return begin != ~0ull; }
  [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
};

/// Binary search restricted to a cache-provided window.
std::uint64_t lower_bound_region_window(Tasklet& t, const KernelParams& p,
                                        std::uint64_t reg, NodeId key,
                                        std::uint64_t lo, std::uint64_t hi) {
  std::uint64_t instr = 0;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const auto entry =
        t.mram_read_t<RegionEntry>(reg + mid * sizeof(RegionEntry));
    if (entry.node < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
    instr += p.cost.binary_search_step;
  }
  t.instr(instr);
  return lo;
}

/// Region bounds of `key` (end = next region's begin, or n), using the WRAM
/// region cache to keep MRAM probes at ~log2(stride).
Region find_region(Tasklet& t, const KernelParams& p, std::uint64_t reg,
                   std::uint64_t num_regions, NodeId key, std::uint64_t n,
                   const RegionCache& cache) {
  std::uint64_t instr = 0;
  const auto [w_lo, w_hi] = cache.window(key, instr);
  t.instr(instr);

  // Narrow window (fine-grained cache): fetch the whole window plus the
  // successor entry in one burst and resolve in WRAM.
  if (w_hi - w_lo <= 6) {
    RegionEntry win[8] = {};
    const std::uint64_t fetch =
        std::min<std::uint64_t>(w_hi - w_lo + 1, num_regions - w_lo);
    t.mram_read(reg + w_lo * sizeof(RegionEntry), win,
                fetch * sizeof(RegionEntry));
    t.instr(p.cost.binary_search_step + fetch * 2);
    for (std::uint64_t i = 0; i < fetch; ++i) {
      if (win[i].node == key) {
        const std::uint64_t end =
            (i + 1 < fetch) ? win[i + 1].begin
            : (w_lo + i + 1 < num_regions)
                ? t.mram_read_t<RegionEntry>(reg + (w_lo + i + 1) *
                                                       sizeof(RegionEntry))
                      .begin
                : n;
        return {win[i].begin, end};
      }
    }
    return {~0ull, ~0ull};
  }

  const std::uint64_t r =
      lower_bound_region_window(t, p, reg, key, w_lo, w_hi);
  if (r >= num_regions) return {~0ull, ~0ull};
  // Fetch entries r and r+1 in one 16-byte burst (region end = next begin).
  RegionEntry pair[2] = {};
  const std::size_t fetch = r + 1 < num_regions ? 2 : 1;
  t.mram_read(reg + r * sizeof(RegionEntry), pair,
              fetch * sizeof(RegionEntry));
  t.instr(p.cost.binary_search_step);
  if (pair[0].node != key) return {~0ull, ~0ull};
  return {pair[0].begin, fetch == 2 ? pair[1].begin : n};
}

// ---------------------------------------------------------------------------
// Full counting phase (Section 3.4)
// ---------------------------------------------------------------------------

std::uint64_t count_full(Dpu& dpu, const KernelParams& p, std::uint64_t sorted,
                         std::uint64_t n, std::uint64_t reg,
                         std::uint64_t num_regions) {
  std::vector<std::uint64_t> partial(p.tasklets, 0);

  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const Block blk = block_of(n, t.id(), p.tasklets);
    if (blk.begin >= blk.end) return;
    auto scan_buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto u_buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto v_buf = dpu.wram().alloc<Edge>(p.buffer_edges);

    EdgeReader scan(t, scan_buf, sorted, blk.begin, blk.end);
    Edge e;
    std::uint64_t count = 0;
    std::uint64_t instr = 0;
    while (scan.next(e)) {
      instr += p.cost.loop_overhead;
      if (e.u == e.v) continue;  // defensive: self loops count nothing
      const std::uint64_t v_begin =
          find_region_begin(t, p, reg, num_regions, e.v);
      if (v_begin == ~0ull) continue;

      // Merge: edges after (u,v) in u's region  x  v's region.  Streams
      // self-terminate when the first endpoint changes.
      EdgeReader stream_u(t, u_buf, sorted, scan.last_index() + 1, n);
      EdgeReader stream_v(t, v_buf, sorted, v_begin, n);
      Edge eu;
      Edge ev;
      bool has_u = stream_u.next(eu) && eu.u == e.u;
      bool has_v = stream_v.next(ev) && ev.u == e.v;
      while (has_u && has_v) {
        instr += p.cost.count_merge_step;
        if (eu.v == ev.v) {
          ++count;
          has_u = stream_u.next(eu) && eu.u == e.u;
          has_v = stream_v.next(ev) && ev.u == e.v;
        } else if (eu.v < ev.v) {
          has_u = stream_u.next(eu) && eu.u == e.u;
        } else {
          has_v = stream_v.next(ev) && ev.u == e.v;
        }
      }
    }
    partial[t.id()] = count;
    t.instr(instr);
  });

  std::uint64_t total = 0;
  for (const std::uint64_t c : partial) total += c;
  dpu.serial_instr(p.tasklets * 2ull);
  return total;
}

// ---------------------------------------------------------------------------
// Incremental machinery (dynamic updates)
// ---------------------------------------------------------------------------

/// Merges S*[0..n_old) with the sorted batch at `batch` [0..n_b) into
/// `dst_edges`, writing a 1-byte "new" flag per output record to
/// `dst_flags`.  Tasklets merge co-partitioned subranges (merge-path
/// splitting on equal S* blocks).
void merge_with_flags(Dpu& dpu, const KernelParams& p, std::uint64_t sorted,
                      std::uint64_t n_old, std::uint64_t batch,
                      std::uint64_t n_b, std::uint64_t dst_edges,
                      std::uint64_t dst_flags) {
  const std::uint32_t ways = p.tasklets;
  std::vector<std::uint64_t> old_split(ways + 1, 0);
  std::vector<std::uint64_t> batch_split(ways + 1, 0);
  old_split[ways] = n_old;
  batch_split[ways] = n_b;

  // Split planning: equal blocks of S*; matching batch positions found by
  // binary search (tasklet-0 work on real hardware).
  dpu.wram().reset();
  dpu.parallel(1, [&](Tasklet& t) {
    std::uint64_t instr = 0;
    for (std::uint32_t w = 1; w < ways; ++w) {
      const std::uint64_t pos = w * n_old / ways;
      old_split[w] = pos;
      if (pos == 0 || n_b == 0) {
        batch_split[w] = 0;
        continue;
      }
      const Edge pivot = t.mram_read_t<Edge>(sorted + (pos - 1) * sizeof(Edge));
      std::uint64_t lo = 0;
      std::uint64_t hi = n_b;
      while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        const Edge e = t.mram_read_t<Edge>(batch + mid * sizeof(Edge));
        if (e < pivot) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
        instr += p.cost.binary_search_step;
      }
      batch_split[w] = lo;
    }
    t.instr(instr);
  });
  // Monotonicity guard (ties in the batch search).
  for (std::uint32_t w = 1; w <= ways; ++w) {
    batch_split[w] = std::max(batch_split[w], batch_split[w - 1]);
  }

  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const std::uint32_t w = t.id();
    const std::uint64_t o_lo = old_split[w];
    const std::uint64_t o_hi = old_split[w + 1];
    const std::uint64_t b_lo = batch_split[w];
    const std::uint64_t b_hi = batch_split[w + 1];
    if (o_lo >= o_hi && b_lo >= b_hi) return;

    auto buf_o = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto buf_b = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto buf_e = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto buf_f = dpu.wram().alloc<std::uint8_t>(p.buffer_edges);

    EdgeReader old_r(t, buf_o, sorted, o_lo, o_hi);
    EdgeReader new_r(t, buf_b, batch, b_lo, b_hi);
    StreamWriter<Edge> out_e(t, buf_e, dst_edges, o_lo + b_lo);
    StreamWriter<std::uint8_t> out_f(t, buf_f, dst_flags, o_lo + b_lo);

    Edge o;
    Edge b;
    bool has_o = old_r.next(o);
    bool has_b = new_r.next(b);
    std::uint64_t instr = 0;
    while (has_o || has_b) {
      if (has_o && (!has_b || o <= b)) {
        out_e.put(o);
        out_f.put(0);
        has_o = old_r.next(o);
      } else {
        out_e.put(b);
        out_f.put(1);
        has_b = new_r.next(b);
      }
      instr += p.cost.merge_pick;
    }
    out_e.flush();
    out_f.flush();
    t.instr(instr);
  });
}

/// Counts new triangles over the merged arc array: for each new canonical
/// edge e = (u,v), merge the full adjacency regions of u and v; every common
/// neighbor w closes a triangle, counted iff each of the other two edges is
/// old or a lexicographically smaller new edge — every new triangle lands
/// exactly once, at its largest new edge.  `n` and `n_b` are arc counts;
/// reversed batch arcs are skipped so each new edge is processed once.
std::uint64_t count_incremental(Dpu& dpu, const KernelParams& p,
                                std::uint64_t sorted, std::uint64_t n,
                                std::uint64_t flags, std::uint64_t reg,
                                std::uint64_t num_regions, std::uint64_t batch,
                                std::uint64_t n_b) {
  std::vector<std::uint64_t> partial(p.tasklets, 0);

  const RegionCache cache(dpu, p, reg, num_regions);

  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    auto scan_buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto u_buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto v_buf = dpu.wram().alloc<Edge>(p.buffer_edges);

    // Strided chunks (round-robin, 16 arcs each) instead of one contiguous
    // block per tasklet: the batch is sorted, so a hub's arcs are
    // contiguous and a static block split would hand one tasklet all the
    // expensive hub queries (real kernels pull chunks from a shared work
    // counter for the same reason).
    constexpr std::uint64_t kChunk = 16;
    const std::uint64_t num_chunks = ceil_div(n_b, kChunk);
    std::uint64_t count = 0;
    std::uint64_t instr = 0;
    for (std::uint64_t chunk_i = t.id(); chunk_i < num_chunks;
         chunk_i += p.tasklets) {
    const std::uint64_t c_lo = chunk_i * kChunk;
    const std::uint64_t c_hi = std::min(n_b, c_lo + kChunk);
    EdgeReader scan(t, scan_buf, batch, c_lo, c_hi);
    Edge e;
    while (scan.next(e)) {
      instr += p.cost.loop_overhead;
      if (e.u >= e.v) continue;  // process each new edge once (canonical arc)
      const Region ru = find_region(t, p, reg, num_regions, e.u, n, cache);
      if (!ru.found()) continue;  // cannot happen: e itself is in S*
      const Region rv = find_region(t, p, reg, num_regions, e.v, n, cache);
      if (!rv.found()) continue;

      // Adaptive intersection: hub-incident edges pair a tiny region with a
      // huge one, where a linear merge would walk the hub's full adjacency.
      // Binary-searching each element of the small region into the large
      // one costs small * log(large) instead.
      const Region& small = ru.size() <= rv.size() ? ru : rv;
      const Region& large = ru.size() <= rv.size() ? rv : ru;
      const std::uint64_t gallop_cost =
          small.size() * (ceil_log2(large.size() + 1) + 2);
      if (gallop_cost * 3 < small.size() + large.size()) {
        EdgeReader stream_s(t, u_buf, sorted, small.begin, small.end);
        Edge es;
        while (stream_s.next(es)) {
          const NodeId w = es.v;
          // lower_bound on the second endpoint within the large region;
          // each probe fetches an 8-edge block, resolving three levels per
          // DMA burst (the fixed setup cost dominates tiny reads).
          std::uint64_t lo = large.begin;
          std::uint64_t hi = large.end;
          std::uint64_t probes = 0;
          Edge block[8];
          while (hi - lo > 8) {
            const std::uint64_t mid = lo + (hi - lo) / 2;
            const std::uint64_t b =
                std::min(std::max(mid, lo + 4), hi - 4) - 4;
            t.mram_read(sorted + b * sizeof(Edge), block, sizeof(block));
            if (block[0].v >= w) {
              hi = b + 1;
            } else if (block[7].v < w) {
              lo = b + 8;
            } else {
              // Resolve within the block.
              lo = b;
              for (int i = 7; i >= 0; --i) {
                if (block[i].v < w) {
                  lo = b + i + 1;
                  break;
                }
              }
              hi = lo;
            }
            ++probes;
          }
          instr += probes * (p.cost.binary_search_step + 8);
          if (hi != lo) {
            // Final linear resolve over the <= 8 remaining entries.
            const std::uint64_t fetch = hi - lo;
            t.mram_read(sorted + lo * sizeof(Edge), block,
                        fetch * sizeof(Edge));
            instr += p.cost.binary_search_step + fetch;
            std::uint64_t i = 0;
            while (i < fetch && block[i].v < w) ++i;
            lo += i;
          }
          instr += p.cost.loop_overhead;
          if (lo >= large.end) continue;
          const Edge m = t.mram_read_t<Edge>(sorted + lo * sizeof(Edge));
          instr += p.cost.binary_search_step;
          if (m.v != w) continue;
          const auto fm = t.mram_read_t<std::uint8_t>(flags + lo);
          const auto fs =
              t.mram_read_t<std::uint8_t>(flags + stream_s.last_index());
          const bool blocked_s = (fs != 0) && e < es.canonical();
          const bool blocked_m = (fm != 0) && e < m.canonical();
          if (!blocked_s && !blocked_m) ++count;
          instr += 4;
        }
        continue;
      }

      EdgeReader stream_u(t, u_buf, sorted, ru.begin, ru.end);
      EdgeReader stream_v(t, v_buf, sorted, rv.begin, rv.end);

      Edge eu;
      Edge ev;
      bool has_u = stream_u.next(eu);
      bool has_v = stream_v.next(ev);
      while (has_u && has_v) {
        instr += p.cost.count_merge_step;
        if (eu.v == ev.v) {
          // Triangle (e.u, e.v, w) with w = eu.v; e is new by construction.
          // Count here only if neither other edge is a lexicographically
          // larger new edge (that edge's own pass owns the triangle).
          // Matches are rare, so new-flags are fetched lazily per match
          // instead of streamed alongside the edges.
          const auto fu =
              t.mram_read_t<std::uint8_t>(flags + stream_u.last_index());
          const auto fv =
              t.mram_read_t<std::uint8_t>(flags + stream_v.last_index());
          const bool blocked_u = (fu != 0) && e < eu.canonical();
          const bool blocked_v = (fv != 0) && e < ev.canonical();
          if (!blocked_u && !blocked_v) ++count;
          instr += 4;
          has_u = stream_u.next(eu);
          has_v = stream_v.next(ev);
        } else if (eu.v < ev.v) {
          has_u = stream_u.next(eu);
        } else {
          has_v = stream_v.next(ev);
        }
      }
    }
    }
    partial[t.id()] = count;
    t.instr(instr);
  });

  std::uint64_t total = 0;
  for (const std::uint64_t c : partial) total += c;
  dpu.serial_instr(p.tasklets * 2ull);
  return total;
}

/// Zeroes the first n flag bytes (parallel chunked writes).
void clear_flags(Dpu& dpu, const KernelParams& p, std::uint64_t flags,
                 std::uint64_t n) {
  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const Block blk = block_of(n, t.id(), p.tasklets);
    if (blk.begin >= blk.end) return;
    auto buf = dpu.wram().alloc<std::uint8_t>(p.buffer_edges * 8);
    std::fill(buf.begin(), buf.end(), 0);
    for (std::uint64_t pos = blk.begin; pos < blk.end; pos += buf.size()) {
      const std::uint64_t len =
          std::min<std::uint64_t>(buf.size(), blk.end - pos);
      t.mram_write(flags + pos, buf.data(), len);
      t.instr(p.cost.loop_overhead);
    }
  });
}

/// Clamps the stream-buffer size into [4, max_wram_buffer_edges] — a safety
/// net for callers driving the kernel directly; host configs are validated
/// against the same bound up front, so they never hit the clamp.
KernelParams clamp_buffers(const pim::Dpu& dpu, const KernelParams& in) {
  KernelParams params = in;
  const std::uint32_t max_buffer =
      max_wram_buffer_edges(dpu.config(), params.tasklets);
  params.buffer_edges = std::max(4u, std::min(params.buffer_edges, max_buffer));
  return params;
}

DpuMeta read_meta(Dpu& dpu, const KernelParams& p) {
  DpuMeta meta{};
  dpu.parallel(1, [&](Tasklet& t) {
    meta = t.mram_read_t<DpuMeta>(MramLayout::kMetaOffset);
    t.instr(p.cost.loop_overhead);
  });
  return meta;
}

void write_meta(Dpu& dpu, const KernelParams& p, const DpuMeta& meta) {
  dpu.parallel(1, [&](Tasklet& t) {
    t.mram_write_t(MramLayout::kMetaOffset, meta);
    t.instr(p.cost.loop_overhead);
  });
}

}  // namespace

std::uint32_t max_wram_buffer_edges(const pim::PimSystemConfig& config,
                                    std::uint32_t tasklets) noexcept {
  const std::uint64_t statics =
      MramLayout::kMaxRemap * 2 * sizeof(NodeId) +  // remap hash table
      RegionCache::kSlots * sizeof(RegionEntry);    // sampled region index
  if (config.wram_bytes <= statics || tasklets == 0) return 0;
  // Worst case the kernels allocate five stream buffers per tasklet at once.
  return static_cast<std::uint32_t>((config.wram_bytes - statics) /
                                    (5ull * tasklets * sizeof(Edge)));
}

void run_count_kernel(pim::Dpu& dpu, const KernelParams& params_in) {
  const KernelParams params = clamp_buffers(dpu, params_in);
  DpuMeta meta = read_meta(dpu, params);
  const std::uint64_t n = meta.sample_size;
  const std::uint64_t cap = meta.sample_capacity;

  if (n == 0) {
    meta.triangle_count = 0;
    meta.num_regions = 0;
    meta.sorted_size = 0;
    if (meta.flags & DpuMeta::kFlagPersistSorted) {
      // An empty persisted arc array is valid: without this flag a core
      // that received no edges before the first count would reject every
      // later incremental recount.
      meta.flags |= DpuMeta::kFlagSortedValid;
    }
    write_meta(dpu, params, meta);
    return;
  }

  dpu.wram().reset();
  const RemapTable remap(dpu, params, meta.num_remap);
  copy_remap(dpu, params, remap, MramLayout::sample_offset(), 0, n,
             MramLayout::work_a_offset(cap), /*arcs=*/false);

  const std::uint64_t sorted =
      external_sort(dpu, params, MramLayout::work_a_offset(cap),
                    MramLayout::work_b_offset(cap), n);

  const std::uint64_t reg = MramLayout::region_offset(cap);
  const std::uint64_t regions = build_regions(dpu, params, sorted, n, reg);
  meta.num_regions = regions;
  meta.triangle_count = count_full(dpu, params, sorted, n, reg, regions);

  if (meta.flags & DpuMeta::kFlagPersistSorted) {
    // Materialize the persistent arc array S* (both orientations of every
    // edge, sorted) for subsequent incremental updates.  The canonical
    // pipeline is finished, so the scratch buffers are free again.
    dpu.wram().reset();
    copy_remap(dpu, params, remap, MramLayout::sample_offset(), 0, n,
               MramLayout::work_a_offset(cap), /*arcs=*/true);
    const std::uint64_t arcs =
        external_sort(dpu, params, MramLayout::work_a_offset(cap),
                      MramLayout::work_b_offset(cap), 2 * n);
    if (arcs != MramLayout::sorted_offset(cap)) {
      copy_edges(dpu, params, arcs, MramLayout::sorted_offset(cap), 2 * n);
    }
    meta.sorted_size = n;
    meta.flags |= DpuMeta::kFlagSortedValid;
  }
  write_meta(dpu, params, meta);
}

void run_incremental_kernel(pim::Dpu& dpu, const KernelParams& params_in) {
  const KernelParams params = clamp_buffers(dpu, params_in);
  DpuMeta meta = read_meta(dpu, params);
  const std::uint64_t cap = meta.sample_capacity;
  const std::uint64_t n_old = meta.sorted_size;
  const std::uint64_t n = meta.sample_size;

  if (!(meta.flags & DpuMeta::kFlagSortedValid) || n < n_old) {
    throw std::logic_error(
        "run_incremental_kernel: no valid persisted sorted sample");
  }
  const std::uint64_t n_b = n - n_old;
  if (n_b == 0) {
    write_meta(dpu, params, meta);
    return;
  }

  const std::uint64_t sorted = MramLayout::sorted_offset(cap);
  const std::uint64_t flags = MramLayout::flags_offset(cap);
  const std::uint64_t work_a = MramLayout::work_a_offset(cap);
  const std::uint64_t work_b = MramLayout::work_b_offset(cap);
  const std::uint64_t reg = MramLayout::region_offset(cap);
  const std::uint64_t arcs_old = 2 * n_old;
  const std::uint64_t arcs_b = 2 * n_b;
  const std::uint64_t arcs_total = 2 * n;

  // 1. remap + copy (both orientations) + sort the new batch.
  dpu.wram().reset();
  const RemapTable remap(dpu, params, meta.num_remap);
  copy_remap(dpu, params, remap, MramLayout::sample_offset(), n_old, n,
             work_a, /*arcs=*/true);
  const std::uint64_t batch = external_sort(dpu, params, work_a, work_b,
                                            arcs_b);

  // 2. merge S* + batch arcs into the other scratch buffer (with new-flags),
  //    then install it as the new S*.  The sorted batch survives in `batch`
  //    for the counting pass.
  const std::uint64_t merge_dst = batch == work_a ? work_b : work_a;
  merge_with_flags(dpu, params, sorted, arcs_old, batch, arcs_b, merge_dst,
                   flags);
  copy_edges(dpu, params, merge_dst, sorted, arcs_total);
  meta.sorted_size = n;

  // 3. rebuild the region index over the merged S*.
  const std::uint64_t regions =
      build_regions(dpu, params, sorted, arcs_total, reg);
  meta.num_regions = regions;

  // 4. count the delta, 5. clear the flags for the next round.
  const std::uint64_t delta =
      count_incremental(dpu, params, sorted, arcs_total, flags, reg, regions,
                        batch, arcs_b);
  clear_flags(dpu, params, flags, arcs_total);

  meta.triangle_count += delta;
  write_meta(dpu, params, meta);
}

}  // namespace pimtc::tc
