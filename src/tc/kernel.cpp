#include "tc/kernel.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/math_util.hpp"
#include "tc/intersect.hpp"

namespace pimtc::tc {
namespace {

using pim::Dpu;
using pim::Tasklet;

// ---------------------------------------------------------------------------
// High-degree remap table (WRAM open-addressing hash, Section 3.5)
// ---------------------------------------------------------------------------

/// One slot of the WRAM-resident remap hash table; kInvalidNode = empty.
struct RemapEntry {
  NodeId from;
  NodeId to;
};

class RemapTable {
 public:
  /// Builds the table (tasklet-0 boot work).  The table models a
  /// *statically allocated* WRAM structure that lives for the whole kernel
  /// — unlike the per-phase stream buffers — so it owns its storage here;
  /// its WRAM footprint is budgeted in clamp_buffers().  `num_remap` may be
  /// 0, yielding a no-op table.
  RemapTable(Dpu& dpu, const KernelParams& p, std::uint32_t num_remap) {
    if (num_remap == 0) return;
    slots_ = 16;
    while (slots_ < 4ull * num_remap) slots_ *= 2;
    storage_.assign(slots_, RemapEntry{kInvalidNode, kInvalidNode});
    table_ = storage_;

    dpu.parallel(1, [&](Tasklet& t) {
      std::vector<NodeId> by_rank(num_remap);
      t.mram_read(MramLayout::kRemapOffset, by_rank.data(),
                  by_rank.size() * sizeof(NodeId));
      for (std::uint32_t r = 0; r < num_remap; ++r) {
        std::uint64_t slot = mix64(by_rank[r]) & (slots_ - 1);
        while (table_[slot].from != kInvalidNode) {
          slot = (slot + 1) & (slots_ - 1);
        }
        table_[slot] = RemapEntry{by_rank[r], remapped_id(r)};
      }
      t.instr((num_remap + slots_) * p.cost.remap_lookup);
    });
  }

  [[nodiscard]] bool empty() const noexcept { return slots_ == 0; }

  /// Maps `node`, accumulating probe count into `probes` (the caller
  /// charges remap_lookup instructions per probe).
  [[nodiscard]] NodeId lookup(NodeId node, std::uint64_t& probes) const {
    if (slots_ == 0) return node;
    std::uint64_t slot = mix64(node) & (slots_ - 1);
    for (;;) {
      ++probes;
      const RemapEntry e = table_[slot];
      if (e.from == node) return e.to;
      if (e.from == kInvalidNode) return node;
      slot = (slot + 1) & (slots_ - 1);
    }
  }

 private:
  std::vector<RemapEntry> storage_;
  std::span<RemapEntry> table_{};
  std::uint64_t slots_ = 0;
};

// ---------------------------------------------------------------------------
// Reusable phases
// ---------------------------------------------------------------------------

/// Copies edges [src_begin, src_end) of the raw sample into `dst` (0-based),
/// applying the remap.  Canonical mode emits one u<v record per edge; arc
/// mode emits both orientations (2 records per edge, for the S* pipeline).
void copy_remap(Dpu& dpu, const KernelParams& p, const RemapTable& remap,
                std::uint64_t src, std::uint64_t src_begin,
                std::uint64_t src_end, std::uint64_t dst, bool arcs) {
  const std::uint64_t n = src_end - src_begin;
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const Block blk = block_of(n, t.id(), p.tasklets);
    if (blk.begin >= blk.end) return;
    auto rbuf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto wbuf = dpu.wram().alloc<Edge>(p.buffer_edges);
    EdgeReader reader(t, rbuf, src, src_begin + blk.begin,
                      src_begin + blk.end);
    StreamWriter<Edge> writer(t, wbuf, dst,
                              arcs ? 2 * blk.begin : blk.begin);

    std::uint64_t instr = 0;
    std::uint64_t probes = 0;
    Edge e;
    while (reader.next(e)) {
      if (!remap.empty()) {
        e.u = remap.lookup(e.u, probes);
        e.v = remap.lookup(e.v, probes);
      }
      const Edge c = e.canonical();
      writer.put(c);
      if (arcs) writer.put(c.reversed());
      instr += p.cost.edge_copy + p.cost.loop_overhead;
    }
    writer.flush();
    t.instr(instr + probes * p.cost.remap_lookup);
  });
}

/// External merge sort of n edges at `off_a`, ping-pong with `off_b`.
/// Returns the offset holding the sorted result.  Resets WRAM.
///
/// Chunk size adapts downward for small inputs so every tasklet has work
/// (an idle pipeline issues one instruction per 11 cycles per tasklet), and
/// merge passes with fewer runs than tasklets are co-partitioned with
/// merge-path splitting so the last passes stay parallel.
std::uint64_t external_sort(Dpu& dpu, const KernelParams& p,
                            std::uint64_t off_a, std::uint64_t off_b,
                            std::uint64_t n) {
  if (n <= 1) return off_a;

  // Stage 1: sort WRAM-resident chunks in place.  Every tasklet holds a
  // chunk buffer simultaneously, so chunk size is bounded by WRAM/tasklets
  // (half the arena, leaving room for stack/locals like a real kernel).
  dpu.wram().reset();
  const std::uint64_t max_chunk = std::max<std::uint64_t>(
      16, dpu.wram().capacity() / (2ull * p.tasklets * sizeof(Edge)));
  const std::uint64_t chunk =
      std::max<std::uint64_t>(8, std::min(max_chunk,
                                          ceil_div(n, p.tasklets)));
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    auto buf = dpu.wram().alloc<Edge>(chunk);
    for (std::uint64_t begin = t.id() * chunk; begin < n;
         begin += static_cast<std::uint64_t>(p.tasklets) * chunk) {
      const std::uint64_t len = std::min(chunk, n - begin);
      t.mram_read(off_a + begin * sizeof(Edge), buf.data(), len * sizeof(Edge));
      std::sort(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(len));
      t.instr(len * (ceil_log2(len) + 1) * p.cost.sort_step);
      t.mram_write(off_a + begin * sizeof(Edge), buf.data(),
                   len * sizeof(Edge));
    }
  });

  // Stage 2: ping-pong merge passes until a single run remains.
  std::uint64_t src = off_a;
  std::uint64_t dst = off_b;
  for (std::uint64_t width = chunk; width < n; width *= 2) {
    dpu.wram().reset();
    const std::uint64_t pairs = ceil_div(n, width * 2);
    const std::uint32_t ways = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, p.tasklets / pairs));
    dpu.parallel(p.tasklets, [&](Tasklet& t) {
      const std::uint64_t pair = t.id() / ways;
      const std::uint32_t way = t.id() % ways;

      auto buf_l = dpu.wram().alloc<Edge>(p.buffer_edges);
      auto buf_r = dpu.wram().alloc<Edge>(p.buffer_edges);
      auto buf_o = dpu.wram().alloc<Edge>(p.buffer_edges);

      // lower_bound of `key` within src[b, e): first element >= key.
      const auto lb = [&](std::uint64_t b, std::uint64_t e_idx,
                          const Edge& key) {
        std::uint64_t probes = 0;
        while (b < e_idx) {
          const std::uint64_t mid = b + (e_idx - b) / 2;
          const Edge m = t.mram_read_t<Edge>(src + mid * sizeof(Edge));
          if (m < key) {
            b = mid + 1;
          } else {
            e_idx = mid;
          }
          ++probes;
        }
        t.instr(probes * p.cost.binary_search_step);
        return b;
      };

      const auto merge_range = [&](std::uint64_t l0, std::uint64_t l1,
                                   std::uint64_t r0, std::uint64_t r1,
                                   std::uint64_t out_pos) {
        EdgeReader left(t, buf_l, src, l0, l1);
        EdgeReader right(t, buf_r, src, r0, r1);
        StreamWriter<Edge> out(t, buf_o, dst, out_pos);
        Edge l;
        Edge r;
        bool has_l = left.next(l);
        bool has_r = right.next(r);
        std::uint64_t instr = 0;
        while (has_l || has_r) {
          if (has_l && (!has_r || l <= r)) {
            out.put(l);
            has_l = left.next(l);
          } else {
            out.put(r);
            has_r = right.next(r);
          }
          instr += p.cost.merge_pick;
        }
        out.flush();
        t.instr(instr);
      };

      if (ways == 1) {
        // More runs than tasklets: round-robin whole pairs.
        for (std::uint64_t pr = t.id(); pr < pairs; pr += p.tasklets) {
          const std::uint64_t lo = pr * width * 2;
          const std::uint64_t mid = std::min(lo + width, n);
          const std::uint64_t hi = std::min(lo + width * 2, n);
          merge_range(lo, mid, mid, hi, lo);
        }
        return;
      }

      // Few runs: `ways` tasklets co-partition one pair via merge-path
      // splits (distinct keys: edges are unique).
      if (pair >= pairs) return;
      const std::uint64_t lo = pair * width * 2;
      const std::uint64_t mid = std::min(lo + width, n);
      const std::uint64_t hi = std::min(lo + width * 2, n);
      const std::uint64_t nl = mid - lo;

      const auto left_split = [&](std::uint32_t w) {
        return lo + w * nl / ways;
      };
      // Right-run split consistent across ways: right elements smaller than
      // the left block's first key go to earlier ways.  Edges are unique,
      // so ties cannot occur.
      const auto right_split = [&](std::uint64_t lx) {
        if (lx <= lo) return mid;   // first boundary
        if (lx >= mid) return hi;   // left run exhausted: tail goes here
        return lb(mid, hi, t.mram_read_t<Edge>(src + lx * sizeof(Edge)));
      };
      const std::uint64_t l0 = left_split(way);
      const std::uint64_t l1 = left_split(way + 1);
      const std::uint64_t r0 = way == 0 ? mid : right_split(l0);
      const std::uint64_t r1 = way + 1 == ways ? hi : right_split(l1);
      merge_range(l0, l1, r0, r1, lo + (l0 - lo) + (r0 - mid));
    });
    std::swap(src, dst);
  }
  return src;
}

/// Parallel bulk copy of n edges from `src` to `dst`.
void copy_edges(Dpu& dpu, const KernelParams& p, std::uint64_t src,
                std::uint64_t dst, std::uint64_t n) {
  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const Block blk = block_of(n, t.id(), p.tasklets);
    if (blk.begin >= blk.end) return;
    auto buf = dpu.wram().alloc<Edge>(p.buffer_edges * 2);
    for (std::uint64_t pos = blk.begin; pos < blk.end; pos += buf.size()) {
      const std::uint64_t len =
          std::min<std::uint64_t>(buf.size(), blk.end - pos);
      t.mram_read(src + pos * sizeof(Edge), buf.data(), len * sizeof(Edge));
      t.mram_write(dst + pos * sizeof(Edge), buf.data(), len * sizeof(Edge));
      t.instr(p.cost.loop_overhead);
    }
  });
}

/// Builds the region index over `sorted` (n edges) at `reg`.  Two parallel
/// passes: count region starts per block, then write RegionEntry records at
/// exclusive-prefix offsets.  Returns the number of regions.
std::uint64_t build_regions(Dpu& dpu, const KernelParams& p,
                            std::uint64_t sorted, std::uint64_t n,
                            std::uint64_t reg) {
  if (n == 0) return 0;
  // RegionEntry.begin is 32-bit; the kernel entry points reject capacities
  // whose arc arrays could exceed this, so the cast below cannot truncate.
  if (n - 1 > std::numeric_limits<std::uint32_t>::max()) {
    throw std::logic_error(
        "build_regions: record index overflows RegionEntry.begin");
  }
  std::vector<std::uint64_t> counts(p.tasklets, 0);

  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const Block blk = block_of(n, t.id(), p.tasklets);
    if (blk.begin >= blk.end) return;
    auto buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    NodeId prev = kInvalidNode;
    if (blk.begin > 0) {
      prev = t.mram_read_t<Edge>(sorted + (blk.begin - 1) * sizeof(Edge)).u;
    }
    EdgeReader reader(t, buf, sorted, blk.begin, blk.end);
    Edge e;
    std::uint64_t local = 0;
    std::uint64_t instr = 0;
    while (reader.next(e)) {
      if (e.u != prev) {
        ++local;
        prev = e.u;
      }
      instr += p.cost.region_scan_step;
    }
    counts[t.id()] = local;
    t.instr(instr);
  });

  // Exclusive prefix over per-tasklet counts (tasklet 0 on real hardware).
  std::vector<std::uint64_t> prefix(p.tasklets + 1, 0);
  for (std::uint32_t i = 0; i < p.tasklets; ++i) {
    prefix[i + 1] = prefix[i] + counts[i];
  }
  dpu.serial_instr(p.tasklets * 2ull);

  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const Block blk = block_of(n, t.id(), p.tasklets);
    if (blk.begin >= blk.end) return;
    auto buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto obuf = dpu.wram().alloc<RegionEntry>(p.buffer_edges);
    NodeId prev = kInvalidNode;
    if (blk.begin > 0) {
      prev = t.mram_read_t<Edge>(sorted + (blk.begin - 1) * sizeof(Edge)).u;
    }
    EdgeReader reader(t, buf, sorted, blk.begin, blk.end);
    StreamWriter<RegionEntry> writer(t, obuf, reg, prefix[t.id()]);
    Edge e;
    std::uint64_t instr = 0;
    while (reader.next(e)) {
      if (e.u != prev) {
        writer.put(
            RegionEntry{e.u, static_cast<std::uint32_t>(reader.last_index())});
        prev = e.u;
      }
      instr += p.cost.region_scan_step;
    }
    writer.flush();
    t.instr(instr);
  });

  return prefix[p.tasklets];
}

// ---------------------------------------------------------------------------
// Full counting phase (Section 3.4)
// ---------------------------------------------------------------------------

/// Edge iterator over the canonical sorted sample: for every edge (u,v),
/// intersect the remainder of u's region with v's full region through the
/// shared adaptive machinery (tc/intersect.hpp) — RegionCache-backed
/// lookups, merge/gallop selection, strided hub-spreading chunks.
std::uint64_t count_full(Dpu& dpu, const KernelParams& p, std::uint64_t sorted,
                         std::uint64_t n, std::uint64_t reg,
                         std::uint64_t num_regions, IntersectTally& tally) {
  std::vector<std::uint64_t> partial(p.tasklets, 0);
  std::vector<IntersectTally> tallies(p.tasklets);

  const RegionCache cache(dpu, p.tasklets, p.buffer_edges, reg,
                          num_regions, p.region_cache);

  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    auto scan_buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto u_buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto v_buf = dpu.wram().alloc<Edge>(p.buffer_edges);

    IntersectTally& tl = tallies[t.id()];
    const std::uint64_t num_chunks = ceil_div(n, kIntersectChunkEdges);
    std::uint64_t count = 0;
    std::uint64_t instr = 0;
    // The region of the current scan u, reused while u does not change
    // (regions are contiguous in the sorted scan, so the lookup amortizes
    // to one per distinct first endpoint).
    NodeId cur_u = kInvalidNode;
    Region ru;
    for (std::uint64_t chunk_i = t.id(); chunk_i < num_chunks;
         chunk_i += p.tasklets) {
      ++tl.chunks_claimed;
      const std::uint64_t c_lo = chunk_i * kIntersectChunkEdges;
      const std::uint64_t c_hi = std::min(n, c_lo + kIntersectChunkEdges);
      EdgeReader scan(t, scan_buf, sorted, c_lo, c_hi);
      Edge e;
      while (scan.next(e)) {
        instr += p.cost.loop_overhead;
        if (e.u == e.v) continue;  // defensive: self loops count nothing
        if (e.u != cur_u) {
          cur_u = e.u;
          ru = find_region(t, p.cost, reg, num_regions, e.u, n, cache);
        }
        if (!ru.found()) continue;  // cannot happen: e itself is in `sorted`
        const Region rv =
            find_region(t, p.cost, reg, num_regions, e.v, n, cache);
        if (!rv.found()) continue;

        // Edges after (u,v) in u's region x v's full region; every common
        // second endpoint w closes the triangle u < v < w.
        const Region u_rest{scan.last_index() + 1, ru.end};
        intersect_regions(t, p.cost, p.intersect, p.gallop_margin, sorted,
                          u_rest, rv, u_buf, v_buf, tl, instr,
                          [&](std::uint64_t, const Edge&, std::uint64_t,
                              const Edge&) { ++count; });
      }
    }
    partial[t.id()] = count;
    t.instr(instr);
  });

  std::uint64_t total = 0;
  for (const std::uint64_t c : partial) total += c;
  for (const IntersectTally& tl : tallies) tally += tl;
  dpu.serial_instr(p.tasklets * 2ull);
  return total;
}

// ---------------------------------------------------------------------------
// Incremental machinery (dynamic updates)
// ---------------------------------------------------------------------------

/// Merges S*[0..n_old) with the sorted batch at `batch` [0..n_b) into
/// `dst_edges`, writing a 1-byte "new" flag per output record to
/// `dst_flags`.  Tasklets merge co-partitioned subranges (merge-path
/// splitting on equal S* blocks).
void merge_with_flags(Dpu& dpu, const KernelParams& p, std::uint64_t sorted,
                      std::uint64_t n_old, std::uint64_t batch,
                      std::uint64_t n_b, std::uint64_t dst_edges,
                      std::uint64_t dst_flags) {
  const std::uint32_t ways = p.tasklets;
  std::vector<std::uint64_t> old_split(ways + 1, 0);
  std::vector<std::uint64_t> batch_split(ways + 1, 0);
  old_split[ways] = n_old;
  batch_split[ways] = n_b;

  // Split planning: equal blocks of S*; matching batch positions found by
  // binary search (tasklet-0 work on real hardware).
  dpu.wram().reset();
  dpu.parallel(1, [&](Tasklet& t) {
    std::uint64_t instr = 0;
    for (std::uint32_t w = 1; w < ways; ++w) {
      const std::uint64_t pos = w * n_old / ways;
      old_split[w] = pos;
      if (pos == 0 || n_b == 0) {
        batch_split[w] = 0;
        continue;
      }
      const Edge pivot = t.mram_read_t<Edge>(sorted + (pos - 1) * sizeof(Edge));
      std::uint64_t lo = 0;
      std::uint64_t hi = n_b;
      while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        const Edge e = t.mram_read_t<Edge>(batch + mid * sizeof(Edge));
        if (e < pivot) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
        instr += p.cost.binary_search_step;
      }
      batch_split[w] = lo;
    }
    t.instr(instr);
  });
  // Monotonicity guard (ties in the batch search).
  for (std::uint32_t w = 1; w <= ways; ++w) {
    batch_split[w] = std::max(batch_split[w], batch_split[w - 1]);
  }

  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const std::uint32_t w = t.id();
    const std::uint64_t o_lo = old_split[w];
    const std::uint64_t o_hi = old_split[w + 1];
    const std::uint64_t b_lo = batch_split[w];
    const std::uint64_t b_hi = batch_split[w + 1];
    if (o_lo >= o_hi && b_lo >= b_hi) return;

    auto buf_o = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto buf_b = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto buf_e = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto buf_f = dpu.wram().alloc<std::uint8_t>(p.buffer_edges);

    EdgeReader old_r(t, buf_o, sorted, o_lo, o_hi);
    EdgeReader new_r(t, buf_b, batch, b_lo, b_hi);
    StreamWriter<Edge> out_e(t, buf_e, dst_edges, o_lo + b_lo);
    StreamWriter<std::uint8_t> out_f(t, buf_f, dst_flags, o_lo + b_lo);

    Edge o;
    Edge b;
    bool has_o = old_r.next(o);
    bool has_b = new_r.next(b);
    std::uint64_t instr = 0;
    while (has_o || has_b) {
      if (has_o && (!has_b || o <= b)) {
        out_e.put(o);
        out_f.put(0);
        has_o = old_r.next(o);
      } else {
        out_e.put(b);
        out_f.put(1);
        has_b = new_r.next(b);
      }
      instr += p.cost.merge_pick;
    }
    out_e.flush();
    out_f.flush();
    t.instr(instr);
  });
}

/// Counts new triangles over the merged arc array: for each new canonical
/// edge e = (u,v), intersect the full adjacency regions of u and v through
/// the shared adaptive machinery; every common neighbor w closes a
/// triangle, counted iff each of the other two edges is old or a
/// lexicographically smaller new edge — every new triangle lands exactly
/// once, at its largest new edge.  `n` and `n_b` are arc counts; reversed
/// batch arcs are skipped so each new edge is processed once.
std::uint64_t count_incremental(Dpu& dpu, const KernelParams& p,
                                std::uint64_t sorted, std::uint64_t n,
                                std::uint64_t flags, std::uint64_t reg,
                                std::uint64_t num_regions, std::uint64_t batch,
                                std::uint64_t n_b, IntersectTally& tally) {
  std::vector<std::uint64_t> partial(p.tasklets, 0);
  std::vector<IntersectTally> tallies(p.tasklets);

  const RegionCache cache(dpu, p.tasklets, p.buffer_edges, reg,
                          num_regions, p.region_cache);

  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    auto scan_buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto u_buf = dpu.wram().alloc<Edge>(p.buffer_edges);
    auto v_buf = dpu.wram().alloc<Edge>(p.buffer_edges);

    IntersectTally& tl = tallies[t.id()];
    const std::uint64_t num_chunks = ceil_div(n_b, kIntersectChunkEdges);
    std::uint64_t count = 0;
    std::uint64_t instr = 0;
    for (std::uint64_t chunk_i = t.id(); chunk_i < num_chunks;
         chunk_i += p.tasklets) {
      ++tl.chunks_claimed;
      const std::uint64_t c_lo = chunk_i * kIntersectChunkEdges;
      const std::uint64_t c_hi = std::min(n_b, c_lo + kIntersectChunkEdges);
      EdgeReader scan(t, scan_buf, batch, c_lo, c_hi);
      Edge e;
      while (scan.next(e)) {
        instr += p.cost.loop_overhead;
        if (e.u >= e.v) continue;  // process each new edge once
        const Region ru =
            find_region(t, p.cost, reg, num_regions, e.u, n, cache);
        if (!ru.found()) continue;  // cannot happen: e itself is in S*
        const Region rv =
            find_region(t, p.cost, reg, num_regions, e.v, n, cache);
        if (!rv.found()) continue;

        // Triangle (e.u, e.v, w) with w the matched second endpoint; e is
        // new by construction.  Count here only if neither other edge is a
        // lexicographically larger new edge (that edge's own pass owns the
        // triangle).  Matches are rare, so new-flags are fetched lazily per
        // match instead of streamed alongside the edges.
        intersect_regions(
            t, p.cost, p.intersect, p.gallop_margin, sorted, ru, rv, u_buf,
            v_buf, tl, instr,
            [&](std::uint64_t ia, const Edge& ea, std::uint64_t ib,
                const Edge& eb) {
              const auto fa = t.mram_read_t<std::uint8_t>(flags + ia);
              const auto fb = t.mram_read_t<std::uint8_t>(flags + ib);
              const bool blocked_a = (fa != 0) && e < ea.canonical();
              const bool blocked_b = (fb != 0) && e < eb.canonical();
              if (!blocked_a && !blocked_b) ++count;
              instr += 4;
            });
      }
    }
    partial[t.id()] = count;
    t.instr(instr);
  });

  std::uint64_t total = 0;
  for (const std::uint64_t c : partial) total += c;
  for (const IntersectTally& tl : tallies) tally += tl;
  dpu.serial_instr(p.tasklets * 2ull);
  return total;
}

/// Zeroes the first n flag bytes (parallel chunked writes).
void clear_flags(Dpu& dpu, const KernelParams& p, std::uint64_t flags,
                 std::uint64_t n) {
  dpu.wram().reset();
  dpu.parallel(p.tasklets, [&](Tasklet& t) {
    const Block blk = block_of(n, t.id(), p.tasklets);
    if (blk.begin >= blk.end) return;
    auto buf = dpu.wram().alloc<std::uint8_t>(p.buffer_edges * 8);
    std::fill(buf.begin(), buf.end(), 0);
    for (std::uint64_t pos = blk.begin; pos < blk.end; pos += buf.size()) {
      const std::uint64_t len =
          std::min<std::uint64_t>(buf.size(), blk.end - pos);
      t.mram_write(flags + pos, buf.data(), len);
      t.instr(p.cost.loop_overhead);
    }
  });
}

/// Clamps the stream-buffer size into [4, max_wram_buffer_edges] — a safety
/// net for callers driving the kernel directly; host configs are validated
/// against the same bound up front, so they never hit the clamp.
KernelParams clamp_buffers(const pim::Dpu& dpu, const KernelParams& in) {
  KernelParams params = in;
  const std::uint32_t max_buffer =
      max_wram_buffer_edges(dpu.config(), params.tasklets);
  params.buffer_edges = std::max(4u, std::min(params.buffer_edges, max_buffer));
  return params;
}

DpuMeta read_meta(Dpu& dpu, const KernelParams& p) {
  DpuMeta meta{};
  dpu.parallel(1, [&](Tasklet& t) {
    meta = t.mram_read_t<DpuMeta>(MramLayout::kMetaOffset);
    t.instr(p.cost.loop_overhead);
  });
  if (meta.sample_capacity > MramLayout::kMaxCapacityEdges) {
    throw std::logic_error(
        "counting kernel: sample_capacity exceeds the 32-bit region index "
        "range (MramLayout::kMaxCapacityEdges)");
  }
  return meta;
}

void write_meta(Dpu& dpu, const KernelParams& p, const DpuMeta& meta) {
  dpu.parallel(1, [&](Tasklet& t) {
    t.mram_write_t(MramLayout::kMetaOffset, meta);
    t.instr(p.cost.loop_overhead);
  });
}

void store_tally(DpuMeta& meta, const IntersectTally& tally,
                 std::uint64_t count_instr) {
  meta.merge_picks = tally.merge_picks;
  meta.gallop_probes = tally.gallop_probes;
  meta.merge_isects = tally.merge_isects;
  meta.gallop_isects = tally.gallop_isects;
  meta.chunks_claimed = tally.chunks_claimed;
  meta.count_instructions = count_instr;
}

}  // namespace

std::uint32_t max_wram_buffer_edges(const pim::PimSystemConfig& config,
                                    std::uint32_t tasklets) noexcept {
  const std::uint64_t statics =
      MramLayout::kMaxRemap * 2 * sizeof(NodeId) +  // remap hash table
      RegionCache::kSlots * sizeof(RegionEntry);    // sampled region index
  if (config.wram_bytes <= statics || tasklets == 0) return 0;
  // Worst case the kernels allocate five stream buffers per tasklet at once.
  return static_cast<std::uint32_t>((config.wram_bytes - statics) /
                                    (5ull * tasklets * sizeof(Edge)));
}

void run_count_kernel(pim::Dpu& dpu, const KernelParams& params_in) {
  const KernelParams params = clamp_buffers(dpu, params_in);
  DpuMeta meta = read_meta(dpu, params);
  const std::uint64_t n = meta.sample_size;
  const std::uint64_t cap = meta.sample_capacity;

  if (n == 0) {
    meta.triangle_count = 0;
    meta.num_regions = 0;
    meta.sorted_size = 0;
    store_tally(meta, IntersectTally{}, 0);
    if (meta.flags & DpuMeta::kFlagPersistSorted) {
      // An empty persisted arc array is valid: without this flag a core
      // that received no edges before the first count would reject every
      // later incremental recount.
      meta.flags |= DpuMeta::kFlagSortedValid;
    }
    write_meta(dpu, params, meta);
    return;
  }

  dpu.wram().reset();
  const RemapTable remap(dpu, params, meta.num_remap);
  copy_remap(dpu, params, remap, MramLayout::sample_offset(), 0, n,
             MramLayout::work_a_offset(cap), /*arcs=*/false);

  const std::uint64_t sorted =
      external_sort(dpu, params, MramLayout::work_a_offset(cap),
                    MramLayout::work_b_offset(cap), n);

  const std::uint64_t reg = MramLayout::region_offset(cap);
  const std::uint64_t regions = build_regions(dpu, params, sorted, n, reg);
  meta.num_regions = regions;
  IntersectTally tally;
  const std::uint64_t instr0 = dpu.total_instructions();
  meta.triangle_count =
      count_full(dpu, params, sorted, n, reg, regions, tally);
  store_tally(meta, tally, dpu.total_instructions() - instr0);

  if (meta.flags & DpuMeta::kFlagPersistSorted) {
    // Materialize the persistent arc array S* (both orientations of every
    // edge, sorted) for subsequent incremental updates.  The canonical
    // pipeline is finished, so the scratch buffers are free again.
    dpu.wram().reset();
    copy_remap(dpu, params, remap, MramLayout::sample_offset(), 0, n,
               MramLayout::work_a_offset(cap), /*arcs=*/true);
    const std::uint64_t arcs =
        external_sort(dpu, params, MramLayout::work_a_offset(cap),
                      MramLayout::work_b_offset(cap), 2 * n);
    if (arcs != MramLayout::sorted_offset(cap)) {
      copy_edges(dpu, params, arcs, MramLayout::sorted_offset(cap), 2 * n);
    }
    meta.sorted_size = n;
    meta.flags |= DpuMeta::kFlagSortedValid;
  }
  write_meta(dpu, params, meta);
}

void run_incremental_kernel(pim::Dpu& dpu, const KernelParams& params_in) {
  const KernelParams params = clamp_buffers(dpu, params_in);
  DpuMeta meta = read_meta(dpu, params);
  const std::uint64_t cap = meta.sample_capacity;
  const std::uint64_t n_old = meta.sorted_size;
  const std::uint64_t n = meta.sample_size;

  if (!(meta.flags & DpuMeta::kFlagSortedValid) || n < n_old) {
    throw std::logic_error(
        "run_incremental_kernel: no valid persisted sorted sample");
  }
  const std::uint64_t n_b = n - n_old;
  if (n_b == 0) {
    store_tally(meta, IntersectTally{}, 0);
    write_meta(dpu, params, meta);
    return;
  }

  const std::uint64_t sorted = MramLayout::sorted_offset(cap);
  const std::uint64_t flags = MramLayout::flags_offset(cap);
  const std::uint64_t work_a = MramLayout::work_a_offset(cap);
  const std::uint64_t work_b = MramLayout::work_b_offset(cap);
  const std::uint64_t reg = MramLayout::region_offset(cap);
  const std::uint64_t arcs_old = 2 * n_old;
  const std::uint64_t arcs_b = 2 * n_b;
  const std::uint64_t arcs_total = 2 * n;

  // 1. remap + copy (both orientations) + sort the new batch.
  dpu.wram().reset();
  const RemapTable remap(dpu, params, meta.num_remap);
  copy_remap(dpu, params, remap, MramLayout::sample_offset(), n_old, n,
             work_a, /*arcs=*/true);
  const std::uint64_t batch = external_sort(dpu, params, work_a, work_b,
                                            arcs_b);

  // 2. merge S* + batch arcs into the other scratch buffer (with new-flags),
  //    then install it as the new S*.  The sorted batch survives in `batch`
  //    for the counting pass.
  const std::uint64_t merge_dst = batch == work_a ? work_b : work_a;
  merge_with_flags(dpu, params, sorted, arcs_old, batch, arcs_b, merge_dst,
                   flags);
  copy_edges(dpu, params, merge_dst, sorted, arcs_total);
  meta.sorted_size = n;

  // 3. rebuild the region index over the merged S*.
  const std::uint64_t regions =
      build_regions(dpu, params, sorted, arcs_total, reg);
  meta.num_regions = regions;

  // 4. count the delta, 5. clear the flags for the next round.
  IntersectTally tally;
  const std::uint64_t instr0 = dpu.total_instructions();
  const std::uint64_t delta =
      count_incremental(dpu, params, sorted, arcs_total, flags, reg, regions,
                        batch, arcs_b, tally);
  store_tally(meta, tally, dpu.total_instructions() - instr0);
  clear_flags(dpu, params, flags, arcs_total);

  meta.triangle_count += delta;
  write_meta(dpu, params, meta);
}

}  // namespace pimtc::tc
