// Configuration of the PIM triangle-counting pipeline.
#pragma once

#include <cstdint>
#include <string>

#include "coloring/partition_plan.hpp"
#include "pim/config.hpp"
#include "tc/intersect.hpp"

namespace pimtc::tc {

struct TcConfig {
  /// Number of vertex colors C.  The run uses binom(C+2, 3) PIM cores
  /// (23 colors -> 2300 DPUs on the paper's 2560-DPU machine).  0 = auto:
  /// derive the largest C whose triplet count fits the machine's max_dpus,
  /// filling it instead of idling on a small default.
  std::uint32_t num_colors = 4;

  /// Triplet->DPU placement policy (see coloring/partition_plan.hpp):
  /// identity keeps the legacy triplet-index layout; kind_interleave packs
  /// equal-expected-load kinds into the same ranks; greedy_balance re-plans
  /// from the observed per-triplet loads of the first non-empty batch.
  color::PlacementPolicy placement = color::PlacementPolicy::kIdentity;

  /// Runtime rebalancing: every recount() re-plans placement from observed
  /// loads and migrates resident samples (modeled gather + scatter) when
  /// the projected scatter wire bytes shrink by at least rebalance_min_gain.
  /// Migration invalidates the persistent sorted arcs, so the next count is
  /// a full pass; estimates are unaffected either way.
  bool rebalance_enabled = false;
  double rebalance_min_gain = 1.05;

  /// PIM threads per core; the paper evaluates with 16.
  std::uint32_t tasklets = 16;

  /// Host CPU threads (0 = hardware concurrency); the paper uses 32.
  std::uint32_t host_threads = 0;

  /// Maximum edges stored per PIM core (the reservoir capacity M).
  /// 0 derives the largest capacity that fits the DRAM bank layout
  /// (sample + sort scratch + region index).  Table 4 sets this to a
  /// fraction of the expected per-core load 6|E|/C^2.
  std::uint64_t sample_capacity_edges = 0;

  /// Uniform (DOULION) keep probability p; 1.0 = exact mode.
  double uniform_p = 1.0;

  /// Misra-Gries high-degree remapping (paper Section 3.5).
  bool misra_gries_enabled = false;
  std::uint32_t mg_capacity = 1024;  ///< K: counters per host-thread summary
  std::uint32_t mg_top = 16;         ///< t: nodes remapped on the PIM cores

  /// Degree-ordered remap (requires misra_gries_enabled): instead of only
  /// the top `mg_top` hubs, freeze the remap table over the top
  /// min(mg_capacity, MramLayout::kMaxRemap) tracked nodes *ordered by
  /// estimated degree*, so higher-degree nodes get higher remapped ids and
  /// sorted-region sizes anti-correlate with degree — hub-incident edges
  /// then pair a tiny region with a huge one, which is exactly where the
  /// adaptive intersection's gallop pays off.  Any ordering is a node-id
  /// bijection, so estimates are bit-identical regardless of Misra-Gries
  /// estimation error.
  bool degree_ordered_remap = false;

  /// Intersection strategy of the counting kernels (tc/intersect.hpp):
  /// kAuto selects merge vs block-gallop per intersection from the cost
  /// model; kMerge/kGallop force one.  Counts are bit-identical under every
  /// policy — only modeled work moves.
  IntersectPolicy intersect = IntersectPolicy::kAuto;

  /// Auto-policy crossover margin: gallop when its modeled cost times this
  /// factor undercuts the linear merge.  Must be >= 1; higher values keep
  /// more intersections on the merge path.
  std::uint32_t gallop_margin = 3;

  /// WRAM RegionCache for the kernels' region lookups; false degrades every
  /// lookup to the full-table MRAM binary search (ablation baseline — the
  /// pre-cache kernel behavior).  Counts are identical either way.
  bool region_cache = true;

  /// Per-stream WRAM staging buffer, in edges, for the counting kernel.
  std::uint32_t wram_buffer_edges = 64;

  /// Dynamic-graph mode: after the first full count, recount() processes
  /// only newly added edges against a persistent sorted arc array on each
  /// core (paper Section 4.6).  Falls back to full recounting whenever a
  /// reservoir overflowed (the sample is no longer append-only).  With
  /// Misra-Gries enabled, the remap table freezes at the first count so the
  /// persistent state stays consistent.
  bool incremental = false;

  /// Seed for every randomized component (coloring hash, samplers).
  std::uint64_t seed = 42;

  /// Deterministic fault injection + recovery policy, parsed by
  /// pim::FaultSpec::parse (e.g. "seed=3,launch-permanent=0.01,
  /// recovery=rematerialize").  Empty = injection off: every path behaves
  /// and charges exactly as without this feature.
  std::string fault_spec;

  /// Per-DPU staging-buffer capacity, in edges, for batched ingestion.  A
  /// batch that stages more than this for some DPU is flushed in multiple
  /// bulk scatters (rounds); 0 = unbounded, i.e. one scatter per batch.
  std::uint64_t staging_capacity_edges = 0;

  /// Double-buffered ingestion: overlap host partitioning/staging of the
  /// next batch (or round) with the modeled DPU receive of the previous
  /// one.  Timing-only — the estimate is bit-identical either way.
  bool pipelined_ingest = true;

  /// Instruction-cost table used by the simulated kernels.
  pim::KernelCostModel cost{};
};

}  // namespace pimtc::tc
