// MRAM bank model: the 64 MB DRAM bank attached to one DPU.
//
// Functionally a flat byte array with bounds enforcement — capacity is the
// *architectural* constraint that motivates reservoir sampling (paper
// Section 3.3).  Storage is paged (64 KB pages allocated on first write) so
// simulating thousands of DPUs costs memory proportional to the bytes
// actually touched, even when data structures sit at capacity-derived
// offsets deep inside the bank.  Reads of never-written pages return zeros
// deterministically (like DRAM after a reset) without allocating the page.
// Access-call counters let tests and benches verify that hot paths batch
// their traffic instead of issuing per-record operations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace pimtc::pim {

class PimMemoryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class MramBank {
 public:
  explicit MramBank(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes),
        pages_((capacity_bytes + kPageBytes - 1) / kPageBytes) {}

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }

  /// Largest offset ever written + 1; proxy for bank occupancy.
  [[nodiscard]] std::uint64_t high_water() const noexcept {
    return high_water_;
  }

  /// Bytes of host memory actually backing this bank.
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
    return resident_pages_ * kPageBytes;
  }

  /// Lifetime access-call tallies (one per write()/read() invocation,
  /// regardless of size) — the observable difference between per-record
  /// loops and bulk transfers.
  [[nodiscard]] std::uint64_t write_calls() const noexcept {
    return write_calls_;
  }
  [[nodiscard]] std::uint64_t read_calls() const noexcept {
    return read_calls_;
  }

  void write(std::uint64_t offset, const void* src, std::size_t bytes);
  /// Reads `bytes` at `offset`; spans of never-written pages read as zeros.
  void read(std::uint64_t offset, void* dst, std::size_t bytes) const;

  /// Typed helpers for single records.
  template <typename T>
  void write_t(std::uint64_t offset, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(offset, &value, sizeof(T));
  }

  template <typename T>
  [[nodiscard]] T read_t(std::uint64_t offset) const {
    T value;
    read(offset, &value, sizeof(T));
    return value;
  }

  void clear() {
    for (auto& p : pages_) p.reset();
    resident_pages_ = 0;
    high_water_ = 0;
  }

 private:
  // pimtc-lint: allow(memory-budget) -- backing-page granularity of this sparse store, not the WRAM budget
  static constexpr std::uint64_t kPageBytes = 64 << 10;

  struct Page {
    std::uint8_t data[kPageBytes];
  };

  std::uint64_t capacity_;
  std::vector<std::unique_ptr<Page>> pages_;
  std::uint64_t resident_pages_ = 0;
  std::uint64_t high_water_ = 0;
  std::uint64_t write_calls_ = 0;
  mutable std::uint64_t read_calls_ = 0;
};

}  // namespace pimtc::pim
