#include "pim/mram.hpp"

#include <algorithm>
#include <cstring>
#include <string>

namespace pimtc::pim {

void MramBank::write(std::uint64_t offset, const void* src, std::size_t bytes) {
  if (offset + bytes > capacity_) {
    throw PimMemoryError("MRAM bank overflow: access up to byte " +
                         std::to_string(offset + bytes) +
                         " exceeds capacity " + std::to_string(capacity_));
  }
  ++write_calls_;
  const auto* s = static_cast<const std::uint8_t*>(src);
  std::uint64_t pos = offset;
  std::size_t remaining = bytes;
  while (remaining > 0) {
    const std::uint64_t page_idx = pos / kPageBytes;
    const std::uint64_t in_page = pos % kPageBytes;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, kPageBytes - in_page));
    auto& page = pages_[page_idx];
    if (!page) {
      page = std::make_unique<Page>();
      ++resident_pages_;
    }
    std::memcpy(page->data + in_page, s, chunk);
    s += chunk;
    pos += chunk;
    remaining -= chunk;
  }
  high_water_ = std::max(high_water_, offset + bytes);
}

void MramBank::read(std::uint64_t offset, void* dst, std::size_t bytes) const {
  if (offset + bytes > capacity_) {
    throw PimMemoryError("MRAM bank read past capacity");
  }
  ++read_calls_;
  auto* d = static_cast<std::uint8_t*>(dst);
  std::uint64_t pos = offset;
  std::size_t remaining = bytes;
  while (remaining > 0) {
    const std::uint64_t page_idx = pos / kPageBytes;
    const std::uint64_t in_page = pos % kPageBytes;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, kPageBytes - in_page));
    const auto& page = pages_[page_idx];
    if (page) {
      std::memcpy(d, page->data + in_page, chunk);
    } else {
      // Never-written page: deterministic zeros, no allocation side effect.
      std::memset(d, 0, chunk);
    }
    d += chunk;
    pos += chunk;
    remaining -= chunk;
  }
}

}  // namespace pimtc::pim
