#include "pim/dpu.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/math_util.hpp"

namespace pimtc::pim {

void Tasklet::instr(std::uint64_t n) noexcept {
  dpu_->phase_.instr[id_] += n;
  dpu_->lifetime_instr_ += n;
}

void Tasklet::mram_read(std::uint64_t mram_offset, void* dst,
                        std::size_t bytes) {
  dpu_->mram_.read(mram_offset, dst, bytes);
  dpu_->charge_dma(id_, bytes);
}

void Tasklet::mram_write(std::uint64_t mram_offset, const void* src,
                         std::size_t bytes) {
  dpu_->mram_.write(mram_offset, src, bytes);
  dpu_->charge_dma(id_, bytes);
}

void Dpu::charge_dma(std::uint32_t tasklet, std::size_t bytes) noexcept {
  const auto aligned = round_up(bytes, config_.dma_alignment_bytes);
  const double byte_cycles =
      static_cast<double>(aligned) * config_.dma_cycles_per_byte;
  phase_.dma_latency[tasklet] += config_.dma_setup_cycles + byte_cycles;
  phase_.engine_cycles += config_.dma_engine_cycles + byte_cycles;
  lifetime_dma_bytes_ += bytes;
  ++lifetime_dma_transfers_;
}

double Dpu::dma_cost_cycles(std::size_t bytes) const noexcept {
  const auto aligned =
      round_up(bytes, config_.dma_alignment_bytes);
  return config_.dma_setup_cycles +
         static_cast<double>(aligned) * config_.dma_cycles_per_byte;
}

void Dpu::parallel(std::uint32_t num_tasklets,
                   const std::function<void(Tasklet&)>& body) {
  if (num_tasklets == 0 || num_tasklets > config_.max_tasklets) {
    throw std::invalid_argument("Dpu::parallel: bad tasklet count");
  }
  if (phase_.active) {
    throw std::logic_error("Dpu::parallel: nested parallel sections");
  }
  phase_.active = true;
  phase_.instr.assign(num_tasklets, 0);
  phase_.dma_latency.assign(num_tasklets, 0.0);
  phase_.engine_cycles = 0.0;

  for (std::uint32_t t = 0; t < num_tasklets; ++t) {
    phase_.current_tasklet = t;
    Tasklet tasklet(*this, t);
    body(tasklet);
  }

  // Fold the phase into the cycle account (see header for the model).
  const double s = config_.pipeline_saturation_tasklets;
  std::uint64_t total = 0;
  double straggler_bound = 0.0;
  for (std::uint32_t t = 0; t < num_tasklets; ++t) {
    total += phase_.instr[t];
    straggler_bound =
        std::max(straggler_bound, static_cast<double>(phase_.instr[t]) * s +
                                      phase_.dma_latency[t]);
  }
  const double issue_bound =
      static_cast<double>(total) * std::max(1.0, s / num_tasklets);
  const double phase_cycles =
      std::max({issue_bound, straggler_bound, phase_.engine_cycles});
  cycles_ += phase_cycles;
  phase_.active = false;
}

void Dpu::serial_instr(std::uint64_t n) noexcept {
  // A lone context issues one instruction per `saturation` cycles only when
  // nothing else is resident; the receive path in the real kernel runs a
  // single tasklet, so charge the full pipeline-depth stall.
  cycles_ += static_cast<double>(n) *
             static_cast<double>(config_.pipeline_saturation_tasklets);
  lifetime_instr_ += n;
}

void Dpu::serial_dma(std::uint64_t bytes) noexcept {
  cycles_ += dma_cost_cycles(bytes);
  lifetime_dma_bytes_ += bytes;
}

void Dpu::charge_parallel_instr(std::uint64_t n,
                                std::uint32_t active_tasklets) noexcept {
  const double s =
      static_cast<double>(config_.pipeline_saturation_tasklets);
  const double t = static_cast<double>(
      std::max<std::uint32_t>(1, active_tasklets));
  cycles_ += static_cast<double>(n) * std::max(1.0, s / t);
  lifetime_instr_ += n;
}

void Dpu::charge_dma_bulk(std::uint64_t bytes,
                          std::uint32_t chunk_bytes) noexcept {
  if (bytes == 0) return;
  const std::uint64_t chunks = ceil_div(bytes, chunk_bytes);
  cycles_ += static_cast<double>(chunks) * config_.dma_setup_cycles +
             static_cast<double>(round_up(bytes, config_.dma_alignment_bytes)) *
                 config_.dma_cycles_per_byte;
  lifetime_dma_bytes_ += bytes;
}

}  // namespace pimtc::pim
