#include "pim/system.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/math_util.hpp"

namespace pimtc::pim {

PimSystem::PimSystem(const PimSystemConfig& config, std::uint32_t num_dpus,
                     ThreadPool* pool)
    : config_(config), pool_(pool ? pool : &ThreadPool::global()) {
  if (num_dpus == 0) {
    throw std::invalid_argument("PimSystem: need at least one DPU");
  }
  if (config_.dpus_per_rank == 0) {
    throw std::invalid_argument("PimSystem: dpus_per_rank must be >= 1");
  }
  if (num_dpus > config.max_dpus) {
    throw std::invalid_argument(
        "PimSystem: requested " + std::to_string(num_dpus) +
        " DPUs but the machine has " + std::to_string(config.max_dpus));
  }
  dpus_.reserve(num_dpus);
  for (std::uint32_t i = 0; i < num_dpus; ++i) {
    dpus_.push_back(std::make_unique<Dpu>(config_, i));
  }
  times_.setup_s += config_.setup_seconds(num_dpus);
}

double PimSystem::charge_bulk(std::span<const std::uint64_t> per_dpu_bytes,
                              bool push, double PimPhaseTimes::* phase) {
  if (per_dpu_bytes.size() != num_dpus()) {
    throw std::invalid_argument(
        "PimSystem: bulk transfer needs one span per DPU (got " +
        std::to_string(per_dpu_bytes.size()) + " for " +
        std::to_string(num_dpus()) + " DPUs)");
  }
  // Rank-parallel engine shape: within each rank every DPU's slot is padded
  // to the largest (8-byte aligned) span of that rank; ranks with no payload
  // stay idle and contribute no bandwidth share.
  std::uint64_t payload = 0;
  std::uint64_t wire = 0;
  std::uint32_t active_ranks = 0;
  const std::uint32_t n = num_dpus();
  for (std::uint32_t lo = 0; lo < n; lo += config_.dpus_per_rank) {
    const std::uint32_t hi = std::min(n, lo + config_.dpus_per_rank);
    std::uint64_t rank_max = 0;
    for (std::uint32_t d = lo; d < hi; ++d) {
      payload += per_dpu_bytes[d];
      rank_max = std::max(
          rank_max, round_up(per_dpu_bytes[d], config_.dma_alignment_bytes));
    }
    if (rank_max > 0) {
      ++active_ranks;
      wire += rank_max * (hi - lo);
    }
  }
  if (payload == 0) return 0.0;  // nothing staged anywhere: no driver call

  const double seconds =
      config_.bulk_transfer_seconds(wire, active_ranks, push);
  TransferStats& s = stats_;
  if (push) {
    ++s.push_transfers;
    s.push_payload_bytes += payload;
    s.push_wire_bytes += wire;
  } else {
    ++s.pull_transfers;
    s.pull_payload_bytes += payload;
    s.pull_wire_bytes += wire;
  }
  if (phase != nullptr) times_.*phase += seconds;
  return seconds;
}

double PimSystem::scatter(std::span<const ScatterSpan> spans,
                          double PimPhaseTimes::* phase) {
  if (spans.size() != num_dpus()) {
    throw std::invalid_argument("PimSystem::scatter: one span per DPU");
  }
  std::vector<std::uint64_t> bytes(spans.size());
  for (std::size_t d = 0; d < spans.size(); ++d) {
    bytes[d] = spans[d].bytes;
    if (spans[d].bytes > 0) {
      dpus_[d]->mram().write(spans[d].mram_offset, spans[d].src,
                             static_cast<std::size_t>(spans[d].bytes));
    }
  }
  return charge_scatter(bytes, phase);
}

double PimSystem::gather(std::span<const GatherSpan> spans,
                         double PimPhaseTimes::* phase) {
  if (spans.size() != num_dpus()) {
    throw std::invalid_argument("PimSystem::gather: one span per DPU");
  }
  std::vector<std::uint64_t> bytes(spans.size());
  for (std::size_t d = 0; d < spans.size(); ++d) {
    bytes[d] = spans[d].bytes;
    if (spans[d].bytes > 0) {
      dpus_[d]->mram().read(spans[d].mram_offset, spans[d].dst,
                            static_cast<std::size_t>(spans[d].bytes));
    }
  }
  return charge_gather(bytes, phase);
}

void PimSystem::charge_host(double seconds, double PimPhaseTimes::* phase) {
  times_.*phase += seconds;
}

void PimSystem::launch(const std::function<void(Dpu&)>& kernel,
                       double PimPhaseTimes::* phase) {
  launch_on(num_dpus(), kernel, phase);
}

void PimSystem::launch_on(std::uint32_t count,
                          const std::function<void(Dpu&)>& kernel,
                          double PimPhaseTimes::* phase) {
  if (count > num_dpus()) {
    throw std::invalid_argument("PimSystem::launch_on: count > num_dpus");
  }
  // Snapshot cycle counters so the kernel's cost is measured in isolation.
  std::vector<double> before(count);
  for (std::uint32_t i = 0; i < count; ++i) before[i] = dpus_[i]->cycles();

  pool_->parallel_for(count, [&](std::size_t i) {
    dpus_[i]->wram().reset();
    kernel(*dpus_[i]);
  });

  // Ranks boot sequentially: rank r's kernels start r * launch_skew later,
  // so the launch completes when the last rank's slowest DPU does.  This is
  // what makes placement matter to count time — a heavy core in a late rank
  // gates the whole launch, while the same core in rank 0 hides the skew.
  double completion_s = 0.0;
  std::uint32_t rank = 0;
  for (std::uint32_t lo = 0; lo < count; lo += config_.dpus_per_rank, ++rank) {
    const std::uint32_t hi = std::min(count, lo + config_.dpus_per_rank);
    double rank_max = 0.0;
    for (std::uint32_t i = lo; i < hi; ++i) {
      rank_max = std::max(rank_max, dpus_[i]->cycles() - before[i]);
    }
    completion_s = std::max(completion_s,
                            rank * config_.launch_skew_per_rank_s +
                                config_.cycles_to_seconds(rank_max));
  }
  times_.*phase += config_.launch_overhead_s + completion_s;
}

std::uint64_t PimSystem::total_mram_high_water() const noexcept {
  std::uint64_t total = 0;
  for (const auto& d : dpus_) total += d->mram().high_water();
  return total;
}

}  // namespace pimtc::pim
