#include "pim/system.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/math_util.hpp"

namespace pimtc::pim {

PimSystem::PimSystem(const PimSystemConfig& config, std::uint32_t num_dpus,
                     ThreadPool* pool)
    : config_(config), pool_(pool ? pool : &ThreadPool::global()) {
  if (num_dpus == 0) {
    throw std::invalid_argument("PimSystem: need at least one DPU");
  }
  if (config_.dpus_per_rank == 0) {
    throw std::invalid_argument("PimSystem: dpus_per_rank must be >= 1");
  }
  if (num_dpus > config.max_dpus) {
    throw std::invalid_argument(
        "PimSystem: requested " + std::to_string(num_dpus) +
        " DPUs but the machine has " + std::to_string(config.max_dpus));
  }
  dpus_.reserve(num_dpus);
  for (std::uint32_t i = 0; i < num_dpus; ++i) {
    dpus_.push_back(std::make_unique<Dpu>(config_, i));
  }
  times_.setup_s += config_.setup_seconds(num_dpus);
}

double PimSystem::charge_bulk(std::span<const std::uint64_t> per_dpu_bytes,
                              bool push, double PimPhaseTimes::* phase) {
  if (per_dpu_bytes.size() != num_dpus()) {
    throw std::invalid_argument(
        "PimSystem: bulk transfer needs one span per DPU (got " +
        std::to_string(per_dpu_bytes.size()) + " for " +
        std::to_string(num_dpus()) + " DPUs)");
  }
  // Rank-parallel engine shape: within each rank every DPU's slot is padded
  // to the largest (8-byte aligned) span of that rank; ranks with no payload
  // stay idle and contribute no bandwidth share.
  std::uint64_t payload = 0;
  std::uint64_t wire = 0;
  std::uint32_t active_ranks = 0;
  const std::uint32_t n = num_dpus();
  for (std::uint32_t lo = 0; lo < n; lo += config_.dpus_per_rank) {
    const std::uint32_t hi = std::min(n, lo + config_.dpus_per_rank);
    std::uint64_t rank_max = 0;
    for (std::uint32_t d = lo; d < hi; ++d) {
      payload += per_dpu_bytes[d];
      rank_max = std::max(
          rank_max, round_up(per_dpu_bytes[d], config_.dma_alignment_bytes));
    }
    if (rank_max > 0) {
      ++active_ranks;
      wire += rank_max * (hi - lo);
    }
  }
  if (payload == 0) return 0.0;  // nothing staged anywhere: no driver call

  double seconds = config_.bulk_transfer_seconds(wire, active_ranks, push);
  if (fault_plan_ != nullptr && fault_plan_->spec().checksums) {
    // XXH64 over the payload on both ends of the wire — the detection cost
    // of checksummed transfers, modeled at the configured rate.
    const double detect_s = static_cast<double>(payload) /
                            (fault_plan_->spec().checksum_gb_s * 1e9);
    seconds += detect_s;
    fault_counters_.checksum_bytes += payload;
    fault_counters_.detection_s += detect_s;
  }
  TransferStats& s = stats_;
  if (push) {
    ++s.push_transfers;
    s.push_payload_bytes += payload;
    s.push_wire_bytes += wire;
  } else {
    ++s.pull_transfers;
    s.pull_payload_bytes += payload;
    s.pull_wire_bytes += wire;
  }
  if (phase != nullptr) times_.*phase += seconds;
  return seconds;
}

double PimSystem::scatter(std::span<const ScatterSpan> spans,
                          double PimPhaseTimes::* phase) {
  if (spans.size() != num_dpus()) {
    throw std::invalid_argument("PimSystem::scatter: one span per DPU");
  }
  std::vector<std::uint64_t> bytes(spans.size());
  for (std::size_t d = 0; d < spans.size(); ++d) {
    bytes[d] = spans[d].bytes;
    if (spans[d].bytes > 0) {
      dpus_[d]->mram().write(spans[d].mram_offset, spans[d].src,
                             static_cast<std::size_t>(spans[d].bytes));
    }
  }
  double seconds = charge_scatter(bytes, phase);
  if (fault_plan_ != nullptr && fault_plan_->spec().transfer_corrupt > 0.0) {
    seconds += corrupt_scatter(spans, phase);
  }
  return seconds;
}

double PimSystem::gather(std::span<const GatherSpan> spans,
                         double PimPhaseTimes::* phase) {
  if (spans.size() != num_dpus()) {
    throw std::invalid_argument("PimSystem::gather: one span per DPU");
  }
  std::vector<std::uint64_t> bytes(spans.size());
  for (std::size_t d = 0; d < spans.size(); ++d) {
    bytes[d] = spans[d].bytes;
    if (spans[d].bytes > 0) {
      dpus_[d]->mram().read(spans[d].mram_offset, spans[d].dst,
                            static_cast<std::size_t>(spans[d].bytes));
    }
  }
  double seconds = charge_gather(bytes, phase);
  if (fault_plan_ != nullptr && fault_plan_->spec().transfer_corrupt > 0.0) {
    seconds += corrupt_gather(spans, phase);
  }
  return seconds;
}

void PimSystem::install_fault_plan(std::shared_ptr<const FaultPlan> plan) {
  fault_plan_ = std::move(plan);
  dead_.assign(num_dpus(), 0);
}

std::uint32_t PimSystem::dead_dpu_count() const noexcept {
  std::uint32_t n = 0;
  for (const std::uint8_t d : dead_) n += d;
  return n;
}

void PimSystem::flip_mram_bit(std::uint32_t dpu, std::uint64_t byte_offset,
                              std::uint32_t bit) {
  std::uint8_t byte = 0;
  dpus_[dpu]->mram().read(byte_offset, &byte, 1);
  byte = static_cast<std::uint8_t>(byte ^ (1u << bit));
  dpus_[dpu]->mram().write(byte_offset, &byte, 1);
}

// Single-bit wire corruption on a push: the bit lands flipped in MRAM.  With
// checksums the mismatch is always caught and the affected spans re-pushed
// (each repair round is charged and redrawn, so a repair can itself be hit);
// without checksums the corruption stays resident, silently.  The attempt
// cap only matters at corruption rates near 1.0 — the final re-push is then
// taken as delivered.
double PimSystem::corrupt_scatter(std::span<const ScatterSpan> spans,
                                  double PimPhaseTimes::* phase) {
  const FaultSpec& spec = fault_plan_->spec();
  constexpr std::uint32_t kMaxRepairRounds = 8;
  double extra = 0.0;
  std::vector<std::uint8_t> active(spans.size());
  for (std::size_t d = 0; d < spans.size(); ++d) active[d] = spans[d].bytes > 0;
  std::vector<std::uint64_t> redo(spans.size(), 0);
  for (std::uint32_t round = 0; round < kMaxRepairRounds; ++round) {
    const std::uint64_t step = fault_step_++;
    bool any = false;
    std::fill(redo.begin(), redo.end(), 0);
    for (std::size_t d = 0; d < spans.size(); ++d) {
      if (!active[d]) continue;
      const auto id = static_cast<std::uint32_t>(d);
      if (!fault_plan_->transfer_corrupt(step, id)) continue;
      const std::uint64_t bit =
          fault_plan_->corrupt_bit(step, id, spans[d].bytes * 8);
      flip_mram_bit(id, spans[d].mram_offset + bit / 8,
                    static_cast<std::uint32_t>(bit % 8));
      ++fault_counters_.transfer_corruptions;
      if (spec.checksums) {
        redo[d] = spans[d].bytes;
        any = true;
      }
    }
    if (!any) break;
    for (std::size_t d = 0; d < spans.size(); ++d) {
      active[d] = redo[d] > 0;
      if (redo[d] == 0) continue;
      dpus_[d]->mram().write(spans[d].mram_offset, spans[d].src,
                             static_cast<std::size_t>(spans[d].bytes));
      ++fault_counters_.transfer_retries;
    }
    extra += charge_bulk(redo, /*push=*/true, phase);
  }
  return extra;
}

// Pull-side counterpart: the flip lands in the host destination buffer and a
// detected mismatch re-reads the (intact) MRAM content.
double PimSystem::corrupt_gather(std::span<const GatherSpan> spans,
                                 double PimPhaseTimes::* phase) {
  const FaultSpec& spec = fault_plan_->spec();
  constexpr std::uint32_t kMaxRepairRounds = 8;
  double extra = 0.0;
  std::vector<std::uint8_t> active(spans.size());
  for (std::size_t d = 0; d < spans.size(); ++d) active[d] = spans[d].bytes > 0;
  std::vector<std::uint64_t> redo(spans.size(), 0);
  for (std::uint32_t round = 0; round < kMaxRepairRounds; ++round) {
    const std::uint64_t step = fault_step_++;
    bool any = false;
    std::fill(redo.begin(), redo.end(), 0);
    for (std::size_t d = 0; d < spans.size(); ++d) {
      if (!active[d]) continue;
      const auto id = static_cast<std::uint32_t>(d);
      if (!fault_plan_->transfer_corrupt(step, id)) continue;
      const std::uint64_t bit =
          fault_plan_->corrupt_bit(step, id, spans[d].bytes * 8);
      auto* bytes = static_cast<std::uint8_t*>(spans[d].dst);
      bytes[bit / 8] = static_cast<std::uint8_t>(bytes[bit / 8] ^
                                                 (1u << (bit % 8)));
      ++fault_counters_.transfer_corruptions;
      if (spec.checksums) {
        redo[d] = spans[d].bytes;
        any = true;
      }
    }
    if (!any) break;
    for (std::size_t d = 0; d < spans.size(); ++d) {
      active[d] = redo[d] > 0;
      if (redo[d] == 0) continue;
      dpus_[d]->mram().read(spans[d].mram_offset, spans[d].dst,
                            static_cast<std::size_t>(spans[d].bytes));
      ++fault_counters_.transfer_retries;
    }
    extra += charge_bulk(redo, /*push=*/false, phase);
  }
  return extra;
}

PimSystem::LaunchReport PimSystem::launch_checked(
    std::span<const std::uint32_t> dpu_ids,
    const std::function<void(Dpu&)>& kernel, double PimPhaseTimes::* phase) {
  LaunchReport report;
  if (dpu_ids.empty()) return report;
  const std::uint64_t step = fault_plan_ != nullptr ? fault_step_++ : 0;
  if (fault_plan_ != nullptr) {
    // Whole-rank outages first: a rank touched by this launch can die,
    // taking every bank in it — listed in this launch or not.
    std::vector<std::uint8_t> touched(num_ranks(), 0);
    for (const std::uint32_t id : dpu_ids) touched[rank_of(id)] = 1;
    for (std::uint32_t r = 0; r < touched.size(); ++r) {
      if (!touched[r] || !fault_plan_->rank_outage(step, r)) continue;
      const std::uint32_t lo = r * config_.dpus_per_rank;
      const std::uint32_t hi = std::min(num_dpus(), lo + config_.dpus_per_rank);
      bool newly_dead = false;
      for (std::uint32_t d = lo; d < hi; ++d) {
        if (dead_[d]) continue;
        dead_[d] = 1;
        ++fault_counters_.dead_dpus;
        newly_dead = true;
      }
      if (newly_dead) ++fault_counters_.rank_outages;
    }
  }
  std::vector<std::uint32_t> run;
  run.reserve(dpu_ids.size());
  for (const std::uint32_t id : dpu_ids) {
    if (id >= num_dpus()) {
      throw std::invalid_argument("PimSystem::launch_checked: bad DPU id");
    }
    if (fault_plan_ != nullptr) {
      if (dead_[id]) {
        report.dead.push_back(id);
        continue;
      }
      if (fault_plan_->launch_permanent(step, id)) {
        dead_[id] = 1;
        ++fault_counters_.dead_dpus;
        report.dead.push_back(id);
        continue;
      }
      if (fault_plan_->launch_transient(step, id)) {
        ++fault_counters_.launch_transients;
        report.transient.push_back(id);
        continue;
      }
    }
    report.ok.push_back(id);
    run.push_back(id);
  }
  // Execute only the surviving banks — a faulted bank's device state is
  // never touched, so a retry on a later step replays the identical input.
  std::vector<double> before(run.size());
  for (std::size_t i = 0; i < run.size(); ++i) {
    before[i] = dpus_[run[i]]->cycles();
  }
  pool_->parallel_for(run.size(), [&](std::size_t i) {
    dpus_[run[i]]->wram().reset();
    kernel(*dpus_[run[i]]);
  });
  // Completion uses absolute rank indices so the boot-skew model matches
  // launch() even when early ranks have nothing to run.
  std::vector<double> rank_max(num_ranks(), -1.0);
  for (std::size_t i = 0; i < run.size(); ++i) {
    double& m = rank_max[rank_of(run[i])];
    m = std::max(m, dpus_[run[i]]->cycles() - before[i]);
  }
  double completion_s = 0.0;
  for (std::uint32_t r = 0; r < rank_max.size(); ++r) {
    if (rank_max[r] < 0.0) continue;
    completion_s = std::max(completion_s,
                            r * config_.launch_skew_per_rank_s +
                                config_.cycles_to_seconds(rank_max[r]));
  }
  times_.*phase += config_.launch_overhead_s + completion_s;
  return report;
}

void PimSystem::charge_host(double seconds, double PimPhaseTimes::* phase) {
  times_.*phase += seconds;
}

void PimSystem::launch(const std::function<void(Dpu&)>& kernel,
                       double PimPhaseTimes::* phase) {
  launch_on(num_dpus(), kernel, phase);
}

void PimSystem::launch_on(std::uint32_t count,
                          const std::function<void(Dpu&)>& kernel,
                          double PimPhaseTimes::* phase) {
  if (count > num_dpus()) {
    throw std::invalid_argument("PimSystem::launch_on: count > num_dpus");
  }
  // Snapshot cycle counters so the kernel's cost is measured in isolation.
  std::vector<double> before(count);
  for (std::uint32_t i = 0; i < count; ++i) before[i] = dpus_[i]->cycles();

  pool_->parallel_for(count, [&](std::size_t i) {
    dpus_[i]->wram().reset();
    kernel(*dpus_[i]);
  });

  // Ranks boot sequentially: rank r's kernels start r * launch_skew later,
  // so the launch completes when the last rank's slowest DPU does.  This is
  // what makes placement matter to count time — a heavy core in a late rank
  // gates the whole launch, while the same core in rank 0 hides the skew.
  double completion_s = 0.0;
  std::uint32_t rank = 0;
  for (std::uint32_t lo = 0; lo < count; lo += config_.dpus_per_rank, ++rank) {
    const std::uint32_t hi = std::min(count, lo + config_.dpus_per_rank);
    double rank_max = 0.0;
    for (std::uint32_t i = lo; i < hi; ++i) {
      rank_max = std::max(rank_max, dpus_[i]->cycles() - before[i]);
    }
    completion_s = std::max(completion_s,
                            rank * config_.launch_skew_per_rank_s +
                                config_.cycles_to_seconds(rank_max));
  }
  times_.*phase += config_.launch_overhead_s + completion_s;
}

std::uint64_t PimSystem::total_mram_high_water() const noexcept {
  std::uint64_t total = 0;
  for (const auto& d : dpus_) total += d->mram().high_water();
  return total;
}

}  // namespace pimtc::pim
