#include "pim/system.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>

namespace pimtc::pim {

PimSystem::PimSystem(const PimSystemConfig& config, std::uint32_t num_dpus,
                     ThreadPool* pool)
    : config_(config), pool_(pool ? pool : &ThreadPool::global()) {
  if (num_dpus == 0) {
    throw std::invalid_argument("PimSystem: need at least one DPU");
  }
  if (num_dpus > config.max_dpus) {
    throw std::invalid_argument(
        "PimSystem: requested " + std::to_string(num_dpus) +
        " DPUs but the machine has " + std::to_string(config.max_dpus));
  }
  dpus_.reserve(num_dpus);
  for (std::uint32_t i = 0; i < num_dpus; ++i) {
    dpus_.push_back(std::make_unique<Dpu>(config_, i));
  }
  times_.setup_s += config_.setup_seconds(num_dpus);
}

void PimSystem::charge_push(std::uint64_t total_bytes,
                            std::uint32_t dpus_involved,
                            double PimPhaseTimes::* phase) {
  times_.*phase +=
      config_.transfer_seconds(total_bytes, dpus_involved, /*push=*/true);
}

void PimSystem::charge_pull(std::uint64_t total_bytes,
                            std::uint32_t dpus_involved,
                            double PimPhaseTimes::* phase) {
  times_.*phase +=
      config_.transfer_seconds(total_bytes, dpus_involved, /*push=*/false);
}

void PimSystem::charge_host(double seconds, double PimPhaseTimes::* phase) {
  times_.*phase += seconds;
}

void PimSystem::launch(const std::function<void(Dpu&)>& kernel,
                       double PimPhaseTimes::* phase) {
  launch_on(num_dpus(), kernel, phase);
}

void PimSystem::launch_on(std::uint32_t count,
                          const std::function<void(Dpu&)>& kernel,
                          double PimPhaseTimes::* phase) {
  if (count > num_dpus()) {
    throw std::invalid_argument("PimSystem::launch_on: count > num_dpus");
  }
  // Snapshot cycle counters so the kernel's cost is measured in isolation.
  std::vector<double> before(count);
  for (std::uint32_t i = 0; i < count; ++i) before[i] = dpus_[i]->cycles();

  pool_->parallel_for(count, [&](std::size_t i) {
    dpus_[i]->wram().reset();
    kernel(*dpus_[i]);
  });

  double max_cycles = 0.0;
  for (std::uint32_t i = 0; i < count; ++i) {
    max_cycles = std::max(max_cycles, dpus_[i]->cycles() - before[i]);
  }
  times_.*phase +=
      config_.launch_overhead_s + config_.cycles_to_seconds(max_cycles);
}

std::uint64_t PimSystem::total_mram_high_water() const noexcept {
  std::uint64_t total = 0;
  for (const auto& d : dpus_) total += d->mram().high_water();
  return total;
}

}  // namespace pimtc::pim
