// WRAM scratchpad model: the 64 KB working memory of one DPU.
//
// Kernels must stage MRAM data through WRAM buffers; the arena enforces the
// real capacity so a kernel that would not fit on hardware fails loudly in
// the simulator too (e.g. 16 tasklets x oversized buffers).  Allocation is
// bump-pointer with 8-byte alignment, released wholesale by reset() at
// kernel start, mirroring how UPMEM kernels statically place buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pim/mram.hpp"

namespace pimtc::pim {

class WramArena {
 public:
  explicit WramArena(std::uint32_t capacity_bytes)
      : storage_(capacity_bytes) {}

  /// Allocates `count` elements of T; throws PimMemoryError when the
  /// scratchpad is exhausted (a real kernel would fail to link/boot).
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t bytes = count * sizeof(T);
    const std::size_t aligned = (used_ + alignof(std::max_align_t) - 1) &
                                ~(alignof(std::max_align_t) - 1);
    if (aligned + bytes > storage_.size()) {
      throw PimMemoryError("WRAM exhausted: request of " +
                           std::to_string(bytes) + " bytes with " +
                           std::to_string(storage_.size() - aligned) +
                           " free");
    }
    T* ptr = reinterpret_cast<T*>(storage_.data() + aligned);
    used_ = aligned + bytes;
    if (used_ > high_water_) high_water_ = used_;
    return {ptr, count};
  }

  void reset() noexcept { used_ = 0; }

  [[nodiscard]] std::size_t capacity() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

 private:
  std::vector<std::uint8_t> storage_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace pimtc::pim
