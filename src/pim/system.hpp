// PimSystem: a set of allocated DPUs plus the host-side transfer engine.
//
// Mirrors the UPMEM host API surface the paper's implementation uses:
// allocate a DPU set, push data to each DPU's MRAM (rank-parallel batched
// transfers), launch a kernel on every DPU, pull results back.  Each of
// those steps returns / accumulates *simulated* seconds from the timing
// model in PimSystemConfig, split into the paper's three phases:
//
//   Setup           — allocation + program load (+ host-side init, added by
//                     the orchestrator),
//   Sample creation — batched host->MRAM edge transfers + DPU-side receive,
//   Triangle count  — kernel execution + result gather.
//
// Functional execution of the per-DPU kernels is parallelized across host
// threads; simulated kernel time is the max over DPUs, matching a real
// launch that waits for the slowest DPU.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "pim/config.hpp"
#include "pim/dpu.hpp"

namespace pimtc::pim {

/// Wall-clock of one run, split as in Section 4.1 of the paper.  The three
/// named phases hold *simulated* time (device cycles + modeled transfers);
/// `host_s` holds *measured* host-CPU seconds (file streaming, batch
/// building, Misra-Gries) on the local machine — kept separate so projection
/// to other host hardware stays possible (see bench/fig7).
struct PimPhaseTimes {
  double setup_s = 0.0;
  double sample_creation_s = 0.0;
  double count_s = 0.0;
  double host_s = 0.0;

  [[nodiscard]] double total_s() const noexcept {
    return setup_s + sample_creation_s + count_s + host_s;
  }

  PimPhaseTimes& operator+=(const PimPhaseTimes& other) noexcept {
    setup_s += other.setup_s;
    sample_creation_s += other.sample_creation_s;
    count_s += other.count_s;
    host_s += other.host_s;
    return *this;
  }
};

class PimSystem {
 public:
  /// Allocates `num_dpus` DPUs (throws if the machine has fewer) and charges
  /// the allocation + program-load cost to the setup phase.
  PimSystem(const PimSystemConfig& config, std::uint32_t num_dpus,
            ThreadPool* pool = nullptr);

  [[nodiscard]] std::uint32_t num_dpus() const noexcept {
    return static_cast<std::uint32_t>(dpus_.size());
  }
  [[nodiscard]] Dpu& dpu(std::uint32_t i) noexcept { return *dpus_[i]; }
  [[nodiscard]] const Dpu& dpu(std::uint32_t i) const noexcept {
    return *dpus_[i];
  }
  [[nodiscard]] const PimSystemConfig& config() const noexcept {
    return config_;
  }

  /// Charges one rank-parallel push of `total_bytes` spread over
  /// `dpus_involved` DPUs to the given phase.  (The functional payload
  /// delivery is done by the caller through dpu(i).mram() or the receive
  /// hook — the system only owns the timing.)
  void charge_push(std::uint64_t total_bytes, std::uint32_t dpus_involved,
                   double PimPhaseTimes::* phase);
  void charge_pull(std::uint64_t total_bytes, std::uint32_t dpus_involved,
                   double PimPhaseTimes::* phase);

  /// Adds host-measured seconds (file reading, batch building, ...) to a
  /// phase.
  void charge_host(double seconds, double PimPhaseTimes::* phase);

  /// Runs `kernel(dpu)` on every DPU (host-thread parallel).  Simulated
  /// duration = launch overhead + max over DPUs of the cycles the kernel
  /// charged; accumulated into `phase`.
  void launch(const std::function<void(Dpu&)>& kernel,
              double PimPhaseTimes::* phase);

  /// Same, but only over DPUs [0, count).
  void launch_on(std::uint32_t count, const std::function<void(Dpu&)>& kernel,
                 double PimPhaseTimes::* phase);

  [[nodiscard]] const PimPhaseTimes& times() const noexcept { return times_; }
  void reset_times() noexcept { times_ = {}; }

  /// Sum of MRAM high-water marks — how much DRAM-bank memory the run used.
  [[nodiscard]] std::uint64_t total_mram_high_water() const noexcept;

 private:
  PimSystemConfig config_;
  std::vector<std::unique_ptr<Dpu>> dpus_;
  ThreadPool* pool_;
  PimPhaseTimes times_;
};

}  // namespace pimtc::pim
