// PimSystem: a set of allocated DPUs plus the host-side transfer engine.
//
// Mirrors the UPMEM host API surface the paper's implementation uses:
// allocate a DPU set, push data to each DPU's MRAM (rank-parallel batched
// transfers), launch a kernel on every DPU, pull results back.  Each of
// those steps returns / accumulates *simulated* seconds from the timing
// model in PimSystemConfig, split into the paper's three phases:
//
//   Setup           — allocation + program load (+ host-side init, added by
//                     the orchestrator),
//   Sample creation — batched host->MRAM edge transfers + DPU-side receive,
//   Triangle count  — kernel execution + result gather.
//
// The machine is organized as *ranks* of `dpus_per_rank` DPUs.  A bulk
// transfer (scatter/gather) moves one byte span per DPU in a single modeled
// operation, the way dpu_push_xfer does: within each rank every DPU's slot
// is padded to the slowest (largest) span — the rank-parallel engine moves
// the same number of bytes to every DPU of a rank — and ranks transfer in
// parallel subject to the per-rank / aggregate bandwidth caps.  The
// payload-vs-wire gap from that padding is tracked in TransferStats.
//
// Functional execution of the per-DPU kernels is parallelized across host
// threads; simulated kernel time is the max over DPUs, matching a real
// launch that waits for the slowest DPU.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "pim/config.hpp"
#include "pim/dpu.hpp"
#include "pim/fault.hpp"
#include "pim/transfer_stats.hpp"

namespace pimtc::pim {

/// Wall-clock of one run, split as in Section 4.1 of the paper.  The three
/// named phases hold *simulated* time (device cycles + modeled transfers);
/// `host_s` holds *measured* host-CPU seconds (file streaming, batch
/// building, Misra-Gries) on the local machine — kept separate so projection
/// to other host hardware stays possible (see bench/fig7).
struct PimPhaseTimes {
  double setup_s = 0.0;
  double sample_creation_s = 0.0;
  double count_s = 0.0;
  double host_s = 0.0;

  [[nodiscard]] double total_s() const noexcept {
    return setup_s + sample_creation_s + count_s + host_s;
  }

  PimPhaseTimes& operator+=(const PimPhaseTimes& other) noexcept {
    setup_s += other.setup_s;
    sample_creation_s += other.sample_creation_s;
    count_s += other.count_s;
    host_s += other.host_s;
    return *this;
  }
};

/// One DPU's slice of a bulk scatter: `bytes` copied from `src` into that
/// DPU's MRAM at `mram_offset`.  `bytes == 0` means the DPU sits the
/// transfer out (its rank slot still gets padded if a peer transfers).
struct ScatterSpan {
  std::uint64_t mram_offset = 0;
  const void* src = nullptr;
  std::uint64_t bytes = 0;
};

/// One DPU's slice of a bulk gather: `bytes` copied from that DPU's MRAM at
/// `mram_offset` into `dst`.
struct GatherSpan {
  std::uint64_t mram_offset = 0;
  void* dst = nullptr;
  std::uint64_t bytes = 0;
};

class PimSystem {
 public:
  /// Allocates `num_dpus` DPUs (throws if the machine has fewer) and charges
  /// the allocation + program-load cost to the setup phase.
  PimSystem(const PimSystemConfig& config, std::uint32_t num_dpus,
            ThreadPool* pool = nullptr);

  [[nodiscard]] std::uint32_t num_dpus() const noexcept {
    return static_cast<std::uint32_t>(dpus_.size());
  }
  [[nodiscard]] Dpu& dpu(std::uint32_t i) noexcept { return *dpus_[i]; }
  [[nodiscard]] const Dpu& dpu(std::uint32_t i) const noexcept {
    return *dpus_[i];
  }
  [[nodiscard]] const PimSystemConfig& config() const noexcept {
    return config_;
  }

  // ---- rank topology --------------------------------------------------------
  [[nodiscard]] std::uint32_t dpus_per_rank() const noexcept {
    return config_.dpus_per_rank;
  }
  [[nodiscard]] std::uint32_t num_ranks() const noexcept {
    return config_.ranks_for(num_dpus());
  }
  [[nodiscard]] std::uint32_t rank_of(std::uint32_t dpu) const noexcept {
    return dpu / config_.dpus_per_rank;
  }

  // ---- bulk transfers -------------------------------------------------------
  /// Moves one span per DPU (spans.size() == num_dpus()) host->MRAM in a
  /// single modeled rank-parallel transfer and returns the modeled seconds.
  /// When `phase` is non-null the time is charged to it; a null `phase`
  /// only records TransferStats and leaves charging to the caller (the
  /// pipelined ingest path overlaps this time with host work).
  double scatter(std::span<const ScatterSpan> spans,
                 double PimPhaseTimes::* phase);

  /// MRAM->host counterpart of scatter().
  double gather(std::span<const GatherSpan> spans,
                double PimPhaseTimes::* phase);

  /// Timing/accounting core of scatter()/gather() for callers that deliver
  /// the payload themselves (e.g. coalesced reservoir writes): models one
  /// bulk transfer of `per_dpu_bytes[i]` payload to/from DPU i with
  /// per-rank slowest-DPU padding.  Returns the modeled seconds; `phase`
  /// semantics as in scatter().
  double charge_scatter(std::span<const std::uint64_t> per_dpu_bytes,
                        double PimPhaseTimes::* phase) {
    return charge_bulk(per_dpu_bytes, /*push=*/true, phase);
  }
  double charge_gather(std::span<const std::uint64_t> per_dpu_bytes,
                       double PimPhaseTimes::* phase) {
    return charge_bulk(per_dpu_bytes, /*push=*/false, phase);
  }

  /// Records device seconds the pipelined ingest hid under host work.
  void note_overlap_saved(double seconds) noexcept {
    stats_.overlap_saved_s += seconds;
  }

  [[nodiscard]] const TransferStats& transfer_stats() const noexcept {
    return stats_;
  }

  /// Adds host-measured seconds (file reading, batch building, ...) to a
  /// phase.
  void charge_host(double seconds, double PimPhaseTimes::* phase);

  /// Runs `kernel(dpu)` on every DPU (host-thread parallel).  Simulated
  /// duration = launch overhead + max over ranks of (per-rank boot skew +
  /// the slowest kernel in the rank); accumulated into `phase`.
  void launch(const std::function<void(Dpu&)>& kernel,
              double PimPhaseTimes::* phase);

  /// Same, but only over DPUs [0, count).
  void launch_on(std::uint32_t count, const std::function<void(Dpu&)>& kernel,
                 double PimPhaseTimes::* phase);

  // ---- fault injection ------------------------------------------------------
  /// Per-bank outcome of one launch_checked() call.  Faulted banks never ran
  /// the kernel, so their device state is untouched and a retry replays the
  /// identical input.
  struct LaunchReport {
    std::vector<std::uint32_t> ok;
    std::vector<std::uint32_t> transient;  ///< launch failed, bank survives
    std::vector<std::uint32_t> dead;       ///< bank permanently lost
  };

  /// Arms deterministic fault injection.  Until called (the default), every
  /// path in this class behaves — and charges — exactly as before.
  void install_fault_plan(std::shared_ptr<const FaultPlan> plan);
  [[nodiscard]] const FaultPlan* fault_plan() const noexcept {
    return fault_plan_.get();
  }
  [[nodiscard]] bool dpu_dead(std::uint32_t i) const noexcept {
    return i < dead_.size() && dead_[i] != 0;
  }
  [[nodiscard]] std::uint32_t dead_dpu_count() const noexcept;
  [[nodiscard]] const FaultCounters& fault_counters() const noexcept {
    return fault_counters_;
  }

  /// launch() restricted to an explicit bank list, with fault semantics:
  /// rank outages and per-bank launch faults are drawn for this launch step,
  /// the kernel runs only on the surviving banks (charged with the usual
  /// overhead + absolute-rank boot skew), and everything else is reported.
  /// Callers own the recovery policy (see tc::PimTriangleCounter).
  LaunchReport launch_checked(std::span<const std::uint32_t> dpu_ids,
                              const std::function<void(Dpu&)>& kernel,
                              double PimPhaseTimes::* phase);

  [[nodiscard]] const PimPhaseTimes& times() const noexcept { return times_; }
  /// Zeroes the phase times *and* the transfer diagnostics (both are
  /// "accumulated since the last reset" views of the same run).
  void reset_times() noexcept {
    times_ = {};
    stats_ = {};
  }

  /// Sum of MRAM high-water marks — how much DRAM-bank memory the run used.
  [[nodiscard]] std::uint64_t total_mram_high_water() const noexcept;

 private:
  double charge_bulk(std::span<const std::uint64_t> per_dpu_bytes, bool push,
                     double PimPhaseTimes::* phase);
  void flip_mram_bit(std::uint32_t dpu, std::uint64_t byte_offset,
                     std::uint32_t bit);
  double corrupt_scatter(std::span<const ScatterSpan> spans,
                         double PimPhaseTimes::* phase);
  double corrupt_gather(std::span<const GatherSpan> spans,
                        double PimPhaseTimes::* phase);

  PimSystemConfig config_;
  std::vector<std::unique_ptr<Dpu>> dpus_;
  ThreadPool* pool_;
  PimPhaseTimes times_;
  TransferStats stats_;

  std::shared_ptr<const FaultPlan> fault_plan_;
  std::vector<std::uint8_t> dead_;  ///< per-bank permanent-failure flags
  FaultCounters fault_counters_;
  /// Serial operation index feeding the deterministic draws: each bulk
  /// transfer, repair attempt, and checked launch consumes one step.
  std::uint64_t fault_step_ = 0;
};

}  // namespace pimtc::pim
