// Host<->MRAM transfer diagnostics accumulated by the rank-aware runtime.
//
// Split into its own header so the engine-layer report can embed the struct
// without pulling in the full PimSystem (DPUs, thread pool, ...).
#pragma once

#include <cstdint>

namespace pimtc::pim {

/// `payload` is what callers asked to move, `wire` what the rank-parallel
/// engine actually moved after padding each rank to its slowest DPU (the
/// dpu_push_xfer shape); `overlap_saved_s` is modeled device time hidden
/// under host work by the pipelined ingestion (see tc::PimTriangleCounter).
struct TransferStats {
  std::uint64_t push_transfers = 0;
  std::uint64_t push_payload_bytes = 0;
  std::uint64_t push_wire_bytes = 0;
  std::uint64_t pull_transfers = 0;
  std::uint64_t pull_payload_bytes = 0;
  std::uint64_t pull_wire_bytes = 0;
  double overlap_saved_s = 0.0;

  /// Wire/payload padding factor of the push direction (1.0 = no padding,
  /// i.e. every DPU of every rank moved the same number of bytes).
  [[nodiscard]] double push_padding() const noexcept {
    return push_payload_bytes == 0
               ? 1.0
               : static_cast<double>(push_wire_bytes) /
                     static_cast<double>(push_payload_bytes);
  }
};

}  // namespace pimtc::pim
