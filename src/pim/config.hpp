// Configuration and calibration constants of the PIM system model.
//
// The simulator is *functional* (kernels really execute and produce exact
// results) with an attached first-order timing model.  The default constants
// describe the paper's evaluation platform — 20 P21 UPMEM DIMMs, 2560 DPUs —
// with per-component numbers taken from the public UPMEM characterization
// literature (Gómez-Luna et al., "Benchmarking a New Paradigm: Experimental
// Analysis and Characterization of a Real Processing-in-Memory System",
// IEEE Access 2022) and the UPMEM user manual:
//
//  * DPU: 32-bit in-order core, 14-stage pipeline, fine-grained
//    multithreading over software "tasklets".  One tasklet can issue at most
//    one instruction every 11 cycles; >= 11 resident tasklets sustain
//    1 instr/cycle aggregate.  350 MHz.
//  * MRAM (the 64 MB DRAM bank) is reachable only through DMA to the 64 KB
//    WRAM scratchpad; a transfer costs roughly a fixed ~77-cycle setup plus
//    ~0.5 cycles/byte (saturating near 700 MB/s per DPU).
//  * Host <-> MRAM transfers are performed rank-parallel by the host CPU;
//    aggregate bandwidth saturates in the ~6 GB/s range for parallel
//    transfers across many ranks, with a per-batch software latency.
//  * DPU allocation + program (IRAM) load is a host-side cost that grows
//    with the number of ranks touched — this is what makes small graphs
//    regress at high core counts in Figure 4.
//
// Everything is a plain struct field so ablation benches can sweep it.
#pragma once

#include <cstdint>

namespace pimtc::pim {

struct PimSystemConfig {
  // ---- topology -----------------------------------------------------------
  std::uint32_t dpus_per_rank = 64;   ///< 8 chips x 8 DPUs per rank
  std::uint32_t max_dpus = 2560;      ///< 20 DIMMs x 2 ranks x 64 DPUs
  std::uint64_t mram_bytes = 64ull << 20;  ///< DRAM bank per DPU
  std::uint32_t wram_bytes = 64u << 10;    ///< scratchpad per DPU
  std::uint32_t iram_bytes = 24u << 10;    ///< instruction memory per DPU
  std::uint32_t max_tasklets = 24;         ///< hardware thread contexts

  // ---- DPU pipeline -------------------------------------------------------
  double dpu_mhz = 350.0;
  /// A single tasklet issues one instruction every `pipeline_depth` cycles;
  /// this many resident tasklets are needed for full 1-instr/cycle issue.
  std::uint32_t pipeline_saturation_tasklets = 11;

  // ---- MRAM <-> WRAM DMA --------------------------------------------------
  /// Latency observed by the *issuing tasklet* per transfer; hidden by the
  /// other resident tasklets (fine-grained multithreading).
  double dma_setup_cycles = 77.0;
  /// Shared-engine occupancy per transfer (request handling); transfers
  /// from different tasklets serialize only on this plus the byte time.
  double dma_engine_cycles = 24.0;
  double dma_cycles_per_byte = 0.5;
  /// DMA transfer size granularity (hardware moves 8-byte aligned bursts).
  std::uint32_t dma_alignment_bytes = 8;

  // ---- host <-> MRAM transfer engine -------------------------------------
  /// Aggregate push bandwidth when all ranks transfer in parallel.
  double host_push_gb_s = 6.0;
  /// Gather direction is slower on real hardware.
  double host_pull_gb_s = 4.7;
  /// Fixed software cost per transfer batch (driver + rank programming).
  double host_xfer_latency_s = 30e-6;
  /// Per-rank bandwidth share; with few ranks the aggregate cannot reach the
  /// cap above: effective_bw = min(cap, ranks * per_rank).
  double host_per_rank_gb_s = 0.35;

  // ---- setup phase --------------------------------------------------------
  double alloc_base_s = 2.0e-3;      ///< dpu_alloc() fixed cost
  double alloc_per_rank_s = 0.9e-3;  ///< rank discovery / reset
  double program_load_per_rank_s = 0.35e-3;  ///< broadcast IRAM image
  double launch_overhead_s = 25e-6;  ///< per kernel launch (boot + fault poll)
  /// The host boots ranks sequentially (one boot-register broadcast per
  /// rank), so rank r starts ~r * this after rank 0.  A launch completes at
  /// max over ranks of (start skew + slowest kernel in the rank) — placing
  /// heavy cores in early ranks hides the skew under their longer kernels.
  /// A per-rank boot broadcast is one control-interface write (~µs); small
  /// next to the kernels (36 ranks ≈ 35 µs) but it is what makes placement
  /// visible to the count phase.
  double launch_skew_per_rank_s = 1e-6;

  /// Number of ranks needed for `dpus` DPUs.
  [[nodiscard]] std::uint32_t ranks_for(std::uint32_t dpus) const noexcept {
    return (dpus + dpus_per_rank - 1) / dpus_per_rank;
  }

  /// Seconds for one DPU-side cycle count.
  [[nodiscard]] double cycles_to_seconds(double cycles) const noexcept {
    return cycles / (dpu_mhz * 1e6);
  }

  /// Host->MRAM (push) or MRAM->host (pull) batch transfer time.
  [[nodiscard]] double transfer_seconds(std::uint64_t total_bytes,
                                        std::uint32_t dpus_involved,
                                        bool push) const noexcept {
    return bulk_transfer_seconds(total_bytes,
                                 ranks_for(dpus_involved == 0 ? 1 : dpus_involved),
                                 push);
  }

  /// Wire time of one rank-parallel bulk transfer (dpu_push_xfer /
  /// dpu_sync_copy shape): `wire_bytes` is the total moved *after* per-rank
  /// padding to the slowest DPU, `active_ranks` the ranks with a non-empty
  /// payload.  Each active rank contributes its bandwidth share up to the
  /// aggregate cap; a transfer touching no rank still pays the software
  /// latency (driver call + rank programming).
  [[nodiscard]] double bulk_transfer_seconds(std::uint64_t wire_bytes,
                                             std::uint32_t active_ranks,
                                             bool push) const noexcept {
    if (active_ranks == 0 || wire_bytes == 0) return host_xfer_latency_s;
    const double cap = (push ? host_push_gb_s : host_pull_gb_s) * 1e9;
    const double share = active_ranks * host_per_rank_gb_s * 1e9;
    const double bw = share < cap ? share : cap;
    return host_xfer_latency_s + static_cast<double>(wire_bytes) / bw;
  }

  /// Setup-phase model: allocation + program load for `dpus` DPUs.
  [[nodiscard]] double setup_seconds(std::uint32_t dpus) const noexcept {
    const double ranks = ranks_for(dpus);
    return alloc_base_s + ranks * (alloc_per_rank_s + program_load_per_rank_s);
  }
};

/// Abstract instruction-cost table for the kernels (counts of issued
/// instructions per algorithmic step).  Derived from hand-counting the
/// inner loops of the equivalent UPMEM C kernels; kept in one place so the
/// ablation bench can stress the model's sensitivity.
struct KernelCostModel {
  std::uint32_t sort_step = 14;        ///< per element-compare-swap in WRAM quicksort
  std::uint32_t merge_pick = 10;       ///< per element consumed in a 2-way MRAM merge
  std::uint32_t binary_search_step = 16;  ///< per probe (index arithmetic + compare)
  std::uint32_t count_merge_step = 9;  ///< per comparison in the neighbor merge
  std::uint32_t reservoir_offer = 12;  ///< coin toss + slot pick
  std::uint32_t edge_copy = 4;         ///< register moves per edge staged
  std::uint32_t remap_lookup = 11;     ///< hash-table probe for high-degree remap
  std::uint32_t region_scan_step = 7;  ///< per edge when building the region index
  std::uint32_t loop_overhead = 3;     ///< per outer-loop iteration bookkeeping
};

}  // namespace pimtc::pim
