// One simulated DPU (PIM core): MRAM bank + WRAM scratchpad + cycle model.
//
// Kernels run *functionally* on the host while charging a per-phase cycle
// account that models the UPMEM execution constraints:
//
//  * all tasklets share one in-order pipeline with aggregate throughput of
//    one instruction per cycle, reached only when >= 11 tasklets are
//    resident; a single tasklet can issue at most every 11 cycles,
//  * MRAM is reachable only by DMA (setup + per-byte cost), and the DMA
//    engine is shared by all tasklets,
//  * DMA and execution of other tasklets overlap.
//
// A parallel phase therefore costs
//     max( I_total * max(1, S/T),          -- issue-bandwidth bound
//          max_t (I_t * S + L_t),          -- critical-path (straggler) bound
//          E_total )                       -- DMA-engine bound
// cycles, where I_t/L_t are per-tasklet instruction counts and DMA
// latencies (latency stalls only the issuing tasklet), E_total the summed
// engine occupancy (per-transfer handling + bytes), T the tasklet count and
// S the pipeline saturation threshold (11).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pim/config.hpp"
#include "pim/mram.hpp"
#include "pim/wram.hpp"

namespace pimtc::pim {

class Dpu;

/// Handle a kernel uses to execute as one tasklet: charges instructions and
/// issues DMA on behalf of tasklet `id()`.
class Tasklet {
 public:
  Tasklet(Dpu& dpu, std::uint32_t id) : dpu_(&dpu), id_(id) {}

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

  /// Charges `n` pipeline instructions to this tasklet.
  void instr(std::uint64_t n) noexcept;

  /// DMA MRAM -> WRAM (functionally a read into `dst`).
  void mram_read(std::uint64_t mram_offset, void* dst, std::size_t bytes);

  /// DMA WRAM -> MRAM.
  void mram_write(std::uint64_t mram_offset, const void* src,
                  std::size_t bytes);

  /// Typed single-record DMA helpers (cost = one aligned burst).
  template <typename T>
  [[nodiscard]] T mram_read_t(std::uint64_t offset) {
    T value;
    mram_read(offset, &value, sizeof(T));
    return value;
  }

  template <typename T>
  void mram_write_t(std::uint64_t offset, const T& value) {
    mram_write(offset, &value, sizeof(T));
  }

 private:
  Dpu* dpu_;
  std::uint32_t id_;
};

class Dpu {
 public:
  Dpu(const PimSystemConfig& config, std::uint32_t id)
      : config_(config),
        id_(id),
        mram_(config.mram_bytes),
        wram_(config.wram_bytes) {}

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] MramBank& mram() noexcept { return mram_; }
  [[nodiscard]] const MramBank& mram() const noexcept { return mram_; }
  [[nodiscard]] WramArena& wram() noexcept { return wram_; }
  [[nodiscard]] const PimSystemConfig& config() const noexcept {
    return config_;
  }

  /// Runs `body(tasklet)` once per tasklet id in [0, num_tasklets) as one
  /// parallel phase (implicit barrier at the end, like UPMEM's
  /// barrier_wait).  Tasklets execute sequentially on the host; the cycle
  /// model combines their accounts as documented above.
  void parallel(std::uint32_t num_tasklets,
                const std::function<void(Tasklet&)>& body);

  /// Charges work done outside any parallel section (single-tasklet
  /// semantics, e.g. the batch-receive path).
  void serial_instr(std::uint64_t n) noexcept;
  void serial_dma(std::uint64_t bytes) noexcept;

  /// Charges `n` instructions executed by a small resident kernel with
  /// `active_tasklets` threads (issue-bandwidth model, no straggler term) —
  /// used for the batch-receive/reservoir path which is embarrassingly
  /// parallel over incoming edges.
  void charge_parallel_instr(std::uint64_t n,
                             std::uint32_t active_tasklets) noexcept;

  /// Charges a bulk DMA stream of `bytes` moved in `chunk_bytes` bursts.
  void charge_dma_bulk(std::uint64_t bytes, std::uint32_t chunk_bytes) noexcept;

  /// Simulated cycles accumulated since the last reset.
  [[nodiscard]] double cycles() const noexcept { return cycles_; }
  [[nodiscard]] double seconds() const noexcept {
    return config_.cycles_to_seconds(cycles_);
  }
  void reset_cycles() noexcept { cycles_ = 0.0; }

  /// Lifetime instruction/DMA tallies (for the ablation benches).
  [[nodiscard]] std::uint64_t total_instructions() const noexcept {
    return lifetime_instr_;
  }
  [[nodiscard]] std::uint64_t total_dma_bytes() const noexcept {
    return lifetime_dma_bytes_;
  }
  [[nodiscard]] std::uint64_t total_dma_transfers() const noexcept {
    return lifetime_dma_transfers_;
  }

 private:
  friend class Tasklet;

  [[nodiscard]] double dma_cost_cycles(std::size_t bytes) const noexcept;
  void charge_dma(std::uint32_t tasklet, std::size_t bytes) noexcept;

  PimSystemConfig config_;  // by value: the Dpu outlives any caller config
  std::uint32_t id_;
  MramBank mram_;
  WramArena wram_;

  double cycles_ = 0.0;
  std::uint64_t lifetime_instr_ = 0;
  std::uint64_t lifetime_dma_bytes_ = 0;
  std::uint64_t lifetime_dma_transfers_ = 0;

  // Per-phase accounting, valid while parallel() runs.
  struct PhaseAccount {
    std::vector<std::uint64_t> instr;        // per tasklet
    std::vector<double> dma_latency;         // per tasklet
    double engine_cycles = 0.0;              // shared DMA engine occupancy
    bool active = false;
    std::uint32_t current_tasklet = 0;
  };
  PhaseAccount phase_;
};

}  // namespace pimtc::pim
