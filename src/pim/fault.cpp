#include "pim/fault.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pimtc::pim {
namespace {

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument(
      "fault spec: " + what +
      " (expected comma-separated key=value pairs; keys: seed, "
      "launch-transient, launch-permanent, rank-outage, corrupt, bitflip, "
      "checksum=on|off, recovery=retry|rematerialize|degrade, max-retries, "
      "spares, from-step, until-step, backoff-us, checksum-gbps)");
}

double parse_rate(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double rate = 0.0;
  try {
    rate = std::stod(value, &pos);
  } catch (const std::exception&) {
    bad_spec("'" + key + "' needs a number, got '" + value + "'");
  }
  // Written as a negated conjunction so NaN (which fails every ordered
  // comparison, including `< 0.0`) is rejected rather than slipping through.
  if (pos != value.size() || !(rate >= 0.0 && rate <= 1.0)) {
    bad_spec("'" + key + "' must be a probability in [0, 1], got '" + value +
             "'");
  }
  return rate;
}

double parse_positive(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    bad_spec("'" + key + "' needs a number, got '" + value + "'");
  }
  if (pos != value.size() || !std::isfinite(v) || v <= 0.0) {
    bad_spec("'" + key + "' must be > 0, got '" + value + "'");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  // stoull happily wraps "-1" to 2^64-1 and skips leading whitespace;
  // demand a bare decimal digit up front so negatives are an error.
  if (value.empty() || value.front() < '0' || value.front() > '9') {
    bad_spec("'" + key + "' needs a non-negative integer, got '" + value +
             "'");
  }
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(value, &pos);
  } catch (const std::exception&) {
    bad_spec("'" + key + "' needs a non-negative integer, got '" + value +
             "'");
  }
  if (pos != value.size()) {
    bad_spec("'" + key + "' needs a non-negative integer, got '" + value +
             "'");
  }
  return static_cast<std::uint64_t>(v);
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "on" || value == "1" || value == "true") return true;
  if (value == "off" || value == "0" || value == "false") return false;
  bad_spec("'" + key + "' must be on|off, got '" + value + "'");
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& spec) {
  if (spec.empty()) bad_spec("empty spec (omit the flag to disable injection)");
  FaultSpec out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) bad_spec("'" + item + "' is not key=value");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      out.seed = parse_u64(key, value);
    } else if (key == "launch-transient") {
      out.launch_transient = parse_rate(key, value);
    } else if (key == "launch-permanent") {
      out.launch_permanent = parse_rate(key, value);
    } else if (key == "rank-outage") {
      out.rank_outage = parse_rate(key, value);
    } else if (key == "corrupt") {
      out.transfer_corrupt = parse_rate(key, value);
    } else if (key == "bitflip") {
      out.mram_bitflip = parse_rate(key, value);
    } else if (key == "checksum") {
      out.checksums = parse_bool(key, value);
    } else if (key == "recovery") {
      if (value == "retry") {
        out.recovery = Recovery::kRetry;
      } else if (value == "rematerialize") {
        out.recovery = Recovery::kRematerialize;
      } else if (value == "degrade") {
        out.recovery = Recovery::kDegrade;
      } else {
        bad_spec("'recovery' must be retry|rematerialize|degrade, got '" +
                 value + "'");
      }
    } else if (key == "max-retries") {
      const std::uint64_t v = parse_u64(key, value);
      if (v > 16) bad_spec("'max-retries' must be <= 16, got '" + value + "'");
      out.max_retries = static_cast<std::uint32_t>(v);
    } else if (key == "spares") {
      const std::uint64_t v = parse_u64(key, value);
      if (v > 2048) bad_spec("'spares' must be <= 2048, got '" + value + "'");
      out.spare_banks = static_cast<std::uint32_t>(v);
    } else if (key == "from-step") {
      out.from_step = parse_u64(key, value);
    } else if (key == "until-step") {
      out.until_step = parse_u64(key, value);
    } else if (key == "backoff-us") {
      out.backoff_base_s = parse_positive(key, value) * 1e-6;
    } else if (key == "checksum-gbps") {
      out.checksum_gb_s = parse_positive(key, value);
    } else {
      bad_spec("unknown key '" + key + "'");
    }
  }
  if (out.from_step >= out.until_step) {
    bad_spec("'from-step' must be below 'until-step'");
  }
  return out;
}

const char* FaultSpec::recovery_name() const noexcept {
  switch (recovery) {
    case Recovery::kRetry:
      return "retry";
    case Recovery::kRematerialize:
      return "rematerialize";
    case Recovery::kDegrade:
      return "degrade";
  }
  return "unknown";
}

}  // namespace pimtc::pim
