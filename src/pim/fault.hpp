// Deterministic fault injection for the simulated PIM runtime.
//
// Real UPMEM deployments see DPU launch failures (transient and permanent),
// whole-rank outages, and corrupted dpu_push_xfer transfers; TCIM-style
// in-MRAM residency additionally motivates modeling bit errors on the
// resident samples.  The simulator models a perfect machine by default —
// this header is the switch that makes it imperfect *reproducibly*:
//
//   FaultSpec   the parsed `--inject-faults=` / EngineConfig.fault_spec
//               string: per-event rates, the fault-stream seed, the
//               recovery policy and its knobs,
//   FaultPlan   a stateless oracle over the spec: every event is a pure
//               function of (seed, event kind, step index, unit index)
//               hashed through mix64, so two runs with the same spec see
//               byte-identical fault sequences regardless of thread
//               interleaving — and a retry (a later step) gets a fresh,
//               equally deterministic draw.
//
// "Steps" advance at the serial points of the runtime (each bulk transfer
// and each kernel launch bumps PimSystem's step counter; each recount bumps
// the counter-level epoch used for MRAM bit flips), which is what makes the
// draws reproducible.  FaultStats is the recovery ledger surfaced through
// TcResult / CountReport; FaultCounters is the PimSystem-level subset.
//
// See DESIGN.md "Fault model & recovery".
#pragma once

#include <cstdint>
#include <string>

#include "common/hash.hpp"

namespace pimtc::pim {

struct FaultSpec {
  /// How the counting host reacts to an unusable bank:
  ///   kRetry          transient faults are retried with backoff; a dead
  ///                   bank drops its triplet (degraded estimate),
  ///   kRematerialize  retry, then restore the dead bank's sample from the
  ///                   host mirror onto a spare DPU (full fidelity); only
  ///                   spare exhaustion degrades,
  ///   kDegrade        never retry or migrate: any fault drops the triplet.
  enum class Recovery : std::uint8_t { kRetry, kRematerialize, kDegrade };

  /// Seed of the fault stream — independent of the estimator seed, so the
  /// same workload can be replayed under many fault sequences.
  std::uint64_t seed = 1;

  /// Per-launch, per-DPU probability the launch fails but the DPU survives.
  double launch_transient = 0.0;
  /// Per-launch, per-DPU probability the DPU dies permanently.
  double launch_permanent = 0.0;
  /// Per-launch, per-rank probability the whole rank dies permanently.
  double rank_outage = 0.0;
  /// Per-transfer, per-DPU probability a bulk scatter/gather span is hit by
  /// a single-bit wire corruption.
  double transfer_corrupt = 0.0;
  /// Per-recount, per-triplet probability of one bit flip in the resident
  /// MRAM sample.
  double mram_bitflip = 0.0;

  /// XXH64 payload checksums on bulk transfers + resident-sample scrubbing:
  /// when on, corruption is always detected (and repaired when possible) at
  /// a modeled cost; when off, corruption silently reaches the estimator.
  bool checksums = true;

  Recovery recovery = Recovery::kRematerialize;
  /// Capped exponential-backoff retries for transient launch faults.
  std::uint32_t max_retries = 3;
  /// Spare DPUs allocated beyond the triplet count for re-materialization
  /// (clamped to the machine's max_dpus; kRematerialize only).
  std::uint32_t spare_banks = 16;

  /// Step window: events only fire at step/epoch indices in
  /// [from_step, until_step).
  std::uint64_t from_step = 0;
  std::uint64_t until_step = ~0ull;

  /// First retry backoff (doubles per attempt), charged to the count phase.
  double backoff_base_s = 50e-6;
  /// Modeled checksum compute+verify rate for the detection cost.
  double checksum_gb_s = 10.0;

  /// Parses "key=value,key=value,..." (keys: seed, launch-transient,
  /// launch-permanent, rank-outage, corrupt, bitflip, checksum=on|off,
  /// recovery=retry|rematerialize|degrade, max-retries, spares, from-step,
  /// until-step, backoff-us, checksum-gbps).  Throws std::invalid_argument
  /// naming the offending key.  An empty string is "injection off" and is
  /// rejected here — callers gate on emptiness before parsing.
  [[nodiscard]] static FaultSpec parse(const std::string& spec);

  [[nodiscard]] const char* recovery_name() const noexcept;
};

/// PimSystem-level fault/detection tallies (cumulative since construction).
struct FaultCounters {
  std::uint64_t launch_transients = 0;
  std::uint64_t dead_dpus = 0;
  std::uint64_t rank_outages = 0;
  std::uint64_t transfer_corruptions = 0;
  std::uint64_t transfer_retries = 0;
  std::uint64_t checksum_bytes = 0;
  double detection_s = 0.0;
};

/// The recovery ledger of one counting session, surfaced through
/// TcResult::faults and CountReport::faults (CLI text + JSON, serve stats).
struct FaultStats {
  bool injected = false;   ///< a fault plan was active
  bool degraded = false;   ///< triplets were lost; the estimate is reweighted
  double coverage = 1.0;   ///< surviving-triplet weight fraction (kind-weighted)
  double error_bound = 0.0;  ///< widened relative error bound (degraded only)

  std::uint64_t launch_transients = 0;
  std::uint64_t launch_retries = 0;  ///< bank launches retried after backoff
  std::uint64_t dead_dpus = 0;
  std::uint64_t rank_outages = 0;
  std::uint64_t rematerializations = 0;  ///< dead banks restored from mirror
  std::uint64_t migrations = 0;          ///< placement patches onto spares
  std::uint64_t dropped_triplets = 0;    ///< lost contributions (degraded)
  std::uint64_t transfer_corruptions = 0;
  std::uint64_t transfer_retries = 0;
  std::uint64_t mram_bitflips = 0;
  std::uint64_t sample_restores = 0;  ///< bit-flipped samples scrubbed in place
  std::uint64_t checksum_bytes = 0;
  double detection_s = 0.0;  ///< modeled checksum/scrub seconds
  double recovery_s = 0.0;   ///< modeled backoff + restore-transfer seconds
};

/// Stateless deterministic fault oracle.  Every query hashes
/// (seed, kind, step, unit) through mix64 and compares the unit draw to the
/// configured rate; no internal state, so call order cannot perturb it.
class FaultPlan {
 public:
  explicit FaultPlan(FaultSpec spec) noexcept : spec_(spec) {}

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] bool launch_transient(std::uint64_t step,
                                      std::uint32_t dpu) const noexcept {
    return fire(kLaunchTransient, step, dpu, spec_.launch_transient);
  }
  [[nodiscard]] bool launch_permanent(std::uint64_t step,
                                      std::uint32_t dpu) const noexcept {
    return fire(kLaunchPermanent, step, dpu, spec_.launch_permanent);
  }
  [[nodiscard]] bool rank_outage(std::uint64_t step,
                                 std::uint32_t rank) const noexcept {
    return fire(kRankOutage, step, rank, spec_.rank_outage);
  }
  [[nodiscard]] bool transfer_corrupt(std::uint64_t step,
                                      std::uint32_t dpu) const noexcept {
    return fire(kTransferCorrupt, step, dpu, spec_.transfer_corrupt);
  }
  /// Per-recount-epoch resident-sample bit flip for triplet `unit`.
  [[nodiscard]] bool mram_bitflip(std::uint64_t epoch,
                                  std::uint32_t unit) const noexcept {
    return fire(kMramBitflip, epoch, unit, spec_.mram_bitflip);
  }
  /// Which bit of a `span_bits`-bit payload the corruption flips (the same
  /// (step, unit) always flips the same bit).
  [[nodiscard]] std::uint64_t corrupt_bit(std::uint64_t step,
                                          std::uint32_t unit,
                                          std::uint64_t span_bits) const noexcept {
    if (span_bits == 0) return 0;
    return draw(kCorruptBit, step, unit) % span_bits;
  }

 private:
  enum Kind : std::uint64_t {
    kLaunchTransient = 1,
    kLaunchPermanent = 2,
    kRankOutage = 3,
    kTransferCorrupt = 4,
    kMramBitflip = 5,
    kCorruptBit = 6,
  };

  [[nodiscard]] std::uint64_t draw(std::uint64_t kind, std::uint64_t step,
                                   std::uint64_t unit) const noexcept {
    std::uint64_t h = spec_.seed ^ (kind * 0x9e3779b97f4a7c15ull);
    h = mix64(h ^ step);
    h = mix64(h ^ (unit * 0xbf58476d1ce4e5b9ull));
    return mix64(h);
  }
  [[nodiscard]] bool fire(std::uint64_t kind, std::uint64_t step,
                          std::uint64_t unit, double rate) const noexcept {
    if (rate <= 0.0) return false;
    if (step < spec_.from_step || step >= spec_.until_step) return false;
    // Top 53 bits -> a uniform draw in [0, 1).
    const double u =
        static_cast<double>(draw(kind, step, unit) >> 11) * 0x1.0p-53;
    return u < rate;
  }

  FaultSpec spec_;
};

}  // namespace pimtc::pim
