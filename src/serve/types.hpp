// Value types of the multi-tenant serving layer (src/serve/).
//
// The serving layer hosts N independent TriangleCountEngine sessions behind
// one thread-safe SessionManager.  These are the knobs and the observable
// state: the manager-wide ServeConfig (drain workers, per-session queue
// capacity, aggregate staging budget, snapshot cadence), the per-session
// admission policy, the outcome of one submit, the per-session counters the
// report path surfaces, and the snapshot-consistent QueryResult.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "engine/report.hpp"

namespace pimtc::serve {

/// What a session does when its ingest queue (or the manager's aggregate
/// staging budget) is exhausted: fail the submit immediately, or block the
/// submitter until the drain makes space.  Chosen per session at open().
enum class AdmissionPolicy {
  kReject,  ///< submit() returns kQueueFull / kBudgetExhausted
  kBlock,   ///< submit() waits for space (or for the session to close)
};

[[nodiscard]] constexpr const char* to_string(AdmissionPolicy p) noexcept {
  return p == AdmissionPolicy::kReject ? "reject" : "block";
}

[[nodiscard]] inline AdmissionPolicy admission_policy_from_string(
    std::string_view s) {
  if (s == "reject") return AdmissionPolicy::kReject;
  if (s == "block") return AdmissionPolicy::kBlock;
  throw std::invalid_argument("unknown admission policy '" + std::string(s) +
                              "' (expected reject|block)");
}

/// Outcome of one submit() call.  Everything except kAccepted leaves the
/// session unchanged; rejects are counted in SessionStats.
enum class SubmitResult {
  kAccepted,
  kQueueFull,         ///< per-session queue capacity exhausted (kReject only)
  kBudgetExhausted,   ///< aggregate staging budget exhausted (kReject only)
  kClosed,            ///< session is closing / closed
};

[[nodiscard]] constexpr const char* to_string(SubmitResult r) noexcept {
  switch (r) {
    case SubmitResult::kAccepted: return "accepted";
    case SubmitResult::kQueueFull: return "queue_full";
    case SubmitResult::kBudgetExhausted: return "budget_exhausted";
    case SubmitResult::kClosed: return "closed";
  }
  return "?";
}

/// Outcome of SessionManager::ingest_file — the per-batch SubmitResult
/// that ended the ingest (kAccepted when the whole file went in) plus the
/// number of updates accepted.
struct FileIngestResult {
  SubmitResult result = SubmitResult::kAccepted;
  std::uint64_t updates = 0;
};

/// Manager-wide configuration.  One ServeConfig governs every session the
/// manager opens; per-session engine shape comes from the EngineConfig
/// passed to open().
struct ServeConfig {
  /// Drain workers shared by every session.  0 = schedule drain tasks on
  /// the process-global ThreadPool (work-conserving: with engines left at
  /// host_threads == 0 the whole stack then shares one hardware-sized
  /// pool, and nested engine parallel_for calls run caller-inline).
  std::size_t workers = 0;

  /// Per-session ingest queue capacity in *updates* (edge insertions plus
  /// deletions).  Soft bound: a single batch larger than the capacity is
  /// admitted when the queue is empty, so any batch is eventually
  /// servable.  Must be >= 1.
  std::uint64_t queue_capacity_updates = 1ull << 16;

  /// Aggregate staging budget across every session's queue, in updates.
  /// 0 = unbounded.  Like the queue bound it is soft for oversized single
  /// batches (admitted when nothing else is staged).
  std::uint64_t staging_budget_updates = 0;

  /// Snapshot cadence: publish a new recount epoch every this many applied
  /// batches.  The drain additionally publishes whenever its queue runs
  /// dry, so a quiescent session is always fully visible.  Must be >= 1.
  std::uint32_t recount_every_batches = 1;

  /// Default EngineConfig::host_threads for sessions opened with the field
  /// at 0 (= hardware concurrency).  N concurrent sessions each sized to
  /// the whole machine would oversubscribe it N-fold, so the serving layer
  /// defaults every engine to 1 host thread and takes its parallelism
  /// across sessions.  Set to 0 to keep the engines' own default.
  std::uint32_t session_host_threads = 1;

  /// Cap on retained update->visible latency samples per session (the
  /// serve-bench percentile source); further samples are dropped.
  std::size_t max_latency_samples = 1u << 20;

  /// Extra recount() attempts after a failed snapshot publish before the
  /// session falls back to its previous snapshot (which stays live and
  /// queryable throughout).  0 = no retry.
  std::uint32_t recount_retries = 1;

  /// Throws std::invalid_argument on the first violated invariant.
  void validate() const {
    if (queue_capacity_updates == 0) {
      throw std::invalid_argument(
          "ServeConfig: queue_capacity_updates must be >= 1");
    }
    if (recount_every_batches == 0) {
      throw std::invalid_argument(
          "ServeConfig: recount_every_batches must be >= 1");
    }
  }
};

/// Per-session counters, sampled atomically at query time.
struct SessionStats {
  std::uint64_t batches_accepted = 0;
  std::uint64_t batches_rejected = 0;
  std::uint64_t batches_applied = 0;   ///< applied to the engine
  std::uint64_t batches_failed = 0;    ///< engine->apply() threw; batch dropped
  std::uint64_t updates_accepted = 0;
  std::uint64_t updates_rejected = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t recounts_failed = 0;   ///< engine->recount() threw
  std::uint64_t recounts_retried = 0;  ///< recount attempts repeated after a
                                       ///< throw (ServeConfig::recount_retries)
  std::uint64_t epoch = 0;             ///< published snapshot epochs
  std::uint64_t queue_depth_updates = 0;  ///< staged, not yet applied
  std::uint64_t queue_depth_batches = 0;
  std::string last_error;  ///< most recent engine failure message, if any

  // ---- session health (latest published snapshot's fault ledger) ----------
  bool degraded = false;   ///< estimate extrapolated from partial coverage
  double coverage = 1.0;   ///< surviving fraction of the observed stream
  std::uint64_t dropped_triplets = 0;    ///< triplets lost to faults
  std::uint64_t rematerializations = 0;  ///< dead banks restored from mirror
  std::uint64_t sample_restores = 0;     ///< bit-rotted samples scrubbed back

  /// True while the session serves estimates and no published snapshot is
  /// degraded; recount failures alone do not flip it (the previous snapshot
  /// stays live).
  [[nodiscard]] bool healthy() const noexcept { return !degraded; }
};

/// Snapshot-consistent read of one session.  `report` (and the `estimate` /
/// `exact` convenience fields mirrored out of it) all come from the same
/// published epoch: a query concurrent with ingestion sees the complete
/// last recount, never a half-applied batch.  epoch == 0 means nothing has
/// been published yet (report is default-constructed).
struct QueryResult {
  std::uint64_t epoch = 0;
  double estimate = 0.0;
  bool exact = false;
  engine::CountReport report;
  SessionStats stats;  ///< sampled at query time (not part of the snapshot)
};

}  // namespace pimtc::serve
