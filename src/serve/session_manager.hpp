// SessionManager — the concurrent multi-tenant serving layer.
//
// One manager hosts N independent TriangleCountEngine sessions (one tenant
// graph each) behind a thread-safe API:
//
//   serve::SessionManager mgr(serve_cfg);
//   mgr.open("tenant-a", "pim", engine_cfg);            // any registry backend
//   mgr.submit("tenant-a", updates);                    // bounded, backpressured
//   serve::QueryResult r = mgr.query("tenant-a");       // snapshot-consistent
//   mgr.flush("tenant-a");                              // read-your-writes
//   mgr.close("tenant-a");                              // drains, then removes
//
// Ingestion is asynchronous: submit() stages the batch on the session's
// bounded queue and a shared worker pool (ThreadPool::submit) drains it,
// applying batches in admission order and publishing a fresh recount
// snapshot every `recount_every_batches` (and whenever a queue runs dry).
// query() serves the last published epoch without ever waiting on engine
// work.  Admission control is two-level — per-session queue capacity plus
// an aggregate staging budget — with a per-session reject-vs-block policy.
//
// Threading: every public method is safe to call from any thread, except
// that blocking calls (flush, close, submit under kBlock) must not be made
// from the manager's own drain workers.  See DESIGN.md "Serving layer".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "common/thread_pool.hpp"
#include "engine/registry.hpp"
#include "serve/session.hpp"
#include "serve/types.hpp"

namespace pimtc::serve {

class SessionManager {
 public:
  explicit SessionManager(ServeConfig config = {});

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Closes every session (draining accepted work) before tearing down.
  ~SessionManager();

  /// Opens a session named `name` on registry backend `backend`.  The
  /// engine config is resolved first (see resolve_engine_config) and
  /// validated by the registry.  Throws std::invalid_argument on a
  /// duplicate name, unknown backend or invalid config.
  void open(std::string name, std::string_view backend,
            engine::EngineConfig engine_config = {},
            AdmissionPolicy policy = AdmissionPolicy::kBlock);

  /// Stages one update batch on `session`'s queue.  kBlock sessions wait
  /// for space; kReject sessions fail fast (see SubmitResult).  Throws
  /// std::invalid_argument for an unknown session.
  SubmitResult submit(std::string_view session,
                      std::span<const EdgeUpdate> batch);

  /// Streams a graph file into `session` as insert batches of
  /// `chunk_edges` updates each — the out-of-core bulk-load path (peak
  /// memory O(chunk), any format read_coo accepts).  Admission follows
  /// the session's policy per batch; the first non-accepted SubmitResult
  /// aborts the ingest and is returned, with `updates` counting what was
  /// accepted before it.
  FileIngestResult ingest_file(std::string_view session,
                               const std::filesystem::path& path,
                               std::size_t chunk_edges = std::size_t{1} << 20,
                               bool use_mmap = true);

  /// Snapshot-consistent, non-blocking read of `session` (last published
  /// recount epoch + stats).  Never waits on ingestion.
  [[nodiscard]] QueryResult query(std::string_view session) const;

  /// Read-your-writes barrier: returns a query taken after every batch
  /// accepted before this call has been published.
  QueryResult flush(std::string_view session);

  /// Stops admission, drains the session's accepted batches, removes it
  /// and returns its final stats.  Blocked submitters wake with kClosed.
  SessionStats close(std::string_view session);

  /// close() for every open session, in name order.
  void close_all();

  /// Names of the open sessions, sorted.
  [[nodiscard]] std::vector<std::string> session_names() const;

  /// Update->visible latency samples of one session, in seconds.
  [[nodiscard]] std::vector<double> latencies(std::string_view session) const;

  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }

  /// Total updates currently staged across every session (aggregate-budget
  /// accounting; 0 when the budget is unbounded).
  [[nodiscard]] std::uint64_t staged_updates() const;

  /// The engine config a session opened with `cfg` actually runs:
  /// host_threads == 0 is replaced by ServeConfig::session_host_threads
  /// (unless that is itself 0).  Exposed so drivers can replay a session
  /// serially under the byte-identical configuration (the parity oracle).
  [[nodiscard]] engine::EngineConfig resolve_engine_config(
      engine::EngineConfig cfg) const noexcept;

 private:
  friend class Session;

  /// The drain pool: dedicated when config.workers is pinned, the shared
  /// process-global pool otherwise.
  [[nodiscard]] ThreadPool& pool() noexcept {
    return own_pool_ ? *own_pool_ : ThreadPool::global();
  }

  /// Reserves `n` updates of the aggregate staging budget.  Returns false
  /// when exhausted under kReject; blocks until available under kBlock.
  /// No-op (true) when the budget is unbounded.  Never called (and never
  /// waits) holding a session's state mutex — the EXCLUDES on both budget
  /// methods keeps the two admission bounds deadlock-free by construction.
  bool reserve_budget(std::uint64_t n, AdmissionPolicy policy)
      PIMTC_EXCLUDES(budget_mutex_);
  void release_budget(std::uint64_t n) PIMTC_EXCLUDES(budget_mutex_);

  /// Looks up a session or throws std::invalid_argument naming it.
  [[nodiscard]] std::shared_ptr<Session> find(std::string_view session) const
      PIMTC_EXCLUDES(sessions_mutex_);

  /// `n` more staged updates fit the aggregate budget.  Soft bound, like
  /// the per-session queue: an oversized batch is admitted once nothing
  /// else is staged.
  [[nodiscard]] bool budget_fits(std::uint64_t n) const
      PIMTC_REQUIRES(budget_mutex_) {
    return staged_updates_ + n <= config_.staging_budget_updates ||
           staged_updates_ == 0;
  }

  const ServeConfig config_;
  std::unique_ptr<ThreadPool> own_pool_;

  mutable Mutex sessions_mutex_;
  std::map<std::string, std::shared_ptr<Session>, std::less<>> sessions_
      PIMTC_GUARDED_BY(sessions_mutex_);

  mutable Mutex budget_mutex_;
  std::condition_variable budget_cv_;
  std::uint64_t staged_updates_ PIMTC_GUARDED_BY(budget_mutex_) = 0;
};

}  // namespace pimtc::serve
