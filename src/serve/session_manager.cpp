#include "serve/session_manager.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/stream_reader.hpp"

namespace pimtc::serve {

SessionManager::SessionManager(ServeConfig config) : config_(config) {
  config_.validate();
  if (config_.workers != 0) {
    own_pool_ = std::make_unique<ThreadPool>(config_.workers);
  }
}

SessionManager::~SessionManager() { close_all(); }

engine::EngineConfig SessionManager::resolve_engine_config(
    engine::EngineConfig cfg) const noexcept {
  if (cfg.host_threads == 0 && config_.session_host_threads != 0) {
    cfg.host_threads = config_.session_host_threads;
  }
  return cfg;
}

void SessionManager::open(std::string name, std::string_view backend,
                          engine::EngineConfig engine_config,
                          AdmissionPolicy policy) {
  if (name.empty()) {
    throw std::invalid_argument("SessionManager: session name must not be "
                                "empty");
  }
  // Build the engine outside the directory lock (validation + construction
  // can be slow); insertion re-checks for a duplicate racer.
  auto engine =
      engine::make_engine(backend, resolve_engine_config(engine_config));
  auto session = std::make_shared<Session>(name, std::move(engine), policy,
                                           config_, this);
  MutexLock lock(sessions_mutex_);
  if (sessions_.contains(name)) {
    throw std::invalid_argument("SessionManager: session '" + name +
                                "' already open");
  }
  sessions_.emplace(std::move(name), std::move(session));
}

std::shared_ptr<Session> SessionManager::find(std::string_view session) const {
  MutexLock lock(sessions_mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    throw std::invalid_argument("SessionManager: unknown session '" +
                                std::string(session) + "'");
  }
  return it->second;
}

SubmitResult SessionManager::submit(std::string_view session,
                                    std::span<const EdgeUpdate> batch) {
  return find(session)->submit(batch);
}

FileIngestResult SessionManager::ingest_file(std::string_view session,
                                             const std::filesystem::path& path,
                                             std::size_t chunk_edges,
                                             bool use_mmap) {
  const std::shared_ptr<Session> s = find(session);
  graph::ReaderOptions reader_options;
  reader_options.chunk_edges = chunk_edges;
  reader_options.use_mmap = use_mmap;
  graph::ChunkedEdgeReader reader(path, reader_options);

  FileIngestResult result;
  std::vector<EdgeUpdate> batch;  // reused insert-batch buffer
  batch.reserve(chunk_edges);
  for (std::span<const Edge> chunk = reader.next(); !chunk.empty();
       chunk = reader.next()) {
    batch.clear();
    for (const Edge& e : chunk) batch.push_back(insert_of(e));
    result.result = s->submit(batch);
    if (result.result != SubmitResult::kAccepted) return result;
    result.updates += batch.size();
  }
  return result;
}

QueryResult SessionManager::query(std::string_view session) const {
  return find(session)->query();
}

QueryResult SessionManager::flush(std::string_view session) {
  const std::shared_ptr<Session> s = find(session);
  s->flush();
  return s->query();
}

SessionStats SessionManager::close(std::string_view session) {
  std::shared_ptr<Session> s;
  {
    // Remove from the directory first so new submits/queries see "unknown
    // session"; the shared_ptr keeps the drain alive until quiescence.
    MutexLock lock(sessions_mutex_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      throw std::invalid_argument("SessionManager: unknown session '" +
                                  std::string(session) + "'");
    }
    s = std::move(it->second);
    sessions_.erase(it);
  }
  s->close();
  return s->query().stats;
}

void SessionManager::close_all() {
  for (;;) {
    std::shared_ptr<Session> s;
    {
      MutexLock lock(sessions_mutex_);
      if (sessions_.empty()) return;
      auto it = sessions_.begin();
      s = std::move(it->second);
      sessions_.erase(it);
    }
    s->close();
  }
}

std::vector<std::string> SessionManager::session_names() const {
  MutexLock lock(sessions_mutex_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) names.push_back(name);
  return names;
}

std::vector<double> SessionManager::latencies(std::string_view session) const {
  return find(session)->latencies();
}

std::uint64_t SessionManager::staged_updates() const {
  MutexLock lock(budget_mutex_);
  return staged_updates_;
}

bool SessionManager::reserve_budget(std::uint64_t n, AdmissionPolicy policy) {
  if (config_.staging_budget_updates == 0) return true;
  MutexLock lock(budget_mutex_);
  if (!budget_fits(n)) {
    if (policy == AdmissionPolicy::kReject) return false;
    while (!budget_fits(n)) lock.wait(budget_cv_);
  }
  staged_updates_ += n;
  return true;
}

void SessionManager::release_budget(std::uint64_t n) {
  if (config_.staging_budget_updates == 0) return;
  {
    MutexLock lock(budget_mutex_);
    staged_updates_ -= n;
  }
  budget_cv_.notify_all();
}

}  // namespace pimtc::serve
