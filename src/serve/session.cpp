#include "serve/session.hpp"

#include <exception>
#include <utility>

#include "serve/session_manager.hpp"

namespace pimtc::serve {

Session::Session(std::string name,
                 std::unique_ptr<engine::TriangleCountEngine> engine,
                 AdmissionPolicy policy, const ServeConfig& config,
                 SessionManager* manager)
    : name_(std::move(name)),
      policy_(policy),
      config_(config),
      manager_(manager),
      engine_(std::move(engine)) {}

SubmitResult Session::submit(std::span<const EdgeUpdate> batch) {
  const std::uint64_t n = batch.size();
  if (n == 0) return SubmitResult::kAccepted;

  // Fail fast on a closing session before touching the aggregate budget:
  // a blocked reservation against dead capacity would stall the submitter
  // for no admissible outcome.
  {
    MutexLock lock(state_mutex_);
    if (closing_) {
      ++stats_.batches_rejected;
      stats_.updates_rejected += n;
      return SubmitResult::kClosed;
    }
  }

  // Aggregate staging budget first, per-session queue second.  The two
  // bounds live behind independent mutexes and neither wait holds the
  // other's lock, so blocked submitters cannot form a cycle.
  if (!manager_->reserve_budget(n, policy_)) {
    MutexLock lock(state_mutex_);
    ++stats_.batches_rejected;
    stats_.updates_rejected += n;
    return SubmitResult::kBudgetExhausted;
  }

  MutexLock lock(state_mutex_);
  if (!closing_ && !has_space(n)) {
    if (policy_ == AdmissionPolicy::kReject) {
      ++stats_.batches_rejected;
      stats_.updates_rejected += n;
      lock.unlock();
      manager_->release_budget(n);
      return SubmitResult::kQueueFull;
    }
    while (!closing_ && !has_space(n)) lock.wait(space_cv_);
  }
  if (closing_) {
    ++stats_.batches_rejected;
    stats_.updates_rejected += n;
    lock.unlock();
    manager_->release_budget(n);
    return SubmitResult::kClosed;
  }

  const std::uint64_t seq = ++accepted_seq_;
  queue_.push_back(Batch{seq, {batch.begin(), batch.end()}});
  queued_updates_ += n;
  ++stats_.batches_accepted;
  stats_.updates_accepted += n;
  pending_visibility_.emplace_back(seq, Clock::now());
  schedule_drain_locked();
  return SubmitResult::kAccepted;
}

void Session::schedule_drain_locked() {
  if (drain_scheduled_) return;
  drain_scheduled_ = true;
  // The task pins the session: a close() that races ahead removes it from
  // the manager's directory, but the drain keeps running to completion.
  auto self = shared_from_this();
  manager_->pool().submit([self] { self->drain(); });
}

void Session::drain() {
  for (;;) {
    Batch batch;
    {
      MutexLock lock(state_mutex_);
      if (queue_.empty()) {
        if (applied_seq_ > published_seq_) {
          // Publish the applied-but-invisible tail before going idle so
          // flush() terminates and a quiescent session is fully readable.
          lock.unlock();
          publish_snapshot();
          lock.lock();
          if (!queue_.empty()) continue;  // a submit raced the publish
        }
        drain_scheduled_ = false;
        applied_cv_.notify_all();
        return;
      }
      batch = std::move(queue_.front());
      queue_.pop_front();
    }

    // Engine work happens outside every lock: only this drain touches the
    // engine (single-drain invariant), and queries must not wait on it.
    const std::uint64_t n = batch.updates.size();
    std::exception_ptr failure;
    try {
      engine_->apply(batch.updates);
    } catch (...) {
      failure = std::current_exception();
    }

    bool publish;
    {
      MutexLock lock(state_mutex_);
      applied_seq_ = batch.seq;
      queued_updates_ -= n;
      if (failure) {
        ++stats_.batches_failed;
        try {
          std::rethrow_exception(failure);
        } catch (const std::exception& e) {
          stats_.last_error = e.what();
        } catch (...) {
          stats_.last_error = "unknown engine failure";
        }
      } else {
        ++stats_.batches_applied;
        stats_.updates_applied += n;
      }
      publish = ++unpublished_batches_ >= config_.recount_every_batches;
      space_cv_.notify_all();
    }
    manager_->release_budget(n);
    if (publish) publish_snapshot();
  }
}

void Session::publish_snapshot() {
  std::uint64_t through;
  std::uint64_t epoch;
  {
    MutexLock lock(state_mutex_);
    through = applied_seq_;
    epoch = stats_.epoch + 1;
    unpublished_batches_ = 0;
  }

  auto snap = std::make_shared<Snapshot>();
  snap->epoch = epoch;
  snap->through_seq = through;
  // A faulted recount does not take the session down: the previous snapshot
  // stays live and queryable while the recount is retried per policy.
  bool counted = false;
  std::string error;
  for (std::uint32_t attempt = 0;
       attempt <= config_.recount_retries && !counted; ++attempt) {
    try {
      snap->report = engine_->recount();
      counted = true;
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      // Engines are not obliged to throw std::exception; contain anything.
      error = "unknown engine failure";
    }
    if (!counted && attempt < config_.recount_retries) {
      MutexLock lock(state_mutex_);
      ++stats_.recounts_retried;
    }
  }
  if (!counted) {
    // Out of retries.  Flush waiters are released (the batches *were*
    // applied) and the failure is surfaced in the stats.
    MutexLock lock(state_mutex_);
    ++stats_.recounts_failed;
    stats_.last_error = error;
    published_seq_ = through;
    while (!pending_visibility_.empty() &&
           pending_visibility_.front().first <= through) {
      pending_visibility_.pop_front();
    }
    applied_cv_.notify_all();
    return;
  }

  const engine::CountReport::FaultStats faults = snap->report.faults;
  {
    MutexLock lock(snapshot_mutex_);
    snapshot_ = std::move(snap);
  }
  const Clock::time_point now = Clock::now();
  {
    MutexLock lock(state_mutex_);
    stats_.epoch = epoch;
    stats_.degraded = faults.degraded;
    stats_.coverage = faults.coverage;
    stats_.dropped_triplets = faults.dropped_triplets;
    stats_.rematerializations = faults.rematerializations;
    stats_.sample_restores = faults.sample_restores;
    published_seq_ = through;
    while (!pending_visibility_.empty() &&
           pending_visibility_.front().first <= through) {
      if (latencies_s_.size() < config_.max_latency_samples) {
        latencies_s_.push_back(
            std::chrono::duration<double>(
                now - pending_visibility_.front().second)
                .count());
      }
      pending_visibility_.pop_front();
    }
    applied_cv_.notify_all();
  }
}

QueryResult Session::query() const {
  std::shared_ptr<const Snapshot> snap;
  {
    MutexLock lock(snapshot_mutex_);
    snap = snapshot_;
  }
  QueryResult result;
  if (snap) {
    result.epoch = snap->epoch;
    result.report = snap->report;
    result.estimate = snap->report.estimate;
    result.exact = snap->report.exact;
  }
  {
    MutexLock lock(state_mutex_);
    result.stats = stats_;
    result.stats.queue_depth_updates = queued_updates_;
    result.stats.queue_depth_batches = queue_.size();
  }
  return result;
}

void Session::flush() {
  MutexLock lock(state_mutex_);
  const std::uint64_t target = accepted_seq_;
  while (published_seq_ < target) lock.wait(applied_cv_);
}

void Session::close() {
  MutexLock lock(state_mutex_);
  closing_ = true;
  space_cv_.notify_all();  // blocked submitters wake and observe kClosed
  while (!(queue_.empty() && !drain_scheduled_ &&
           published_seq_ >= applied_seq_)) {
    lock.wait(applied_cv_);
  }
}

std::vector<double> Session::latencies() const {
  MutexLock lock(state_mutex_);
  return latencies_s_;
}

}  // namespace pimtc::serve
