// One tenant of the serving layer: an engine session with a bounded ingest
// queue, drained asynchronously, queried through atomically-swapped
// snapshots.
//
// Concurrency contract (see DESIGN.md "Serving layer"):
//  * the engine is touched only by the drain task, and at most one drain
//    task per session is scheduled at a time — engine code needs no
//    internal locking;
//  * submit() appends to the queue under the state mutex and (re)schedules
//    the drain; with AdmissionPolicy::kBlock it waits for queue space,
//    with kReject it fails fast;
//  * query() copies the current snapshot pointer under a lock that is
//    never held across engine work, so reads do not block ingestion and
//    ingestion does not block reads;
//  * flush() is the read-your-writes barrier: it returns once every batch
//    accepted before the call is covered by a published snapshot;
//  * close() stops admission, lets the queued batches drain, and returns
//    when the session is quiescent — accepted work is never dropped.
//
// Sessions are created and owned by SessionManager (session_manager.hpp);
// this header is separate so the manager stays a thin directory.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "serve/types.hpp"

namespace pimtc::serve {

class SessionManager;

class Session : public std::enable_shared_from_this<Session> {
 public:
  /// Constructed by SessionManager::open() with a freshly built engine.
  Session(std::string name,
          std::unique_ptr<engine::TriangleCountEngine> engine,
          AdmissionPolicy policy, const ServeConfig& config,
          SessionManager* manager);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] AdmissionPolicy policy() const noexcept { return policy_; }

  /// Enqueues one update batch.  An empty batch is an accepted no-op.
  SubmitResult submit(std::span<const EdgeUpdate> batch);

  /// Snapshot-consistent, non-blocking read (see QueryResult).
  [[nodiscard]] QueryResult query() const;

  /// Blocks until everything accepted before the call is published.
  void flush();

  /// Stops admission, drains accepted batches, waits for quiescence.
  /// Idempotent; safe to call concurrently with blocked submitters (they
  /// wake and report kClosed).
  void close();

  /// Copy of the recorded update->visible latencies, in seconds (one
  /// sample per published batch, capped by ServeConfig).
  [[nodiscard]] std::vector<double> latencies() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Batch {
    std::uint64_t seq = 0;  ///< 1-based admission order
    std::vector<EdgeUpdate> updates;
  };

  /// Immutable once published; readers copy the shared_ptr and go.
  struct Snapshot {
    std::uint64_t epoch = 0;
    std::uint64_t through_seq = 0;  ///< last batch this recount covers
    engine::CountReport report;
  };

  /// Schedules the drain task if none is pending.  Requires state_mutex_.
  void schedule_drain_locked();

  /// The drain loop: applies queued batches to the engine in admission
  /// order, publishing snapshots at the configured cadence and whenever
  /// the queue runs dry, then parks.  At most one instance runs at a time.
  void drain();

  /// recount() + atomic snapshot swap + latency/flush bookkeeping.
  /// Called only from drain().
  void publish_snapshot();

  const std::string name_;
  const AdmissionPolicy policy_;
  const ServeConfig config_;
  SessionManager* const manager_;

  /// Engine access is serialized by the single-drain invariant; the state
  /// mutex is never held during engine calls.
  std::unique_ptr<engine::TriangleCountEngine> engine_;

  mutable std::mutex state_mutex_;
  std::condition_variable space_cv_;    ///< blocked submitters
  std::condition_variable applied_cv_;  ///< flush() / close() waiters
  std::deque<Batch> queue_;
  std::uint64_t queued_updates_ = 0;
  std::uint64_t accepted_seq_ = 0;   ///< last admitted batch
  std::uint64_t applied_seq_ = 0;    ///< last batch applied to the engine
  std::uint64_t published_seq_ = 0;  ///< last batch covered by a snapshot
  std::uint32_t unpublished_batches_ = 0;
  bool drain_scheduled_ = false;
  bool closing_ = false;
  SessionStats stats_;
  /// Admission timestamps awaiting visibility, in seq order.
  std::deque<std::pair<std::uint64_t, Clock::time_point>> pending_visibility_;
  std::vector<double> latencies_s_;

  /// Guards only the snapshot pointer swap/copy — held for nanoseconds,
  /// never while the engine runs, so query() effectively never waits.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;
};

}  // namespace pimtc::serve
