// One tenant of the serving layer: an engine session with a bounded ingest
// queue, drained asynchronously, queried through atomically-swapped
// snapshots.
//
// Concurrency contract (see DESIGN.md "Serving layer"):
//  * the engine is touched only by the drain task, and at most one drain
//    task per session is scheduled at a time — engine code needs no
//    internal locking;
//  * submit() appends to the queue under the state mutex and (re)schedules
//    the drain; with AdmissionPolicy::kBlock it waits for queue space,
//    with kReject it fails fast;
//  * query() copies the current snapshot pointer under a lock that is
//    never held across engine work, so reads do not block ingestion and
//    ingestion does not block reads;
//  * flush() is the read-your-writes barrier: it returns once every batch
//    accepted before the call is covered by a published snapshot;
//  * close() stops admission, lets the queued batches drain, and returns
//    when the session is quiescent — accepted work is never dropped.
//
// Sessions are created and owned by SessionManager (session_manager.hpp);
// this header is separate so the manager stays a thin directory.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "engine/engine.hpp"
#include "serve/types.hpp"

namespace pimtc::serve {

class SessionManager;

class Session : public std::enable_shared_from_this<Session> {
 public:
  /// Constructed by SessionManager::open() with a freshly built engine.
  Session(std::string name,
          std::unique_ptr<engine::TriangleCountEngine> engine,
          AdmissionPolicy policy, const ServeConfig& config,
          SessionManager* manager);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] AdmissionPolicy policy() const noexcept { return policy_; }

  /// Enqueues one update batch.  An empty batch is an accepted no-op.
  SubmitResult submit(std::span<const EdgeUpdate> batch)
      PIMTC_EXCLUDES(state_mutex_);

  /// Snapshot-consistent, non-blocking read (see QueryResult).
  [[nodiscard]] QueryResult query() const
      PIMTC_EXCLUDES(state_mutex_, snapshot_mutex_);

  /// Blocks until everything accepted before the call is published.
  void flush() PIMTC_EXCLUDES(state_mutex_);

  /// Stops admission, drains accepted batches, waits for quiescence.
  /// Idempotent; safe to call concurrently with blocked submitters (they
  /// wake and report kClosed).
  void close() PIMTC_EXCLUDES(state_mutex_);

  /// Copy of the recorded update->visible latencies, in seconds (one
  /// sample per published batch, capped by ServeConfig).
  [[nodiscard]] std::vector<double> latencies() const
      PIMTC_EXCLUDES(state_mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Batch {
    std::uint64_t seq = 0;  ///< 1-based admission order
    std::vector<EdgeUpdate> updates;
  };

  /// Immutable once published; readers copy the shared_ptr and go.
  struct Snapshot {
    std::uint64_t epoch = 0;
    std::uint64_t through_seq = 0;  ///< last batch this recount covers
    engine::CountReport report;
  };

  /// Schedules the drain task if none is pending.
  void schedule_drain_locked() PIMTC_REQUIRES(state_mutex_);

  /// Queue has room for `n` more updates (soft bound: an oversized batch
  /// is admitted alone, so every batch is eventually servable).
  [[nodiscard]] bool has_space(std::uint64_t n) const
      PIMTC_REQUIRES(state_mutex_) {
    return queued_updates_ + n <= config_.queue_capacity_updates ||
           queue_.empty();
  }

  /// The drain loop: applies queued batches to the engine in admission
  /// order, publishing snapshots at the configured cadence and whenever
  /// the queue runs dry, then parks.  At most one instance runs at a time.
  /// EXCLUDES is the single-drainer contract made static: engine work is
  /// never entered holding either mutex.
  void drain() PIMTC_EXCLUDES(state_mutex_, snapshot_mutex_);

  /// recount() + atomic snapshot swap + latency/flush bookkeeping.
  /// Called only from drain().
  void publish_snapshot() PIMTC_EXCLUDES(state_mutex_, snapshot_mutex_);

  const std::string name_;
  const AdmissionPolicy policy_;
  const ServeConfig config_;
  SessionManager* const manager_;

  /// Engine access is serialized by the single-drain invariant; the state
  /// mutex is never held during engine calls.
  std::unique_ptr<engine::TriangleCountEngine> engine_;

  mutable Mutex state_mutex_;
  std::condition_variable space_cv_;    ///< blocked submitters
  std::condition_variable applied_cv_;  ///< flush() / close() waiters
  std::deque<Batch> queue_ PIMTC_GUARDED_BY(state_mutex_);
  std::uint64_t queued_updates_ PIMTC_GUARDED_BY(state_mutex_) = 0;
  /// Last admitted batch.
  std::uint64_t accepted_seq_ PIMTC_GUARDED_BY(state_mutex_) = 0;
  /// Last batch applied to the engine.
  std::uint64_t applied_seq_ PIMTC_GUARDED_BY(state_mutex_) = 0;
  /// Last batch covered by a snapshot.
  std::uint64_t published_seq_ PIMTC_GUARDED_BY(state_mutex_) = 0;
  std::uint32_t unpublished_batches_ PIMTC_GUARDED_BY(state_mutex_) = 0;
  bool drain_scheduled_ PIMTC_GUARDED_BY(state_mutex_) = false;
  bool closing_ PIMTC_GUARDED_BY(state_mutex_) = false;
  SessionStats stats_ PIMTC_GUARDED_BY(state_mutex_);
  /// Admission timestamps awaiting visibility, in seq order.
  std::deque<std::pair<std::uint64_t, Clock::time_point>> pending_visibility_
      PIMTC_GUARDED_BY(state_mutex_);
  std::vector<double> latencies_s_ PIMTC_GUARDED_BY(state_mutex_);

  /// Guards only the snapshot pointer swap/copy — held for nanoseconds,
  /// never while the engine runs, so query() effectively never waits.
  mutable Mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_ PIMTC_GUARDED_BY(snapshot_mutex_);
};

}  // namespace pimtc::serve
