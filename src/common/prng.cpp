#include "common/prng.hpp"

namespace pimtc {

std::uint64_t Xoshiro256ss::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire 2019: multiply-shift with rejection of the biased low range.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace pimtc
