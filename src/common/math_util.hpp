// Small numeric helpers used across the sampling estimators and the
// coloring layout math.
#pragma once

#include <bit>
#include <cstdint>

namespace pimtc {

/// binom(n, k) in 64 bits; callers only need tiny n (number of colors <= 64),
/// so overflow is not a practical concern but is still guarded.
[[nodiscard]] std::uint64_t binomial(std::uint64_t n, std::uint64_t k) noexcept;

/// Number of PIM cores required by C colors: the count of ordered color
/// triplets i <= j <= k, i.e. multisets of size 3 = binom(C+2, 3).
[[nodiscard]] std::uint64_t num_triplets(std::uint32_t num_colors) noexcept;

/// Largest C such that binom(C+2,3) <= num_cores; how many colors a given
/// machine (e.g. 2560 DPUs) can sustain.  The paper uses C=23 -> 2300 DPUs
/// on a 2560-DPU system.
[[nodiscard]] std::uint32_t max_colors_for_cores(std::uint64_t num_cores) noexcept;

/// Reservoir-sampling correction factor (paper Section 3.3):
///   q = M(M-1)(M-2) / (t(t-1)(t-2)),   q = 1 when t <= M.
/// The per-core triangle count is divided by q.  Returns 0 when the sample
/// can never contain a triangle (M < 3 but t >= 3), in which case the count
/// is necessarily 0 as well and the caller treats the core as contributing
/// nothing.
[[nodiscard]] double reservoir_correction(std::uint64_t sample_capacity,
                                          std::uint64_t edges_seen) noexcept;

/// DOULION correction: an estimator for the true count given a count over a
/// graph whose edges were kept independently with probability p (divide by
/// p^3).  p must be in (0, 1].
[[nodiscard]] double uniform_sampling_correction(double keep_probability) noexcept;

/// Relative error |estimate - truth| / truth, with the paper's convention
/// that truth == 0 yields 0 when estimate == 0 and infinity otherwise, and
/// counting zero triangles against a nonzero truth gives 100%.
[[nodiscard]] double relative_error(double estimate, double truth) noexcept;

/// Integer ceil division.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Round `a` up to a multiple of `b` (transfer alignment in the PIM model).
[[nodiscard]] constexpr std::uint64_t round_up(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return ceil_div(a, b) * b;
}

/// ceil(log2(n)) for n >= 1; 0 for n <= 1.  Sort-pass and binary-search
/// depth bounds in the kernel cost model.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t n) noexcept {
  return n <= 1 ? 0 : static_cast<std::uint32_t>(64 - std::countl_zero(n - 1));
}

}  // namespace pimtc
