#include "common/math_util.hpp"

#include <cmath>
#include <limits>

namespace pimtc {

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) noexcept {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // Multiply first, divide after: result * (n-k+i) is always divisible by i
    // at this point, so the division is exact.
    result = result * (n - k + i) / i;
  }
  return result;
}

std::uint64_t num_triplets(std::uint32_t num_colors) noexcept {
  return binomial(static_cast<std::uint64_t>(num_colors) + 2, 3);
}

std::uint32_t max_colors_for_cores(std::uint64_t num_cores) noexcept {
  std::uint32_t c = 0;
  while (num_triplets(c + 1) <= num_cores) ++c;
  return c;
}

double reservoir_correction(std::uint64_t sample_capacity,
                            std::uint64_t edges_seen) noexcept {
  const std::uint64_t m = sample_capacity;
  const std::uint64_t t = edges_seen;
  if (t <= m) return 1.0;
  if (m < 3) return 0.0;
  const double md = static_cast<double>(m);
  const double td = static_cast<double>(t);
  return (md * (md - 1.0) * (md - 2.0)) / (td * (td - 1.0) * (td - 2.0));
}

double uniform_sampling_correction(double keep_probability) noexcept {
  if (keep_probability <= 0.0) return std::numeric_limits<double>::infinity();
  if (keep_probability >= 1.0) return 1.0;
  return 1.0 / (keep_probability * keep_probability * keep_probability);
}

double relative_error(double estimate, double truth) noexcept {
  if (truth == 0.0) {
    return estimate == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::abs(estimate - truth) / std::abs(truth);
}

}  // namespace pimtc
