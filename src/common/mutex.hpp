// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// std::mutex and std::lock_guard carry no capability attributes under
// libstdc++, so -Wthread-safety cannot see locks acquired through them.
// Mutex wraps std::mutex as an annotated capability and MutexLock is the
// annotated scoped guard the analysis tracks — including mid-scope
// unlock()/lock() (the serving layer releases the session state mutex
// around engine work) and condition-variable waits.
//
// Wait discipline: there is deliberately no wait-with-predicate overload.
// A predicate lambda is a separate function to the analysis, so guarded
// reads inside it cannot be proven; instead, callers spell the textbook
// equivalent
//
//     while (!condition) lock.wait(cv);
//
// where `condition` reads guarded state directly in the scope that
// provably holds the mutex.  cv.wait() releases and reacquires the native
// mutex internally, which matches the analysis' view that the capability
// is held continuously across the call.
//
// Zero overhead: both types compile to the std primitives they wrap, with
// MutexLock holding a std::unique_lock so std::condition_variable (not the
// slower condition_variable_any) keeps working.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.hpp"

namespace pimtc {

/// std::mutex as a Clang TSA capability.
class PIMTC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PIMTC_ACQUIRE() { m_.lock(); }
  void unlock() PIMTC_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() PIMTC_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

  /// The wrapped mutex, for MutexLock's std::unique_lock.  Locking through
  /// this reference is invisible to the analysis — do not use it directly.
  [[nodiscard]] std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

/// Scoped lock the analysis tracks; supports mid-scope unlock()/lock() and
/// condition-variable waits (see the header comment for the discipline).
class PIMTC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) PIMTC_ACQUIRE(m) : lock_(m.native()) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() PIMTC_RELEASE() {}

  /// Mid-scope release (e.g. dropping the state mutex before touching the
  /// admission budget); the destructor then releases nothing.
  void unlock() PIMTC_RELEASE() { lock_.unlock(); }

  /// Reacquire after a mid-scope unlock().
  void lock() PIMTC_ACQUIRE() { lock_.lock(); }

  /// One blocking wait on `cv`.  The native mutex is released while
  /// waiting and held again on return, so from the caller's (and the
  /// analysis') perspective the capability is held across the call; any
  /// guarded condition must be re-checked by the surrounding while-loop.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace pimtc
