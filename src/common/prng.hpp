// Deterministic pseudo-random number generation.
//
// All randomized components of the library (coloring hash parameters,
// reservoir replacement, uniform edge sampling, graph generators) take a
// 64-bit seed so every experiment is reproducible bit-for-bit.  We provide
// two generators:
//
//  * SplitMix64  - tiny, stateless-ish stream generator used for seeding and
//                  hashing; passes BigCrush on its own.
//  * Xoshiro256ss - the main generator (xoshiro256**), fast and with 256 bits
//                  of state; satisfies UniformRandomBitGenerator so it plugs
//                  into <random> distributions when needed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace pimtc {

/// SplitMix64 (Steele, Lea, Flood 2014).  Used to expand one seed into many
/// and as the stream generator in the graph generators' hot loops.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna 2018).
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a SplitMix64 stream, as the authors
  /// recommend.  A zero seed is fine (SplitMix64 never emits all-zero state).
  constexpr explicit Xoshiro256ss(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  constexpr bool next_bernoulli(double p) noexcept {
    if (p >= 1.0) return true;
    if (p <= 0.0) return false;
    return next_double() < p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

/// Derives a child seed from (seed, stream-id); used to give every host
/// thread / DPU / experiment repetition an independent stream.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t stream) noexcept {
  SplitMix64 sm(seed ^ (0x632be59bd9b4e019ull * (stream + 1)));
  sm();
  return sm();
}

}  // namespace pimtc
