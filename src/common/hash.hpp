// Universal hashing over node IDs.
//
// The coloring step of the algorithm (paper Section 3.1) colors node u with
//     h_C(u) = ((a*u + b) mod p) mod C
// where p is a large prime, a in [1, p-1] and b in [0, p-1] are drawn at
// random.  This is the classic Carter-Wegman multiply-add family; with p
// prime it is 2-universal, which is what guarantees the near-even color
// distribution the partitioning relies on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/prng.hpp"
#include "common/types.hpp"

namespace pimtc {

/// The Mersenne prime 2^61 - 1.  Large enough that node IDs (32-bit) never
/// alias, and reduction mod p can be done without 128-bit division.
inline constexpr std::uint64_t kMersenne61 = (1ull << 61) - 1;

/// Reduces a 128-bit product modulo 2^61 - 1 using the Mersenne identity
/// x mod (2^61-1) = (x >> 61) + (x & (2^61-1)), applied twice.
[[nodiscard]] constexpr std::uint64_t mod_mersenne61(__uint128_t x) noexcept {
  std::uint64_t r = static_cast<std::uint64_t>(x >> 61) +
                    static_cast<std::uint64_t>(x & kMersenne61);
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// Carter-Wegman multiply-add hash h(u) = ((a*u + b) mod p) mod C with
/// p = 2^61 - 1.  Immutable after construction; cheap to copy into every
/// host thread.
class ColorHash {
 public:
  /// Draws a, b from the given seed.  `num_colors` must be >= 1.
  ColorHash(std::uint32_t num_colors, std::uint64_t seed) noexcept
      : num_colors_(num_colors) {
    Xoshiro256ss rng(seed);
    a_ = 1 + rng.next_below(kMersenne61 - 1);  // a in [1, p-1]
    b_ = rng.next_below(kMersenne61);          // b in [0, p-1]
  }

  /// Fully specified constructor (used by tests to pin the hash).
  ColorHash(std::uint32_t num_colors, std::uint64_t a, std::uint64_t b) noexcept
      : num_colors_(num_colors), a_(a % kMersenne61), b_(b % kMersenne61) {
    if (a_ == 0) a_ = 1;
  }

  [[nodiscard]] std::uint32_t num_colors() const noexcept { return num_colors_; }
  [[nodiscard]] std::uint64_t a() const noexcept { return a_; }
  [[nodiscard]] std::uint64_t b() const noexcept { return b_; }

  /// Color of node u, in [0, num_colors).
  [[nodiscard]] std::uint32_t operator()(NodeId u) const noexcept {
    const __uint128_t prod = static_cast<__uint128_t>(a_) * u + b_;
    return static_cast<std::uint32_t>(mod_mersenne61(prod) % num_colors_);
  }

 private:
  std::uint32_t num_colors_;
  std::uint64_t a_;
  std::uint64_t b_;
};

/// 64-bit mix used wherever a stateless scramble of an integer is needed
/// (hash tables, sharding work across threads).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Streaming XXH64 (Yann Collet's xxHash, 64-bit variant) — the payload
/// checksum of the `.pbin` edge format.  Streaming matters there: the
/// chunked reader verifies a multi-gigabyte payload chunk-at-a-time without
/// ever holding more than one chunk, and the writer folds each appended
/// chunk into the running state.  update() in any split of the input
/// produces the same digest as one call over the concatenation.
class Xxh64 {
 public:
  explicit Xxh64(std::uint64_t seed = 0) noexcept { reset(seed); }

  void reset(std::uint64_t seed = 0) noexcept {
    v1_ = seed + kP1 + kP2;
    v2_ = seed + kP2;
    v3_ = seed;
    v4_ = seed - kP1;
    seed_ = seed;
    total_ = 0;
    buffered_ = 0;
  }

  void update(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    total_ += len;
    if (buffered_ + len < 32) {  // not enough for a stripe yet
      for (std::size_t i = 0; i < len; ++i) buf_[buffered_ + i] = p[i];
      buffered_ += len;
      return;
    }
    if (buffered_ > 0) {  // complete the carried stripe
      const std::size_t take = 32 - buffered_;
      for (std::size_t i = 0; i < take; ++i) buf_[buffered_ + i] = p[i];
      consume_stripe(buf_);
      p += take;
      len -= take;
      buffered_ = 0;
    }
    while (len >= 32) {
      consume_stripe(p);
      p += 32;
      len -= 32;
    }
    for (std::size_t i = 0; i < len; ++i) buf_[i] = p[i];
    buffered_ = len;
  }

  /// Digest of everything updated so far; the state stays usable (more
  /// update() calls continue the same stream).
  [[nodiscard]] std::uint64_t digest() const noexcept {
    std::uint64_t h;
    if (total_ >= 32) {
      h = rotl(v1_, 1) + rotl(v2_, 7) + rotl(v3_, 12) + rotl(v4_, 18);
      h = (h ^ round(0, v1_)) * kP1 + kP4;
      h = (h ^ round(0, v2_)) * kP1 + kP4;
      h = (h ^ round(0, v3_)) * kP1 + kP4;
      h = (h ^ round(0, v4_)) * kP1 + kP4;
    } else {
      h = seed_ + kP5;
    }
    h += total_;
    const unsigned char* p = buf_;
    std::size_t len = buffered_;
    while (len >= 8) {
      h = rotl(h ^ round(0, read64(p)), 27) * kP1 + kP4;
      p += 8;
      len -= 8;
    }
    if (len >= 4) {
      h = rotl(h ^ (static_cast<std::uint64_t>(read32(p)) * kP1), 23) * kP2 +
          kP3;
      p += 4;
      len -= 4;
    }
    while (len > 0) {
      h = rotl(h ^ (*p * kP5), 11) * kP1;
      ++p;
      --len;
    }
    h ^= h >> 33;
    h *= kP2;
    h ^= h >> 29;
    h *= kP3;
    h ^= h >> 32;
    return h;
  }

 private:
  static constexpr std::uint64_t kP1 = 0x9e3779b185ebca87ull;
  static constexpr std::uint64_t kP2 = 0xc2b2ae3d27d4eb4full;
  static constexpr std::uint64_t kP3 = 0x165667b19e3779f9ull;
  static constexpr std::uint64_t kP4 = 0x85ebca77c2b2ae63ull;
  static constexpr std::uint64_t kP5 = 0x27d4eb2f165667c5ull;

  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int r) noexcept {
    return (x << r) | (x >> (64 - r));
  }
  [[nodiscard]] static constexpr std::uint64_t round(
      std::uint64_t acc, std::uint64_t lane) noexcept {
    return rotl(acc + lane * kP2, 31) * kP1;
  }
  [[nodiscard]] static std::uint64_t read64(const unsigned char* p) noexcept {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];  // little-endian
    return v;
  }
  [[nodiscard]] static std::uint32_t read32(const unsigned char* p) noexcept {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }
  void consume_stripe(const unsigned char* p) noexcept {
    v1_ = round(v1_, read64(p));
    v2_ = round(v2_, read64(p + 8));
    v3_ = round(v3_, read64(p + 16));
    v4_ = round(v4_, read64(p + 24));
  }

  std::uint64_t v1_, v2_, v3_, v4_;
  std::uint64_t seed_ = 0;
  std::uint64_t total_ = 0;
  unsigned char buf_[32] = {};
  std::size_t buffered_ = 0;
};

/// One-shot XXH64 of a buffer.
[[nodiscard]] inline std::uint64_t xxhash64(const void* data, std::size_t len,
                                            std::uint64_t seed = 0) noexcept {
  Xxh64 h(seed);
  h.update(data, len);
  return h.digest();
}

}  // namespace pimtc
