// Universal hashing over node IDs.
//
// The coloring step of the algorithm (paper Section 3.1) colors node u with
//     h_C(u) = ((a*u + b) mod p) mod C
// where p is a large prime, a in [1, p-1] and b in [0, p-1] are drawn at
// random.  This is the classic Carter-Wegman multiply-add family; with p
// prime it is 2-universal, which is what guarantees the near-even color
// distribution the partitioning relies on.
#pragma once

#include <cstdint>

#include "common/prng.hpp"
#include "common/types.hpp"

namespace pimtc {

/// The Mersenne prime 2^61 - 1.  Large enough that node IDs (32-bit) never
/// alias, and reduction mod p can be done without 128-bit division.
inline constexpr std::uint64_t kMersenne61 = (1ull << 61) - 1;

/// Reduces a 128-bit product modulo 2^61 - 1 using the Mersenne identity
/// x mod (2^61-1) = (x >> 61) + (x & (2^61-1)), applied twice.
[[nodiscard]] constexpr std::uint64_t mod_mersenne61(__uint128_t x) noexcept {
  std::uint64_t r = static_cast<std::uint64_t>(x >> 61) +
                    static_cast<std::uint64_t>(x & kMersenne61);
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// Carter-Wegman multiply-add hash h(u) = ((a*u + b) mod p) mod C with
/// p = 2^61 - 1.  Immutable after construction; cheap to copy into every
/// host thread.
class ColorHash {
 public:
  /// Draws a, b from the given seed.  `num_colors` must be >= 1.
  ColorHash(std::uint32_t num_colors, std::uint64_t seed) noexcept
      : num_colors_(num_colors) {
    Xoshiro256ss rng(seed);
    a_ = 1 + rng.next_below(kMersenne61 - 1);  // a in [1, p-1]
    b_ = rng.next_below(kMersenne61);          // b in [0, p-1]
  }

  /// Fully specified constructor (used by tests to pin the hash).
  ColorHash(std::uint32_t num_colors, std::uint64_t a, std::uint64_t b) noexcept
      : num_colors_(num_colors), a_(a % kMersenne61), b_(b % kMersenne61) {
    if (a_ == 0) a_ = 1;
  }

  [[nodiscard]] std::uint32_t num_colors() const noexcept { return num_colors_; }
  [[nodiscard]] std::uint64_t a() const noexcept { return a_; }
  [[nodiscard]] std::uint64_t b() const noexcept { return b_; }

  /// Color of node u, in [0, num_colors).
  [[nodiscard]] std::uint32_t operator()(NodeId u) const noexcept {
    const __uint128_t prod = static_cast<__uint128_t>(a_) * u + b_;
    return static_cast<std::uint32_t>(mod_mersenne61(prod) % num_colors_);
  }

 private:
  std::uint32_t num_colors_;
  std::uint64_t a_;
  std::uint64_t b_;
};

/// 64-bit mix used wherever a stateless scramble of an integer is needed
/// (hash tables, sharding work across threads).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace pimtc
