// Core value types shared by every pimtc module.
//
// The library follows the paper's conventions: a graph is simple, unweighted
// and undirected; vertices are identified by non-negative integers; an edge is
// an ordered pair (u, v).  Inside PIM samples the invariant u < v holds (the
// counting kernel requires it); in raw COO input both orders may appear.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace pimtc {

/// Vertex identifier.  32 bits cover every graph in the paper (max |V| is
/// ~214 M for V1r) and keep an Edge at 8 bytes, which matters for MRAM
/// capacity modelling: a 64 MB DRAM bank holds exactly 8 Mi edges.
using NodeId = std::uint32_t;

/// Count of edges / triangles.  Triangle counts overflow 32 bits (Human-Jung
/// has 4.17e10 triangles), so counts are always 64-bit.
using EdgeCount = std::uint64_t;
using TriangleCount = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// A directed pair of vertices.  POD on purpose: it is the unit of every
/// host<->PIM transfer and of MRAM storage, so layout must be exactly
/// 2 x 32 bits with no padding.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  /// Lexicographic order used by the DPU sort phase (paper Section 3.4):
  /// (u,v) < (w,z)  <=>  u < w  or  (u == w and v < z).
  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;

  /// Returns the edge with endpoints swapped.
  [[nodiscard]] constexpr Edge reversed() const noexcept { return {v, u}; }

  /// Returns the canonical orientation (min endpoint first) required by the
  /// PIM counting kernel.
  [[nodiscard]] constexpr Edge canonical() const noexcept {
    return u <= v ? *this : Edge{v, u};
  }

  /// True when the edge is a self loop (removed during preprocessing).
  [[nodiscard]] constexpr bool is_loop() const noexcept { return u == v; }
};

static_assert(sizeof(Edge) == 8, "Edge must be 8 bytes for MRAM modelling");

/// Packs an edge into a single 64-bit key (u in the high half) so sorting a
/// vector of keys and a vector of edges are interchangeable.
[[nodiscard]] constexpr std::uint64_t edge_key(Edge e) noexcept {
  return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
}

[[nodiscard]] constexpr Edge edge_from_key(std::uint64_t k) noexcept {
  return Edge{static_cast<NodeId>(k >> 32),
              static_cast<NodeId>(k & 0xffffffffu)};
}

/// One element of a fully-dynamic edge stream: an edge plus a ±sign.  An
/// insertion adds the edge to the graph; a deletion removes a previously
/// inserted edge.  Streams mixing both drive the apply() verb of the
/// engines; insertion-only streams are exactly the add_edges() case.
struct EdgeUpdate {
  Edge edge{};
  bool is_insert = true;

  friend constexpr bool operator==(const EdgeUpdate&,
                                   const EdgeUpdate&) = default;
};

[[nodiscard]] constexpr EdgeUpdate insert_of(Edge e) noexcept {
  return {e, true};
}

[[nodiscard]] constexpr EdgeUpdate delete_of(Edge e) noexcept {
  return {e, false};
}

}  // namespace pimtc

template <>
struct std::hash<pimtc::Edge> {
  std::size_t operator()(const pimtc::Edge& e) const noexcept {
    // splitmix64-style finalizer over the packed key.
    std::uint64_t x = pimtc::edge_key(e);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
