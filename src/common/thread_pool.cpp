#include "common/thread_pool.hpp"

#include <algorithm>

namespace pimtc {

namespace {

/// The pool whose worker_loop the calling thread is executing, if any.
/// Drives the caller-runs fallback of the blocking primitives: a worker
/// that re-enters its own pool must not wait on a slot it occupies.
thread_local const ThreadPool* current_pool = nullptr;

/// Per-invocation completion state of one parallel_for/parallel_chunks
/// call.  Owned jointly by the caller and its tasks: with the pool shared
/// between concurrent callers (the serving layer's sessions), a global
/// in-flight counter would make callers wait on each other's tasks and
/// leak exceptions across calls.
struct Completion {
  Mutex mutex;
  std::condition_variable cv;
  std::size_t remaining PIMTC_GUARDED_BY(mutex);
  std::exception_ptr first_error PIMTC_GUARDED_BY(mutex);

  explicit Completion(std::size_t n) : remaining(n) {}

  void finish_one(std::exception_ptr error) PIMTC_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (error && !first_error) first_error = std::move(error);
    if (--remaining == 0) cv.notify_all();
  }

  void wait() PIMTC_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    while (remaining != 0) lock.wait(cv);
    if (first_error) std::rethrow_exception(first_error);
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) lock.wait(cv_task_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(fn));
  }
  cv_task_.notify_one();
}

bool ThreadPool::on_pool_thread() const noexcept {
  return current_pool == this;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Inline when parallelism cannot help (one iteration, one worker) or must
  // not be used (nested call from a worker of this very pool: blocking on
  // the queue would deadlock once every worker waits like this).
  if (n == 1 || workers_.size() == 1 || on_pool_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Block distribution with one task per worker keeps queue traffic O(T).
  const std::size_t num_tasks = std::min(n, workers_.size());
  auto done = std::make_shared<Completion>(num_tasks);
  const std::size_t base = n / num_tasks;
  const std::size_t rem = n % num_tasks;
  std::size_t begin = 0;
  for (std::size_t t = 0; t < num_tasks; ++t) {
    const std::size_t len = base + (t < rem ? 1 : 0);
    const std::size_t end = begin + len;
    enqueue([&fn, done, begin, end] {
      std::exception_ptr error;
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      done->finish_one(std::move(error));
    });
    begin = end;
  }
  done->wait();
}

void ThreadPool::parallel_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t num_tasks = std::min(n, workers_.size());
  if (num_tasks <= 1 || on_pool_thread()) {
    fn(0, 0, n);
    return;
  }
  auto done = std::make_shared<Completion>(num_tasks);
  const std::size_t base = n / num_tasks;
  const std::size_t rem = n % num_tasks;
  std::size_t begin = 0;
  for (std::size_t t = 0; t < num_tasks; ++t) {
    const std::size_t len = base + (t < rem ? 1 : 0);
    const std::size_t end = begin + len;
    enqueue([&fn, done, t, begin, end] {
      std::exception_ptr error;
      try {
        fn(t, begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      done->finish_one(std::move(error));
    });
    begin = end;
  }
  done->wait();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pimtc
