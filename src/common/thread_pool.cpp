#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace pimtc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task.fn();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0 && queue_.empty()) cv_done_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(Task{std::move(fn)});
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0 && queue_.empty(); });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Block distribution with one task per worker keeps queue traffic O(T).
  const std::size_t num_tasks = std::min(n, workers_.size());
  const std::size_t base = n / num_tasks;
  const std::size_t rem = n % num_tasks;
  std::size_t begin = 0;
  for (std::size_t t = 0; t < num_tasks; ++t) {
    const std::size_t len = base + (t < rem ? 1 : 0);
    const std::size_t end = begin + len;
    submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
    begin = end;
  }
  wait_idle();
}

void ThreadPool::parallel_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t num_tasks = std::min(n, workers_.size());
  if (num_tasks <= 1) {
    fn(0, 0, n);
    return;
  }
  const std::size_t base = n / num_tasks;
  const std::size_t rem = n % num_tasks;
  std::size_t begin = 0;
  for (std::size_t t = 0; t < num_tasks; ++t) {
    const std::size_t len = base + (t < rem ? 1 : 0);
    const std::size_t end = begin + len;
    submit([&fn, t, begin, end] { fn(t, begin, end); });
    begin = end;
  }
  wait_idle();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pimtc
