// Clang Thread Safety Analysis annotation macros.
//
// The serving layer and the thread pool make hard lock-discipline promises
// (single drainer per session, snapshot mutex never held across engine
// work, fixed mutex acquisition order between the admission budget and the
// session state) that used to be enforced only dynamically, by the TSan CI
// job.  These macros attach those promises to the types themselves so that
// Clang's -Wthread-safety analysis checks them at compile time; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html and DESIGN.md
// "Static analysis & correctness tooling".
//
// Under any compiler without the analysis (gcc builds, MSVC) every macro
// expands to nothing, so annotated code stays portable.  The CI
// static-analysis job builds with clang and -Wthread-safety -Werror, which
// turns a lock-discipline regression into a build failure.
//
// Use PIMTC_-prefixed macros only: the unprefixed attribute spellings
// (GUARDED_BY, REQUIRES, ...) collide with other libraries' headers.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PIMTC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PIMTC_THREAD_ANNOTATION
#define PIMTC_THREAD_ANNOTATION(x)  // expands to nothing off-Clang
#endif

/// Marks a type as a lockable capability (our Mutex wrapper).
#define PIMTC_CAPABILITY(x) PIMTC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (our MutexLock wrapper).
#define PIMTC_SCOPED_CAPABILITY PIMTC_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the named mutex.
#define PIMTC_GUARDED_BY(x) PIMTC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named mutex.
#define PIMTC_PT_GUARDED_BY(x) PIMTC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while already holding the named mutex(es); the
/// "_locked" suffix convention in this codebase pairs with this macro.
#define PIMTC_REQUIRES(...) \
  PIMTC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the named mutex(es) and returns holding them.
#define PIMTC_ACQUIRE(...) \
  PIMTC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the named mutex(es).
#define PIMTC_RELEASE(...) \
  PIMTC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the mutex only when returning `result`.
#define PIMTC_TRY_ACQUIRE(...) \
  PIMTC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must be entered *without* the named mutex(es) held — the
/// compile-time form of "this call blocks / runs engine work, never hold
/// the snapshot or state mutex across it".
#define PIMTC_EXCLUDES(...) PIMTC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Assert-at-runtime escape hatch: tells the analysis the capability is
/// held without acquiring it (for code reachable only under a lock the
/// analysis cannot see).
#define PIMTC_ASSERT_CAPABILITY(x) \
  PIMTC_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the named capability.
#define PIMTC_RETURN_CAPABILITY(x) PIMTC_THREAD_ANNOTATION(lock_returned(x))

/// Last resort: disables the analysis for one function.  Every use must
/// carry a justification comment (same policy as NOLINT).
#define PIMTC_NO_THREAD_SAFETY_ANALYSIS \
  PIMTC_THREAD_ANNOTATION(no_thread_safety_analysis)
