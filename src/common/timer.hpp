// Wall-clock timing helpers.
//
// The evaluation splits every PIM run into three phases (Setup, Sample
// creation, Triangle count); host-side phases are wall-clock measured while
// device-side phases come from the simulator's cycle model.  WallTimer is the
// host half of that story.
#pragma once

#include <chrono>
#include <cstdint>

namespace pimtc {

class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;

  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  Clock::time_point start_;
};

/// Accumulates phase durations across repeated runs (mean over N runs is what
/// the paper plots; coefficient of variance < 5%).
struct PhaseAccumulator {
  double total_s = 0.0;
  std::uint64_t samples = 0;

  void add(double seconds) {
    total_s += seconds;
    ++samples;
  }

  [[nodiscard]] double mean_s() const {
    return samples == 0 ? 0.0 : total_s / static_cast<double>(samples);
  }
};

}  // namespace pimtc
