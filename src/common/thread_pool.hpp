// A small fixed-size thread pool with a blocking parallel_for.
//
// The host side of the paper's system uses 32 CPU threads to stream the edge
// file, build per-DPU batches and run Misra-Gries summaries; the simulator
// additionally uses host threads to execute DPU kernels functionally.  The
// pool is created once and reused: thread creation cost would otherwise
// pollute the "Setup time" phase measurements.
//
// Design notes (C++ Core Guidelines CP.*):
//  * no detached threads; the destructor joins everything (RAII),
//  * tasks are plain std::function<void()> — the pool is not a scheduler,
//  * parallel_for blocks the caller and rethrows the first task exception.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pimtc {

class ThreadPool {
 public:
  /// Creates `num_threads` workers.  0 means std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool, blocking until every
  /// iteration finished.  Iterations are distributed in contiguous blocks so
  /// that per-thread state (thread-local batches, RNG streams) maps naturally
  /// to block index.  The first exception thrown by any iteration is
  /// rethrown in the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(t, begin, end) once per worker t with [begin,end) a contiguous
  /// chunk of [0, n).  This is the "one batch array per host thread" shape
  /// used by the batch builder: each thread owns a private chunk of the edge
  /// stream.
  void parallel_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Global pool sized to hardware concurrency; shared by the library when
  /// callers do not supply their own.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  void submit(std::function<void()> fn);
  void wait_idle();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace pimtc
