// A small fixed-size thread pool: async task submission plus a blocking
// parallel_for.
//
// The host side of the paper's system uses 32 CPU threads to stream the edge
// file, build per-DPU batches and run Misra-Gries summaries; the simulator
// additionally uses host threads to execute DPU kernels functionally.  The
// serving layer (src/serve/) reuses the same pool as a task scheduler for
// long-running per-session drain work.  The pool is created once and reused:
// thread creation cost would otherwise pollute the "Setup time" phase
// measurements.
//
// Design notes (C++ Core Guidelines CP.*):
//  * no detached threads; the destructor joins everything (RAII),
//  * submit() returns a std::future carrying the result or the exception,
//  * parallel_for blocks the caller and rethrows the first task exception;
//    completion is tracked per call, so concurrent callers sharing one pool
//    neither wait on each other's tasks nor observe each other's exceptions,
//  * nested use is safe: a parallel_for/parallel_chunks issued from inside
//    one of this pool's workers runs inline in the caller (caller-runs
//    fallback) instead of blocking on the pool it occupies — the worker
//    cannot deadlock waiting for a slot it is itself holding.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace pimtc {

class ThreadPool {
 public:
  /// Creates `num_threads` workers.  0 means std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins every worker.  Tasks already queued still run to completion —
  /// a submitted task is never silently dropped.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Schedules `fn` to run on some worker and returns a future for its
  /// result.  Exceptions thrown by `fn` surface through the future.  This
  /// is the scheduler API the serving layer drains session queues with;
  /// unlike parallel_for it never blocks the caller.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs fn(i) for i in [0, n) across the pool, blocking until every
  /// iteration finished.  Iterations are distributed in contiguous blocks so
  /// that per-thread state (thread-local batches, RNG streams) maps naturally
  /// to block index.  The first exception thrown by any iteration is
  /// rethrown in the caller.  Called from inside one of this pool's own
  /// workers, the loop runs inline in that worker.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(t, begin, end) once per worker t with [begin,end) a contiguous
  /// chunk of [0, n).  This is the "one batch array per host thread" shape
  /// used by the batch builder: each thread owns a private chunk of the edge
  /// stream.  From inside one of this pool's workers it degrades to the
  /// single chunk fn(0, 0, n).
  void parallel_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.  The
  /// blocking primitives use it for their caller-runs fallback; schedulers
  /// can use it to refuse blocking waits that would starve the pool.
  [[nodiscard]] bool on_pool_thread() const noexcept;

  /// Global pool sized to hardware concurrency; shared by the library when
  /// callers do not supply their own.
  static ThreadPool& global();

 private:
  /// Fire-and-forget enqueue; `fn` must not throw (submit/parallel_for wrap
  /// user code so its exceptions are captured before they reach the worker).
  void enqueue(std::function<void()> fn) PIMTC_EXCLUDES(mutex_);
  void worker_loop() PIMTC_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::deque<std::function<void()>> queue_ PIMTC_GUARDED_BY(mutex_);
  std::condition_variable cv_task_;
  bool stop_ PIMTC_GUARDED_BY(mutex_) = false;
};

}  // namespace pimtc
