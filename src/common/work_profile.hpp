// Platform-independent operation counts of one triangle-counting run.
//
// Lives in common/ because two layers share it from opposite sides: the CPU
// baseline records it while counting (baseline::CpuTriangleCounter), and
// the engine layer reports it (engine::CountReport) so the analytic
// platform models (baseline/device_model.hpp) can convert any backend's
// profile to seconds when projecting to hardware that does not exist in
// this environment.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace pimtc {

struct WorkProfile {
  std::uint64_t edges = 0;
  std::uint64_t nodes = 0;
  /// Records moved while building the internal structure (CSR conversion:
  /// degree pass + scatter pass + sort; roughly 3|E| + |E| log(avg deg)).
  std::uint64_t conversion_ops = 0;
  /// Comparisons / membership probes consumed by the counting phase.
  std::uint64_t intersection_steps = 0;
  TriangleCount triangles = 0;
};

}  // namespace pimtc
