#include "engine/engine.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "common/math_util.hpp"
#include "pim/fault.hpp"
#include "tc/kernel.hpp"
#include "tc/layout.hpp"

namespace pimtc::engine {

CountReport TriangleCountEngine::count(const graph::EdgeList& graph) {
  add_edges(graph.edges());
  return recount();
}

void TriangleCountEngine::apply(std::span<const EdgeUpdate> updates) {
  std::vector<Edge> inserts;
  inserts.reserve(updates.size());
  for (const EdgeUpdate& u : updates) {
    if (!u.is_insert) {
      throw std::invalid_argument(
          std::string(name()) +
          " backend does not support edge deletions under this "
          "configuration (capabilities().deletions is false)");
    }
    inserts.push_back(u.edge);
  }
  add_edges(inserts);
}

void TriangleCountEngine::remove_edges(std::span<const Edge> batch) {
  std::vector<EdgeUpdate> updates;
  updates.reserve(batch.size());
  for (const Edge e : batch) updates.push_back(delete_of(e));
  apply(updates);
}

void EngineConfig::validate() const {
  // 0 = auto selection; the resolved C must still satisfy the >= 2 rule.
  const std::uint32_t colors =
      num_colors == 0 ? color::PartitionPlan::auto_colors(pim.max_dpus)
                      : num_colors;
  if (colors < 2) {
    throw std::invalid_argument(
        "EngineConfig: num_colors must be >= 2 (C == 1 degenerates to one "
        "monochromatic core)");
  }
  const std::uint64_t dpus = num_triplets(colors);
  if (dpus > pim.max_dpus) {
    throw std::invalid_argument(
        "EngineConfig: " + std::to_string(colors) + " colors need " +
        std::to_string(dpus) + " PIM cores but the system has " +
        std::to_string(pim.max_dpus));
  }
  if (tasklets == 0 || tasklets > pim.max_tasklets) {
    throw std::invalid_argument(
        "EngineConfig: tasklets must be in [1, " +
        std::to_string(pim.max_tasklets) + "], got " +
        std::to_string(tasklets));
  }
  if (!(uniform_p > 0.0 && uniform_p <= 1.0)) {  // also rejects NaN
    throw std::invalid_argument("EngineConfig: uniform_p must be in (0, 1]");
  }
  const std::uint32_t max_buffer = tc::max_wram_buffer_edges(pim, tasklets);
  if (wram_buffer_edges < 4 || wram_buffer_edges > max_buffer) {
    throw std::invalid_argument(
        "EngineConfig: wram_buffer_edges must be in [4, " +
        std::to_string(max_buffer) +
        "] (kernel minimum burst; worst-case per-tasklet buffers must fit "
        "the WRAM budget), got " +
        std::to_string(wram_buffer_edges));
  }
  if (misra_gries_enabled && (mg_capacity == 0 || mg_top == 0)) {
    throw std::invalid_argument(
        "EngineConfig: Misra-Gries needs mg_capacity >= 1 and mg_top >= 1");
  }
  if (misra_gries_enabled && mg_top > mg_capacity) {
    throw std::invalid_argument(
        "EngineConfig: mg_top (" + std::to_string(mg_top) +
        ") exceeds mg_capacity (" + std::to_string(mg_capacity) +
        "): cannot remap more nodes than Misra-Gries tracks");
  }
  if (degree_ordered_remap && !misra_gries_enabled) {
    throw std::invalid_argument(
        "EngineConfig: degree_ordered_remap requires misra_gries_enabled "
        "(the ordering comes from the Misra-Gries degree estimates)");
  }
  if (gallop_margin == 0) {
    throw std::invalid_argument(
        "EngineConfig: gallop_margin must be >= 1 (auto-policy crossover "
        "factor)");
  }
  if (cpu_fast_hub_degree == 1) {
    throw std::invalid_argument(
        "EngineConfig: cpu_fast_hub_degree must be 0 (bitmap disabled) or "
        ">= 2 (a source needs two out-neighbors to close a triangle)");
  }
  if (!(rebalance_min_gain >= 1.0)) {  // also rejects NaN
    throw std::invalid_argument(
        "EngineConfig: rebalance_min_gain must be >= 1");
  }
  if (pim.dpus_per_rank == 0) {
    throw std::invalid_argument(
        "EngineConfig: pim.dpus_per_rank must be >= 1");
  }
  if (pim.dpus_per_rank > pim.max_dpus) {
    throw std::invalid_argument(
        "EngineConfig: pim.dpus_per_rank (" +
        std::to_string(pim.dpus_per_rank) + ") exceeds pim.max_dpus (" +
        std::to_string(pim.max_dpus) + ")");
  }
  const std::uint64_t max_cap = tc::MramLayout::max_capacity(pim.mram_bytes);
  if (max_cap == 0) {
    throw std::invalid_argument(
        "EngineConfig: MRAM bank too small to hold any sample");
  }
  // Reject malformed fault specs up front, with parse's own diagnostics
  // (std::invalid_argument naming the offending key).
  if (!fault_spec.empty()) (void)pim::FaultSpec::parse(fault_spec);
}

tc::TcConfig EngineConfig::to_tc_config() const {
  tc::TcConfig cfg;
  cfg.num_colors = num_colors;
  cfg.tasklets = tasklets;
  cfg.host_threads = host_threads;
  cfg.sample_capacity_edges = sample_capacity_edges;
  cfg.uniform_p = uniform_p;
  cfg.misra_gries_enabled = misra_gries_enabled;
  cfg.mg_capacity = mg_capacity;
  cfg.mg_top = mg_top;
  cfg.degree_ordered_remap = degree_ordered_remap;
  cfg.intersect = intersect;
  cfg.gallop_margin = gallop_margin;
  cfg.region_cache = region_cache;
  cfg.wram_buffer_edges = wram_buffer_edges;
  cfg.staging_capacity_edges = staging_capacity_edges;
  cfg.pipelined_ingest = pipelined_ingest;
  cfg.incremental = incremental;
  cfg.seed = seed;
  cfg.fault_spec = fault_spec;
  cfg.placement = placement;
  cfg.rebalance_enabled = rebalance_enabled;
  cfg.rebalance_min_gain = rebalance_min_gain;
  cfg.cost = cost;
  return cfg;
}

}  // namespace pimtc::engine
