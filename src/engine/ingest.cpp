#include "engine/ingest.hpp"

#include <chrono>
#include <future>
#include <unordered_set>
#include <utility>

#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace pimtc::engine {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Parallel chunks below this run the histogram sequentially — the
/// range-scan pattern only pays off once every worker has real work.
constexpr std::size_t kParallelDegreeEdges = std::size_t{1} << 16;

/// Folds one chunk into the running degree histogram.  Each pool worker
/// owns a disjoint node range and scans the whole chunk counting only its
/// own nodes (dodg.cpp phase-1 pattern): disjoint writes, no atomics, no
/// per-thread histogram copies to merge.
void accumulate_degrees(std::span<const Edge> chunk,
                        std::vector<std::uint32_t>& degrees,
                        ThreadPool& pool) {
  if (chunk.empty()) return;
  NodeId max_node = 0;
  for (const Edge& e : chunk) {
    if (e.u > max_node) max_node = e.u;
    if (e.v > max_node) max_node = e.v;
  }
  if (degrees.size() <= max_node) {
    degrees.resize(std::size_t{max_node} + 1, 0);
  }
  if (chunk.size() < kParallelDegreeEdges || pool.size() <= 1) {
    for (const Edge& e : chunk) {
      ++degrees[e.u];
      ++degrees[e.v];
    }
    return;
  }
  pool.parallel_chunks(
      degrees.size(),
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (const Edge& e : chunk) {
          if (e.u >= lo && e.u < hi) ++degrees[e.u];
          if (e.v >= lo && e.v < hi) ++degrees[e.v];
        }
      });
}

}  // namespace

IngestStats ingest_stream(
    graph::ChunkedEdgeReader& reader,
    const std::function<void(std::span<const Edge>)>& sink,
    const IngestOptions& options) {
  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::global();
  IngestStats stats;
  const bool filtering =
      options.drop_self_loops || options.dedup != DedupMode::kNone;
  std::vector<Edge> scratch;      // reused filtered-chunk buffer
  std::unordered_set<std::uint64_t> seen;  // dedup keys (canonical)

  // Producer side: reader.next() with its time charged to read_seconds.
  // Between submit() and get() only the producer touches the reader and
  // read_seconds; the future's get() is the synchronization point.
  auto timed_next = [&reader, &stats]() {
    const auto t0 = Clock::now();
    std::span<const Edge> chunk = reader.next();
    stats.read_seconds += seconds_since(t0);
    return chunk;
  };

  std::span<const Edge> chunk = timed_next();
  std::future<std::span<const Edge>> pending;
  try {
    while (!chunk.empty()) {
      if (options.overlap_io) pending = pool.submit(timed_next);

      auto t0 = Clock::now();
      std::span<const Edge> feed = chunk;
      if (filtering) {
        scratch.clear();
        if (options.dedup == DedupMode::kChunk) seen.clear();
        for (const Edge& e : chunk) {
          if (options.drop_self_loops && e.is_loop()) {
            ++stats.self_loops_dropped;
            continue;
          }
          if (options.dedup != DedupMode::kNone &&
              !seen.insert(edge_key(e.canonical())).second) {
            ++stats.duplicates_dropped;
            continue;
          }
          scratch.push_back(e);
        }
        feed = scratch;
      }
      for (const Edge& e : feed) {
        const std::uint64_t bound = std::uint64_t{e.u > e.v ? e.u : e.v} + 1;
        if (bound > stats.node_bound) stats.node_bound = bound;
      }
      if (options.compute_degrees) accumulate_degrees(feed, stats.degrees, pool);
      stats.preprocess_seconds += seconds_since(t0);

      t0 = Clock::now();
      sink(feed);
      stats.feed_seconds += seconds_since(t0);
      stats.edges_ingested += feed.size();
      ++stats.chunks;

      chunk = options.overlap_io ? pending.get() : timed_next();
    }
  } catch (...) {
    // The producer task holds a reference to the reader (owned by our
    // caller) — never unwind past it while it is still running.
    if (pending.valid()) pending.wait();
    throw;
  }

  stats.edges_read = reader.edges_read();
  stats.mapped = reader.mapped();
  return stats;
}

IngestStats ingest_file(TriangleCountEngine& engine,
                        const std::filesystem::path& path,
                        const IngestOptions& options) {
  graph::ChunkedEdgeReader reader(path, options.reader);
  return ingest_stream(
      reader,
      [&engine](std::span<const Edge> batch) {
        if (!batch.empty()) engine.add_edges(batch);
      },
      options);
}

std::vector<std::uint32_t> stream_degrees(const std::filesystem::path& path,
                                          const graph::ReaderOptions& reader,
                                          ThreadPool* pool) {
  graph::ChunkedEdgeReader source(path, reader);
  IngestOptions options;
  options.reader = reader;
  options.drop_self_loops = true;
  options.compute_degrees = true;
  options.pool = pool;
  IngestStats stats =
      ingest_stream(source, [](std::span<const Edge>) {}, options);
  return std::move(stats.degrees);
}

}  // namespace pimtc::engine
