// Unified result of one triangle-counting run, shared by every backend.
//
// CountReport is the superset of the former tc::TcResult (PIM) and
// baseline::CpuTcResult: a statistical estimate with exactness flag, a
// phase-time breakdown, a platform-independent work profile, and the
// load-balance / sampling diagnostics that the benches and the CLI print.
// Fields a backend cannot populate stay at their zero defaults; the
// capability flags on the engine (see engine.hpp) say which groups are
// meaningful.  See DESIGN.md "Engine architecture".
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/work_profile.hpp"
#include "pim/fault.hpp"
#include "pim/transfer_stats.hpp"

namespace pimtc::engine {

/// Wall-clock of one run split into the paper's phases (Section 4.1).
/// For the PIM backend the first three fields are *simulated* seconds from
/// the timing model and `host_s` is measured local host time; for the CPU
/// backends everything is measured locally (`ingest_s` = structure build /
/// conversion, `count_s` = counting).  Engines report times accumulated
/// since construction or the last reset_timers().
struct PhaseTimes {
  double setup_s = 0.0;   ///< allocation + program load (PIM only)
  double ingest_s = 0.0;  ///< sample creation / CSR conversion / batch merge
  double count_s = 0.0;   ///< the counting kernel itself
  double host_s = 0.0;    ///< measured host-CPU orchestration time

  [[nodiscard]] double total_s() const noexcept {
    return setup_s + ingest_s + count_s + host_s;
  }

  PhaseTimes& operator+=(const PhaseTimes& other) noexcept {
    setup_s += other.setup_s;
    ingest_s += other.ingest_s;
    count_s += other.count_s;
    host_s += other.host_s;
    return *this;
  }
};

/// Platform-independent operation counts of one run (common/work_profile.hpp);
/// feeds the analytic platform models for cross-hardware projection.
using WorkProfile = pimtc::WorkProfile;

/// One entry of the Misra-Gries high-degree summary (paper Section 3.5).
struct HeavyHitter {
  NodeId node = kInvalidNode;
  std::uint64_t estimated_degree = 0;
};

/// Host<->device transfer diagnostics of the rank-aware PIM runtime:
/// bulk push/pull counts, payload vs padded wire bytes, pipeline overlap.
/// Zero for backends without a transfer model.
using TransferBreakdown = pim::TransferStats;

/// Counting-kernel diagnostics of the adaptive intersection engine, summed
/// over cores for the last recount (PIM and cpu-fast backends; zeros
/// elsewhere).  The merge/gallop/bitmap split says how the per-intersection
/// strategy choice resolved; `instructions` is the kernel-instruction total
/// BENCH_kernel.json tracks.
struct KernelStats {
  std::string intersect;             ///< policy name ("auto"|"merge"|"gallop")
  std::uint64_t merge_isects = 0;    ///< intersections resolved by merge
  std::uint64_t gallop_isects = 0;   ///< intersections resolved by gallop
  std::uint64_t bitmap_isects = 0;   ///< resolved by hub bitmap (cpu-fast)
  std::uint64_t merge_picks = 0;     ///< elements consumed by merge loops
  std::uint64_t gallop_probes = 0;   ///< MRAM bursts of block binary searches
  std::uint64_t bitmap_probes = 0;   ///< bitmap membership tests (cpu-fast)
  std::uint64_t chunks_claimed = 0;  ///< strided scan chunks claimed
  std::uint64_t instructions = 0;    ///< kernel instructions this recount
  /// Counting-phase instructions alone (cache build + lookups +
  /// intersections); `instructions` additionally includes copy/sort/index.
  std::uint64_t count_instructions = 0;
};

struct CountReport {
  /// Registry name of the backend that produced this report.
  std::string backend;

  /// Statistically corrected triangle estimate (DESIGN.md "Correction
  /// math").  When `exact` is true this is an integer equal to the true
  /// count of the streamed graph.
  double estimate = 0.0;

  /// True when nothing was sampled away (uniform_p == 1 and no reservoir
  /// overflowed for PIM; always true for the exhaustive CPU backends).
  bool exact = false;

  /// Sum of raw per-unit counts before any statistical correction.
  TriangleCount raw_total = 0;

  /// Phase breakdown; `simulated_times` says whether the device phases are
  /// model-simulated (PIM) or locally measured (CPU).
  PhaseTimes times;
  bool simulated_times = false;

  /// Platform-independent work profile (CPU backends; feeds the platform
  /// models used by the Figure 6/7 projections).
  WorkProfile work;

  /// Rank-aware transfer accounting (PIM backend; zeros elsewhere).
  TransferBreakdown transfers;

  // ---- distribution / load-balance diagnostics ----------------------------
  std::uint32_t num_units = 0;  ///< PIM cores (or host threads) used
  std::uint32_t num_ranks = 0;  ///< UPMEM ranks the allocation spans (PIM)
  std::uint32_t host_threads = 0;  ///< host CPU threads the backend ran with
  std::uint64_t edges_streamed = 0;    ///< edges offered to the session
  std::uint64_t edges_kept = 0;        ///< survived uniform sampling
  std::uint64_t edges_replicated = 0;  ///< total sent to units (~C x kept)
  std::uint64_t min_unit_edges = 0;    ///< load balance: min t_d
  std::uint64_t max_unit_edges = 0;    ///< load balance: max t_d
  std::uint64_t reservoir_overflows = 0;  ///< units with effective t_d > M
  bool used_incremental = false;  ///< this recount took the incremental path

  // ---- fully-dynamic stream diagnostics -----------------------------------
  /// Delete updates applied to the session (stream space; loops excluded).
  std::uint64_t edges_deleted = 0;
  /// PIM: resident sample entries evicted by deletions, summed over cores
  /// (replicated space).  CPU backends: exact stored edges removed.
  std::uint64_t sample_evictions = 0;
  /// Deletions of edges that were not present, dropped as no-ops.  Exact
  /// for cpu-incremental (stream space).  For PIM: replicated space, and
  /// detected only while a core's sample still covers its live subgraph —
  /// always in the exact regime; after a reservoir overflow a phantom
  /// delete is indistinguishable from a discarded edge and silently
  /// becomes an out-of-sample deletion (the caller contract).
  std::uint64_t delete_misses = 0;
  /// PIM: cores forced to a full pass by deletion-dirtied samples during
  /// this otherwise-incremental recount.
  std::uint32_t dirty_full_recounts = 0;

  // ---- partition / placement diagnostics (PIM backend) --------------------
  std::uint32_t num_colors = 0;  ///< resolved C (auto selection filled in)
  std::string placement;         ///< triplet->DPU placement policy name
  double dpu_utilization = 0.0;  ///< cores used / machine max_dpus
  /// max(t_d) / mean(t_d) over units: the count phase is gated by the max,
  /// so this is the headroom a perfectly uniform partition would recover.
  double load_imbalance = 0.0;
  /// Per-kind load histogram: edges ever offered to cores of each triplet
  /// kind (1/2/3 distinct colors; expected loads N/3N/6N), plus the number
  /// of cores of that kind.
  std::array<std::uint64_t, 3> kind_edges_seen{};
  std::array<std::uint32_t, 3> kind_units{};
  std::uint32_t rebalances = 0;  ///< sample migrations performed this session

  /// Adaptive-intersection kernel diagnostics (PIM backend).
  KernelStats kernel;

  /// Fault-injection / recovery ledger (PIM backend; `faults.injected` is
  /// false when injection is off).  When `faults.degraded` the estimate was
  /// extrapolated from `faults.coverage` of the observed stream and `exact`
  /// is forced false; `faults.error_bound` is the widened relative bound.
  using FaultStats = pim::FaultStats;
  FaultStats faults;

  /// Misra-Gries top-t summary when the backend ran with it enabled.
  std::vector<HeavyHitter> heavy_hitters;

  [[nodiscard]] TriangleCount rounded() const noexcept {
    return estimate <= 0 ? 0 : static_cast<TriangleCount>(estimate + 0.5);
  }
};

}  // namespace pimtc::engine
