#include "engine/registry.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "cpufast/cpu_fast_engine.hpp"
#include "engine/cpu_engine.hpp"
#include "engine/pim_engine.hpp"

namespace pimtc::engine {

namespace {

// Explicit registration of the built-ins (instead of self-registering
// translation units, which a static-library link is free to drop).
struct Registry {
  Mutex mutex;
  std::map<std::string, EngineFactory, std::less<>> factories
      PIMTC_GUARDED_BY(mutex);

  Registry() {
    factories.emplace("pim", [](const EngineConfig& cfg) {
      return std::make_unique<PimEngine>(cfg);
    });
    factories.emplace("cpu", [](const EngineConfig& cfg) {
      return std::make_unique<CpuEngine>(cfg);
    });
    factories.emplace("cpu-incremental", [](const EngineConfig& cfg) {
      return std::make_unique<IncrementalCpuEngine>(cfg);
    });
    factories.emplace("cpu-fast", [](const EngineConfig& cfg) {
      return std::make_unique<cpufast::CpuFastEngine>(cfg);
    });
  }
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

std::unique_ptr<TriangleCountEngine> make_engine(std::string_view name,
                                                 const EngineConfig& config) {
  EngineFactory factory;
  {
    Registry& reg = registry();
    const MutexLock lock(reg.mutex);
    const auto it = reg.factories.find(name);
    if (it == reg.factories.end()) {
      std::string known;
      for (const auto& [n, f] : reg.factories) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw std::invalid_argument("unknown backend '" + std::string(name) +
                                  "' (registered: " + known + ")");
    }
    factory = it->second;
  }
  config.validate();
  return factory(config);
}

void register_backend(std::string name, EngineFactory factory) {
  if (name.empty() || !factory) {
    throw std::invalid_argument("register_backend: empty name or factory");
  }
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  if (!reg.factories.emplace(std::move(name), std::move(factory)).second) {
    throw std::invalid_argument("register_backend: name already registered");
  }
}

std::vector<std::string> registered_backends() {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size());
  for (const auto& [name, factory] : reg.factories) names.push_back(name);
  return names;
}

}  // namespace pimtc::engine
