// String-keyed backend registry / factory for TriangleCountEngine.
//
// Built-in backends:
//   "pim"              simulated UPMEM pipeline (the paper's system)
//   "cpu"              CSR-converting CPU baseline; streaming recounts
//                      rebuild from the accumulated COO (the Figure 7
//                      comparator)
//   "cpu-incremental"  exact CPU engine with an adjacency structure updated
//                      in place; recount cost follows the new edges only
//
// Additional backends (sharded PIM, async multi-rank, GPU models, ...)
// register themselves with register_backend() and become reachable from the
// CLI's --backend flag and every bench without further driver changes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.hpp"

namespace pimtc::engine {

using EngineFactory =
    std::function<std::unique_ptr<TriangleCountEngine>(const EngineConfig&)>;

/// Constructs the backend registered under `name` after validating
/// `config`.  Throws std::invalid_argument for an unknown name (the message
/// lists the registered backends) or an invalid config.
[[nodiscard]] std::unique_ptr<TriangleCountEngine> make_engine(
    std::string_view name, const EngineConfig& config = {});

/// Registers a backend factory.  Throws std::invalid_argument if `name` is
/// already taken (the built-ins are pre-registered).
void register_backend(std::string name, EngineFactory factory);

/// Sorted names of every registered backend.
[[nodiscard]] std::vector<std::string> registered_backends();

}  // namespace pimtc::engine
