// Unified configuration for every triangle-counting backend.
//
// EngineConfig absorbs the former tc::TcConfig (pipeline knobs), the
// pim::PimSystemConfig (machine model) and the baseline's threading knob so
// that one struct configures any engine from the registry.  Backends read
// the subset they understand: the CPU engines only look at `host_threads`
// and `seed`; the PIM engine consumes everything.  validate() rejects
// configurations that are nonsense for *any* backend, so a config accepted
// once is accepted by every engine.
#pragma once

#include <cstdint>
#include <string>

#include "coloring/partition_plan.hpp"
#include "pim/config.hpp"
#include "tc/config.hpp"

namespace pimtc::engine {

struct EngineConfig {
  // ---- shared across backends ---------------------------------------------
  /// Host CPU threads (0 = hardware concurrency).
  std::uint32_t host_threads = 0;

  /// Seed for every randomized component (coloring hash, samplers).
  std::uint64_t seed = 42;

  /// Dynamic-graph mode: recount() processes only edges added since the
  /// previous count where the backend supports it (PIM persistent sorted
  /// arcs, incremental CPU adjacency); otherwise recount is from scratch.
  bool incremental = false;

  /// Deterministic fault injection + recovery policy (PIM backend), parsed
  /// by pim::FaultSpec::parse — e.g. "seed=3,launch-permanent=0.01,
  /// recovery=rematerialize".  Empty = injection off: every code path
  /// behaves and charges exactly as without the feature.  CLI:
  /// --inject-faults=SPEC.
  std::string fault_spec;

  // ---- approximation dials (PIM backend) ----------------------------------
  /// Uniform (DOULION) keep probability p; 1.0 = exact mode.
  double uniform_p = 1.0;

  /// Maximum edges stored per PIM core (the reservoir capacity M).
  /// 0 derives the largest capacity that fits the DRAM bank layout.
  std::uint64_t sample_capacity_edges = 0;

  // ---- PIM pipeline --------------------------------------------------------
  /// Number of vertex colors C; the run uses binom(C+2, 3) PIM cores.
  /// The engine API requires C >= 2 (C == 1 degenerates to a single core
  /// counting a monochromatic copy of the whole graph).  0 = auto: derive
  /// the largest C whose triplet count fits `pim.max_dpus`, so the machine
  /// is filled (2560 DPUs -> C = 23 -> 2300 cores, ~90% utilization).
  std::uint32_t num_colors = 8;

  /// Triplet->DPU placement policy (coloring/partition_plan.hpp): identity
  /// keeps the legacy triplet-index layout, kind_interleave packs equal-
  /// expected-load kinds into the same ranks, greedy_balance re-plans from
  /// observed loads.  Timing-only — the estimate is bit-identical.
  color::PlacementPolicy placement = color::PlacementPolicy::kIdentity;

  /// Runtime rebalancing: recount() re-plans placement from observed loads
  /// and migrates resident samples (modeled gather + scatter) when the
  /// projected scatter wire bytes shrink by >= rebalance_min_gain.
  bool rebalance_enabled = false;
  double rebalance_min_gain = 1.05;

  /// PIM threads per core; the paper evaluates with 16.
  std::uint32_t tasklets = 16;

  /// Misra-Gries high-degree remapping (paper Section 3.5).
  bool misra_gries_enabled = false;
  std::uint32_t mg_capacity = 1024;  ///< K: counters per host-thread summary
  std::uint32_t mg_top = 16;         ///< t: nodes remapped on the PIM cores

  /// Degree-ordered remap (requires misra_gries_enabled): remap the top
  /// min(mg_capacity, kMaxRemap) tracked nodes ordered by estimated degree
  /// instead of only the top mg_top hubs, so sorted-region sizes
  /// anti-correlate with degree and the adaptive intersection's gallop
  /// triggers on hub edges.  Estimate-invariant: any ordering is a node-id
  /// bijection (see DESIGN.md "Intersection strategy & degree ordering").
  bool degree_ordered_remap = false;

  /// Intersection strategy of the counting kernels: kAuto picks merge vs
  /// block-gallop per intersection; kMerge/kGallop force one.  Estimates
  /// are bit-identical under every policy — only modeled work moves.
  tc::IntersectPolicy intersect = tc::IntersectPolicy::kAuto;

  /// Auto-policy crossover margin: gallop when its modeled cost times this
  /// factor undercuts the linear merge.  Must be >= 1.
  std::uint32_t gallop_margin = 3;

  /// cpu-fast backend: DODG out-degree at which a source vertex switches
  /// from adaptive merge/gallop to the packed-bitmap intersection path.
  /// 0 disables the bitmap; otherwise must be >= 2 (sources with fewer
  /// than two out-neighbors close no triangles).  Count-invariant — the
  /// three strategies find the same matches.  Default 2 = bitmap-first: on
  /// a DODG every out-list is already the small side of its intersections,
  /// and the branchless membership probes beat the merge's serialized
  /// cursor chain at every out-degree measured (DESIGN.md "Fast exact CPU
  /// backend"); raise it (or set 0) to study the merge/gallop paths.
  std::uint32_t cpu_fast_hub_degree = 2;

  /// WRAM RegionCache for the kernels' region lookups; false degrades every
  /// lookup to the full-table MRAM binary search (ablation baseline).
  bool region_cache = true;

  /// Per-stream WRAM staging buffer, in edges, for the counting kernel.
  std::uint32_t wram_buffer_edges = 64;

  // ---- rank-aware ingestion (PIM backend) ----------------------------------
  /// Per-DPU host staging-buffer capacity in edges; a batch staging more
  /// than this for some DPU flushes in multiple bulk scatters (rounds).
  /// 0 = unbounded: exactly one rank-parallel scatter per batch.
  std::uint64_t staging_capacity_edges = 0;

  /// Double-buffered ingestion: overlap host partitioning/staging of the
  /// next batch (or round) with the modeled DPU receive of the previous
  /// one.  Timing-only; the estimate is bit-identical either way.
  bool pipelined_ingest = true;

  /// Machine model of the simulated UPMEM system.  `pim.dpus_per_rank`
  /// shapes the rank topology the transfer model pads over.
  pim::PimSystemConfig pim{};

  /// Instruction-cost table used by the simulated kernels.
  pim::KernelCostModel cost{};

  /// Throws std::invalid_argument describing the first violated invariant.
  /// make_engine() calls this before constructing any backend.
  void validate() const;

  /// Projection onto the legacy PIM pipeline config (internal use by the
  /// PIM engine; kept public so white-box tests can cross-check).
  [[nodiscard]] tc::TcConfig to_tc_config() const;
};

}  // namespace pimtc::engine
