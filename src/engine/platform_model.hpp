// Engine-level view of the analytic platform models.
//
// The comparison drivers (fig6/fig7, dynamic_stream) project a backend's
// CountReport::work profile onto hardware that does not exist in this
// environment (dual Xeon 4215, A100).  The models live in baseline/ next to
// the profiler that calibrates them; this header re-exports them under the
// engine namespace so drivers program against engine/ headers only.
#pragma once

#include "baseline/device_model.hpp"

namespace pimtc::engine {

using PlatformModel = baseline::PlatformModel;

using baseline::a100_model;
using baseline::xeon_4215_model;

}  // namespace pimtc::engine
