// TriangleCountEngine: the backend-polymorphic public API of the library.
//
// Every backend (simulated-PIM pipeline, CPU baseline, incremental CPU) is
// one implementation of this interface, constructed through the registry
// (registry.hpp).  Drivers — the CLI, the examples, the comparison benches —
// program against this interface only, which is what makes a new backend a
// drop-in registration instead of another bespoke driver.
//
// Two usage shapes:
//
//   * one-shot static counting:
//       auto eng = engine::make_engine("pim", cfg);
//       engine::CountReport r = eng->count(graph);
//
//   * streaming session (the dynamic-graph use case, Figure 7):
//       auto eng = engine::make_engine("pim", cfg);
//       for (auto batch : updates) {
//         eng->add_edges(batch);
//         engine::CountReport r = eng->recount();
//       }
//
//   * fully-dynamic session (± update streams):
//       auto eng = engine::make_engine("pim", cfg);
//       eng->apply(updates);  // span<const EdgeUpdate>, inserts + deletes
//       engine::CountReport r = eng->recount();
//
// An engine is a stateful session: edges accumulate across add_edges()
// calls (count() is add_edges + recount in one step) and recount() is
// idempotent — recounting without new edges returns the same estimate.
// apply() generalizes add_edges to signed updates; backends that cannot
// delete (capabilities().deletions == false) accept all-insert batches and
// reject mixed ones.
#pragma once

#include <span>

#include "engine/config.hpp"
#include "engine/report.hpp"
#include "graph/coo.hpp"

namespace pimtc::engine {

/// What a backend can do, given the config it was constructed with.
/// Drivers branch on these instead of on backend names.
struct EngineCapabilities {
  /// Results are exact for this configuration (no sampling in effect).
  bool exact = false;
  /// add_edges()/recount() streaming sessions are supported.
  bool streaming = false;
  /// recount() cost is proportional to the new edges, not the whole graph.
  bool incremental_recount = false;
  /// apply() accepts deletions under this configuration (fully-dynamic
  /// streams); without it apply() only forwards all-insert batches.
  bool deletions = false;
  /// Reported device phase times are model-simulated, not wall-clock.
  bool simulated_time = false;
  /// CountReport::work is populated with a meaningful operation profile.
  bool work_profile = false;
};

class TriangleCountEngine {
 public:
  virtual ~TriangleCountEngine() = default;

  TriangleCountEngine(const TriangleCountEngine&) = delete;
  TriangleCountEngine& operator=(const TriangleCountEngine&) = delete;

  /// One-shot static counting: stream the whole graph into the session,
  /// then count.  Equivalent to add_edges(graph.edges()) + recount().
  virtual CountReport count(const graph::EdgeList& graph);

  /// Streams one batch of edges into the session (dynamic updates).  Self
  /// loops are dropped; edges are expected deduplicated across the whole
  /// stream (see graph::preprocess) unless the backend states otherwise.
  virtual void add_edges(std::span<const Edge> batch) = 0;

  /// Streams one batch of a fully-dynamic (±) update stream.  The base
  /// implementation forwards all-insert batches to add_edges() — so every
  /// backend replays insert-only streams through its legacy path,
  /// bit-identically — and throws std::invalid_argument on deletions;
  /// backends with capabilities().deletions override it.  A deletion must
  /// target a previously inserted edge (either orientation); deleting an
  /// edge that was never inserted is a no-op only where the backend can
  /// detect it exactly (cpu-incremental).
  virtual void apply(std::span<const EdgeUpdate> updates);

  /// Convenience: apply() with every update a deletion.
  void remove_edges(std::span<const Edge> batch);

  /// Counts over everything streamed so far and returns the corrected
  /// estimate.  Idempotent: recounting without new edges returns the same
  /// result.
  virtual CountReport recount() = 0;

  /// Capabilities under the config this engine was constructed with.
  [[nodiscard]] virtual EngineCapabilities capabilities() const = 0;

  /// Registry name this engine was constructed under ("pim", "cpu", ...).
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

  /// Zeroes the accumulated phase times (per-update deltas in the dynamic
  /// benches).  Does not touch the streamed edges or counting state.
  virtual void reset_timers() = 0;

 protected:
  explicit TriangleCountEngine(const EngineConfig& config) : config_(config) {}

  EngineConfig config_;
};

}  // namespace pimtc::engine
