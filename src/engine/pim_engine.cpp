#include "engine/pim_engine.hpp"

namespace pimtc::engine {

PimEngine::PimEngine(const EngineConfig& config)
    : TriangleCountEngine(config),
      counter_(config.to_tc_config(), config.pim) {}

void PimEngine::add_edges(std::span<const Edge> batch) {
  counter_.add_edges(batch);
}

void PimEngine::apply(std::span<const EdgeUpdate> updates) {
  counter_.apply(updates);
}

CountReport PimEngine::recount() {
  const tc::TcResult r = counter_.recount();

  CountReport report;
  report.backend = name();
  report.estimate = r.estimate;
  report.exact = r.exact;
  report.raw_total = r.raw_total;
  report.times.setup_s = r.times.setup_s;
  report.times.ingest_s = r.times.sample_creation_s;
  report.times.count_s = r.times.count_s;
  report.times.host_s = r.times.host_s;
  report.simulated_times = true;
  report.num_units = r.num_dpus;
  report.num_ranks = r.num_ranks;
  report.host_threads = counter_.host_threads();
  report.transfers = r.transfers;
  report.edges_streamed = r.edges_streamed;
  report.edges_kept = r.edges_kept;
  report.edges_replicated = r.edges_replicated;
  report.min_unit_edges = r.min_dpu_edges;
  report.max_unit_edges = r.max_dpu_edges;
  report.reservoir_overflows = r.reservoir_overflows;
  report.used_incremental = r.used_incremental;
  report.edges_deleted = r.edges_deleted;
  report.sample_evictions = r.sample_evictions;
  report.delete_misses = r.delete_misses;
  report.dirty_full_recounts = r.dirty_full_recounts;
  report.num_colors = r.num_colors;
  report.placement = r.placement;
  report.dpu_utilization = r.dpu_utilization;
  report.load_imbalance = r.load_imbalance;
  report.kind_edges_seen = r.kind_edges_seen;
  report.kind_units = r.kind_dpus;
  report.rebalances = r.rebalances;
  report.kernel.intersect = r.intersect;
  report.kernel.merge_isects = r.kernel.merge_isects;
  report.kernel.gallop_isects = r.kernel.gallop_isects;
  report.kernel.merge_picks = r.kernel.merge_picks;
  report.kernel.gallop_probes = r.kernel.gallop_probes;
  report.kernel.chunks_claimed = r.kernel.chunks_claimed;
  report.kernel.instructions = r.kernel_instructions;
  report.kernel.count_instructions = r.count_instructions;
  report.faults = r.faults;

  if (config_.misra_gries_enabled) {
    const sketch::MisraGries& mg = counter_.heavy_hitters();
    for (const NodeId node : mg.top(config_.mg_top)) {
      report.heavy_hitters.push_back({node, mg.estimate(node)});
    }
  }
  return report;
}

EngineCapabilities PimEngine::capabilities() const {
  EngineCapabilities caps;
  // Exact as configured: no uniform sampling and no explicit reservoir cap
  // (a capped sample is approximate by construction once it overflows).
  // With the bank-derived capacity a huge graph can still overflow at
  // runtime, which downgrades the individual report's `exact` flag.
  caps.exact = config_.uniform_p >= 1.0 && config_.sample_capacity_edges == 0;
  caps.streaming = true;
  caps.incremental_recount = config_.incremental;
  // Deletions run random pairing on the resident samples; they cannot
  // compose with the DOULION coin (the original insertion's keep decision
  // is not reconstructible), so exact-ingest configs only.
  caps.deletions = config_.uniform_p >= 1.0;
  caps.simulated_time = true;
  caps.work_profile = false;
  return caps;
}

void PimEngine::reset_timers() { counter_.reset_timers(); }

}  // namespace pimtc::engine
