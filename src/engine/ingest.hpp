// Out-of-core ingest: stream an edge file into an engine session in
// O(chunk) memory, overlapping disk/parse work with host preprocessing.
//
// The pipeline (paper Section 4's host side, generalized to files larger
// than RAM):
//
//   ChunkedEdgeReader ──> [producer task: parse chunk k+1]      (pool)
//                    └──> [consumer: preprocess + feed chunk k] (caller)
//
// With overlap_io (default) the next chunk is parsed on the shared
// ThreadPool while the caller filters the current one and feeds it to
// TriangleCountEngine::add_edges() — the reader's two-buffer chunk
// lifetime is exactly this pipeline depth.  Preprocessing is
// order-preserving throughout (self-loop filter, hash-set dedup), because
// the pim backend's reservoir sampling is sensitive to arrival order and
// streamed ingest must be bit-identical to one-shot read_coo + count.
//
// Per-chunk degree histograms are merged by node range across the pool
// (the same disjoint-range pattern as the DODG builder's phase 1,
// src/cpufast/dodg.cpp): each worker owns a node range and scans the
// chunk counting only its own nodes — no atomics, no per-thread copies of
// the histogram.  `pimtc convert --orient` uses this as pass 1 and then
// re-streams the file orienting each edge lower-(degree, id) endpoint
// first.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <vector>

#include "engine/engine.hpp"
#include "graph/stream_reader.hpp"

namespace pimtc {
class ThreadPool;
}

namespace pimtc::engine {

/// Duplicate-edge handling on the ingest path.  Both modes treat (u,v)
/// and (v,u) as the same edge and keep the first occurrence (order
/// preserved).
enum class DedupMode {
  kNone,    ///< feed edges as they arrive (default; engines that need
            ///< dedup do it themselves)
  kChunk,   ///< drop duplicates within each chunk — O(chunk) memory
  kGlobal,  ///< drop duplicates across the whole stream — O(distinct
            ///< edges) memory, the one knob that breaks the O(chunk)
            ///< bound (documented trade-off; use `convert --dedup` once
            ///< and stream the clean `.pbin` instead for huge graphs)
};

struct IngestOptions {
  graph::ReaderOptions reader;  ///< chunk size, mmap, checksum verification

  /// Drop self loops while streaming (every backend ignores them anyway;
  /// filtering here keeps them out of dedup sets and degree histograms).
  bool drop_self_loops = false;

  DedupMode dedup = DedupMode::kNone;

  /// Parse chunk k+1 on the pool while chunk k is preprocessed and fed.
  bool overlap_io = true;

  /// Build the degree histogram of the ingested edges (IngestStats::
  /// degrees), merged by node range across the pool.
  bool compute_degrees = false;

  /// Pool for the producer task and histogram merge; nullptr means
  /// ThreadPool::global().
  ThreadPool* pool = nullptr;
};

struct IngestStats {
  EdgeCount edges_read = 0;          ///< parsed from the file
  EdgeCount edges_ingested = 0;      ///< handed to the sink after filters
  EdgeCount self_loops_dropped = 0;
  EdgeCount duplicates_dropped = 0;
  std::uint64_t chunks = 0;
  std::uint64_t node_bound = 0;      ///< one past the largest ingested id
  bool mapped = false;               ///< the reader served from an mmap

  double read_seconds = 0.0;        ///< IO + parse (producer side)
  double preprocess_seconds = 0.0;  ///< filters + histograms
  double feed_seconds = 0.0;        ///< sink / add_edges time

  /// Degree of every node in [0, node_bound), when compute_degrees.
  std::vector<std::uint32_t> degrees;
};

/// The generic pipeline: drains `reader` through the preprocessing stages
/// into `sink` (called once per chunk, in order, possibly with an empty
/// span filtered down to nothing — sinks must tolerate that).
IngestStats ingest_stream(
    graph::ChunkedEdgeReader& reader,
    const std::function<void(std::span<const Edge>)>& sink,
    const IngestOptions& options = {});

/// Streams `path` into an engine session chunk-at-a-time via add_edges().
/// Peak memory is O(chunk), not O(m) — the out-of-core replacement for
/// read_coo + count on graphs beyond RAM.  Estimates are bit-identical to
/// the one-shot path for every backend (exact backends are batch-split
/// invariant; the pim reservoir sees the same arrival order).
IngestStats ingest_file(TriangleCountEngine& engine,
                        const std::filesystem::path& path,
                        const IngestOptions& options = {});

/// One streaming pass over `path` returning the degree histogram (pass 1
/// of `pimtc convert --orient`).  Self loops are excluded.
[[nodiscard]] std::vector<std::uint32_t> stream_degrees(
    const std::filesystem::path& path, const graph::ReaderOptions& reader = {},
    ThreadPool* pool = nullptr);

}  // namespace pimtc::engine
