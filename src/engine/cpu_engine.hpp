// CPU backends behind the engine interface.
//
// "cpu" — the paper's CSR-converting comparator (baseline::CpuTriangleCounter)
// as a streaming session: add_edges() appends to an accumulated COO and
// every recount() pays the full COO->CSR conversion of everything received
// so far, exactly the property the dynamic experiment (Figure 7) exposes.
//
// "cpu-incremental" — an exact COO-native engine that maintains an
// adjacency structure in place: each new edge closes triangles against the
// graph streamed so far, so recount() cost follows the batch, not the
// accumulated graph.  Every triangle is counted exactly once, at the
// insertion of its last edge; duplicate edges and self loops are dropped on
// arrival, so it tolerates un-preprocessed streams.  It is fully dynamic:
// apply() deletions subtract the triangles the removed edge currently
// closes (the exact mirror of the insertion rule), so the running total is
// exact under arbitrary ± streams — this engine is the parity oracle the
// mixed-stream tests and the CLI --exact-check run against.  Deleting an
// edge that is not present (never inserted, or already deleted) is a
// detected no-op.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "baseline/cpu_tc.hpp"
#include "engine/engine.hpp"
#include "graph/coo.hpp"

namespace pimtc::engine {

class CpuEngine final : public TriangleCountEngine {
 public:
  explicit CpuEngine(const EngineConfig& config);

  void add_edges(std::span<const Edge> batch) override;
  CountReport recount() override;
  [[nodiscard]] EngineCapabilities capabilities() const override;
  [[nodiscard]] const char* name() const noexcept override { return "cpu"; }
  void reset_timers() override;

 private:
  /// Dedicated pool only when host_threads is pinned; otherwise the counter
  /// shares the process-global pool (throwaway engines stay cheap).
  std::unique_ptr<ThreadPool> pool_;
  baseline::CpuTriangleCounter counter_;
  graph::EdgeList accumulated_;
  PhaseTimes times_;  ///< accumulated measured seconds since last reset
  /// recount() memoization: with no batch since the last recount the cached
  /// report is returned without rebuilding the CSR (queue-dry republishes).
  bool dirty_ = true;
  bool has_report_ = false;
  CountReport cached_;
};

class IncrementalCpuEngine final : public TriangleCountEngine {
 public:
  explicit IncrementalCpuEngine(const EngineConfig& config);

  void add_edges(std::span<const Edge> batch) override;
  void apply(std::span<const EdgeUpdate> updates) override;
  CountReport recount() override;
  [[nodiscard]] EngineCapabilities capabilities() const override;
  [[nodiscard]] const char* name() const noexcept override {
    return "cpu-incremental";
  }
  void reset_timers() override { times_ = {}; }

 private:
  /// Inserts one stream edge (dedup + triangle closure); the add_edges body.
  void insert_one(Edge raw);
  /// Deletes one stream edge: subtracts the triangles it currently closes,
  /// then unlinks it from the hash adjacency.  Exact inverse of insert_one.
  void delete_one(Edge raw);

  std::unordered_set<std::uint64_t> edge_set_;  ///< canonical edge keys
  std::vector<std::vector<NodeId>> adj_;
  TriangleCount total_ = 0;
  std::uint64_t edges_streamed_ = 0;
  std::uint64_t edges_stored_ = 0;
  std::uint64_t edges_deleted_ = 0;   ///< deletions that removed an edge
  std::uint64_t delete_misses_ = 0;   ///< deletions of absent edges (no-op)
  std::uint64_t probes_ = 0;  ///< membership probes (the work profile)
  PhaseTimes times_;
};

}  // namespace pimtc::engine
