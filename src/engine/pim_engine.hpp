// "pim" backend: the simulated UPMEM pipeline behind the engine interface.
//
// A thin adapter over tc::PimTriangleCounter that maps TcResult onto the
// unified CountReport and surfaces the Misra-Gries summary as report
// diagnostics.  Constructed through the registry ("pim"); not meant to be
// instantiated directly outside of it.
#pragma once

#include "engine/engine.hpp"
#include "tc/host.hpp"

namespace pimtc::engine {

class PimEngine final : public TriangleCountEngine {
 public:
  explicit PimEngine(const EngineConfig& config);

  void add_edges(std::span<const Edge> batch) override;
  void apply(std::span<const EdgeUpdate> updates) override;
  CountReport recount() override;
  [[nodiscard]] EngineCapabilities capabilities() const override;
  [[nodiscard]] const char* name() const noexcept override { return "pim"; }
  void reset_timers() override;

 private:
  tc::PimTriangleCounter counter_;
};

}  // namespace pimtc::engine
