#include "engine/cpu_engine.hpp"

#include <algorithm>

#include "common/timer.hpp"

namespace pimtc::engine {

// ---- CpuEngine --------------------------------------------------------------

CpuEngine::CpuEngine(const EngineConfig& config)
    : TriangleCountEngine(config),
      pool_(config.host_threads == 0 ? nullptr
                                     : std::make_unique<ThreadPool>(
                                           config.host_threads)),
      counter_(pool_.get()) {}

void CpuEngine::add_edges(std::span<const Edge> batch) {
  accumulated_.append(batch);
  if (!batch.empty()) dirty_ = true;
}

CountReport CpuEngine::recount() {
  if (!dirty_ && has_report_) return cached_;
  const baseline::CpuTcResult c = counter_.count(accumulated_);
  times_.ingest_s += c.measured_convert_s;
  times_.count_s += c.measured_count_s;

  CountReport report;
  report.backend = name();
  report.estimate = static_cast<double>(c.triangles);
  report.exact = true;
  report.raw_total = c.triangles;
  report.times = times_;
  report.simulated_times = false;
  report.work.edges = c.profile.edges;
  report.work.nodes = c.profile.nodes;
  report.work.conversion_ops = c.profile.conversion_ops;
  report.work.intersection_steps = c.profile.intersection_steps;
  report.work.triangles = c.profile.triangles;
  report.num_units = static_cast<std::uint32_t>(
      pool_ ? pool_->size() : ThreadPool::global().size());
  report.host_threads = report.num_units;
  report.edges_streamed = accumulated_.num_edges();
  report.edges_kept = accumulated_.num_edges();
  cached_ = report;
  has_report_ = true;
  dirty_ = false;
  return report;
}

void CpuEngine::reset_timers() {
  times_ = {};
  // Keep the memoized report consistent with the reset: a live recount
  // right after reset_timers() would also report zeroed accumulated times.
  if (has_report_) cached_.times = {};
}

EngineCapabilities CpuEngine::capabilities() const {
  EngineCapabilities caps;
  caps.exact = true;
  caps.streaming = true;
  caps.incremental_recount = false;  // every recount rebuilds the CSR
  caps.simulated_time = false;
  caps.work_profile = true;
  return caps;
}

// ---- IncrementalCpuEngine ---------------------------------------------------

IncrementalCpuEngine::IncrementalCpuEngine(const EngineConfig& config)
    : TriangleCountEngine(config) {}

void IncrementalCpuEngine::insert_one(Edge raw) {
  ++edges_streamed_;
  if (raw.is_loop()) return;
  const Edge e = raw.canonical();
  if (!edge_set_.insert(edge_key(e)).second) return;  // duplicate

  if (e.v >= adj_.size()) adj_.resize(e.v + 1);

  // Close triangles against everything inserted before this edge: every
  // triangle is counted exactly once, when its last edge arrives.
  const std::vector<NodeId>& au = adj_[e.u];
  const std::vector<NodeId>& av = adj_[e.v];
  const bool scan_u = au.size() <= av.size();
  const std::vector<NodeId>& scan = scan_u ? au : av;
  const NodeId other = scan_u ? e.v : e.u;
  for (const NodeId w : scan) {
    ++probes_;
    if (edge_set_.contains(edge_key(Edge{w, other}.canonical()))) ++total_;
  }

  adj_[e.u].push_back(e.v);
  adj_[e.v].push_back(e.u);
  ++edges_stored_;
}

void IncrementalCpuEngine::delete_one(Edge raw) {
  ++edges_streamed_;
  if (raw.is_loop()) return;
  const Edge e = raw.canonical();
  const auto it = edge_set_.find(edge_key(e));
  if (it == edge_set_.end()) {
    ++delete_misses_;  // never inserted (or already deleted): detected no-op
    return;
  }

  // Subtract the triangles this edge currently closes — the exact inverse
  // of the insertion rule, so insert-then-delete of any batch restores the
  // running total exactly.
  const std::vector<NodeId>& au = adj_[e.u];
  const std::vector<NodeId>& av = adj_[e.v];
  const bool scan_u = au.size() <= av.size();
  const std::vector<NodeId>& scan = scan_u ? au : av;
  const NodeId other = scan_u ? e.v : e.u;
  for (const NodeId w : scan) {
    ++probes_;
    if (w == other) continue;  // the edge itself, not a common neighbor
    if (edge_set_.contains(edge_key(Edge{w, other}.canonical()))) --total_;
  }

  edge_set_.erase(it);
  const auto unlink = [](std::vector<NodeId>& list, NodeId node) {
    for (NodeId& x : list) {
      if (x == node) {
        x = list.back();
        list.pop_back();
        return;
      }
    }
  };
  unlink(adj_[e.u], e.v);
  unlink(adj_[e.v], e.u);
  --edges_stored_;
  ++edges_deleted_;
}

void IncrementalCpuEngine::add_edges(std::span<const Edge> batch) {
  WallTimer timer;
  for (const Edge& raw : batch) insert_one(raw);
  times_.count_s += timer.elapsed_s();
}

void IncrementalCpuEngine::apply(std::span<const EdgeUpdate> updates) {
  WallTimer timer;
  for (const EdgeUpdate& u : updates) {
    if (u.is_insert) {
      insert_one(u.edge);
    } else {
      delete_one(u.edge);
    }
  }
  times_.count_s += timer.elapsed_s();
}

CountReport IncrementalCpuEngine::recount() {
  CountReport report;
  report.backend = name();
  report.estimate = static_cast<double>(total_);
  report.exact = true;
  report.raw_total = total_;
  report.times = times_;
  report.simulated_times = false;
  report.work.edges = edges_stored_;
  report.work.nodes = adj_.size();
  report.work.conversion_ops = 2 * edges_stored_;  // adjacency appends
  report.work.intersection_steps = probes_;
  report.work.triangles = total_;
  report.num_units = 1;
  report.host_threads = 1;  // the adjacency engine is inherently serial
  report.edges_streamed = edges_streamed_;
  report.edges_kept = edges_stored_;
  report.edges_deleted = edges_deleted_;
  report.sample_evictions = edges_deleted_;  // exact engine: every hit evicts
  report.delete_misses = delete_misses_;
  report.used_incremental = true;
  return report;
}

EngineCapabilities IncrementalCpuEngine::capabilities() const {
  EngineCapabilities caps;
  caps.exact = true;
  caps.streaming = true;
  caps.incremental_recount = true;
  caps.deletions = true;  // exact hash-adjacency deletions
  caps.simulated_time = false;
  caps.work_profile = true;
  return caps;
}

}  // namespace pimtc::engine
