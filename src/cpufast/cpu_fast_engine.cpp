#include "cpufast/cpu_fast_engine.hpp"

#include <vector>

#include "common/timer.hpp"
#include "cpufast/count.hpp"
#include "cpufast/dodg.hpp"

namespace pimtc::cpufast {

CpuFastEngine::CpuFastEngine(const engine::EngineConfig& config)
    : TriangleCountEngine(config),
      pool_(config.host_threads == 0
                ? nullptr
                : std::make_unique<ThreadPool>(config.host_threads)) {}

void CpuFastEngine::add_edges(std::span<const Edge> batch) {
  edges_streamed_ += batch.size();
  if (tracking_) {
    for (const Edge& raw : batch) {
      if (raw.is_loop()) continue;
      live_.insert(edge_key(raw.canonical()));  // duplicate insert: no-op
    }
  } else {
    accumulated_.append(batch);
  }
  if (!batch.empty()) dirty_ = true;
}

void CpuFastEngine::materialize_edge_set() {
  WallTimer timer;
  live_.reserve(accumulated_.num_edges());
  for (const Edge& raw : accumulated_.edges()) {
    if (raw.is_loop()) continue;
    live_.insert(edge_key(raw.canonical()));
  }
  tracking_ = true;
  times_.ingest_s += timer.elapsed_s();
}

void CpuFastEngine::apply(std::span<const EdgeUpdate> updates) {
  for (const EdgeUpdate& u : updates) {
    if (u.is_insert) {
      add_edges({&u.edge, 1});
      continue;
    }
    ++edges_streamed_;
    if (u.edge.is_loop()) continue;
    if (!tracking_) materialize_edge_set();
    if (live_.erase(edge_key(u.edge.canonical())) != 0) {
      ++edges_deleted_;
    } else {
      ++delete_misses_;  // never inserted (or already deleted): counted no-op
    }
  }
  if (!updates.empty()) dirty_ = true;
}

engine::CountReport CpuFastEngine::recount() {
  if (!dirty_ && has_report_) return cached_;

  // In tracking mode the set is authoritative; flatten it for the build.
  // Iteration order is irrelevant: degrees, ranks and the sorted/deduped
  // rows are functions of the edge *set*, so the DODG — and every counter
  // derived from it — is identical whatever order the edges arrive in.
  std::vector<Edge> scratch;
  std::span<const Edge> edges;
  if (tracking_) {
    scratch.reserve(live_.size());
    for (const std::uint64_t key : live_) scratch.push_back(edge_from_key(key));
    edges = scratch;
  } else {
    edges = accumulated_.edges();
  }

  BuildTimes build_times;
  const Dodg g = Dodg::build(edges, pool(), &build_times);
  CountConfig cc;
  cc.policy = config_.intersect;
  cc.gallop_margin = config_.gallop_margin;
  cc.hub_degree = config_.cpu_fast_hub_degree;
  const CountStats cs = count_triangles(g, cc, pool());
  times_.ingest_s += build_times.total_s();
  times_.count_s += cs.count_s;

  engine::CountReport report;
  report.backend = name();
  report.estimate = static_cast<double>(cs.triangles);
  report.exact = true;
  report.raw_total = cs.triangles;
  report.times = times_;
  report.simulated_times = false;
  report.work.edges = g.num_arcs();
  report.work.nodes = g.num_nodes();
  // Degree + orientation-count + scatter passes over the raw COO, plus the
  // row sort/compaction over the oriented arcs.
  report.work.conversion_ops = 3 * edges.size() + 2 * g.num_arcs();
  report.work.intersection_steps = cs.ops();
  report.work.triangles = cs.triangles;
  report.num_units = static_cast<std::uint32_t>(pool().size());
  report.host_threads = report.num_units;
  report.edges_streamed = edges_streamed_;
  report.edges_kept = g.num_arcs();  // live deduped undirected edges
  report.edges_deleted = edges_deleted_;
  report.sample_evictions = edges_deleted_;  // exact engine: every hit evicts
  report.delete_misses = delete_misses_;
  report.kernel.intersect = tc::to_string(config_.intersect);
  report.kernel.merge_isects = cs.merge_isects;
  report.kernel.gallop_isects = cs.gallop_isects;
  report.kernel.bitmap_isects = cs.bitmap_isects;
  report.kernel.merge_picks = cs.merge_picks;
  report.kernel.gallop_probes = cs.gallop_probes;
  report.kernel.bitmap_probes = cs.bitmap_probes;
  report.kernel.chunks_claimed = cs.chunks_claimed;
  report.kernel.instructions = cs.ops();
  report.kernel.count_instructions = cs.ops();

  cached_ = report;
  has_report_ = true;
  dirty_ = false;
  return report;
}

void CpuFastEngine::reset_timers() {
  times_ = {};
  // The memoized report must keep describing the state as of its recount —
  // with zeroed accumulated times, like any post-reset report would.
  if (has_report_) cached_.times = {};
}

engine::EngineCapabilities CpuFastEngine::capabilities() const {
  engine::EngineCapabilities caps;
  caps.exact = true;
  caps.streaming = true;
  caps.incremental_recount = false;  // mark-dirty + full DODG rebuild
  caps.deletions = true;             // canonical-key set, rebuild on recount
  caps.simulated_time = false;
  caps.work_profile = true;
  return caps;
}

}  // namespace pimtc::cpufast
