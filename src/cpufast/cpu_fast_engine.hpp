// "cpu-fast" — the fast exact CPU backend: parallel DODG build + adaptive
// merge/gallop/bitmap counting (count.hpp).  The contract is exactness, not
// incrementality: updates mark the session dirty and recount() rebuilds the
// DODG from the live edge set, bit-identical to "cpu" on any insert stream
// and to "cpu-incremental" on any ± stream.
//
// Two storage regimes keep the common case cheap:
//
//  * insert-only (the parity-oracle case): batches append raw to an
//    accumulated COO — zero per-edge hashing, duplicates and loops are
//    dropped during the DODG build, the same contract as "cpu";
//  * first deletion: the COO is folded once into a canonical-key hash set,
//    maintained incrementally from then on (duplicate insert = no-op,
//    deletion of an absent edge = counted no-op, the cpu-incremental
//    semantics).
//
// recount() is memoized: with no update since the last recount the cached
// report is returned untouched (the serve layer republishes on queue-dry).
#pragma once

#include <memory>
#include <unordered_set>

#include "common/thread_pool.hpp"
#include "engine/engine.hpp"
#include "graph/coo.hpp"

namespace pimtc::cpufast {

class CpuFastEngine final : public engine::TriangleCountEngine {
 public:
  explicit CpuFastEngine(const engine::EngineConfig& config);

  void add_edges(std::span<const Edge> batch) override;
  void apply(std::span<const EdgeUpdate> updates) override;
  engine::CountReport recount() override;
  [[nodiscard]] engine::EngineCapabilities capabilities() const override;
  [[nodiscard]] const char* name() const noexcept override {
    return "cpu-fast";
  }
  void reset_timers() override;

 private:
  [[nodiscard]] ThreadPool& pool() noexcept {
    return pool_ ? *pool_ : ThreadPool::global();
  }
  /// Folds the accumulated COO into the canonical-key set (first deletion).
  void materialize_edge_set();

  /// Dedicated pool only when host_threads is pinned; otherwise shares the
  /// process-global pool (same policy as CpuEngine).
  std::unique_ptr<ThreadPool> pool_;
  graph::EdgeList accumulated_;  ///< raw stream; authoritative until tracking_
  std::unordered_set<std::uint64_t> live_;  ///< canonical keys once tracking_
  bool tracking_ = false;  ///< a deletion arrived; live_ is authoritative
  bool dirty_ = true;      ///< an update arrived since the cached report
  bool has_report_ = false;
  engine::CountReport cached_;
  std::uint64_t edges_streamed_ = 0;
  std::uint64_t edges_deleted_ = 0;
  std::uint64_t delete_misses_ = 0;
  engine::PhaseTimes times_;
};

}  // namespace pimtc::cpufast
