#include "cpufast/dodg.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/timer.hpp"

namespace pimtc::cpufast {

namespace {

/// One past the largest node id referenced by any edge.
NodeId scan_num_nodes(std::span<const Edge> edges, ThreadPool& pool) {
  const std::size_t workers = std::max<std::size_t>(pool.size(), 1);
  std::vector<NodeId> bounds(workers, 0);
  pool.parallel_chunks(edges.size(), [&](std::size_t t, std::size_t lo,
                                         std::size_t hi) {
    NodeId bound = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      bound = std::max({bound, edges[i].u + 1, edges[i].v + 1});
    }
    bounds[t] = std::max(bounds[t], bound);
  });
  NodeId n = 0;
  for (const NodeId b : bounds) n = std::max(n, b);
  return n;
}

}  // namespace

Dodg Dodg::build(std::span<const Edge> edges, ThreadPool& pool,
                 BuildTimes* times) {
  Dodg g;
  BuildTimes bt;
  const NodeId n = scan_num_nodes(edges, pool);
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.rank_.assign(n, 0);
  if (n == 0) {
    if (times) *times = bt;
    return g;
  }
  const std::size_t workers = std::max<std::size_t>(pool.size(), 1);

  // ---- phase 1: degree histogram over the raw COO ---------------------------
  // Per-thread histograms merged by node range: deterministic and atomic-free.
  // Duplicate edges inflate these degrees, but the degrees only choose the
  // orientation order — any total order yields the same triangle count.
  WallTimer degree_timer;
  std::vector<std::vector<std::uint32_t>> hist(
      workers, std::vector<std::uint32_t>(n, 0));
  pool.parallel_chunks(edges.size(), [&](std::size_t t, std::size_t lo,
                                         std::size_t hi) {
    std::vector<std::uint32_t>& h = hist[t];
    for (std::size_t i = lo; i < hi; ++i) {
      const Edge e = edges[i];
      if (e.is_loop()) continue;
      ++h[e.u];
      ++h[e.v];
    }
  });
  std::vector<std::uint32_t> degree(n, 0);
  pool.parallel_chunks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t t = 0; t < workers; ++t) {
      const std::vector<std::uint32_t>& h = hist[t];
      for (std::size_t u = lo; u < hi; ++u) degree[u] += h[u];
    }
  });
  bt.degree_s = degree_timer.elapsed_s();

  // ---- phase 2: rank permutation (counting sort by degree) ------------------
  // rank ascending == (degree, id) ascending: bucket offsets per degree
  // value, then nodes in id order within each bucket keep the id tiebreak.
  WallTimer rank_timer;
  std::uint32_t max_degree = 0;
  for (const std::uint32_t d : degree) max_degree = std::max(max_degree, d);
  std::vector<std::uint64_t> buckets(static_cast<std::size_t>(max_degree) + 2,
                                     0);
  for (const std::uint32_t d : degree) ++buckets[d + 1];
  for (std::size_t d = 1; d < buckets.size(); ++d) buckets[d] += buckets[d - 1];
  for (NodeId u = 0; u < n; ++u) {
    g.rank_[u] = static_cast<NodeId>(buckets[degree[u]]++);
  }
  bt.rank_s = rank_timer.elapsed_s();

  // ---- phase 3: oriented parallel fill --------------------------------------
  // Per-thread out-degree histograms in rank space (reusing the phase-1
  // buffers), an exclusive prefix over (node, thread) giving each thread its
  // private write cursor per node, then a scatter with no atomics.  Both
  // parallel_chunks calls see the same (t, lo, hi) decomposition, so each
  // thread scatters exactly the edges it counted.
  WallTimer fill_timer;
  pool.parallel_chunks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t t = 0; t < workers; ++t) {
      std::fill(hist[t].begin() + static_cast<std::ptrdiff_t>(lo),
                hist[t].begin() + static_cast<std::ptrdiff_t>(hi), 0);
    }
  });
  pool.parallel_chunks(edges.size(), [&](std::size_t t, std::size_t lo,
                                         std::size_t hi) {
    std::vector<std::uint32_t>& h = hist[t];
    for (std::size_t i = lo; i < hi; ++i) {
      const Edge e = edges[i];
      if (e.is_loop()) continue;
      ++h[std::min(g.rank_[e.u], g.rank_[e.v])];
    }
  });
  std::vector<std::uint64_t> raw_offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId r = 0; r < n; ++r) {
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < workers; ++t) total += hist[t][r];
    raw_offsets[r + 1] = raw_offsets[r] + total;
  }
  if (raw_offsets.back() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error(
        "Dodg::build: more than 2^32 oriented arcs; the 32-bit offset "
        "layout (and this in-memory engine) cannot hold the graph");
  }
  pool.parallel_chunks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      std::uint64_t cursor = raw_offsets[r];
      for (std::size_t t = 0; t < workers; ++t) {
        const std::uint32_t count = hist[t][r];
        hist[t][r] = static_cast<std::uint32_t>(cursor - raw_offsets[r]);
        cursor += count;
      }
    }
  });
  std::vector<NodeId> raw(raw_offsets.back());
  pool.parallel_chunks(edges.size(), [&](std::size_t t, std::size_t lo,
                                         std::size_t hi) {
    std::vector<std::uint32_t>& cursor = hist[t];
    for (std::size_t i = lo; i < hi; ++i) {
      const Edge e = edges[i];
      if (e.is_loop()) continue;
      const NodeId ru = g.rank_[e.u];
      const NodeId rv = g.rank_[e.v];
      const NodeId src = std::min(ru, rv);
      raw[raw_offsets[src] + cursor[src]++] = std::max(ru, rv);
    }
  });
  bt.fill_s = fill_timer.elapsed_s();

  // ---- phase 4: row sort + dedup + compaction -------------------------------
  // DODG out-degrees are O(sqrt(m))-bounded, so contiguous row chunks stay
  // balanced even on hub-heavy graphs.
  WallTimer sort_timer;
  std::vector<std::uint32_t> row_len(n, 0);
  pool.parallel_chunks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const auto begin = raw.begin() + static_cast<std::ptrdiff_t>(raw_offsets[r]);
      const auto end = raw.begin() + static_cast<std::ptrdiff_t>(raw_offsets[r + 1]);
      std::sort(begin, end);
      row_len[r] = static_cast<std::uint32_t>(std::unique(begin, end) - begin);
    }
  });
  for (NodeId r = 0; r < n; ++r) {
    g.offsets_[r + 1] = g.offsets_[r] + row_len[r];
  }
  g.targets_.resize(g.offsets_.back());
  pool.parallel_chunks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      std::copy_n(raw.begin() + static_cast<std::ptrdiff_t>(raw_offsets[r]),
                  row_len[r],
                  g.targets_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[r]));
    }
  });
  bt.sort_s = sort_timer.elapsed_s();

  if (times) *times = bt;
  return g;
}

}  // namespace pimtc::cpufast
