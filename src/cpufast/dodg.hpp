// DODG — the degree-ordered directed graph of the fast exact CPU backend.
//
// The modern exact-TC recipe (GraphChallenge survey; RapidsAtHKUST tech
// report) starts by *renumbering* vertices in ascending (degree, id) order
// and orienting every undirected edge from its lower-rank endpoint to the
// higher one.  Each triangle then appears exactly once, rooted at its
// lowest-degree apex, and — unlike the baseline's comparator-based
// orientation (src/baseline/cpu_tc.cpp), which pays two degree[] loads per
// comparison in the innermost merge — every downstream comparison is a
// plain integer compare on remapped ids.  Renumbering is a node-id
// bijection, so the triangle count is unchanged (DESIGN.md "Fast exact CPU
// backend").
//
// Construction is ThreadPool-parallel in every O(edges) phase:
//   1. degree histogram  — per-thread histograms over edge chunks, merged
//      by node range (deterministic, no atomics),
//   2. rank permutation  — counting sort by degree (O(n + max_degree)),
//   3. oriented fill     — prefix-summed offsets + parallel scatter through
//      per-node atomic cursors (row order is repaired by the sort),
//   4. row sort + dedup  — parallel per-row sort, in-place unique, then a
//      prefix-sum compaction into the final layout.
//
// The result is deterministic for a given edge multiset: duplicates and
// self loops are dropped during the build (same contract as Csr::from_coo),
// so feeding raw accumulated COO is fine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace pimtc::cpufast {

/// Wall-clock of the DODG build phases (the fast backend's "conversion").
struct BuildTimes {
  double degree_s = 0.0;  ///< degree histogram over the raw COO
  double rank_s = 0.0;    ///< counting-sort rank permutation
  double fill_s = 0.0;    ///< offsets + oriented parallel scatter
  double sort_s = 0.0;    ///< per-row sort, dedup, compaction

  [[nodiscard]] double total_s() const noexcept {
    return degree_s + rank_s + fill_s + sort_s;
  }
};

/// Degree-ordered directed graph in rank space.  Vertex r's out-neighbors
/// all have rank > r and are sorted ascending; rank order is ascending
/// (degree, original id), so out-degrees are O(sqrt(m))-bounded on any
/// graph and hubs sit at the top of the id range where nobody merges
/// through their full adjacency.
class Dodg {
 public:
  Dodg() = default;

  /// Builds from raw COO (duplicates and self loops dropped here; degrees
  /// for the ordering are computed on the raw multiset, which only moves
  /// the orientation, never the count).  `pool` runs every parallel phase;
  /// `times`, when non-null, receives the per-phase wall-clock.
  static Dodg build(std::span<const Edge> edges, ThreadPool& pool,
                    BuildTimes* times = nullptr);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeCount num_arcs() const noexcept { return targets_.size(); }

  /// Sorted out-neighbor span of rank-space vertex r.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId r) const noexcept {
    return {targets_.data() + offsets_[r], targets_.data() + offsets_[r + 1]};
  }

  /// Offsets are 32-bit on purpose: the counting loop's random offsets[v]
  /// loads are a first-order cache cost, and 2^32 oriented arcs (17 GB of
  /// targets) is beyond anything this in-memory engine can hold anyway —
  /// build() throws std::length_error before overflowing.
  [[nodiscard]] std::span<const std::uint32_t> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const NodeId> targets() const noexcept {
    return targets_;
  }

  /// rank[original id] -> rank-space id (a bijection over [0, n)).
  [[nodiscard]] std::span<const NodeId> rank() const noexcept { return rank_; }

 private:
  std::vector<std::uint32_t> offsets_;  // size n + 1
  std::vector<NodeId> targets_;         // rank-space, sorted per row
  std::vector<NodeId> rank_;            // original id -> rank
};

}  // namespace pimtc::cpufast
