#include "cpufast/count.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/timer.hpp"

namespace pimtc::cpufast {

namespace {

/// Rows per dynamic work chunk.  Small enough that the hub-dense top of the
/// rank range spreads over every thread, large enough that the shared
/// counter is off the hot path.
constexpr std::uint64_t kChunkRows = 256;

/// Window below which the gallop stops subdividing and resolves with one
/// block probe.  Matches the 8-lane SIMD width so the scalar and AVX2
/// resolves count identically.
constexpr std::size_t kBlockWidth = 8;

/// True when x occurs in the sorted block b[0, len), len <= kBlockWidth.
bool block_contains(const NodeId* b, std::size_t len, NodeId x) noexcept {
#if defined(__AVX2__)
  alignas(32) static constexpr std::int32_t kLane[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  const __m256i lane = _mm256_load_si256(reinterpret_cast<const __m256i*>(kLane));
  // Lanes >= len are masked out of both the load and the compare, so the
  // zeros maskload writes there can never alias a genuine x == 0 match.
  const __m256i live = _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<std::int32_t>(len)), lane);
  const __m256i block = _mm256_maskload_epi32(reinterpret_cast<const int*>(b), live);
  const __m256i hit = _mm256_and_si256(
      _mm256_cmpeq_epi32(block, _mm256_set1_epi32(static_cast<std::int32_t>(x))), live);
  return _mm256_movemask_epi8(hit) != 0;
#else
  for (std::size_t i = 0; i < len; ++i) {
    if (b[i] == x) return true;
  }
  return false;
#endif
}

/// Branch-light sorted-list intersection count; every iteration advances at
/// least one cursor, so `picks` is the classic merge-step tally.
TriangleCount merge_count(const NodeId* a, std::size_t na, const NodeId* b,
                          std::size_t nb, std::uint64_t& picks) noexcept {
  TriangleCount matches = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  std::uint64_t steps = 0;
  while (i < na && j < nb) {
    const NodeId x = a[i];
    const NodeId y = b[j];
    ++steps;
    matches += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  picks += steps;
  return matches;
}

/// Galloping intersection count: each element of the (sorted) small side is
/// exponential-searched into large[lo, nl), narrowing to a <= kBlockWidth
/// window resolved by one block probe.  `lo` only moves forward across
/// elements, so the whole small side costs O(small * log(large / small)).
/// Probes = search steps + one block resolve per element, identical for the
/// scalar and SIMD resolves.
TriangleCount gallop_count(const NodeId* small, std::size_t ns,
                           const NodeId* large, std::size_t nl,
                           std::uint64_t& probes) noexcept {
  TriangleCount matches = 0;
  std::size_t lo = 0;
  std::uint64_t p = 0;
  for (std::size_t i = 0; i < ns && lo < nl; ++i) {
    const NodeId x = small[i];
    // Exponentially bracket the first element >= x inside [lo, nl).
    std::size_t left = lo;
    std::size_t right = nl;
    std::size_t bound = 1;
    while (lo + bound < nl && large[lo + bound] < x) {
      ++p;
      bound <<= 1;
    }
    left = lo + (bound >> 1);
    right = std::min(lo + bound + 1, nl);
    // Binary-narrow to a block, then resolve with one probe.
    while (right - left > kBlockWidth) {
      ++p;
      const std::size_t mid = left + (right - left) / 2;
      if (large[mid] < x) {
        left = mid + 1;
      } else {
        right = mid;
      }
    }
    ++p;
    matches += block_contains(large + left, right - left, x);
    lo = left;  // everything before `left` is < x <= every later element
  }
  probes += p;
  return matches;
}

/// Resolved neighbor row of one out-arc target: base offset + length in the
/// targets array.  Written by the resolve pass, consumed by the probe pass.
struct RowRef {
  std::uint32_t off;
  std::uint32_t len;
};

struct alignas(64) WorkerState {
  CountStats stats{};
  std::vector<std::uint64_t> bitmap;  // lazily sized to ceil(n / 64) words
  std::vector<RowRef> rows;           // per-source resolve-pass scratch
};

/// Number of set bitmap bits over the keys w in ws[0, n).  The AVX2 path
/// gathers eight 32-bit bitmap words per step and extracts each key's bit
/// with a variable shift; iterations are independent, so the gather's
/// parallel loads replace the scalar path's serialized load chain.  The
/// probe tally is n under either path.
std::uint64_t bitmap_count(const std::uint64_t* bitmap, const NodeId* ws,
                           std::size_t n) noexcept {
  std::uint64_t matches = 0;
  std::size_t i = 0;
#if defined(__AVX2__)
  const auto* words32 = reinterpret_cast<const int*>(bitmap);
  __m256i acc = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    const __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ws + i));
    const __m256i word =
        _mm256_i32gather_epi32(words32, _mm256_srli_epi32(w, 5), 4);
    const __m256i bit = _mm256_and_si256(
        _mm256_srlv_epi32(word, _mm256_and_si256(w, _mm256_set1_epi32(31))),
        _mm256_set1_epi32(1));
    acc = _mm256_add_epi32(acc, bit);
  }
  alignas(32) std::uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  for (const std::uint32_t lane : lanes) matches += lane;
#endif
  for (; i < n; ++i) {
    const NodeId w = ws[i];
    matches += (bitmap[w >> 6] >> (w & 63)) & 1ull;
  }
  return matches;
}

void count_from_source(const Dodg& g, const CountConfig& cfg, NodeId u,
                       WorkerState& ws) {
  const std::span<const NodeId> out_u = g.neighbors(u);
  const std::size_t du = out_u.size();
  if (du < 2) return;
  CountStats& s = ws.stats;
  const std::uint32_t* offs = g.offsets().data();
  const NodeId* tgt = g.targets().data();
  const NodeId* order = out_u.data();

  // Resolve pass: fetch every neighbor row's bounds and prefetch its data.
  // Done up front so the per-pair miss chain (offsets[v], then the row
  // itself) turns into du independent in-flight misses instead of a
  // serialized two-deep chain per pair.
  ws.rows.resize(du);
  for (std::size_t i = 0; i < du; ++i) {
    const NodeId v = order[i];
    const std::uint32_t begin = offs[v];
    ws.rows[i] = {begin, offs[v + 1] - begin};
    __builtin_prefetch(tgt + begin);
  }

  if (cfg.hub_degree != 0 && du >= cfg.hub_degree) {
    if (ws.bitmap.empty()) {
      ws.bitmap.assign((static_cast<std::size_t>(g.num_nodes()) + 63) / 64, 0);
    }
    for (const NodeId v : out_u) {
      ws.bitmap[v >> 6] |= 1ull << (v & 63);
    }
    TriangleCount matches = 0;
    std::uint64_t probes = 0;
    for (std::size_t i = 0; i < du; ++i) {
      const RowRef row = ws.rows[i];
      matches += bitmap_count(ws.bitmap.data(), tgt + row.off, row.len);
      probes += row.len;
      ++s.bitmap_isects;
    }
    for (const NodeId v : out_u) {
      ws.bitmap[v >> 6] &= ~(1ull << (v & 63));
    }
    s.triangles += matches;
    s.bitmap_probes += probes;
    return;
  }

  for (std::size_t i = 0; i + 1 < du; ++i) {
    const RowRef row = ws.rows[i];
    const std::size_t nb = row.len;
    if (nb == 0) continue;
    // Everything in N+(v) ranks above v, so the prefix of N+(u) through v
    // cannot match: intersect only the strict suffix.
    const NodeId* a = order + i + 1;
    const std::size_t na = du - i - 1;
    const NodeId* b = tgt + row.off;
    const NodeId* small = na <= nb ? a : b;
    const std::size_t ns = std::min(na, nb);
    const NodeId* large = na <= nb ? b : a;
    const std::size_t nl = std::max(na, nb);
    if (tc::choose_gallop(cfg.policy, cfg.gallop_margin, ns, nl)) {
      ++s.gallop_isects;
      s.triangles += gallop_count(small, ns, large, nl, s.gallop_probes);
    } else {
      ++s.merge_isects;
      s.triangles += merge_count(a, na, b, nb, s.merge_picks);
    }
  }
}

}  // namespace

CountStats count_triangles(const Dodg& g, const CountConfig& cfg,
                           ThreadPool& pool) {
  WallTimer timer;
  const NodeId n = g.num_nodes();
  CountStats total;
  if (n == 0) {
    total.count_s = timer.elapsed_s();
    return total;
  }
  const std::size_t workers = std::max<std::size_t>(pool.size(), 1);
  std::vector<WorkerState> states(workers);
  std::atomic<std::uint64_t> next_chunk{0};
  const std::uint64_t num_chunks =
      (static_cast<std::uint64_t>(n) + kChunkRows - 1) / kChunkRows;
  pool.parallel_for(workers, [&](std::size_t t) {
    WorkerState& ws = states[t];
    for (;;) {
      const std::uint64_t chunk =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      ++ws.stats.chunks_claimed;
      const NodeId begin = static_cast<NodeId>(chunk * kChunkRows);
      const NodeId end = static_cast<NodeId>(
          std::min<std::uint64_t>(n, (chunk + 1) * kChunkRows));
      for (NodeId u = begin; u < end; ++u) {
        count_from_source(g, cfg, u, ws);
      }
    }
  });
  for (const WorkerState& ws : states) {
    const CountStats& s = ws.stats;
    total.triangles += s.triangles;
    total.merge_isects += s.merge_isects;
    total.gallop_isects += s.gallop_isects;
    total.bitmap_isects += s.bitmap_isects;
    total.merge_picks += s.merge_picks;
    total.gallop_probes += s.gallop_probes;
    total.bitmap_probes += s.bitmap_probes;
    total.chunks_claimed += s.chunks_claimed;
  }
  total.count_s = timer.elapsed_s();
  return total;
}

}  // namespace pimtc::cpufast
