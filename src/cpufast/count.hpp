// Thread-parallel adaptive triangle counting over a Dodg.
//
// Sources are claimed in fixed-size row chunks from a shared atomic counter
// (hub rows cluster at the top of the rank range, so static blocks would
// leave the last thread holding every hub).  Each (u, v) arc intersects
// N+(u) with N+(v) through one of three strategies:
//
//  * merge  — branch-light linear co-advance (similar-size lists),
//  * gallop — exponential + binary search of the small side into the large
//    one, resolved by an 8-wide SIMD block probe where AVX2 is available
//    (skewed pairs, per tc::choose_gallop's cost model),
//  * bitmap — for hub sources with out-degree >= hub_degree, N+(u) is
//    splatted into a per-thread packed bitmap and every w in N+(v) becomes
//    an O(1) membership probe.
//
// The match set — and therefore the count — is identical under every
// strategy; only the work counters move.  Counters are deterministic
// across thread counts: a chunk contributes the same work whichever thread
// claims it.
#pragma once

#include <cstdint>

#include "common/thread_pool.hpp"
#include "cpufast/dodg.hpp"
#include "tc/intersect.hpp"

namespace pimtc::cpufast {

struct CountConfig {
  tc::IntersectPolicy policy = tc::IntersectPolicy::kAuto;
  std::uint32_t gallop_margin = 3;
  /// Out-degree at which a source switches to the packed-bitmap path;
  /// 0 disables the bitmap entirely (pure merge/gallop).
  std::uint32_t hub_degree = 256;
};

/// Result + work counters of one counting pass (engine::KernelStats shape,
/// plus the bitmap split).
struct CountStats {
  TriangleCount triangles = 0;
  std::uint64_t merge_isects = 0;   ///< (u,v) pairs resolved by merge
  std::uint64_t gallop_isects = 0;  ///< (u,v) pairs resolved by gallop
  std::uint64_t bitmap_isects = 0;  ///< (u,v) pairs resolved by bitmap
  std::uint64_t merge_picks = 0;    ///< merge loop iterations
  std::uint64_t gallop_probes = 0;  ///< search steps + block resolves
  std::uint64_t bitmap_probes = 0;  ///< bitmap membership tests
  std::uint64_t chunks_claimed = 0; ///< row chunks pulled from the counter
  double count_s = 0.0;             ///< wall-clock of the parallel section

  /// Total intersection operations (the backend's "kernel instructions").
  [[nodiscard]] std::uint64_t ops() const noexcept {
    return merge_picks + gallop_probes + bitmap_probes;
  }
};

[[nodiscard]] CountStats count_triangles(const Dodg& g, const CountConfig& cfg,
                                         ThreadPool& pool);

}  // namespace pimtc::cpufast
