#include "coloring/triplets.hpp"

#include <stdexcept>
#include <utility>

#include "common/math_util.hpp"

namespace pimtc::color {

TripletTable::TripletTable(std::uint32_t num_colors) : colors_(num_colors) {
  if (num_colors == 0 || num_colors > 256) {
    throw std::invalid_argument("TripletTable: colors must be in [1, 256]");
  }
  triplets_.reserve(pimtc::num_triplets(colors_));
  const std::size_t c = colors_;
  triplet_index_.assign(c * c * c, 0);

  for (std::uint32_t a = 0; a < colors_; ++a) {
    for (std::uint32_t b = a; b < colors_; ++b) {
      for (std::uint32_t k = b; k < colors_; ++k) {
        triplet_index_[(static_cast<std::size_t>(a) * c + b) * c + k] =
            static_cast<std::uint32_t>(triplets_.size());
        triplets_.push_back(Triplet{a, b, k});
      }
    }
  }

  // Precompute the C compatible triplets of every unordered color pair.
  pair_targets_.resize(c * (c + 1) / 2);
  for (std::uint32_t c1 = 0; c1 < colors_; ++c1) {
    for (std::uint32_t c2 = c1; c2 < colors_; ++c2) {
      auto& out = pair_targets_[pair_index(c1, c2)];
      out.reserve(colors_);
      for (std::uint32_t x = 0; x < colors_; ++x) {
        // Sorted triplet containing {c1, c2, x}.
        std::uint32_t a = c1;
        std::uint32_t b = c2;
        std::uint32_t k = x;
        if (k < b) std::swap(k, b);
        if (b < a) std::swap(b, a);
        if (k < b) std::swap(k, b);
        out.push_back(index_of({a, b, k}));
      }
    }
  }
}

std::uint32_t TripletTable::index_of(Triplet t) const noexcept {
  const std::size_t c = colors_;
  return triplet_index_[(static_cast<std::size_t>(t.a) * c + t.b) * c + t.c];
}

std::uint32_t TripletTable::pair_index(std::uint32_t c1,
                                       std::uint32_t c2) const noexcept {
  if (c1 > c2) std::swap(c1, c2);
  // Row-major index into the upper-triangular pair matrix.
  return c1 * colors_ - c1 * (c1 - 1) / 2 + (c2 - c1);
}

std::span<const std::uint32_t> TripletTable::targets(
    std::uint32_t c1, std::uint32_t c2) const noexcept {
  return pair_targets_[pair_index(c1, c2)];
}

}  // namespace pimtc::color
