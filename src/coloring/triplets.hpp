// Color-triplet bookkeeping for the coloring-based edge partitioning
// (paper Section 3.1).
//
// With C colors there are binom(C+2, 3) ordered triplets (i <= j <= k); each
// PIM core owns exactly one.  An edge whose endpoints are colored {c1, c2}
// is replicated to every triplet that contains the pair as a sub-multiset —
// exactly C triplets:
//
//   c1 == c2 : triplets with >= 2 copies of c1 (the third color is free),
//   c1 != c2 : triplets containing both colors (the third color is free).
//
// The table also exposes the structural facts the evaluation relies on:
//  * the index of each single-color triplet (c,c,c), whose count corrects
//    the C-fold counting of monochromatic triangles,
//  * the triplet "kind" (1, 2 or 3 distinct colors), which determines the
//    expected per-core load N / 3N / 6N.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace pimtc::color {

/// Sorted color triplet (a <= b <= c).
struct Triplet {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;

  friend constexpr auto operator<=>(const Triplet&, const Triplet&) = default;

  /// Number of distinct colors (1, 2 or 3).
  [[nodiscard]] constexpr std::uint32_t kind() const noexcept {
    if (a == c) return 1;
    if (a == b || b == c) return 2;
    return 3;
  }
};

class TripletTable {
 public:
  explicit TripletTable(std::uint32_t num_colors);

  [[nodiscard]] std::uint32_t num_colors() const noexcept { return colors_; }

  /// Number of triplets == number of PIM cores used.
  [[nodiscard]] std::uint32_t num_triplets() const noexcept {
    return static_cast<std::uint32_t>(triplets_.size());
  }

  [[nodiscard]] const Triplet& triplet(std::uint32_t index) const noexcept {
    return triplets_[index];
  }

  /// Index of the sorted triplet (a <= b <= c).
  [[nodiscard]] std::uint32_t index_of(Triplet t) const noexcept;

  /// Index of the single-color triplet (c, c, c).
  [[nodiscard]] std::uint32_t mono_index(std::uint32_t color) const noexcept {
    return index_of({color, color, color});
  }

  /// The PIM cores compatible with an endpoint-color pair; always exactly
  /// `num_colors()` entries.  `c1`/`c2` need not be ordered.
  [[nodiscard]] std::span<const std::uint32_t> targets(
      std::uint32_t c1, std::uint32_t c2) const noexcept;

 private:
  [[nodiscard]] std::uint32_t pair_index(std::uint32_t c1,
                                         std::uint32_t c2) const noexcept;

  std::uint32_t colors_;
  std::vector<Triplet> triplets_;
  std::vector<std::uint32_t> triplet_index_;  // dense [a][b][c] lookup
  std::vector<std::vector<std::uint32_t>> pair_targets_;
};

}  // namespace pimtc::color
