#include "coloring/partition_plan.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/math_util.hpp"

namespace pimtc::color {

namespace {
/// TripletTable's hard limit; auto selection must not propose more.
constexpr std::uint32_t kMaxColors = 256;
}  // namespace

const char* to_string(PlacementPolicy policy) noexcept {
  switch (policy) {
    case PlacementPolicy::kIdentity:
      return "identity";
    case PlacementPolicy::kKindInterleave:
      return "kind_interleave";
    case PlacementPolicy::kGreedyBalance:
      return "greedy_balance";
  }
  return "?";
}

PlacementPolicy placement_from_string(const std::string& name) {
  if (name == "identity") return PlacementPolicy::kIdentity;
  if (name == "kind_interleave" || name == "kind") {
    return PlacementPolicy::kKindInterleave;
  }
  if (name == "greedy_balance" || name == "greedy") {
    return PlacementPolicy::kGreedyBalance;
  }
  throw std::invalid_argument(
      "placement policy '" + name +
      "' unknown (identity | kind_interleave | greedy_balance)");
}

std::uint32_t PartitionPlan::auto_colors(std::uint64_t max_dpus) noexcept {
  return std::min(max_colors_for_cores(max_dpus), kMaxColors);
}

double PartitionPlan::load_imbalance(
    std::span<const std::uint64_t> loads) noexcept {
  if (loads.empty()) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (const std::uint64_t l : loads) {
    total += l;
    max = std::max(max, l);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(max) / mean;
}

PartitionPlan::PartitionPlan(std::uint32_t num_colors, PlacementPolicy policy,
                             std::uint32_t dpus_per_rank)
    : table_(num_colors),
      policy_(policy),
      dpus_per_rank_(dpus_per_rank == 0 ? 1 : dpus_per_rank) {
  const std::uint32_t n = table_.num_triplets();
  dpu_of_.resize(n);
  triplet_of_.resize(n);
  if (policy_ == PlacementPolicy::kIdentity) {
    std::iota(dpu_of_.begin(), dpu_of_.end(), 0u);
    std::iota(triplet_of_.begin(), triplet_of_.end(), 0u);
    return;
  }
  // Both load-aware policies start from the static expected-load order;
  // greedy_balance later re-plans from observed loads (set_placement).
  std::vector<std::uint64_t> weights(n);
  for (std::uint32_t t = 0; t < n; ++t) {
    weights[t] = kind_weight(table_.triplet(t).kind());
  }
  set_placement(balanced_placement(weights));
}

void PartitionPlan::add_spare_banks(std::uint32_t n) {
  spare_banks_ += n;
  triplet_of_.resize(num_dpus(), kNoTriplet);
}

std::vector<std::uint32_t> PartitionPlan::balanced_placement(
    std::span<const std::uint64_t> per_triplet_load) const {
  // LPT only ever targets the first num_triplets() banks; spares are
  // reserved for fault migrations and never receive planned load.
  const std::uint32_t n = num_triplets();
  if (per_triplet_load.size() != n) {
    throw std::invalid_argument(
        "PartitionPlan: balanced_placement needs one load per triplet");
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (per_triplet_load[a] != per_triplet_load[b]) {
                return per_triplet_load[a] > per_triplet_load[b];
              }
              return a < b;
            });
  std::vector<std::uint32_t> dpu_of(n);
  for (std::uint32_t d = 0; d < n; ++d) dpu_of[order[d]] = d;
  return dpu_of;
}

bool PartitionPlan::set_placement(
    std::span<const std::uint32_t> dpu_of_triplet) {
  const std::uint32_t n = num_triplets();
  const std::uint32_t banks = num_dpus();
  if (dpu_of_triplet.size() != n) {
    throw std::invalid_argument(
        "PartitionPlan: placement needs one DPU per triplet");
  }
  std::vector<std::uint32_t> inverse(banks, kNoTriplet);
  for (std::uint32_t t = 0; t < n; ++t) {
    const std::uint32_t d = dpu_of_triplet[t];
    if (d >= banks || inverse[d] != kNoTriplet) {
      throw std::invalid_argument(
          "PartitionPlan: placement must map triplets one-to-one into "
          "[0, num_dpus)");
    }
    inverse[d] = t;
  }
  if (std::equal(dpu_of_.begin(), dpu_of_.end(), dpu_of_triplet.begin())) {
    return false;
  }
  dpu_of_.assign(dpu_of_triplet.begin(), dpu_of_triplet.end());
  triplet_of_ = std::move(inverse);
  return true;
}

std::uint64_t PartitionPlan::padded_wire_bytes(
    std::span<const std::uint64_t> per_triplet_bytes,
    std::span<const std::uint32_t> dpu_of_triplet,
    std::uint32_t alignment) const noexcept {
  const std::uint32_t n = num_triplets();
  const std::uint32_t banks = num_dpus();
  const std::uint64_t align = alignment == 0 ? 1 : alignment;
  // Per-rank slowest-DPU padding over aligned spans, mirroring
  // PimSystem::charge_bulk.
  std::uint64_t wire = 0;
  std::vector<std::uint64_t> per_dpu(banks, 0);
  for (std::uint32_t t = 0; t < n && t < per_triplet_bytes.size(); ++t) {
    per_dpu[dpu_of_triplet[t]] = per_triplet_bytes[t];
  }
  for (std::uint32_t lo = 0; lo < banks; lo += dpus_per_rank_) {
    const std::uint32_t hi = std::min(banks, lo + dpus_per_rank_);
    std::uint64_t rank_max = 0;
    for (std::uint32_t d = lo; d < hi; ++d) {
      rank_max = std::max(rank_max, round_up(per_dpu[d], align));
    }
    wire += rank_max * (hi - lo);
  }
  return wire;
}

}  // namespace pimtc::color
