// PartitionPlan: the placement layer between color triplets and physical
// PIM cores (DPUs).
//
// The triplet table fixes *what* each core computes; the plan decides
// *where* each triplet runs.  That mapping is pure bookkeeping for the
// estimator — per-triplet reservoirs, corrections and seeds are all keyed
// by triplet index, so the estimate is bit-identical under any placement —
// but it shapes the timing model twice:
//
//  * scatter padding: the rank-parallel transfer engine pads every DPU of a
//    rank to the slowest (largest) span, so ranks mixing light kind-1
//    triplets (expected load N) with heavy kind-3 triplets (6N) move up to
//    6x the payload on the wire.  Packing similar loads into the same rank
//    shrinks the wire/payload gap toward 1.
//  * launch skew: the host boots ranks one after another, so a heavy core
//    in a late rank finishes latest.  Placing heavy triplets in the ranks
//    booted first hides the skew under their longer kernels.
//
// Three policies:
//   identity        triplet i runs on DPU i (the legacy layout),
//   kind_interleave kind-major static order — ranks are filled kind by
//                   kind so equal-expected-load cores share a rank,
//   greedy_balance  LPT packing by *observed* per-triplet load: the first
//                   non-empty batch (and any later rebalance()) sorts
//                   triplets by measured load, heaviest first, and chunks
//                   the sorted order into ranks.
//
// The plan also owns auto color selection: num_colors == 0 derives the
// largest C with binom(C+2, 3) <= max_dpus, so the default machine is
// actually filled (2560 DPUs -> C = 23 -> 2300 cores) instead of idling on
// a hand-picked small C.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "coloring/triplets.hpp"

namespace pimtc::color {

enum class PlacementPolicy : std::uint8_t {
  kIdentity,
  kKindInterleave,
  kGreedyBalance,
};

[[nodiscard]] const char* to_string(PlacementPolicy policy) noexcept;

/// Parses "identity" | "kind_interleave"/"kind" | "greedy_balance"/"greedy";
/// throws std::invalid_argument for anything else.
[[nodiscard]] PlacementPolicy placement_from_string(const std::string& name);

class PartitionPlan {
 public:
  /// Builds the plan for `num_colors` colors (must be >= 1; resolve 0 via
  /// auto_colors() first) laid out over ranks of `dpus_per_rank` DPUs.
  PartitionPlan(std::uint32_t num_colors, PlacementPolicy policy,
                std::uint32_t dpus_per_rank);

  /// Largest C whose binom(C+2, 3) triplets fit `max_dpus` cores, capped at
  /// the triplet table's 256-color limit.  Returns 0 when not even C = 1
  /// fits (machine smaller than one core).
  [[nodiscard]] static std::uint32_t auto_colors(std::uint64_t max_dpus) noexcept;

  /// Expected relative load of a triplet kind (1 / 2 / 3 distinct colors
  /// see N / 3N / 6N edges for N = |E| / C^2).
  [[nodiscard]] static constexpr std::uint32_t kind_weight(
      std::uint32_t kind) noexcept {
    return kind == 1 ? 1 : kind == 2 ? 3 : 6;
  }

  /// max(load) / mean(load); 1.0 for empty or all-zero loads.  The count
  /// phase is gated by the max, so this is the headroom a perfectly uniform
  /// partition would recover.
  [[nodiscard]] static double load_imbalance(
      std::span<const std::uint64_t> loads) noexcept;

  /// triplet_of() for a spare bank that currently hosts no triplet.
  static constexpr std::uint32_t kNoTriplet = 0xffffffffu;

  [[nodiscard]] const TripletTable& table() const noexcept { return table_; }
  [[nodiscard]] std::uint32_t num_colors() const noexcept {
    return table_.num_colors();
  }
  [[nodiscard]] std::uint32_t num_triplets() const noexcept {
    return table_.num_triplets();
  }
  /// Physical banks the plan spans: one per triplet plus any spares.  This
  /// is the allocation size for PimSystem — spares idle until a fault
  /// migration targets them.
  [[nodiscard]] std::uint32_t num_dpus() const noexcept {
    return table_.num_triplets() + spare_banks_;
  }
  [[nodiscard]] std::uint32_t spare_banks() const noexcept {
    return spare_banks_;
  }

  /// Reserves `n` extra banks beyond the triplet count as migration targets
  /// for fault recovery.  Call before the PimSystem is sized; spares start
  /// unassigned (triplet_of() == kNoTriplet).
  void add_spare_banks(std::uint32_t n);
  [[nodiscard]] PlacementPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint32_t dpus_per_rank() const noexcept {
    return dpus_per_rank_;
  }

  /// Physical DPU executing triplet `t` (an injection of [0, num_triplets())
  /// into [0, num_dpus()); a bijection when there are no spares), and its
  /// inverse (kNoTriplet for an unassigned spare bank).
  [[nodiscard]] std::uint32_t dpu_of(std::uint32_t triplet) const noexcept {
    return dpu_of_[triplet];
  }
  [[nodiscard]] std::uint32_t triplet_of(std::uint32_t dpu) const noexcept {
    return triplet_of_[dpu];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& placement() const noexcept {
    return dpu_of_;
  }

  /// LPT placement for the given per-triplet loads: triplets sorted by load
  /// descending (ties by triplet index, so the result is deterministic) and
  /// chunked into ranks in that order — similar loads share a rank and the
  /// heaviest rank boots first.
  [[nodiscard]] std::vector<std::uint32_t> balanced_placement(
      std::span<const std::uint64_t> per_triplet_load) const;

  /// Installs an explicit triplet->DPU map (validated injection into
  /// [0, num_dpus()); throws std::invalid_argument otherwise).  Returns
  /// false when it equals the current placement.  Callers owning device
  /// state must migrate it — see tc::PimTriangleCounter::rebalance().
  bool set_placement(std::span<const std::uint32_t> dpu_of_triplet);

  /// Wire bytes the rank-padded transfer engine would move for one scatter
  /// of `per_triplet_bytes`, under the current placement or an explicit
  /// candidate — the objective rebalancing minimizes.  `alignment` is the
  /// engine's transfer granularity (PimSystemConfig::dma_alignment_bytes);
  /// pass it to match the modeled wire exactly.
  [[nodiscard]] std::uint64_t padded_wire_bytes(
      std::span<const std::uint64_t> per_triplet_bytes,
      std::uint32_t alignment = 1) const noexcept {
    return padded_wire_bytes(per_triplet_bytes, dpu_of_, alignment);
  }
  [[nodiscard]] std::uint64_t padded_wire_bytes(
      std::span<const std::uint64_t> per_triplet_bytes,
      std::span<const std::uint32_t> dpu_of_triplet,
      std::uint32_t alignment = 1) const noexcept;

 private:
  TripletTable table_;
  PlacementPolicy policy_;
  std::uint32_t dpus_per_rank_;
  std::uint32_t spare_banks_ = 0;
  std::vector<std::uint32_t> dpu_of_;      // triplet -> DPU
  std::vector<std::uint32_t> triplet_of_;  // DPU -> triplet (or kNoTriplet)
};

}  // namespace pimtc::color
