// EdgePartitioner: colors an edge's endpoints and yields the PIM cores the
// edge must be replicated to.  Stateless per edge, cheap to copy into every
// host thread of the batch builder.
#pragma once

#include <span>

#include "common/hash.hpp"
#include "coloring/triplets.hpp"

namespace pimtc::color {

class EdgePartitioner {
 public:
  EdgePartitioner(const ColorHash& hash, const TripletTable& table) noexcept
      : hash_(hash), table_(&table) {}

  [[nodiscard]] std::uint32_t color_of(NodeId u) const noexcept {
    return hash_(u);
  }

  /// The `num_colors` PIM cores that receive this edge.
  [[nodiscard]] std::span<const std::uint32_t> targets(Edge e) const noexcept {
    return table_->targets(hash_(e.u), hash_(e.v));
  }

  [[nodiscard]] const TripletTable& table() const noexcept { return *table_; }
  [[nodiscard]] const ColorHash& hash() const noexcept { return hash_; }

 private:
  ColorHash hash_;
  const TripletTable* table_;
};

}  // namespace pimtc::color
