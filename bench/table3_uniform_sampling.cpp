// Regenerates Table 3: relative error of the triangle estimate when keeping
// each edge with probability p in {0.5, 0.25, 0.1, 0.01} (uniform sampling
// at the host, DOULION-style, corrected by 1/p^3).
//
// Paper claims: errors typically stay below ~2.5% even at p = 0.01 — except
// V1r, whose 49 triangles are so few that sampling destroys them (up to
// 100% error).
//
// Scale note: the DOULION estimator's relative standard deviation is
// ~ sqrt((1/p^3 - 1) / T) for T surviving-independent triangles, so the
// *absolute* triangle count controls accuracy.  Our stand-ins carry 1e4-1e6
// triangles instead of the paper's 1e8-1e10; the bench therefore prints
// measured error next to the theory prediction at our scale AND the theory
// prediction at the published triangle counts — the latter is the paper's
// <2.5% row.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "graph/reference_tc.hpp"
#include "tc/host.hpp"

namespace {

/// First-order relative std of the DOULION estimate.
double theory_error(double triangles, double p) {
  if (triangles <= 0.0) return 1.0;
  const double blowup = 1.0 / (p * p * p) - 1.0;
  return std::sqrt(blowup / triangles);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pimtc;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Table 3: relative error vs uniform-sampling keep probability p",
      "errors stay low (<~2.5%) down to p=0.01 at published triangle "
      "counts; V1r blows up because it has almost no triangles",
      opt);

  std::vector<double> ps = {0.5, 0.25, 0.1, 0.01};
  if (opt.quick) ps = {0.5, 0.1};

  std::printf("%-14s", "graph");
  for (const double p : ps) std::printf("  %15.2f", p);
  std::printf("  %14s\n", "paper@0.01");
  std::printf("%-14s", "");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::printf("  %15s", "meas / theory");
  }
  std::printf("  %14s\n", "theory");

  bool measured_tracks_theory = true;
  bool paper_scale_claim = true;
  bool v1r_blows_up = false;

  for (const auto g : graph::kAllPaperGraphs) {
    const graph::EdgeList list = bench::load_graph(g, opt);
    const auto& info = graph::paper_graph_info(g);
    const auto truth =
        static_cast<double>(graph::reference_triangle_count(list));

    std::printf("%-14s", info.name.data());
    for (const double p : ps) {
      // Median over three seeds: a single draw sits 1-3 std from truth.
      std::vector<double> errs;
      for (std::uint64_t s = 0; s < 3; ++s) {
        tc::TcConfig cfg;
        cfg.num_colors = opt.colors;
        cfg.uniform_p = p;
        cfg.seed = derive_seed(opt.seed,
                               static_cast<std::uint64_t>(p * 1000) + s);
        tc::PimTriangleCounter counter(cfg);
        const tc::TcResult r = counter.count(list);
        errs.push_back(relative_error(r.estimate, truth));
      }
      std::sort(errs.begin(), errs.end());
      const double err = errs[1];
      // theory_error assumes independent triangle survival; triangles that
      // share hub edges survive together, so hub-heavy graphs can exceed
      // the 1-sigma prediction — hence the 4x acceptance band below.
      const double theory = theory_error(truth, p);
      std::printf("  %6.2f%% /%6.2f%%", err * 100.0, theory * 100.0);

      if (g == graph::PaperGraph::kV1r) {
        if (err > 0.10) v1r_blows_up = true;
      } else if (err > std::max(4.0 * theory, 0.025)) {
        measured_tracks_theory = false;
      }
    }
    // The paper's p=0.01 row, predicted from the published triangle count.
    const double paper_theory =
        theory_error(static_cast<double>(info.paper_triangles), 0.01);
    std::printf("  %13.2f%%\n", paper_theory * 100.0);
    if (g != graph::PaperGraph::kV1r && paper_theory > 0.06) {
      paper_scale_claim = false;
    }
  }

  std::printf("\nShape check: measured error within 4x of estimator theory "
              "at this scale: %s; theory at published triangle counts "
              "is in the paper's small-error regime (paper: 0.13-2.4%%): %s; V1r degrades "
              "badly: %s\n",
              measured_tracks_theory ? "HOLDS" : "VIOLATED",
              paper_scale_claim ? "HOLDS" : "VIOLATED",
              v1r_blows_up ? "HOLDS" : "WEAK");
  return 0;
}
