// Ablation for the Section 3.1 load-balance analysis: with C colors, cores
// owning a single-color triplet receive N edges in expectation, two-color
// cores 3N, three-color cores 6N — and as C grows, the 6N cores dominate
// the population (binomial growth), keeping the machine load-balanced.
//
// This bench measures the actual per-core edge loads (t_d) on a real edge
// stream and compares the per-kind means against the 1 : 3 : 6 prediction.
#include <vector>

#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "tc/host.hpp"

int main(int argc, char** argv) {
  using namespace pimtc;
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Ablation (Section 3.1): per-core edge load by triplet kind",
      "single/two/three-color cores receive loads in ratio 1 : 3 : 6; "
      "three-color cores dominate the population as C grows",
      opt);

  const graph::EdgeList list =
      bench::load_graph(graph::PaperGraph::kKronecker23, opt);

  std::vector<std::uint32_t> color_counts = {4, 8, 13, 23};
  if (opt.quick) color_counts = {4, 13};

  for (const std::uint32_t c : color_counts) {
    tc::TcConfig cfg;
    cfg.num_colors = c;
    cfg.seed = opt.seed;
    tc::PimTriangleCounter counter(cfg);
    counter.add_edges(list.edges());

    const auto seen = counter.per_dpu_edges_seen();
    const auto& table = counter.triplets();

    double sum[4] = {0, 0, 0, 0};
    std::uint64_t count[4] = {0, 0, 0, 0};
    std::uint64_t max_load = 0;
    std::uint64_t min_load = ~0ull;
    for (std::uint32_t d = 0; d < table.num_triplets(); ++d) {
      const auto kind = table.triplet(d).kind();
      sum[kind] += static_cast<double>(seen[d]);
      ++count[kind];
      max_load = std::max(max_load, seen[d]);
      min_load = std::min(min_load, seen[d]);
    }
    const double n1 = sum[1] / static_cast<double>(count[1]);
    const double n2 = sum[2] / static_cast<double>(count[2]);
    const double n3 = sum[3] / static_cast<double>(count[3]);

    std::printf("\nC=%u (%llu cores: %llu mono, %llu two-color, %llu "
                "three-color)\n",
                c, static_cast<unsigned long long>(num_triplets(c)),
                static_cast<unsigned long long>(count[1]),
                static_cast<unsigned long long>(count[2]),
                static_cast<unsigned long long>(count[3]));
    std::printf("  mean load: mono %.0f | two-color %.0f (%.2fx) | "
                "three-color %.0f (%.2fx)   [predicted 1x / 3x / 6x]\n",
                n1, n2, n2 / n1, n3, n3 / n1);
    std::printf("  spread: min %llu, max %llu, max/min %.2f\n",
                static_cast<unsigned long long>(min_load),
                static_cast<unsigned long long>(max_load),
                static_cast<double>(max_load) /
                    static_cast<double>(std::max<std::uint64_t>(1, min_load)));

    const bool ratios_hold =
        n2 / n1 > 2.5 && n2 / n1 < 3.5 && n3 / n1 > 5.0 && n3 / n1 < 7.0;
    std::printf("  shape: 1:3:6 ratio %s\n", ratios_hold ? "HOLDS" : "WEAK");
  }
  return 0;
}
