// Shared plumbing for the benchmark binaries (one per paper table/figure).
//
// Every bench accepts:
//   --scale=<float>   edge-budget multiplier for the stand-in graphs
//                     (default 0.5; 1.0 ~ a quarter-million edges per graph)
//   --colors=<int>    vertex colors C (default 23, the paper's setting:
//                     binom(25,3) = 2300 PIM cores)
//   --quick           trims sweep grids for CI-style runs
//
// Output convention: a header block naming the paper artifact being
// regenerated, then a fixed-width table with one row per paper row/series
// point, then a "shape check" line summarizing whether the qualitative
// claim of the figure holds in this run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/prng.hpp"
#include "graph/coo.hpp"
#include "graph/paper_graphs.hpp"
#include "graph/preprocess.hpp"

namespace pimtc::bench {

struct BenchOptions {
  double scale = 0.5;
  std::uint32_t colors = 23;
  bool quick = false;
  std::uint64_t seed = 42;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opt.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--colors=", 9) == 0) {
      opt.colors = static_cast<std::uint32_t>(std::atoi(arg + 9));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' "
                   "(supported: --scale= --colors= --seed= --quick)\n",
                   arg);
      std::exit(2);
    }
  }
  return opt;
}

/// Builds the preprocessed (dedup + shuffle) stand-in for one paper graph.
inline graph::EdgeList load_graph(graph::PaperGraph g, const BenchOptions& opt) {
  graph::EdgeList list = graph::make_paper_graph(g, opt.scale, opt.seed);
  graph::preprocess(list, derive_seed(opt.seed, 0x9e37));
  return list;
}

inline void print_header(const char* artifact, const char* claim,
                         const BenchOptions& opt) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact);
  std::printf("Paper claim: %s\n", claim);
  std::printf("Config: scale=%.2f colors=%u seed=%llu%s\n", opt.scale,
              opt.colors, static_cast<unsigned long long>(opt.seed),
              opt.quick ? " (quick)" : "");
  std::printf("==============================================================\n");
}

/// 1e6-style human formatting for counts.
inline std::string human(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

}  // namespace pimtc::bench
