// Regenerates Table 4: relative error when the per-core sample capacity M
// is limited to a fraction p of the expected worst-case per-core load
// 6|E|/C^2, forcing reservoir sampling (TRIEST-style, corrected by
// t(t-1)(t-2)/(M(M-1)(M-2)) per core).
//
// Paper claims: errors stay below ~0.6% in most cases — lower than uniform
// sampling at the same budget (sampling without replacement has less
// variance, and the per-core correction uses the exact t_d) — with V1r
// again the outlier.
//
// Scale note: as for Table 3, the achievable error floor is set by the
// absolute triangle count; see the theory columns.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "graph/reference_tc.hpp"
#include "tc/host.hpp"

namespace {

/// First-order relative std of a TRIEST-style estimate at keep ratio ~p per
/// core (sub-Bernoulli variance; treated as DOULION at p for an upper
/// bound).
double theory_error(double triangles, double p) {
  if (triangles <= 0.0) return 1.0;
  return std::sqrt((1.0 / (p * p * p) - 1.0) / triangles);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pimtc;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Table 4: relative error vs reservoir capacity fraction p",
      "errors stay very low (<~0.6% typical at published scale); V1r is "
      "the outlier",
      opt);

  std::vector<double> ps = {0.5, 0.25, 0.1, 0.01};
  if (opt.quick) ps = {0.5, 0.1};

  std::printf("%-14s", "graph");
  for (const double p : ps) std::printf("  %15.2f", p);
  std::printf("  %14s\n", "paper@0.01");
  std::printf("%-14s", "");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::printf("  %15s", "meas / theory");
  }
  std::printf("  %14s\n", "theory");

  bool measured_tracks_theory = true;
  bool paper_scale_claim = true;

  for (const auto g : graph::kAllPaperGraphs) {
    const graph::EdgeList list = bench::load_graph(g, opt);
    const auto& info = graph::paper_graph_info(g);
    const auto truth =
        static_cast<double>(graph::reference_triangle_count(list));
    const double expected_max =
        6.0 * static_cast<double>(list.num_edges()) /
        (static_cast<double>(opt.colors) * opt.colors);

    std::printf("%-14s", info.name.data());
    for (const double p : ps) {
      // Median over three seeds: a single draw sits 1-3 std from truth.
      std::vector<double> errs;
      for (std::uint64_t s = 0; s < 3; ++s) {
        tc::TcConfig cfg;
        cfg.num_colors = opt.colors;
        cfg.sample_capacity_edges =
            static_cast<std::uint64_t>(std::max(8.0, expected_max * p));
        cfg.seed = derive_seed(opt.seed,
                               static_cast<std::uint64_t>(p * 1e4) + s);
        tc::PimTriangleCounter counter(cfg);
        const tc::TcResult r = counter.count(list);
        errs.push_back(relative_error(r.estimate, truth));
      }
      std::sort(errs.begin(), errs.end());
      const double err = errs[1];
      // theory_error assumes independent triangle survival; triangles that
      // share hub edges survive together, so hub-heavy graphs can exceed
      // the 1-sigma prediction — hence the 4x acceptance band below.
      const double theory = theory_error(truth, p);
      std::printf("  %6.2f%% /%6.2f%%", err * 100.0, theory * 100.0);

      if (g != graph::PaperGraph::kV1r &&
          err > std::max(4.0 * theory, 0.025)) {
        measured_tracks_theory = false;
      }
    }
    const double paper_theory =
        theory_error(static_cast<double>(info.paper_triangles), 0.01);
    std::printf("  %13.2f%%\n", paper_theory * 100.0);
    if (g != graph::PaperGraph::kV1r && paper_theory > 0.06) {
      paper_scale_claim = false;
    }
  }

  std::printf("\nShape check: measured error within 4x of estimator theory "
              "at this scale: %s; theory at published triangle counts "
              "is in the paper's small-error regime (paper: <=1%%): %s\n",
              measured_tracks_theory ? "HOLDS" : "VIOLATED",
              paper_scale_claim ? "HOLDS" : "VIOLATED");
  return 0;
}
