// Wall-clock scaling bench for the exact CPU backends: `cpu` (the paper's
// Section 4.1 oracle) vs `cpu-fast` (parallel DODG + SIMD bitmap/gallop
// kernel) over a threads x graph-size grid on the hub-heavy BA+hubs graph
// (the bench_kernel_instr / fig4 part-2 recipe).
//
// Per (size, backend, threads) cell: structure-build and count-phase
// wall-clock (min over --repeat interleaved runs, so a noisy neighbour
// inflates both backends equally), counted edges/s, and cpu-fast's speedup
// over cpu at the same thread count.  The headline and exit gate is the
// single-thread count-phase speedup on the largest size: cpu-fast must be
// >= 2.5x (the tracked local figure is ~4x; the gate is deliberately
// looser so shared-runner noise does not flap CI).  Estimates must be
// bit-identical everywhere.
//
// With --json the run emits one JSON object (BENCH_cpu.json in the CI
// bench-smoke job) seeding the exact-CPU perf trajectory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"

namespace {

using namespace pimtc;

struct Options {
  double scale = 0.5;
  std::uint64_t seed = 42;
  std::vector<std::uint32_t> threads = {1, 2, 4, 8};
  int repeat = 3;
  bool json = false;
  bool quick = false;
};

std::vector<std::uint32_t> parse_threads(const char* list) {
  std::vector<std::uint32_t> out;
  const char* p = list;
  while (*p != '\0') {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p || v <= 0 || v > 1024) {
      std::fprintf(stderr, "bad --threads list '%s' (want e.g. 1,2,4)\n", list);
      std::exit(2);
    }
    out.push_back(static_cast<std::uint32_t>(v));
    p = *end == ',' ? end + 1 : end;
  }
  if (out.empty()) {
    std::fprintf(stderr, "--threads list is empty\n");
    std::exit(2);
  }
  return out;
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opt.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opt.threads = parse_threads(arg + 10);
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      opt.repeat = std::max(1, std::atoi(arg + 9));
    } else if (std::strcmp(arg, "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
      opt.scale = std::min(opt.scale, 0.1);
      opt.repeat = std::min(opt.repeat, 2);
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (supported: --scale= --seed= "
                   "--threads=1,2,4 --repeat= --quick --json)\n",
                   arg);
      std::exit(2);
    }
  }
  return opt;
}

/// The hub-heavy BA+hubs stand-in (same recipe as bench_kernel_instr): BA
/// tail, three mega-hubs, permuted ids so hubs land at adversarial spots.
graph::EdgeList make_graph(double scale, std::uint64_t seed) {
  graph::EdgeList g = graph::gen::barabasi_albert(
      static_cast<NodeId>(20000 * scale) + 2000, 5, seed + 1);
  graph::gen::add_hubs(g, 3, g.num_nodes() / 4, seed + 2);
  graph::gen::permute_ids(g, seed + 4);
  graph::preprocess(g, seed + 3);
  return g;
}

struct Cell {
  const char* backend;
  std::uint32_t threads;
  double build_s = 1e300;  ///< min structure-build (CSR / DODG) seconds
  double count_s = 1e300;  ///< min counting-kernel seconds
  double estimate = 0.0;
};

/// One fresh-engine run; folds the minima into `cell`.
void run_once(const graph::EdgeList& g, Cell& cell, std::uint64_t seed) {
  engine::EngineConfig cfg;
  cfg.seed = seed;
  cfg.host_threads = cell.threads;
  const engine::CountReport r =
      engine::make_engine(cell.backend, cfg)->count(g);
  cell.build_s = std::min(cell.build_s, r.times.ingest_s);
  cell.count_s = std::min(cell.count_s, r.times.count_s);
  cell.estimate = r.estimate;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  // Size grid: quarter scale and full scale (quick keeps only the full
  // --quick-clamped size, which is already small).
  std::vector<double> sizes;
  if (!opt.quick && opt.scale > 0.05) sizes.push_back(opt.scale * 0.25);
  sizes.push_back(opt.scale);

  struct SizeRun {
    double scale;
    std::size_t edges;
    NodeId nodes;
    std::vector<Cell> cells;  // cpu/cpu-fast alternating per thread count
  };
  std::vector<SizeRun> runs;

  for (const double scale : sizes) {
    const graph::EdgeList g = make_graph(scale, opt.seed);
    SizeRun run{scale, g.num_edges(), g.num_nodes(), {}};
    for (const std::uint32_t t : opt.threads) {
      run.cells.push_back({"cpu", t});
      run.cells.push_back({"cpu-fast", t});
    }
    // Interleave repeats across every cell so transient machine noise is
    // spread evenly instead of landing on whichever backend ran last.
    for (int rep = 0; rep < opt.repeat; ++rep) {
      for (Cell& cell : run.cells) run_once(g, cell, opt.seed);
    }
    runs.push_back(std::move(run));
  }

  bool estimates_identical = true;
  for (const SizeRun& run : runs) {
    for (const Cell& cell : run.cells) {
      estimates_identical &= cell.estimate == run.cells[0].estimate;
    }
  }

  // Headline: single-thread count-phase speedup on the largest size.
  const SizeRun& big = runs.back();
  double headline = 0.0;
  for (std::size_t i = 0; i + 1 < big.cells.size(); i += 2) {
    if (big.cells[i].threads == 1 && big.cells[i + 1].count_s > 0.0) {
      headline = big.cells[i].count_s / big.cells[i + 1].count_s;
    }
  }
  const double gate = 2.5;
  const bool pass = estimates_identical && (headline == 0.0 || headline >= gate);

  if (opt.json) {
    std::printf("{\"bench\":\"cpu_scaling\",\"seed\":%llu,\"repeat\":%d,"
                "\"sizes\":[",
                static_cast<unsigned long long>(opt.seed), opt.repeat);
    for (std::size_t s = 0; s < runs.size(); ++s) {
      const SizeRun& run = runs[s];
      std::printf("%s{\"scale\":%.3g,\"edges\":%zu,\"nodes\":%u,\"cells\":[",
                  s == 0 ? "" : ",", run.scale, run.edges, run.nodes);
      for (std::size_t i = 0; i < run.cells.size(); ++i) {
        const Cell& c = run.cells[i];
        std::printf("%s{\"backend\":\"%s\",\"threads\":%u,\"build_s\":%.9g,"
                    "\"count_s\":%.9g,\"edges_per_s\":%.6g,\"estimate\":%.17g}",
                    i == 0 ? "" : ",", c.backend, c.threads, c.build_s,
                    c.count_s,
                    c.count_s > 0.0 ? static_cast<double>(run.edges) / c.count_s
                                    : 0.0,
                    c.estimate);
      }
      std::printf("]}");
    }
    std::printf("],\"single_thread_count_speedup\":%.4g,"
                "\"estimates_identical\":%s}\n",
                headline, estimates_identical ? "true" : "false");
    return pass ? 0 : 1;
  }

  std::printf("==============================================================\n");
  std::printf("Exact CPU backend scaling on the hub-heavy BA+hubs graph\n");
  std::printf("(scale=%.2f seed=%llu repeat=%d, min over interleaved runs)\n",
              opt.scale, static_cast<unsigned long long>(opt.seed), opt.repeat);
  std::printf("==============================================================\n");
  for (const SizeRun& run : runs) {
    std::printf("\n-- %zu edges / %u nodes (scale %.3g) --\n", run.edges,
                run.nodes, run.scale);
    std::printf("  %-9s %8s %10s %10s %10s %12s %9s\n", "backend", "threads",
                "build(ms)", "count(ms)", "total(ms)", "edges/s", "vs cpu");
    for (std::size_t i = 0; i < run.cells.size(); ++i) {
      const Cell& c = run.cells[i];
      const double eps =
          c.count_s > 0.0 ? static_cast<double>(run.edges) / c.count_s : 0.0;
      // Odd cells are cpu-fast; the even cell before them is cpu at the
      // same thread count.
      const double speedup =
          i % 2 == 1 && c.count_s > 0.0 ? run.cells[i - 1].count_s / c.count_s
                                        : 1.0;
      std::printf("  %-9s %8u %10.2f %10.2f %10.2f %12.3g %8.2fx\n", c.backend,
                  c.threads, c.build_s * 1e3, c.count_s * 1e3,
                  (c.build_s + c.count_s) * 1e3, eps, speedup);
    }
  }

  std::printf("\nShape check: estimates bit-identical across every cell: %s; "
              "single-thread cpu-fast count-phase speedup %.2fx (gate %.1fx): "
              "%s\n",
              estimates_identical ? "HOLDS" : "VIOLATED", headline, gate,
              headline == 0.0 || headline >= gate ? "HOLDS" : "VIOLATED");
  return pass ? 0 : 1;
}
