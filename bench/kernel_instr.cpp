// Kernel-instruction baseline for the adaptive intersection engine on the
// fig4 hub-heavy BA+hubs graph (the same recipe as bench_fig4 part 2).
//
// Measures the static counting kernel under forced merge (the paper's
// Section 3.4 linear intersection), forced gallop, adaptive auto, and auto
// with the degree-ordered remap, plus an incremental-update scenario —
// reporting kernel instructions, modeled count_s and the merge/gallop
// tally for each.  The shape check is this PR's acceptance bar: auto must
// cut static kernel instructions >= 1.5x vs merge at default params, with
// bit-identical estimates everywhere.
//
// With --json the run emits a single JSON object (BENCH_kernel.json in the
// CI bench-smoke job) seeding the kernel perf trajectory future PRs diff
// against.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "tc/host.hpp"
#include "tc/intersect.hpp"

namespace {

using namespace pimtc;

struct Options {
  double scale = 0.5;
  std::uint64_t seed = 42;
  bool json = false;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opt.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.scale = std::min(opt.scale, 0.1);
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' "
                   "(supported: --scale= --seed= --quick --json)\n",
                   arg);
      std::exit(2);
    }
  }
  return opt;
}

struct Sample {
  const char* name;
  double estimate = 0.0;
  std::uint64_t instructions = 0;        ///< whole kernel (copy+sort+count)
  std::uint64_t count_instructions = 0;  ///< counting phase alone
  double count_s = 0.0;
  tc::IntersectTally tally;
};

Sample run_static(const char* name, const graph::EdgeList& g,
                  tc::IntersectPolicy policy, bool degree_remap,
                  bool region_cache, std::uint64_t seed) {
  tc::TcConfig cfg;
  cfg.seed = seed;
  cfg.intersect = policy;
  cfg.region_cache = region_cache;
  cfg.misra_gries_enabled = degree_remap;
  cfg.degree_ordered_remap = degree_remap;
  tc::PimTriangleCounter counter(cfg);
  const tc::TcResult r = counter.count(g);
  return {name,          r.estimate,      r.kernel_instructions,
          r.count_instructions, r.times.count_s, r.kernel};
}

void print_sample_json(const Sample& s, bool first) {
  std::printf(
      "%s\"%s\":{\"estimate\":%.17g,\"kernel_instructions\":%llu,"
      "\"count_instructions\":%llu,"
      "\"count_s\":%.9g,\"merge_isects\":%llu,\"gallop_isects\":%llu,"
      "\"merge_picks\":%llu,\"gallop_probes\":%llu,\"chunks_claimed\":%llu}",
      first ? "" : ",", s.name, s.estimate,
      static_cast<unsigned long long>(s.instructions),
      static_cast<unsigned long long>(s.count_instructions), s.count_s,
      static_cast<unsigned long long>(s.tally.merge_isects),
      static_cast<unsigned long long>(s.tally.gallop_isects),
      static_cast<unsigned long long>(s.tally.merge_picks),
      static_cast<unsigned long long>(s.tally.gallop_probes),
      static_cast<unsigned long long>(s.tally.chunks_claimed));
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  // The fig4 part-2 hub-heavy graph: BA tail + three mega-hubs.  Node ids
  // are permuted because the generators park hubs at structurally
  // convenient positions (add_hubs: top ids, where canonical orientation
  // neutralizes them for free); real datasets do not, and the intersection
  // cost profile depends on where hubs sort.
  graph::EdgeList g = graph::gen::barabasi_albert(
      static_cast<NodeId>(20000 * opt.scale) + 2000, 5, opt.seed + 1);
  graph::gen::add_hubs(g, 3, g.num_nodes() / 4, opt.seed + 2);
  graph::gen::permute_ids(g, opt.seed + 4);
  graph::preprocess(g, opt.seed + 3);

  std::vector<Sample> statics;
  // "legacy" reproduces the pre-engine static path: pure linear merge with
  // uncached full-table region searches — the acceptance baseline.
  statics.push_back(run_static("legacy_merge_nocache", g,
                               tc::IntersectPolicy::kMerge, false, false,
                               opt.seed));
  statics.push_back(run_static("merge", g, tc::IntersectPolicy::kMerge, false,
                               true, opt.seed));
  statics.push_back(run_static("auto", g, tc::IntersectPolicy::kAuto, false,
                               true, opt.seed));
  statics.push_back(run_static("gallop", g, tc::IntersectPolicy::kGallop,
                               false, true, opt.seed));
  statics.push_back(run_static("auto_degree_remap", g,
                               tc::IntersectPolicy::kAuto, true, true,
                               opt.seed));

  // Incremental scenario (auto policy): 60% first count, then four 10%
  // batches, each recounted through the persistent sorted arcs.
  Sample inc{"incremental_updates"};
  Sample inc_full{"incremental_first_count"};
  {
    tc::TcConfig cfg;
    cfg.seed = opt.seed;
    cfg.incremental = true;
    tc::PimTriangleCounter counter(cfg);
    const auto edges = g.edges();
    const std::size_t first = edges.size() * 6 / 10;
    counter.add_edges(edges.subspan(0, first));
    tc::TcResult r = counter.recount();
    inc_full.estimate = r.estimate;
    inc_full.instructions = r.kernel_instructions;
    inc_full.count_instructions = r.count_instructions;
    inc_full.count_s = r.times.count_s;
    inc_full.tally = r.kernel;
    double prev_count_s = r.times.count_s;
    std::size_t done = first;
    for (int b = 0; b < 4; ++b) {
      const std::size_t hi =
          b == 3 ? edges.size() : done + edges.size() / 10;
      counter.add_edges(edges.subspan(done, hi - done));
      r = counter.recount();
      inc.instructions += r.kernel_instructions;
      inc.count_instructions += r.count_instructions;
      inc.count_s += r.times.count_s - prev_count_s;
      inc.tally += r.kernel;
      prev_count_s = r.times.count_s;
      done = hi;
    }
    inc.estimate = r.estimate;
  }

  bool estimates_identical = true;
  for (const Sample& s : statics) {
    estimates_identical &= s.estimate == statics[0].estimate;
  }
  estimates_identical &= inc.estimate == statics[0].estimate;
  // Acceptance metric: static counting-phase instructions, legacy path
  // (merge + uncached searches) vs the adaptive default (copy/sort/index
  // are identical across variants and would only dilute the ratio).
  const Sample& legacy = statics[0];
  const Sample& adaptive = statics[2];
  const double reduction =
      adaptive.count_instructions > 0
          ? static_cast<double>(legacy.count_instructions) /
                static_cast<double>(adaptive.count_instructions)
          : 0.0;

  if (opt.json) {
    std::printf("{\"graph\":{\"edges\":%zu,\"nodes\":%u,\"scale\":%.3g,"
                "\"seed\":%llu},\"static\":{",
                g.num_edges(), g.num_nodes(), opt.scale,
                static_cast<unsigned long long>(opt.seed));
    for (std::size_t i = 0; i < statics.size(); ++i) {
      print_sample_json(statics[i], i == 0);
    }
    std::printf("},\"incremental\":{");
    print_sample_json(inc_full, true);
    print_sample_json(inc, false);
    std::printf("},\"static_count_instr_reduction_auto_vs_legacy\":%.4g,"
                "\"estimates_identical\":%s}\n",
                reduction, estimates_identical ? "true" : "false");
    return estimates_identical && reduction >= 1.5 ? 0 : 1;
  }

  std::printf("==============================================================\n");
  std::printf("Kernel-instruction baseline on the hub-heavy BA+hubs graph\n");
  std::printf("(%zu edges / %u nodes, scale=%.2f seed=%llu)\n", g.num_edges(),
              g.num_nodes(), opt.scale,
              static_cast<unsigned long long>(opt.seed));
  std::printf("==============================================================\n");
  std::printf("  %-22s %12s %14s %10s %9s %9s %12s %12s\n", "variant",
              "count instr", "kernel instr", "count(ms)", "merge", "gallop",
              "picks", "probes");
  const auto row = [](const Sample& s) {
    std::printf("  %-22s %12llu %14llu %10.2f %9llu %9llu %12llu %12llu\n",
                s.name,
                static_cast<unsigned long long>(s.count_instructions),
                static_cast<unsigned long long>(s.instructions),
                s.count_s * 1e3,
                static_cast<unsigned long long>(s.tally.merge_isects),
                static_cast<unsigned long long>(s.tally.gallop_isects),
                static_cast<unsigned long long>(s.tally.merge_picks),
                static_cast<unsigned long long>(s.tally.gallop_probes));
  };
  for (const Sample& s : statics) row(s);
  row(inc_full);
  row(inc);

  std::printf("\nShape check: adaptive auto cuts static counting-phase "
              "instructions >= 1.5x vs the legacy merge+uncached path: %s "
              "(%.2fx); estimates bit-identical across all variants: %s\n",
              reduction >= 1.5 ? "HOLDS" : "VIOLATED", reduction,
              estimates_identical ? "HOLDS" : "VIOLATED");
  return estimates_identical && reduction >= 1.5 ? 0 : 1;
}
