// Regenerates Figure 6: speedup of the PIM and GPU implementations over the
// CPU baseline when counting exact triangles on *static* graphs, measured
// from the moment the graph is in memory (the CPU's COO->CSR conversion is
// excluded, exactly as in the paper).
//
// Method (see DESIGN.md): the stand-in graph runs at --scale; the CPU
// backend's intersection-step profile and the PIM backend's simulated count
// time are then projected linearly to the published |E| of each dataset,
// and the CPU/GPU platform models (DRAM-regime rates of a dual Xeon 4215
// and an A100) convert work to seconds.  Both backends run through the
// engine registry; the comparison glue is the same for any future backend.
//
// Paper claims: GPU > CPU > PIM on every graph except Human-Jung, where the
// PIM system wins outright (huge triangle count, low max degree).
#include <algorithm>
#include <string>

#include "bench_util.hpp"
#include "engine/platform_model.hpp"
#include "engine/registry.hpp"

int main(int argc, char** argv) {
  using namespace pimtc;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 6: PIM & GPU speedup over CPU, static exact counting",
      "GPU fastest everywhere; CPU beats PIM except on Human-Jung where "
      "PIM wins",
      opt);

  const engine::PlatformModel cpu_model = engine::xeon_4215_model();
  const engine::PlatformModel gpu_model = engine::a100_model();

  std::printf("%-14s %10s %10s %10s %10s | %9s %9s %9s  (speedup over CPU)\n",
              "graph", "CPU (s)", "CPUfast(s)", "GPU (s)", "PIM (s)", "GPU x",
              "PIM x", "CPUfast x");

  bool gpu_always_fastest = true;
  bool pim_wins_hj = false;
  bool pim_loses_skewed = true;
  bool fast_matches_cpu = true;
  bool fast_never_slower = true;

  for (const auto g : graph::kAllPaperGraphs) {
    const graph::EdgeList list = bench::load_graph(g, opt);
    const auto& info = graph::paper_graph_info(g);
    const double ratio = static_cast<double>(info.paper_edges) /
                         static_cast<double>(list.num_edges());

    // CPU work profile at our scale, projected to paper |E|.
    const engine::CountReport cpu = engine::make_engine("cpu")->count(list);
    const double steps_paper =
        static_cast<double>(cpu.work.intersection_steps) * ratio;
    const double cpu_s =
        cpu_model.fixed_overhead_s + steps_paper / cpu_model.steps_per_s;
    const double gpu_s =
        gpu_model.fixed_overhead_s + steps_paper / gpu_model.steps_per_s;

    // cpu-fast: same projection through the same platform model, applied to
    // its own (much smaller) intersection-op profile — the column isolates
    // the algorithmic work reduction of the DODG + bitmap-probe kernel from
    // raw wall-clock (which bench_cpu_scaling measures directly).
    const engine::CountReport fast = engine::make_engine("cpu-fast")->count(list);
    const double fast_steps_paper =
        static_cast<double>(fast.work.intersection_steps) * ratio;
    const double fast_s =
        cpu_model.fixed_overhead_s + fast_steps_paper / cpu_model.steps_per_s;
    if (fast.estimate != cpu.estimate) fast_matches_cpu = false;

    // PIM: best of MG-off and MG-on (the paper uses each graph's best MG
    // parameters in the cross-platform comparison).
    double pim_count_s = 1e300;
    for (const bool mg : {false, true}) {
      engine::EngineConfig cfg;
      cfg.num_colors = opt.colors;
      cfg.seed = opt.seed;
      cfg.misra_gries_enabled = mg;
      cfg.mg_capacity = 1024;
      cfg.mg_top = 32;
      const engine::CountReport r = engine::make_engine("pim", cfg)->count(list);
      pim_count_s = std::min(pim_count_s, r.times.count_s);
    }
    const double pim_s = pim_count_s * ratio;

    const double gpu_speedup = cpu_s / gpu_s;
    const double pim_speedup = cpu_s / pim_s;
    const double fast_speedup = cpu_s / fast_s;
    std::printf("%-14s %10.2f %10.2f %10.2f %10.2f | %9.2f %9.2f %9.2f\n",
                std::string(info.name).c_str(), cpu_s, fast_s, gpu_s, pim_s,
                gpu_speedup, pim_speedup, fast_speedup);
    if (fast_speedup < 1.0) fast_never_slower = false;

    if (gpu_speedup <= 1.0) gpu_always_fastest = false;
    if (g == graph::PaperGraph::kHumanJung && pim_speedup > 1.0) {
      pim_wins_hj = true;
    }
    // Graphs whose degree structure survives the scale-down: the paper's
    // "PIM loses" rows that we can reproduce.  Orkut and Kron24 carry
    // max/avg degree ratios that are unrepresentable at reduced |E| (the
    // ratio is bounded by the node count), which removes the hub pain that
    // defeats PIM at paper scale — annotated, not checked.
    const bool skew_preserved = g == graph::PaperGraph::kV1r ||
                                g == graph::PaperGraph::kLiveJournal ||
                                g == graph::PaperGraph::kKronecker23 ||
                                g == graph::PaperGraph::kWikipediaEdit;
    if (skew_preserved && pim_speedup >= 1.0) pim_loses_skewed = false;
  }

  std::printf("\nShape check: GPU fastest on every graph: %s; PIM wins on "
              "Human-Jung: %s; CPU beats PIM on the structure-preserving "
              "graphs (V1r, LiveJournal, Kron23, WikipediaEdit): %s\n"
              "Note: Orkut/Kron24 hub ratios are not representable at this "
              "scale, so their rows sit nearer parity than in the paper "
              "(EXPERIMENTS.md).\n",
              gpu_always_fastest ? "HOLDS" : "VIOLATED",
              pim_wins_hj ? "HOLDS" : "VIOLATED",
              pim_loses_skewed ? "HOLDS" : "VIOLATED");
  std::printf("cpu-fast: estimates bit-identical to cpu on every graph: %s; "
              "modeled time never above cpu: %s\n",
              fast_matches_cpu ? "HOLDS" : "VIOLATED",
              fast_never_slower ? "HOLDS" : "VIOLATED");
  return fast_matches_cpu ? 0 : 1;
}
