// Regenerates Figure 3: PIM counting throughput (edges per millisecond) per
// graph, graphs ordered by maximum node degree (lowest first), Misra-Gries
// OFF.
//
// Paper claim: the first four graphs (max degree in the tens of thousands —
// here: the scaled equivalents) sustain far higher throughput than the last
// three (max degree in the hundreds of thousands or millions), because the
// edge-iterator's merge work explodes with hub size.
#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "graph/stats.hpp"
#include "tc/host.hpp"

int main(int argc, char** argv) {
  using namespace pimtc;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 3: throughput (edges/ms) vs graph, ordered by max degree",
      "low-max-degree graphs sustain much higher throughput than "
      "hub-heavy ones (Misra-Gries disabled)",
      opt);

  struct Row {
    std::string name;
    std::uint64_t max_degree;
    std::size_t edges;
    double ingest_ms;
    double count_ms;
    double throughput;
    double wire_pad;   // wire/payload of the rank-parallel pushes
    double imbalance;  // max/mean per-core load (count gated by the max)
  };
  std::vector<Row> rows;

  for (const auto g : graph::kAllPaperGraphs) {
    const graph::EdgeList list = bench::load_graph(g, opt);
    const graph::DegreeStats deg = graph::degree_stats(list);

    tc::TcConfig cfg;
    cfg.num_colors = opt.colors;
    cfg.seed = opt.seed;
    tc::PimTriangleCounter counter(cfg);
    const tc::TcResult r = counter.count(list);

    Row row;
    row.name = graph::paper_graph_info(g).name;
    row.max_degree = deg.max_degree;
    row.edges = list.num_edges();
    row.ingest_ms = r.times.sample_creation_s * 1e3;
    row.count_ms = r.times.count_s * 1e3;
    row.throughput = static_cast<double>(list.num_edges()) / row.count_ms;
    row.wire_pad = r.transfers.push_padding();
    row.imbalance = r.load_imbalance;
    rows.push_back(row);
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.max_degree < b.max_degree;
  });

  std::printf("%-14s %10s %10s %12s %12s %14s %8s %10s\n", "graph", "maxdeg",
              "|E|", "ingest (ms)", "count (ms)", "edges/ms", "pad x",
              "imbalance");
  for (const Row& row : rows) {
    std::printf("%-14s %10llu %10zu %12.2f %12.2f %14.1f %8.2f %9.2fx\n",
                row.name.c_str(),
                static_cast<unsigned long long>(row.max_degree), row.edges,
                row.ingest_ms, row.count_ms, row.throughput, row.wire_pad,
                row.imbalance);
  }

  // Shape: (a) throughput is (near-)monotone decreasing in max degree;
  // (b) the low-max-degree group clearly outruns the hub-heavy group.  The
  // paper's gap is ~10x because its absolute hub sizes are 400x ours; the
  // per-DPU hub-region walk that causes it grows linearly with |E| at fixed
  // core count, so the gap magnitude is scale-dependent while the ordering
  // is not (see EXPERIMENTS.md).
  double low = 0.0;
  double high = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    (i < 4 ? low : high) += rows[i].throughput;
  }
  low /= 4.0;
  high /= 3.0;
  int inversions = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].throughput > rows[i - 1].throughput * 1.10) ++inversions;
  }
  std::printf("\nShape check: throughput ordering follows max degree "
              "(%d/6 inversions > 10%%): %s; low-degree group %.1f vs "
              "hub-heavy %.1f edges/ms (%.2fx gap, grows with scale): %s\n",
              inversions, inversions <= 1 ? "HOLDS" : "VIOLATED", low, high,
              low / high, low > 1.3 * high ? "HOLDS" : "WEAK");
  return 0;
}
