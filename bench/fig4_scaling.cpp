// Regenerates Figure 4: execution time and speedup when scaling the number
// of PIM cores via the color count C (#cores = binom(C+2, 3)).
//
// Paper claims: (a) counting time drops as cores are added for the large
// graphs; (b) the smallest graph (LiveJournal) eventually *regresses*
// because allocation and transfer overheads outgrow the shrinking kernel
// time.  Times include all three phases, as in the paper's Figure 4.
#include <vector>

#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "tc/host.hpp"

int main(int argc, char** argv) {
  using namespace pimtc;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 4: time & speedup vs number of PIM cores (colors swept)",
      "more cores help big graphs; the smallest graph regresses at high "
      "core counts (overhead-bound)",
      opt);

  const graph::PaperGraph graphs[] = {
      graph::PaperGraph::kKronecker23, graph::PaperGraph::kLiveJournal,
      graph::PaperGraph::kOrkut, graph::PaperGraph::kWikipediaEdit};
  std::vector<std::uint32_t> colors = {4, 8, 13, 18, 23};
  if (opt.quick) colors = {4, 13, 23};

  bool livejournal_regresses = false;
  bool kron_scales = false;

  for (const auto g : graphs) {
    const graph::EdgeList list = bench::load_graph(g, opt);
    std::printf("\n%s (%zu edges)\n", graph::paper_graph_info(g).name.data(),
                list.num_edges());
    std::printf("  %7s %7s | %9s %10s %10s %10s | %8s\n", "colors", "cores",
                "setup(ms)", "sample(ms)", "count(ms)", "total(ms)",
                "speedup");

    double baseline_total = 0.0;
    double best_total = 1e300;
    double last_total = 0.0;
    for (const std::uint32_t c : colors) {
      tc::TcConfig cfg;
      cfg.num_colors = c;
      cfg.seed = opt.seed;
      tc::PimTriangleCounter counter(cfg);
      const tc::TcResult r = counter.count(list);
      const double total = r.times.total_s() * 1e3;
      if (baseline_total == 0.0) baseline_total = total;
      best_total = std::min(best_total, total);
      last_total = total;

      std::printf("  %7u %7llu | %9.2f %10.2f %10.2f %10.2f | %7.2fx\n", c,
                  static_cast<unsigned long long>(num_triplets(c)),
                  r.times.setup_s * 1e3, r.times.sample_creation_s * 1e3,
                  r.times.count_s * 1e3, total, baseline_total / total);
    }
    if (g == graph::PaperGraph::kLiveJournal &&
        last_total > best_total * 1.05) {
      livejournal_regresses = true;
    }
    if (g == graph::PaperGraph::kKronecker23 &&
        last_total < baseline_total / 1.5) {
      kron_scales = true;
    }
  }

  std::printf("\nShape check: Kronecker keeps speeding up with more cores: "
              "%s;  LiveJournal regresses past its sweet spot: %s\n",
              kron_scales ? "HOLDS" : "WEAK",
              livejournal_regresses ? "HOLDS" : "WEAK");
  return 0;
}
