// Regenerates Figure 4: execution time and speedup when scaling the number
// of PIM cores via the color count C (#cores = binom(C+2, 3)).
//
// Paper claims: (a) counting time drops as cores are added for the large
// graphs; (b) the smallest graph (LiveJournal) eventually *regresses*
// because allocation and transfer overheads outgrow the shrinking kernel
// time.  Times include all three phases, as in the paper's Figure 4.
//
// Part 2 goes beyond the paper: the partition-planner study.  C is derived
// by the auto-selector from a swept machine budget, and each placement
// policy runs on a hub-heavy barabasi_albert + add_hubs graph, reporting
// per-policy load_imbalance and scatter padding.  Expected shape: the
// load-aware policies shrink the wire/payload pad and the count phase
// (heavy cores boot first, hiding rank launch skew) vs identity, while the
// estimate is bit-identical across all three.
#include <vector>

#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "graph/generators.hpp"
#include "tc/host.hpp"

int main(int argc, char** argv) {
  using namespace pimtc;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 4: time & speedup vs number of PIM cores (colors swept)",
      "more cores help big graphs; the smallest graph regresses at high "
      "core counts (overhead-bound)",
      opt);

  const graph::PaperGraph graphs[] = {
      graph::PaperGraph::kKronecker23, graph::PaperGraph::kLiveJournal,
      graph::PaperGraph::kOrkut, graph::PaperGraph::kWikipediaEdit};
  std::vector<std::uint32_t> colors = {4, 8, 13, 18, 23};
  if (opt.quick) colors = {4, 13, 23};

  bool livejournal_regresses = false;
  bool kron_scales = false;

  for (const auto g : graphs) {
    const graph::EdgeList list = bench::load_graph(g, opt);
    std::printf("\n%s (%zu edges)\n", graph::paper_graph_info(g).name.data(),
                list.num_edges());
    std::printf("  %7s %7s | %9s %10s %10s %10s | %8s\n", "colors", "cores",
                "setup(ms)", "sample(ms)", "count(ms)", "total(ms)",
                "speedup");

    double baseline_total = 0.0;
    double best_total = 1e300;
    double last_total = 0.0;
    for (const std::uint32_t c : colors) {
      tc::TcConfig cfg;
      cfg.num_colors = c;
      cfg.seed = opt.seed;
      tc::PimTriangleCounter counter(cfg);
      const tc::TcResult r = counter.count(list);
      const double total = r.times.total_s() * 1e3;
      if (baseline_total == 0.0) baseline_total = total;
      best_total = std::min(best_total, total);
      last_total = total;

      std::printf("  %7u %7llu | %9.2f %10.2f %10.2f %10.2f | %7.2fx\n", c,
                  static_cast<unsigned long long>(num_triplets(c)),
                  r.times.setup_s * 1e3, r.times.sample_creation_s * 1e3,
                  r.times.count_s * 1e3, total, baseline_total / total);
    }
    if (g == graph::PaperGraph::kLiveJournal &&
        last_total > best_total * 1.05) {
      livejournal_regresses = true;
    }
    if (g == graph::PaperGraph::kKronecker23 &&
        last_total < baseline_total / 1.5) {
      kron_scales = true;
    }
  }

  std::printf("\nShape check: Kronecker keeps speeding up with more cores: "
              "%s;  LiveJournal regresses past its sweet spot: %s\n",
              kron_scales ? "HOLDS" : "WEAK",
              livejournal_regresses ? "HOLDS" : "WEAK");

  // ---- Part 2: partition planner (auto colors x placement policy) ----------
  graph::EdgeList hubby = graph::gen::barabasi_albert(
      static_cast<NodeId>(20000 * opt.scale) + 2000, 5, opt.seed + 1);
  graph::gen::add_hubs(hubby, 3, hubby.num_nodes() / 4, opt.seed + 2);
  graph::preprocess(hubby, opt.seed + 3);
  std::printf("\nPartition planner on hub-heavy BA graph (%zu edges, "
              "C auto-selected per machine budget, 8 DPUs/rank):\n",
              hubby.num_edges());
  std::printf("  %7s %3s %5s %5s %10s %10s %10s %6s %9s  %s\n", "maxdpus",
              "C", "cores", "util", "ingest(ms)", "count(ms)", "total(ms)",
              "pad x", "imbalance", "placement");

  const color::PlacementPolicy policies[] = {
      color::PlacementPolicy::kIdentity,
      color::PlacementPolicy::kKindInterleave,
      color::PlacementPolicy::kGreedyBalance};
  std::vector<std::uint32_t> budgets = {56, 120, 220};
  if (opt.quick) budgets = {120};

  bool pad_shrinks = true;
  bool count_shrinks = true;
  bool estimates_identical = true;
  for (const std::uint32_t budget : budgets) {
    double identity_pad = 0.0;
    double identity_count = 0.0;
    double identity_estimate = 0.0;
    for (const auto policy : policies) {
      pim::PimSystemConfig machine;
      machine.mram_bytes = 8ull << 20;
      machine.dpus_per_rank = 8;
      machine.max_dpus = budget;
      tc::TcConfig cfg;
      cfg.num_colors = 0;  // auto: fill the budget
      cfg.placement = policy;
      cfg.seed = opt.seed;
      tc::PimTriangleCounter counter(cfg, machine);
      const tc::TcResult r = counter.count(hubby);
      const double pad = r.transfers.push_padding();
      if (policy == color::PlacementPolicy::kIdentity) {
        identity_pad = pad;
        identity_count = r.times.count_s;
        identity_estimate = r.estimate;
      } else {
        if (policy == color::PlacementPolicy::kGreedyBalance) {
          pad_shrinks &= pad < identity_pad;
          count_shrinks &= r.times.count_s <= identity_count;
        }
        estimates_identical &= r.estimate == identity_estimate;
      }
      std::printf("  %7u %3u %5u %4.0f%% %10.2f %10.2f %10.2f %6.2f %8.2fx"
                  "  %s\n",
                  budget, r.num_colors, r.num_dpus,
                  r.dpu_utilization * 100.0,
                  r.times.sample_creation_s * 1e3, r.times.count_s * 1e3,
                  r.times.total_s() * 1e3, pad, r.load_imbalance,
                  r.placement.c_str());
    }
  }
  std::printf("\nShape check: greedy_balance shrinks scatter padding vs "
              "identity: %s; greedy_balance count time <= identity: %s; "
              "estimates bit-identical across placements: %s\n",
              pad_shrinks ? "HOLDS" : "VIOLATED",
              count_shrinks ? "HOLDS" : "WEAK",
              estimates_identical ? "HOLDS" : "VIOLATED");
  return 0;
}
