// Ablation over the DPU kernel's execution parameters: tasklet count and
// WRAM stream-buffer size.
//
// The paper fixes 16 tasklets per core (enough to saturate the 11-stage
// issue pipeline) and streams MRAM through small WRAM buffers.  This bench
// quantifies both choices on a single DPU loaded with a whole graph:
//  * tasklets: time should improve until the pipeline saturates (~11), then
//    flatten,
//  * buffer size: bigger buffers amortize the fixed DMA setup cost until the
//    per-byte term dominates.
#include <vector>

#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "pim/dpu.hpp"
#include "tc/kernel.hpp"
#include "tc/layout.hpp"

int main(int argc, char** argv) {
  using namespace pimtc;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Ablation: DPU kernel parameters (tasklets, WRAM buffer size)",
      "throughput saturates near 11 resident tasklets; small DMA buffers "
      "pay setup overhead per burst",
      opt);

  graph::EdgeList g = graph::gen::rmat(
      15, static_cast<EdgeCount>(60e3 * opt.scale * 2),
      graph::gen::RmatParams{0.45, 0.22, 0.22, 0.11}, opt.seed);
  graph::preprocess(g, opt.seed);
  std::printf("workload: R-MAT, %zu edges on ONE simulated DPU\n\n",
              g.num_edges());

  pim::PimSystemConfig sys_cfg;
  sys_cfg.mram_bytes = 16ull << 20;

  const auto run_once = [&](std::uint32_t tasklets,
                            std::uint32_t buffer_edges) {
    pim::Dpu dpu(sys_cfg, 0);
    tc::DpuMeta meta;
    meta.sample_size = g.num_edges();
    meta.edges_seen = g.num_edges();
    meta.sample_capacity = g.num_edges() + 1;
    dpu.mram().write_t(tc::MramLayout::kMetaOffset, meta);
    dpu.mram().write(tc::MramLayout::sample_offset(), g.edges().data(),
                     g.num_edges() * sizeof(Edge));
    tc::KernelParams params;
    params.tasklets = tasklets;
    params.buffer_edges = buffer_edges;
    tc::run_count_kernel(dpu, params);
    return dpu.seconds() * 1e3;
  };

  std::printf("tasklet sweep (buffer = 64 edges):\n");
  std::printf("  %9s %12s %10s\n", "tasklets", "kernel (ms)", "speedup");
  std::vector<std::uint32_t> tasklet_grid = {1, 2, 4, 8, 11, 16, 24};
  if (opt.quick) tasklet_grid = {1, 11, 16};
  double base_ms = 0.0;
  double t11 = 0.0;
  double t24 = 0.0;
  for (const std::uint32_t t : tasklet_grid) {
    const double ms = run_once(t, 64);
    if (base_ms == 0.0) base_ms = ms;
    if (t == 11) t11 = ms;
    if (t == 24) t24 = ms;
    std::printf("  %9u %12.2f %9.2fx\n", t, ms, base_ms / ms);
  }

  // Buffer sizes above ~62 edges are clamped by the kernel so that five
  // simultaneous per-tasklet buffers plus the static WRAM tables still fit
  // the 64 KB scratchpad.
  std::printf("\nbuffer-size sweep (16 tasklets):\n");
  std::printf("  %9s %12s\n", "edges/buf", "kernel (ms)");
  std::vector<std::uint32_t> buffer_grid = {4, 8, 16, 32, 48, 62};
  if (opt.quick) buffer_grid = {8, 62};
  double first = 0.0;
  double last = 0.0;
  double best = 1e300;
  for (const std::uint32_t b : buffer_grid) {
    const double ms = run_once(16, b);
    if (first == 0.0) first = ms;
    last = ms;
    best = std::min(best, ms);
    std::printf("  %9u %12.2f\n", b, ms);
  }

  // Buffer size trades per-transfer overhead amortization (hurts tiny
  // buffers) against wasted fetch beyond short regions (hurts big ones):
  // the sweet spot is interior.
  const bool interior_optimum = best < first * 0.98 && best < last * 0.98;
  std::printf("\nShape check: pipeline saturation (24 tasklets within 15%% "
              "of 11): %s; buffer size has an interior optimum: %s\n",
              (t11 == 0.0 || t24 == 0.0 || t24 > t11 * 0.85) ? "HOLDS"
                                                             : "VIOLATED",
              interior_optimum ? "HOLDS" : "WEAK");
  return 0;
}
