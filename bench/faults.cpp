// Fault-injection bench: accuracy and modeled recovery cost of the
// fault-tolerant PIM runtime over a fault-rate x recovery-policy grid on
// the fixed hub-heavy BA+hubs graph (the cpu_scaling / kernel_instr
// recipe).
//
// Per cell the same workload runs under a composite fault spec (launch
// transients, permanent DPU deaths, wire corruption, MRAM bit flips, all
// scaled by one rate knob) and one recovery policy.  Reported: the fault
// ledger, the estimate's relative error against the clean run, and the
// modeled detection + recovery seconds added to the count phase.
//
// Shape check and exit gate:
//   - every cell that fully recovered (degraded=false) must be
//     *bit-identical* to the clean run, and
//   - every degraded cell's realized error must sit inside the error bound
//     its own report advertises.
//
// With --json the run emits one JSON object (BENCH_faults.json in the CI
// bench-smoke job).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"

namespace {

using namespace pimtc;

struct Options {
  double scale = 0.5;
  std::uint64_t seed = 42;
  std::uint32_t colors = 6;
  bool json = false;
  bool quick = false;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opt.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--colors=", 9) == 0) {
      opt.colors = static_cast<std::uint32_t>(std::atoi(arg + 9));
    } else if (std::strcmp(arg, "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
      opt.scale = std::min(opt.scale, 0.1);
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (supported: --scale= --seed= "
                   "--colors= --quick --json)\n",
                   arg);
      std::exit(2);
    }
  }
  return opt;
}

graph::EdgeList make_graph(double scale, std::uint64_t seed) {
  graph::EdgeList g = graph::gen::barabasi_albert(
      static_cast<NodeId>(20000 * scale) + 2000, 5, seed + 1);
  graph::gen::add_hubs(g, 3, g.num_nodes() / 4, seed + 2);
  graph::gen::permute_ids(g, seed + 4);
  graph::preprocess(g, seed + 3);
  return g;
}

struct Cell {
  double rate;
  const char* policy;
  engine::CountReport report;
  double rel_err = 0.0;
};

std::string spec_for(double rate, const char* policy, std::uint64_t seed) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "seed=%llu,launch-transient=%.6g,launch-permanent=%.6g,"
                "corrupt=%.6g,bitflip=%.6g,recovery=%s,spares=32",
                static_cast<unsigned long long>(seed + 17), rate, rate / 2.0,
                rate / 4.0, rate, policy);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const graph::EdgeList g = make_graph(opt.scale, opt.seed);

  engine::EngineConfig cfg;
  cfg.seed = opt.seed;
  cfg.num_colors = opt.colors;
  const engine::CountReport clean = engine::make_engine("pim", cfg)->count(g);

  const std::vector<double> rates =
      opt.quick ? std::vector<double>{0.02}
                : std::vector<double>{0.005, 0.02, 0.08};
  const char* const policies[] = {"retry", "rematerialize", "degrade"};

  std::vector<Cell> cells;
  for (const double rate : rates) {
    for (const char* policy : policies) {
      engine::EngineConfig fcfg = cfg;
      fcfg.fault_spec = spec_for(rate, policy, opt.seed);
      Cell cell{rate, policy, engine::make_engine("pim", fcfg)->count(g), 0.0};
      cell.rel_err = clean.estimate > 0.0
                         ? std::abs(cell.report.estimate - clean.estimate) /
                               clean.estimate
                         : 0.0;
      cells.push_back(std::move(cell));
    }
  }

  bool recovered_identical = true;
  bool degraded_within_bound = true;
  for (const Cell& c : cells) {
    if (!c.report.faults.degraded) {
      recovered_identical &= c.report.estimate == clean.estimate;
    } else {
      degraded_within_bound &= c.rel_err <= c.report.faults.error_bound;
    }
  }
  const bool pass = recovered_identical && degraded_within_bound;

  if (opt.json) {
    std::printf("{\"bench\":\"faults\",\"seed\":%llu,\"scale\":%.3g,"
                "\"colors\":%u,\"edges\":%llu,\"nodes\":%u,"
                "\"clean_estimate\":%.17g,\"cells\":[",
                static_cast<unsigned long long>(opt.seed), opt.scale,
                opt.colors, static_cast<unsigned long long>(g.num_edges()),
                g.num_nodes(), clean.estimate);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      const auto& f = c.report.faults;
      std::printf(
          "%s{\"rate\":%.6g,\"policy\":\"%s\",\"estimate\":%.17g,"
          "\"rel_err\":%.9g,\"degraded\":%s,\"coverage\":%.9g,"
          "\"error_bound\":%.9g,\"launch_transients\":%llu,"
          "\"launch_retries\":%llu,\"dead_dpus\":%llu,"
          "\"rematerializations\":%llu,\"dropped_triplets\":%llu,"
          "\"transfer_corruptions\":%llu,\"mram_bitflips\":%llu,"
          "\"sample_restores\":%llu,\"detection_s\":%.9g,"
          "\"recovery_s\":%.9g,\"count_s\":%.9g}",
          i == 0 ? "" : ",", c.rate, c.policy, c.report.estimate, c.rel_err,
          f.degraded ? "true" : "false", f.coverage, f.error_bound,
          static_cast<unsigned long long>(f.launch_transients),
          static_cast<unsigned long long>(f.launch_retries),
          static_cast<unsigned long long>(f.dead_dpus),
          static_cast<unsigned long long>(f.rematerializations),
          static_cast<unsigned long long>(f.dropped_triplets),
          static_cast<unsigned long long>(f.transfer_corruptions),
          static_cast<unsigned long long>(f.mram_bitflips),
          static_cast<unsigned long long>(f.sample_restores), f.detection_s,
          f.recovery_s, c.report.times.count_s);
    }
    std::printf("],\"recovered_identical\":%s,\"degraded_within_bound\":%s}\n",
                recovered_identical ? "true" : "false",
                degraded_within_bound ? "true" : "false");
    return pass ? 0 : 1;
  }

  std::printf("==============================================================\n");
  std::printf("Fault injection: accuracy x recovery policy on BA+hubs\n");
  std::printf("(%llu edges, %u nodes, C=%u, clean estimate %.0f, seed %llu)\n",
              static_cast<unsigned long long>(g.num_edges()), g.num_nodes(),
              opt.colors, clean.estimate,
              static_cast<unsigned long long>(opt.seed));
  std::printf("==============================================================\n");
  std::printf("  %-7s %-14s %10s %9s %9s %6s %6s %7s %9s %9s\n", "rate",
              "policy", "rel_err", "coverage", "bound", "dead", "remat",
              "dropped", "detect_ms", "recov_ms");
  for (const Cell& c : cells) {
    const auto& f = c.report.faults;
    std::printf("  %-7.3g %-14s %10.3g %9.4f %9.3g %6llu %6llu %7llu "
                "%9.3f %9.3f%s\n",
                c.rate, c.policy, c.rel_err, f.coverage, f.error_bound,
                static_cast<unsigned long long>(f.dead_dpus),
                static_cast<unsigned long long>(f.rematerializations),
                static_cast<unsigned long long>(f.dropped_triplets),
                f.detection_s * 1e3, f.recovery_s * 1e3,
                f.degraded ? "  (degraded)" : "");
  }
  std::printf("\nShape check: fully-recovered cells bit-identical to the "
              "clean run: %s; degraded cells inside their reported error "
              "bound: %s\n",
              recovered_identical ? "HOLDS" : "VIOLATED",
              degraded_within_bound ? "HOLDS" : "VIOLATED");
  return pass ? 0 : 1;
}
