// Out-of-core ingest throughput bench: edges/s of the chunked streaming
// reader (graph/stream_reader.hpp + engine/ingest.hpp) per on-disk format —
// text COO vs MatrixMarket vs `.pbin` buffered vs `.pbin` mmap — on a
// hub-heavy BA+hubs graph 10-100x the figure benches' size.
//
// Each cell drains the file through the full double-buffered ingest
// pipeline (producer parse task + consumer filter stage, null sink) and
// reports wall-clock edges/s (min over --repeat runs).  The headline and
// exit gate is `.pbin`-streamed vs text on the largest size: the binary
// format must ingest >= 3x faster (the tracked local figure is >= 10x; the
// gate absorbs shared-runner noise).  A parity cell additionally streams
// the `.pbin` into a cpu-fast engine chunk-at-a-time and requires the
// estimate to be bit-identical to the one-shot read_coo + count() path.
//
// With --json the run emits one JSON object (BENCH_ingest.json in the CI
// bench-smoke job) seeding the ingest perf trajectory.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "engine/ingest.hpp"
#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stream_reader.hpp"

namespace {

using namespace pimtc;
namespace fs = std::filesystem;

struct Options {
  double scale = 1.0;
  std::uint64_t seed = 42;
  std::size_t chunk_edges = std::size_t{1} << 18;
  int repeat = 3;
  bool json = false;
  bool quick = false;
  bool keep = false;  ///< leave the generated files on disk
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opt.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--chunk-edges=", 14) == 0) {
      opt.chunk_edges = static_cast<std::size_t>(std::atoll(arg + 14));
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      opt.repeat = std::max(1, std::atoi(arg + 9));
    } else if (std::strcmp(arg, "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(arg, "--keep") == 0) {
      opt.keep = true;
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
      opt.scale = std::min(opt.scale, 0.1);
      opt.repeat = std::min(opt.repeat, 2);
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (supported: --scale= --seed= "
                   "--chunk-edges= --repeat= --quick --keep --json)\n",
                   arg);
      std::exit(2);
    }
    if (opt.chunk_edges == 0) {
      std::fprintf(stderr, "--chunk-edges must be >= 1\n");
      std::exit(2);
    }
  }
  return opt;
}

/// The fig-bench BA+hubs recipe scaled ~20x: ~2M edges at --scale=1.
graph::EdgeList make_graph(double scale, std::uint64_t seed) {
  graph::EdgeList g = graph::gen::barabasi_albert(
      static_cast<NodeId>(400000 * scale) + 2000, 5, seed + 1);
  graph::gen::add_hubs(g, 3, g.num_nodes() / 4, seed + 2);
  graph::gen::permute_ids(g, seed + 4);
  return g;
}

struct Cell {
  const char* label;
  fs::path path;
  bool use_mmap;
  double seconds = 1e300;  ///< min wall-clock over repeats
  bool mapped = false;     ///< the reader actually served from an mmap
  std::uint64_t bytes = 0;
  EdgeCount edges_read = 0;
};

/// One timed drain of `cell` through the full ingest pipeline (null sink).
void run_once(Cell& cell, std::size_t chunk_edges) {
  engine::IngestOptions iopt;
  iopt.reader.chunk_edges = chunk_edges;
  iopt.reader.use_mmap = cell.use_mmap;
  const auto t0 = std::chrono::steady_clock::now();
  graph::ChunkedEdgeReader reader(cell.path, iopt.reader);
  const engine::IngestStats stats =
      engine::ingest_stream(reader, [](std::span<const Edge>) {}, iopt);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  cell.seconds = std::min(cell.seconds, dt.count());
  cell.mapped = stats.mapped;
  cell.edges_read = stats.edges_read;
}

double edges_per_s(const Cell& c) {
  return c.seconds > 0.0 ? static_cast<double>(c.edges_read) / c.seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  const fs::path dir =
      fs::temp_directory_path() /
      ("pimtc_bench_ingest_" + std::to_string(opt.seed));
  fs::create_directories(dir);

  const graph::EdgeList g = make_graph(opt.scale, opt.seed);

  // Write the same edge list in every format, with declared counts so the
  // headers are exact (no padding).
  graph::WriterOptions wopt;
  wopt.declared_edges = g.num_edges();
  wopt.declared_nodes = g.num_nodes();
  std::vector<Cell> cells = {
      {"text", dir / "g.txt", true},
      {"mtx", dir / "g.mtx", true},
      {"pbin-buffered", dir / "g.pbin", false},
      {"pbin-mmap", dir / "g.pbin", true},
  };
  for (const fs::path& p : {cells[0].path, cells[1].path, cells[2].path}) {
    auto w = graph::make_edge_writer(p, wopt);
    w->append(g.edges());
    w->finish();
  }
  for (Cell& c : cells) c.bytes = fs::file_size(c.path);

  // Interleave repeats so transient machine noise spreads across formats.
  for (int rep = 0; rep < opt.repeat; ++rep) {
    for (Cell& c : cells) run_once(c, opt.chunk_edges);
  }

  bool counts_identical = true;
  for (const Cell& c : cells) {
    counts_identical &= c.edges_read == g.num_edges();
  }

  // Parity: stream the .pbin into a cpu-fast session chunk-at-a-time and
  // compare against the one-shot in-memory count — must be bit-identical.
  engine::EngineConfig cfg;
  cfg.seed = opt.seed;
  const double oneshot = engine::make_engine("cpu-fast", cfg)->count(g).estimate;
  auto streamed_engine = engine::make_engine("cpu-fast", cfg);
  engine::IngestOptions iopt;
  iopt.reader.chunk_edges = opt.chunk_edges;
  engine::ingest_file(*streamed_engine, dir / "g.pbin", iopt);
  const double streamed = streamed_engine->recount().estimate;
  const bool parity = streamed == oneshot;

  // Headline: mmap-streamed .pbin vs text, same pipeline either side.
  const double text_eps = edges_per_s(cells[0]);
  const double pbin_eps = edges_per_s(cells[3]);
  const double headline = text_eps > 0.0 ? pbin_eps / text_eps : 0.0;
  const double gate = 3.0;
  const bool pass = parity && counts_identical && headline >= gate;

  if (!opt.keep) {
    std::error_code ec;
    fs::remove_all(dir, ec);  // best-effort cleanup
  }

  if (opt.json) {
    std::printf("{\"bench\":\"ingest\",\"seed\":%llu,\"scale\":%.3g,"
                "\"repeat\":%d,\"chunk_edges\":%zu,\"edges\":%llu,"
                "\"nodes\":%u,\"formats\":[",
                static_cast<unsigned long long>(opt.seed), opt.scale,
                opt.repeat, opt.chunk_edges,
                static_cast<unsigned long long>(g.num_edges()), g.num_nodes());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::printf("%s{\"format\":\"%s\",\"bytes\":%llu,\"mapped\":%s,"
                  "\"seconds\":%.9g,\"edges_per_s\":%.6g}",
                  i == 0 ? "" : ",", c.label,
                  static_cast<unsigned long long>(c.bytes),
                  c.mapped ? "true" : "false", c.seconds, edges_per_s(c));
    }
    std::printf("],\"pbin_vs_text_speedup\":%.4g,\"parity\":%s,"
                "\"counts_identical\":%s}\n",
                headline, parity ? "true" : "false",
                counts_identical ? "true" : "false");
    return pass ? 0 : 1;
  }

  std::printf("==============================================================\n");
  std::printf("Out-of-core ingest throughput (chunked streaming reader)\n");
  std::printf("graph: BA+hubs, %llu edges, %u nodes; chunk=%zu edges; "
              "min over %d repeats\n",
              static_cast<unsigned long long>(g.num_edges()), g.num_nodes(),
              opt.chunk_edges, opt.repeat);
  std::printf("==============================================================\n");
  std::printf("%-14s %12s %8s %10s %12s\n", "format", "bytes", "mapped",
              "seconds", "edges/s");
  for (const Cell& c : cells) {
    std::printf("%-14s %12llu %8s %10.4f %12.3g\n", c.label,
                static_cast<unsigned long long>(c.bytes),
                c.mapped ? "yes" : "no", c.seconds, edges_per_s(c));
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("pbin-mmap vs text speedup: %.2fx (gate >= %.1fx)\n", headline,
              gate);
  std::printf("streamed-vs-oneshot parity (cpu-fast): %s\n",
              parity ? "ok" : "MISMATCH");
  std::printf("edge counts identical across formats: %s\n",
              counts_identical ? "yes" : "NO");
  std::printf("%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
