// Regenerates Figure 7: cumulative time to process 10 dynamic updates of
// the WikipediaEdit graph (the PIM implementation's *worst* static case),
// counting exact triangles after every update.
//
// The CPU baseline must rebuild its CSR from the full accumulated COO on
// every update; the GPU and PIM implementations update their internal
// representations directly and "quickly begin counting the triangles formed
// by the newly updated set of edges" (Section 4.6) — here: the incremental
// recount mode, which merges the batch into each core's persistent sorted
// arc array and counts only new-edge triangles.  All comparators are
// streaming sessions of the same engine interface from the registry.
//
// Projection: per-update *simulated* PIM time (transfers + device cycles;
// locally measured 2-core host time excluded) and the CPU work profile are
// scaled linearly to the published |E|; host-side batch building is modeled
// at the paper host's memory bandwidth.  See DESIGN.md / EXPERIMENTS.md.
//
// Paper claim: cumulative CPU time grows far faster than PIM and GPU; PIM
// beats the CPU on dynamic COO streams despite losing statically.
#include "bench_util.hpp"
#include "engine/platform_model.hpp"
#include "engine/registry.hpp"

int main(int argc, char** argv) {
  using namespace pimtc;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 7: cumulative time over 10 dynamic updates (WikipediaEdit)",
      "CPU pays a full CSR rebuild per update and falls behind; PIM and "
      "GPU ingest COO directly and win cumulatively",
      opt);

  const graph::EdgeList full =
      bench::load_graph(graph::PaperGraph::kWikipediaEdit, opt);
  const auto& info =
      graph::paper_graph_info(graph::PaperGraph::kWikipediaEdit);
  const double ratio = static_cast<double>(info.paper_edges) /
                       static_cast<double>(full.num_edges());

  const engine::PlatformModel cpu_model = engine::xeon_4215_model();
  const engine::PlatformModel gpu_model = engine::a100_model();

  constexpr int kUpdates = 10;
  const std::size_t step = full.num_edges() / kUpdates;
  const auto edges = full.edges();

  engine::EngineConfig cfg;
  cfg.num_colors = opt.colors;
  cfg.seed = opt.seed;
  cfg.misra_gries_enabled = true;
  cfg.mg_capacity = 1024;
  cfg.mg_top = 32;
  cfg.incremental = true;  // the COO-native dynamic path
  // Bounded per-DPU staging: large updates flush in multiple bulk scatters,
  // and the pipelined ingest overlaps staging round k+1 with the modeled
  // receive of round k (the paper's double-buffered 32-thread host loop).
  cfg.staging_capacity_edges = 1024;
  auto pim = engine::make_engine("pim", cfg);
  engine::EngineConfig naive_cfg = cfg;
  naive_cfg.incremental = false;  // re-sort + full recount every update
  auto pim_naive = engine::make_engine("pim", naive_cfg);
  auto cpu = engine::make_engine("cpu", cfg);

  double pim_cum = 0.0;
  double naive_cum = 0.0;
  double cpu_cum = 0.0;
  double gpu_cum = 0.0;
  double pim_first = 0.0;
  double pim_last = 0.0;
  double cpu_first = 0.0;
  double cpu_last = 0.0;
  // Rank-aware ingest diagnostics accumulated over the updates.
  std::uint64_t push_transfers = 0;
  std::uint64_t push_payload = 0;
  std::uint64_t push_wire = 0;
  double overlap_saved_s = 0.0;
  std::uint32_t ranks = 0;

  std::printf("%7s %12s | %10s %10s %10s %12s | cumulative s @ paper scale\n",
              "update", "edges", "CPU", "GPU", "PIM inc.", "PIM naive");

  for (int u = 0; u < kUpdates; ++u) {
    const std::size_t lo = u * step;
    const std::size_t hi = (u == kUpdates - 1) ? edges.size() : lo + step;
    const auto batch = edges.subspan(lo, hi - lo);
    const auto batch_bytes =
        static_cast<std::uint64_t>(batch.size() * sizeof(Edge) * ratio);

    // PIM: transfer the new batch only, recount incrementally.
    pim->reset_timers();
    pim->add_edges(batch);
    const engine::CountReport r = pim->recount();
    // Simulated device+transfer seconds, scaled to paper |E|; the paper
    // host's batch building is a streaming pass over C x batch bytes.
    const double host_model_s =
        static_cast<double>(batch_bytes) * opt.colors / 25e9;
    const double pim_update =
        (r.times.ingest_s + r.times.count_s) * ratio + host_model_s;
    pim_cum += pim_update;
    if (u == 0) pim_first = pim_update;
    if (u == kUpdates - 1) pim_last = pim_update;
    push_transfers += r.transfers.push_transfers;
    push_payload += r.transfers.push_payload_bytes;
    push_wire += r.transfers.push_wire_bytes;
    overlap_saved_s += r.transfers.overlap_saved_s;
    ranks = r.num_ranks;

    // PIM without the incremental mode (the naive dynamic baseline).
    pim_naive->reset_timers();
    pim_naive->add_edges(batch);
    const engine::CountReport rn = pim_naive->recount();
    naive_cum += (rn.times.ingest_s + rn.times.count_s) * ratio +
                 host_model_s;

    // CPU / GPU: platform models over the accumulated graph's profile.
    cpu->add_edges(batch);
    const engine::CountReport c = cpu->recount();
    engine::WorkProfile scaled = c.work;
    scaled.conversion_ops =
        static_cast<std::uint64_t>(scaled.conversion_ops * ratio);
    scaled.intersection_steps =
        static_cast<std::uint64_t>(scaled.intersection_steps * ratio);
    const double cpu_update = cpu_model.dynamic_seconds(scaled, batch_bytes);
    cpu_cum += cpu_update;
    gpu_cum += gpu_model.dynamic_seconds(scaled, batch_bytes);
    if (u == 0) cpu_first = cpu_update;
    if (u == kUpdates - 1) cpu_last = cpu_update;

    std::printf("%7d %12.0f | %10.2f %10.2f %10.2f %12.2f%s%s\n", u + 1,
                static_cast<double>(hi) * ratio, cpu_cum, gpu_cum, pim_cum,
                naive_cum,
                r.used_incremental ? "" : "  [full recount]",
                r.rounded() == c.rounded() ? "" : "  <-- COUNT MISMATCH");
  }

  std::printf("\nSpeedup over CPU (cumulative): GPU %.2fx, PIM %.2fx; "
              "incremental over naive PIM: %.2fx\n",
              cpu_cum / gpu_cum, cpu_cum / pim_cum, naive_cum / pim_cum);
  std::printf("Rank-aware ingest: %u ranks, %llu bulk pushes (%.1f per "
              "update), %s payload -> %s wire (x%.2f pad), overlap hidden "
              "%.3f ms\n",
              ranks, static_cast<unsigned long long>(push_transfers),
              static_cast<double>(push_transfers) / kUpdates,
              bench::human(static_cast<double>(push_payload)).c_str(),
              bench::human(static_cast<double>(push_wire)).c_str(),
              push_payload > 0 ? static_cast<double>(push_wire) /
                                     static_cast<double>(push_payload)
                               : 1.0,
              overlap_saved_s * 1e3);

  // Mechanism analysis: per-update cost slopes.  The CPU rebuilds and
  // recounts everything, so its per-update cost grows with the accumulated
  // graph; the incremental PIM pays a flatter cost.  When the CPU slope is
  // steeper, a crossover exists; report where.
  const double cpu_slope = (cpu_last - cpu_first) / (kUpdates - 1);
  const double pim_slope = (pim_last - pim_first) / (kUpdates - 1);
  std::printf("Per-update cost: CPU %.2fs -> %.2fs (slope %.3fs/update), "
              "PIM %.2fs -> %.2fs (slope %.3fs/update)\n",
              cpu_first, cpu_last, cpu_slope, pim_first, pim_last, pim_slope);
  if (pim_cum < cpu_cum) {
    std::printf("Shape check: PIM beats CPU within 10 updates: HOLDS\n");
  } else if (cpu_slope > pim_slope) {
    const double per_update_cross =
        (pim_first - cpu_first) / (cpu_slope - pim_slope);
    std::printf(
        "Shape check: PIM beats CPU within 10 updates: NOT at this scale "
        "(projected per-update crossover near update %.0f).\n"
        "The stand-in's hub holds %.0f%% of |E| vs the paper's 1.2%%, which "
        "concentrates per-update work on the hub-colored cores "
        "(EXPERIMENTS.md discusses the scale gap).\n",
        per_update_cross + 1.0, 100.0 * 12500.0 * opt.scale * 2 /
                                    (250e3 * opt.scale * 2));
  } else {
    std::printf("Shape check: VIOLATED (no crossover in sight)\n");
  }
  std::printf("Mechanism checks: incremental >> naive PIM recounting: %s; "
              "GPU beats CPU: %s\n",
              naive_cum > 1.5 * pim_cum ? "HOLDS" : "WEAK",
              gpu_cum < cpu_cum ? "HOLDS" : "VIOLATED");

  // ---- mixed-stream churn phase (fully-dynamic serving shape) --------------
  // The insertion-only experiment above is the paper's; real serving
  // workloads churn both ways.  Continue the same PIM session with 5 delete
  // batches removing 20% of the edges, recounting after each.  Deletions
  // evict resident samples via random pairing and dirty the touched
  // triplets, which alone pay a full kernel pass — the report prints how
  // selective that invalidation is.  The exact fully-dynamic CPU engine
  // replays the identical ± stream as the parity oracle.
  std::printf("\nMixed-stream churn: deleting 20%% of |E| in 5 batches\n");
  auto oracle = engine::make_engine("cpu-incremental", cfg);
  oracle->add_edges(edges);

  const std::size_t churn_total = full.num_edges() / 5;
  const std::size_t churn_step = churn_total / 5;
  double churn_cum = 0.0;
  std::uint32_t dirty_cores = 0;
  std::uint32_t churn_units = 0;
  bool churn_parity = true;
  std::printf("%7s %12s | %10s %12s %8s\n", "delete", "edges left",
              "PIM s", "evictions", "dirty");
  for (int u = 0; u < 5; ++u) {
    const std::size_t lo = u * churn_step;
    const std::size_t hi = (u == 4) ? churn_total : lo + churn_step;
    std::vector<EdgeUpdate> batch;
    batch.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) batch.push_back(delete_of(edges[i]));

    pim->reset_timers();
    pim->apply(batch);
    const engine::CountReport r = pim->recount();
    churn_cum += (r.times.ingest_s + r.times.count_s) * ratio;
    dirty_cores += r.dirty_full_recounts;
    churn_units = r.num_units;

    oracle->apply(batch);
    const engine::CountReport o = oracle->recount();
    if (r.rounded() != o.rounded()) churn_parity = false;
    std::printf("%7d %12.0f | %10.2f %12llu %8u%s\n", u + 1,
                static_cast<double>(full.num_edges() - hi) * ratio,
                churn_cum,
                static_cast<unsigned long long>(r.sample_evictions),
                r.dirty_full_recounts,
                r.rounded() == o.rounded() ? "" : "  <-- COUNT MISMATCH");
  }
  std::printf("Churn checks: PIM matches the exact fully-dynamic oracle on "
              "every recount: %s; deletion-forced full passes: %u of %u "
              "core-recounts (batches this large touch most triplets — "
              "small deletions invalidate selectively, see the dirty-triplet "
              "tests)\n",
              churn_parity ? "HOLDS" : "VIOLATED", dirty_cores,
              5 * churn_units);
  return 0;
}
