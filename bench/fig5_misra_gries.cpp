// Regenerates Figure 5: exact counting time while sweeping the Misra-Gries
// parameters K (summary capacity per host thread) and t (nodes remapped on
// the PIM cores).
//
// Paper claims: graphs with extreme hubs (Kronecker, WikipediaEdit) speed
// up substantially, with diminishing returns in K and t; graphs without
// hubs (V1r, LiveJournal) see no benefit — the remap cost only adds time.
#include <vector>

#include "bench_util.hpp"
#include "tc/host.hpp"

int main(int argc, char** argv) {
  using namespace pimtc;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 5: counting time vs Misra-Gries parameters K and t",
      "hub-heavy graphs speed up with remapping; flat graphs only pay "
      "overhead",
      opt);

  const graph::PaperGraph graphs[] = {
      graph::PaperGraph::kKronecker23, graph::PaperGraph::kWikipediaEdit,
      graph::PaperGraph::kLiveJournal, graph::PaperGraph::kV1r};

  struct Setting {
    std::uint32_t k;
    std::uint32_t t;
  };
  std::vector<Setting> settings = {{128, 8},  {128, 32},  {1024, 8},
                                   {1024, 32}, {4096, 8}, {4096, 64}};
  if (opt.quick) settings = {{128, 8}, {1024, 32}};

  double wiki_best_speedup = 0.0;
  double v1r_best_speedup = 0.0;

  for (const auto g : graphs) {
    const graph::EdgeList list = bench::load_graph(g, opt);
    std::printf("\n%s (%zu edges)\n", graph::paper_graph_info(g).name.data(),
                list.num_edges());

    tc::TcConfig base;
    base.num_colors = opt.colors;
    base.seed = opt.seed;

    tc::PimTriangleCounter off(base);
    const tc::TcResult r_off = off.count(list);
    const double t_off = r_off.times.count_s * 1e3;
    std::printf("  %-18s %12.2f ms   (count phase, baseline)\n", "MG off",
                t_off);

    double best = t_off;
    for (const Setting& s : settings) {
      tc::TcConfig cfg = base;
      cfg.misra_gries_enabled = true;
      cfg.mg_capacity = s.k;
      cfg.mg_top = s.t;
      tc::PimTriangleCounter counter(cfg);
      const tc::TcResult r = counter.count(list);
      const double ms = r.times.count_s * 1e3;
      best = std::min(best, ms);
      std::printf("  K=%-5u t=%-7u %12.2f ms   (%.2fx vs off)%s\n", s.k, s.t,
                  ms, t_off / ms,
                  r.rounded() == r_off.rounded() ? "" : "  <-- COUNT MISMATCH");
    }
    const double speedup = t_off / best;
    if (g == graph::PaperGraph::kWikipediaEdit) wiki_best_speedup = speedup;
    if (g == graph::PaperGraph::kV1r) v1r_best_speedup = speedup;
  }

  std::printf("\nShape check: WikipediaEdit best MG speedup %.2fx (paper: "
              "large); V1r best %.2fx (paper: none, ~1.0 or below) -> %s\n",
              wiki_best_speedup, v1r_best_speedup,
              wiki_best_speedup > 1.15 && v1r_best_speedup < 1.10
                  ? "HOLDS"
                  : "WEAK/VIOLATED");
  return 0;
}
