// Regenerates Tables 1 and 2: the evaluation graphs and their structure.
//
//   Table 1: |E|, |V|, triangle count per graph.
//   Table 2: max degree, average degree, global clustering coefficient.
//
// Our rows are the synthetic stand-ins at the chosen --scale; the paper's
// values are printed alongside so the structural match (degree skew
// grouping, clustering regime, triangle density) can be eyeballed.
#include "bench_util.hpp"
#include "graph/reference_tc.hpp"
#include "graph/stats.hpp"

int main(int argc, char** argv) {
  using namespace pimtc;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Tables 1 + 2: evaluation graphs (stand-ins vs published values)",
      "V1r/LiveJournal/Human-Jung/Orkut have max degree 1-2 orders below "
      "Kron23/Kron24/WikipediaEdit; Human-Jung is triangle-dense; V1r has "
      "~49 triangles",
      opt);

  std::printf("%-14s | %9s %9s %10s %8s %7s %9s | %9s %9s %11s %9s %7s %10s\n",
              "graph", "|E|", "|V|", "triangles", "maxdeg", "avgdeg", "gcc",
              "paper|E|", "paper|V|", "paper_tri", "p_maxdeg", "p_avgd",
              "p_gcc");
  std::printf("%.*s\n", 150,
              "--------------------------------------------------------------"
              "--------------------------------------------------------------"
              "--------------------------");

  std::uint64_t low_group_max = 0;
  std::uint64_t high_group_min = ~0ull;
  for (const auto g : graph::kAllPaperGraphs) {
    const auto& info = graph::paper_graph_info(g);
    const graph::EdgeList list = bench::load_graph(g, opt);
    const graph::DegreeStats deg = graph::degree_stats(list);
    const TriangleCount tri = graph::reference_triangle_count(list);
    const double gcc = graph::global_clustering(list, tri);

    std::printf(
        "%-14s | %9s %9s %10s %8llu %7.2f %9.2e | %9s %9s %11s %9s %7.2f "
        "%10.2e\n",
        std::string(info.name).c_str(),
        bench::human(static_cast<double>(list.num_edges())).c_str(),
        bench::human(static_cast<double>(list.num_nodes())).c_str(),
        bench::human(static_cast<double>(tri)).c_str(),
        static_cast<unsigned long long>(deg.max_degree), deg.avg_degree, gcc,
        bench::human(static_cast<double>(info.paper_edges)).c_str(),
        bench::human(static_cast<double>(info.paper_nodes)).c_str(),
        bench::human(static_cast<double>(info.paper_triangles)).c_str(),
        bench::human(static_cast<double>(info.paper_max_degree)).c_str(),
        info.paper_avg_degree, info.paper_clustering);

    const bool high_group = g == graph::PaperGraph::kKronecker23 ||
                            g == graph::PaperGraph::kKronecker24 ||
                            g == graph::PaperGraph::kWikipediaEdit;
    if (high_group) {
      high_group_min = std::min(high_group_min, deg.max_degree);
    } else {
      low_group_max = std::max(low_group_max, deg.max_degree);
    }
  }

  std::printf("\nShape check: max-degree grouping (Kron23/Kron24/Wiki above "
              "the rest): %s (low group max %llu < high group min %llu)\n",
              low_group_max < high_group_min ? "HOLDS" : "VIOLATED",
              static_cast<unsigned long long>(low_group_max),
              static_cast<unsigned long long>(high_group_min));
  return low_group_max < high_group_min ? 0 : 1;
}
