// Dynamic-graph triangle counting (the Figure 7 scenario).
//
// A stream of edge batches arrives; after every batch the application wants
// a fresh triangle count.  COO-native engines (the PIM counter) just append
// the batch and recount; a CSR-internal engine must rebuild its whole
// structure from the accumulated COO first.  This example runs both and
// prints the per-update and cumulative costs.
#include <cstdio>
#include <vector>

#include "baseline/cpu_tc.hpp"
#include "baseline/device_model.hpp"
#include "baseline/dynamic_cpu.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "tc/host.hpp"

int main() {
  using namespace pimtc;

  // A hyperlink-ish graph arriving in 10 updates.
  graph::EdgeList g = graph::gen::barabasi_albert(30'000, 5, 3);
  graph::gen::add_hubs(g, 2, 6'000, 4);
  graph::preprocess(g, 42);
  const auto edges = g.edges();
  constexpr int kUpdates = 10;
  const std::size_t step = edges.size() / kUpdates;

  tc::TcConfig config;
  config.num_colors = 6;      // 56 PIM cores
  config.incremental = true;  // COO-native: merge batches, count only new
  tc::PimTriangleCounter pim(config);
  baseline::DynamicCpuCounter cpu;
  const baseline::PlatformModel cpu_model = baseline::xeon_4215_model();

  std::printf("%7s %12s %14s %14s %14s\n", "update", "edges", "triangles",
              "PIM cum (ms)", "CPU cum (ms)");

  double pim_cum = 0.0;
  double cpu_cum = 0.0;
  for (int u = 0; u < kUpdates; ++u) {
    const std::size_t lo = u * step;
    const std::size_t hi = (u == kUpdates - 1) ? edges.size() : lo + step;
    const auto batch = edges.subspan(lo, hi - lo);

    // PIM: transfer only the new batch, recount incrementally (simulated
    // device + transfer time; local host time excluded).
    pim.system().reset_times();
    pim.add_edges(batch);
    const tc::TcResult r = pim.recount();
    pim_cum += r.times.sample_creation_s + r.times.count_s;

    // CPU: append is free, but the recount pays a full CSR rebuild.
    cpu.add_edges(batch);
    const baseline::CpuTcResult c = cpu.recount();
    cpu_cum += cpu_model.dynamic_seconds(c.profile, batch.size() * sizeof(Edge));

    std::printf("%7d %12zu %14llu %14.2f %14.2f%s\n", u + 1, hi,
                static_cast<unsigned long long>(r.rounded()), pim_cum * 1e3,
                cpu_cum * 1e3,
                r.rounded() == c.triangles ? "" : "  <-- MISMATCH");
  }

  std::printf("\nCumulative: PIM %.1f ms vs CPU(model) %.1f ms.\n",
              pim_cum * 1e3, cpu_cum * 1e3);
  std::printf(
      "The crossover is scale-dependent: at this demo size the CPU's CSR\n"
      "rebuild is cheap, while at the paper's 255M-edge scale it dominates\n"
      "every update — see bench/fig7_dynamic_updates for the projection.\n");
  return 0;
}
