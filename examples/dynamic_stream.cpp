// Dynamic-graph triangle counting (the Figure 7 scenario).
//
// A stream of edge batches arrives; after every batch the application wants
// a fresh triangle count.  COO-native engines (the PIM backend) just append
// the batch and recount; a CSR-internal engine must rebuild its whole
// structure from the accumulated COO first.  Both run as streaming sessions
// of the same engine interface; only the registry name differs.
#include <cstdio>

#include "engine/platform_model.hpp"
#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"

int main() {
  using namespace pimtc;

  // A hyperlink-ish graph arriving in 10 updates.
  graph::EdgeList g = graph::gen::barabasi_albert(30'000, 5, 3);
  graph::gen::add_hubs(g, 2, 6'000, 4);
  graph::preprocess(g, 42);
  const auto edges = g.edges();
  constexpr int kUpdates = 10;
  const std::size_t step = edges.size() / kUpdates;

  engine::EngineConfig config;
  config.num_colors = 6;      // 56 PIM cores
  config.incremental = true;  // COO-native: merge batches, count only new
  auto pim = engine::make_engine("pim", config);
  auto cpu = engine::make_engine("cpu", config);
  const engine::PlatformModel cpu_model = engine::xeon_4215_model();

  std::printf("%7s %12s %14s %14s %14s\n", "update", "edges", "triangles",
              "PIM cum (ms)", "CPU cum (ms)");

  double pim_cum = 0.0;
  double cpu_cum = 0.0;
  for (int u = 0; u < kUpdates; ++u) {
    const std::size_t lo = u * step;
    const std::size_t hi = (u == kUpdates - 1) ? edges.size() : lo + step;
    const auto batch = edges.subspan(lo, hi - lo);

    // PIM: transfer only the new batch, recount incrementally (simulated
    // device + transfer time; local host time excluded).
    pim->reset_timers();
    pim->add_edges(batch);
    const engine::CountReport r = pim->recount();
    pim_cum += r.times.ingest_s + r.times.count_s;

    // CPU: append is free, but the recount pays a full CSR rebuild.
    cpu->add_edges(batch);
    const engine::CountReport c = cpu->recount();
    cpu_cum += cpu_model.dynamic_seconds(c.work, batch.size() * sizeof(Edge));

    std::printf("%7d %12zu %14llu %14.2f %14.2f%s\n", u + 1, hi,
                static_cast<unsigned long long>(r.rounded()), pim_cum * 1e3,
                cpu_cum * 1e3,
                r.rounded() == c.rounded() ? "" : "  <-- MISMATCH");
  }

  std::printf("\nCumulative: PIM %.1f ms vs CPU(model) %.1f ms.\n",
              pim_cum * 1e3, cpu_cum * 1e3);
  std::printf(
      "The crossover is scale-dependent: at this demo size the CPU's CSR\n"
      "rebuild is cheap, while at the paper's 255M-edge scale it dominates\n"
      "every update — see bench/fig7_dynamic_updates for the projection.\n");

  // Fully-dynamic epilogue: real streams churn both ways.  Delete a slice
  // of the graph with apply() — deletions evict resident PIM samples via
  // random pairing — and cross-check against the exact dynamic oracle.
  const auto gone = edges.subspan(0, edges.size() / 10);
  std::vector<EdgeUpdate> deletes;
  deletes.reserve(gone.size());
  for (const Edge e : gone) deletes.push_back(delete_of(e));

  auto oracle = engine::make_engine("cpu-incremental", config);
  oracle->add_edges(edges);
  pim->apply(deletes);
  oracle->apply(deletes);
  const engine::CountReport after = pim->recount();
  const engine::CountReport check = oracle->recount();
  std::printf(
      "\nAfter deleting %zu edges: %llu triangles (%llu sample evictions, "
      "%u deletion-forced full core passes)%s\n",
      gone.size(), static_cast<unsigned long long>(after.rounded()),
      static_cast<unsigned long long>(after.sample_evictions),
      after.dirty_full_recounts,
      after.rounded() == check.rounded() ? ", matches the exact oracle"
                                         : "  <-- MISMATCH");
  return 0;
}
