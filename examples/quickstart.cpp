// Quickstart: count triangles in a COO graph on the simulated UPMEM system.
//
//   $ ./quickstart [path/to/graph.txt]
//
// Without an argument a small synthetic social graph is generated.  The
// example walks the full public API: preprocess -> make_engine -> count ->
// inspect the unified report, and cross-checks against the CPU backend
// through the same engine interface.
#include <cstdio>

#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace pimtc;

  // 1. Load or generate a COO edge list.
  graph::EdgeList g;
  if (argc > 1) {
    std::printf("Loading %s ...\n", argv[1]);
    g = graph::read_coo(argv[1]);
  } else {
    std::printf("Generating a synthetic social graph (R-MAT + closure) ...\n");
    g = graph::gen::rmat(14, 100'000,
                         graph::gen::RmatParams{0.45, 0.22, 0.22, 0.11}, 7);
    graph::gen::close_triads(g, 0.5, 4, 8);
  }

  // 2. Preprocess exactly like the paper: dedup, drop self loops, shuffle.
  const graph::PreprocessStats pre = graph::preprocess(g, /*seed=*/42);
  std::printf("Graph: %zu edges, %u nodes (%zu loops, %zu dups removed)\n",
              g.num_edges(), g.num_nodes(), pre.removed_self_loops,
              pre.removed_duplicates);

  // 3. Configure the engine: 8 colors -> binom(10,3) = 120 PIM cores,
  //    16 tasklets each, exact mode.  Any registered backend accepts the
  //    same config — that is the whole point of the engine layer.
  engine::EngineConfig config;
  config.num_colors = 8;
  config.tasklets = 16;

  // 4. Count on the PIM backend.
  auto pim = engine::make_engine("pim", config);
  const engine::CountReport result = pim->count(g);
  std::printf("\nPIM result: %llu triangles (%s)\n",
              static_cast<unsigned long long>(result.rounded()),
              result.exact ? "exact" : "approximate");
  std::printf("  PIM cores used:      %u\n", result.num_units);
  std::printf("  edges replicated:    %llu (= C x |E|)\n",
              static_cast<unsigned long long>(result.edges_replicated));
  std::printf("  per-core load:       %llu .. %llu edges\n",
              static_cast<unsigned long long>(result.min_unit_edges),
              static_cast<unsigned long long>(result.max_unit_edges));
  std::printf("  simulated times:     setup %.2f ms | ingest %.2f ms | count %.2f ms\n",
              result.times.setup_s * 1e3, result.times.ingest_s * 1e3,
              result.times.count_s * 1e3);

  // 5. Cross-check with the CPU backend through the same interface.
  auto cpu = engine::make_engine("cpu", config);
  const engine::CountReport check = cpu->count(g);
  std::printf("\nCPU baseline: %llu triangles (convert %.2f ms + count %.2f ms)\n",
              static_cast<unsigned long long>(check.rounded()),
              check.times.ingest_s * 1e3, check.times.count_s * 1e3);
  std::printf("%s\n", check.rounded() == result.rounded()
                          ? "Counts agree."
                          : "COUNTS DISAGREE — this is a bug.");
  return check.rounded() == result.rounded() ? 0 : 1;
}
