// Misra-Gries high-degree handling (Section 3.5).
//
// Builds a Wikipedia-like graph with extreme hub nodes, shows that the
// host-side Misra-Gries summaries find the true heavy hitters (surfaced as
// CountReport diagnostics), and compares the simulated counting time with
// remapping off vs on.
#include <cstdio>

#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "graph/stats.hpp"

int main() {
  using namespace pimtc;

  graph::EdgeList g = graph::gen::barabasi_albert(40'000, 5, 21);
  graph::gen::add_hubs(g, 3, 9'000, 22);
  // Scatter the hub ids: generators place hubs at the ends of the id space,
  // real graphs do not, and the remapping optimization targets exactly the
  // hubs-with-low-ids case.
  graph::gen::permute_ids(g, 24);
  graph::preprocess(g, 23);

  const graph::DegreeStats stats = graph::degree_stats(g);
  std::printf("Graph: %zu edges, %u nodes, max degree %llu (node %u)\n\n",
              g.num_edges(), g.num_nodes(),
              static_cast<unsigned long long>(stats.max_degree),
              stats.argmax_node);

  // --- run with Misra-Gries enabled, inspect the summary -------------------
  engine::EngineConfig cfg;
  cfg.num_colors = 6;
  cfg.misra_gries_enabled = true;
  cfg.mg_capacity = 512;  // K
  cfg.mg_top = 8;         // t

  const engine::CountReport r_mg = engine::make_engine("pim", cfg)->count(g);

  const auto deg = graph::degrees(g);
  std::printf("Top-%u nodes found by the merged Misra-Gries summaries:\n",
              cfg.mg_top);
  std::printf("%8s %14s %14s\n", "node", "MG estimate", "true degree");
  for (const engine::HeavyHitter& hh : r_mg.heavy_hitters) {
    std::printf("%8u %14llu %14llu\n", hh.node,
                static_cast<unsigned long long>(hh.estimated_degree),
                static_cast<unsigned long long>(deg[hh.node]));
  }

  // --- same run without remapping -------------------------------------------
  cfg.misra_gries_enabled = false;
  const engine::CountReport r_plain =
      engine::make_engine("pim", cfg)->count(g);

  std::printf("\n%-18s %14s %14s\n", "", "count (ms)", "triangles");
  std::printf("%-18s %14.2f %14llu\n", "MG remap OFF",
              r_plain.times.count_s * 1e3,
              static_cast<unsigned long long>(r_plain.rounded()));
  std::printf("%-18s %14.2f %14llu\n", "MG remap ON (t=8)",
              r_mg.times.count_s * 1e3,
              static_cast<unsigned long long>(r_mg.rounded()));
  std::printf("\nSpeedup from remapping the hubs: %.2fx (counts %s)\n",
              r_plain.times.count_s / r_mg.times.count_s,
              r_plain.rounded() == r_mg.rounded() ? "agree" : "DISAGREE");
  return 0;
}
