// Approximate triangle counting: the accuracy/time dials of Sections 3.2
// and 3.3.
//
// Runs the same graph through (a) exact counting, (b) uniform (DOULION)
// sampling at several keep-probabilities, and (c) reservoir sampling at
// several per-core capacities — all through the same "pim" engine from the
// registry — printing estimate, relative error and the simulated
// ingest/count times so the trade-offs are visible.
#include <cstdio>

#include "common/math_util.hpp"
#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"

namespace {

void report(const char* label, const pimtc::engine::CountReport& r,
            double truth) {
  std::printf("%-24s %14.0f %9.3f%% %12.2f %12.2f\n", label, r.estimate,
              pimtc::relative_error(r.estimate, truth) * 100.0,
              r.times.ingest_s * 1e3, r.times.count_s * 1e3);
}

}  // namespace

int main() {
  using namespace pimtc;

  graph::EdgeList g = graph::gen::community(24'000, 80, 0.55, 30'000, 11);
  graph::preprocess(g, 12);
  const auto truth = static_cast<double>(graph::reference_triangle_count(g));
  std::printf("Graph: %zu edges, %u nodes, %.0f triangles (reference)\n\n",
              g.num_edges(), g.num_nodes(), truth);

  std::printf("%-24s %14s %10s %12s %12s\n", "mode", "estimate", "rel.err",
              "ingest(ms)", "count(ms)");

  engine::EngineConfig base;
  base.num_colors = 6;
  base.seed = 99;

  report("exact", engine::make_engine("pim", base)->count(g), truth);

  // Uniform sampling: discard edges at the host, correct by 1/p^3.
  for (const double p : {0.5, 0.25, 0.1}) {
    engine::EngineConfig cfg = base;
    cfg.uniform_p = p;
    char label[64];
    std::snprintf(label, sizeof label, "uniform p=%.2f", p);
    report(label, engine::make_engine("pim", cfg)->count(g), truth);
  }

  // Reservoir sampling: cap each core's sample at a fraction of the
  // expected max load 6|E|/C^2.
  const double expected_max =
      6.0 * static_cast<double>(g.num_edges()) / (6.0 * 6.0);
  for (const double frac : {0.5, 0.25, 0.1}) {
    engine::EngineConfig cfg = base;
    cfg.sample_capacity_edges =
        static_cast<std::uint64_t>(expected_max * frac);
    char label[64];
    std::snprintf(label, sizeof label, "reservoir M=%.2f*max", frac);
    report(label, engine::make_engine("pim", cfg)->count(g), truth);
  }

  std::printf(
      "\nUniform sampling cuts transfer volume (ingest time) and counting\n"
      "work; reservoir sampling adapts to the memory bound without choosing\n"
      "p by hand, at slightly higher sample-creation cost.\n");
  return 0;
}
