// Tests for the engine layer: registry/factory behavior, EngineConfig
// validation, backend parity (every exact backend agrees with the trusted
// reference counter), and streaming-session semantics (add_edges/recount
// idempotence and cross-backend agreement after every update).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"

namespace pimtc::engine {
namespace {

const char* const kExactBackends[] = {"pim", "cpu", "cpu-fast",
                                      "cpu-incremental"};

EngineConfig small_config(std::uint64_t seed = 42) {
  EngineConfig cfg;
  cfg.num_colors = 4;
  cfg.seed = seed;
  return cfg;
}

graph::EdgeList test_graph(std::uint64_t seed) {
  graph::EdgeList g = graph::gen::community(400, 16, 0.5, 1500, seed);
  graph::preprocess(g, seed + 1);
  return g;
}

// ---- registry ---------------------------------------------------------------

TEST(RegistryTest, BuiltinsAreRegistered) {
  const std::vector<std::string> names = registered_backends();
  const std::set<std::string> set(names.begin(), names.end());
  EXPECT_TRUE(set.contains("pim"));
  EXPECT_TRUE(set.contains("cpu"));
  EXPECT_TRUE(set.contains("cpu-fast"));
  EXPECT_TRUE(set.contains("cpu-incremental"));
}

TEST(RegistryTest, UnknownBackendThrowsWithKnownNames) {
  try {
    make_engine("gpu", small_config());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gpu"), std::string::npos);
    EXPECT_NE(what.find("pim"), std::string::npos) << what;
  }
}

TEST(RegistryTest, EnginesReportTheirRegistryName) {
  for (const char* name : kExactBackends) {
    EXPECT_STREQ(make_engine(name, small_config())->name(), name);
  }
}

TEST(RegistryTest, RegisterBackendRejectsDuplicates) {
  EXPECT_THROW(register_backend("pim", [](const EngineConfig& cfg) {
                 return make_engine("cpu", cfg);
               }),
               std::invalid_argument);
  EXPECT_THROW(register_backend("", nullptr), std::invalid_argument);
}

TEST(RegistryTest, CustomBackendIsReachable) {
  // Registration is process-global and permanent; do it exactly once so
  // --gtest_repeat runs don't trip the duplicate-name guard.
  static const bool registered = [] {
    register_backend("cpu-alias", [](const EngineConfig& cfg) {
      return make_engine("cpu", cfg);
    });
    return true;
  }();
  ASSERT_TRUE(registered);
  graph::EdgeList g = test_graph(1);
  EXPECT_EQ(make_engine("cpu-alias")->count(g).rounded(),
            graph::reference_triangle_count(g));
}

// ---- config validation ------------------------------------------------------

TEST(ConfigValidationTest, RejectsTooFewColors) {
  EngineConfig cfg = small_config();
  cfg.num_colors = 1;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
  // Validation is backend-independent: the CPU backend rejects it too.
  EXPECT_THROW(make_engine("cpu", cfg), std::invalid_argument);
}

TEST(ConfigValidationTest, RejectsUniformPOutOfRange) {
  for (const double p : {0.0, -0.5, 1.5}) {
    EngineConfig cfg = small_config();
    cfg.uniform_p = p;
    EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument) << p;
  }
}

TEST(ConfigValidationTest, RejectsBadTasklets) {
  EngineConfig cfg = small_config();
  cfg.tasklets = 0;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
  cfg.tasklets = cfg.pim.max_tasklets + 1;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
}

TEST(ConfigValidationTest, RejectsMoreCoresThanTheMachineHas) {
  EngineConfig cfg = small_config();
  cfg.num_colors = 64;  // binom(66,3) = 45760 cores >> 2560
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
}

TEST(ConfigValidationTest, RejectsZeroWramBuffer) {
  EngineConfig cfg = small_config();
  cfg.wram_buffer_edges = 0;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
}

TEST(ConfigValidationTest, RejectsWramBufferBeyondScratchpadBudget) {
  // The budget used to be a silent clamp; now an over-sized buffer is a
  // config error with the actual bound in the message.
  EngineConfig cfg = small_config();
  cfg.wram_buffer_edges = 1 << 20;
  try {
    make_engine("pim", cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("wram_buffer_edges"),
              std::string::npos);
  }
}

TEST(ConfigValidationTest, RejectsDegenerateMisraGries) {
  EngineConfig cfg = small_config();
  cfg.misra_gries_enabled = true;
  cfg.mg_capacity = 0;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
}

TEST(ConfigValidationTest, RejectsMgTopAboveMgCapacity) {
  // Remapping more nodes than Misra-Gries tracks silently degrades the
  // summary; the config is rejected up front.
  EngineConfig cfg = small_config();
  cfg.misra_gries_enabled = true;
  cfg.mg_capacity = 8;
  cfg.mg_top = 9;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
  cfg.mg_top = 8;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidationTest, RejectsDegreeRemapWithoutMisraGries) {
  // Degree ordering comes from the Misra-Gries estimates; without the
  // summaries there is nothing to order by.
  EngineConfig cfg = small_config();
  cfg.degree_ordered_remap = true;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
  cfg.misra_gries_enabled = true;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidationTest, RejectsZeroGallopMargin) {
  EngineConfig cfg = small_config();
  cfg.gallop_margin = 0;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
  cfg.gallop_margin = 1;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidationTest, AutoColorSelectionFillsTheMachine) {
  // num_colors == 0 resolves to the largest C fitting pim.max_dpus: C = 23
  // -> 2300 of 2560 DPUs (~90% utilization) on the default machine.
  EngineConfig cfg = small_config();
  cfg.num_colors = 0;
  EXPECT_NO_THROW(cfg.validate());

  cfg.pim.max_dpus = 120;
  cfg.pim.mram_bytes = 4ull << 20;  // keep the session light
  const CountReport r =
      make_engine("pim", cfg)->count(graph::gen::complete(24));
  EXPECT_EQ(r.num_colors, 8u);  // binom(10,3) = 120 cores exactly
  EXPECT_EQ(r.num_units, 120u);
  EXPECT_DOUBLE_EQ(r.dpu_utilization, 1.0);

  // A machine too small for even C = 2 is rejected.
  cfg.pim.max_dpus = 3;
  cfg.pim.dpus_per_rank = 2;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
}

TEST(ConfigValidationTest, RejectsBadRebalanceGain) {
  EngineConfig cfg = small_config();
  cfg.rebalance_min_gain = 0.9;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
}

TEST(ConfigValidationTest, RejectsBadRankTopology) {
  EngineConfig cfg = small_config();
  cfg.pim.dpus_per_rank = 0;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
  cfg.pim.dpus_per_rank = cfg.pim.max_dpus + 1;
  EXPECT_THROW(make_engine("pim", cfg), std::invalid_argument);
}

TEST(ConfigValidationTest, AcceptsTheDefaults) {
  EXPECT_NO_THROW(EngineConfig{}.validate());
}

// ---- backend parity ---------------------------------------------------------

TEST(BackendParityTest, ExactBackendsMatchReferenceOnGeneratorGraphs) {
  for (const std::uint64_t seed : {3u, 7u}) {
    const graph::EdgeList g = test_graph(seed);
    const TriangleCount truth = graph::reference_triangle_count(g);
    for (const char* name : kExactBackends) {
      auto eng = make_engine(name, small_config(seed));
      const CountReport r = eng->count(g);
      EXPECT_TRUE(r.exact) << name;
      EXPECT_EQ(r.rounded(), truth) << name << " seed " << seed;
      EXPECT_EQ(r.backend, name);
    }
  }
}

TEST(BackendParityTest, ExactBackendsMatchOnSkewedGraph) {
  graph::EdgeList g = graph::gen::barabasi_albert(1500, 6, 9);
  graph::gen::add_hubs(g, 1, 300, 10);
  graph::preprocess(g, 11);
  const TriangleCount truth = graph::reference_triangle_count(g);
  for (const char* name : kExactBackends) {
    EXPECT_EQ(make_engine(name, small_config())->count(g).rounded(), truth)
        << name;
  }
}

TEST(BackendParityTest, EmptyGraph) {
  for (const char* name : kExactBackends) {
    const CountReport r = make_engine(name, small_config())->count({});
    EXPECT_EQ(r.rounded(), 0u) << name;
    EXPECT_TRUE(r.exact) << name;
  }
}

// ---- capabilities -----------------------------------------------------------

TEST(CapabilitiesTest, MatchBackendSemantics) {
  EngineConfig cfg = small_config();
  cfg.incremental = true;

  const auto pim = make_engine("pim", cfg)->capabilities();
  EXPECT_TRUE(pim.exact);
  EXPECT_TRUE(pim.streaming);
  EXPECT_TRUE(pim.incremental_recount);
  EXPECT_TRUE(pim.simulated_time);

  const auto cpu = make_engine("cpu", cfg)->capabilities();
  EXPECT_TRUE(cpu.exact);
  EXPECT_TRUE(cpu.streaming);
  EXPECT_FALSE(cpu.incremental_recount);  // rebuilds the CSR every recount
  EXPECT_FALSE(cpu.simulated_time);
  EXPECT_TRUE(cpu.work_profile);

  const auto inc = make_engine("cpu-incremental", cfg)->capabilities();
  EXPECT_TRUE(inc.incremental_recount);

  EngineConfig approx = small_config();
  approx.uniform_p = 0.5;
  EXPECT_FALSE(make_engine("pim", approx)->capabilities().exact);
}

// ---- streaming sessions -----------------------------------------------------

TEST(StreamingSessionTest, BatchedStreamMatchesOneShotAcrossBackends) {
  const graph::EdgeList g = test_graph(5);
  const TriangleCount truth = graph::reference_triangle_count(g);
  const auto edges = g.edges();
  constexpr std::size_t kBatches = 4;
  const std::size_t step = edges.size() / kBatches;

  for (const char* name : kExactBackends) {
    auto eng = make_engine(name, small_config());
    for (std::size_t b = 0; b < kBatches; ++b) {
      const std::size_t lo = b * step;
      const std::size_t hi = (b == kBatches - 1) ? edges.size() : lo + step;
      eng->add_edges(edges.subspan(lo, hi - lo));
    }
    EXPECT_EQ(eng->recount().rounded(), truth) << name;
  }
}

TEST(StreamingSessionTest, RecountIsIdempotent) {
  const graph::EdgeList g = test_graph(6);
  for (const char* name : kExactBackends) {
    auto eng = make_engine(name, small_config());
    eng->add_edges(g.edges());
    const CountReport first = eng->recount();
    const CountReport second = eng->recount();
    EXPECT_EQ(first.rounded(), second.rounded()) << name;
    EXPECT_DOUBLE_EQ(first.estimate, second.estimate) << name;
  }
}

TEST(StreamingSessionTest, BackendsAgreeAfterEveryUpdate) {
  const graph::EdgeList g = test_graph(8);
  const auto edges = g.edges();
  constexpr std::size_t kBatches = 3;
  const std::size_t step = edges.size() / kBatches;

  EngineConfig cfg = small_config();
  cfg.incremental = true;  // exercise the PIM incremental path too
  std::vector<std::unique_ptr<TriangleCountEngine>> engines;
  for (const char* name : kExactBackends) {
    engines.push_back(make_engine(name, cfg));
  }

  graph::EdgeList acc;
  for (std::size_t b = 0; b < kBatches; ++b) {
    const std::size_t lo = b * step;
    const std::size_t hi = (b == kBatches - 1) ? edges.size() : lo + step;
    const auto batch = edges.subspan(lo, hi - lo);
    acc.append(batch);
    const TriangleCount truth = graph::reference_triangle_count(acc);
    for (auto& eng : engines) {
      eng->add_edges(batch);
      EXPECT_EQ(eng->recount().rounded(), truth)
          << eng->name() << " update " << b;
    }
  }
}

TEST(StreamingSessionTest, PimIncrementalSurvivesCoresEmptyAtFirstCount) {
  // Regression: with many cores and a tiny first batch, some PIM cores see
  // zero edges before the first recount.  Their persisted-sorted flag must
  // still be set, or every later incremental recount throws.
  EngineConfig cfg;
  cfg.num_colors = 8;  // 120 cores
  cfg.incremental = true;
  auto eng = make_engine("pim", cfg);

  graph::EdgeList g = graph::gen::complete(24);  // 2024 triangles
  graph::shuffle_edges(g, 17);
  const auto edges = g.edges();

  eng->add_edges(edges.subspan(0, 4));  // far fewer edges than cores
  eng->recount();
  eng->add_edges(edges.subspan(4));
  const CountReport r = eng->recount();
  EXPECT_TRUE(r.used_incremental);
  EXPECT_EQ(r.rounded(), graph::reference_triangle_count(g));
}

TEST(StreamingSessionTest, IncrementalCpuToleratesDuplicatesAndLoops) {
  // The adjacency-based engine dedups on arrival, so a raw un-preprocessed
  // stream still counts exactly.
  graph::EdgeList g = graph::gen::complete(14);
  auto eng = make_engine("cpu-incremental", small_config());
  eng->add_edges(g.edges());
  eng->add_edges(g.edges());  // every edge again
  std::vector<Edge> junk{{3, 3}, {5, 2}, {2, 5}};
  eng->add_edges(junk);
  EXPECT_EQ(eng->recount().rounded(), graph::reference_triangle_count(g));
}

TEST(StreamingSessionTest, ResetTimersZeroesTimesOnly) {
  const graph::EdgeList g = test_graph(9);
  auto eng = make_engine("pim", small_config());
  eng->add_edges(g.edges());
  const CountReport before = eng->recount();
  EXPECT_GT(before.times.total_s(), 0.0);
  eng->reset_timers();
  const CountReport after = eng->recount();
  EXPECT_EQ(after.rounded(), before.rounded());
  EXPECT_LT(after.times.total_s(), before.times.total_s());
}

// ---- report diagnostics -----------------------------------------------------

TEST(ReportTest, PimReportCarriesLoadBalanceDiagnostics) {
  const graph::EdgeList g = test_graph(10);
  const CountReport r = make_engine("pim", small_config())->count(g);
  EXPECT_EQ(r.num_units, 20u);  // binom(6,3) for C=4
  EXPECT_EQ(r.edges_streamed, g.num_edges());
  EXPECT_EQ(r.edges_kept, g.num_edges());
  EXPECT_GT(r.edges_replicated, 0u);
  EXPECT_LE(r.min_unit_edges, r.max_unit_edges);
  EXPECT_TRUE(r.simulated_times);
  EXPECT_GT(r.times.setup_s, 0.0);
}

TEST(ReportTest, HeavyHittersSurfaceWhenMisraGriesEnabled) {
  graph::EdgeList g = graph::gen::barabasi_albert(2000, 4, 12);
  graph::gen::add_hubs(g, 1, 500, 13);
  graph::preprocess(g, 14);

  EngineConfig cfg = small_config();
  cfg.misra_gries_enabled = true;
  cfg.mg_capacity = 256;
  cfg.mg_top = 4;
  const CountReport r = make_engine("pim", cfg)->count(g);
  ASSERT_FALSE(r.heavy_hitters.empty());
  EXPECT_LE(r.heavy_hitters.size(), 4u);
  EXPECT_GT(r.heavy_hitters.front().estimated_degree, 0u);
}

TEST(ReportTest, HostThreadsPlumbedThroughEveryBackend) {
  EngineConfig cfg = small_config();
  cfg.host_threads = 3;
  EXPECT_EQ(make_engine("pim", cfg)->recount().host_threads, 3u);
  EXPECT_EQ(make_engine("cpu", cfg)->recount().host_threads, 3u);
  // The adjacency engine is inherently serial and says so.
  EXPECT_EQ(make_engine("cpu-incremental", cfg)->recount().host_threads, 1u);
}

TEST(ReportTest, PimReportCarriesRankAwareTransferBreakdown) {
  const graph::EdgeList g = test_graph(11);
  EngineConfig cfg = small_config();
  cfg.pim.dpus_per_rank = 8;  // 20 cores for C=4 -> 3 ranks
  const CountReport r = make_engine("pim", cfg)->count(g);
  EXPECT_EQ(r.num_ranks, 3u);
  EXPECT_GT(r.transfers.push_transfers, 0u);
  EXPECT_GT(r.transfers.pull_transfers, 0u);
  EXPECT_GE(r.transfers.push_wire_bytes, r.transfers.push_payload_bytes);
  EXPECT_GE(r.transfers.overlap_saved_s, 0.0);

  // Backends without a transfer model report zeros.
  const CountReport c = make_engine("cpu", cfg)->count(g);
  EXPECT_EQ(c.num_ranks, 0u);
  EXPECT_EQ(c.transfers.push_transfers, 0u);
}

TEST(ReportTest, PimReportCarriesPartitionDiagnostics) {
  const graph::EdgeList g = test_graph(16);
  EngineConfig cfg = small_config();
  cfg.placement = color::PlacementPolicy::kGreedyBalance;
  cfg.rebalance_enabled = true;
  const CountReport r = make_engine("pim", cfg)->count(g);
  EXPECT_EQ(r.num_colors, 4u);
  EXPECT_EQ(r.placement, "greedy_balance");
  EXPECT_GT(r.dpu_utilization, 0.0);
  EXPECT_GE(r.load_imbalance, 1.0);
  // C=4: 4 kind-1, 12 kind-2, 4 kind-3 cores; histogram covers every edge
  // replica.
  EXPECT_EQ(r.kind_units[0], 4u);
  EXPECT_EQ(r.kind_units[1], 12u);
  EXPECT_EQ(r.kind_units[2], 4u);
  EXPECT_EQ(r.kind_edges_seen[0] + r.kind_edges_seen[1] + r.kind_edges_seen[2],
            r.edges_replicated);

  // CPU backends have no partition; the fields stay at their zeros.
  const CountReport c = make_engine("cpu", cfg)->count(g);
  EXPECT_EQ(c.num_colors, 0u);
  EXPECT_TRUE(c.placement.empty());
}

TEST(ReportTest, PipelinedAndSerialSessionsAgreeBitForBit) {
  // engine_test parity criterion: rank-aware + pipelined ingestion must
  // produce the identical estimate to the serial path on a fixed seed.
  const graph::EdgeList g = test_graph(12);
  const auto edges = g.edges();
  const std::size_t step = edges.size() / 3;

  const auto run = [&](bool pipelined, std::uint64_t staging) {
    EngineConfig cfg = small_config(1234);
    cfg.uniform_p = 0.7;              // exercise the sampling RNG too
    cfg.sample_capacity_edges = 300;  // and reservoir replacement
    cfg.pipelined_ingest = pipelined;
    cfg.staging_capacity_edges = staging;
    auto eng = make_engine("pim", cfg);
    for (std::size_t b = 0; b < 3; ++b) {
      const std::size_t lo = b * step;
      const std::size_t hi = (b == 2) ? edges.size() : lo + step;
      eng->add_edges(edges.subspan(lo, hi - lo));
    }
    return eng->recount().estimate;
  };

  const double serial = run(false, 0);
  EXPECT_EQ(serial, run(true, 0));
  EXPECT_EQ(serial, run(true, 50));
}

TEST(ReportTest, ResetTimersSettlesInFlightPipelinedTime) {
  // add_edges leaves its flush's device time in flight (pipelined default);
  // reset_timers must settle it into the pre-reset window, or the next
  // recount would charge pre-reset work into the fresh measurement window.
  const graph::EdgeList g = test_graph(13);
  auto eng = make_engine("pim", small_config());
  eng->add_edges(g.edges());
  eng->reset_timers();
  const CountReport r = eng->recount();
  EXPECT_DOUBLE_EQ(r.times.ingest_s, 0.0);
  EXPECT_EQ(r.transfers.push_transfers, 1u);  // only recount's control push
}

TEST(ReportTest, CpuWorkProfileFeedsThePlatformModels) {
  const graph::EdgeList g = test_graph(15);
  const CountReport r = make_engine("cpu")->count(g);
  EXPECT_EQ(r.work.edges, g.num_edges());
  EXPECT_GT(r.work.conversion_ops, 0u);
  EXPECT_GT(r.work.intersection_steps, 0u);
  EXPECT_EQ(r.work.triangles, r.rounded());
}

}  // namespace
}  // namespace pimtc::engine
