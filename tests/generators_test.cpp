// Tests for the graph generators and the paper-graph stand-ins: simplicity
// invariants, determinism, and the structural signatures each stand-in must
// preserve (degree ordering, clustering regime, triangle density).
#include <gtest/gtest.h>

#include <unordered_set>

#include "graph/generators.hpp"
#include "graph/paper_graphs.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"
#include "graph/stats.hpp"

namespace pimtc::graph {
namespace {

/// Simple = no loops, no duplicate undirected edges.
void expect_simple(const EdgeList& g) {
  std::unordered_set<Edge> seen;
  for (const Edge& e : g) {
    EXPECT_FALSE(e.is_loop()) << e.u << "," << e.v;
    EXPECT_TRUE(seen.insert(e.canonical()).second)
        << "duplicate edge " << e.u << "," << e.v;
  }
}

// ---- primitive generators ----------------------------------------------------

TEST(GeneratorsTest, ErdosRenyiExactEdgeCountAndSimple) {
  const EdgeList g = gen::erdos_renyi(500, 2000, 1);
  EXPECT_EQ(g.num_edges(), 2000u);
  EXPECT_LE(g.num_nodes(), 500u);
  expect_simple(g);
}

TEST(GeneratorsTest, ErdosRenyiDeterministicPerSeed) {
  const EdgeList a = gen::erdos_renyi(100, 300, 5);
  const EdgeList b = gen::erdos_renyi(100, 300, 5);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(GeneratorsTest, ErdosRenyiRejectsOverfull) {
  EXPECT_THROW(gen::erdos_renyi(4, 7, 1), std::invalid_argument);
  EXPECT_NO_THROW(gen::erdos_renyi(4, 6, 1));
}

TEST(GeneratorsTest, RmatRespectsScaleAndCount) {
  const EdgeList g = gen::rmat(10, 3000, gen::RmatParams{}, 2);
  EXPECT_EQ(g.num_edges(), 3000u);
  EXPECT_LE(g.num_nodes(), 1u << 10);
  expect_simple(g);
}

TEST(GeneratorsTest, RmatSkewProducesHubs) {
  // Graph500 parameters concentrate edges on low ids; the max degree must be
  // far above average.
  const EdgeList g = gen::rmat(12, 20000, gen::RmatParams{}, 3);
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(static_cast<double>(s.max_degree), 10.0 * s.avg_degree);
}

TEST(GeneratorsTest, BarabasiAlbertSimpleAndPowerLawTail) {
  const EdgeList g = gen::barabasi_albert(2000, 4, 4);
  expect_simple(g);
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(static_cast<double>(s.max_degree), 5.0 * s.avg_degree);
}

TEST(GeneratorsTest, WattsStrogatzLatticeIsClustered) {
  const EdgeList g = gen::watts_strogatz(1000, 8, 0.05, 5);
  expect_simple(g);
  const TriangleCount t = reference_triangle_count(g);
  EXPECT_GT(global_clustering(g, t), 0.3);  // near-lattice regime
}

TEST(GeneratorsTest, CommunityGraphHighClustering) {
  const EdgeList g = gen::community(2000, 50, 0.6, 500, 6);
  expect_simple(g);
  const TriangleCount t = reference_triangle_count(g);
  EXPECT_GT(global_clustering(g, t), 0.25);
}

TEST(GeneratorsTest, RoadLikeHasPlantedTriangles) {
  const EdgeList g = gen::road_like(20000, 2.2, 16, 7);
  expect_simple(g);
  const TriangleCount t = reference_triangle_count(g);
  // At least the planted ones; ER at this density contributes a handful.
  EXPECT_GE(t, 16u);
  EXPECT_LE(t, 40u);
  const DegreeStats s = degree_stats(g);
  EXPECT_LE(s.max_degree, 16u);
  EXPECT_NEAR(s.avg_degree, 2.2, 0.6);
}

TEST(GeneratorsTest, AddHubsCreatesRequestedDegrees) {
  EdgeList g = gen::erdos_renyi(5000, 10000, 8);
  const NodeId before = g.num_nodes();
  gen::add_hubs(g, 2, 1000, 9);
  expect_simple(g);
  const auto deg = degrees(g);
  EXPECT_EQ(deg[before], 1000u);
  EXPECT_EQ(deg[before + 1], 1000u);
}

TEST(GeneratorsTest, CloseTriadsRaisesClustering) {
  EdgeList g = gen::rmat(12, 15000, gen::RmatParams{0.45, 0.22, 0.22, 0.11}, 10);
  const double before =
      global_clustering(g, reference_triangle_count(g));
  gen::close_triads(g, 0.8, 4, 11);
  expect_simple(g);
  const double after = global_clustering(g, reference_triangle_count(g));
  EXPECT_GT(after, before);
}

// ---- fixture graphs -----------------------------------------------------------

TEST(GeneratorsTest, FixtureTriangleCounts) {
  EXPECT_EQ(gen::complete(7).num_edges(), 21u);
  EXPECT_EQ(gen::cycle(7).num_edges(), 7u);
  EXPECT_EQ(gen::path(7).num_edges(), 6u);
  EXPECT_EQ(gen::star(7).num_edges(), 6u);
  EXPECT_EQ(gen::wheel(7).num_edges(), 12u);
}

// ---- paper stand-ins -----------------------------------------------------------

class PaperGraphTest : public ::testing::TestWithParam<PaperGraph> {};

TEST_P(PaperGraphTest, SimpleAndDeterministic) {
  const EdgeList a = make_paper_graph(GetParam(), 0.15, 42);
  const EdgeList b = make_paper_graph(GetParam(), 0.15, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a[i], b[i]);
  expect_simple(a);
  EXPECT_GT(a.num_edges(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, PaperGraphTest,
                         ::testing::ValuesIn(kAllPaperGraphs),
                         [](const auto& param_info) {
                           return std::string(
                               paper_graph_info(param_info.param).name)
                               .substr(0, 4) +
                               std::to_string(static_cast<int>(param_info.param));
                         });

TEST(PaperGraphsTest, V1rSignature) {
  // Near-zero triangles, tiny max degree — the Table 3/4 outlier.
  const EdgeList g = make_paper_graph(PaperGraph::kV1r, 0.3, 42);
  const TriangleCount t = reference_triangle_count(g);
  EXPECT_GE(t, 10u);
  EXPECT_LE(t, 60u);
  EXPECT_LE(degree_stats(g).max_degree, 16u);
}

TEST(PaperGraphsTest, MaxDegreeOrderingMatchesFigure3) {
  // The grouping the paper's Figure 3 and Table 2 rely on: V1r, LiveJournal,
  // Human-Jung and Orkut sit well below Kron23, Kron24 and WikipediaEdit.
  const double scale = 0.3;
  const auto max_deg = [&](PaperGraph g) {
    return degree_stats(make_paper_graph(g, scale, 42)).max_degree;
  };
  const auto v1r = max_deg(PaperGraph::kV1r);
  const auto lj = max_deg(PaperGraph::kLiveJournal);
  const auto hj = max_deg(PaperGraph::kHumanJung);
  const auto orkut = max_deg(PaperGraph::kOrkut);
  const auto k23 = max_deg(PaperGraph::kKronecker23);
  const auto k24 = max_deg(PaperGraph::kKronecker24);
  const auto wiki = max_deg(PaperGraph::kWikipediaEdit);

  const auto low_group_max = std::max({v1r, lj, hj, orkut});
  EXPECT_LT(low_group_max, k23);
  EXPECT_LT(k23, wiki);
  EXPECT_LT(k24, wiki);
  EXPECT_LT(v1r, lj);
}

TEST(PaperGraphsTest, HumanJungIsTriangleDense) {
  const EdgeList g = make_paper_graph(PaperGraph::kHumanJung, 0.2, 42);
  const TriangleCount t = reference_triangle_count(g);
  // Triangles per edge far above the social graphs', like the connectome.
  EXPECT_GT(static_cast<double>(t) / static_cast<double>(g.num_edges()), 2.0);
}

TEST(PaperGraphsTest, InfoTableMatchesPaperValues) {
  const auto& kron23 = paper_graph_info(PaperGraph::kKronecker23);
  EXPECT_EQ(kron23.paper_edges, 129'335'985u);
  EXPECT_EQ(kron23.paper_triangles, 4'675'811'428u);
  const auto& v1r = paper_graph_info(PaperGraph::kV1r);
  EXPECT_EQ(v1r.paper_triangles, 49u);
  EXPECT_EQ(v1r.paper_max_degree, 8u);
}

TEST(PaperGraphsTest, ScaleGrowsEdgeCount) {
  const auto small = make_paper_graph(PaperGraph::kLiveJournal, 0.1, 1);
  const auto large = make_paper_graph(PaperGraph::kLiveJournal, 0.3, 1);
  EXPECT_GT(large.num_edges(), 2 * small.num_edges());
}

TEST(PaperGraphsTest, RejectsNonPositiveScale) {
  EXPECT_THROW(make_paper_graph(PaperGraph::kOrkut, 0.0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace pimtc::graph
