// Tests for the partition planner: auto color selection, placement
// policies, the placement-invariance property of the estimator, and the
// runtime rebalancing path (sample migration between banks).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/math_util.hpp"
#include "common/prng.hpp"
#include "coloring/partition_plan.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"
#include "tc/host.hpp"

namespace pimtc::color {
namespace {

// ---- auto color selection ---------------------------------------------------

TEST(AutoColorTest, FillsThePaperMachine) {
  // binom(25, 3) = 2300 <= 2560 < binom(26, 3) = 2600: the default machine
  // takes C = 23 and runs ~90% of its DPUs instead of the old 20/2560.
  EXPECT_EQ(PartitionPlan::auto_colors(2560), 23u);
  EXPECT_GE(static_cast<double>(num_triplets(23)) / 2560.0, 0.89);
}

TEST(AutoColorTest, LargestFitAcrossMachineSizes) {
  for (const std::uint64_t dpus : {1ull, 4ull, 10ull, 56ull, 120ull, 2300ull}) {
    const std::uint32_t c = PartitionPlan::auto_colors(dpus);
    EXPECT_LE(num_triplets(c), dpus) << dpus;
    EXPECT_GT(num_triplets(c + 1), dpus) << dpus;
  }
  EXPECT_EQ(PartitionPlan::auto_colors(0), 0u);
}

// ---- placement policies -----------------------------------------------------

bool is_bijection(const PartitionPlan& plan) {
  std::vector<bool> hit(plan.num_dpus(), false);
  for (std::uint32_t t = 0; t < plan.num_dpus(); ++t) {
    const std::uint32_t d = plan.dpu_of(t);
    if (d >= plan.num_dpus() || hit[d]) return false;
    hit[d] = true;
    if (plan.triplet_of(d) != t) return false;
  }
  return true;
}

TEST(PartitionPlanTest, EveryPolicyIsABijection) {
  for (const auto policy :
       {PlacementPolicy::kIdentity, PlacementPolicy::kKindInterleave,
        PlacementPolicy::kGreedyBalance}) {
    for (const std::uint32_t colors : {1u, 3u, 6u, 9u}) {
      EXPECT_TRUE(is_bijection(PartitionPlan(colors, policy, 8)))
          << to_string(policy) << " C=" << colors;
    }
  }
}

TEST(PartitionPlanTest, KindInterleavePacksEqualKindsIntoRanks) {
  // Kind-major order: ranks hold same-expected-load cores, so a scatter
  // proportional to the kind weights pads (near-)nothing, while identity
  // order mixes N with 6N in the same rank.
  const PartitionPlan kind(8, PlacementPolicy::kKindInterleave, 8);
  const PartitionPlan identity(8, PlacementPolicy::kIdentity, 8);
  std::vector<std::uint64_t> bytes(kind.num_dpus());
  for (std::uint32_t t = 0; t < kind.num_dpus(); ++t) {
    bytes[t] = 1000ull * PartitionPlan::kind_weight(kind.table().triplet(t).kind());
  }
  EXPECT_LT(kind.padded_wire_bytes(bytes), identity.padded_wire_bytes(bytes));
  // Perfect packing except at kind-group boundaries: wire within 1.5x of
  // payload for the kind plan.
  const std::uint64_t payload =
      std::accumulate(bytes.begin(), bytes.end(), std::uint64_t{0});
  EXPECT_LT(static_cast<double>(kind.padded_wire_bytes(bytes)),
            1.5 * static_cast<double>(payload));
}

TEST(PartitionPlanTest, BalancedPlacementIsLoadSortedAndDeterministic) {
  const PartitionPlan plan(5, PlacementPolicy::kGreedyBalance, 4);
  std::vector<std::uint64_t> loads(plan.num_dpus());
  Xoshiro256ss rng(7);
  for (auto& l : loads) l = rng.next_below(1000);
  const auto a = plan.balanced_placement(loads);
  const auto b = plan.balanced_placement(loads);
  EXPECT_EQ(a, b);
  // DPU order = descending load.
  std::vector<std::uint64_t> by_dpu(plan.num_dpus());
  for (std::uint32_t t = 0; t < plan.num_dpus(); ++t) by_dpu[a[t]] = loads[t];
  EXPECT_TRUE(std::is_sorted(by_dpu.rbegin(), by_dpu.rend()));
}

TEST(PartitionPlanTest, SetPlacementRejectsNonBijections) {
  PartitionPlan plan(3, PlacementPolicy::kIdentity, 4);
  std::vector<std::uint32_t> dup(plan.num_dpus(), 0);
  EXPECT_THROW(plan.set_placement(dup), std::invalid_argument);
  std::vector<std::uint32_t> short_map(plan.num_dpus() - 1);
  EXPECT_THROW(plan.set_placement(short_map), std::invalid_argument);
}

TEST(PartitionPlanTest, LoadImbalanceDiagnostics) {
  EXPECT_DOUBLE_EQ(PartitionPlan::load_imbalance({}), 1.0);
  const std::vector<std::uint64_t> uniform{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(PartitionPlan::load_imbalance(uniform), 1.0);
  const std::vector<std::uint64_t> skewed{0, 0, 0, 8};
  EXPECT_DOUBLE_EQ(PartitionPlan::load_imbalance(skewed), 4.0);
}

// ---- estimator invariance under placement -----------------------------------

tc::TcConfig stress_config(std::uint64_t seed) {
  tc::TcConfig cfg;
  cfg.num_colors = 4;
  cfg.seed = seed;
  cfg.uniform_p = 0.6;              // uniform sampler engaged
  cfg.sample_capacity_edges = 500;  // reservoirs overflow (replacements)
  return cfg;
}

pim::PimSystemConfig small_banks() {
  pim::PimSystemConfig cfg;
  cfg.mram_bytes = 8ull << 20;
  cfg.dpus_per_rank = 4;  // several ranks even at small C
  return cfg;
}

double run_stream(tc::PimTriangleCounter& counter,
                  std::span<const Edge> edges) {
  const std::size_t step = edges.size() / 3;
  counter.add_edges(edges.subspan(0, step));
  counter.add_edges(edges.subspan(step, step));
  counter.add_edges(edges.subspan(2 * step));
  return counter.recount().estimate;
}

TEST(PlacementInvarianceTest, EstimateBitIdenticalAcrossPolicies) {
  // Seeded property test: the estimate must not move by a single bit under
  // any placement policy, including with sampling and reservoir overflow.
  graph::EdgeList g = graph::gen::barabasi_albert(2000, 5, 31);
  graph::gen::add_hubs(g, 2, 600, 32);
  graph::preprocess(g, 33);

  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    double identity_estimate = 0.0;
    for (const auto policy :
         {PlacementPolicy::kIdentity, PlacementPolicy::kKindInterleave,
          PlacementPolicy::kGreedyBalance}) {
      tc::TcConfig cfg = stress_config(seed);
      cfg.placement = policy;
      tc::PimTriangleCounter counter(cfg, small_banks());
      const double estimate = run_stream(counter, g.edges());
      if (policy == PlacementPolicy::kIdentity) {
        identity_estimate = estimate;
      } else {
        EXPECT_EQ(identity_estimate, estimate)
            << to_string(policy) << " seed " << seed;
      }
    }
  }
}

TEST(PlacementInvarianceTest, EstimateSurvivesArbitraryPermutationMidStream) {
  graph::EdgeList g = graph::gen::barabasi_albert(1500, 5, 41);
  graph::gen::add_hubs(g, 1, 400, 42);
  graph::preprocess(g, 43);
  const auto edges = g.edges();

  tc::PimTriangleCounter baseline(stress_config(21), small_banks());
  const double expected = run_stream(baseline, edges);

  // Same stream, but a seeded random permutation is installed (and the
  // resident samples migrated) between the batches.
  tc::TcConfig cfg = stress_config(21);
  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(edges.subspan(0, edges.size() / 3));
  counter.add_edges(
      edges.subspan(edges.size() / 3, edges.size() / 3));

  std::vector<std::uint32_t> perm(counter.plan().num_dpus());
  std::iota(perm.begin(), perm.end(), 0u);
  Xoshiro256ss rng(99);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  EXPECT_TRUE(counter.migrate_to(perm));
  EXPECT_EQ(counter.rebalances(), 1u);

  counter.add_edges(edges.subspan(2 * (edges.size() / 3)));
  EXPECT_EQ(counter.recount().estimate, expected);
}

TEST(PlacementInvarianceTest, RebalanceKeepsEstimateAndExactness) {
  graph::EdgeList g = graph::gen::barabasi_albert(1200, 6, 51);
  graph::gen::add_hubs(g, 2, 400, 52);
  graph::preprocess(g, 53);
  const TriangleCount truth = graph::reference_triangle_count(g);
  const auto edges = g.edges();
  const std::size_t half = edges.size() / 2;

  graph::EdgeList first_half;
  first_half.append(edges.subspan(0, half));

  tc::TcConfig cfg;
  cfg.num_colors = 4;
  cfg.seed = 5;
  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(edges.subspan(0, half));
  EXPECT_EQ(counter.recount().rounded(),
            graph::reference_triangle_count(first_half));
  counter.rebalance();
  counter.add_edges(edges.subspan(half));
  const tc::TcResult r = counter.recount();
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.rounded(), truth);
}

TEST(PlacementInvarianceTest, RebalanceUnderReservoirOverflow) {
  graph::EdgeList g = graph::gen::community(1500, 40, 0.5, 1200, 61);
  graph::preprocess(g, 62);
  const auto edges = g.edges();
  const std::size_t half = edges.size() / 2;

  const auto run = [&](bool rebalance_mid_stream) {
    tc::PimTriangleCounter counter(stress_config(77), small_banks());
    counter.add_edges(edges.subspan(0, half));
    if (rebalance_mid_stream) counter.rebalance();
    counter.add_edges(edges.subspan(half));
    return counter.recount();
  };
  const tc::TcResult plain = run(false);
  const tc::TcResult rebalanced = run(true);
  EXPECT_GT(plain.reservoir_overflows, 0u);
  EXPECT_EQ(plain.estimate, rebalanced.estimate);
}

// ---- migration mechanics ----------------------------------------------------

TEST(RebalanceTest, MigrationMovesSamplesWithModeledTransfers) {
  graph::EdgeList g = graph::gen::barabasi_albert(1500, 5, 71);
  graph::gen::add_hubs(g, 1, 500, 72);
  graph::preprocess(g, 73);

  tc::TcConfig cfg;
  cfg.num_colors = 4;
  cfg.seed = 9;
  cfg.placement = PlacementPolicy::kIdentity;
  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(g.edges());
  const pim::TransferStats before = counter.system().transfer_stats();

  ASSERT_TRUE(counter.rebalance());
  const pim::TransferStats after = counter.system().transfer_stats();
  // One gather (pull) of the moved samples, one scatter (push) to the new
  // banks — both modeled.
  EXPECT_EQ(after.pull_transfers, before.pull_transfers + 1);
  EXPECT_EQ(after.push_transfers, before.push_transfers + 1);
  EXPECT_GT(after.pull_payload_bytes, before.pull_payload_bytes);

  // Idempotent: the plan is already load-sorted, nothing moves again.
  EXPECT_FALSE(counter.rebalance());
  EXPECT_EQ(counter.rebalances(), 1u);
}

TEST(RebalanceTest, AutoRebalanceTriggersOnImbalanceAndCountsStayExact) {
  graph::EdgeList g = graph::gen::barabasi_albert(1500, 5, 81);
  graph::gen::add_hubs(g, 2, 500, 82);
  graph::preprocess(g, 83);
  const TriangleCount truth = graph::reference_triangle_count(g);

  tc::TcConfig cfg;
  cfg.num_colors = 4;
  cfg.seed = 3;
  cfg.rebalance_enabled = true;
  cfg.rebalance_min_gain = 1.01;
  tc::PimTriangleCounter counter(cfg, small_banks());
  const tc::TcResult r = counter.count(g);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.rounded(), truth);
  EXPECT_GE(r.rebalances, 1u);
  // A second recount must not thrash: placement is already balanced.
  const tc::TcResult again = counter.recount();
  EXPECT_EQ(again.rebalances, r.rebalances);
  EXPECT_EQ(again.rounded(), truth);
}

// ---- timing-model effects ---------------------------------------------------

TEST(PlacementTimingTest, GreedyBalanceShrinksScatterPaddingOnHubGraph) {
  graph::EdgeList g = graph::gen::barabasi_albert(3000, 5, 91);
  graph::gen::add_hubs(g, 3, 900, 92);
  graph::preprocess(g, 93);

  const auto run = [&](PlacementPolicy policy) {
    tc::TcConfig cfg;
    cfg.num_colors = 5;
    cfg.seed = 17;
    cfg.placement = policy;
    tc::PimTriangleCounter counter(cfg, small_banks());
    return counter.count(g);
  };
  const tc::TcResult identity = run(PlacementPolicy::kIdentity);
  const tc::TcResult greedy = run(PlacementPolicy::kGreedyBalance);
  EXPECT_EQ(identity.estimate, greedy.estimate);  // functional parity
  EXPECT_LT(greedy.transfers.push_wire_bytes,
            identity.transfers.push_wire_bytes);
  EXPECT_LT(greedy.transfers.push_padding(), identity.transfers.push_padding());
}

TEST(PlacementTimingTest, KindLoadHistogramFollowsTheN3N6NModel) {
  graph::EdgeList g = graph::gen::erdos_renyi(4000, 40000, 5);
  graph::preprocess(g, 6);
  tc::TcConfig cfg;
  cfg.num_colors = 5;
  cfg.seed = 2;
  tc::PimTriangleCounter counter(cfg, small_banks());
  const tc::TcResult r = counter.count(g);
  // C=5: 5 kind-1, 20 kind-2, 10 kind-3 cores.
  EXPECT_EQ(r.kind_dpus[0], 5u);
  EXPECT_EQ(r.kind_dpus[1], 20u);
  EXPECT_EQ(r.kind_dpus[2], 10u);
  const std::uint64_t total = r.kind_edges_seen[0] + r.kind_edges_seen[1] +
                              r.kind_edges_seen[2];
  EXPECT_EQ(total, r.edges_replicated);
  // Mean per-core load should follow ~N : 3N : 6N.
  const double mean1 = static_cast<double>(r.kind_edges_seen[0]) / 5.0;
  const double mean2 = static_cast<double>(r.kind_edges_seen[1]) / 20.0;
  const double mean3 = static_cast<double>(r.kind_edges_seen[2]) / 10.0;
  EXPECT_NEAR(mean2 / mean1, 3.0, 0.8);
  EXPECT_NEAR(mean3 / mean1, 6.0, 1.5);
  EXPECT_GE(r.load_imbalance, 1.0);
}

}  // namespace
}  // namespace pimtc::color
