// Tests for the fault-tolerant PIM runtime: FaultSpec parsing, FaultPlan
// determinism, injection-off bit-identity, retry / re-materialize / degrade
// recovery in tc::PimTriangleCounter, transfer-corruption detection and
// repair, MRAM bit-flip scrubbing, and the SampleMirror restore primitive.
//
// The recovery acceptance bar (ISSUE 9): whenever recovery fully
// re-materializes the lost state — transient + retry, dead bank + spare,
// corrupted transfer + checksum repair, bit flip + scrub — the estimate must
// be *bit-identical* to a fault-free run; only unrecoverable loss may
// degrade, and then coverage < 1 with the observed error inside the
// reported bound.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"
#include "pim/fault.hpp"
#include "tc/host.hpp"

namespace pimtc {
namespace {

pim::PimSystemConfig small_banks() {
  pim::PimSystemConfig cfg;
  cfg.mram_bytes = 8ull << 20;
  return cfg;
}

/// The acceptance graph family: BA preferential attachment plus planted
/// hubs, so triplet loads are skewed and a dropped triplet actually hurts.
graph::EdgeList ba_hub_graph(std::uint64_t seed) {
  graph::EdgeList g = graph::gen::barabasi_albert(1500, 6, seed);
  graph::gen::add_hubs(g, 4, 200, seed + 1);
  graph::preprocess(g, seed + 2);
  return g;
}

tc::TcConfig base_config(std::uint64_t seed = 42) {
  tc::TcConfig cfg;
  cfg.num_colors = 4;
  cfg.seed = seed;
  return cfg;
}

/// One full static session under `spec` (empty = injection off).
tc::TcResult run_with_spec(const graph::EdgeList& g, const std::string& spec,
                           std::uint32_t colors = 4) {
  tc::TcConfig cfg = base_config();
  cfg.num_colors = colors;
  cfg.fault_spec = spec;
  tc::PimTriangleCounter counter(cfg, small_banks());
  return counter.count(g);
}

// ---- spec parsing -----------------------------------------------------------

TEST(FaultSpecTest, ParsesEveryKey) {
  const pim::FaultSpec s = pim::FaultSpec::parse(
      "seed=7,launch-transient=0.25,launch-permanent=0.125,rank-outage=0.5,"
      "corrupt=0.01,bitflip=0.02,checksum=off,recovery=retry,max-retries=5,"
      "spares=3,from-step=10,until-step=20,backoff-us=100,checksum-gbps=25");
  EXPECT_EQ(s.seed, 7u);
  EXPECT_DOUBLE_EQ(s.launch_transient, 0.25);
  EXPECT_DOUBLE_EQ(s.launch_permanent, 0.125);
  EXPECT_DOUBLE_EQ(s.rank_outage, 0.5);
  EXPECT_DOUBLE_EQ(s.transfer_corrupt, 0.01);
  EXPECT_DOUBLE_EQ(s.mram_bitflip, 0.02);
  EXPECT_FALSE(s.checksums);
  EXPECT_EQ(s.recovery, pim::FaultSpec::Recovery::kRetry);
  EXPECT_STREQ(s.recovery_name(), "retry");
  EXPECT_EQ(s.max_retries, 5u);
  EXPECT_EQ(s.spare_banks, 3u);
  EXPECT_EQ(s.from_step, 10u);
  EXPECT_EQ(s.until_step, 20u);
  EXPECT_DOUBLE_EQ(s.backoff_base_s, 100e-6);
  EXPECT_DOUBLE_EQ(s.checksum_gb_s, 25.0);
}

TEST(FaultSpecTest, DefaultsAreInertRematerialize) {
  const pim::FaultSpec s = pim::FaultSpec::parse("seed=9");
  EXPECT_DOUBLE_EQ(s.launch_transient, 0.0);
  EXPECT_DOUBLE_EQ(s.launch_permanent, 0.0);
  EXPECT_DOUBLE_EQ(s.rank_outage, 0.0);
  EXPECT_DOUBLE_EQ(s.transfer_corrupt, 0.0);
  EXPECT_DOUBLE_EQ(s.mram_bitflip, 0.0);
  EXPECT_TRUE(s.checksums);
  EXPECT_EQ(s.recovery, pim::FaultSpec::Recovery::kRematerialize);
}

TEST(FaultSpecTest, RejectsMalformedSpecsNamingTheKey) {
  const auto expect_bad = [](const std::string& spec,
                             const std::string& needle) {
    try {
      (void)pim::FaultSpec::parse(spec);
      FAIL() << "expected std::invalid_argument for '" << spec << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_bad("", "empty");
  expect_bad("bogus=1", "bogus");
  expect_bad("launch-transient", "key=value");
  expect_bad("launch-transient=1.5", "launch-transient");
  expect_bad("corrupt=-0.1", "corrupt");
  expect_bad("seed=abc", "seed");
  expect_bad("checksum=maybe", "checksum");
  expect_bad("recovery=pray", "recovery");
  expect_bad("max-retries=99", "max-retries");
  expect_bad("from-step=5,until-step=5", "from-step");
}

// ---- plan determinism -------------------------------------------------------

TEST(FaultPlanTest, DrawsArePureFunctionsOfSeedStepUnit) {
  const pim::FaultSpec spec = pim::FaultSpec::parse("seed=11,corrupt=0.3");
  const pim::FaultPlan a(spec);
  const pim::FaultPlan b(spec);
  int fired = 0;
  for (std::uint64_t step = 0; step < 200; ++step) {
    for (std::uint32_t dpu = 0; dpu < 8; ++dpu) {
      EXPECT_EQ(a.transfer_corrupt(step, dpu), b.transfer_corrupt(step, dpu));
      EXPECT_EQ(a.corrupt_bit(step, dpu, 4096), b.corrupt_bit(step, dpu, 4096));
      fired += a.transfer_corrupt(step, dpu) ? 1 : 0;
    }
  }
  // ~30% of 1600 draws; wildly outside would mean a broken uniform draw.
  EXPECT_GT(fired, 300);
  EXPECT_LT(fired, 700);

  pim::FaultSpec other = spec;
  other.seed = 12;
  const pim::FaultPlan c(other);
  bool differs = false;
  for (std::uint64_t step = 0; step < 200 && !differs; ++step) {
    differs = a.transfer_corrupt(step, 0) != c.transfer_corrupt(step, 0);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, StepWindowGatesEveryEvent) {
  const pim::FaultPlan plan(
      pim::FaultSpec::parse("seed=3,launch-transient=1,from-step=5,"
                            "until-step=8"));
  for (std::uint64_t step = 0; step < 16; ++step) {
    EXPECT_EQ(plan.launch_transient(step, 0), step >= 5 && step < 8) << step;
  }
  // Rate 1 fires on every in-window draw; rate 0 never fires.
  const pim::FaultPlan off(pim::FaultSpec::parse("seed=3"));
  for (std::uint64_t step = 0; step < 64; ++step) {
    EXPECT_FALSE(off.launch_transient(step, 0));
    EXPECT_FALSE(off.launch_permanent(step, 0));
    EXPECT_FALSE(off.rank_outage(step, 0));
    EXPECT_FALSE(off.transfer_corrupt(step, 0));
    EXPECT_FALSE(off.mram_bitflip(step, 0));
  }
}

// ---- injection-off bit-identity ---------------------------------------------

TEST(FaultInjectionTest, InertPlanIsBitIdenticalToNoPlan) {
  // An armed plan whose rates are all zero must not perturb the estimate,
  // the exactness verdict, or the modeled phase times in any config.
  const graph::EdgeList g = ba_hub_graph(21);
  for (const std::uint32_t colors : {3u, 4u, 5u}) {
    const tc::TcResult off = run_with_spec(g, "", colors);
    // checksum=off: not even the modeled checksum detection cost is
    // charged, so the phase times match to the bit as well.
    const tc::TcResult inert =
        run_with_spec(g, "seed=9,checksum=off", colors);
    EXPECT_EQ(inert.estimate, off.estimate) << colors;
    EXPECT_EQ(inert.exact, off.exact) << colors;
    EXPECT_EQ(inert.times.setup_s, off.times.setup_s) << colors;
    EXPECT_EQ(inert.times.sample_creation_s, off.times.sample_creation_s)
        << colors;
    EXPECT_EQ(inert.times.count_s, off.times.count_s) << colors;
    EXPECT_TRUE(inert.faults.injected);
    EXPECT_FALSE(inert.faults.degraded);
    EXPECT_FALSE(off.faults.injected);

    // With checksums on, the estimate is still untouched; only the modeled
    // detection cost appears.
    const tc::TcResult guarded = run_with_spec(g, "seed=9", colors);
    EXPECT_EQ(guarded.estimate, off.estimate) << colors;
    EXPECT_GT(guarded.faults.checksum_bytes, 0u) << colors;
    EXPECT_GE(guarded.times.count_s, off.times.count_s) << colors;
  }
}

// ---- recovery ---------------------------------------------------------------

TEST(FaultRecoveryTest, TransientRetriesAreBitIdentical) {
  const graph::EdgeList g = ba_hub_graph(22);
  const tc::TcResult clean = run_with_spec(g, "");
  const tc::TcResult faulty =
      run_with_spec(g, "seed=5,launch-transient=0.08");
  EXPECT_EQ(faulty.estimate, clean.estimate);
  EXPECT_EQ(faulty.exact, clean.exact);
  EXPECT_FALSE(faulty.faults.degraded);
  EXPECT_GT(faulty.faults.launch_transients, 0u);
  EXPECT_GE(faulty.faults.launch_retries, faulty.faults.launch_transients);
  EXPECT_GT(faulty.faults.recovery_s, 0.0);  // backoff is charged
  EXPECT_EQ(faulty.faults.dead_dpus, 0u);
}

TEST(FaultRecoveryTest, DeadBankRematerializesBitIdentical) {
  const graph::EdgeList g = ba_hub_graph(23);
  const tc::TcResult clean = run_with_spec(g, "");
  const tc::TcResult faulty =
      run_with_spec(g, "seed=5,launch-permanent=0.05,spares=32");
  EXPECT_EQ(faulty.estimate, clean.estimate);
  EXPECT_EQ(faulty.exact, clean.exact);
  EXPECT_FALSE(faulty.faults.degraded);
  EXPECT_GT(faulty.faults.dead_dpus, 0u);
  EXPECT_EQ(faulty.faults.rematerializations, faulty.faults.dead_dpus);
  EXPECT_EQ(faulty.faults.migrations, faulty.faults.rematerializations);
  EXPECT_EQ(faulty.faults.dropped_triplets, 0u);
  EXPECT_GT(faulty.faults.recovery_s, 0.0);  // restore transfers are charged
}

TEST(FaultRecoveryTest, ChurnedSessionRematerializesBitIdentical) {
  // Same property on a fully-dynamic session: inserts, a recount, deletions
  // of a quarter of the edges, then the faulted recount.
  const graph::EdgeList g = ba_hub_graph(24);
  std::vector<EdgeUpdate> deletes;
  for (std::size_t i = 0; i < g.num_edges(); i += 4) {
    deletes.push_back(delete_of(g[i]));
  }
  const auto run = [&](const std::string& spec) {
    tc::TcConfig cfg = base_config();
    cfg.fault_spec = spec;
    tc::PimTriangleCounter counter(cfg, small_banks());
    counter.add_edges(g.edges());
    (void)counter.recount();
    counter.apply(deletes);
    return counter.recount();
  };
  const tc::TcResult clean = run("");
  const tc::TcResult faulty = run("seed=6,launch-permanent=0.1,spares=32");
  EXPECT_EQ(faulty.estimate, clean.estimate);
  EXPECT_GT(faulty.faults.rematerializations, 0u);
  EXPECT_FALSE(faulty.faults.degraded);
}

TEST(FaultRecoveryTest, RankOutageRecoversThroughSpares) {
  // Kill whole ranks (8 DPUs each here); generous spares must absorb them
  // with no estimate change.
  const graph::EdgeList g = ba_hub_graph(25);
  pim::PimSystemConfig sys = small_banks();
  sys.dpus_per_rank = 8;
  tc::TcConfig cfg = base_config();
  tc::PimTriangleCounter clean_counter(cfg, sys);
  const tc::TcResult clean = clean_counter.count(g);

  cfg.fault_spec = "seed=19,rank-outage=0.25,spares=64";
  tc::PimTriangleCounter faulty_counter(cfg, sys);
  const tc::TcResult faulty = faulty_counter.count(g);
  ASSERT_GT(faulty.faults.rank_outages, 0u) << "seed drew no outage; pick "
                                               "another seed";
  EXPECT_EQ(faulty.estimate, clean.estimate);
  EXPECT_FALSE(faulty.faults.degraded);
  EXPECT_GE(faulty.faults.dead_dpus, 8u);  // at least one whole rank
}

TEST(FaultRecoveryTest, DegradedModeStaysWithinReportedBound) {
  // No spares and a permanent-fault hammer: triplets are dropped, the
  // estimate is reweighted by surviving coverage, and the realized error
  // must sit inside the widened bound the report advertises.
  const graph::EdgeList g = ba_hub_graph(26);
  const auto truth = static_cast<double>(graph::reference_triangle_count(g));
  const tc::TcResult r =
      run_with_spec(g, "seed=8,launch-permanent=0.15,recovery=degrade");
  ASSERT_GT(r.faults.dropped_triplets, 0u);
  EXPECT_TRUE(r.faults.degraded);
  EXPECT_FALSE(r.exact);
  EXPECT_LT(r.faults.coverage, 1.0);
  EXPECT_GT(r.faults.coverage, 0.0);
  EXPECT_GT(r.faults.error_bound, 0.0);
  const double rel_err = std::abs(r.estimate - truth) / truth;
  EXPECT_LE(rel_err, r.faults.error_bound)
      << "estimate " << r.estimate << " truth " << truth << " coverage "
      << r.faults.coverage;
}

TEST(FaultRecoveryTest, RetryPolicyDropsDeadBanksInsteadOfMigrating) {
  const graph::EdgeList g = ba_hub_graph(27);
  const tc::TcResult r =
      run_with_spec(g, "seed=8,launch-permanent=0.1,recovery=retry");
  ASSERT_GT(r.faults.dead_dpus, 0u);
  EXPECT_EQ(r.faults.rematerializations, 0u);
  EXPECT_EQ(r.faults.dropped_triplets, r.faults.dead_dpus);
  EXPECT_TRUE(r.faults.degraded);
}

// ---- transfer corruption ----------------------------------------------------

TEST(TransferCorruptionTest, ChecksummedRepairIsBitIdentical) {
  const graph::EdgeList g = ba_hub_graph(28);
  const tc::TcResult clean = run_with_spec(g, "");
  const tc::TcResult faulty = run_with_spec(g, "seed=4,corrupt=0.08");
  ASSERT_GT(faulty.faults.transfer_corruptions, 0u);
  EXPECT_EQ(faulty.estimate, clean.estimate);
  EXPECT_EQ(faulty.exact, clean.exact);
  EXPECT_GE(faulty.faults.transfer_retries,
            faulty.faults.transfer_corruptions);
  EXPECT_GT(faulty.faults.checksum_bytes, 0u);
  EXPECT_GT(faulty.faults.detection_s, 0.0);
  EXPECT_FALSE(faulty.faults.degraded);
}

TEST(TransferCorruptionTest, UncheckedCorruptionGoesUndetected) {
  // checksum=off: the same wire corruption reaches the machine silently —
  // no detection counters, no repair cost.  (The estimate may or may not
  // move; silence is the property under test.)
  const graph::EdgeList g = ba_hub_graph(28);
  const tc::TcResult r = run_with_spec(g, "seed=4,corrupt=0.01,checksum=off");
  EXPECT_EQ(r.faults.transfer_corruptions, 0u);
  EXPECT_EQ(r.faults.transfer_retries, 0u);
  EXPECT_EQ(r.faults.checksum_bytes, 0u);
  EXPECT_EQ(r.faults.detection_s, 0.0);
}

// ---- MRAM bit flips ---------------------------------------------------------

TEST(BitflipTest, ScrubRestoreIsBitIdentical) {
  const graph::EdgeList g = ba_hub_graph(29);
  const tc::TcResult clean = run_with_spec(g, "");
  const tc::TcResult faulty = run_with_spec(g, "seed=2,bitflip=0.2");
  ASSERT_GT(faulty.faults.mram_bitflips, 0u);
  EXPECT_EQ(faulty.faults.sample_restores, faulty.faults.mram_bitflips);
  EXPECT_EQ(faulty.estimate, clean.estimate);
  EXPECT_EQ(faulty.exact, clean.exact);
  EXPECT_FALSE(faulty.faults.degraded);
  EXPECT_GT(faulty.faults.detection_s, 0.0);  // scrub cost is charged
}

TEST(BitflipTest, WithoutChecksumsFlipsAreCountedButNotScrubbed) {
  const graph::EdgeList g = ba_hub_graph(29);
  const tc::TcResult r = run_with_spec(g, "seed=2,bitflip=0.2,checksum=off");
  EXPECT_GT(r.faults.mram_bitflips, 0u);
  EXPECT_EQ(r.faults.sample_restores, 0u);
  EXPECT_FALSE(r.faults.degraded);  // the sample is corrupt, not lost
}

// ---- SampleMirror restore primitive (ISSUE 9 satellite) ---------------------

TEST(RestoreBankTest, RestoreIsBitIdenticalOnInsertOnlySession) {
  // Mid-session, wipe every bank's resident state and restore it from the
  // host mirrors; the continued session must match an uninterrupted one.
  const graph::EdgeList g = ba_hub_graph(30);
  const std::size_t half = g.num_edges() / 2;

  tc::TcConfig cfg = base_config();
  tc::PimTriangleCounter uninterrupted(cfg, small_banks());
  uninterrupted.add_edges(g.edges());
  const tc::TcResult want = uninterrupted.recount();

  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(g.edges().subspan(0, half));
  (void)counter.recount();
  counter.ensure_mirrors();
  const std::uint32_t triplets = counter.triplets().num_triplets();
  for (std::uint32_t t = 0; t < triplets; ++t) {
    ASSERT_FALSE(counter.triplet_lost(t));
    counter.restore_bank(t);
  }
  counter.add_edges(g.edges().subspan(half));
  const tc::TcResult got = counter.recount();
  EXPECT_EQ(got.estimate, want.estimate);
  EXPECT_EQ(got.exact, want.exact);
}

TEST(RestoreBankTest, RestoreIsBitIdenticalOnChurnedSession) {
  const graph::EdgeList g = ba_hub_graph(31);
  std::vector<EdgeUpdate> churn;
  for (std::size_t i = 0; i < g.num_edges(); i += 5) {
    churn.push_back(delete_of(g[i]));
  }
  tc::TcConfig cfg = base_config();

  tc::PimTriangleCounter uninterrupted(cfg, small_banks());
  uninterrupted.add_edges(g.edges());
  uninterrupted.apply(churn);
  const tc::TcResult want = uninterrupted.recount();

  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(g.edges());
  (void)counter.recount();
  counter.ensure_mirrors();
  counter.restore_bank(0);
  counter.restore_bank(counter.triplets().num_triplets() - 1);
  counter.apply(churn);
  const tc::TcResult got = counter.recount();
  EXPECT_EQ(got.estimate, want.estimate);
}

TEST(RestoreBankTest, PreconditionsAreEnforced) {
  tc::TcConfig cfg = base_config();
  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(ba_hub_graph(32).edges());
  EXPECT_THROW(counter.restore_bank(1u << 20), std::invalid_argument);
  EXPECT_THROW(counter.restore_bank(0), std::logic_error);  // no mirrors yet
  counter.ensure_mirrors();
  EXPECT_NO_THROW(counter.restore_bank(0));
}

// ---- engine plumbing --------------------------------------------------------

TEST(FaultEngineTest, FaultSpecFlowsThroughEngineConfig) {
  graph::EdgeList g = ba_hub_graph(33);
  engine::EngineConfig cfg;
  cfg.num_colors = 4;
  cfg.fault_spec = "seed=5,launch-transient=0.08";
  auto clean_cfg = cfg;
  clean_cfg.fault_spec.clear();

  const engine::CountReport clean =
      engine::make_engine("pim", clean_cfg)->count(g);
  const engine::CountReport faulty = engine::make_engine("pim", cfg)->count(g);
  EXPECT_TRUE(faulty.faults.injected);
  EXPECT_GT(faulty.faults.launch_transients, 0u);
  EXPECT_EQ(faulty.estimate, clean.estimate);
  EXPECT_FALSE(clean.faults.injected);
}

TEST(FaultEngineTest, MalformedSpecIsRejectedAtValidation) {
  engine::EngineConfig cfg;
  cfg.num_colors = 4;
  cfg.fault_spec = "bogus=1";
  EXPECT_THROW(engine::make_engine("pim", cfg), std::invalid_argument);
  // Backend-independent: validation runs before the backend is built.
  EXPECT_THROW(engine::make_engine("cpu", cfg), std::invalid_argument);
}

}  // namespace
}  // namespace pimtc
