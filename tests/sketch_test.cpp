// Tests for src/sketch: Misra-Gries guarantees, reservoir uniformity and
// unbiasedness, uniform sampler statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/prng.hpp"
#include "sketch/misra_gries.hpp"
#include "sketch/reservoir.hpp"
#include "sketch/uniform_sampler.hpp"

namespace pimtc::sketch {
namespace {

// ---- Misra-Gries --------------------------------------------------------------

TEST(MisraGriesTest, RejectsZeroCapacity) {
  EXPECT_THROW(MisraGries(0), std::invalid_argument);
}

TEST(MisraGriesTest, TracksExactlyWhenUnderCapacity) {
  MisraGries mg(10);
  for (int rep = 0; rep < 5; ++rep) {
    for (NodeId u = 0; u < 4; ++u) mg.update(u);
  }
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(mg.estimate(u), 5u);
  EXPECT_EQ(mg.estimate(99), 0u);
}

TEST(MisraGriesTest, NeverExceedsCapacity) {
  MisraGries mg(8);
  Xoshiro256ss rng(1);
  for (int i = 0; i < 10000; ++i) {
    mg.update(static_cast<NodeId>(rng.next_below(1000)));
    EXPECT_LE(mg.size(), 8u);
  }
}

TEST(MisraGriesTest, HeavyHitterGuarantee) {
  // Any node with frequency > n/K must be present at the end of the stream.
  constexpr std::size_t kK = 16;
  constexpr int kStream = 32000;
  MisraGries mg(kK);
  Xoshiro256ss rng(7);
  // Node 7 gets 20% of the stream (far above 1/16); the rest is uniform
  // noise over a large id space.
  int hot_count = 0;
  for (int i = 0; i < kStream; ++i) {
    if (rng.next_bernoulli(0.2)) {
      mg.update(7);
      ++hot_count;
    } else {
      mg.update(static_cast<NodeId>(1000 + rng.next_below(100000)));
    }
  }
  EXPECT_GT(mg.estimate(7), 0u) << "heavy hitter lost";
  // Underestimation bound: true - estimate <= updates / K.
  EXPECT_GE(mg.estimate(7) + mg.updates() / kK,
            static_cast<std::uint64_t>(hot_count));
}

TEST(MisraGriesTest, UnderestimatesOnly) {
  MisraGries mg(4);
  std::map<NodeId, std::uint64_t> truth;
  Xoshiro256ss rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(64));
    mg.update(u);
    ++truth[u];
  }
  for (const auto& [node, estimate] : mg.entries()) {
    EXPECT_LE(estimate, truth[node]);
  }
}

TEST(MisraGriesTest, MergePreservesHeavyHitters) {
  constexpr std::size_t kK = 8;
  MisraGries a(kK);
  MisraGries b(kK);
  Xoshiro256ss rng(9);
  // Node 5 is hot in both halves.
  for (int i = 0; i < 8000; ++i) {
    MisraGries& target = i % 2 == 0 ? a : b;
    if (rng.next_bernoulli(0.3)) {
      target.update(5);
    } else {
      target.update(static_cast<NodeId>(100 + rng.next_below(50000)));
    }
  }
  a.merge(b);
  EXPECT_LE(a.size(), kK);
  const auto top = a.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 5u);
}

TEST(MisraGriesTest, TopOrdersByFrequency) {
  MisraGries mg(16);
  for (int i = 0; i < 30; ++i) mg.update(3);
  for (int i = 0; i < 20; ++i) mg.update(1);
  for (int i = 0; i < 10; ++i) mg.update(2);
  const auto top = mg.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 1u);
  EXPECT_EQ(top[2], 2u);
}

TEST(MisraGriesTest, TopTruncatesAndTiesBreakBySmallerId) {
  MisraGries mg(16);
  mg.update(9);
  mg.update(4);  // tie at frequency 1
  const auto top = mg.top(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 4u);
  EXPECT_EQ(top[1], 9u);
}

TEST(MisraGriesTest, UpdateEdgeCountsBothEndpoints) {
  MisraGries mg(8);
  mg.update_edge({1, 2});
  mg.update_edge({1, 3});
  EXPECT_EQ(mg.estimate(1), 2u);
  EXPECT_EQ(mg.estimate(2), 1u);
  EXPECT_EQ(mg.updates(), 4u);
}

// ---- reservoir -----------------------------------------------------------------

TEST(ReservoirTest, KeepsEverythingUnderCapacity) {
  ReservoirSampler<int> r(100, 1);
  for (int i = 0; i < 80; ++i) r.offer(i);
  ASSERT_EQ(r.items().size(), 80u);
  for (int i = 0; i < 80; ++i) EXPECT_EQ(r.items()[i], i);
}

TEST(ReservoirTest, NeverExceedsCapacity) {
  ReservoirSampler<int> r(50, 2);
  for (int i = 0; i < 5000; ++i) {
    r.offer(i);
    EXPECT_LE(r.items().size(), 50u);
  }
  EXPECT_EQ(r.seen(), 5000u);
}

TEST(ReservoirTest, InclusionProbabilityIsUniform) {
  // Every item must survive with probability M/t.  Run many independent
  // reservoirs and check per-item inclusion frequency.
  constexpr std::uint64_t kM = 20;
  constexpr int kStream = 200;
  constexpr int kTrials = 3000;
  std::vector<int> included(kStream, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    ReservoirSampler<int> r(kM, 1000 + trial);
    for (int i = 0; i < kStream; ++i) r.offer(i);
    for (const int item : r.items()) ++included[item];
  }
  const double expected = kTrials * static_cast<double>(kM) / kStream;
  for (int i = 0; i < kStream; ++i) {
    EXPECT_NEAR(included[i], expected, expected * 0.30)
        << "item " << i << " over/under-sampled";
  }
}

TEST(ReservoirTest, PolicyCountsSeenAndStored) {
  ReservoirPolicy p(10, 3);
  for (int i = 0; i < 7; ++i) (void)p.offer();
  EXPECT_EQ(p.seen(), 7u);
  EXPECT_EQ(p.stored(), 7u);
  for (int i = 0; i < 13; ++i) (void)p.offer();
  EXPECT_EQ(p.seen(), 20u);
  EXPECT_EQ(p.stored(), 10u);
}

TEST(ReservoirTest, DecisionsAreValid) {
  ReservoirPolicy p(5, 4);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto d = p.offer();
    EXPECT_EQ(d.action, ReservoirDecision::Action::kAppend);
    EXPECT_EQ(d.slot, i);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto d = p.offer();
    EXPECT_NE(d.action, ReservoirDecision::Action::kAppend);
    if (d.action == ReservoirDecision::Action::kReplace) {
      EXPECT_LT(d.slot, 5u);
    }
  }
}

TEST(ReservoirTest, ReplacementRateMatchesTheory) {
  // P(replace at step t) = M/t; total replacements over (M, N] concentrate
  // around M * ln(N/M).
  constexpr std::uint64_t kM = 64;
  constexpr std::uint64_t kN = 6400;
  int replaced = 0;
  ReservoirPolicy p(kM, 5);
  for (std::uint64_t i = 0; i < kN; ++i) {
    if (p.offer().action == ReservoirDecision::Action::kReplace) ++replaced;
  }
  const double expected = kM * std::log(static_cast<double>(kN) / kM);
  EXPECT_NEAR(replaced, expected, expected * 0.25);
}

// ---- uniform sampler -------------------------------------------------------------

TEST(UniformSamplerTest, KeepAllAtPOne) {
  UniformSampler s(1.0, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(s.keep(Edge{static_cast<NodeId>(i), static_cast<NodeId>(i + 1)}));
  }
  EXPECT_EQ(s.kept(), 100u);
  EXPECT_DOUBLE_EQ(s.correction(), 1.0);
}

TEST(UniformSamplerTest, KeepRateConverges) {
  for (const double p : {0.5, 0.25, 0.1, 0.01}) {
    UniformSampler s(p, 77);
    const int n = 200000;
    int kept = 0;
    for (int i = 0; i < n; ++i) {
      kept += s.keep(Edge{1, 2});
    }
    EXPECT_NEAR(static_cast<double>(kept) / n, p, 0.05 * std::max(p, 0.02))
        << "p = " << p;
    EXPECT_DOUBLE_EQ(s.correction(), 1.0 / (p * p * p));
  }
}

TEST(UniformSamplerTest, DeterministicPerSeed) {
  UniformSampler a(0.3, 5);
  UniformSampler b(0.3, 5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.keep(Edge{1, 2}), b.keep(Edge{1, 2}));
  }
}

}  // namespace
}  // namespace pimtc::sketch
