// Tests for src/sketch: Misra-Gries guarantees, reservoir uniformity and
// unbiasedness, uniform sampler statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/prng.hpp"
#include "sketch/misra_gries.hpp"
#include "sketch/reservoir.hpp"
#include "sketch/uniform_sampler.hpp"

namespace pimtc::sketch {
namespace {

// ---- Misra-Gries --------------------------------------------------------------

TEST(MisraGriesTest, RejectsZeroCapacity) {
  EXPECT_THROW(MisraGries(0), std::invalid_argument);
}

TEST(MisraGriesTest, TracksExactlyWhenUnderCapacity) {
  MisraGries mg(10);
  for (int rep = 0; rep < 5; ++rep) {
    for (NodeId u = 0; u < 4; ++u) mg.update(u);
  }
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(mg.estimate(u), 5u);
  EXPECT_EQ(mg.estimate(99), 0u);
}

TEST(MisraGriesTest, NeverExceedsCapacity) {
  MisraGries mg(8);
  Xoshiro256ss rng(1);
  for (int i = 0; i < 10000; ++i) {
    mg.update(static_cast<NodeId>(rng.next_below(1000)));
    EXPECT_LE(mg.size(), 8u);
  }
}

TEST(MisraGriesTest, HeavyHitterGuarantee) {
  // Any node with frequency > n/K must be present at the end of the stream.
  constexpr std::size_t kK = 16;
  constexpr int kStream = 32000;
  MisraGries mg(kK);
  Xoshiro256ss rng(7);
  // Node 7 gets 20% of the stream (far above 1/16); the rest is uniform
  // noise over a large id space.
  int hot_count = 0;
  for (int i = 0; i < kStream; ++i) {
    if (rng.next_bernoulli(0.2)) {
      mg.update(7);
      ++hot_count;
    } else {
      mg.update(static_cast<NodeId>(1000 + rng.next_below(100000)));
    }
  }
  EXPECT_GT(mg.estimate(7), 0u) << "heavy hitter lost";
  // Underestimation bound: true - estimate <= updates / K.
  EXPECT_GE(mg.estimate(7) + mg.updates() / kK,
            static_cast<std::uint64_t>(hot_count));
}

TEST(MisraGriesTest, UnderestimatesOnly) {
  MisraGries mg(4);
  std::map<NodeId, std::uint64_t> truth;
  Xoshiro256ss rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(64));
    mg.update(u);
    ++truth[u];
  }
  for (const auto& [node, estimate] : mg.entries()) {
    EXPECT_LE(estimate, truth[node]);
  }
}

TEST(MisraGriesTest, MergePreservesHeavyHitters) {
  constexpr std::size_t kK = 8;
  MisraGries a(kK);
  MisraGries b(kK);
  Xoshiro256ss rng(9);
  // Node 5 is hot in both halves.
  for (int i = 0; i < 8000; ++i) {
    MisraGries& target = i % 2 == 0 ? a : b;
    if (rng.next_bernoulli(0.3)) {
      target.update(5);
    } else {
      target.update(static_cast<NodeId>(100 + rng.next_below(50000)));
    }
  }
  a.merge(b);
  EXPECT_LE(a.size(), kK);
  const auto top = a.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 5u);
}

TEST(MisraGriesTest, TopOrdersByFrequency) {
  MisraGries mg(16);
  for (int i = 0; i < 30; ++i) mg.update(3);
  for (int i = 0; i < 20; ++i) mg.update(1);
  for (int i = 0; i < 10; ++i) mg.update(2);
  const auto top = mg.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 1u);
  EXPECT_EQ(top[2], 2u);
}

TEST(MisraGriesTest, TopTruncatesAndTiesBreakBySmallerId) {
  MisraGries mg(16);
  mg.update(9);
  mg.update(4);  // tie at frequency 1
  const auto top = mg.top(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 4u);
  EXPECT_EQ(top[1], 9u);
}

TEST(MisraGriesTest, UpdateEdgeCountsBothEndpoints) {
  MisraGries mg(8);
  mg.update_edge({1, 2});
  mg.update_edge({1, 3});
  EXPECT_EQ(mg.estimate(1), 2u);
  EXPECT_EQ(mg.estimate(2), 1u);
  EXPECT_EQ(mg.updates(), 4u);
}

// ---- reservoir -----------------------------------------------------------------

TEST(ReservoirTest, KeepsEverythingUnderCapacity) {
  ReservoirSampler<int> r(100, 1);
  for (int i = 0; i < 80; ++i) r.offer(i);
  ASSERT_EQ(r.items().size(), 80u);
  for (int i = 0; i < 80; ++i) EXPECT_EQ(r.items()[i], i);
}

TEST(ReservoirTest, NeverExceedsCapacity) {
  ReservoirSampler<int> r(50, 2);
  for (int i = 0; i < 5000; ++i) {
    r.offer(i);
    EXPECT_LE(r.items().size(), 50u);
  }
  EXPECT_EQ(r.seen(), 5000u);
}

TEST(ReservoirTest, InclusionProbabilityIsUniform) {
  // Every item must survive with probability M/t.  Run many independent
  // reservoirs and check per-item inclusion frequency.
  constexpr std::uint64_t kM = 20;
  constexpr int kStream = 200;
  constexpr int kTrials = 3000;
  std::vector<int> included(kStream, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    ReservoirSampler<int> r(kM, 1000 + trial);
    for (int i = 0; i < kStream; ++i) r.offer(i);
    for (const int item : r.items()) ++included[item];
  }
  const double expected = kTrials * static_cast<double>(kM) / kStream;
  for (int i = 0; i < kStream; ++i) {
    EXPECT_NEAR(included[i], expected, expected * 0.30)
        << "item " << i << " over/under-sampled";
  }
}

TEST(ReservoirTest, PolicyCountsSeenAndStored) {
  ReservoirPolicy p(10, 3);
  for (int i = 0; i < 7; ++i) (void)p.offer();
  EXPECT_EQ(p.seen(), 7u);
  EXPECT_EQ(p.stored(), 7u);
  for (int i = 0; i < 13; ++i) (void)p.offer();
  EXPECT_EQ(p.seen(), 20u);
  EXPECT_EQ(p.stored(), 10u);
}

TEST(ReservoirTest, DecisionsAreValid) {
  ReservoirPolicy p(5, 4);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto d = p.offer();
    EXPECT_EQ(d.action, ReservoirDecision::Action::kAppend);
    EXPECT_EQ(d.slot, i);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto d = p.offer();
    EXPECT_NE(d.action, ReservoirDecision::Action::kAppend);
    if (d.action == ReservoirDecision::Action::kReplace) {
      EXPECT_LT(d.slot, 5u);
    }
  }
}

TEST(ReservoirTest, ReplacementRateMatchesTheory) {
  // P(replace at step t) = M/t; total replacements over (M, N] concentrate
  // around M * ln(N/M).
  constexpr std::uint64_t kM = 64;
  constexpr std::uint64_t kN = 6400;
  int replaced = 0;
  ReservoirPolicy p(kM, 5);
  for (std::uint64_t i = 0; i < kN; ++i) {
    if (p.offer().action == ReservoirDecision::Action::kReplace) ++replaced;
  }
  const double expected = kM * std::log(static_cast<double>(kN) / kM);
  EXPECT_NEAR(replaced, expected, expected * 0.25);
}

// ---- batched reservoir staging ---------------------------------------------------

TEST(ReservoirStagingTest, MatchesPerItemApplicationExactly) {
  // Applying the staged image (append run + folded replacement runs) must
  // reproduce the per-item reference reservoir bit for bit: same policy
  // seed, same offers, same final slots.
  constexpr std::uint64_t kM = 32;
  constexpr int kStream = 500;
  ReservoirSampler<int> reference(kM, 99);
  ReservoirPolicy policy(kM, 99);
  ReservoirStaging<int> staging;
  std::vector<int> applied(kM, -1);

  int next = 0;
  for (int batch = 0; batch < 5; ++batch) {
    staging.begin(policy.stored());
    for (int i = 0; i < kStream / 5; ++i) {
      reference.offer(next);
      staging.stage(policy, next);
      ++next;
    }
    // Flush: contiguous appends, then coalesced replacement runs.
    std::copy(staging.appends().begin(), staging.appends().end(),
              applied.begin() + static_cast<std::ptrdiff_t>(staging.base_slot()));
    staging.for_each_replace_run(
        [&](std::uint64_t first_slot, const int* items, std::size_t n) {
          for (std::size_t k = 0; k < n; ++k) {
            applied[static_cast<std::size_t>(first_slot) + k] = items[k];
          }
        });
  }

  ASSERT_EQ(reference.items().size(), kM);
  for (std::size_t s = 0; s < kM; ++s) {
    EXPECT_EQ(applied[s], reference.items()[s]) << "slot " << s;
  }
}

TEST(ReservoirStagingTest, ReplaceRunsAreSortedDisjointAndDeduplicated) {
  // Fill the reservoir in a first batch so a second batch's replacements
  // target prior-batch slots and really land in the replacement image.
  ReservoirPolicy policy(16, 7);
  ReservoirStaging<int> staging;
  staging.begin(policy.stored());
  for (int i = 0; i < 16; ++i) staging.stage(policy, i);

  staging.begin(policy.stored());  // base 16: appends stay empty
  for (int i = 16; i < 2000; ++i) staging.stage(policy, i);
  EXPECT_TRUE(staging.appends().empty());
  EXPECT_GT(staging.replace_count(), 0u);

  std::uint64_t last_end = 0;
  bool first = true;
  std::uint64_t total = 0;
  staging.for_each_replace_run(
      [&](std::uint64_t first_slot, const int*, std::size_t n) {
        ASSERT_GT(n, 0u);
        // Runs are maximal: consecutive runs are separated by a gap.
        if (!first) EXPECT_GT(first_slot, last_end + 1);
        EXPECT_LE(first_slot + n, 16u);
        last_end = first_slot + n - 1;
        first = false;
        total += n;
      });
  EXPECT_EQ(total, staging.replace_count());
  EXPECT_LE(total, 16u);  // folded: at most one record per slot
}

TEST(ReservoirStagingTest, ReusedAcrossBatchesWithoutReallocating) {
  ReservoirPolicy policy(8, 11);
  ReservoirStaging<int> staging;
  staging.begin(policy.stored());
  for (int i = 0; i < 1000; ++i) staging.stage(policy, i);
  (void)staging.staged_items();
  const std::size_t append_cap = staging.appends().capacity();

  staging.begin(policy.stored());
  EXPECT_TRUE(staging.empty());
  EXPECT_EQ(staging.appends().capacity(), append_cap)
      << "begin() must keep buffer capacity (persistent staging)";
  for (int i = 0; i < 100; ++i) staging.stage(policy, i);
  EXPECT_EQ(staging.appends().capacity(), append_cap);
}

TEST(ReservoirStagingTest, ReplaceOfSameBatchAppendRewritesInPlace) {
  // Fill a tiny reservoir well past capacity inside ONE batch: every
  // replacement lands on a slot appended in the same batch and must fold
  // into the append image instead of emitting a replacement record.
  ReservoirPolicy policy(4, 13);
  ReservoirStaging<int> staging;
  staging.begin(policy.stored());  // base 0
  for (int i = 0; i < 400; ++i) staging.stage(policy, i);
  EXPECT_EQ(staging.appends().size(), 4u);
  EXPECT_EQ(staging.replace_count(), 0u);

  // Reference: identical policy applied item-by-item.
  ReservoirSampler<int> reference(4, 13);
  for (int i = 0; i < 400; ++i) reference.offer(i);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(staging.appends()[s], reference.items()[s]);
  }
}

// ---- uniform sampler -------------------------------------------------------------

TEST(UniformSamplerTest, KeepAllAtPOne) {
  UniformSampler s(1.0, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(s.keep(Edge{static_cast<NodeId>(i), static_cast<NodeId>(i + 1)}));
  }
  EXPECT_EQ(s.kept(), 100u);
  EXPECT_DOUBLE_EQ(s.correction(), 1.0);
}

TEST(UniformSamplerTest, KeepRateConverges) {
  for (const double p : {0.5, 0.25, 0.1, 0.01}) {
    UniformSampler s(p, 77);
    const int n = 200000;
    int kept = 0;
    for (int i = 0; i < n; ++i) {
      kept += s.keep(Edge{1, 2});
    }
    EXPECT_NEAR(static_cast<double>(kept) / n, p, 0.05 * std::max(p, 0.02))
        << "p = " << p;
    EXPECT_DOUBLE_EQ(s.correction(), 1.0 / (p * p * p));
  }
}

TEST(UniformSamplerTest, DeterministicPerSeed) {
  UniformSampler a(0.3, 5);
  UniformSampler b(0.3, 5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.keep(Edge{1, 2}), b.keep(Edge{1, 2}));
  }
}

// ---- fully-dynamic reservoir (random pairing) -------------------------------

TEST(RandomPairingTest, InsertOnlyStreamIsBitIdenticalToLegacyPath) {
  // The deletion extension must not perturb insert-only behavior: same RNG
  // draws, same decisions, same counters.  Replay the documented legacy
  // algorithm side by side.
  constexpr std::uint64_t kM = 16;
  ReservoirPolicy p(kM, 99);
  Xoshiro256ss rng(99);  // the policy's own seed
  for (std::uint64_t t = 1; t <= 500; ++t) {
    const ReservoirDecision d = p.offer();
    if (t <= kM) {
      EXPECT_EQ(d.action, ReservoirDecision::Action::kAppend);
      EXPECT_EQ(d.slot, t - 1);
    } else if (rng.next_below(t) < kM) {
      EXPECT_EQ(d.action, ReservoirDecision::Action::kReplace);
      EXPECT_EQ(d.slot, rng.next_below(kM));
    } else {
      EXPECT_EQ(d.action, ReservoirDecision::Action::kDiscard);
    }
    EXPECT_EQ(p.effective_seen(), p.seen());
  }
}

TEST(RandomPairingTest, DeleteAllReturnsToEmpty) {
  ReservoirSampler<int> r(8, 7);
  for (int i = 0; i < 6; ++i) r.offer(i);
  for (int i = 0; i < 6; ++i) r.remove(i);
  EXPECT_EQ(r.items().size(), 0u);
  EXPECT_EQ(r.net_size(), 0u);
  // effective_seen never decreases: the deletions stay pending until
  // compensated by future insertions.
  EXPECT_EQ(r.effective_seen(), 6u);
}

TEST(RandomPairingTest, UnderCapacitySampleTracksPopulationExactly) {
  // While effective_seen <= M the sample must equal the live population
  // after any ± sequence (this is what makes small dynamic runs exact).
  ReservoirSampler<int> r(64, 11);
  std::vector<int> live;
  Xoshiro256ss rng(123);
  int next = 0;
  for (int step = 0; step < 40; ++step) {
    const bool del = !live.empty() && rng.next_below(3) == 0;
    if (del) {
      const std::size_t idx =
          static_cast<std::size_t>(rng.next_below(live.size()));
      r.remove(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      r.offer(next);
      live.push_back(next);
      ++next;
    }
    ASSERT_LE(r.effective_seen(), 64u);
    std::vector<int> sampled = r.items();
    std::vector<int> expect = live;
    std::sort(sampled.begin(), sampled.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(sampled, expect);
  }
}

TEST(RandomPairingTest, InclusionStaysUniformUnderChurn) {
  // After inserting a stream, deleting a fixed subset and re-inserting new
  // items, every *live* item must still be included with equal probability.
  constexpr std::uint64_t kM = 20;
  constexpr int kFirst = 120;   // initial inserts: 0..119
  constexpr int kDeleted = 40;  // then delete 0..39
  constexpr int kSecond = 60;   // then insert 120..179
  constexpr int kTrials = 4000;
  std::vector<int> included(kFirst + kSecond, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    ReservoirSampler<int> r(kM, 5000 + trial);
    for (int i = 0; i < kFirst; ++i) r.offer(i);
    for (int i = 0; i < kDeleted; ++i) r.remove(i);
    for (int i = 0; i < kSecond; ++i) r.offer(kFirst + i);
    for (const int item : r.items()) {
      ASSERT_GE(item, kDeleted);  // deleted items never resurface
      ++included[item];
    }
  }
  const int live = kFirst - kDeleted + kSecond;
  double mean = 0.0;
  for (int i = kDeleted; i < kFirst + kSecond; ++i) mean += included[i];
  mean /= live;
  for (int i = kDeleted; i < kFirst + kSecond; ++i) {
    EXPECT_NEAR(included[i], mean, mean * 0.35) << "item " << i;
  }
}

TEST(RandomPairingTest, PhantomDeleteIsANoOpWhileSampleCoversPopulation) {
  // A delete that misses while stored == net size is provably targeting a
  // never-inserted item: counters must not move (registering it as
  // del_out would discard the next live insertion and wrap size_ at 0).
  ReservoirSampler<int> r(8, 13);
  r.remove(42);  // delete into an empty stream: detected no-op
  EXPECT_EQ(r.net_size(), 0u);
  EXPECT_EQ(r.effective_seen(), 0u);
  r.offer(1);
  r.offer(2);
  r.remove(99);  // never inserted, sample covers {1, 2}: detected no-op
  ASSERT_EQ(r.items().size(), 2u);
  EXPECT_EQ(r.effective_seen(), 2u);
  r.offer(3);  // must NOT be eaten by phantom pairing debt
  EXPECT_EQ(r.items().size(), 3u);
}

TEST(SampleMirrorTest, AssignRebuildsFromResidentContent) {
  SampleMirror<int> m;
  m.assign({5, 6, 7});
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.contains(6));
  const auto slot = m.evict(5);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, 0u);
  EXPECT_EQ(m.at(0), 7);  // swap-filled from the top
}

TEST(SampleMirrorTest, TracksAppendsReplacesAndEvictions) {
  SampleMirror<int> m;
  m.apply({ReservoirDecision::Action::kAppend, 0}, 10);
  m.apply({ReservoirDecision::Action::kAppend, 1}, 11);
  m.apply({ReservoirDecision::Action::kAppend, 2}, 12);
  m.apply({ReservoirDecision::Action::kReplace, 1}, 21);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_FALSE(m.contains(11));
  EXPECT_TRUE(m.contains(21));

  // Evicting a middle slot swap-fills from the top and reports the slot.
  const auto slot = m.evict(10);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, 0u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(0), 12);  // top item moved down

  EXPECT_FALSE(m.evict(999).has_value());  // miss is detected, not fatal
}

TEST(MisraGriesTest, RemoveDecrementsAndDropsAtZero) {
  MisraGries mg(4);
  mg.update_edge({1, 2});
  mg.update_edge({1, 3});
  EXPECT_EQ(mg.estimate(1), 2u);
  mg.remove_edge({1, 2});
  EXPECT_EQ(mg.estimate(1), 1u);
  EXPECT_EQ(mg.estimate(2), 0u);  // dropped at zero
  mg.remove(7);                   // untracked: a counted no-op
  EXPECT_EQ(mg.estimate(7), 0u);
  EXPECT_EQ(mg.removals(), 3u);
  EXPECT_EQ(mg.updates(), 4u);  // insert updates unchanged by removals
}

}  // namespace
}  // namespace pimtc::sketch
