// Unit tests for src/common: types, PRNG, hashing, thread pool, math.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/hash.hpp"
#include "common/math_util.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace pimtc {
namespace {

// ---- Edge -------------------------------------------------------------------

TEST(EdgeTest, LexicographicOrderMatchesPaperDefinition) {
  // (u,v) < (w,z) <=> u < w or (u == w and v < z).
  EXPECT_LT((Edge{1, 5}), (Edge{2, 0}));
  EXPECT_LT((Edge{1, 5}), (Edge{1, 6}));
  EXPECT_FALSE((Edge{2, 0}) < (Edge{1, 9}));
  EXPECT_EQ((Edge{3, 4}), (Edge{3, 4}));
}

TEST(EdgeTest, CanonicalPutsSmallerEndpointFirst) {
  EXPECT_EQ((Edge{7, 2}.canonical()), (Edge{2, 7}));
  EXPECT_EQ((Edge{2, 7}.canonical()), (Edge{2, 7}));
  EXPECT_EQ((Edge{5, 5}.canonical()), (Edge{5, 5}));
}

TEST(EdgeTest, LoopDetection) {
  EXPECT_TRUE((Edge{3, 3}.is_loop()));
  EXPECT_FALSE((Edge{3, 4}.is_loop()));
}

TEST(EdgeTest, KeyRoundTrips) {
  const Edge e{0xdeadbeef, 0x12345678};
  EXPECT_EQ(edge_from_key(edge_key(e)), e);
}

TEST(EdgeTest, ReversedSwapsEndpoints) {
  EXPECT_EQ((Edge{1, 2}.reversed()), (Edge{2, 1}));
}

// ---- PRNG -------------------------------------------------------------------

TEST(PrngTest, SplitMixIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(PrngTest, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LE(equal, 1);
}

TEST(PrngTest, XoshiroNextDoubleInUnitInterval) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(PrngTest, NextBelowStaysBelowBound) {
  Xoshiro256ss rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(PrngTest, NextBelowIsRoughlyUniform) {
  Xoshiro256ss rng(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++hist[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int h : hist) {
    EXPECT_NEAR(h, expected, expected * 0.1);
  }
}

TEST(PrngTest, BernoulliExtremes) {
  Xoshiro256ss rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.next_bernoulli(1.0));
    EXPECT_FALSE(rng.next_bernoulli(0.0));
  }
}

TEST(PrngTest, BernoulliMeanConverges) {
  Xoshiro256ss rng(17);
  const double p = 0.3;
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.next_bernoulli(p);
  EXPECT_NEAR(static_cast<double>(heads) / n, p, 0.01);
}

TEST(PrngTest, DeriveSeedSeparatesStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) seeds.insert(derive_seed(42, s));
  EXPECT_EQ(seeds.size(), 100u);
}

// ---- ColorHash --------------------------------------------------------------

TEST(ColorHashTest, OutputInRange) {
  const ColorHash h(7, std::uint64_t{123});
  for (NodeId u = 0; u < 10000; ++u) EXPECT_LT(h(u), 7u);
}

TEST(ColorHashTest, DeterministicPerSeed) {
  const ColorHash a(5, std::uint64_t{99});
  const ColorHash b(5, std::uint64_t{99});
  for (NodeId u = 0; u < 1000; ++u) EXPECT_EQ(a(u), b(u));
}

TEST(ColorHashTest, SingleColorAlwaysZero) {
  const ColorHash h(1, std::uint64_t{5});
  for (NodeId u = 0; u < 100; ++u) EXPECT_EQ(h(u), 0u);
}

TEST(ColorHashTest, ColorsAreEvenlyDistributed) {
  // 2-universal family: each color class should get ~N/C nodes.
  constexpr std::uint32_t kColors = 13;
  constexpr NodeId kNodes = 130000;
  const ColorHash h(kColors, std::uint64_t{2024});
  std::vector<int> hist(kColors, 0);
  for (NodeId u = 0; u < kNodes; ++u) ++hist[h(u)];
  const double expected = static_cast<double>(kNodes) / kColors;
  for (const int c : hist) EXPECT_NEAR(c, expected, expected * 0.05);
}

TEST(ColorHashTest, Mersenne61Reduction) {
  EXPECT_EQ(mod_mersenne61(0), 0u);
  EXPECT_EQ(mod_mersenne61(kMersenne61), 0u);
  EXPECT_EQ(mod_mersenne61(kMersenne61 + 5), 5u);
  const __uint128_t big = static_cast<__uint128_t>(kMersenne61) * 7 + 3;
  EXPECT_EQ(mod_mersenne61(big), 3u);
}

// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelChunksPartitionExactly) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_chunks(100, [&](std::size_t, std::size_t lo, std::size_t hi) {
    std::lock_guard lock(m);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expect = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expect);
    EXPECT_GT(hi, lo);
    expect = hi;
  }
  EXPECT_EQ(expect, 100u);
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  std::future<int> f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
  std::future<void> g = pool.submit([] {});
  g.get();  // void futures propagate completion too
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.submit([]() -> int { throw std::runtime_error("task boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives the throw: the pool keeps serving new tasks.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelChunksFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_chunks(3, [&](std::size_t, std::size_t lo, std::size_t hi) {
    std::lock_guard lock(m);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expect = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expect);
    EXPECT_GT(hi, lo);
    expect = hi;
  }
  EXPECT_EQ(expect, 3u);
}

TEST(ThreadPoolTest, ParallelChunksZeroItemsIsNoop) {
  ThreadPool pool(4);
  pool.parallel_chunks(0, [](std::size_t, std::size_t, std::size_t) {
    FAIL() << "must not be called";
  });
}

TEST(ThreadPoolTest, ConcurrentCallersDoNotShareCompletionOrErrors) {
  // Two threads drive parallel_for on the SAME pool at once: each call must
  // wait only on its own tasks, and an exception in one caller's tasks must
  // never surface in the other's.
  ThreadPool pool(4);
  std::atomic<int> clean_sum{0};
  std::atomic<bool> clean_done{false};
  std::thread thrower([&] {
    for (int round = 0; round < 20; ++round) {
      EXPECT_THROW(pool.parallel_for(32,
                                     [](std::size_t i) {
                                       if (i % 5 == 0) {
                                         throw std::runtime_error("mine");
                                       }
                                     }),
                   std::runtime_error);
    }
  });
  std::thread counter([&] {
    for (int round = 0; round < 20; ++round) {
      pool.parallel_for(32, [&](std::size_t) { ++clean_sum; });
    }
    clean_done = true;
  });
  thrower.join();
  counter.join();
  EXPECT_TRUE(clean_done.load());
  EXPECT_EQ(clean_sum.load(), 20 * 32);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // A parallel_for issued from inside a pool worker must not wait on the
  // pool it occupies; nested calls fall back to caller-runs-inline.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);

  // Same through submit(): a task fanning out on its own pool completes.
  std::future<int> f = pool.submit([&] {
    std::atomic<int> n{0};
    pool.parallel_chunks(10, [&](std::size_t, std::size_t lo, std::size_t hi) {
      n += static_cast<int>(hi - lo);
    });
    return n.load();
  });
  EXPECT_EQ(f.get(), 10);
}

TEST(ThreadPoolTest, OnPoolThreadDistinguishesInsideFromOutside) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_pool_thread());
  EXPECT_TRUE(pool.submit([&] { return pool.on_pool_thread(); }).get());
  // A different pool's worker is "outside" this pool.
  ThreadPool other(1);
  EXPECT_FALSE(other.submit([&] { return pool.on_pool_thread(); }).get());
}

// ---- math_util --------------------------------------------------------------

TEST(MathTest, BinomialBasics) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(5, 6), 0u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(MathTest, NumTripletsMatchesPaper) {
  // binom(C+2, 3); the paper's 23 colors -> 2300 DPUs.
  EXPECT_EQ(num_triplets(1), 1u);
  EXPECT_EQ(num_triplets(2), 4u);
  EXPECT_EQ(num_triplets(3), 10u);
  EXPECT_EQ(num_triplets(23), 2300u);
}

TEST(MathTest, MaxColorsForCores) {
  EXPECT_EQ(max_colors_for_cores(2560), 23u);  // the paper's machine
  EXPECT_EQ(max_colors_for_cores(2300), 23u);
  EXPECT_EQ(max_colors_for_cores(2299), 22u);
  EXPECT_EQ(max_colors_for_cores(1), 1u);
  EXPECT_EQ(max_colors_for_cores(0), 0u);
}

TEST(MathTest, ReservoirCorrectionIdentityWhenNotFull) {
  EXPECT_DOUBLE_EQ(reservoir_correction(100, 50), 1.0);
  EXPECT_DOUBLE_EQ(reservoir_correction(100, 100), 1.0);
}

TEST(MathTest, ReservoirCorrectionFormula) {
  // q = M(M-1)(M-2) / (t(t-1)(t-2)).
  const double q = reservoir_correction(10, 20);
  EXPECT_DOUBLE_EQ(q, (10.0 * 9.0 * 8.0) / (20.0 * 19.0 * 18.0));
}

TEST(MathTest, ReservoirCorrectionDegenerateCapacity) {
  EXPECT_DOUBLE_EQ(reservoir_correction(2, 10), 0.0);
  EXPECT_DOUBLE_EQ(reservoir_correction(0, 10), 0.0);
}

TEST(MathTest, UniformCorrectionIsInverseCube) {
  EXPECT_DOUBLE_EQ(uniform_sampling_correction(1.0), 1.0);
  EXPECT_DOUBLE_EQ(uniform_sampling_correction(0.5), 8.0);
  EXPECT_DOUBLE_EQ(uniform_sampling_correction(0.1), 1000.0);
}

TEST(MathTest, RelativeErrorConventions) {
  EXPECT_DOUBLE_EQ(relative_error(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0, 100), 1.0);  // "100%" rows in Table 3
  EXPECT_DOUBLE_EQ(relative_error(0, 0), 0.0);
  EXPECT_TRUE(std::isinf(relative_error(5, 0)));
}

TEST(MathTest, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(round_up(13, 8), 16u);
  EXPECT_EQ(round_up(16, 8), 16u);
}

}  // namespace
}  // namespace pimtc
