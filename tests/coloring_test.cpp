// Tests for the coloring-based edge partitioning (paper Section 3.1):
// triplet enumeration, pair compatibility, the exactly-C replication
// property, and the triangle-coverage invariant the whole algorithm rests
// on: every triangle's three edges land together on at least one core, and
// the multiplicity across cores is exactly 1 for non-monochromatic
// triangles and C for monochromatic ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/hash.hpp"
#include "common/math_util.hpp"
#include "coloring/partitioner.hpp"
#include "coloring/triplets.hpp"

namespace pimtc::color {
namespace {

TEST(TripletTableTest, CountMatchesBinomial) {
  for (std::uint32_t c = 1; c <= 24; ++c) {
    const TripletTable table(c);
    EXPECT_EQ(table.num_triplets(), num_triplets(c)) << "C = " << c;
  }
}

TEST(TripletTableTest, TwentyThreeColorsIsThePaperConfig) {
  const TripletTable table(23);
  EXPECT_EQ(table.num_triplets(), 2300u);
}

TEST(TripletTableTest, TripletsAreSortedAndUnique) {
  const TripletTable table(6);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (std::uint32_t i = 0; i < table.num_triplets(); ++i) {
    const Triplet t = table.triplet(i);
    EXPECT_LE(t.a, t.b);
    EXPECT_LE(t.b, t.c);
    EXPECT_LT(t.c, 6u);
    EXPECT_TRUE(seen.insert({t.a, t.b, t.c}).second);
  }
}

TEST(TripletTableTest, IndexOfRoundTrips) {
  const TripletTable table(9);
  for (std::uint32_t i = 0; i < table.num_triplets(); ++i) {
    EXPECT_EQ(table.index_of(table.triplet(i)), i);
  }
}

TEST(TripletTableTest, KindClassification) {
  EXPECT_EQ((Triplet{2, 2, 2}).kind(), 1u);
  EXPECT_EQ((Triplet{1, 1, 3}).kind(), 2u);
  EXPECT_EQ((Triplet{1, 3, 3}).kind(), 2u);
  EXPECT_EQ((Triplet{0, 1, 2}).kind(), 3u);
}

TEST(TripletTableTest, MonoIndexPointsAtSingleColorTriplet) {
  const TripletTable table(7);
  for (std::uint32_t c = 0; c < 7; ++c) {
    const Triplet t = table.triplet(table.mono_index(c));
    EXPECT_EQ(t, (Triplet{c, c, c}));
  }
}

TEST(TripletTableTest, PaperExampleTriplet012) {
  // Paper: triplet (0,1,2) is compatible with pairs (0,1), (1,2), (0,2).
  const TripletTable table(3);
  const std::uint32_t idx = table.index_of({0, 1, 2});
  for (const auto& [c1, c2] : std::vector<std::pair<int, int>>{
           {0, 1}, {1, 2}, {0, 2}}) {
    const auto targets = table.targets(c1, c2);
    EXPECT_NE(std::find(targets.begin(), targets.end(), idx), targets.end())
        << "pair (" << c1 << "," << c2 << ")";
  }
  // And NOT with same-color pairs.
  for (int c = 0; c < 3; ++c) {
    const auto targets = table.targets(c, c);
    EXPECT_EQ(std::find(targets.begin(), targets.end(), idx), targets.end());
  }
}

TEST(TripletTableTest, EveryPairHasExactlyCTargets) {
  // "Each edge is duplicated C times" — Section 3.1.
  for (std::uint32_t colors : {1u, 2u, 3u, 5u, 8u, 13u}) {
    const TripletTable table(colors);
    for (std::uint32_t c1 = 0; c1 < colors; ++c1) {
      for (std::uint32_t c2 = c1; c2 < colors; ++c2) {
        const auto targets = table.targets(c1, c2);
        EXPECT_EQ(targets.size(), colors);
        // Targets are distinct.
        std::set<std::uint32_t> unique(targets.begin(), targets.end());
        EXPECT_EQ(unique.size(), colors);
      }
    }
  }
}

TEST(TripletTableTest, TargetsActuallyContainThePair) {
  const TripletTable table(6);
  for (std::uint32_t c1 = 0; c1 < 6; ++c1) {
    for (std::uint32_t c2 = c1; c2 < 6; ++c2) {
      for (const std::uint32_t d : table.targets(c1, c2)) {
        const Triplet t = table.triplet(d);
        // The pair {c1,c2} must be a sub-multiset of {t.a,t.b,t.c}.
        std::multiset<std::uint32_t> tri{t.a, t.b, t.c};
        auto it1 = tri.find(c1);
        ASSERT_NE(it1, tri.end());
        tri.erase(it1);
        EXPECT_NE(tri.find(c2), tri.end());
      }
    }
  }
}

TEST(TripletTableTest, TriangleCoverageInvariant) {
  // For every color combination (x,y,z) of a triangle's corners, the number
  // of cores receiving all three edges must be C for monochromatic
  // triangles and exactly 1 otherwise.  This is the counting invariant that
  // makes the final correction exact.
  for (std::uint32_t colors : {2u, 3u, 5u, 7u}) {
    const TripletTable table(colors);
    for (std::uint32_t x = 0; x < colors; ++x) {
      for (std::uint32_t y = 0; y < colors; ++y) {
        for (std::uint32_t z = 0; z < colors; ++z) {
          // Cores that receive edge (x,y), (y,z) and (x,z) simultaneously.
          std::map<std::uint32_t, int> hits;
          for (const auto d : table.targets(x, y)) ++hits[d];
          for (const auto d : table.targets(y, z)) ++hits[d];
          for (const auto d : table.targets(x, z)) ++hits[d];
          int full = 0;
          for (const auto& [core, n] : hits) full += (n == 3);
          const bool mono = (x == y && y == z);
          EXPECT_EQ(full, mono ? static_cast<int>(colors) : 1)
              << "C=" << colors << " colors (" << x << "," << y << "," << z
              << ")";
        }
      }
    }
  }
}

TEST(TripletTableTest, RejectsBadColorCounts) {
  EXPECT_THROW(TripletTable(0), std::invalid_argument);
  EXPECT_THROW(TripletTable(300), std::invalid_argument);
}

// ---- load distribution ----------------------------------------------------------

TEST(TripletTableTest, LoadFollowsN3N6NPattern) {
  // Section 3.1: with an even color distribution, single-color triplet cores
  // receive N edges, two-color cores 3N, three-color cores 6N.  Verify the
  // *expected* load ratio combinatorially: count how many (ordered) color
  // pairs map to each core, weighted by pair probability.
  const std::uint32_t colors = 6;
  const TripletTable table(colors);
  std::vector<double> load(table.num_triplets(), 0.0);
  // Ordered endpoint colorings are uniform: P(c1,c2) = 1/C^2.  targets() is
  // the same for (c1,c2) and (c2,c1); iterate unordered pairs with weight.
  for (std::uint32_t c1 = 0; c1 < colors; ++c1) {
    for (std::uint32_t c2 = c1; c2 < colors; ++c2) {
      const double weight = (c1 == c2) ? 1.0 : 2.0;
      for (const auto d : table.targets(c1, c2)) load[d] += weight;
    }
  }
  // Normalize by the single-color load.
  const double n_unit = load[table.mono_index(0)];
  for (std::uint32_t d = 0; d < table.num_triplets(); ++d) {
    const double ratio = load[d] / n_unit;
    switch (table.triplet(d).kind()) {
      case 1:
        EXPECT_DOUBLE_EQ(ratio, 1.0);
        break;
      case 2:
        EXPECT_DOUBLE_EQ(ratio, 3.0);
        break;
      case 3:
        EXPECT_DOUBLE_EQ(ratio, 6.0);
        break;
      default:
        FAIL();
    }
  }
}

// ---- partitioner -----------------------------------------------------------------

TEST(PartitionerTest, TargetsMatchTableLookup) {
  const TripletTable table(5);
  const ColorHash hash(5, std::uint64_t{11});
  const EdgePartitioner part(hash, table);
  for (NodeId u = 0; u < 50; ++u) {
    for (NodeId v = 0; v < 50; ++v) {
      const auto direct = table.targets(hash(u), hash(v));
      const auto via = part.targets(Edge{u, v});
      ASSERT_EQ(direct.size(), via.size());
      for (std::size_t i = 0; i < via.size(); ++i) {
        EXPECT_EQ(direct[i], via[i]);
      }
    }
  }
}

TEST(PartitionerTest, OrientationInvariantTargets) {
  const TripletTable table(4);
  const ColorHash hash(4, std::uint64_t{3});
  const EdgePartitioner part(hash, table);
  for (NodeId u = 0; u < 30; ++u) {
    for (NodeId v = u + 1; v < 30; ++v) {
      const auto fwd = part.targets(Edge{u, v});
      const auto rev = part.targets(Edge{v, u});
      ASSERT_EQ(fwd.size(), rev.size());
      for (std::size_t i = 0; i < fwd.size(); ++i) EXPECT_EQ(fwd[i], rev[i]);
    }
  }
}

}  // namespace
}  // namespace pimtc::color
