// Regression tests for parser hardening: hostile headers and fault-spec
// strings that used to slip past validation (found by the fuzz harnesses in
// tests/fuzz/).  Each case pins the *graceful* failure mode — a typed
// IoError / invalid_argument naming the problem — where the seed behavior
// was an unchecked giant allocation (length_error / bad_alloc) or a
// silently wrong value (NaN rate, wrapped negative integer).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/io.hpp"
#include "graph/io_error.hpp"
#include "graph/pbin.hpp"
#include "graph/stream_reader.hpp"
#include "pim/fault.hpp"

namespace pimtc {
namespace {

namespace fs = std::filesystem;

class ParserHardeningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "pimtc_parser_hardening_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path write_file(const std::string& name,
                                    const std::string& bytes) const {
    const fs::path path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  /// A syntactically valid .pbin header declaring `num_edges` edges.
  [[nodiscard]] static std::string pbin_header(std::uint64_t num_edges) {
    std::string raw(graph::kPbinHeaderBytes, '\0');
    std::memcpy(raw.data(), graph::kPbinMagic.data(),
                graph::kPbinMagic.size());
    const std::uint32_t version = graph::kPbinVersion;
    std::memcpy(raw.data() + 8, &version, 4);
    const std::uint64_t nodes = 4;
    std::memcpy(raw.data() + 16, &nodes, 8);
    std::memcpy(raw.data() + 24, &num_edges, 8);
    return raw;
  }

  /// A legacy .bin header declaring `count` edges.
  [[nodiscard]] static std::string legacy_header(std::uint64_t count) {
    std::string raw = "PIMTCCO1";
    raw.resize(16, '\0');
    std::memcpy(raw.data() + 8, &count, 8);
    return raw;
  }

  fs::path dir_;
};

// A num_edges chosen so that num_edges * sizeof(Edge) wraps to a tiny
// value: the pre-fix size check passed and read_bin tried to allocate
// 2^61 Edge records.  Must now fail as a truncated payload.
TEST_F(ParserHardeningTest, PbinHeaderEdgeCountOverflowIsTruncation) {
  const std::uint64_t wrap = (std::uint64_t{1} << 61) + 1;  // *8 == 8 mod 2^64
  const fs::path path = write_file("wrap.pbin", pbin_header(wrap));
  EXPECT_THROW((void)graph::read_bin_header(path), graph::IoError);
  EXPECT_THROW((void)graph::read_bin(path), graph::IoError);
  EXPECT_THROW(graph::ChunkedEdgeReader reader(path), graph::IoError);
}

TEST_F(ParserHardeningTest, PbinHonestOversizedCountIsStillTruncation) {
  // No overflow, just a plain lie: 1000 declared edges, zero payload bytes.
  const fs::path path = write_file("lie.pbin", pbin_header(1000));
  EXPECT_THROW((void)graph::read_bin_header(path), graph::IoError);
}

TEST_F(ParserHardeningTest, LegacyBinEdgeCountOverflowIsTruncation) {
  const std::uint64_t wrap = (std::uint64_t{1} << 61) + 1;
  const fs::path path = write_file("wrap.bin", legacy_header(wrap));
  EXPECT_THROW(graph::ChunkedEdgeReader reader(path), graph::IoError);
  EXPECT_THROW((void)graph::read_coo_binary(path), graph::IoError);
}

TEST_F(ParserHardeningTest, MtxHostileNnzIsRejectedBeforeReserve) {
  // 2^60 declared entries in a 60-byte file: the pre-fix reader passed
  // this straight to EdgeList::reserve.
  const fs::path path = write_file(
      "hostile.mtx",
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 1152921504606846976\n"
      "1 2\n");
  try {
    (void)graph::read_coo_mtx(path);
    FAIL() << "expected IoError";
  } catch (const graph::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("more entries"), std::string::npos)
        << e.what();
  }
}

TEST_F(ParserHardeningTest, MtxPlausibleFilesStillParse) {
  // The plausibility bound must not reject legitimate minimal files.
  const fs::path path = write_file("ok.mtx",
                                   "%%MatrixMarket matrix coordinate "
                                   "pattern general\n"
                                   "3 3 2\n"
                                   "1 2\n"
                                   "2 3\n");
  const graph::EdgeList list = graph::read_coo_mtx(path);
  EXPECT_EQ(list.num_edges(), 2u);
}

// ---- FaultSpec string hardening --------------------------------------------

TEST(FaultSpecHardeningTest, NanAndInfRatesAreRejected) {
  const auto expect_bad = [](const std::string& spec) {
    EXPECT_THROW((void)pim::FaultSpec::parse(spec), std::invalid_argument)
        << spec;
  };
  // NaN fails every ordered comparison, so `rate < 0 || rate > 1` used to
  // accept it and poison every downstream probability comparison.
  expect_bad("corrupt=nan");
  expect_bad("launch-transient=nan");
  expect_bad("bitflip=NAN");
  expect_bad("rank-outage=inf");
  expect_bad("backoff-us=nan");
  expect_bad("backoff-us=inf");
  expect_bad("checksum-gbps=nan");
}

TEST(FaultSpecHardeningTest, NegativeIntegersAreRejectedNotWrapped) {
  // stoull("-1") wraps to 2^64-1; "seed=-1" used to parse successfully.
  const auto expect_bad = [](const std::string& spec) {
    EXPECT_THROW((void)pim::FaultSpec::parse(spec), std::invalid_argument)
        << spec;
  };
  expect_bad("seed=-1");
  expect_bad("max-retries=-1");
  expect_bad("spares=-3");
  expect_bad("from-step=-2");
  expect_bad("seed=+1");   // sign prefixes are not part of the grammar
  expect_bad("seed= 1");   // neither is embedded whitespace
}

TEST(FaultSpecHardeningTest, BoundaryValuesStillParse) {
  EXPECT_EQ(pim::FaultSpec::parse("seed=18446744073709551615").seed,
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_DOUBLE_EQ(pim::FaultSpec::parse("corrupt=1.0").transfer_corrupt, 1.0);
  EXPECT_DOUBLE_EQ(pim::FaultSpec::parse("corrupt=0").transfer_corrupt, 0.0);
}

}  // namespace
}  // namespace pimtc
