// Tests for the out-of-core ingest path: the `.pbin` format (round trips,
// corruption rejection), the chunked streaming reader (mmap vs buffered
// equivalence, chunk-size invariance, error messages with file + 1-based
// line), the engine::ingest_file pipeline (streamed estimates bit-identical
// to one-shot on pim and cpu-fast, filters, degree histograms) and the
// serving layer's SessionManager::ingest_file bulk load.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/ingest.hpp"
#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/io_error.hpp"
#include "graph/pbin.hpp"
#include "graph/stream_reader.hpp"
#include "serve/session_manager.hpp"

namespace pimtc {
namespace {

namespace fs = std::filesystem;

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "pimtc_ingest_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string slurp(const fs::path& path) const {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  /// Expects `fn` to throw a runtime_error whose message contains every
  /// needle (the file name, the 1-based line, the reason).
  template <typename Fn>
  void expect_error_containing(Fn&& fn, std::vector<std::string> needles) {
    try {
      fn();
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      for (const std::string& needle : needles) {
        EXPECT_NE(msg.find(needle), std::string::npos)
            << "message '" << msg << "' lacks '" << needle << "'";
      }
    }
  }

  /// A deterministic graph with duplicates and self loops kept (generators
  /// emit simple graphs; ingest filter tests need the dirt).
  [[nodiscard]] static graph::EdgeList dirty_graph() {
    graph::EdgeList g = graph::gen::barabasi_albert(200, 3, 7);
    g.push_back({5, 5});              // self loop
    g.push_back(g[0]);                // exact duplicate
    g.push_back({g[1].v, g[1].u});    // reversed duplicate
    g.push_back({7, 7});
    return g;
  }

  /// Drains a reader into one edge vector.
  [[nodiscard]] static std::vector<Edge> drain(graph::ChunkedEdgeReader& r) {
    std::vector<Edge> out;
    for (std::span<const Edge> c = r.next(); !c.empty(); c = r.next()) {
      out.insert(out.end(), c.begin(), c.end());
    }
    return out;
  }

  fs::path dir_;
};

// ---- .pbin format -----------------------------------------------------------

TEST_F(IngestTest, PbinRoundTripPreservesOrderAndCounts) {
  const graph::EdgeList g = dirty_graph();
  const auto path = dir_ / "g.pbin";
  graph::write_bin(g, path);

  const graph::PbinInfo info = graph::read_bin_header(path);
  EXPECT_EQ(info.version, graph::kPbinVersion);
  EXPECT_TRUE(info.has_checksum());
  EXPECT_EQ(info.num_edges, g.num_edges());
  EXPECT_EQ(info.num_nodes, g.num_nodes());

  const graph::EdgeList back = graph::read_bin(path);
  ASSERT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  for (std::size_t i = 0; i < g.num_edges(); ++i) EXPECT_EQ(back[i], g[i]);
}

TEST_F(IngestTest, TextToPbinToTextIsByteStable) {
  // write_coo_text emits the canonical header; converting through .pbin
  // carries exact counts, so the text that comes back is byte-identical.
  const graph::EdgeList g = graph::gen::barabasi_albert(150, 3, 11);
  const auto txt = dir_ / "g.txt";
  const auto pbin = dir_ / "g.pbin";
  const auto back = dir_ / "back.txt";
  graph::write_coo_text(g, txt);

  {
    graph::ChunkedEdgeReader reader(txt, {.chunk_edges = 64});
    graph::PbinWriter writer(pbin);
    for (std::span<const Edge> c = reader.next(); !c.empty();
         c = reader.next()) {
      writer.append(c);
    }
    writer.finish();
  }
  {
    graph::ChunkedEdgeReader reader(pbin, {.chunk_edges = 64});
    graph::WriterOptions wopt;
    wopt.declared_edges = reader.declared_edges();
    wopt.declared_nodes = reader.declared_nodes();
    auto writer = graph::make_edge_writer(back, wopt);
    for (std::span<const Edge> c = reader.next(); !c.empty();
         c = reader.next()) {
      writer->append(c);
    }
    writer->finish();
  }
  EXPECT_EQ(slurp(txt), slurp(back));
}

TEST_F(IngestTest, PbinRejectsCorruptedMagic) {
  graph::write_bin(graph::gen::wheel(8), dir_ / "g.pbin");
  std::string bytes = slurp(dir_ / "g.pbin");
  bytes[0] = 'X';
  std::ofstream(dir_ / "bad.pbin", std::ios::binary) << bytes;
  expect_error_containing([&] { (void)graph::read_bin(dir_ / "bad.pbin"); },
                          {"bad.pbin", "magic"});
}

TEST_F(IngestTest, PbinRejectsTruncatedPayload) {
  graph::write_bin(graph::gen::wheel(8), dir_ / "g.pbin");
  std::string bytes = slurp(dir_ / "g.pbin");
  bytes.resize(bytes.size() - 5);
  std::ofstream(dir_ / "cut.pbin", std::ios::binary) << bytes;
  expect_error_containing([&] { (void)graph::read_bin(dir_ / "cut.pbin"); },
                          {"cut.pbin", "truncated"});
}

TEST_F(IngestTest, PbinRejectsChecksumMismatchOnBothPaths) {
  graph::write_bin(graph::gen::wheel(8), dir_ / "g.pbin");
  std::string bytes = slurp(dir_ / "g.pbin");
  // Flip a low payload bit: the edge stays within the header's node bound,
  // so only the checksum can catch the corruption.
  bytes[graph::kPbinHeaderBytes] ^= 0x01;
  std::ofstream(dir_ / "flip.pbin", std::ios::binary) << bytes;

  expect_error_containing([&] { (void)graph::read_bin(dir_ / "flip.pbin"); },
                          {"flip.pbin", "checksum"});
  expect_error_containing(
      [&] {
        graph::ChunkedEdgeReader reader(dir_ / "flip.pbin", {.chunk_edges = 4});
        (void)drain(reader);
      },
      {"flip.pbin", "checksum"});

  // Opting out of verification reads the corrupted payload fine.
  EXPECT_EQ(graph::read_bin(dir_ / "flip.pbin", /*verify_checksum=*/false)
                .num_edges(),
            graph::gen::wheel(8).num_edges());
}

TEST_F(IngestTest, PbinRejectsUnknownFlagBitsOnBothPaths) {
  // A version-1 file carrying flag bits this build cannot honor must be
  // rejected, not silently half-read.  Flags live at header offset 12.
  graph::write_bin(graph::gen::wheel(8), dir_ / "g.pbin");
  std::string bytes = slurp(dir_ / "g.pbin");
  bytes[12] = static_cast<char>(bytes[12] | 0x40);
  std::ofstream(dir_ / "flags.pbin", std::ios::binary) << bytes;
  expect_error_containing([&] { (void)graph::read_bin(dir_ / "flags.pbin"); },
                          {"flags.pbin", "unknown .pbin flag bits"});
  expect_error_containing(
      [&] {
        graph::ChunkedEdgeReader reader(dir_ / "flags.pbin",
                                        {.chunk_edges = 4});
        (void)drain(reader);
      },
      {"flags.pbin", "unknown .pbin flag bits"});
}

TEST_F(IngestTest, PbinRejectsZeroLengthFileOnBothPaths) {
  std::ofstream(dir_ / "empty.pbin", std::ios::binary).flush();
  expect_error_containing([&] { (void)graph::read_bin(dir_ / "empty.pbin"); },
                          {"empty.pbin", "truncated header"});
  expect_error_containing(
      [&] {
        graph::ChunkedEdgeReader reader(dir_ / "empty.pbin",
                                        {.chunk_edges = 4});
        (void)drain(reader);
      },
      {"empty.pbin", "truncated header"});
}

TEST_F(IngestTest, PbinRejectsHeaderPayloadSizeMismatch) {
  // A header declaring more edges than the payload holds — a payload-size
  // mismatch rather than a mid-write truncation — names the file too.
  graph::write_bin(graph::gen::wheel(8), dir_ / "g.pbin");
  std::string bytes = slurp(dir_ / "g.pbin");
  std::uint64_t m = 0;
  std::memcpy(&m, bytes.data() + 24, 8);
  m += 3;
  std::memcpy(bytes.data() + 24, &m, 8);
  std::ofstream(dir_ / "short.pbin", std::ios::binary) << bytes;
  expect_error_containing([&] { (void)graph::read_bin(dir_ / "short.pbin"); },
                          {"short.pbin", "truncated edge payload"});
  expect_error_containing(
      [&] {
        graph::ChunkedEdgeReader reader(dir_ / "short.pbin",
                                        {.chunk_edges = 4});
        (void)drain(reader);
      },
      {"short.pbin", "truncated edge payload"});
}

TEST_F(IngestTest, PbinErrorsAreTypedIoErrors) {
  // The CLI's `error: <file>: <reason>` line needs the structured fields,
  // not just the legacy what() string.
  std::ofstream(dir_ / "empty.pbin", std::ios::binary).flush();
  try {
    (void)graph::read_bin(dir_ / "empty.pbin");
    FAIL() << "expected graph::IoError";
  } catch (const graph::IoError& e) {
    EXPECT_EQ(e.path().filename(), "empty.pbin");
    EXPECT_EQ(e.reason(), "truncated header");
  }
}

// ---- chunked reader ---------------------------------------------------------

TEST_F(IngestTest, ChunkSizeDoesNotChangeTheStream) {
  const graph::EdgeList g = dirty_graph();
  for (const char* name : {"g.txt", "g.mtx", "g.pbin", "g.bin"}) {
    const auto path = dir_ / name;
    auto w = graph::make_edge_writer(path);
    w->append(g.edges());
    w->finish();
    // chunk=1, a ragged size, and chunk > m must all yield the same edges
    // in the same order as the one-shot reader.
    const graph::EdgeList oneshot = graph::read_coo(path);
    ASSERT_EQ(oneshot.num_edges(), g.num_edges()) << name;
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{7}, g.num_edges() + 13}) {
      graph::ChunkedEdgeReader reader(path, {.chunk_edges = chunk});
      const std::vector<Edge> streamed = drain(reader);
      ASSERT_EQ(streamed.size(), g.num_edges()) << name << " chunk " << chunk;
      for (std::size_t i = 0; i < streamed.size(); ++i) {
        ASSERT_EQ(streamed[i], oneshot[i]) << name << " chunk " << chunk;
      }
    }
  }
}

TEST_F(IngestTest, MmapAndBufferedPathsAgree) {
  const graph::EdgeList g = dirty_graph();
  for (const char* name : {"g.txt", "g.pbin"}) {
    const auto path = dir_ / name;
    auto w = graph::make_edge_writer(path);
    w->append(g.edges());
    w->finish();
    graph::ChunkedEdgeReader mapped(path, {.chunk_edges = 32, .use_mmap = true});
    graph::ChunkedEdgeReader buffered(path,
                                      {.chunk_edges = 32, .use_mmap = false});
    EXPECT_FALSE(buffered.mapped());
    const std::vector<Edge> a = drain(mapped);
    const std::vector<Edge> b = drain(buffered);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << name;
  }
}

TEST_F(IngestTest, DeclaredCountsComeFromHeaders) {
  const graph::EdgeList g = graph::gen::wheel(9);
  graph::write_bin(g, dir_ / "g.pbin");
  graph::write_coo_mtx(g, dir_ / "g.mtx");
  graph::write_coo_text(g, dir_ / "g.txt");

  graph::ChunkedEdgeReader pbin(dir_ / "g.pbin");
  EXPECT_EQ(pbin.declared_edges().value(), g.num_edges());
  EXPECT_EQ(pbin.declared_nodes().value(), g.num_nodes());

  graph::ChunkedEdgeReader mtx(dir_ / "g.mtx");
  EXPECT_EQ(mtx.declared_edges().value(), g.num_edges());
  EXPECT_EQ(mtx.declared_nodes().value(), g.num_nodes());

  graph::ChunkedEdgeReader text(dir_ / "g.txt");
  EXPECT_FALSE(text.declared_edges().has_value());
}

TEST_F(IngestTest, TextErrorsNameFileAndOneBasedLine) {
  std::ofstream(dir_ / "bad.txt") << "# comment\n1 2\n3 four\n";
  expect_error_containing(
      [&] {
        graph::ChunkedEdgeReader reader(dir_ / "bad.txt");
        (void)drain(reader);
      },
      {"bad.txt", "line 3", "two integers"});
  expect_error_containing([&] { (void)graph::read_coo(dir_ / "bad.txt"); },
                          {"bad.txt", "line 3"});
}

TEST_F(IngestTest, MtxErrorsNameFileAndLine) {
  std::ofstream(dir_ / "short.mtx")
      << "%%MatrixMarket matrix coordinate pattern general\n"
      << "5 5 3\n"
      << "1 2\n"
      << "2 3\n";
  expect_error_containing([&] { (void)graph::read_coo_mtx(dir_ / "short.mtx"); },
                          {"short.mtx", "fewer entries"});

  std::ofstream(dir_ / "oob.mtx")
      << "%%MatrixMarket matrix coordinate pattern general\n"
      << "3 3 1\n"
      << "4 1\n";
  expect_error_containing([&] { (void)graph::read_coo_mtx(dir_ / "oob.mtx"); },
                          {"oob.mtx", "line 3", "exceeds"});
}

TEST_F(IngestTest, UnknownExtensionIsRejectedWithTheSupportedList) {
  std::ofstream(dir_ / "g.csv") << "1,2\n";
  expect_error_containing([&] { (void)graph::read_coo(dir_ / "g.csv"); },
                          {"g.csv", "unsupported", ".pbin"});
  expect_error_containing(
      [&] { graph::ChunkedEdgeReader reader(dir_ / "g.csv"); },
      {"g.csv", "unsupported"});
  expect_error_containing([&] { (void)graph::make_edge_writer(dir_ / "g.csv"); },
                          {"g.csv", "unsupported"});
}

// ---- ingest pipeline --------------------------------------------------------

TEST_F(IngestTest, StreamedEstimatesBitIdenticalToOneShot) {
  // The acceptance bar: add_edges chunk-at-a-time must reproduce the
  // one-shot count() exactly — on the exact backend trivially, on the pim
  // backend because the reservoir sees the identical arrival order.
  graph::EdgeList g = graph::gen::barabasi_albert(300, 4, 13);
  graph::gen::add_hubs(g, 2, 40, 14);
  const auto path = dir_ / "g.pbin";
  graph::write_bin(g, path);

  for (const char* backend : {"cpu-fast", "pim", "cpu"}) {
    engine::EngineConfig cfg;
    cfg.seed = 99;
    cfg.num_colors = 4;
    const double oneshot = engine::make_engine(backend, cfg)->count(g).estimate;
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{57}, g.num_edges() + 5}) {
      for (const bool overlap : {true, false}) {
        auto eng = engine::make_engine(backend, cfg);
        engine::IngestOptions iopt;
        iopt.reader.chunk_edges = chunk;
        iopt.overlap_io = overlap;
        const engine::IngestStats stats = engine::ingest_file(*eng, path, iopt);
        EXPECT_EQ(stats.edges_ingested, g.num_edges());
        EXPECT_EQ(stats.node_bound, g.num_nodes());
        const double streamed = eng->recount().estimate;
        EXPECT_EQ(streamed, oneshot)
            << backend << " chunk " << chunk << " overlap " << overlap;
      }
    }
  }
}

TEST_F(IngestTest, FiltersDropLoopsAndDuplicatesOrderPreserving) {
  const graph::EdgeList g = dirty_graph();  // 2 loops, 2 duplicates appended
  const auto path = dir_ / "g.pbin";
  graph::write_bin(g, path);

  engine::IngestOptions iopt;
  iopt.reader.chunk_edges = 16;
  iopt.drop_self_loops = true;
  iopt.dedup = engine::DedupMode::kGlobal;
  std::vector<Edge> fed;
  graph::ChunkedEdgeReader reader(path, iopt.reader);
  const engine::IngestStats stats = engine::ingest_stream(
      reader,
      [&](std::span<const Edge> c) { fed.insert(fed.end(), c.begin(), c.end()); },
      iopt);

  EXPECT_EQ(stats.edges_read, g.num_edges());
  EXPECT_EQ(stats.self_loops_dropped, 2u);
  EXPECT_EQ(stats.duplicates_dropped, 2u);
  EXPECT_EQ(stats.edges_ingested, fed.size());
  EXPECT_EQ(fed.size(), g.num_edges() - 4);
  // Order-preserving: the survivors are the clean prefix graph, in order.
  for (std::size_t i = 0; i < fed.size(); ++i) EXPECT_EQ(fed[i], g[i]);
}

TEST_F(IngestTest, ChunkDedupOnlySeesWithinChunkDuplicates) {
  graph::EdgeList g;
  g.push_back({0, 1});
  g.push_back({1, 0});  // duplicate inside chunk 1
  g.push_back({2, 3});
  g.push_back({0, 1});  // duplicate of chunk 1, lands in chunk 2
  const auto path = dir_ / "dup.pbin";
  graph::write_bin(g, path);

  engine::IngestOptions iopt;
  iopt.reader.chunk_edges = 2;
  iopt.dedup = engine::DedupMode::kChunk;
  graph::ChunkedEdgeReader reader(path, iopt.reader);
  const engine::IngestStats stats =
      engine::ingest_stream(reader, [](std::span<const Edge>) {}, iopt);
  EXPECT_EQ(stats.duplicates_dropped, 1u);
  EXPECT_EQ(stats.edges_ingested, 3u);
}

TEST_F(IngestTest, DegreeHistogramMatchesInMemoryCount)  {
  const graph::EdgeList g = dirty_graph();
  const auto path = dir_ / "g.pbin";
  graph::write_bin(g, path);

  const std::vector<std::uint32_t> degrees = engine::stream_degrees(path);
  std::vector<std::uint32_t> expect(g.num_nodes(), 0);
  for (const Edge& e : g.edges()) {
    if (e.is_loop()) continue;  // stream_degrees excludes loops
    ++expect[e.u];
    ++expect[e.v];
  }
  ASSERT_EQ(degrees.size(), expect.size());
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    ASSERT_EQ(degrees[i], expect[i]) << "node " << i;
  }
}

TEST_F(IngestTest, EmptyGraphStreamsCleanly) {
  graph::write_bin(graph::EdgeList{}, dir_ / "empty.pbin");
  auto eng = engine::make_engine("cpu-fast", {});
  const engine::IngestStats stats =
      engine::ingest_file(*eng, dir_ / "empty.pbin");
  EXPECT_EQ(stats.edges_read, 0u);
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_EQ(eng->recount().estimate, 0.0);
}

// ---- serving layer ----------------------------------------------------------

TEST_F(IngestTest, SessionManagerIngestFileMatchesSubmit) {
  const graph::EdgeList g = graph::gen::barabasi_albert(200, 3, 21);
  const auto path = dir_ / "g.pbin";
  graph::write_bin(g, path);

  engine::EngineConfig cfg;
  cfg.num_colors = 4;
  cfg.seed = 5;

  serve::SessionManager mgr;
  mgr.open("file", "cpu-fast", cfg);
  mgr.open("mem", "cpu-fast", cfg);

  const serve::FileIngestResult r =
      mgr.ingest_file("file", path, /*chunk_edges=*/64);
  EXPECT_EQ(r.result, serve::SubmitResult::kAccepted);
  EXPECT_EQ(r.updates, g.num_edges());

  std::vector<EdgeUpdate> inserts;
  for (const Edge& e : g.edges()) inserts.push_back(insert_of(e));
  ASSERT_EQ(mgr.submit("mem", inserts), serve::SubmitResult::kAccepted);

  const serve::QueryResult qf = mgr.flush("file");
  const serve::QueryResult qm = mgr.flush("mem");
  EXPECT_EQ(qf.estimate, qm.estimate);
  EXPECT_EQ(qf.stats.updates_applied, g.num_edges());
  mgr.close_all();

  EXPECT_THROW(mgr.ingest_file("gone", path), std::invalid_argument);
}

}  // namespace
}  // namespace pimtc
