// Cross-cutting property tests: invariants that span modules and the
// composed-technique behaviours the paper calls out (e.g. uniform and
// reservoir sampling applied concurrently, Sections 3.2-3.3).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "common/math_util.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"
#include "graph/stats.hpp"
#include "tc/host.hpp"
#include "tc/layout.hpp"

namespace pimtc {
namespace {

pim::PimSystemConfig small_banks() {
  pim::PimSystemConfig cfg;
  cfg.mram_bytes = 8ull << 20;
  return cfg;
}

// ---- composed sampling ---------------------------------------------------

TEST(ComposedSamplingTest, UniformAndReservoirTogetherStayUnbiased) {
  // Section 3.3: "this technique can be applied concurrently with Uniform
  // Sampling".  Both corrections must compose multiplicatively.
  graph::EdgeList g = graph::gen::community(3000, 60, 0.5, 2000, 7);
  graph::preprocess(g, 8);
  const auto truth = static_cast<double>(graph::reference_triangle_count(g));

  tc::TcConfig cfg;
  cfg.num_colors = 3;
  cfg.uniform_p = 0.5;
  cfg.sample_capacity_edges = static_cast<std::uint64_t>(
      0.5 * 0.5 * 6.0 * static_cast<double>(g.num_edges()) / 9.0);

  double sum = 0.0;
  const int trials = 6;
  for (int s = 0; s < trials; ++s) {
    cfg.seed = 4000 + s;
    tc::PimTriangleCounter counter(cfg, small_banks());
    const tc::TcResult r = counter.count(g);
    EXPECT_FALSE(r.exact);
    sum += r.estimate;
  }
  EXPECT_NEAR(sum / trials, truth, truth * 0.15);
}

// ---- estimate invariance properties ---------------------------------------

class InvarianceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvarianceTest, CountInvariantUnderShuffleAndOrientation) {
  // An exact count must not depend on edge order or edge orientation.
  const std::uint64_t seed = GetParam();
  graph::EdgeList g = graph::gen::rmat(
      11, 6000, graph::gen::RmatParams{0.45, 0.22, 0.22, 0.11}, seed);

  tc::TcConfig cfg;
  cfg.num_colors = 4;
  cfg.seed = 7;
  tc::PimTriangleCounter base(cfg, small_banks());
  const TriangleCount expected = base.count(g).rounded();

  graph::shuffle_edges(g, seed + 1);
  for (Edge& e : g.mutable_edges()) {
    if ((e.u ^ e.v ^ seed) & 1) e = e.reversed();
  }
  tc::PimTriangleCounter other(cfg, small_banks());
  EXPECT_EQ(other.count(g).rounded(), expected);
  EXPECT_EQ(expected, graph::reference_triangle_count(g));
}

TEST_P(InvarianceTest, CountInvariantUnderColoringSeed) {
  // The coloring hash is random, but exact counts must not depend on it.
  const std::uint64_t seed = GetParam();
  graph::EdgeList g = graph::gen::barabasi_albert(500, 4, seed);
  const TriangleCount expected = graph::reference_triangle_count(g);
  for (std::uint64_t color_seed = 0; color_seed < 3; ++color_seed) {
    tc::TcConfig cfg;
    cfg.num_colors = 5;
    cfg.seed = color_seed * 977 + 13;
    tc::PimTriangleCounter counter(cfg, small_banks());
    EXPECT_EQ(counter.count(g).rounded(), expected)
        << "color seed " << color_seed;
  }
}

TEST_P(InvarianceTest, CountInvariantUnderIdPermutation) {
  // Triangle count is a graph invariant: permuting node ids changes nothing.
  const std::uint64_t seed = GetParam();
  graph::EdgeList g = graph::gen::community(800, 40, 0.5, 500, seed);
  tc::TcConfig cfg;
  cfg.num_colors = 3;
  tc::PimTriangleCounter a(cfg, small_banks());
  const TriangleCount before = a.count(g).rounded();

  graph::gen::permute_ids(g, seed + 99);
  tc::PimTriangleCounter b(cfg, small_banks());
  EXPECT_EQ(b.count(g).rounded(), before);
}

TEST_P(InvarianceTest, EstimateBitIdenticalUnderIntersectPolicy) {
  // The adaptive intersection moves only modeled work: forcing merge or
  // gallop — with sampling, reservoir overflow and the degree-ordered remap
  // all active — must reproduce the auto estimate bit for bit.
  const std::uint64_t seed = GetParam();
  graph::EdgeList g = graph::gen::barabasi_albert(900, 5, seed);
  graph::gen::add_hubs(g, 2, 200, seed + 1);
  graph::preprocess(g, seed + 2);

  tc::TcConfig cfg;
  cfg.num_colors = 3;
  cfg.uniform_p = 0.8;
  cfg.seed = 31 + seed;
  cfg.misra_gries_enabled = true;
  cfg.degree_ordered_remap = true;
  cfg.mg_capacity = 256;
  cfg.sample_capacity_edges = g.num_edges() / 3;  // forces overflow somewhere

  cfg.intersect = tc::IntersectPolicy::kAuto;
  tc::PimTriangleCounter base(cfg, small_banks());
  const tc::TcResult ref = base.count(g);

  for (const tc::IntersectPolicy policy :
       {tc::IntersectPolicy::kMerge, tc::IntersectPolicy::kGallop}) {
    cfg.intersect = policy;
    tc::PimTriangleCounter counter(cfg, small_banks());
    const tc::TcResult r = counter.count(g);
    EXPECT_EQ(r.estimate, ref.estimate) << tc::to_string(policy);
    EXPECT_EQ(r.raw_total, ref.raw_total) << tc::to_string(policy);
  }
}

TEST_P(InvarianceTest, IncrementalEstimateBitIdenticalUnderIntersectPolicy) {
  // Same invariant through the dynamic path: streamed batches, persistent
  // sorted arcs, incremental recounts.
  const std::uint64_t seed = GetParam();
  graph::EdgeList g = graph::gen::barabasi_albert(700, 4, seed + 50);
  graph::preprocess(g, seed + 51);
  const auto edges = g.edges();
  const std::size_t half = edges.size() / 2;

  double ref_estimate = -1.0;
  for (const tc::IntersectPolicy policy :
       {tc::IntersectPolicy::kAuto, tc::IntersectPolicy::kMerge,
        tc::IntersectPolicy::kGallop}) {
    tc::TcConfig cfg;
    cfg.num_colors = 3;
    cfg.incremental = true;
    cfg.intersect = policy;
    tc::PimTriangleCounter counter(cfg, small_banks());
    counter.add_edges(edges.subspan(0, half));
    (void)counter.recount();
    counter.add_edges(edges.subspan(half));
    const tc::TcResult r = counter.recount();
    EXPECT_TRUE(r.used_incremental);
    if (ref_estimate < 0.0) {
      ref_estimate = r.estimate;
      EXPECT_EQ(r.rounded(), graph::reference_triangle_count(g));
    } else {
      EXPECT_EQ(r.estimate, ref_estimate) << tc::to_string(policy);
    }
  }
}

TEST_P(InvarianceTest, MixedStreamEstimateBitIdenticalUnderPolicies) {
  // Fully-dynamic extension of the invariance battery: a ± update stream
  // (inserts, deletions, re-inserts, with reservoir overflow in play) must
  // produce bit-identical estimates under every placement x intersect
  // policy combination — deletions are estimator state keyed by triplet,
  // never by bank or kernel strategy.
  const std::uint64_t seed = GetParam();
  graph::EdgeList g = graph::gen::barabasi_albert(800, 5, seed + 70);
  graph::gen::add_hubs(g, 2, 200, seed + 71);
  graph::preprocess(g, seed + 72);
  const auto edges = g.edges();
  const std::size_t cut = (edges.size() * 3) / 4;

  double ref = -1.0;
  for (const color::PlacementPolicy placement :
       {color::PlacementPolicy::kIdentity,
        color::PlacementPolicy::kKindInterleave,
        color::PlacementPolicy::kGreedyBalance}) {
    for (const tc::IntersectPolicy intersect :
         {tc::IntersectPolicy::kAuto, tc::IntersectPolicy::kMerge,
          tc::IntersectPolicy::kGallop}) {
      tc::TcConfig cfg;
      cfg.num_colors = 3;
      cfg.seed = 17 + seed;
      cfg.placement = placement;
      cfg.intersect = intersect;
      cfg.sample_capacity_edges = edges.size() / 4;  // overflow somewhere
      tc::PimTriangleCounter counter(cfg, small_banks());
      counter.add_edges(edges.subspan(0, cut));
      counter.remove_edges(edges.subspan(100, 150));
      counter.add_edges(edges.subspan(cut));
      counter.remove_edges(edges.subspan(0, 60));
      counter.add_edges(edges.subspan(100, 50));  // re-insert some deleted
      const tc::TcResult r = counter.recount();
      if (ref < 0.0) {
        ref = r.estimate;
      } else {
        EXPECT_EQ(r.estimate, ref)
            << color::to_string(placement) << " x " << tc::to_string(intersect);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvarianceTest, ::testing::Values(1, 2, 3, 4));

TEST(AdaptiveIntersectionTest, CutsStaticCountInstructionsOnHubGraphs) {
  // The PR-4 acceptance bar, pinned: on a hub-heavy BA+hubs graph (ids
  // permuted, as in real datasets), the adaptive default must cut static
  // counting-phase instructions >= 1.5x vs the legacy path (linear merge +
  // uncached full-table region searches) at default params, with the
  // estimate unchanged.
  graph::EdgeList g = graph::gen::barabasi_albert(3000, 5, 11);
  graph::gen::add_hubs(g, 3, 750, 12);
  graph::gen::permute_ids(g, 13);
  graph::preprocess(g, 14);

  tc::TcConfig legacy_cfg;
  legacy_cfg.intersect = tc::IntersectPolicy::kMerge;
  legacy_cfg.region_cache = false;
  tc::PimTriangleCounter legacy(legacy_cfg, small_banks());
  const tc::TcResult legacy_r = legacy.count(g);

  tc::TcConfig adaptive_cfg;  // defaults: auto policy, cache on
  tc::PimTriangleCounter adaptive(adaptive_cfg, small_banks());
  const tc::TcResult adaptive_r = adaptive.count(g);

  EXPECT_EQ(adaptive_r.estimate, legacy_r.estimate);
  EXPECT_GT(adaptive_r.count_instructions, 0u);
  EXPECT_GE(static_cast<double>(legacy_r.count_instructions),
            1.5 * static_cast<double>(adaptive_r.count_instructions));
  // The modeled count phase must improve too, not just the op counts.
  EXPECT_LT(adaptive_r.times.count_s, legacy_r.times.count_s);
}

// ---- simulated-time sanity -------------------------------------------------

TEST(TimingPropertiesTest, MoreEdgesNeverFaster) {
  tc::TcConfig cfg;
  cfg.num_colors = 4;
  double prev = 0.0;
  for (const EdgeCount m : {2'000ull, 8'000ull, 32'000ull}) {
    graph::EdgeList g = graph::gen::erdos_renyi(4000, m, 5);
    tc::PimTriangleCounter counter(cfg, small_banks());
    const tc::TcResult r = counter.count(g);
    const double sim = r.times.sample_creation_s + r.times.count_s;
    EXPECT_GT(sim, prev) << m;
    prev = sim;
  }
}

TEST(TimingPropertiesTest, MoreTaskletsNeverSlower) {
  graph::EdgeList g = graph::gen::erdos_renyi(2000, 16'000, 9);
  double prev = 1e300;
  for (const std::uint32_t tasklets : {1u, 4u, 16u}) {
    tc::TcConfig cfg;
    cfg.num_colors = 3;
    cfg.tasklets = tasklets;
    tc::PimTriangleCounter counter(cfg, small_banks());
    const tc::TcResult r = counter.count(g);
    EXPECT_LT(r.times.count_s, prev * 1.02) << tasklets;
    prev = r.times.count_s;
  }
}

TEST(TimingPropertiesTest, UniformSamplingSpeedsUpSimulatedPhases) {
  graph::EdgeList g = graph::gen::erdos_renyi(5000, 60'000, 11);
  const auto run = [&](double p) {
    tc::TcConfig cfg;
    cfg.num_colors = 4;
    cfg.uniform_p = p;
    tc::PimTriangleCounter counter(cfg, small_banks());
    const tc::TcResult r = counter.count(g);
    return r.times.sample_creation_s + r.times.count_s;
  };
  const double exact = run(1.0);
  const double sampled = run(0.1);
  EXPECT_LT(sampled, exact / 2.0);
}

// ---- load distribution across the machine -----------------------------------

TEST(LoadPropertiesTest, SeenEdgesSumToReplicationFactor) {
  graph::EdgeList g = graph::gen::erdos_renyi(1500, 12'000, 3);
  graph::preprocess(g, 4);
  for (const std::uint32_t colors : {2u, 5u, 9u}) {
    tc::TcConfig cfg;
    cfg.num_colors = colors;
    tc::PimTriangleCounter counter(cfg, small_banks());
    counter.add_edges(g.edges());
    const auto seen = counter.per_dpu_edges_seen();
    const std::uint64_t total =
        std::accumulate(seen.begin(), seen.end(), std::uint64_t{0});
    EXPECT_EQ(total, static_cast<std::uint64_t>(colors) * g.num_edges());
  }
}

TEST(LoadPropertiesTest, MonoTripletCoresSeeOnlyMonochromaticEdges) {
  // A (c,c,c) core receives an edge iff both endpoints hash to c, so its
  // load must be ~ |E| / C^2 in expectation.
  graph::EdgeList g = graph::gen::erdos_renyi(20'000, 60'000, 13);
  tc::TcConfig cfg;
  cfg.num_colors = 4;
  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(g.edges());
  const auto seen = counter.per_dpu_edges_seen();
  const double expected =
      static_cast<double>(g.num_edges()) / (4.0 * 4.0);
  for (std::uint32_t c = 0; c < 4; ++c) {
    const auto mono = seen[counter.triplets().mono_index(c)];
    EXPECT_NEAR(static_cast<double>(mono), expected, expected * 0.25)
        << "color " << c;
  }
}

// ---- estimator identities ----------------------------------------------------

TEST(EstimatorPropertiesTest, CorrectionFactorsCompose) {
  // reservoir(q) then uniform(p): estimate = raw / q / p^3.  Verify the
  // composition algebra used in recount().
  const double q = reservoir_correction(100, 400);
  const double up = uniform_sampling_correction(0.25);
  const double raw = 1234.0;
  const double composed = raw / q * up;
  EXPECT_DOUBLE_EQ(composed, raw / q * 64.0);
  EXPECT_GT(q, 0.0);
  EXPECT_LT(q, 1.0);
}

TEST(EstimatorPropertiesTest, ReservoirCorrectionMonotoneInOverflow) {
  double prev = 1.1;
  for (const std::uint64_t t : {100ull, 200ull, 400ull, 1600ull}) {
    const double x = reservoir_correction(100, t);
    EXPECT_LT(x, prev) << t;
    prev = x;
  }
}

// ---- failure injection ---------------------------------------------------------

TEST(FailureInjectionTest, MramTooSmallIsRejectedAtConstruction) {
  pim::PimSystemConfig tiny;
  tiny.mram_bytes = 1024;  // cannot hold even the fixed layout
  tc::TcConfig cfg;
  cfg.num_colors = 2;
  EXPECT_THROW(tc::PimTriangleCounter(cfg, tiny), std::invalid_argument);
}

TEST(FailureInjectionTest, CapacityClampedToBankLayout) {
  pim::PimSystemConfig banks;
  banks.mram_bytes = 1 << 20;
  tc::TcConfig cfg;
  cfg.num_colors = 2;
  cfg.sample_capacity_edges = 1ull << 40;  // absurd request
  tc::PimTriangleCounter counter(cfg, banks);
  EXPECT_LE(counter.sample_capacity(),
            tc::MramLayout::max_capacity(banks.mram_bytes));
  // And the run still works within the clamp.
  graph::EdgeList g = graph::gen::complete(16);
  EXPECT_EQ(counter.count(g).rounded(), binomial(16, 3));
}

TEST(FailureInjectionTest, EmptyGraphCountsZero) {
  tc::TcConfig cfg;
  cfg.num_colors = 3;
  tc::PimTriangleCounter counter(cfg, small_banks());
  const tc::TcResult r = counter.count(graph::EdgeList{});
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.rounded(), 0u);
}

TEST(FailureInjectionTest, LoopOnlyGraphCountsZero) {
  graph::EdgeList g;
  for (NodeId u = 0; u < 50; ++u) g.push_back({u, u});
  tc::TcConfig cfg;
  cfg.num_colors = 2;
  tc::PimTriangleCounter counter(cfg, small_banks());
  EXPECT_EQ(counter.count(g).rounded(), 0u);
}

}  // namespace
}  // namespace pimtc
