// Tests for the DPU counting kernel in isolation: a single DPU is loaded
// with a full (un-partitioned) edge sample, and the kernel must produce the
// exact triangle count — checked against the trusted reference.  Also
// exercises the remap path, layout invariants and WRAM discipline.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"
#include "graph/stats.hpp"
#include "pim/dpu.hpp"
#include "tc/kernel.hpp"
#include "tc/layout.hpp"

namespace pimtc::tc {
namespace {

pim::PimSystemConfig test_config() {
  pim::PimSystemConfig cfg;
  cfg.mram_bytes = 16ull << 20;
  return cfg;
}

/// Loads `edges` into a fresh DPU's sample region and runs the kernel.
DpuMeta run_kernel_on(pim::Dpu& dpu, const std::vector<Edge>& edges,
                      const KernelParams& params,
                      const std::vector<NodeId>& remap = {}) {
  DpuMeta meta;
  meta.sample_size = edges.size();
  meta.edges_seen = edges.size();
  meta.sample_capacity = edges.size() + 1;
  meta.num_remap = static_cast<std::uint32_t>(remap.size());
  dpu.mram().write_t(MramLayout::kMetaOffset, meta);
  if (!remap.empty()) {
    dpu.mram().write(MramLayout::kRemapOffset, remap.data(),
                     remap.size() * sizeof(NodeId));
  }
  if (!edges.empty()) {
    dpu.mram().write(MramLayout::sample_offset(), edges.data(),
                     edges.size() * sizeof(Edge));
  }
  run_count_kernel(dpu, params);
  return dpu.mram().read_t<DpuMeta>(MramLayout::kMetaOffset);
}

std::vector<Edge> to_vector(const graph::EdgeList& g) {
  return {g.begin(), g.end()};
}

class KernelExactnessTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(KernelExactnessTest, MatchesReferenceOnRandomGraphs) {
  const auto [seed, tasklets] = GetParam();
  const graph::EdgeList g =
      graph::gen::erdos_renyi(300, 1800, static_cast<std::uint64_t>(seed));
  const TriangleCount expected = graph::reference_triangle_count(g);

  pim::Dpu dpu(test_config(), 0);
  KernelParams params;
  params.tasklets = tasklets;
  const DpuMeta out = run_kernel_on(dpu, to_vector(g), params);
  EXPECT_EQ(out.triangle_count, expected);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTasklets, KernelExactnessTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(1u, 2u, 11u, 16u)));

TEST(KernelTest, EmptySampleCountsZero) {
  pim::Dpu dpu(test_config(), 0);
  const DpuMeta out = run_kernel_on(dpu, {}, KernelParams{});
  EXPECT_EQ(out.triangle_count, 0u);
  EXPECT_EQ(out.num_regions, 0u);
}

TEST(KernelTest, SingleEdgeCountsZero) {
  pim::Dpu dpu(test_config(), 0);
  const DpuMeta out = run_kernel_on(dpu, {{0, 1}}, KernelParams{});
  EXPECT_EQ(out.triangle_count, 0u);
  EXPECT_EQ(out.num_regions, 1u);
}

TEST(KernelTest, SingleTriangleAnyOrientation) {
  // All 8 orientation combinations of the triangle's edges must count 1.
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}};
    for (int b = 0; b < 3; ++b) {
      if (mask & (1 << b)) edges[b] = edges[b].reversed();
    }
    pim::Dpu dpu(test_config(), 0);
    const DpuMeta out = run_kernel_on(dpu, edges, KernelParams{});
    EXPECT_EQ(out.triangle_count, 1u) << "orientation mask " << mask;
  }
}

TEST(KernelTest, CompleteGraphExactCount) {
  const graph::EdgeList g = graph::gen::complete(40);  // binom(40,3) = 9880
  pim::Dpu dpu(test_config(), 0);
  const DpuMeta out = run_kernel_on(dpu, to_vector(g), KernelParams{});
  EXPECT_EQ(out.triangle_count, 9880u);
}

TEST(KernelTest, ShuffledInputSameCount) {
  graph::EdgeList g = graph::gen::wheel(50);
  const TriangleCount expected = graph::reference_triangle_count(g);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    graph::shuffle_edges(g, seed);
    pim::Dpu dpu(test_config(), 0);
    const DpuMeta out = run_kernel_on(dpu, to_vector(g), KernelParams{});
    EXPECT_EQ(out.triangle_count, expected) << "seed " << seed;
  }
}

TEST(KernelTest, RegionCountEqualsDistinctFirstNodes) {
  // After canonicalization+sort, regions = distinct min-endpoints.
  const std::vector<Edge> edges = {{5, 1}, {1, 2}, {2, 3}, {1, 7}, {4, 9}};
  // canonical first nodes: 1 (from 5,1), 1, 2, 1, 4 -> distinct {1, 2, 4}.
  pim::Dpu dpu(test_config(), 0);
  const DpuMeta out = run_kernel_on(dpu, edges, KernelParams{});
  EXPECT_EQ(out.num_regions, 3u);
}

TEST(KernelTest, RemapPreservesCount) {
  // Remapping node ids is a graph isomorphism: counts must not change.
  const graph::EdgeList g = graph::gen::barabasi_albert(400, 5, 17);
  const TriangleCount expected = graph::reference_triangle_count(g);

  // Remap the 8 highest-degree nodes (any nodes work for correctness).
  const auto deg = graph::degrees(g);
  std::vector<NodeId> by_degree(deg.size());
  for (NodeId u = 0; u < deg.size(); ++u) by_degree[u] = u;
  std::sort(by_degree.begin(), by_degree.end(),
            [&deg](NodeId a, NodeId b) { return deg[a] > deg[b]; });
  by_degree.resize(8);

  pim::Dpu dpu(test_config(), 0);
  const DpuMeta out =
      run_kernel_on(dpu, to_vector(g), KernelParams{}, by_degree);
  EXPECT_EQ(out.triangle_count, expected);
}

TEST(KernelTest, HubPathologyHandledByGallopAndRemap) {
  // The Section 3.5 pathology: hub 0 (lowest id) neighbors every leaf, and
  // every leaf also points at a high-id anchor.  Each hub edge (0, x) then
  // intersects the *remainder of the hub's huge region* against
  // region(x) = {anchor}; a pure linear merge walks O(deg) edges per hub
  // edge — O(deg^2) total.  Two independent mechanisms now collapse it:
  // the adaptive intersection gallops the 1-element region into the hub's
  // (small * log(large)), and the high-degree remap moves the hub to the
  // highest id so its region is never the intersected suffix at all.
  const NodeId n = 1500;  // anchor node id
  graph::EdgeList g;
  for (NodeId x = 1; x < n; ++x) {
    g.push_back({0, x});
    g.push_back({x, n});
  }
  g.push_back({0, n});
  const TriangleCount expected = graph::reference_triangle_count(g);
  ASSERT_EQ(expected, n - 1);  // triangles (0, x, anchor)

  KernelParams merge_only;
  merge_only.intersect = IntersectPolicy::kMerge;

  pim::Dpu merged(test_config(), 0);
  const DpuMeta out_merge = run_kernel_on(merged, to_vector(g), merge_only);

  pim::Dpu adaptive(test_config(), 1);
  const DpuMeta out_adapt = run_kernel_on(adaptive, to_vector(g),
                                          KernelParams{});  // auto policy

  pim::Dpu remapped(test_config(), 2);
  const DpuMeta out_remap =
      run_kernel_on(remapped, to_vector(g), KernelParams{}, {0});  // hub = 0

  EXPECT_EQ(out_merge.triangle_count, expected);
  EXPECT_EQ(out_adapt.triangle_count, expected);
  EXPECT_EQ(out_remap.triangle_count, expected);
  // The adaptive intersection alone must yield a large win over the pure
  // merge (it galloped the hub intersections)...
  EXPECT_GT(out_adapt.gallop_isects, 0u);
  EXPECT_LT(adaptive.cycles() * 5.0, merged.cycles());
  // ...and the degree remap still helps on top (hub region gone entirely).
  EXPECT_LT(remapped.cycles(), adaptive.cycles());
}

TEST(KernelTest, MoreTaskletsReduceSimulatedTime) {
  const graph::EdgeList g = graph::gen::erdos_renyi(500, 4000, 5);
  KernelParams p1;
  p1.tasklets = 1;
  KernelParams p16;
  p16.tasklets = 16;

  pim::Dpu d1(test_config(), 0);
  (void)run_kernel_on(d1, to_vector(g), p1);
  pim::Dpu d16(test_config(), 1);
  (void)run_kernel_on(d16, to_vector(g), p16);
  EXPECT_LT(d16.cycles(), d1.cycles());
}

TEST(KernelTest, BufferSizeDoesNotChangeResult) {
  const graph::EdgeList g = graph::gen::erdos_renyi(400, 3000, 9);
  const TriangleCount expected = graph::reference_triangle_count(g);
  for (const std::uint32_t buf : {8u, 16u, 64u, 256u}) {
    KernelParams p;
    p.buffer_edges = buf;
    pim::Dpu dpu(test_config(), 0);
    const DpuMeta out = run_kernel_on(dpu, to_vector(g), p);
    EXPECT_EQ(out.triangle_count, expected) << "buffer " << buf;
  }
}

TEST(KernelTest, SampleRegionUntouchedByKernel) {
  // The kernel sorts a *copy*; the reservoir sample must stay byte-identical
  // (dynamic counting depends on it).
  const std::vector<Edge> edges = {{9, 2}, {3, 1}, {2, 3}, {1, 9}, {2, 1}};
  pim::Dpu dpu(test_config(), 0);
  (void)run_kernel_on(dpu, edges, KernelParams{});
  std::vector<Edge> after(edges.size());
  dpu.mram().read(MramLayout::sample_offset(), after.data(),
                  after.size() * sizeof(Edge));
  EXPECT_EQ(after, edges);
}

TEST(KernelTest, RepeatedRunsAreIdempotent) {
  const graph::EdgeList g = graph::gen::erdos_renyi(200, 1200, 3);
  pim::Dpu dpu(test_config(), 0);
  const DpuMeta first = run_kernel_on(dpu, to_vector(g), KernelParams{});
  run_count_kernel(dpu, KernelParams{});
  const DpuMeta second = dpu.mram().read_t<DpuMeta>(MramLayout::kMetaOffset);
  EXPECT_EQ(first.triangle_count, second.triangle_count);
  EXPECT_EQ(first.num_regions, second.num_regions);
}

TEST(KernelTest, LayoutOffsetsAreDisjoint) {
  const std::uint64_t cap = 1000;
  EXPECT_GE(MramLayout::sample_offset(), MramLayout::kRemapOffset +
                                             MramLayout::kMaxRemap *
                                                 sizeof(NodeId));
  // sample (M edges) | S* (2M arcs) | flags (2M bytes) | A (2M) | B (2M) |
  // regions (2M entries).
  EXPECT_EQ(MramLayout::sorted_offset(cap),
            MramLayout::sample_offset() + cap * sizeof(Edge));
  EXPECT_EQ(MramLayout::flags_offset(cap),
            MramLayout::sorted_offset(cap) + 2 * cap * sizeof(Edge));
  EXPECT_GE(MramLayout::work_a_offset(cap),
            MramLayout::flags_offset(cap) + 2 * cap);
  EXPECT_EQ(MramLayout::work_b_offset(cap),
            MramLayout::work_a_offset(cap) + 2 * cap * sizeof(Edge));
  EXPECT_EQ(MramLayout::region_offset(cap),
            MramLayout::work_b_offset(cap) + 2 * cap * sizeof(Edge));
}

TEST(KernelTest, MaxCapacityLeavesRoomForScratch) {
  const std::uint64_t mram = 64ull << 20;
  const std::uint64_t cap = MramLayout::max_capacity(mram);
  EXPECT_GT(cap, 0u);
  EXPECT_LE(MramLayout::total_bytes(cap), mram);
}

TEST(KernelTest, RemappedIdsAreAboveAllRealIds) {
  EXPECT_GT(remapped_id(0), remapped_id(1));
  EXPECT_EQ(remapped_id(0), kInvalidNode - 1);
}

TEST(KernelTest, MaxCapacityClampsToRegionIndexRange) {
  // RegionEntry.begin is 32-bit: even an absurd simulated bank must not
  // derive a capacity whose 2M-arc arrays it could not index.
  EXPECT_EQ(MramLayout::max_capacity(1ull << 60),
            MramLayout::kMaxCapacityEdges);
  EXPECT_LE(2 * MramLayout::kMaxCapacityEdges - 1,
            std::uint64_t{std::numeric_limits<std::uint32_t>::max()});
}

TEST(KernelTest, RejectsCapacityBeyondRegionIndexRange) {
  // Boundary regression for the RegionEntry.begin truncation hazard: a
  // control block one past kMaxCapacityEdges is rejected by both kernels
  // before any work; the boundary value itself is accepted.
  pim::Dpu dpu(test_config(), 0);
  DpuMeta meta;
  meta.sample_size = 0;
  meta.sample_capacity = MramLayout::kMaxCapacityEdges + 1;
  dpu.mram().write_t(MramLayout::kMetaOffset, meta);
  EXPECT_THROW(run_count_kernel(dpu, KernelParams{}), std::logic_error);
  EXPECT_THROW(run_incremental_kernel(dpu, KernelParams{}), std::logic_error);

  meta.sample_capacity = MramLayout::kMaxCapacityEdges;
  dpu.mram().write_t(MramLayout::kMetaOffset, meta);
  EXPECT_NO_THROW(run_count_kernel(dpu, KernelParams{}));
}

// ---- intersection-policy equivalence --------------------------------------

/// Adversarial region shapes for the adaptive intersection: a pure star
/// (one huge region, no triangles), a clique (all regions dense), two hubs
/// sharing every leaf (huge x huge intersections with matches), and a
/// skewed power-law graph with planted mega-hubs.
std::vector<std::pair<const char*, graph::EdgeList>> adversarial_graphs() {
  std::vector<std::pair<const char*, graph::EdgeList>> out;
  out.emplace_back("star", graph::gen::star(500));
  out.emplace_back("clique", graph::gen::complete(40));

  graph::EdgeList two_hub;
  for (NodeId x = 2; x < 400; ++x) {
    two_hub.push_back({0, x});
    two_hub.push_back({1, x});
  }
  two_hub.push_back({0, 1});
  out.emplace_back("two-hub", std::move(two_hub));

  graph::EdgeList skewed = graph::gen::barabasi_albert(600, 5, 77);
  graph::gen::add_hubs(skewed, 2, 150, 78);
  graph::preprocess(skewed, 79);
  out.emplace_back("skewed-power-law", std::move(skewed));
  return out;
}

constexpr IntersectPolicy kAllPolicies[] = {
    IntersectPolicy::kMerge, IntersectPolicy::kGallop, IntersectPolicy::kAuto};

TEST(IntersectPolicyTest, StaticCountsBitIdenticalAcrossPolicies) {
  for (const auto& [name, g] : adversarial_graphs()) {
    const TriangleCount expected = graph::reference_triangle_count(g);
    for (const IntersectPolicy policy : kAllPolicies) {
      KernelParams p;
      p.intersect = policy;
      pim::Dpu dpu(test_config(), 0);
      const DpuMeta out = run_kernel_on(dpu, to_vector(g), p);
      EXPECT_EQ(out.triangle_count, expected)
          << name << " under " << to_string(policy);
    }
  }
}

TEST(IntersectPolicyTest, TallyReflectsForcedPolicy) {
  const graph::EdgeList g = adversarial_graphs()[3].second;  // skewed
  KernelParams p;

  p.intersect = IntersectPolicy::kMerge;
  pim::Dpu merged(test_config(), 0);
  const DpuMeta out_m = run_kernel_on(merged, to_vector(g), p);
  EXPECT_GT(out_m.merge_isects, 0u);
  EXPECT_GT(out_m.merge_picks, 0u);
  EXPECT_EQ(out_m.gallop_isects, 0u);
  EXPECT_EQ(out_m.gallop_probes, 0u);
  EXPECT_GT(out_m.chunks_claimed, 0u);

  p.intersect = IntersectPolicy::kGallop;
  pim::Dpu galloped(test_config(), 1);
  const DpuMeta out_g = run_kernel_on(galloped, to_vector(g), p);
  EXPECT_GT(out_g.gallop_isects, 0u);
  EXPECT_GT(out_g.gallop_probes, 0u);
  EXPECT_EQ(out_g.merge_isects, 0u);
  EXPECT_EQ(out_g.merge_picks, 0u);

  p.intersect = IntersectPolicy::kAuto;
  pim::Dpu adaptive(test_config(), 2);
  const DpuMeta out_a = run_kernel_on(adaptive, to_vector(g), p);
  // The skewed graph must exercise both paths under the cost model.
  EXPECT_GT(out_a.merge_isects, 0u);
  EXPECT_GT(out_a.gallop_isects, 0u);
  EXPECT_EQ(out_a.merge_isects + out_a.gallop_isects,
            out_m.merge_isects + out_m.gallop_isects);
}

TEST(IntersectPolicyTest, GallopMarginShiftsTheCrossover) {
  const graph::EdgeList g = adversarial_graphs()[3].second;  // skewed
  KernelParams p;
  p.gallop_margin = 1;  // most gallop-happy
  pim::Dpu loose(test_config(), 0);
  const DpuMeta out_loose = run_kernel_on(loose, to_vector(g), p);
  p.gallop_margin = 64;  // pushes nearly everything back to merge
  pim::Dpu strict(test_config(), 1);
  const DpuMeta out_strict = run_kernel_on(strict, to_vector(g), p);
  EXPECT_GT(out_loose.gallop_isects, out_strict.gallop_isects);
  EXPECT_EQ(out_loose.triangle_count, out_strict.triangle_count);
}

// ---- incremental kernel --------------------------------------------------

/// Loads `prefix` edges, runs a persisting full count, appends the rest in
/// `batches` chunks via the incremental kernel, and returns the final meta.
DpuMeta run_incremental_on(pim::Dpu& dpu, const std::vector<Edge>& edges,
                           std::size_t prefix, std::size_t batches,
                           const KernelParams& params,
                           const std::vector<NodeId>& remap = {}) {
  DpuMeta meta;
  meta.sample_size = prefix;
  meta.edges_seen = prefix;
  meta.sample_capacity = edges.size() + 1;
  meta.num_remap = static_cast<std::uint32_t>(remap.size());
  meta.flags = DpuMeta::kFlagPersistSorted;
  dpu.mram().write_t(MramLayout::kMetaOffset, meta);
  if (!remap.empty()) {
    dpu.mram().write(MramLayout::kRemapOffset, remap.data(),
                     remap.size() * sizeof(NodeId));
  }
  dpu.mram().write(MramLayout::sample_offset(), edges.data(),
                   prefix * sizeof(Edge));
  run_count_kernel(dpu, params);

  const std::size_t rest = edges.size() - prefix;
  const std::size_t step = std::max<std::size_t>(1, rest / batches);
  std::size_t done = prefix;
  while (done < edges.size()) {
    const std::size_t hi = std::min(edges.size(), done + step);
    dpu.mram().write(MramLayout::sample_offset() + done * sizeof(Edge),
                     edges.data() + done, (hi - done) * sizeof(Edge));
    meta = dpu.mram().read_t<DpuMeta>(MramLayout::kMetaOffset);
    meta.sample_size = hi;
    meta.edges_seen = hi;
    dpu.mram().write_t(MramLayout::kMetaOffset, meta);
    run_incremental_kernel(dpu, params);
    done = hi;
  }
  return dpu.mram().read_t<DpuMeta>(MramLayout::kMetaOffset);
}

class IncrementalKernelTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IncrementalKernelTest, CumulativeCountMatchesReference) {
  const auto [seed, batches] = GetParam();
  graph::EdgeList g =
      graph::gen::erdos_renyi(250, 1500, static_cast<std::uint64_t>(seed));
  graph::shuffle_edges(g, static_cast<std::uint64_t>(seed) + 7);
  const TriangleCount expected = graph::reference_triangle_count(g);

  pim::Dpu dpu(test_config(), 0);
  const DpuMeta out = run_incremental_on(dpu, to_vector(g),
                                         g.num_edges() / 3, batches,
                                         KernelParams{});
  EXPECT_EQ(out.triangle_count, expected)
      << "seed=" << seed << " batches=" << batches;
}

INSTANTIATE_TEST_SUITE_P(SeedsAndBatches, IncrementalKernelTest,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 3, 7)));

TEST(IncrementalKernelTest, TriangleOwnershipClasses) {
  // Craft a graph where the update contains triangles with exactly one, two
  // and three new edges, plus a triangle whose apex is *smaller* than the
  // new edge's endpoints (the case a canonical-only index would miss).
  const std::vector<Edge> old_edges = {
      {0, 1}, {1, 2},          // wedge: closing edge (0,2) arrives later
      {10, 11},                // one old edge of a 2-new triangle
      {20, 21}, {20, 22}, {21, 22},  // an old triangle (must not recount)
      {5, 30}, {5, 31},        // apex 5 < 30,31: new edge (30,31) closes it
  };
  const std::vector<Edge> new_edges = {
      {0, 2},                  // 1-new triangle (0,1,2)
      {10, 12}, {11, 12},      // 2-new triangle (10,11,12)
      {40, 41}, {41, 42}, {40, 42},  // 3-new triangle
      {30, 31},                // closes (5,30,31) with a smaller apex
  };
  std::vector<Edge> all = old_edges;
  all.insert(all.end(), new_edges.begin(), new_edges.end());

  pim::Dpu dpu(test_config(), 0);
  const DpuMeta out = run_incremental_on(dpu, all, old_edges.size(), 1,
                                         KernelParams{});
  // Old triangle counted once by the full pass; four new triangles by the
  // incremental pass.
  EXPECT_EQ(out.triangle_count, 5u);
  EXPECT_EQ(graph::reference_triangle_count(graph::EdgeList(all)), 5u);
}

TEST(IncrementalKernelTest, MatchesFullRecountOnSkewedGraph) {
  graph::EdgeList g = graph::gen::barabasi_albert(500, 5, 23);
  graph::shuffle_edges(g, 24);
  const TriangleCount expected = graph::reference_triangle_count(g);

  pim::Dpu dpu(test_config(), 0);
  const DpuMeta out =
      run_incremental_on(dpu, to_vector(g), g.num_edges() / 2, 4,
                         KernelParams{});
  EXPECT_EQ(out.triangle_count, expected);
}

TEST(IncrementalKernelTest, WorksWithRemapTable) {
  graph::EdgeList g = graph::gen::barabasi_albert(400, 4, 31);
  graph::shuffle_edges(g, 32);
  const TriangleCount expected = graph::reference_triangle_count(g);

  pim::Dpu dpu(test_config(), 0);
  const DpuMeta out = run_incremental_on(dpu, to_vector(g),
                                         g.num_edges() / 2, 3, KernelParams{},
                                         /*remap=*/{0, 1, 2, 3});
  EXPECT_EQ(out.triangle_count, expected);
}

TEST(IncrementalKernelTest, EmptyBatchIsNoop) {
  graph::EdgeList g = graph::gen::complete(20);
  pim::Dpu dpu(test_config(), 0);
  DpuMeta meta;
  meta.sample_size = g.num_edges();
  meta.edges_seen = g.num_edges();
  meta.sample_capacity = g.num_edges() + 1;
  meta.flags = DpuMeta::kFlagPersistSorted;
  dpu.mram().write_t(MramLayout::kMetaOffset, meta);
  dpu.mram().write(MramLayout::sample_offset(), g.edges().data(),
                   g.num_edges() * sizeof(Edge));
  run_count_kernel(dpu, KernelParams{});
  const auto before = dpu.mram().read_t<DpuMeta>(MramLayout::kMetaOffset);
  run_incremental_kernel(dpu, KernelParams{});
  const auto after = dpu.mram().read_t<DpuMeta>(MramLayout::kMetaOffset);
  EXPECT_EQ(before.triangle_count, after.triangle_count);
}

TEST(IncrementalKernelTest, RequiresValidSortedState) {
  pim::Dpu dpu(test_config(), 0);
  DpuMeta meta;
  meta.sample_size = 3;
  meta.sample_capacity = 16;
  dpu.mram().write_t(MramLayout::kMetaOffset, meta);
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}};
  dpu.mram().write(MramLayout::sample_offset(), edges.data(),
                   edges.size() * sizeof(Edge));
  EXPECT_THROW(run_incremental_kernel(dpu, KernelParams{}), std::logic_error);
}

TEST(IncrementalKernelTest, IncrementalIsCheaperThanFullRecount) {
  // Ten updates: cumulative incremental cycles must undercut re-running the
  // full kernel after every update — the Figure 7 mechanism.
  graph::EdgeList g = graph::gen::community(2000, 50, 0.4, 2000, 51);
  graph::shuffle_edges(g, 52);
  const auto edges = to_vector(g);
  const std::size_t prefix = edges.size() / 10;

  pim::Dpu inc(test_config(), 0);
  (void)run_incremental_on(inc, edges, prefix, 9, KernelParams{});

  // Full-recount baseline: count after each of the same 10 states.
  pim::Dpu full(test_config(), 1);
  const std::size_t step = (edges.size() - prefix) / 9;
  std::size_t done = prefix;
  for (int i = 0; i < 10; ++i) {
    DpuMeta meta;
    meta.sample_size = done;
    meta.edges_seen = done;
    meta.sample_capacity = edges.size() + 1;
    full.mram().write_t(MramLayout::kMetaOffset, meta);
    full.mram().write(MramLayout::sample_offset(), edges.data(),
                      done * sizeof(Edge));
    run_count_kernel(full, KernelParams{});
    done = std::min(edges.size(), done + step);
  }
  EXPECT_LT(inc.cycles(), full.cycles());
}

TEST(IncrementalKernelTest, CountsBitIdenticalAcrossIntersectPolicies) {
  // The incremental path exercises the shared intersection with the
  // new-flag ownership callback; every policy must land the same deltas on
  // the same adversarial shapes as the static suite.
  for (const auto& [name, g] : adversarial_graphs()) {
    if (g.num_edges() < 6) continue;
    const TriangleCount expected = graph::reference_triangle_count(g);
    for (const IntersectPolicy policy : kAllPolicies) {
      KernelParams p;
      p.intersect = policy;
      pim::Dpu dpu(test_config(), 0);
      const DpuMeta out =
          run_incremental_on(dpu, to_vector(g), g.num_edges() / 2, 3, p);
      EXPECT_EQ(out.triangle_count, expected)
          << name << " under " << to_string(policy);
    }
  }
}

}  // namespace
}  // namespace pimtc::tc
