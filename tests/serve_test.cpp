// Tests for the multi-tenant serving layer (src/serve/): concurrent
// submit/query parity against a serial replay oracle, snapshot epoch
// monotonicity under concurrent queriers, admission control (per-session
// queue + aggregate budget, reject vs block), the flush() read-your-writes
// barrier, and clean shutdown with in-flight batches.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "serve/session_manager.hpp"

namespace pimtc::serve {
namespace {

engine::EngineConfig small_engine_config(std::uint64_t seed = 42) {
  engine::EngineConfig cfg;
  cfg.num_colors = 4;
  cfg.seed = seed;
  return cfg;
}

/// cpu-incremental with a fixed per-batch apply() delay.  Backpressure
/// tests need the drain to be reliably slower than a tight submit loop —
/// real engines are sometimes fast enough to keep up, making rejections
/// timing-dependent.
class SlowExactEngine final : public engine::TriangleCountEngine {
 public:
  explicit SlowExactEngine(const engine::EngineConfig& cfg)
      : TriangleCountEngine(cfg),
        inner_(engine::make_engine("cpu-incremental", cfg)) {}

  void add_edges(std::span<const Edge> batch) override {
    inner_->add_edges(batch);
  }
  void apply(std::span<const EdgeUpdate> updates) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    inner_->apply(updates);
  }
  engine::CountReport recount() override { return inner_->recount(); }
  [[nodiscard]] engine::EngineCapabilities capabilities() const override {
    return inner_->capabilities();
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "slow-exact";
  }
  void reset_timers() override { inner_->reset_timers(); }

 private:
  std::unique_ptr<engine::TriangleCountEngine> inner_;
};

/// Registers "slow-exact" exactly once (registration is process-global).
const char* slow_backend() {
  static const bool registered = [] {
    engine::register_backend("slow-exact", [](const engine::EngineConfig& c) {
      return std::unique_ptr<engine::TriangleCountEngine>(
          new SlowExactEngine(c));
    });
    return true;
  }();
  (void)registered;
  return "slow-exact";
}

/// One tenant's mixed ± workload: a community graph's edges as inserts,
/// then seeded deletions of a quarter of them.  Deterministic per seed.
std::vector<EdgeUpdate> test_stream(std::uint64_t seed) {
  graph::EdgeList g = graph::gen::community(300, 12, 0.5, 1200, seed);
  graph::preprocess(g, seed + 1);
  std::vector<EdgeUpdate> updates;
  updates.reserve(g.num_edges() + g.num_edges() / 4);
  for (const Edge& e : g.edges()) updates.push_back(insert_of(e));
  Xoshiro256ss rng(derive_seed(seed, 99));
  const std::size_t m = g.num_edges();
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  for (std::size_t i = 0; i < m / 4; ++i) {
    std::swap(order[i], order[i + rng.next_below(m - i)]);
    updates.push_back(delete_of(g[order[i]]));
  }
  return updates;
}

std::vector<std::span<const EdgeUpdate>> batches_of(
    std::span<const EdgeUpdate> updates, std::size_t batch) {
  std::vector<std::span<const EdgeUpdate>> out;
  for (std::size_t off = 0; off < updates.size(); off += batch) {
    out.push_back(updates.subspan(off, std::min(batch, updates.size() - off)));
  }
  return out;
}

/// The ground truth: the same accepted updates, applied serially to a fresh
/// engine under the manager-resolved config, recounted once.
double serial_replay_estimate(const SessionManager& mgr,
                              const std::string& backend,
                              const engine::EngineConfig& cfg,
                              std::span<const EdgeUpdate> updates) {
  auto oracle = engine::make_engine(backend, mgr.resolve_engine_config(cfg));
  oracle->apply(updates);
  return oracle->recount().estimate;
}

// ---- concurrent parity ------------------------------------------------------

TEST(ServeParityTest, ConcurrentSessionsMatchSerialReplay) {
  // N sessions ingest mixed ± streams from their own submitter threads on
  // one manager; after flush every session's served count must be
  // bit-identical to a serial replay of its stream.
  for (const char* backend : {"pim", "cpu-incremental"}) {
    const engine::EngineConfig ecfg = small_engine_config();
    SessionManager mgr;
    constexpr int kSessions = 4;
    std::vector<std::vector<EdgeUpdate>> streams;
    for (int i = 0; i < kSessions; ++i) {
      streams.push_back(test_stream(1000 + i));
      mgr.open("t" + std::to_string(i), backend, ecfg);
    }

    std::vector<std::thread> submitters;
    for (int i = 0; i < kSessions; ++i) {
      submitters.emplace_back([&mgr, &streams, i] {
        for (const auto batch : batches_of(streams[i], 97)) {
          EXPECT_EQ(mgr.submit("t" + std::to_string(i), batch),
                    SubmitResult::kAccepted);
        }
      });
    }
    for (auto& th : submitters) th.join();

    for (int i = 0; i < kSessions; ++i) {
      const std::string name = "t" + std::to_string(i);
      const QueryResult served = mgr.flush(name);
      EXPECT_TRUE(served.exact) << backend;
      EXPECT_GT(served.epoch, 0u);
      EXPECT_EQ(served.estimate,
                serial_replay_estimate(mgr, backend, ecfg, streams[i]))
          << backend << " session " << name;
    }
  }
}

// ---- snapshot semantics -----------------------------------------------------

TEST(ServeSnapshotTest, EpochsNeverRegressUnderConcurrentQueriers) {
  SessionManager mgr;
  mgr.open("t", "cpu-incremental", small_engine_config());
  const std::vector<EdgeUpdate> stream = test_stream(7);

  std::atomic<bool> done{false};
  std::atomic<bool> regressed{false};
  std::vector<std::thread> queriers;
  for (int q = 0; q < 2; ++q) {
    queriers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const QueryResult r = mgr.query("t");
        if (r.epoch < last) regressed.store(true);
        last = r.epoch;
      }
    });
  }
  for (const auto batch : batches_of(stream, 64)) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
  mgr.flush("t");
  done.store(true);
  for (auto& th : queriers) th.join();
  EXPECT_FALSE(regressed.load());
}

TEST(ServeSnapshotTest, QueryBeforeAnyPublishIsEmptyEpochZero) {
  SessionManager mgr;
  mgr.open("t", "cpu", small_engine_config());
  const QueryResult r = mgr.query("t");
  EXPECT_EQ(r.epoch, 0u);
  EXPECT_EQ(r.estimate, 0.0);
  EXPECT_EQ(r.stats.batches_accepted, 0u);
}

TEST(ServeSnapshotTest, FlushIsReadYourWrites) {
  SessionManager mgr;
  const engine::EngineConfig ecfg = small_engine_config();
  mgr.open("t", "cpu-incremental", ecfg);
  const std::vector<EdgeUpdate> stream = test_stream(21);
  for (const auto batch : batches_of(stream, 128)) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
  const QueryResult r = mgr.flush("t");
  // Everything accepted before the flush is applied AND visible.
  EXPECT_EQ(r.stats.updates_applied, r.stats.updates_accepted);
  EXPECT_EQ(r.stats.queue_depth_updates, 0u);
  EXPECT_EQ(r.stats.batches_failed, 0u);
  EXPECT_EQ(r.estimate,
            serial_replay_estimate(mgr, "cpu-incremental", ecfg, stream));
}

// ---- admission control ------------------------------------------------------

TEST(ServeAdmissionTest, RejectPolicyCountsEveryOutcome) {
  // A 1-update queue capacity over a deliberately slow backend: the first
  // batches are admitted via the empty-queue soft bound, later ones find
  // the queue occupied while the drain sleeps in apply() and bounce.
  ServeConfig scfg;
  scfg.queue_capacity_updates = 1;
  SessionManager mgr(scfg);
  mgr.open("t", slow_backend(), small_engine_config(),
           AdmissionPolicy::kReject);
  const std::vector<EdgeUpdate> stream = test_stream(33);

  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::vector<EdgeUpdate> accepted_updates;
  const auto batches = batches_of(stream, 50);
  for (const auto batch : batches) {
    const SubmitResult r = mgr.submit("t", batch);
    if (r == SubmitResult::kAccepted) {
      ++accepted;
      accepted_updates.insert(accepted_updates.end(), batch.begin(),
                              batch.end());
    } else {
      EXPECT_EQ(r, SubmitResult::kQueueFull);
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1u);  // the loop outpaces per-batch recounts

  const QueryResult r = mgr.flush("t");
  EXPECT_EQ(r.stats.batches_accepted + r.stats.batches_rejected,
            batches.size());
  EXPECT_EQ(r.stats.batches_accepted, accepted);
  EXPECT_EQ(r.stats.batches_rejected, rejected);
  EXPECT_EQ(r.stats.updates_applied, r.stats.updates_accepted);
  // The served state is exactly the accepted prefix-set, nothing else.
  EXPECT_EQ(r.estimate,
            serial_replay_estimate(mgr, "cpu-incremental",
                                   small_engine_config(), accepted_updates));
}

TEST(ServeAdmissionTest, BlockPolicyAcceptsEverythingThroughTinyQueue) {
  ServeConfig scfg;
  scfg.queue_capacity_updates = 64;  // forces repeated blocking hand-offs
  SessionManager mgr(scfg);
  const engine::EngineConfig ecfg = small_engine_config();
  mgr.open("t", "cpu-incremental", ecfg, AdmissionPolicy::kBlock);
  const std::vector<EdgeUpdate> stream = test_stream(55);
  for (const auto batch : batches_of(stream, 48)) {
    EXPECT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
  const QueryResult r = mgr.flush("t");
  EXPECT_EQ(r.stats.batches_rejected, 0u);
  EXPECT_EQ(r.stats.updates_applied, stream.size());
  EXPECT_EQ(r.estimate,
            serial_replay_estimate(mgr, "cpu-incremental", ecfg, stream));
}

TEST(ServeAdmissionTest, AggregateBudgetBouncesRejectSessions) {
  // Budget of 1 update across the manager, slow drains: with two tenants
  // spamming, submits must come back kBudgetExhausted while the budget is
  // held through apply(), and both sessions still end consistent with
  // their accepted sets.
  ServeConfig scfg;
  scfg.staging_budget_updates = 1;
  SessionManager mgr(scfg);
  mgr.open("a", slow_backend(), small_engine_config(),
           AdmissionPolicy::kReject);
  mgr.open("b", slow_backend(), small_engine_config(),
           AdmissionPolicy::kReject);
  const std::vector<EdgeUpdate> stream = test_stream(77);

  std::atomic<std::uint64_t> budget_rejects{0};
  std::vector<std::thread> submitters;
  for (const char* name : {"a", "b"}) {
    submitters.emplace_back([&, name] {
      for (const auto batch : batches_of(stream, 40)) {
        const SubmitResult r = mgr.submit(name, batch);
        if (r == SubmitResult::kBudgetExhausted) ++budget_rejects;
      }
    });
  }
  for (auto& th : submitters) th.join();
  EXPECT_GE(budget_rejects.load(), 1u);
  for (const char* name : {"a", "b"}) {
    const QueryResult r = mgr.flush(name);
    EXPECT_EQ(r.stats.updates_applied, r.stats.updates_accepted);
  }
  EXPECT_EQ(mgr.staged_updates(), 0u);
}

TEST(ServeAdmissionTest, BlockedBudgetSubmittersAllComplete) {
  ServeConfig scfg;
  scfg.staging_budget_updates = 32;
  SessionManager mgr(scfg);
  const engine::EngineConfig ecfg = small_engine_config();
  mgr.open("a", "cpu-incremental", ecfg, AdmissionPolicy::kBlock);
  mgr.open("b", "cpu-incremental", ecfg, AdmissionPolicy::kBlock);
  const std::vector<EdgeUpdate> stream = test_stream(91);

  std::vector<std::thread> submitters;
  for (const char* name : {"a", "b"}) {
    submitters.emplace_back([&, name] {
      for (const auto batch : batches_of(stream, 40)) {
        EXPECT_EQ(mgr.submit(name, batch), SubmitResult::kAccepted);
      }
    });
  }
  for (auto& th : submitters) th.join();
  for (const char* name : {"a", "b"}) {
    const QueryResult r = mgr.flush(name);
    EXPECT_EQ(r.stats.updates_applied, stream.size());
    EXPECT_EQ(r.estimate,
              serial_replay_estimate(mgr, "cpu-incremental", ecfg, stream));
  }
}

// ---- lifecycle --------------------------------------------------------------

TEST(ServeLifecycleTest, CloseDrainsInFlightBatches) {
  SessionManager mgr;
  mgr.open("t", "cpu-incremental", small_engine_config());
  const std::vector<EdgeUpdate> stream = test_stream(13);
  std::uint64_t submitted = 0;
  for (const auto batch : batches_of(stream, 64)) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
    submitted += batch.size();
  }
  // close() without an intervening flush: accepted work is never dropped.
  const SessionStats stats = mgr.close("t");
  EXPECT_EQ(stats.updates_applied, submitted);
  EXPECT_EQ(stats.queue_depth_updates, 0u);
  EXPECT_THROW((void)mgr.query("t"), std::invalid_argument);
}

TEST(ServeLifecycleTest, ManagerDestructorDrainsOpenSessions) {
  // Tears down with batches still queued; must neither hang nor crash nor
  // leak the drain task (ASan/TSan would flag a worker touching a dead
  // session).
  SessionManager mgr;
  mgr.open("t", "cpu-incremental", small_engine_config());
  const std::vector<EdgeUpdate> stream = test_stream(17);
  for (const auto batch : batches_of(stream, 32)) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
}

TEST(ServeLifecycleTest, SubmitAfterCloseIsUnknownSession) {
  // close() removes the session from the directory, so later submits fail
  // by name — kClosed is only seen by submitters racing the close itself.
  SessionManager mgr;
  mgr.open("t", "cpu", small_engine_config());
  mgr.close("t");
  const std::vector<EdgeUpdate> one{insert_of(Edge{1, 2})};
  EXPECT_THROW((void)mgr.submit("t", one), std::invalid_argument);
}

TEST(ServeLifecycleTest, DirectoryErrors) {
  SessionManager mgr;
  mgr.open("t", "cpu", small_engine_config());
  EXPECT_THROW(mgr.open("t", "cpu", small_engine_config()),
               std::invalid_argument);                       // duplicate
  EXPECT_THROW(mgr.open("", "cpu", small_engine_config()),
               std::invalid_argument);                       // empty name
  EXPECT_THROW(mgr.open("u", "no-such-backend", small_engine_config()),
               std::invalid_argument);                       // bad backend
  EXPECT_THROW((void)mgr.query("ghost"), std::invalid_argument);
  EXPECT_THROW((void)mgr.close("ghost"), std::invalid_argument);
  EXPECT_EQ(mgr.session_names(), std::vector<std::string>{"t"});
}

TEST(ServeLifecycleTest, SessionHostThreadsDefaultIsResolvedToOne) {
  // The serving layer's oversubscription guard: engines opened with
  // host_threads == 0 run single-threaded, parallelism comes from sessions.
  SessionManager mgr;
  engine::EngineConfig cfg = small_engine_config();
  cfg.host_threads = 0;
  EXPECT_EQ(mgr.resolve_engine_config(cfg).host_threads, 1u);
  cfg.host_threads = 3;
  EXPECT_EQ(mgr.resolve_engine_config(cfg).host_threads, 3u);

  ServeConfig passthrough;
  passthrough.session_host_threads = 0;
  SessionManager mgr2(passthrough);
  cfg.host_threads = 0;
  EXPECT_EQ(mgr2.resolve_engine_config(cfg).host_threads, 0u);
}

// ---- fault containment ------------------------------------------------------

/// cpu-incremental whose apply()/recount() throw on command — including a
/// non-std object, which engines are not obliged to avoid.  Registration is
/// process-global, so the arming knobs are static; each test arms them
/// before submitting and the single-drain invariant keeps the order
/// deterministic.
class ThrowingEngine final : public engine::TriangleCountEngine {
 public:
  inline static std::atomic<int> apply_raw_throws{0};   ///< `throw 42`
  inline static std::atomic<int> apply_std_throws{0};   ///< runtime_error
  inline static std::atomic<int> recount_throws{0};

  explicit ThrowingEngine(const engine::EngineConfig& cfg)
      : TriangleCountEngine(cfg),
        inner_(engine::make_engine("cpu-incremental", cfg)) {}

  void add_edges(std::span<const Edge> batch) override {
    inner_->add_edges(batch);
  }
  void apply(std::span<const EdgeUpdate> updates) override {
    if (apply_raw_throws.load() > 0) {
      apply_raw_throws.fetch_sub(1);
      throw 42;  // deliberately not a std::exception
    }
    if (apply_std_throws.load() > 0) {
      apply_std_throws.fetch_sub(1);
      throw std::runtime_error("apply boom");
    }
    inner_->apply(updates);
  }
  engine::CountReport recount() override {
    if (recount_throws.load() > 0) {
      recount_throws.fetch_sub(1);
      throw std::runtime_error("recount boom");
    }
    return inner_->recount();
  }
  [[nodiscard]] engine::EngineCapabilities capabilities() const override {
    return inner_->capabilities();
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "throwing";
  }
  void reset_timers() override { inner_->reset_timers(); }

 private:
  std::unique_ptr<engine::TriangleCountEngine> inner_;
};

const char* throwing_backend() {
  static const bool registered = [] {
    engine::register_backend("throwing", [](const engine::EngineConfig& c) {
      return std::unique_ptr<engine::TriangleCountEngine>(
          new ThrowingEngine(c));
    });
    return true;
  }();
  (void)registered;
  ThrowingEngine::apply_raw_throws = 0;
  ThrowingEngine::apply_std_throws = 0;
  ThrowingEngine::recount_throws = 0;
  return "throwing";
}

TEST(ServeFaultTest, ThrowingApplyDoesNotKillWorkerOrWedgeSession) {
  // The first batch throws a raw int, the second a std::exception; both
  // must be contained in the drain — counted as failed, batch dropped —
  // with every later batch applied and the session still serving.
  const engine::EngineConfig ecfg = small_engine_config();
  SessionManager mgr;
  mgr.open("t", throwing_backend(), ecfg);
  ThrowingEngine::apply_raw_throws = 1;
  ThrowingEngine::apply_std_throws = 1;

  const std::vector<EdgeUpdate> stream = test_stream(101);
  const auto batches = batches_of(stream, 200);
  ASSERT_GE(batches.size(), 4u);
  for (const auto batch : batches) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
  const QueryResult r = mgr.flush("t");
  EXPECT_EQ(r.stats.batches_failed, 2u);
  EXPECT_EQ(r.stats.batches_applied, batches.size() - 2);
  EXPECT_EQ(r.stats.queue_depth_updates, 0u);
  EXPECT_EQ(r.stats.last_error, "apply boom");  // the raw throw came first

  // The served state is exactly the surviving batches, in order.
  std::vector<EdgeUpdate> survivors;
  for (std::size_t i = 2; i < batches.size(); ++i) {
    survivors.insert(survivors.end(), batches[i].begin(), batches[i].end());
  }
  EXPECT_EQ(r.estimate, serial_replay_estimate(mgr, "cpu-incremental", ecfg,
                                               survivors));

  // Still alive: more work is accepted, applied, and visible.
  const std::vector<EdgeUpdate> more{insert_of(Edge{2, 3}),
                                     insert_of(Edge{7, 9})};
  ASSERT_EQ(mgr.submit("t", more), SubmitResult::kAccepted);
  const QueryResult after = mgr.flush("t");
  EXPECT_EQ(after.stats.batches_failed, 2u);
  EXPECT_GT(after.epoch, r.epoch);
  const SessionStats closed = mgr.close("t");
  EXPECT_EQ(closed.queue_depth_updates, 0u);
}

TEST(ServeFaultTest, FaultedRecountKeepsPriorSnapshotLive) {
  // Publish epoch 1 cleanly, then arm recount to fail through the retry
  // budget: the session must keep serving epoch 1's estimate, count the
  // retry and the failure, and recover on the next publish.
  ServeConfig scfg;
  scfg.recount_retries = 1;
  SessionManager mgr(scfg);
  const engine::EngineConfig ecfg = small_engine_config();
  mgr.open("t", throwing_backend(), ecfg);

  const std::vector<EdgeUpdate> first{insert_of(Edge{0, 1}),
                                      insert_of(Edge{1, 2}),
                                      insert_of(Edge{0, 2})};
  ASSERT_EQ(mgr.submit("t", first), SubmitResult::kAccepted);
  const QueryResult live = mgr.flush("t");
  ASSERT_EQ(live.epoch, 1u);
  ASSERT_EQ(live.estimate, 1.0);

  ThrowingEngine::recount_throws = 2;  // first attempt + its retry
  const std::vector<EdgeUpdate> second{insert_of(Edge{2, 3}),
                                       insert_of(Edge{3, 0})};
  ASSERT_EQ(mgr.submit("t", second), SubmitResult::kAccepted);
  const QueryResult stale = mgr.flush("t");  // flush still terminates
  EXPECT_EQ(stale.epoch, 1u);                // prior snapshot stayed live
  EXPECT_EQ(stale.estimate, 1.0);
  EXPECT_EQ(stale.stats.recounts_retried, 1u);
  EXPECT_EQ(stale.stats.recounts_failed, 1u);
  EXPECT_EQ(stale.stats.last_error, "recount boom");
  EXPECT_EQ(stale.stats.updates_applied, first.size() + second.size());

  // Unarmed again: the next publish catches the session back up.
  const std::vector<EdgeUpdate> third{insert_of(Edge{1, 3})};
  ASSERT_EQ(mgr.submit("t", third), SubmitResult::kAccepted);
  const QueryResult fresh = mgr.flush("t");
  EXPECT_GT(fresh.epoch, 1u);
  std::vector<EdgeUpdate> all(first);
  all.insert(all.end(), second.begin(), second.end());
  all.insert(all.end(), third.begin(), third.end());
  EXPECT_EQ(fresh.estimate,
            serial_replay_estimate(mgr, "cpu-incremental", ecfg, all));
}

TEST(ServeFaultTest, RecountRetrySalvagesTransientFailure) {
  ServeConfig scfg;
  scfg.recount_retries = 1;
  SessionManager mgr(scfg);
  mgr.open("t", throwing_backend(), small_engine_config());
  ThrowingEngine::recount_throws = 1;  // fails once, the retry succeeds
  const std::vector<EdgeUpdate> tri{insert_of(Edge{0, 1}),
                                    insert_of(Edge{1, 2}),
                                    insert_of(Edge{0, 2})};
  ASSERT_EQ(mgr.submit("t", tri), SubmitResult::kAccepted);
  const QueryResult r = mgr.flush("t");
  EXPECT_EQ(r.epoch, 1u);
  EXPECT_EQ(r.estimate, 1.0);
  EXPECT_EQ(r.stats.recounts_retried, 1u);
  EXPECT_EQ(r.stats.recounts_failed, 0u);
  EXPECT_TRUE(r.stats.healthy());
}

TEST(ServeFaultTest, SessionHealthSurfacesDegradedEngineState) {
  // A pim session under unrecoverable injected faults reports degraded
  // health and partial coverage through SessionStats; a clean session
  // reports healthy defaults.
  engine::EngineConfig ecfg = small_engine_config();
  ecfg.fault_spec = "seed=5,launch-permanent=0.2,recovery=degrade";
  SessionManager mgr;
  mgr.open("t", "pim", ecfg);
  const std::vector<EdgeUpdate> stream = test_stream(47);
  for (const auto batch : batches_of(stream, 256)) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
  const QueryResult r = mgr.flush("t");
  EXPECT_TRUE(r.stats.degraded);
  EXPECT_FALSE(r.stats.healthy());
  EXPECT_LT(r.stats.coverage, 1.0);
  EXPECT_GT(r.stats.dropped_triplets, 0u);
  EXPECT_FALSE(r.report.exact);

  SessionManager clean;
  clean.open("c", "pim", small_engine_config());
  ASSERT_EQ(clean.submit("c", stream), SubmitResult::kAccepted);
  const QueryResult cr = clean.flush("c");
  EXPECT_TRUE(cr.stats.healthy());
  EXPECT_EQ(cr.stats.coverage, 1.0);
}

TEST(ServeLifecycleTest, LatenciesAreRecordedPerPublishedBatch) {
  SessionManager mgr;
  mgr.open("t", "cpu-incremental", small_engine_config());
  const std::vector<EdgeUpdate> stream = test_stream(29);
  const auto batches = batches_of(stream, 100);
  for (const auto batch : batches) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
  mgr.flush("t");
  const std::vector<double> lat = mgr.latencies("t");
  EXPECT_EQ(lat.size(), batches.size());
  for (const double s : lat) EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace pimtc::serve
