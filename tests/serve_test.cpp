// Tests for the multi-tenant serving layer (src/serve/): concurrent
// submit/query parity against a serial replay oracle, snapshot epoch
// monotonicity under concurrent queriers, admission control (per-session
// queue + aggregate budget, reject vs block), the flush() read-your-writes
// barrier, and clean shutdown with in-flight batches.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "serve/session_manager.hpp"

namespace pimtc::serve {
namespace {

engine::EngineConfig small_engine_config(std::uint64_t seed = 42) {
  engine::EngineConfig cfg;
  cfg.num_colors = 4;
  cfg.seed = seed;
  return cfg;
}

/// cpu-incremental with a fixed per-batch apply() delay.  Backpressure
/// tests need the drain to be reliably slower than a tight submit loop —
/// real engines are sometimes fast enough to keep up, making rejections
/// timing-dependent.
class SlowExactEngine final : public engine::TriangleCountEngine {
 public:
  explicit SlowExactEngine(const engine::EngineConfig& cfg)
      : TriangleCountEngine(cfg),
        inner_(engine::make_engine("cpu-incremental", cfg)) {}

  void add_edges(std::span<const Edge> batch) override {
    inner_->add_edges(batch);
  }
  void apply(std::span<const EdgeUpdate> updates) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    inner_->apply(updates);
  }
  engine::CountReport recount() override { return inner_->recount(); }
  [[nodiscard]] engine::EngineCapabilities capabilities() const override {
    return inner_->capabilities();
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "slow-exact";
  }
  void reset_timers() override { inner_->reset_timers(); }

 private:
  std::unique_ptr<engine::TriangleCountEngine> inner_;
};

/// Registers "slow-exact" exactly once (registration is process-global).
const char* slow_backend() {
  static const bool registered = [] {
    engine::register_backend("slow-exact", [](const engine::EngineConfig& c) {
      return std::unique_ptr<engine::TriangleCountEngine>(
          new SlowExactEngine(c));
    });
    return true;
  }();
  (void)registered;
  return "slow-exact";
}

/// One tenant's mixed ± workload: a community graph's edges as inserts,
/// then seeded deletions of a quarter of them.  Deterministic per seed.
std::vector<EdgeUpdate> test_stream(std::uint64_t seed) {
  graph::EdgeList g = graph::gen::community(300, 12, 0.5, 1200, seed);
  graph::preprocess(g, seed + 1);
  std::vector<EdgeUpdate> updates;
  updates.reserve(g.num_edges() + g.num_edges() / 4);
  for (const Edge& e : g.edges()) updates.push_back(insert_of(e));
  Xoshiro256ss rng(derive_seed(seed, 99));
  const std::size_t m = g.num_edges();
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  for (std::size_t i = 0; i < m / 4; ++i) {
    std::swap(order[i], order[i + rng.next_below(m - i)]);
    updates.push_back(delete_of(g[order[i]]));
  }
  return updates;
}

std::vector<std::span<const EdgeUpdate>> batches_of(
    std::span<const EdgeUpdate> updates, std::size_t batch) {
  std::vector<std::span<const EdgeUpdate>> out;
  for (std::size_t off = 0; off < updates.size(); off += batch) {
    out.push_back(updates.subspan(off, std::min(batch, updates.size() - off)));
  }
  return out;
}

/// The ground truth: the same accepted updates, applied serially to a fresh
/// engine under the manager-resolved config, recounted once.
double serial_replay_estimate(const SessionManager& mgr,
                              const std::string& backend,
                              const engine::EngineConfig& cfg,
                              std::span<const EdgeUpdate> updates) {
  auto oracle = engine::make_engine(backend, mgr.resolve_engine_config(cfg));
  oracle->apply(updates);
  return oracle->recount().estimate;
}

// ---- concurrent parity ------------------------------------------------------

TEST(ServeParityTest, ConcurrentSessionsMatchSerialReplay) {
  // N sessions ingest mixed ± streams from their own submitter threads on
  // one manager; after flush every session's served count must be
  // bit-identical to a serial replay of its stream.
  for (const char* backend : {"pim", "cpu-incremental"}) {
    const engine::EngineConfig ecfg = small_engine_config();
    SessionManager mgr;
    constexpr int kSessions = 4;
    std::vector<std::vector<EdgeUpdate>> streams;
    for (int i = 0; i < kSessions; ++i) {
      streams.push_back(test_stream(1000 + i));
      mgr.open("t" + std::to_string(i), backend, ecfg);
    }

    std::vector<std::thread> submitters;
    for (int i = 0; i < kSessions; ++i) {
      submitters.emplace_back([&mgr, &streams, i] {
        for (const auto batch : batches_of(streams[i], 97)) {
          EXPECT_EQ(mgr.submit("t" + std::to_string(i), batch),
                    SubmitResult::kAccepted);
        }
      });
    }
    for (auto& th : submitters) th.join();

    for (int i = 0; i < kSessions; ++i) {
      const std::string name = "t" + std::to_string(i);
      const QueryResult served = mgr.flush(name);
      EXPECT_TRUE(served.exact) << backend;
      EXPECT_GT(served.epoch, 0u);
      EXPECT_EQ(served.estimate,
                serial_replay_estimate(mgr, backend, ecfg, streams[i]))
          << backend << " session " << name;
    }
  }
}

// ---- snapshot semantics -----------------------------------------------------

TEST(ServeSnapshotTest, EpochsNeverRegressUnderConcurrentQueriers) {
  SessionManager mgr;
  mgr.open("t", "cpu-incremental", small_engine_config());
  const std::vector<EdgeUpdate> stream = test_stream(7);

  std::atomic<bool> done{false};
  std::atomic<bool> regressed{false};
  std::vector<std::thread> queriers;
  for (int q = 0; q < 2; ++q) {
    queriers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const QueryResult r = mgr.query("t");
        if (r.epoch < last) regressed.store(true);
        last = r.epoch;
      }
    });
  }
  for (const auto batch : batches_of(stream, 64)) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
  mgr.flush("t");
  done.store(true);
  for (auto& th : queriers) th.join();
  EXPECT_FALSE(regressed.load());
}

TEST(ServeSnapshotTest, QueryBeforeAnyPublishIsEmptyEpochZero) {
  SessionManager mgr;
  mgr.open("t", "cpu", small_engine_config());
  const QueryResult r = mgr.query("t");
  EXPECT_EQ(r.epoch, 0u);
  EXPECT_EQ(r.estimate, 0.0);
  EXPECT_EQ(r.stats.batches_accepted, 0u);
}

TEST(ServeSnapshotTest, FlushIsReadYourWrites) {
  SessionManager mgr;
  const engine::EngineConfig ecfg = small_engine_config();
  mgr.open("t", "cpu-incremental", ecfg);
  const std::vector<EdgeUpdate> stream = test_stream(21);
  for (const auto batch : batches_of(stream, 128)) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
  const QueryResult r = mgr.flush("t");
  // Everything accepted before the flush is applied AND visible.
  EXPECT_EQ(r.stats.updates_applied, r.stats.updates_accepted);
  EXPECT_EQ(r.stats.queue_depth_updates, 0u);
  EXPECT_EQ(r.stats.batches_failed, 0u);
  EXPECT_EQ(r.estimate,
            serial_replay_estimate(mgr, "cpu-incremental", ecfg, stream));
}

// ---- admission control ------------------------------------------------------

TEST(ServeAdmissionTest, RejectPolicyCountsEveryOutcome) {
  // A 1-update queue capacity over a deliberately slow backend: the first
  // batches are admitted via the empty-queue soft bound, later ones find
  // the queue occupied while the drain sleeps in apply() and bounce.
  ServeConfig scfg;
  scfg.queue_capacity_updates = 1;
  SessionManager mgr(scfg);
  mgr.open("t", slow_backend(), small_engine_config(),
           AdmissionPolicy::kReject);
  const std::vector<EdgeUpdate> stream = test_stream(33);

  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::vector<EdgeUpdate> accepted_updates;
  const auto batches = batches_of(stream, 50);
  for (const auto batch : batches) {
    const SubmitResult r = mgr.submit("t", batch);
    if (r == SubmitResult::kAccepted) {
      ++accepted;
      accepted_updates.insert(accepted_updates.end(), batch.begin(),
                              batch.end());
    } else {
      EXPECT_EQ(r, SubmitResult::kQueueFull);
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1u);  // the loop outpaces per-batch recounts

  const QueryResult r = mgr.flush("t");
  EXPECT_EQ(r.stats.batches_accepted + r.stats.batches_rejected,
            batches.size());
  EXPECT_EQ(r.stats.batches_accepted, accepted);
  EXPECT_EQ(r.stats.batches_rejected, rejected);
  EXPECT_EQ(r.stats.updates_applied, r.stats.updates_accepted);
  // The served state is exactly the accepted prefix-set, nothing else.
  EXPECT_EQ(r.estimate,
            serial_replay_estimate(mgr, "cpu-incremental",
                                   small_engine_config(), accepted_updates));
}

TEST(ServeAdmissionTest, BlockPolicyAcceptsEverythingThroughTinyQueue) {
  ServeConfig scfg;
  scfg.queue_capacity_updates = 64;  // forces repeated blocking hand-offs
  SessionManager mgr(scfg);
  const engine::EngineConfig ecfg = small_engine_config();
  mgr.open("t", "cpu-incremental", ecfg, AdmissionPolicy::kBlock);
  const std::vector<EdgeUpdate> stream = test_stream(55);
  for (const auto batch : batches_of(stream, 48)) {
    EXPECT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
  const QueryResult r = mgr.flush("t");
  EXPECT_EQ(r.stats.batches_rejected, 0u);
  EXPECT_EQ(r.stats.updates_applied, stream.size());
  EXPECT_EQ(r.estimate,
            serial_replay_estimate(mgr, "cpu-incremental", ecfg, stream));
}

TEST(ServeAdmissionTest, AggregateBudgetBouncesRejectSessions) {
  // Budget of 1 update across the manager, slow drains: with two tenants
  // spamming, submits must come back kBudgetExhausted while the budget is
  // held through apply(), and both sessions still end consistent with
  // their accepted sets.
  ServeConfig scfg;
  scfg.staging_budget_updates = 1;
  SessionManager mgr(scfg);
  mgr.open("a", slow_backend(), small_engine_config(),
           AdmissionPolicy::kReject);
  mgr.open("b", slow_backend(), small_engine_config(),
           AdmissionPolicy::kReject);
  const std::vector<EdgeUpdate> stream = test_stream(77);

  std::atomic<std::uint64_t> budget_rejects{0};
  std::vector<std::thread> submitters;
  for (const char* name : {"a", "b"}) {
    submitters.emplace_back([&, name] {
      for (const auto batch : batches_of(stream, 40)) {
        const SubmitResult r = mgr.submit(name, batch);
        if (r == SubmitResult::kBudgetExhausted) ++budget_rejects;
      }
    });
  }
  for (auto& th : submitters) th.join();
  EXPECT_GE(budget_rejects.load(), 1u);
  for (const char* name : {"a", "b"}) {
    const QueryResult r = mgr.flush(name);
    EXPECT_EQ(r.stats.updates_applied, r.stats.updates_accepted);
  }
  EXPECT_EQ(mgr.staged_updates(), 0u);
}

TEST(ServeAdmissionTest, BlockedBudgetSubmittersAllComplete) {
  ServeConfig scfg;
  scfg.staging_budget_updates = 32;
  SessionManager mgr(scfg);
  const engine::EngineConfig ecfg = small_engine_config();
  mgr.open("a", "cpu-incremental", ecfg, AdmissionPolicy::kBlock);
  mgr.open("b", "cpu-incremental", ecfg, AdmissionPolicy::kBlock);
  const std::vector<EdgeUpdate> stream = test_stream(91);

  std::vector<std::thread> submitters;
  for (const char* name : {"a", "b"}) {
    submitters.emplace_back([&, name] {
      for (const auto batch : batches_of(stream, 40)) {
        EXPECT_EQ(mgr.submit(name, batch), SubmitResult::kAccepted);
      }
    });
  }
  for (auto& th : submitters) th.join();
  for (const char* name : {"a", "b"}) {
    const QueryResult r = mgr.flush(name);
    EXPECT_EQ(r.stats.updates_applied, stream.size());
    EXPECT_EQ(r.estimate,
              serial_replay_estimate(mgr, "cpu-incremental", ecfg, stream));
  }
}

// ---- lifecycle --------------------------------------------------------------

TEST(ServeLifecycleTest, CloseDrainsInFlightBatches) {
  SessionManager mgr;
  mgr.open("t", "cpu-incremental", small_engine_config());
  const std::vector<EdgeUpdate> stream = test_stream(13);
  std::uint64_t submitted = 0;
  for (const auto batch : batches_of(stream, 64)) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
    submitted += batch.size();
  }
  // close() without an intervening flush: accepted work is never dropped.
  const SessionStats stats = mgr.close("t");
  EXPECT_EQ(stats.updates_applied, submitted);
  EXPECT_EQ(stats.queue_depth_updates, 0u);
  EXPECT_THROW((void)mgr.query("t"), std::invalid_argument);
}

TEST(ServeLifecycleTest, ManagerDestructorDrainsOpenSessions) {
  // Tears down with batches still queued; must neither hang nor crash nor
  // leak the drain task (ASan/TSan would flag a worker touching a dead
  // session).
  SessionManager mgr;
  mgr.open("t", "cpu-incremental", small_engine_config());
  const std::vector<EdgeUpdate> stream = test_stream(17);
  for (const auto batch : batches_of(stream, 32)) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
}

TEST(ServeLifecycleTest, SubmitAfterCloseIsUnknownSession) {
  // close() removes the session from the directory, so later submits fail
  // by name — kClosed is only seen by submitters racing the close itself.
  SessionManager mgr;
  mgr.open("t", "cpu", small_engine_config());
  mgr.close("t");
  const std::vector<EdgeUpdate> one{insert_of(Edge{1, 2})};
  EXPECT_THROW((void)mgr.submit("t", one), std::invalid_argument);
}

TEST(ServeLifecycleTest, DirectoryErrors) {
  SessionManager mgr;
  mgr.open("t", "cpu", small_engine_config());
  EXPECT_THROW(mgr.open("t", "cpu", small_engine_config()),
               std::invalid_argument);                       // duplicate
  EXPECT_THROW(mgr.open("", "cpu", small_engine_config()),
               std::invalid_argument);                       // empty name
  EXPECT_THROW(mgr.open("u", "no-such-backend", small_engine_config()),
               std::invalid_argument);                       // bad backend
  EXPECT_THROW((void)mgr.query("ghost"), std::invalid_argument);
  EXPECT_THROW((void)mgr.close("ghost"), std::invalid_argument);
  EXPECT_EQ(mgr.session_names(), std::vector<std::string>{"t"});
}

TEST(ServeLifecycleTest, SessionHostThreadsDefaultIsResolvedToOne) {
  // The serving layer's oversubscription guard: engines opened with
  // host_threads == 0 run single-threaded, parallelism comes from sessions.
  SessionManager mgr;
  engine::EngineConfig cfg = small_engine_config();
  cfg.host_threads = 0;
  EXPECT_EQ(mgr.resolve_engine_config(cfg).host_threads, 1u);
  cfg.host_threads = 3;
  EXPECT_EQ(mgr.resolve_engine_config(cfg).host_threads, 3u);

  ServeConfig passthrough;
  passthrough.session_host_threads = 0;
  SessionManager mgr2(passthrough);
  cfg.host_threads = 0;
  EXPECT_EQ(mgr2.resolve_engine_config(cfg).host_threads, 0u);
}

TEST(ServeLifecycleTest, LatenciesAreRecordedPerPublishedBatch) {
  SessionManager mgr;
  mgr.open("t", "cpu-incremental", small_engine_config());
  const std::vector<EdgeUpdate> stream = test_stream(29);
  const auto batches = batches_of(stream, 100);
  for (const auto batch : batches) {
    ASSERT_EQ(mgr.submit("t", batch), SubmitResult::kAccepted);
  }
  mgr.flush("t");
  const std::vector<double> lat = mgr.latencies("t");
  EXPECT_EQ(lat.size(), batches.size());
  for (const double s : lat) EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace pimtc::serve
