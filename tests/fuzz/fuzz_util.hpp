// Shared scaffolding for the parser fuzz harnesses (tests/fuzz/fuzz_*.cpp).
//
// Every harness defines the libFuzzer entry point
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// and builds in two modes:
//
//  * PIMTC_LIBFUZZER defined (Clang, -fsanitize=fuzzer,address,undefined):
//    libFuzzer provides main() and drives coverage-guided mutation — the CI
//    static-analysis job runs each harness for a short smoke budget.
//  * otherwise (any compiler, including the gcc-only container): this
//    header provides a standalone main() that replays the inputs named on
//    the command line — files, or directories walked recursively — so the
//    checked-in corpus and crash reproducers run under plain ctest on
//    every build.
//
// Harness contract: *expected* rejections (IoError, invalid_argument) are
// caught inside the harness; anything else — any other exception type, a
// sanitizer report, a giant allocation — escapes and counts as a finding.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#if !defined(PIMTC_LIBFUZZER)

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace pimtc::fuzz {

inline std::vector<std::uint8_t> slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Replays one file, or every regular file under a directory.  Returns the
/// number of inputs executed.
inline std::size_t replay(const std::filesystem::path& path) {
  namespace fs = std::filesystem;
  std::size_t ran = 0;
  if (fs::is_directory(path)) {
    // Deterministic order so a crash names the same input on every run.
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(path)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) ran += replay(f);
    return ran;
  }
  const std::vector<std::uint8_t> bytes = slurp(path);
  std::fprintf(stderr, "replay %s (%zu bytes)\n", path.string().c_str(),
               bytes.size());
  (void)LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 1;
}

}  // namespace pimtc::fuzz

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <input-file-or-corpus-dir>...\n"
                 "(replay driver; build with PIMTC_FUZZERS=ON under Clang "
                 "for coverage-guided fuzzing)\n",
                 argv[0]);
    return 2;
  }
  std::size_t ran = 0;
  for (int i = 1; i < argc; ++i) ran += pimtc::fuzz::replay(argv[i]);
  std::fprintf(stderr, "replayed %zu inputs, no findings\n", ran);
  return 0;
}

#endif  // !PIMTC_LIBFUZZER
