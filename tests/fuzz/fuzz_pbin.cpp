// Fuzz harness for the graph-file front end: read_bin_header / read_bin
// and ChunkedEdgeReader across every supported on-disk format.
//
// The first input byte selects the format (so one corpus exercises all
// four parsers); the rest is the file body, written to a scratch file and
// fed through both the one-shot and the chunked reader, mmap and buffered.
// Expected rejections throw graph::IoError and are swallowed; any other
// escape — std::length_error from an unchecked reserve, bad_alloc from a
// wrapped size check, a sanitizer report — is a finding.  This is the
// harness that flagged the `num_edges * sizeof(Edge)` overflow in the
// .pbin / legacy-.bin size checks and the unbounded MatrixMarket nnz
// reserve (fixed in src/graph/pbin.cpp and src/graph/stream_reader.cpp,
// regression-pinned in tests/parser_hardening_test.cpp).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <unistd.h>

#include "graph/io.hpp"
#include "graph/io_error.hpp"
#include "graph/pbin.hpp"
#include "graph/stream_reader.hpp"
#include "fuzz_util.hpp"

namespace {

namespace fs = std::filesystem;
using pimtc::graph::ChunkedEdgeReader;
using pimtc::graph::FileFormat;

/// Per-process scratch file reused for every input (named, because the
/// readers open by path; extension-free, because the format is passed
/// explicitly).
const fs::path& scratch_path() {
  static const fs::path path = [] {
    const fs::path dir =
        fs::temp_directory_path() /
        ("pimtc_fuzz_pbin_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    return dir / "input";
  }();
  return path;
}

void drain(ChunkedEdgeReader& reader) {
  for (std::span<const pimtc::Edge> chunk = reader.next(); !chunk.empty();
       chunk = reader.next()) {
  }
}

void exercise(const fs::path& path, FileFormat format) {
  // Small chunks force many refill/boundary transitions per input.
  for (const bool use_mmap : {true, false}) {
    try {
      pimtc::graph::ReaderOptions options;
      options.chunk_edges = 3;
      options.use_mmap = use_mmap;
      ChunkedEdgeReader reader(path, format, options);
      drain(reader);
    } catch (const pimtc::graph::IoError&) {
    }
  }
  if (format == FileFormat::kPbin) {
    try {
      (void)pimtc::graph::read_bin_header(path);
      (void)pimtc::graph::read_bin(path);
    } catch (const pimtc::graph::IoError&) {
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  static constexpr FileFormat kFormats[] = {
      FileFormat::kPbin, FileFormat::kBinLegacy, FileFormat::kMtx,
      FileFormat::kText};
  const FileFormat format = kFormats[data[0] % 4];
  {
    std::ofstream out(scratch_path(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data + 1),
              static_cast<std::streamsize>(size - 1));
  }
  exercise(scratch_path(), format);
  return 0;
}
