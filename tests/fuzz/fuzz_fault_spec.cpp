// Fuzz harness for pim::FaultSpec::parse — the user-facing
// `--inject-faults=<spec>` grammar.
//
// A parse either throws std::invalid_argument (a rejected spec) or returns
// a FaultSpec whose every field satisfies the documented invariants; the
// harness aborts if an accepted spec violates them.  This is the harness
// that flagged the NaN-rate and wrapped-negative-integer acceptances fixed
// in src/pim/fault.cpp (regression-pinned in
// tests/parser_hardening_test.cpp).
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "pim/fault.hpp"
#include "fuzz_util.hpp"

namespace {

void check_rate(double rate) {
  // NaN fails both comparisons, so spell the invariant as a conjunction.
  if (!(rate >= 0.0 && rate <= 1.0)) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string spec(reinterpret_cast<const char*>(data), size);
  pimtc::pim::FaultSpec out;
  try {
    out = pimtc::pim::FaultSpec::parse(spec);
  } catch (const std::invalid_argument&) {
    return 0;  // rejected specs are the expected failure mode
  }
  // Accepted specs must satisfy every documented invariant.
  check_rate(out.launch_transient);
  check_rate(out.launch_permanent);
  check_rate(out.rank_outage);
  check_rate(out.transfer_corrupt);
  check_rate(out.mram_bitflip);
  if (out.max_retries > 16) std::abort();
  if (out.spare_banks > 2048) std::abort();
  if (out.from_step >= out.until_step) std::abort();
  if (!std::isfinite(out.backoff_base_s) || out.backoff_base_s <= 0.0) {
    std::abort();
  }
  if (!std::isfinite(out.checksum_gb_s) || out.checksum_gb_s <= 0.0) {
    std::abort();
  }
  return 0;
}
