// Fuzz harness for the dynamic-update front end: graph::read_update_stream
// (the `--stream` "+u v" / "-u v" file grammar) and the strict CLI numeric
// parsers (cli::Args::u64/u32/f64 from tools/cli_args.hpp).
//
// The first input byte selects the target; the rest is either written to a
// scratch file and parsed as an update stream, or split on newlines into a
// synthetic "--key=value" argv and pushed through every numeric accessor.
// Expected rejections (IoError for streams, invalid_argument for flags)
// are swallowed; anything else is a finding.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

#include "graph/io.hpp"
#include "graph/io_error.hpp"
#include "../../tools/cli_args.hpp"
#include "fuzz_util.hpp"

namespace {

namespace fs = std::filesystem;

const fs::path& scratch_path() {
  static const fs::path path = [] {
    const fs::path dir =
        fs::temp_directory_path() /
        ("pimtc_fuzz_stream_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    return dir / "updates.txt";
  }();
  return path;
}

void fuzz_update_stream(const std::uint8_t* data, std::size_t size) {
  {
    std::ofstream out(scratch_path(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }
  try {
    (void)pimtc::graph::read_update_stream(scratch_path());
  } catch (const pimtc::graph::IoError&) {
  }
}

void fuzz_cli_args(const std::uint8_t* data, std::size_t size) {
  // One synthetic argv entry per input line (NUL-free; argv strings are
  // NUL-terminated by construction).
  std::vector<std::string> argv_storage{"pimtc", "count"};
  std::string line;
  for (std::size_t i = 0; i < size; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      if (!line.empty()) argv_storage.push_back(line);
      line.clear();
    } else if (c != '\0') {
      line.push_back(c);
    }
  }
  if (!line.empty()) argv_storage.push_back(line);
  if (argv_storage.size() > 64) argv_storage.resize(64);
  std::vector<char*> argv;
  argv.reserve(argv_storage.size());
  for (std::string& s : argv_storage) argv.push_back(s.data());
  try {
    const pimtc::cli::Args args(static_cast<int>(argv.size()), argv.data(), 2);
    // Hit every accessor for a spread of keys the CLI actually uses; the
    // fallback value must come back only when the key is absent.
    for (const char* key : {"edges", "seed", "chunk-edges", "colors",
                            "threads", "p", "delete-frac", "gallop-margin"}) {
      try {
        (void)args.u64(key, 7);
      } catch (const std::invalid_argument&) {
      }
      try {
        (void)args.u32(key, 7);
      } catch (const std::invalid_argument&) {
      }
      try {
        (void)args.f64(key, 0.5);
      } catch (const std::invalid_argument&) {
      }
      (void)args.str(key);
      (void)args.flag(key);
    }
  } catch (const std::invalid_argument&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  if (data[0] % 2 == 0) {
    fuzz_update_stream(data + 1, size - 1);
  } else {
    fuzz_cli_args(data + 1, size - 1);
  }
  return 0;
}
