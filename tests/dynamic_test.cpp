// Fully-dynamic stream correctness (ISSUE 5 tentpole): exact deletions on
// the cpu-incremental oracle, random-pairing deletions through the whole
// PIM pipeline, mixed ± streams under every placement and intersect
// policy, and the engine-level apply() contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/prng.hpp"
#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"
#include "tc/host.hpp"

namespace pimtc {
namespace {

pim::PimSystemConfig small_banks() {
  pim::PimSystemConfig cfg;
  cfg.mram_bytes = 8ull << 20;
  return cfg;
}

engine::EngineConfig small_engine(std::uint32_t colors = 3) {
  engine::EngineConfig cfg;
  cfg.num_colors = colors;
  cfg.pim.mram_bytes = 8ull << 20;
  return cfg;
}

std::vector<EdgeUpdate> inserts_of(std::span<const Edge> edges) {
  std::vector<EdgeUpdate> ups;
  ups.reserve(edges.size());
  for (const Edge e : edges) ups.push_back(insert_of(e));
  return ups;
}

std::vector<EdgeUpdate> deletes_of(std::span<const Edge> edges) {
  std::vector<EdgeUpdate> ups;
  ups.reserve(edges.size());
  for (const Edge e : edges) ups.push_back(delete_of(e));
  return ups;
}

/// The graph left after deleting `deleted` (canonical-key match) from `g`.
graph::EdgeList remaining_graph(const graph::EdgeList& g,
                                std::span<const Edge> deleted) {
  std::vector<std::uint64_t> keys;
  keys.reserve(deleted.size());
  for (const Edge e : deleted) keys.push_back(edge_key(e.canonical()));
  std::sort(keys.begin(), keys.end());
  graph::EdgeList rest;
  for (const Edge e : g) {
    if (!std::binary_search(keys.begin(), keys.end(),
                            edge_key(e.canonical()))) {
      rest.push_back(e);
    }
  }
  return rest;
}

// ---- cpu-incremental: the exact fully-dynamic oracle ------------------------

TEST(CpuIncrementalDynamicTest, InsertThenDeleteRestoresExactPriorCount) {
  graph::EdgeList g = graph::gen::community(600, 40, 0.5, 400, 21);
  graph::preprocess(g, 22);
  const std::size_t half = g.num_edges() / 2;

  auto eng = engine::make_engine("cpu-incremental", small_engine());
  eng->add_edges(g.edges().subspan(0, half));
  const TriangleCount before = eng->recount().rounded();

  const auto batch = g.edges().subspan(half);
  eng->apply(inserts_of(batch));
  const TriangleCount with_batch = eng->recount().rounded();
  EXPECT_EQ(with_batch, graph::reference_triangle_count(g));

  eng->apply(deletes_of(batch));
  const engine::CountReport after = eng->recount();
  EXPECT_EQ(after.rounded(), before);
  EXPECT_TRUE(after.exact);
  EXPECT_EQ(after.edges_deleted, batch.size());
  EXPECT_EQ(after.delete_misses, 0u);
}

TEST(CpuIncrementalDynamicTest, DeleteThenReinsertRoundTrips) {
  graph::EdgeList g = graph::gen::complete(12);
  auto eng = engine::make_engine("cpu-incremental", small_engine());
  eng->add_edges(g.edges());
  const TriangleCount full = eng->recount().rounded();
  EXPECT_EQ(full, binomial(12, 3));

  const Edge victim{3, 7};
  eng->remove_edges(std::vector<Edge>{victim});
  // K12 minus one edge: each removed edge closed 10 triangles.
  EXPECT_EQ(eng->recount().rounded(), full - 10);

  eng->apply(std::vector<EdgeUpdate>{insert_of(victim)});
  EXPECT_EQ(eng->recount().rounded(), full);
}

TEST(CpuIncrementalDynamicTest, NeverInsertedDeleteIsDetectedNoOp) {
  graph::EdgeList g = graph::gen::complete(8);
  auto eng = engine::make_engine("cpu-incremental", small_engine());
  eng->add_edges(g.edges());
  const TriangleCount full = eng->recount().rounded();

  // Absent edge, double-delete, reversed orientation of an absent edge.
  eng->remove_edges(std::vector<Edge>{{100, 200}});
  eng->remove_edges(std::vector<Edge>{{2, 5}});
  eng->remove_edges(std::vector<Edge>{{5, 2}});  // already deleted above
  const engine::CountReport r = eng->recount();
  EXPECT_EQ(r.delete_misses, 2u);
  EXPECT_EQ(r.edges_deleted, 1u);
  EXPECT_EQ(r.rounded(),
            full - 6);  // K8: one real deletion removes 6 triangles
}

TEST(CpuIncrementalDynamicTest, ArbitraryChurnMatchesReference) {
  // Interleaved ± stream in one apply() call; the running total must track
  // the reference count of the final graph exactly.
  graph::EdgeList g = graph::gen::barabasi_albert(300, 4, 31);
  graph::preprocess(g, 32);
  const auto edges = g.edges();
  const std::size_t keep = (edges.size() * 3) / 4;

  // Insert everything, then interleave deletions of the tail with
  // re-insertions of some of it.
  std::vector<EdgeUpdate> stream = inserts_of(edges);
  for (std::size_t i = keep; i < edges.size(); ++i) {
    stream.push_back(delete_of(edges[i]));
    if (i % 3 == 0) {
      stream.push_back(insert_of(edges[i]));
      stream.push_back(delete_of(edges[i]));
    }
  }
  auto eng = engine::make_engine("cpu-incremental", small_engine());
  eng->apply(stream);
  const graph::EdgeList rest = remaining_graph(g, edges.subspan(keep));
  EXPECT_EQ(eng->recount().rounded(), graph::reference_triangle_count(rest));
}

// ---- PIM pipeline: deletions end-to-end -------------------------------------

TEST(PimDynamicTest, MixedStreamIsExactAndMatchesOracle) {
  graph::EdgeList g = graph::gen::community(800, 50, 0.5, 600, 41);
  graph::preprocess(g, 42);
  const auto edges = g.edges();
  const std::size_t cut = (edges.size() * 4) / 5;
  const auto deleted = edges.subspan(cut);

  tc::TcConfig cfg;
  cfg.num_colors = 3;
  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(edges);
  counter.remove_edges(deleted);
  const tc::TcResult r = counter.recount();

  const graph::EdgeList rest = remaining_graph(g, deleted);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.rounded(), graph::reference_triangle_count(rest));
  EXPECT_EQ(r.edges_deleted, deleted.size());
  EXPECT_GT(r.sample_evictions, 0u);

  // Parity with the exact oracle through the engine API.
  auto oracle = engine::make_engine("cpu-incremental", small_engine());
  oracle->add_edges(edges);
  oracle->remove_edges(deleted);
  EXPECT_EQ(oracle->recount().rounded(), r.rounded());
}

TEST(PimDynamicTest, DeleteEverythingCountsZeroAndRecovers) {
  graph::EdgeList g = graph::gen::complete(16);
  tc::TcConfig cfg;
  cfg.num_colors = 2;
  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(g.edges());
  EXPECT_EQ(counter.recount().rounded(), binomial(16, 3));

  counter.remove_edges(g.edges());
  const tc::TcResult empty = counter.recount();
  EXPECT_EQ(empty.rounded(), 0u);
  EXPECT_TRUE(empty.exact);

  // The session keeps working after total deletion (delete-then-reinsert
  // round-trip at pipeline scale).
  counter.add_edges(g.edges());
  const tc::TcResult again = counter.recount();
  EXPECT_EQ(again.rounded(), binomial(16, 3));
  EXPECT_TRUE(again.exact);
}

TEST(PimDynamicTest, NeverInsertedDeleteIsANoOpInTheExactRegime) {
  // While every reservoir still covers its live subgraph, a deletion that
  // misses the sample on both orientations is provably bogus: it must be
  // dropped as a counted no-op, never registered as random-pairing debt
  // (which would silently discard the next live insertion).
  tc::TcConfig cfg;
  cfg.num_colors = 2;
  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.remove_edges(std::vector<Edge>{{7, 8}});  // empty session delete
  const std::vector<Edge> tri{{1, 2}, {2, 3}, {1, 3}};
  counter.add_edges(tri);
  const tc::TcResult r = counter.recount();
  EXPECT_EQ(r.rounded(), 1u);
  EXPECT_TRUE(r.exact);
  EXPECT_GT(r.delete_misses, 0u);
  EXPECT_EQ(r.sample_evictions, 0u);

  // Same through a populated session: the estimate must not move.
  graph::EdgeList g = graph::gen::complete(10);
  tc::PimTriangleCounter full(cfg, small_banks());
  full.add_edges(g.edges());
  const TriangleCount before = full.recount().rounded();
  full.remove_edges(std::vector<Edge>{{500, 600}});
  full.remove_edges(std::vector<Edge>{{0, 1}});  // real delete for contrast
  full.remove_edges(std::vector<Edge>{{0, 1}});  // double delete: now absent
  const tc::TcResult after = full.recount();
  EXPECT_EQ(after.rounded(), before - 8);  // K10: one edge closes 8
  EXPECT_TRUE(after.exact);
  EXPECT_GT(after.delete_misses, 0u);
}

TEST(PimDynamicTest, ReversedOrientationDeletesMatch) {
  graph::EdgeList g = graph::gen::complete(10);
  tc::TcConfig cfg;
  cfg.num_colors = 2;
  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(g.edges());
  // Delete with endpoints swapped relative to the stored orientation.
  std::vector<Edge> reversed;
  for (const Edge e : g.edges().subspan(0, 10)) reversed.push_back(e.reversed());
  counter.remove_edges(reversed);
  const graph::EdgeList rest = remaining_graph(g, g.edges().subspan(0, 10));
  EXPECT_EQ(counter.recount().rounded(), graph::reference_triangle_count(rest));
}

TEST(PimDynamicTest, MixedStreamInvariantUnderPlacementPolicies) {
  // Estimator state is keyed by triplet, so a ± stream must produce
  // bit-identical estimates under every placement policy and under an
  // arbitrary mid-stream migration.
  graph::EdgeList g = graph::gen::barabasi_albert(500, 4, 51);
  graph::preprocess(g, 52);
  const auto edges = g.edges();
  const std::size_t cut = (edges.size() * 3) / 4;

  double ref = -1.0;
  for (const color::PlacementPolicy policy :
       {color::PlacementPolicy::kIdentity,
        color::PlacementPolicy::kKindInterleave,
        color::PlacementPolicy::kGreedyBalance}) {
    tc::TcConfig cfg;
    cfg.num_colors = 3;
    cfg.placement = policy;
    tc::PimTriangleCounter counter(cfg, small_banks());
    counter.add_edges(edges.subspan(0, cut));
    counter.remove_edges(edges.subspan(cut / 2, 100));
    counter.add_edges(edges.subspan(cut));
    counter.remove_edges(edges.subspan(0, 50));
    const tc::TcResult r = counter.recount();
    if (ref < 0.0) {
      ref = r.estimate;
      // Cross-check against the reference count of the final graph.
      std::vector<Edge> gone(edges.begin() + cut / 2,
                             edges.begin() + cut / 2 + 100);
      gone.insert(gone.end(), edges.begin(), edges.begin() + 50);
      const graph::EdgeList rest = remaining_graph(g, gone);
      EXPECT_EQ(r.rounded(), graph::reference_triangle_count(rest));
    } else {
      EXPECT_EQ(r.estimate, ref) << color::to_string(policy);
    }
  }

  // Arbitrary permutation mid-stream: migrate, continue the ± stream.
  tc::TcConfig cfg;
  cfg.num_colors = 3;
  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(edges.subspan(0, cut));
  counter.remove_edges(edges.subspan(cut / 2, 100));
  std::vector<std::uint32_t> perm(counter.plan().num_dpus());
  std::iota(perm.begin(), perm.end(), 0u);
  Xoshiro256ss rng(7);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  EXPECT_TRUE(counter.migrate_to(perm));
  counter.add_edges(edges.subspan(cut));
  counter.remove_edges(edges.subspan(0, 50));
  EXPECT_EQ(counter.recount().estimate, ref);
}

TEST(PimDynamicTest, MixedStreamInvariantUnderIntersectPolicy) {
  graph::EdgeList g = graph::gen::barabasi_albert(600, 5, 61);
  graph::gen::add_hubs(g, 2, 150, 62);
  graph::preprocess(g, 63);
  const auto edges = g.edges();
  const std::size_t cut = (edges.size() * 4) / 5;

  double ref = -1.0;
  std::uint64_t ref_raw = 0;
  for (const tc::IntersectPolicy policy :
       {tc::IntersectPolicy::kAuto, tc::IntersectPolicy::kMerge,
        tc::IntersectPolicy::kGallop}) {
    tc::TcConfig cfg;
    cfg.num_colors = 3;
    cfg.intersect = policy;
    tc::PimTriangleCounter counter(cfg, small_banks());
    counter.add_edges(edges);
    counter.remove_edges(edges.subspan(cut));
    const tc::TcResult r = counter.recount();
    if (ref < 0.0) {
      ref = r.estimate;
      ref_raw = r.raw_total;
    } else {
      EXPECT_EQ(r.estimate, ref) << tc::to_string(policy);
      EXPECT_EQ(r.raw_total, ref_raw) << tc::to_string(policy);
    }
  }
}

TEST(PimDynamicTest, InsertOnlyApplyIsBitIdenticalToAddEdges) {
  // Criterion: insert-only streams through the new verb take the legacy
  // path verbatim — with sampling, overflow and Misra-Gries all active.
  graph::EdgeList g = graph::gen::barabasi_albert(700, 5, 71);
  graph::preprocess(g, 72);
  const auto edges = g.edges();
  const std::size_t half = edges.size() / 2;

  tc::TcConfig cfg;
  cfg.num_colors = 3;
  cfg.uniform_p = 0.7;
  cfg.misra_gries_enabled = true;
  cfg.sample_capacity_edges = edges.size() / 4;  // forces overflow somewhere

  tc::PimTriangleCounter a(cfg, small_banks());
  a.add_edges(edges.subspan(0, half));
  a.add_edges(edges.subspan(half));
  const tc::TcResult ra = a.recount();

  tc::PimTriangleCounter b(cfg, small_banks());
  b.apply(inserts_of(edges.subspan(0, half)));
  b.apply(inserts_of(edges.subspan(half)));
  const tc::TcResult rb = b.recount();

  EXPECT_EQ(ra.estimate, rb.estimate);
  EXPECT_EQ(ra.raw_total, rb.raw_total);
  EXPECT_EQ(ra.edges_kept, rb.edges_kept);
  EXPECT_EQ(rb.edges_deleted, 0u);
  EXPECT_EQ(rb.sample_evictions, 0u);
}

TEST(PimDynamicTest, IncrementalModeInvalidatesOnlyDirtyTriplets) {
  graph::EdgeList g = graph::gen::community(700, 40, 0.5, 500, 81);
  graph::preprocess(g, 82);
  const auto edges = g.edges();
  const std::size_t cut = (edges.size() * 3) / 4;

  tc::TcConfig cfg;
  cfg.num_colors = 4;
  cfg.incremental = true;
  tc::PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(edges.subspan(0, cut));
  const tc::TcResult first = counter.recount();  // full pass, persists arcs
  EXPECT_FALSE(first.used_incremental);

  // Delete a handful of edges: only the triplets that sampled them go
  // dirty; everything else keeps the incremental path.
  counter.remove_edges(edges.subspan(0, 8));
  counter.add_edges(edges.subspan(cut));
  const tc::TcResult second = counter.recount();
  EXPECT_TRUE(second.used_incremental);
  EXPECT_GT(second.dirty_full_recounts, 0u);
  EXPECT_LT(second.dirty_full_recounts, second.num_dpus);

  const graph::EdgeList rest = remaining_graph(g, edges.subspan(0, 8));
  EXPECT_EQ(second.rounded(), graph::reference_triangle_count(rest));
  EXPECT_TRUE(second.exact);

  // A third, deletion-free incremental recount stays fully incremental.
  counter.add_edges(edges.subspan(0, 8));
  const tc::TcResult third = counter.recount();
  EXPECT_TRUE(third.used_incremental);
  EXPECT_EQ(third.dirty_full_recounts, 0u);
  EXPECT_EQ(third.rounded(), graph::reference_triangle_count(g));
}

TEST(PimDynamicTest, ChurnUnderOverflowStaysNearTruth) {
  // Sampled regime (capacity overflow) on the fig4 hub-heavy shape: the
  // random-pairing estimator must stay within the usual estimator
  // tolerance of the exact count of the surviving graph.
  graph::EdgeList g = graph::gen::barabasi_albert(2500, 5, 91);
  graph::gen::add_hubs(g, 3, 600, 92);
  graph::preprocess(g, 93);
  const auto edges = g.edges();
  const std::size_t cut = (edges.size() * 4) / 5;  // 20% churned away
  const graph::EdgeList rest = remaining_graph(g, edges.subspan(cut));
  const auto truth =
      static_cast<double>(graph::reference_triangle_count(rest));

  double sum = 0.0;
  const int trials = 5;
  std::uint64_t overflows = 0;
  for (int s = 0; s < trials; ++s) {
    tc::TcConfig cfg;
    cfg.num_colors = 3;
    cfg.seed = 9000 + s;
    cfg.sample_capacity_edges = edges.size() / 4;
    tc::PimTriangleCounter counter(cfg, small_banks());
    counter.add_edges(edges);
    counter.remove_edges(edges.subspan(cut));
    const tc::TcResult r = counter.recount();
    EXPECT_FALSE(r.exact);
    overflows += r.reservoir_overflows;
    sum += r.estimate;
  }
  EXPECT_GT(overflows, 0u);
  EXPECT_NEAR(sum / trials, truth, truth * 0.2);
}

// ---- engine API contract ----------------------------------------------------

TEST(EngineDynamicTest, CapabilitiesAdvertiseDeletions) {
  const engine::EngineConfig cfg = small_engine();
  EXPECT_TRUE(engine::make_engine("pim", cfg)->capabilities().deletions);
  EXPECT_TRUE(
      engine::make_engine("cpu-incremental", cfg)->capabilities().deletions);
  EXPECT_FALSE(engine::make_engine("cpu", cfg)->capabilities().deletions);

  engine::EngineConfig sampled = cfg;
  sampled.uniform_p = 0.5;
  // DOULION cannot compose with deletions: the capability drops.
  EXPECT_FALSE(engine::make_engine("pim", sampled)->capabilities().deletions);
}

TEST(EngineDynamicTest, BaseApplyForwardsInsertsAndRejectsDeletes) {
  graph::EdgeList g = graph::gen::complete(9);
  auto cpu = engine::make_engine("cpu", small_engine());
  cpu->apply(inserts_of(g.edges()));  // all-insert: forwarded to add_edges
  EXPECT_EQ(cpu->recount().rounded(), binomial(9, 3));
  EXPECT_THROW(cpu->apply(deletes_of(g.edges().subspan(0, 1))),
               std::invalid_argument);
}

TEST(EngineDynamicTest, PimApplyRejectsDeletionsUnderUniformSampling) {
  engine::EngineConfig cfg = small_engine();
  cfg.uniform_p = 0.5;
  auto pim = engine::make_engine("pim", cfg);
  graph::EdgeList g = graph::gen::complete(9);
  pim->add_edges(g.edges());
  EXPECT_THROW(pim->apply(deletes_of(g.edges().subspan(0, 1))),
               std::invalid_argument);
}

TEST(EngineDynamicTest, PimReportCarriesDynamicCounters) {
  graph::EdgeList g = graph::gen::complete(14);
  auto pim = engine::make_engine("pim", small_engine(2));
  pim->add_edges(g.edges());
  pim->remove_edges(g.edges().subspan(0, 5));
  const engine::CountReport r = pim->recount();
  EXPECT_EQ(r.edges_deleted, 5u);
  EXPECT_GT(r.sample_evictions, 0u);
  const graph::EdgeList rest = remaining_graph(g, g.edges().subspan(0, 5));
  EXPECT_EQ(r.rounded(), graph::reference_triangle_count(rest));
}

}  // namespace
}  // namespace pimtc
