// Thread-safety-analysis failure case (tests/static/): double lock.
//
// Acquiring the same pimtc::Mutex twice in one scope is a guaranteed
// deadlock (the capability is non-reentrant).  Under Clang with
// `-Wthread-safety -Werror` this translation unit MUST FAIL to compile;
// tsa_compile_tests.cmake errors out if it ever builds.
#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace {

pimtc::Mutex g_mutex;
int g_value PIMTC_GUARDED_BY(g_mutex) = 0;

void double_lock() {
  const pimtc::MutexLock outer(g_mutex);
  const pimtc::MutexLock inner(g_mutex);  // acquiring a held capability
  ++g_value;
}

}  // namespace

int main() {
  double_lock();
  return 0;
}
