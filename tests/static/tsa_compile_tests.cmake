# Thread-safety compile-failure battery (included from the top-level
# CMakeLists when the compiler is Clang).
#
# Each case in tests/static/ is pushed through try_compile with
# `-Wthread-safety -Werror=thread-safety`:
#
#   * tsa_positive_control.cpp MUST compile — otherwise the negative cases
#     below would "fail" for an unrelated reason and prove nothing;
#   * every tsa_*.cpp listed in PIMTC_TSA_MUST_FAIL must NOT compile — each
#     encodes a lock-discipline bug (double lock, snapshot mutex held
#     across engine work, unguarded access) that the annotations exist to
#     reject at build time.
#
# An unexpected outcome is a configure-time FATAL_ERROR: a regression here
# means the annotation layer lost its teeth, which must not wait for CI
# test-time to surface.  Each verdict is also registered as an always-pass
# ctest (`tsa_compile_*`) so the battery is visible in the test report.

set(PIMTC_TSA_DIR ${CMAKE_CURRENT_SOURCE_DIR}/tests/static)
set(PIMTC_TSA_FLAGS -Wthread-safety -Werror=thread-safety)

function(pimtc_tsa_try_compile source result_var log_var)
  try_compile(${result_var}
    ${CMAKE_CURRENT_BINARY_DIR}/tsa_checks
    ${PIMTC_TSA_DIR}/${source}
    COMPILE_DEFINITIONS "${PIMTC_TSA_FLAGS}"
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
      "-DCMAKE_CXX_STANDARD=20"
      "-DCMAKE_CXX_STANDARD_REQUIRED=ON"
    OUTPUT_VARIABLE ${log_var})
  set(${result_var} ${${result_var}} PARENT_SCOPE)
  set(${log_var} ${${log_var}} PARENT_SCOPE)
endfunction()

pimtc_tsa_try_compile(tsa_positive_control.cpp PIMTC_TSA_CONTROL_OK control_log)
if(NOT PIMTC_TSA_CONTROL_OK)
  message(FATAL_ERROR
    "tests/static/tsa_positive_control.cpp failed to compile under "
    "-Wthread-safety — the annotation layer itself is broken:\n${control_log}")
endif()
add_test(NAME tsa_compile_positive_control COMMAND ${CMAKE_COMMAND} -E true)

set(PIMTC_TSA_MUST_FAIL
  tsa_double_lock.cpp
  tsa_snapshot_across_engine.cpp
  tsa_unguarded_access.cpp)
foreach(source ${PIMTC_TSA_MUST_FAIL})
  pimtc_tsa_try_compile(${source} PIMTC_TSA_COMPILED failure_log)
  if(PIMTC_TSA_COMPILED)
    message(FATAL_ERROR
      "tests/static/${source} COMPILED under -Wthread-safety but encodes a "
      "lock-discipline bug the analysis must reject — the thread-safety "
      "annotations have lost their teeth")
  endif()
  get_filename_component(case_name ${source} NAME_WE)
  add_test(NAME ${case_name}_rejected COMMAND ${CMAKE_COMMAND} -E true)
endforeach()

message(STATUS
  "Thread-safety compile battery: positive control builds, "
  "3 discipline violations rejected")
