// Thread-safety-analysis failure case (tests/static/): holding the
// snapshot mutex across engine work.
//
// The serving layer's core liveness rule (session.hpp): the snapshot mutex
// guards only the pointer swap and is never held while the engine runs —
// engine entry points are annotated PIMTC_EXCLUDES(snapshot mutex).  This
// file violates exactly that shape: it calls the excluded function while
// holding the lock.  Under Clang with `-Wthread-safety -Werror` it MUST
// FAIL to compile; tsa_compile_tests.cmake errors out if it ever builds.
#include <memory>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace {

class MiniSession {
 public:
  /// Stands in for Session::drain / engine recount: heavy work that must
  /// never run under snapshot_mutex_.
  void engine_recount() PIMTC_EXCLUDES(snapshot_mutex_) {}

  void publish() PIMTC_EXCLUDES(snapshot_mutex_) {
    const pimtc::MutexLock lock(snapshot_mutex_);
    engine_recount();  // excluded capability is held: analysis error
    snapshot_ = std::make_shared<int>(1);
  }

 private:
  mutable pimtc::Mutex snapshot_mutex_;
  std::shared_ptr<const int> snapshot_ PIMTC_GUARDED_BY(snapshot_mutex_);
};

}  // namespace

int main() {
  MiniSession s;
  s.publish();
  return 0;
}
