// Thread-safety-analysis failure case (tests/static/): touching a guarded
// member without its mutex.
//
// The cheapest and most common lock-discipline mistake: reading or writing
// a PIMTC_GUARDED_BY member lock-free.  Under Clang with
// `-Wthread-safety -Werror` this translation unit MUST FAIL to compile;
// tsa_compile_tests.cmake errors out if it ever builds.
#include <cstdint>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace {

pimtc::Mutex g_mutex;
std::uint64_t g_count PIMTC_GUARDED_BY(g_mutex) = 0;

std::uint64_t racy_read() {
  return g_count;  // guarded member, no lock held: analysis error
}

}  // namespace

int main() { return static_cast<int>(racy_read()); }
