// Thread-safety-analysis positive control (tests/static/).
//
// Correct lock discipline over the annotated pimtc::Mutex/MutexLock: this
// translation unit MUST compile cleanly under Clang with
// `-Wthread-safety -Werror`.  If it does not, the failure battery next to
// it proves nothing (the negative cases would "fail" for the wrong
// reason), so tsa_compile_tests.cmake hard-errors on this one first.
#include <cstdint>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace {

class Counter {
 public:
  void bump() PIMTC_EXCLUDES(mutex_) {
    const pimtc::MutexLock lock(mutex_);
    ++value_;
  }

  [[nodiscard]] std::uint64_t get() const PIMTC_EXCLUDES(mutex_) {
    const pimtc::MutexLock lock(mutex_);
    return value_;
  }

  void bump_locked() PIMTC_REQUIRES(mutex_) { ++value_; }

  void bump_twice() PIMTC_EXCLUDES(mutex_) {
    const pimtc::MutexLock lock(mutex_);
    bump_locked();
    bump_locked();
  }

 private:
  mutable pimtc::Mutex mutex_;
  std::uint64_t value_ PIMTC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  c.bump_twice();
  return static_cast<int>(c.get() - 3);
}
