// End-to-end tests of the full PIM triangle-counting pipeline: coloring
// partition + transfers + reservoir + kernel + statistical corrections,
// validated against the trusted reference counter.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/math_util.hpp"
#include "graph/generators.hpp"
#include "graph/paper_graphs.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"
#include "tc/host.hpp"
#include "tc/kernel.hpp"

namespace pimtc::tc {
namespace {

pim::PimSystemConfig small_banks() {
  pim::PimSystemConfig cfg;
  cfg.mram_bytes = 8ull << 20;  // keep simulated banks small in tests
  return cfg;
}

TcConfig exact_config(std::uint32_t colors, std::uint64_t seed = 42) {
  TcConfig cfg;
  cfg.num_colors = colors;
  cfg.seed = seed;
  return cfg;
}

// ---- exactness across colors / graphs / seeds -------------------------------

class ExactCountTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(ExactCountTest, MatchesReferenceOnErdosRenyi) {
  const auto [colors, seed] = GetParam();
  graph::EdgeList g = graph::gen::erdos_renyi(
      600, 4000, static_cast<std::uint64_t>(seed) + 100);
  graph::preprocess(g, 7);
  const TriangleCount expected = graph::reference_triangle_count(g);

  PimTriangleCounter counter(
      exact_config(colors, static_cast<std::uint64_t>(seed)), small_banks());
  const TcResult result = counter.count(g);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.rounded(), expected)
      << "colors=" << colors << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    ColorsAndSeeds, ExactCountTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 6u, 8u),
                       ::testing::Values(1, 2, 3)));

TEST(TcIntegrationTest, ExactOnStructuredGraphs) {
  for (const auto& [g, expected] :
       std::vector<std::pair<graph::EdgeList, TriangleCount>>{
           {graph::gen::complete(30), binomial(30, 3)},
           {graph::gen::wheel(40), 39},
           {graph::gen::cycle(50), 0},
           {graph::gen::star(100), 0},
       }) {
    PimTriangleCounter counter(exact_config(4), small_banks());
    const TcResult result = counter.count(g);
    EXPECT_TRUE(result.exact);
    EXPECT_EQ(result.rounded(), expected);
  }
}

TEST(TcIntegrationTest, ExactOnSkewedGraph) {
  graph::EdgeList g = graph::gen::barabasi_albert(800, 6, 3);
  graph::preprocess(g, 5);
  const TriangleCount expected = graph::reference_triangle_count(g);
  PimTriangleCounter counter(exact_config(5), small_banks());
  EXPECT_EQ(counter.count(g).rounded(), expected);
}

TEST(TcIntegrationTest, ExactWithMisraGriesRemapEnabled) {
  // MG remapping must never change an exact count (isomorphism).
  graph::EdgeList g = graph::gen::barabasi_albert(600, 5, 11);
  graph::preprocess(g, 13);
  const TriangleCount expected = graph::reference_triangle_count(g);

  TcConfig cfg = exact_config(4);
  cfg.misra_gries_enabled = true;
  cfg.mg_capacity = 64;
  cfg.mg_top = 12;
  PimTriangleCounter counter(cfg, small_banks());
  const TcResult result = counter.count(g);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.rounded(), expected);
}

TEST(TcIntegrationTest, MonochromaticCorrectionIsExercised) {
  // With a single color every triangle is monochromatic and counted by the
  // one DPU; with two colors monochromatic triangles are counted twice and
  // corrected.  Both must give the exact result.
  graph::EdgeList g = graph::gen::complete(25);
  const TriangleCount expected = binomial(25, 3);
  for (const std::uint32_t colors : {1u, 2u}) {
    PimTriangleCounter counter(exact_config(colors), small_banks());
    EXPECT_EQ(counter.count(g).rounded(), expected) << "C=" << colors;
  }
}

TEST(TcIntegrationTest, RawTotalOvercountsWithoutCorrection) {
  // Sanity check that the correction is doing real work: the raw sum over
  // cores must exceed the true count whenever monochromatic triangles exist.
  graph::EdgeList g = graph::gen::complete(20);
  PimTriangleCounter counter(exact_config(3), small_banks());
  const TcResult result = counter.count(g);
  EXPECT_GT(result.raw_total, result.rounded());
}

// ---- replication / load facts ------------------------------------------------

TEST(TcIntegrationTest, EdgesReplicatedExactlyCTimes) {
  graph::EdgeList g = graph::gen::erdos_renyi(300, 2000, 1);
  graph::preprocess(g, 2);
  for (const std::uint32_t colors : {2u, 5u, 7u}) {
    PimTriangleCounter counter(exact_config(colors), small_banks());
    const TcResult result = counter.count(g);
    EXPECT_EQ(result.edges_replicated,
              static_cast<std::uint64_t>(colors) * g.num_edges());
  }
}

TEST(TcIntegrationTest, UsesBinomialNumberOfDpus) {
  graph::EdgeList g = graph::gen::erdos_renyi(100, 500, 1);
  for (const std::uint32_t colors : {1u, 3u, 6u}) {
    PimTriangleCounter counter(exact_config(colors), small_banks());
    EXPECT_EQ(counter.count(g).num_dpus, num_triplets(colors));
  }
}

TEST(TcIntegrationTest, SelfLoopsIgnored) {
  graph::EdgeList g = graph::gen::complete(10);
  g.push_back({3, 3});
  g.push_back({7, 7});
  PimTriangleCounter counter(exact_config(3), small_banks());
  EXPECT_EQ(counter.count(g).rounded(), binomial(10, 3));
}

// ---- uniform sampling ----------------------------------------------------------

TEST(TcIntegrationTest, UniformSamplingApproximates) {
  graph::EdgeList g = graph::gen::community(3000, 60, 0.5, 2000, 21);
  graph::preprocess(g, 22);
  const auto truth =
      static_cast<double>(graph::reference_triangle_count(g));

  TcConfig cfg = exact_config(3);
  cfg.uniform_p = 0.5;
  // Average over a few seeds: DOULION at p=0.5 on a triangle-rich graph
  // should land within a few percent.
  double sum = 0;
  const int trials = 5;
  for (int s = 0; s < trials; ++s) {
    cfg.seed = 1000 + s;
    PimTriangleCounter counter(cfg, small_banks());
    const TcResult r = counter.count(g);
    EXPECT_FALSE(r.exact);
    sum += r.estimate;
  }
  EXPECT_NEAR(sum / trials, truth, truth * 0.08);
}

TEST(TcIntegrationTest, UniformSamplingReducesTransferVolume) {
  graph::EdgeList g = graph::gen::erdos_renyi(2000, 20000, 5);
  TcConfig cfg = exact_config(3);
  cfg.uniform_p = 0.1;
  PimTriangleCounter counter(cfg, small_banks());
  const TcResult r = counter.count(g);
  // ~10% of edges kept (binomial concentration), each replicated C times.
  EXPECT_NEAR(static_cast<double>(r.edges_kept), 2000.0, 300.0);
  EXPECT_EQ(r.edges_replicated, 3 * r.edges_kept);
}

// ---- reservoir sampling ---------------------------------------------------------

TEST(TcIntegrationTest, ReservoirKicksInWhenCapacityLimited) {
  graph::EdgeList g = graph::gen::community(2000, 50, 0.5, 1000, 31);
  graph::preprocess(g, 32);
  const auto truth =
      static_cast<double>(graph::reference_triangle_count(g));

  TcConfig cfg = exact_config(2);
  // Expected max per-core load is 6|E|/C^2; cap at a quarter of it.
  cfg.sample_capacity_edges = static_cast<std::uint64_t>(
      0.25 * 6.0 * static_cast<double>(g.num_edges()) / 4.0);

  double sum = 0;
  const int trials = 5;
  for (int s = 0; s < trials; ++s) {
    cfg.seed = 2000 + s;
    PimTriangleCounter counter(cfg, small_banks());
    const TcResult r = counter.count(g);
    EXPECT_FALSE(r.exact);
    EXPECT_GT(r.reservoir_overflows, 0u);
    sum += r.estimate;
  }
  EXPECT_NEAR(sum / trials, truth, truth * 0.15);
}

TEST(TcIntegrationTest, ReservoirExactWhenCapacitySuffices) {
  graph::EdgeList g = graph::gen::erdos_renyi(400, 3000, 8);
  const TriangleCount expected = graph::reference_triangle_count(g);
  TcConfig cfg = exact_config(2);
  cfg.sample_capacity_edges = 3000 * 6;  // comfortably above any t_d
  PimTriangleCounter counter(cfg, small_banks());
  const TcResult r = counter.count(g);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.rounded(), expected);
}

// ---- dynamic updates -------------------------------------------------------------

TEST(TcIntegrationTest, DynamicUpdatesMatchStaticRecount) {
  graph::EdgeList g = graph::gen::community(1200, 40, 0.5, 800, 41);
  graph::preprocess(g, 42);
  const auto edges = g.edges();

  PimTriangleCounter dynamic(exact_config(3), small_banks());
  const std::size_t step = edges.size() / 4;
  graph::EdgeList accumulated;
  for (int i = 0; i < 4; ++i) {
    const std::size_t lo = i * step;
    const std::size_t hi = (i == 3) ? edges.size() : (i + 1) * step;
    dynamic.add_edges(edges.subspan(lo, hi - lo));
    accumulated.append(edges.subspan(lo, hi - lo));

    const TcResult r = dynamic.recount();
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.rounded(), graph::reference_triangle_count(accumulated))
        << "after update " << i;
  }
}

TEST(TcIntegrationTest, RecountWithoutNewEdgesIsStable) {
  graph::EdgeList g = graph::gen::erdos_renyi(300, 2500, 9);
  PimTriangleCounter counter(exact_config(3), small_banks());
  counter.add_edges(g.edges());
  const TcResult a = counter.recount();
  const TcResult b = counter.recount();
  EXPECT_EQ(a.rounded(), b.rounded());
}

// ---- incremental mode ----------------------------------------------------------

TEST(TcIncrementalTest, MatchesStaticAcrossUpdates) {
  graph::EdgeList g = graph::gen::community(1500, 40, 0.5, 1000, 61);
  graph::preprocess(g, 62);
  const auto edges = g.edges();

  TcConfig cfg = exact_config(3);
  cfg.incremental = true;
  PimTriangleCounter dynamic(cfg, small_banks());
  graph::EdgeList accumulated;
  const std::size_t step = edges.size() / 5;
  for (int i = 0; i < 5; ++i) {
    const std::size_t lo = i * step;
    const std::size_t hi = (i == 4) ? edges.size() : (i + 1) * step;
    dynamic.add_edges(edges.subspan(lo, hi - lo));
    accumulated.append(edges.subspan(lo, hi - lo));

    const TcResult r = dynamic.recount();
    EXPECT_TRUE(r.exact);
    // First recount is the full pass; all later ones take the fast path.
    EXPECT_EQ(r.used_incremental, i > 0) << "update " << i;
    EXPECT_EQ(r.rounded(), graph::reference_triangle_count(accumulated))
        << "after update " << i;
  }
}

TEST(TcIncrementalTest, AgreesWithNonIncrementalAndMisraGries) {
  graph::EdgeList g = graph::gen::barabasi_albert(900, 5, 71);
  graph::preprocess(g, 72);
  const auto edges = g.edges();
  const std::size_t half = edges.size() / 2;

  TcConfig cfg = exact_config(4);
  cfg.misra_gries_enabled = true;
  cfg.mg_capacity = 128;
  cfg.mg_top = 16;

  TcConfig inc_cfg = cfg;
  inc_cfg.incremental = true;

  PimTriangleCounter plain(cfg, small_banks());
  PimTriangleCounter inc(inc_cfg, small_banks());
  for (const auto part : {edges.subspan(0, half), edges.subspan(half)}) {
    plain.add_edges(part);
    inc.add_edges(part);
    EXPECT_EQ(plain.recount().rounded(), inc.recount().rounded());
  }
}

TEST(TcIncrementalTest, RecountWithoutNewEdgesStable) {
  graph::EdgeList g = graph::gen::erdos_renyi(400, 3000, 81);
  TcConfig cfg = exact_config(3);
  cfg.incremental = true;
  PimTriangleCounter counter(cfg, small_banks());
  counter.add_edges(g.edges());
  const TcResult a = counter.recount();
  const TcResult b = counter.recount();  // no new edges
  EXPECT_EQ(a.rounded(), b.rounded());
  EXPECT_TRUE(b.used_incremental);
}

TEST(TcIncrementalTest, FallsBackToFullOnReservoirOverflow) {
  graph::EdgeList g = graph::gen::erdos_renyi(800, 12000, 91);
  graph::preprocess(g, 92);
  TcConfig cfg = exact_config(2);
  cfg.incremental = true;
  cfg.sample_capacity_edges = 2000;  // well below the per-core load
  PimTriangleCounter counter(cfg, small_banks());
  const auto edges = g.edges();
  counter.add_edges(edges.subspan(0, edges.size() / 2));
  const TcResult first = counter.recount();
  counter.add_edges(edges.subspan(edges.size() / 2));
  const TcResult second = counter.recount();
  // Overflow forces full recounts; the estimate stays close to truth.
  EXPECT_FALSE(first.used_incremental);
  EXPECT_FALSE(second.used_incremental);
  EXPECT_GT(second.reservoir_overflows, 0u);
  const auto truth = static_cast<double>(graph::reference_triangle_count(g));
  EXPECT_NEAR(second.estimate, truth, truth * 0.4);
}

TEST(TcIncrementalTest, IncrementalRecountIsCheaper) {
  graph::EdgeList g = graph::gen::community(2500, 60, 0.5, 2000, 93);
  graph::preprocess(g, 94);
  const auto edges = g.edges();
  const std::size_t step = edges.size() / 6;

  const auto run = [&](bool incremental) {
    TcConfig cfg = exact_config(4);
    cfg.incremental = incremental;
    PimTriangleCounter counter(cfg, small_banks());
    double count_s = 0.0;
    for (int i = 0; i < 6; ++i) {
      const std::size_t lo = i * step;
      const std::size_t hi = (i == 5) ? edges.size() : (i + 1) * step;
      counter.system().reset_times();
      counter.add_edges(edges.subspan(lo, hi - lo));
      count_s += counter.recount().times.count_s;
    }
    return count_s;
  };

  EXPECT_LT(run(true), run(false));
}

// ---- rank-aware ingestion ----------------------------------------------------------

TEST(TcIngestTest, PipelinedAndSerialEstimatesAreBitIdentical) {
  // The pipeline/staging knobs are timing-only; with a fixed seed the
  // estimate must not move by a single bit, including under reservoir
  // overflow (where the host-side decisions draw from the per-DPU RNGs).
  graph::EdgeList g = graph::gen::community(1500, 40, 0.5, 1200, 55);
  graph::preprocess(g, 56);
  const auto edges = g.edges();

  const auto run = [&](bool pipelined, std::uint64_t staging_cap) {
    TcConfig cfg = exact_config(3, /*seed=*/77);
    cfg.uniform_p = 0.6;               // uniform sampler engaged
    cfg.sample_capacity_edges = 800;   // reservoirs overflow
    cfg.pipelined_ingest = pipelined;
    cfg.staging_capacity_edges = staging_cap;
    PimTriangleCounter counter(cfg, small_banks());
    const std::size_t step = edges.size() / 3;
    counter.add_edges(edges.subspan(0, step));
    counter.add_edges(edges.subspan(step, step));
    counter.add_edges(edges.subspan(2 * step));
    return counter.recount().estimate;
  };

  const double serial = run(false, 0);
  EXPECT_EQ(serial, run(true, 0));    // pipelined
  EXPECT_EQ(serial, run(true, 64));   // pipelined + multi-round staging
  EXPECT_EQ(serial, run(false, 64));  // serial + multi-round staging
}

TEST(TcIngestTest, OneBulkScatterPerBatchWhenStagingUnbounded) {
  graph::EdgeList g = graph::gen::erdos_renyi(500, 4000, 12);
  graph::preprocess(g, 13);
  const auto edges = g.edges();

  PimTriangleCounter counter(exact_config(3), small_banks());
  const std::size_t step = edges.size() / 4;
  for (int b = 0; b < 4; ++b) {
    const std::size_t lo = b * step;
    const std::size_t hi = (b == 3) ? edges.size() : lo + step;
    counter.add_edges(edges.subspan(lo, hi - lo));
  }
  const TcResult r = counter.recount();
  // One edge scatter per batch + one control-block push at recount.
  EXPECT_EQ(r.transfers.push_transfers, 4u + 1u);
  EXPECT_EQ(r.transfers.pull_transfers, 1u);
  EXPECT_GE(r.transfers.push_wire_bytes, r.transfers.push_payload_bytes);
}

TEST(TcIngestTest, StagingCapacityBoundsSplitIntoMoreScatters) {
  graph::EdgeList g = graph::gen::erdos_renyi(500, 4000, 12);
  graph::preprocess(g, 13);

  TcConfig bounded = exact_config(3);
  bounded.staging_capacity_edges = 100;  // far below the per-DPU batch load
  PimTriangleCounter counter(bounded, small_banks());
  const TcResult r = counter.count(g);

  PimTriangleCounter unbounded(exact_config(3), small_banks());
  const TcResult u = unbounded.count(g);

  EXPECT_GT(r.transfers.push_transfers, u.transfers.push_transfers);
  EXPECT_EQ(r.rounded(), u.rounded());  // functional parity
}

TEST(TcIngestTest, BulkScatterIssuesFarFewerMramWritesThanPerEdge) {
  // Acceptance criterion of the rank-aware runtime: a fig7-scale ingest run
  // must coalesce its sample writes.  The pre-refactor path issued one
  // MramBank::write per replicated edge; the staged path issues one per
  // append run / replacement run per DPU per batch.
  graph::EdgeList g = graph::gen::community(2000, 50, 0.5, 1500, 23);
  graph::preprocess(g, 24);
  const auto edges = g.edges();

  TcConfig cfg = exact_config(3);
  cfg.sample_capacity_edges = 2000;  // some replacement traffic too
  PimTriangleCounter counter(cfg, small_banks());
  const std::size_t step = edges.size() / 10;
  for (int b = 0; b < 10; ++b) {
    const std::size_t lo = b * step;
    const std::size_t hi = (b == 9) ? edges.size() : lo + step;
    counter.add_edges(edges.subspan(lo, hi - lo));
  }
  const TcResult r = counter.recount();

  std::uint64_t writes = 0;
  for (std::uint32_t d = 0; d < counter.system().num_dpus(); ++d) {
    writes += counter.system().dpu(d).mram().write_calls();
  }
  ASSERT_GT(r.edges_replicated, 0u);
  EXPECT_LT(writes, r.edges_replicated / 4)
      << "ingest should batch MRAM writes, not issue one per edge";
}

TEST(TcIngestTest, PipeliningReportsOverlapAndNeverInflatesIngest) {
  graph::EdgeList g = graph::gen::community(1500, 40, 0.5, 1200, 65);
  graph::preprocess(g, 66);
  const auto edges = g.edges();

  const auto run = [&](bool pipelined) {
    TcConfig cfg = exact_config(3);
    cfg.pipelined_ingest = pipelined;
    PimTriangleCounter counter(cfg, small_banks());
    const std::size_t step = edges.size() / 5;
    for (int b = 0; b < 5; ++b) {
      const std::size_t lo = b * step;
      const std::size_t hi = (b == 4) ? edges.size() : lo + step;
      counter.add_edges(edges.subspan(lo, hi - lo));
    }
    return counter.recount();
  };

  const TcResult serial = run(false);
  const TcResult pipelined = run(true);
  EXPECT_EQ(serial.rounded(), pipelined.rounded());
  EXPECT_DOUBLE_EQ(serial.transfers.overlap_saved_s, 0.0);
  // Hidden time is real host-measured overlap; the modeled ingest phase can
  // only shrink (conservation: charged + saved == serial charge).
  EXPECT_GE(pipelined.transfers.overlap_saved_s, 0.0);
  EXPECT_NEAR(pipelined.times.sample_creation_s +
                  pipelined.transfers.overlap_saved_s,
              serial.times.sample_creation_s,
              1e-9 + serial.times.sample_creation_s * 1e-6);
}

TEST(TcIngestTest, RankTopologyReportedAndPaddingTracked) {
  graph::EdgeList g = graph::gen::erdos_renyi(400, 3000, 31);
  graph::preprocess(g, 32);

  pim::PimSystemConfig banks = small_banks();
  banks.dpus_per_rank = 4;  // 10 DPUs for C=3 -> 3 ranks
  PimTriangleCounter counter(exact_config(3), banks);
  const TcResult r = counter.count(g);
  EXPECT_EQ(r.num_dpus, 10u);
  EXPECT_EQ(r.num_ranks, 3u);
  // Per-DPU loads differ, so padding to the per-rank max must show up.
  EXPECT_GT(r.transfers.push_wire_bytes, r.transfers.push_payload_bytes);
}

// ---- phase accounting --------------------------------------------------------------

TEST(TcIntegrationTest, PhaseTimesArePopulated) {
  graph::EdgeList g = graph::gen::erdos_renyi(500, 4000, 3);
  PimTriangleCounter counter(exact_config(4), small_banks());
  const TcResult r = counter.count(g);
  EXPECT_GT(r.times.setup_s, 0.0);
  EXPECT_GT(r.times.sample_creation_s, 0.0);
  EXPECT_GT(r.times.count_s, 0.0);
}

TEST(TcIntegrationTest, LoadBalanceWithinTripletKinds) {
  // Max load should be within the 6x band of the N/3N/6N analysis (plus
  // stochastic slack).
  graph::EdgeList g = graph::gen::erdos_renyi(3000, 30000, 6);
  graph::preprocess(g, 6);
  PimTriangleCounter counter(exact_config(5), small_banks());
  const TcResult r = counter.count(g);
  ASSERT_GT(r.min_dpu_edges, 0u);
  EXPECT_LE(static_cast<double>(r.max_dpu_edges),
            8.0 * static_cast<double>(r.min_dpu_edges));
}

// ---- configuration validation -------------------------------------------------------

TEST(TcConfigTest, ZeroColorsAutoSelectsTheLargestFit) {
  // num_colors == 0 fills the machine: the largest C with binom(C+2, 3)
  // triplets fitting max_dpus (here 8 cores -> C = 2 -> 4 triplets).
  pim::PimSystemConfig tiny = small_banks();
  tiny.max_dpus = 8;
  PimTriangleCounter counter(exact_config(0), tiny);
  EXPECT_EQ(counter.config().num_colors, 2u);
  EXPECT_EQ(counter.system().num_dpus(), 4u);
}

TEST(TcConfigTest, RejectsInvalidConfigs) {
  TcConfig bad_p = exact_config(2);
  bad_p.uniform_p = 0.0;
  EXPECT_THROW(PimTriangleCounter(bad_p, small_banks()),
               std::invalid_argument);
  bad_p.uniform_p = 1.5;
  EXPECT_THROW(PimTriangleCounter(bad_p, small_banks()),
               std::invalid_argument);

  TcConfig bad_tasklets = exact_config(2);
  bad_tasklets.tasklets = 0;
  EXPECT_THROW(PimTriangleCounter(bad_tasklets, small_banks()),
               std::invalid_argument);

  // Remapping more nodes than Misra-Gries tracks silently degrades; reject.
  TcConfig bad_mg = exact_config(2);
  bad_mg.misra_gries_enabled = true;
  bad_mg.mg_capacity = 16;
  bad_mg.mg_top = 17;
  EXPECT_THROW(PimTriangleCounter(bad_mg, small_banks()),
               std::invalid_argument);

  // WRAM buffer validated against the scratchpad budget, not clamped.
  TcConfig bad_buf = exact_config(2);
  bad_buf.wram_buffer_edges =
      max_wram_buffer_edges(small_banks(), bad_buf.tasklets) + 1;
  EXPECT_THROW(PimTriangleCounter(bad_buf, small_banks()),
               std::invalid_argument);
  bad_buf.wram_buffer_edges = 0;
  EXPECT_THROW(PimTriangleCounter(bad_buf, small_banks()),
               std::invalid_argument);

  TcConfig bad_gain = exact_config(2);
  bad_gain.rebalance_min_gain = 0.5;
  EXPECT_THROW(PimTriangleCounter(bad_gain, small_banks()),
               std::invalid_argument);

  // Too many colors for the machine.
  pim::PimSystemConfig tiny = small_banks();
  tiny.max_dpus = 4;
  EXPECT_THROW(PimTriangleCounter(exact_config(3), tiny),
               std::invalid_argument);
}

TEST(TcConfigTest, PaperScaleColorsFitPaperMachine) {
  // C=23 -> 2300 DPUs <= 2560: constructible (tiny banks to stay light).
  pim::PimSystemConfig cfg;
  cfg.mram_bytes = 1 << 20;
  TcConfig tc = exact_config(23);
  EXPECT_NO_THROW(PimTriangleCounter(tc, cfg));
}

}  // namespace
}  // namespace pimtc::tc
